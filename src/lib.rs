//! # cxrpq — Conjunctive Regular Path Queries with String Variables
//!
//! A Rust implementation of the query classes, algorithms, fragments and
//! reductions of **Markus L. Schmid, "Conjunctive Regular Path Queries with
//! String Variables" (PODS 2020, arXiv:1912.09326)**.
//!
//! This facade crate re-exports the public API of the workspace:
//!
//! - [`graph`] — edge-labelled graph databases (§2.2);
//! - [`automata`] — classical regular expressions and NFAs (§2.2, §3);
//! - [`xregex`] — xregex (regular expressions with string variables),
//!   ref-words, conjunctive xregex, fragment classification, normal forms
//!   (§2.1, §3, §5);
//! - [`core`] — CRPQ / CXRPQ / ECRPQ query types and every evaluation
//!   algorithm from the paper (§4–§7);
//! - [`workloads`] — generators for the paper's database families, motivating
//!   examples, and hardness-reduction instances.
//!
//! ## Quickstart
//!
//! ```
//! use cxrpq::prelude::*;
//!
//! // A tiny graph database over Σ = {a, b, c}.
//! let mut alpha = Alphabet::from_chars("abc");
//! // Query: pairs (x, y) connected by a path w c w for some w ∈ (a|b)+,
//! // expressed with a string variable: z{(a|b)+} c z.
//! let q = CxrpqBuilder::new(&mut alpha)
//!     .edge("x", "z{(a|b)+}cz", "y")
//!     .output(&["x", "y"])
//!     .build()
//!     .unwrap();
//!
//! let mut db = GraphBuilder::new(std::sync::Arc::new(alpha));
//! let w = db.alphabet().parse_word("ab").unwrap();
//! let c = db.alphabet().parse_word("c").unwrap();
//! let u = db.add_node();
//! let m1 = db.add_node();
//! let m2 = db.add_node();
//! let v = db.add_node();
//! db.add_word_path(u, &w, m1);
//! db.add_word_path(m1, &c, m2);
//! db.add_word_path(m2, &w, v);
//! let db = db.freeze(); // CSR-indexed, immutable query form
//!
//! // Evaluate with the bounded-image-size engine (CXRPQ^{≤k}, Theorem 6).
//! let answers = BoundedEvaluator::new(&q, 2).answers(&db);
//! assert!(answers.contains(&vec![u, v]));
//! ```
//!
//! ## Workspace layout
//!
//! This is the facade of a Cargo workspace; the members and their
//! dependency order (each crate depends only on those after it):
//!
//! | crate | path | role |
//! |---|---|---|
//! | `cxrpq-cli` | `crates/cli` | command-line frontend |
//! | `cxrpq-bench` | `crates/bench` | criterion benches + `experiments` binary |
//! | `cxrpq-workloads` | `crates/workloads` | database families, random queries, reductions |
//! | `cxrpq-core` | `crates/core` | query types, engines, translations, planner |
//! | `cxrpq-xregex` | `crates/xregex` | xregex, ref-words, fragments, normal forms |
//! | `cxrpq-automata` | `crates/automata` | classical regexes, NFA/DFA, mask simulation |
//! | `cxrpq-graph` | `crates/graph` | alphabets, builder/frozen CSR graph databases, bitsets, paths, I/O |
//!
//! Graph storage is split into a mutable [`graph::GraphBuilder`] and the
//! immutable, CSR-indexed [`graph::GraphDb`] it freezes into: label-sorted
//! adjacency rows give contiguous per-`(node, label)` slices, and a
//! monotonically increasing `generation()` id lets node-keyed caches
//! detect cross-database reuse. The product-search hot loops in
//! `cxrpq-core` ride on this with dense-bitset visited sets and bitmask
//! NFA state sets; `cargo bench -p cxrpq-bench --bench e16_reach_csr`
//! measures the layout against the pre-CSR representation (results
//! recorded in `BENCH_reach.json`). On top sits the level-synchronous
//! frontier engine (`cxrpq_core::frontier`): `reach_all` batches
//! multi-source product reachability into 64-source membership-stripe
//! wavefronts, and both it and the synchronized search shard fat BFS
//! levels across scoped worker threads (`cargo bench -p cxrpq-bench
//! --bench e17_parallel_reach`, results in `BENCH_parallel.json`).
//!
//! Third-party APIs (`rand`, `proptest`, `criterion`) resolve to offline
//! shims under `shims/`, pinned in `[workspace.dependencies]` — see the
//! top-level `README.md`.
//!
//! Tier-1 verification, from the repo root (covers every member crate,
//! integration suite, doc-test and example):
//!
//! ```text
//! cargo build --release && cargo test -q
//! ```

pub use cxrpq_automata as automata;
pub use cxrpq_core as core;
pub use cxrpq_graph as graph;
pub use cxrpq_workloads as workloads;
pub use cxrpq_xregex as xregex;

/// Convenient re-exports of the most frequently used types.
pub mod prelude {
    pub use cxrpq_automata::{nfa_equivalent, parse_regex, Dfa, Nfa, Regex};
    pub use cxrpq_core::{
        parse_query, render_query, AutoEvaluator, BoundedEvaluator, Crpq, CrpqEvaluator, Cxrpq,
        CxrpqBuilder, Ecrpq, EcrpqEvaluator, EngineKind, EvalOptions, GenericEvaluator,
        LogEvaluator, PathSemantics, QueryWitness, RegularRelation, SimpleEvaluator, UnionCrpq,
        UnionEcrpq, VsfEvaluator,
    };
    pub use cxrpq_graph::{
        read_graph, write_graph, Alphabet, DenseBitSet, GraphBuilder, GraphDb, NodeId, Path, Symbol,
    };
    pub use cxrpq_xregex::{parse_xregex, ConjunctiveXregex, Fragment, Xregex};
}
