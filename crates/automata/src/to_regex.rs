//! NFA → regular expression conversion by state elimination.
//!
//! Needed for the ECRPQ^er → CXRPQ^vsf,fl translation (Lemma 12), which
//! replaces the edges of an equality class by a single regular expression for
//! `⋂ᵢ L(αᵢ)`; the intersection is computed as a product NFA and then turned
//! back into a regular expression here.

use crate::nfa::{Label, Nfa};
use crate::regex::Regex;
use std::collections::HashMap;

fn label_to_regex(l: Label) -> Regex {
    match l {
        Label::Eps => Regex::Epsilon,
        Label::Sym(a) => Regex::Sym(a),
        Label::Any => Regex::Any,
    }
}

/// Converts an NFA to an equivalent regular expression (state elimination on
/// a generalized NFA). The automaton is trimmed first; an empty language
/// yields `Regex::Empty`.
///
/// Output size is worst-case exponential in the number of states — this
/// mirrors the conciseness discussion in the paper's §8 and is acceptable for
/// the small automata arising in Lemma 12's equality classes.
pub fn nfa_to_regex(nfa: &Nfa) -> Regex {
    let nfa = nfa.trim();
    if nfa.is_empty() {
        return Regex::Empty;
    }
    let n = nfa.state_count();
    // Generalized NFA edges: (from, to) -> regex. Fresh start = n, final = n + 1.
    let start = n;
    let fin = n + 1;
    let mut edges: HashMap<(usize, usize), Regex> = HashMap::new();
    let add = |edges: &mut HashMap<(usize, usize), Regex>, f: usize, t: usize, r: Regex| {
        if r == Regex::Empty {
            return;
        }
        match edges.entry((f, t)) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let old = e.get().clone();
                *e.get_mut() = Regex::alt(vec![old, r]);
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(r);
            }
        }
    };
    for s in nfa.states() {
        for &(l, t) in nfa.transitions(s) {
            add(&mut edges, s.index(), t.index(), label_to_regex(l));
        }
    }
    add(&mut edges, start, nfa.start().index(), Regex::Epsilon);
    for f in nfa.final_states() {
        add(&mut edges, f.index(), fin, Regex::Epsilon);
    }

    // Eliminate original states, lowest degree first (keeps outputs smaller).
    let mut alive: Vec<usize> = (0..n).collect();
    while !alive.is_empty() {
        // Pick the alive state with the fewest incident GNFA edges.
        let (pos, &r) = alive
            .iter()
            .enumerate()
            .min_by_key(|(_, &s)| edges.keys().filter(|&&(f, t)| f == s || t == s).count())
            .unwrap();
        alive.swap_remove(pos);

        let self_loop = edges.remove(&(r, r));
        let loop_star = self_loop.map(Regex::star);
        let ins: Vec<(usize, Regex)> = edges
            .iter()
            .filter(|(&(_, t), _)| t == r)
            .map(|(&(f, _), re)| (f, re.clone()))
            .collect();
        let outs: Vec<(usize, Regex)> = edges
            .iter()
            .filter(|(&(f, _), _)| f == r)
            .map(|(&(_, t), re)| (t, re.clone()))
            .collect();
        edges.retain(|&(f, t), _| f != r && t != r);
        for (f, rin) in &ins {
            for (t, rout) in &outs {
                let mut parts = vec![rin.clone()];
                if let Some(ls) = &loop_star {
                    parts.push(ls.clone());
                }
                parts.push(rout.clone());
                add(&mut edges, *f, *t, Regex::concat(parts));
            }
        }
    }
    edges.remove(&(start, fin)).unwrap_or(Regex::Empty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_regex;
    use cxrpq_graph::Alphabet;

    fn round_trip(s: &str) {
        let mut alpha = Alphabet::from_chars("abc");
        let r = parse_regex(s, &mut alpha).unwrap();
        let m = Nfa::from_regex(&r);
        let back = nfa_to_regex(&m);
        let m2 = Nfa::from_regex(&back);
        assert_eq!(
            m.enumerate_upto(5, 3),
            m2.enumerate_upto(5, 3),
            "language changed for {s}: got {}",
            back.render(&alpha)
        );
    }

    #[test]
    fn round_trips_preserve_language() {
        for s in [
            "a", "ab", "a|b", "a*", "(ab|c)+", "a(b|c)*a", "_", "(a|ε)b*",
        ] {
            round_trip(s);
        }
    }

    #[test]
    fn empty_language_to_empty_regex() {
        let mut alpha = Alphabet::from_chars("a");
        let r = parse_regex("!", &mut alpha).unwrap();
        let m = Nfa::from_regex(&r);
        assert_eq!(nfa_to_regex(&m), Regex::Empty);
    }

    #[test]
    fn intersection_to_regex() {
        // L(a*b*) ∩ L((ab)*|a*) = a* ∪ {ab}.
        let mut alpha = Alphabet::from_chars("ab");
        let r1 = parse_regex("a*b*", &mut alpha).unwrap();
        let r2 = parse_regex("(ab)*|a*", &mut alpha).unwrap();
        let i = Nfa::intersection(&Nfa::from_regex(&r1), &Nfa::from_regex(&r2));
        let back = nfa_to_regex(&i);
        let m = Nfa::from_regex(&back);
        let expect = |w: &str| alpha.parse_word(w).unwrap();
        assert!(m.accepts(&expect("")));
        assert!(m.accepts(&expect("aaa")));
        assert!(m.accepts(&expect("ab")));
        assert!(!m.accepts(&expect("abab")));
        assert!(!m.accepts(&expect("bb")));
    }

    #[test]
    fn any_labels_survive() {
        let mut alpha = Alphabet::from_chars("ab");
        let r = parse_regex(".*a", &mut alpha).unwrap();
        let m = Nfa::from_regex(&r);
        let back = nfa_to_regex(&m);
        let m2 = Nfa::from_regex(&back);
        assert_eq!(m.enumerate_upto(4, 2), m2.enumerate_upto(4, 2));
    }
}
