//! Deterministic finite automata: subset construction, Hopcroft
//! minimization, complement, and decision procedures for language
//! equivalence and inclusion.
//!
//! The paper's constructions only need NFAs, but several of its *claims*
//! are language equalities (normal forms preserve `L_ref`, Lemma 12's
//! `β ≡ ⋂ᵢ L(αᵢ)`, the regex recovered by state elimination). DFAs give the
//! test suite exact decision procedures for those equalities instead of
//! sampling-based approximations.

use crate::nfa::{Label, Nfa};
use cxrpq_graph::Symbol;
use std::collections::{HashMap, VecDeque};

/// A complete DFA over the symbol range `0..sigma` (state 0 is the start;
/// every state has exactly one successor per symbol — a dead state is added
/// by the constructions when needed).
#[derive(Clone, Debug)]
pub struct Dfa {
    sigma: usize,
    finals: Vec<bool>,
    /// `trans[s * sigma + a]` = successor of state `s` on symbol `a`.
    trans: Vec<u32>,
}

impl Dfa {
    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.finals.len()
    }

    /// Alphabet size this DFA is complete over.
    pub fn sigma(&self) -> usize {
        self.sigma
    }

    /// Whether `s` is accepting.
    pub fn is_final(&self, s: u32) -> bool {
        self.finals[s as usize]
    }

    /// The successor of `s` on `a`.
    pub fn next(&self, s: u32, a: Symbol) -> u32 {
        self.trans[s as usize * self.sigma + a.index()]
    }

    /// Whether the DFA accepts `w`.
    pub fn accepts(&self, w: &[Symbol]) -> bool {
        let mut s = 0u32;
        for &a in w {
            debug_assert!(a.index() < self.sigma, "symbol outside alphabet");
            s = self.next(s, a);
        }
        self.finals[s as usize]
    }

    /// Subset construction. `sigma` must cover every concrete symbol of the
    /// NFA (its `Any` transitions expand to all of `0..sigma`).
    pub fn from_nfa(nfa: &Nfa, sigma: usize) -> Dfa {
        assert!(sigma > 0, "alphabet must be non-empty");
        let start_set = nfa.start_set();
        let mut ids: HashMap<Vec<bool>, u32> = HashMap::new();
        let mut finals: Vec<bool> = Vec::new();
        let mut trans: Vec<u32> = Vec::new();
        ids.insert(start_set.clone(), 0);
        finals.push(nfa.any_final(&start_set));
        trans.resize(sigma, u32::MAX);
        // `order` doubles as the worklist: `i` chases its growing tail.
        let mut order: Vec<Vec<bool>> = vec![start_set];
        let mut i = 0usize;
        while i < order.len() {
            let set = order[i].clone();
            let sid = ids[&set];
            for a in 0..sigma {
                let next = nfa.step(&set, Symbol(a as u32));
                let nid = *ids.entry(next.clone()).or_insert_with(|| {
                    let id = finals.len() as u32;
                    finals.push(nfa.any_final(&next));
                    trans.resize(trans.len() + sigma, u32::MAX);
                    order.push(next);
                    id
                });
                trans[sid as usize * sigma + a] = nid;
            }
            i += 1;
        }
        Dfa {
            sigma,
            finals,
            trans,
        }
    }

    /// The complement DFA (accepts exactly the words this one rejects).
    pub fn complement(&self) -> Dfa {
        Dfa {
            sigma: self.sigma,
            finals: self.finals.iter().map(|&f| !f).collect(),
            trans: self.trans.clone(),
        }
    }

    /// Whether the language is empty (no accepting state reachable).
    pub fn is_empty(&self) -> bool {
        let mut seen = vec![false; self.state_count()];
        let mut stack = vec![0u32];
        seen[0] = true;
        while let Some(s) = stack.pop() {
            if self.finals[s as usize] {
                return false;
            }
            for a in 0..self.sigma {
                let t = self.trans[s as usize * self.sigma + a];
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    stack.push(t);
                }
            }
        }
        true
    }

    /// A shortest accepted word, if any.
    pub fn shortest_word(&self) -> Option<Vec<Symbol>> {
        let mut parent: Vec<Option<(u32, Symbol)>> = vec![None; self.state_count()];
        let mut seen = vec![false; self.state_count()];
        let mut queue = VecDeque::new();
        seen[0] = true;
        queue.push_back(0u32);
        while let Some(s) = queue.pop_front() {
            if self.finals[s as usize] {
                let mut w = Vec::new();
                let mut cur = s;
                while let Some((p, a)) = parent[cur as usize] {
                    w.push(a);
                    cur = p;
                }
                w.reverse();
                return Some(w);
            }
            for a in 0..self.sigma {
                let t = self.trans[s as usize * self.sigma + a];
                if !seen[t as usize] {
                    seen[t as usize] = true;
                    parent[t as usize] = Some((s, Symbol(a as u32)));
                    queue.push_back(t);
                }
            }
        }
        None
    }

    /// Hopcroft's partition-refinement minimization. The result is the
    /// canonical minimal complete DFA for the language (up to state
    /// numbering; state 0 remains the start).
    pub fn minimize(&self) -> Dfa {
        let n = self.state_count();
        if n == 0 {
            return self.clone();
        }
        // Inverse transition lists per symbol.
        let mut inv: Vec<Vec<Vec<u32>>> = vec![vec![Vec::new(); n]; self.sigma];
        for s in 0..n {
            for (a, row) in inv.iter_mut().enumerate() {
                let t = self.trans[s * self.sigma + a];
                row[t as usize].push(s as u32);
            }
        }
        // Initial partition: finals / non-finals.
        let mut block_of: Vec<u32> = self.finals.iter().map(|&f| if f { 0 } else { 1 }).collect();
        let mut blocks: Vec<Vec<u32>> = vec![Vec::new(), Vec::new()];
        for s in 0..n {
            blocks[block_of[s] as usize].push(s as u32);
        }
        if blocks[1].is_empty() || blocks[0].is_empty() {
            blocks.retain(|b| !b.is_empty());
            block_of.fill(0);
        }
        let mut worklist: VecDeque<(usize, usize)> = VecDeque::new();
        let smaller = if blocks.len() == 2 && blocks[1].len() < blocks[0].len() {
            1
        } else {
            0
        };
        for a in 0..self.sigma {
            worklist.push_back((smaller, a));
            if blocks.len() == 2 {
                worklist.push_back((1 - smaller, a));
            }
        }
        while let Some((bi, a)) = worklist.pop_front() {
            // X = states with an a-transition into block bi.
            let mut x: Vec<u32> = Vec::new();
            for &t in &blocks[bi] {
                x.extend(inv[a][t as usize].iter().copied());
            }
            if x.is_empty() {
                continue;
            }
            x.sort_unstable();
            x.dedup();
            // Split every block Y into Y ∩ X and Y \ X.
            let mut touched: Vec<usize> =
                x.iter().map(|&s| block_of[s as usize] as usize).collect();
            touched.sort_unstable();
            touched.dedup();
            for y in touched {
                let in_x: Vec<u32> = blocks[y]
                    .iter()
                    .copied()
                    .filter(|&s| x.binary_search(&s).is_ok())
                    .collect();
                if in_x.len() == blocks[y].len() || in_x.is_empty() {
                    continue;
                }
                let out_x: Vec<u32> = blocks[y]
                    .iter()
                    .copied()
                    .filter(|&s| x.binary_search(&s).is_err())
                    .collect();
                let new_id = blocks.len();
                let (keep, moved) = if in_x.len() <= out_x.len() {
                    (out_x, in_x)
                } else {
                    (in_x, out_x)
                };
                for &s in &moved {
                    block_of[s as usize] = new_id as u32;
                }
                blocks[y] = keep;
                blocks.push(moved);
                for b in 0..self.sigma {
                    worklist.push_back((new_id, b));
                }
            }
        }
        // Rebuild with the start block renumbered to 0.
        let start_block = block_of[0] as usize;
        let mut renum: Vec<u32> = vec![u32::MAX; blocks.len()];
        renum[start_block] = 0;
        let mut next_id = 1u32;
        for (b, members) in blocks.iter().enumerate() {
            if b != start_block && !members.is_empty() {
                renum[b] = next_id;
                next_id += 1;
            }
        }
        let m = next_id as usize;
        let mut finals = vec![false; m];
        let mut trans = vec![u32::MAX; m * self.sigma];
        for (b, members) in blocks.iter().enumerate() {
            if members.is_empty() {
                continue;
            }
            let rep = members[0] as usize;
            let id = renum[b] as usize;
            finals[id] = self.finals[rep];
            for a in 0..self.sigma {
                let t = self.trans[rep * self.sigma + a] as usize;
                trans[id * self.sigma + a] = renum[block_of[t] as usize];
            }
        }
        Dfa {
            sigma: self.sigma,
            finals,
            trans,
        }
    }

    /// Language equivalence, by BFS over the product (pairs that disagree on
    /// acceptance witness inequivalence).
    pub fn equivalent(a: &Dfa, b: &Dfa) -> bool {
        assert_eq!(a.sigma, b.sigma, "alphabets must agree");
        Self::find_difference(a, b).is_none()
    }

    /// A shortest word in the symmetric difference `L(a) Δ L(b)`, if any.
    pub fn find_difference(a: &Dfa, b: &Dfa) -> Option<Vec<Symbol>> {
        assert_eq!(a.sigma, b.sigma, "alphabets must agree");
        type Pred = Option<(u32, u32, Symbol)>;
        let mut seen: HashMap<(u32, u32), Pred> = HashMap::new();
        let mut queue = VecDeque::new();
        seen.insert((0, 0), None);
        queue.push_back((0u32, 0u32));
        while let Some((s, t)) = queue.pop_front() {
            if a.finals[s as usize] != b.finals[t as usize] {
                // Reconstruct the separating word.
                let mut w = Vec::new();
                let mut cur = (s, t);
                while let Some((ps, pt, sym)) = seen[&cur] {
                    w.push(sym);
                    cur = (ps, pt);
                }
                w.reverse();
                return Some(w);
            }
            for x in 0..a.sigma {
                let ns = a.trans[s as usize * a.sigma + x];
                let nt = b.trans[t as usize * b.sigma + x];
                seen.entry((ns, nt)).or_insert_with(|| {
                    queue.push_back((ns, nt));
                    Some((s, t, Symbol(x as u32)))
                });
            }
        }
        None
    }

    /// Language inclusion `L(a) ⊆ L(b)`.
    pub fn included_in(a: &Dfa, b: &Dfa) -> bool {
        assert_eq!(a.sigma, b.sigma, "alphabets must agree");
        let mut seen: std::collections::HashSet<(u32, u32)> = std::collections::HashSet::new();
        let mut queue = VecDeque::new();
        seen.insert((0, 0));
        queue.push_back((0u32, 0u32));
        while let Some((s, t)) = queue.pop_front() {
            if a.finals[s as usize] && !b.finals[t as usize] {
                return false;
            }
            for x in 0..a.sigma {
                let pair = (
                    a.trans[s as usize * a.sigma + x],
                    b.trans[t as usize * b.sigma + x],
                );
                if seen.insert(pair) {
                    queue.push_back(pair);
                }
            }
        }
        true
    }
}

/// Language equivalence of two NFAs over the symbol range `0..sigma`.
pub fn nfa_equivalent(a: &Nfa, b: &Nfa, sigma: usize) -> bool {
    Dfa::equivalent(&Dfa::from_nfa(a, sigma), &Dfa::from_nfa(b, sigma))
}

/// Language inclusion `L(a) ⊆ L(b)` for NFAs over `0..sigma`.
pub fn nfa_included(a: &Nfa, b: &Nfa, sigma: usize) -> bool {
    Dfa::included_in(&Dfa::from_nfa(a, sigma), &Dfa::from_nfa(b, sigma))
}

/// The maximal concrete symbol index mentioned by an NFA (for picking a
/// sufficient `sigma`). `Any` labels do not contribute.
pub fn max_symbol(nfa: &Nfa) -> Option<u32> {
    let mut max = None;
    for s in nfa.states() {
        for &(l, _) in nfa.transitions(s) {
            if let Label::Sym(a) = l {
                max = Some(max.map_or(a.0, |m: u32| m.max(a.0)));
            }
        }
    }
    max
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_regex;
    use cxrpq_graph::Alphabet;

    fn dfa_of(pattern: &str, sigma: usize) -> Dfa {
        let mut alpha = Alphabet::from_chars("abcd");
        let re = parse_regex(pattern, &mut alpha).unwrap();
        Dfa::from_nfa(&Nfa::from_regex(&re), sigma)
    }

    fn w(alpha: &Alphabet, s: &str) -> Vec<Symbol> {
        alpha.parse_word(s).unwrap()
    }

    #[test]
    fn subset_construction_classic() {
        let alpha = Alphabet::from_chars("abcd");
        let d = dfa_of("(a|b)*abb", 2);
        assert!(d.accepts(&w(&alpha, "abb")));
        assert!(d.accepts(&w(&alpha, "aababb")));
        assert!(!d.accepts(&w(&alpha, "ab")));
        assert!(!d.accepts(&w(&alpha, "")));
    }

    #[test]
    fn minimization_reaches_known_size() {
        // (a|b)*abb has a 4-state minimal DFA (over Σ = {a,b}, complete,
        // no dead state needed).
        let d = dfa_of("(a|b)*abb", 2).minimize();
        assert_eq!(d.state_count(), 4);
        // Minimization is idempotent.
        assert_eq!(d.minimize().state_count(), 4);
    }

    #[test]
    fn minimization_preserves_language() {
        let alpha = Alphabet::from_chars("abcd");
        for pat in ["(a|b)*abb", "a*b*", "(ab)+|ba", "((a|b)(a|b))*", "_"] {
            let d = dfa_of(pat, 2);
            let m = d.minimize();
            assert!(Dfa::equivalent(&d, &m), "pattern {pat}");
            assert!(m.state_count() <= d.state_count());
            for word in ["", "a", "b", "ab", "abb", "aabb", "bababb"] {
                assert_eq!(
                    d.accepts(&w(&alpha, word)),
                    m.accepts(&w(&alpha, word)),
                    "pattern {pat}, word {word}"
                );
            }
        }
    }

    #[test]
    fn complement_flips_membership() {
        let alpha = Alphabet::from_chars("abcd");
        let d = dfa_of("a*b", 2);
        let c = d.complement();
        for word in ["", "a", "b", "ab", "aab", "abb"] {
            assert_ne!(d.accepts(&w(&alpha, word)), c.accepts(&w(&alpha, word)));
        }
        // L ∪ L̄ = Σ*: the union's complement is empty.
        assert!(Dfa::equivalent(&d.complement().complement(), &d));
    }

    #[test]
    fn equivalence_and_difference() {
        let d1 = dfa_of("(ab)*", 2);
        let d2 = dfa_of("_|(ab)+", 2); // same language, different syntax
        assert!(Dfa::equivalent(&d1, &d2));
        let d3 = dfa_of("(ab)+", 2);
        assert!(!Dfa::equivalent(&d1, &d3));
        // Shortest separating word is ε.
        assert_eq!(Dfa::find_difference(&d1, &d3), Some(vec![]));
    }

    #[test]
    fn inclusion_is_an_order() {
        let small = dfa_of("ab", 2);
        let big = dfa_of("(a|b)*", 2);
        assert!(Dfa::included_in(&small, &big));
        assert!(!Dfa::included_in(&big, &small));
        assert!(Dfa::included_in(&big, &big));
    }

    #[test]
    fn emptiness_and_shortest_word() {
        let alpha = Alphabet::from_chars("abcd");
        let d = dfa_of("a*bba*", 2);
        assert!(!d.is_empty());
        assert_eq!(d.shortest_word(), Some(w(&alpha, "bb")));
        // a ∩ b is empty: check via product on the NFA layer.
        let mut a2 = Alphabet::from_chars("abcd");
        let na = Nfa::from_regex(&parse_regex("a", &mut a2).unwrap());
        let nb = Nfa::from_regex(&parse_regex("b", &mut a2).unwrap());
        let inter = Nfa::intersection(&na, &nb);
        assert!(Dfa::from_nfa(&inter, 2).is_empty());
    }

    #[test]
    fn nfa_equivalence_bridges() {
        let mut alpha = Alphabet::from_chars("abcd");
        let r1 = parse_regex("(a|b)*", &mut alpha).unwrap();
        let r2 = parse_regex("(a*b*)*", &mut alpha).unwrap();
        assert!(nfa_equivalent(
            &Nfa::from_regex(&r1),
            &Nfa::from_regex(&r2),
            2
        ));
        let r3 = parse_regex("(a*b)*", &mut alpha).unwrap();
        // (a*b)* misses words ending in a.
        assert!(!nfa_equivalent(
            &Nfa::from_regex(&r1),
            &Nfa::from_regex(&r3),
            2
        ));
        assert!(nfa_included(
            &Nfa::from_regex(&r3),
            &Nfa::from_regex(&r1),
            2
        ));
    }

    #[test]
    fn any_labels_expand_over_sigma() {
        let mut alpha = Alphabet::from_chars("abcd");
        let re = parse_regex("..", &mut alpha).unwrap(); // any two symbols
        let d = Dfa::from_nfa(&Nfa::from_regex(&re), 4);
        let alpha2 = Alphabet::from_chars("abcd");
        assert!(d.accepts(&w(&alpha2, "cd")));
        assert!(d.accepts(&w(&alpha2, "aa")));
        assert!(!d.accepts(&w(&alpha2, "abc")));
        // Minimal: start, after-1, accept, dead = 4 states.
        assert_eq!(d.minimize().state_count(), 4);
    }

    #[test]
    fn max_symbol_reports_concrete_symbols() {
        let mut alpha = Alphabet::from_chars("abcd");
        let re = parse_regex("a|c", &mut alpha).unwrap();
        assert_eq!(max_symbol(&Nfa::from_regex(&re)), Some(2));
        let any = parse_regex(".", &mut alpha).unwrap();
        assert_eq!(max_symbol(&Nfa::from_regex(&any)), None);
    }
}
