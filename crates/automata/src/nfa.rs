//! Nondeterministic finite automata with ε-transitions.

use crate::regex::Regex;
use cxrpq_graph::Symbol;
use std::collections::{HashMap, VecDeque};

/// A state of an [`Nfa`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct StateId(pub u32);

impl StateId {
    /// Dense index of the state.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A transition label: ε, a concrete symbol, or "any symbol of Σ".
///
/// `Any` keeps automata for `Σ` / `Σ*` constant-sized independently of |Σ|,
/// which matters because the paper's constructions use `x{Σ*}` dummy
/// definitions pervasively (§3.1).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Label {
    /// The empty word.
    Eps,
    /// One concrete symbol.
    Sym(Symbol),
    /// Any single symbol of Σ.
    Any,
}

impl Label {
    /// Whether this label can read the concrete symbol `a`.
    #[inline]
    pub fn reads(self, a: Symbol) -> bool {
        match self {
            Label::Eps => false,
            Label::Sym(b) => a == b,
            Label::Any => true,
        }
    }
}

/// An NFA with a single start state and a set of final states.
#[derive(Clone, Debug)]
pub struct Nfa {
    start: StateId,
    finals: Vec<bool>,
    trans: Vec<Vec<(Label, StateId)>>,
}

impl Nfa {
    /// Creates an NFA with `n` states (none final), start state 0 and no
    /// transitions. Mostly useful for hand-built automata in tests and
    /// reductions.
    pub fn with_states(n: usize) -> Self {
        Self {
            start: StateId(0),
            finals: vec![false; n],
            trans: vec![Vec::new(); n],
        }
    }

    /// Adds a fresh state.
    pub fn add_state(&mut self) -> StateId {
        let id = StateId(self.trans.len() as u32);
        self.trans.push(Vec::new());
        self.finals.push(false);
        id
    }

    /// Adds a transition.
    pub fn add_transition(&mut self, from: StateId, label: Label, to: StateId) {
        self.trans[from.index()].push((label, to));
    }

    /// Sets the start state.
    pub fn set_start(&mut self, s: StateId) {
        self.start = s;
    }

    /// Marks a state final.
    pub fn set_final(&mut self, s: StateId, f: bool) {
        self.finals[s.index()] = f;
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Whether `s` is a final state.
    pub fn is_final(&self, s: StateId) -> bool {
        self.finals[s.index()]
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.trans.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.trans.iter().map(Vec::len).sum()
    }

    /// Outgoing transitions of `s`.
    #[inline]
    pub fn transitions(&self, s: StateId) -> &[(Label, StateId)] {
        &self.trans[s.index()]
    }

    /// All states.
    pub fn states(&self) -> impl Iterator<Item = StateId> + '_ {
        (0..self.trans.len() as u32).map(StateId)
    }

    /// All final states.
    pub fn final_states(&self) -> impl Iterator<Item = StateId> + '_ {
        self.states().filter(|s| self.is_final(*s))
    }

    // ------------------------------------------------------------------
    // Thompson construction
    // ------------------------------------------------------------------

    /// Builds an NFA accepting `L(r)` via the Thompson construction.
    ///
    /// The result has a single final state and O(|r|) states/transitions.
    pub fn from_regex(r: &Regex) -> Self {
        let mut nfa = Nfa {
            start: StateId(0),
            finals: Vec::new(),
            trans: Vec::new(),
        };
        let (s, t) = nfa.build(r);
        nfa.start = s;
        nfa.finals[t.index()] = true;
        nfa
    }

    fn build(&mut self, r: &Regex) -> (StateId, StateId) {
        match r {
            Regex::Empty => {
                let s = self.add_state();
                let t = self.add_state();
                (s, t)
            }
            Regex::Epsilon => {
                let s = self.add_state();
                let t = self.add_state();
                self.add_transition(s, Label::Eps, t);
                (s, t)
            }
            Regex::Sym(a) => {
                let s = self.add_state();
                let t = self.add_state();
                self.add_transition(s, Label::Sym(*a), t);
                (s, t)
            }
            Regex::Any => {
                let s = self.add_state();
                let t = self.add_state();
                self.add_transition(s, Label::Any, t);
                (s, t)
            }
            Regex::Concat(ps) => {
                let mut first = None;
                let mut last: Option<StateId> = None;
                for p in ps {
                    let (s, t) = self.build(p);
                    if let Some(prev) = last {
                        self.add_transition(prev, Label::Eps, s);
                    } else {
                        first = Some(s);
                    }
                    last = Some(t);
                }
                (first.unwrap(), last.unwrap())
            }
            Regex::Alt(ps) => {
                let s = self.add_state();
                let t = self.add_state();
                for p in ps {
                    let (ps_, pt) = self.build(p);
                    self.add_transition(s, Label::Eps, ps_);
                    self.add_transition(pt, Label::Eps, t);
                }
                (s, t)
            }
            Regex::Plus(p) => {
                let s = self.add_state();
                let t = self.add_state();
                let (ps, pt) = self.build(p);
                self.add_transition(s, Label::Eps, ps);
                self.add_transition(pt, Label::Eps, t);
                self.add_transition(pt, Label::Eps, ps);
                (s, t)
            }
            Regex::Star(p) => {
                let s = self.add_state();
                let t = self.add_state();
                let (ps, pt) = self.build(p);
                self.add_transition(s, Label::Eps, ps);
                self.add_transition(pt, Label::Eps, t);
                self.add_transition(pt, Label::Eps, ps);
                self.add_transition(s, Label::Eps, t);
                (s, t)
            }
        }
    }

    // ------------------------------------------------------------------
    // Simulation
    // ------------------------------------------------------------------

    /// Extends `set` (a boolean membership vector) to its ε-closure.
    pub fn eps_close(&self, set: &mut [bool]) {
        let mut stack: Vec<StateId> = set
            .iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| StateId(i as u32))
            .collect();
        while let Some(s) = stack.pop() {
            for &(l, t) in self.transitions(s) {
                if l == Label::Eps && !set[t.index()] {
                    set[t.index()] = true;
                    stack.push(t);
                }
            }
        }
    }

    /// ε-closure of a single state, as a sorted state list.
    pub fn eps_closure_of(&self, s: StateId) -> Vec<StateId> {
        let mut set = vec![false; self.state_count()];
        set[s.index()] = true;
        self.eps_close(&mut set);
        set.iter()
            .enumerate()
            .filter(|(_, &b)| b)
            .map(|(i, _)| StateId(i as u32))
            .collect()
    }

    /// One symbol step on a closed state set, returning the closed result.
    pub fn step(&self, set: &[bool], a: Symbol) -> Vec<bool> {
        let mut next = vec![false; self.state_count()];
        for (i, &b) in set.iter().enumerate() {
            if !b {
                continue;
            }
            for &(l, t) in self.transitions(StateId(i as u32)) {
                if l.reads(a) {
                    next[t.index()] = true;
                }
            }
        }
        self.eps_close(&mut next);
        next
    }

    /// The ε-closed start set.
    pub fn start_set(&self) -> Vec<bool> {
        let mut set = vec![false; self.state_count()];
        set[self.start.index()] = true;
        self.eps_close(&mut set);
        set
    }

    /// Whether any state of `set` is final.
    pub fn any_final(&self, set: &[bool]) -> bool {
        set.iter().enumerate().any(|(i, &b)| b && self.finals[i])
    }

    /// Membership test `w ∈ L(self)` via subset simulation.
    pub fn accepts(&self, w: &[Symbol]) -> bool {
        let mut set = self.start_set();
        for &a in w {
            set = self.step(&set, a);
            if set.iter().all(|&b| !b) {
                return false;
            }
        }
        self.any_final(&set)
    }

    // ------------------------------------------------------------------
    // Language algebra
    // ------------------------------------------------------------------

    /// Product automaton accepting `L(a) ∩ L(b)`, built on the fly from the
    /// reachable pair space.
    ///
    /// `Any` labels combine as expected: `Any ∩ Sym(a) = Sym(a)` and
    /// `Any ∩ Any = Any`.
    pub fn intersection(a: &Nfa, b: &Nfa) -> Nfa {
        let mut out = Nfa {
            start: StateId(0),
            finals: Vec::new(),
            trans: Vec::new(),
        };
        let mut ids: HashMap<(StateId, StateId), StateId> = HashMap::new();
        let mut queue = VecDeque::new();
        let start = (a.start, b.start);
        let s0 = out.add_state();
        ids.insert(start, s0);
        out.start = s0;
        queue.push_back(start);
        while let Some((p, q)) = queue.pop_front() {
            let pid = ids[&(p, q)];
            out.finals[pid.index()] = a.is_final(p) && b.is_final(q);
            let push = |out: &mut Nfa,
                        ids: &mut HashMap<(StateId, StateId), StateId>,
                        queue: &mut VecDeque<(StateId, StateId)>,
                        label: Label,
                        tgt: (StateId, StateId)| {
                let tid = *ids.entry(tgt).or_insert_with(|| {
                    queue.push_back(tgt);
                    out.add_state()
                });
                out.add_transition(pid, label, tid);
            };
            // ε moves on either side.
            for &(l, t) in a.transitions(p) {
                if l == Label::Eps {
                    push(&mut out, &mut ids, &mut queue, Label::Eps, (t, q));
                }
            }
            for &(l, t) in b.transitions(q) {
                if l == Label::Eps {
                    push(&mut out, &mut ids, &mut queue, Label::Eps, (p, t));
                }
            }
            // Synchronized symbol moves.
            for &(la, ta) in a.transitions(p) {
                for &(lb, tb) in b.transitions(q) {
                    let combined = match (la, lb) {
                        (Label::Eps, _) | (_, Label::Eps) => None,
                        (Label::Sym(x), Label::Sym(y)) if x == y => Some(Label::Sym(x)),
                        (Label::Sym(_), Label::Sym(_)) => None,
                        (Label::Sym(x), Label::Any) | (Label::Any, Label::Sym(x)) => {
                            Some(Label::Sym(x))
                        }
                        (Label::Any, Label::Any) => Some(Label::Any),
                    };
                    if let Some(l) = combined {
                        push(&mut out, &mut ids, &mut queue, l, (ta, tb));
                    }
                }
            }
        }
        out
    }

    /// Intersection of several automata (left fold).
    pub fn intersect_all(autos: &[Nfa]) -> Nfa {
        assert!(!autos.is_empty());
        let mut acc = autos[0].clone();
        for m in &autos[1..] {
            acc = Nfa::intersection(&acc, m);
        }
        acc
    }

    /// Union automaton accepting `⋃ L(mᵢ)` (fresh start with ε-branches).
    pub fn union(autos: &[Nfa]) -> Nfa {
        let mut out = Nfa::with_states(1);
        for m in autos {
            let offset = out.state_count() as u32;
            for s in m.states() {
                let ns = out.add_state();
                out.finals[ns.index()] = m.is_final(s);
            }
            for s in m.states() {
                for &(l, t) in m.transitions(s) {
                    out.add_transition(StateId(s.0 + offset), l, StateId(t.0 + offset));
                }
            }
            out.add_transition(StateId(0), Label::Eps, StateId(m.start.0 + offset));
        }
        out
    }

    /// Whether `ε ∈ L(self)` (some start-closure state is final).
    pub fn accepts_epsilon(&self) -> bool {
        self.any_final(&self.start_set())
    }

    /// Whether `L(self) = {ε}`: the automaton accepts the empty word and
    /// nothing else. Decided structurally — after trimming, every remaining
    /// transition lies on some accepting path, so a single non-ε label
    /// witnesses a non-empty accepted word.
    pub fn is_epsilon_only(&self) -> bool {
        if !self.accepts_epsilon() {
            return false;
        }
        let t = self.trim();
        let eps_only = t
            .states()
            .all(|s| t.transitions(s).iter().all(|&(l, _)| l == Label::Eps));
        eps_only
    }

    /// Bounded language-inclusion test `L(self) ⊆ L(other)` over the
    /// alphabet `Σ = {0, …, sigma_size-1}`.
    ///
    /// Explores the product of `self`'s states with determinized subsets of
    /// `other` on the fly; a `self`-final state paired with a subset
    /// containing no `other`-final state is a counterexample word. `Any`
    /// transitions on the `self` side expand over every symbol of Σ.
    /// Returns `None` when the number of visited product states exceeds
    /// `budget` — the check is abandoned, not answered.
    pub fn included_in(&self, other: &Nfa, sigma_size: usize, budget: usize) -> Option<bool> {
        fn pack(set: &[bool]) -> Vec<u64> {
            let mut out = vec![0u64; set.len().div_ceil(64)];
            for (i, &b) in set.iter().enumerate() {
                if b {
                    out[i / 64] |= 1 << (i % 64);
                }
            }
            out
        }
        let q0 = other.start_set();
        let mut visited: std::collections::HashSet<(StateId, Vec<u64>)> =
            std::collections::HashSet::new();
        visited.insert((self.start, pack(&q0)));
        let mut stack = vec![(self.start, q0)];
        while let Some((p, q)) = stack.pop() {
            if visited.len() > budget {
                return None;
            }
            if self.is_final(p) && !other.any_final(&q) {
                return Some(false);
            }
            let push = |t: StateId,
                        nq: Vec<bool>,
                        visited: &mut std::collections::HashSet<_>,
                        stack: &mut Vec<_>| {
                if visited.insert((t, pack(&nq))) {
                    stack.push((t, nq));
                }
            };
            for &(l, t) in self.transitions(p) {
                match l {
                    Label::Eps => push(t, q.clone(), &mut visited, &mut stack),
                    Label::Sym(a) => push(t, other.step(&q, a), &mut visited, &mut stack),
                    Label::Any => {
                        for i in 0..sigma_size as u32 {
                            push(t, other.step(&q, Symbol(i)), &mut visited, &mut stack);
                        }
                    }
                }
            }
        }
        Some(true)
    }

    /// Bounded universality test `L(self) = Σ*` over `Σ = {0, …,
    /// sigma_size-1}`: inclusion of the one-state Σ* automaton in `self`.
    /// `None` means the `budget` on visited product states was exceeded.
    pub fn is_universal(&self, sigma_size: usize, budget: usize) -> Option<bool> {
        let mut all = Nfa::with_states(1);
        all.set_final(StateId(0), true);
        all.add_transition(StateId(0), Label::Any, StateId(0));
        all.included_in(self, sigma_size, budget)
    }

    /// Whether `L(self) = ∅` (no final state reachable).
    pub fn is_empty(&self) -> bool {
        let mut seen = vec![false; self.state_count()];
        let mut stack = vec![self.start];
        seen[self.start.index()] = true;
        while let Some(s) = stack.pop() {
            if self.is_final(s) {
                return false;
            }
            for &(_, t) in self.transitions(s) {
                if !seen[t.index()] {
                    seen[t.index()] = true;
                    stack.push(t);
                }
            }
        }
        true
    }

    /// A shortest accepted word, or `None` when the language is empty.
    ///
    /// `Any` transitions contribute `Symbol(0)`; pass `sigma_size = 0` to
    /// forbid taking `Any` transitions.
    pub fn shortest_word(&self, sigma_size: usize) -> Option<Vec<Symbol>> {
        let mut pred: Vec<Option<(StateId, Option<Symbol>)>> = vec![None; self.state_count()];
        let mut seen = vec![false; self.state_count()];
        let mut queue = VecDeque::from([self.start]);
        seen[self.start.index()] = true;
        let mut hit = None;
        'bfs: while let Some(s) = queue.pop_front() {
            if self.is_final(s) {
                hit = Some(s);
                break 'bfs;
            }
            for &(l, t) in self.transitions(s) {
                let sym = match l {
                    Label::Eps => None,
                    Label::Sym(a) => Some(a),
                    Label::Any => {
                        if sigma_size == 0 {
                            continue;
                        }
                        Some(Symbol(0))
                    }
                };
                if !seen[t.index()] {
                    seen[t.index()] = true;
                    pred[t.index()] = Some((s, sym));
                    queue.push_back(t);
                }
            }
        }
        let mut cur = hit?;
        let mut word = Vec::new();
        while cur != self.start {
            let (p, sym) = pred[cur.index()].unwrap();
            if let Some(a) = sym {
                word.push(a);
            }
            cur = p;
        }
        word.reverse();
        Some(word)
    }

    /// Enumerates all accepted words of length ≤ `max_len`.
    ///
    /// `sigma_size` bounds the expansion of `Any` transitions. Runs a DFS
    /// over the word trie with reachable-state-set pruning.
    pub fn enumerate_upto(&self, max_len: usize, sigma_size: usize) -> Vec<Vec<Symbol>> {
        let mut out = Vec::new();
        let mut word = Vec::new();
        let start = self.start_set();
        self.enum_rec(&start, max_len, sigma_size, &mut word, &mut out);
        out.sort();
        out.dedup();
        out
    }

    fn enum_rec(
        &self,
        set: &[bool],
        budget: usize,
        sigma_size: usize,
        word: &mut Vec<Symbol>,
        out: &mut Vec<Vec<Symbol>>,
    ) {
        if self.any_final(set) {
            out.push(word.clone());
        }
        if budget == 0 {
            return;
        }
        for i in 0..sigma_size as u32 {
            let a = Symbol(i);
            let next = self.step(set, a);
            if next.iter().any(|&b| b) {
                word.push(a);
                self.enum_rec(&next, budget - 1, sigma_size, word, out);
                word.pop();
            }
        }
    }

    /// Removes states that are unreachable from the start or cannot reach a
    /// final state. Returns the trimmed automaton (language-preserving).
    pub fn trim(&self) -> Nfa {
        let n = self.state_count();
        // Forward reachability.
        let mut fwd = vec![false; n];
        let mut stack = vec![self.start];
        fwd[self.start.index()] = true;
        while let Some(s) = stack.pop() {
            for &(_, t) in self.transitions(s) {
                if !fwd[t.index()] {
                    fwd[t.index()] = true;
                    stack.push(t);
                }
            }
        }
        // Backward reachability from finals.
        let mut rev: Vec<Vec<StateId>> = vec![Vec::new(); n];
        for s in self.states() {
            for &(_, t) in self.transitions(s) {
                rev[t.index()].push(s);
            }
        }
        let mut bwd = vec![false; n];
        let mut stack: Vec<StateId> = self.final_states().collect();
        for s in &stack {
            bwd[s.index()] = true;
        }
        while let Some(s) = stack.pop() {
            for &p in &rev[s.index()] {
                if !bwd[p.index()] {
                    bwd[p.index()] = true;
                    stack.push(p);
                }
            }
        }
        let keep: Vec<bool> = (0..n).map(|i| fwd[i] && bwd[i]).collect();
        let mut map: Vec<Option<StateId>> = vec![None; n];
        let mut out = Nfa {
            start: StateId(0),
            finals: Vec::new(),
            trans: Vec::new(),
        };
        for i in 0..n {
            if keep[i] {
                map[i] = Some(out.add_state());
                out.finals[map[i].unwrap().index()] = self.finals[i];
            }
        }
        if !keep[self.start.index()] {
            // Empty language: a single non-final state.
            return Nfa::with_states(1);
        }
        out.start = map[self.start.index()].unwrap();
        for i in 0..n {
            if let Some(ni) = map[i] {
                for &(l, t) in &self.trans[i] {
                    if let Some(nt) = map[t.index()] {
                        out.add_transition(ni, l, nt);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_regex;
    use cxrpq_graph::Alphabet;

    fn nfa_of(s: &str) -> (Nfa, Alphabet) {
        let mut a = Alphabet::from_chars("abc");
        let r = parse_regex(s, &mut a).unwrap();
        (Nfa::from_regex(&r), a)
    }

    fn w(a: &Alphabet, s: &str) -> Vec<Symbol> {
        a.parse_word(s).unwrap()
    }

    #[test]
    fn accepts_basic() {
        let (m, a) = nfa_of("a(b|c)*");
        assert!(m.accepts(&w(&a, "a")));
        assert!(m.accepts(&w(&a, "abcb")));
        assert!(!m.accepts(&w(&a, "b")));
        assert!(!m.accepts(&w(&a, "")));
    }

    #[test]
    fn accepts_plus_vs_star() {
        let (p, a) = nfa_of("a+");
        assert!(!p.accepts(&w(&a, "")));
        assert!(p.accepts(&w(&a, "aaa")));
        let (s, a2) = nfa_of("a*");
        assert!(s.accepts(&w(&a2, "")));
    }

    #[test]
    fn accepts_any() {
        let (m, a) = nfa_of(".b");
        assert!(m.accepts(&w(&a, "ab")));
        assert!(m.accepts(&w(&a, "cb")));
        assert!(!m.accepts(&w(&a, "a")));
    }

    #[test]
    fn empty_language() {
        let (m, _) = nfa_of("!");
        assert!(m.is_empty());
        let (m2, _) = nfa_of("a!|b");
        assert!(!m2.is_empty());
    }

    #[test]
    fn intersection_concrete() {
        let (m1, a) = nfa_of("a*b*");
        let (m2, _) = nfa_of("(ab)*|a|aa");
        let i = Nfa::intersection(&m1, &m2);
        assert!(i.accepts(&w(&a, "ab")));
        assert!(i.accepts(&w(&a, "a")));
        assert!(i.accepts(&w(&a, "aa")));
        assert!(i.accepts(&w(&a, "")));
        assert!(!i.accepts(&w(&a, "abab"))); // in m2, not m1
        assert!(!i.accepts(&w(&a, "bb"))); // in m1, not m2
    }

    #[test]
    fn intersection_with_any() {
        let (m1, a) = nfa_of(".*");
        let (m2, _) = nfa_of("ab+");
        let i = Nfa::intersection(&m1, &m2);
        assert!(i.accepts(&w(&a, "abb")));
        assert!(!i.accepts(&w(&a, "a")));
    }

    #[test]
    fn union_works() {
        let (m1, a) = nfa_of("aa");
        let (m2, _) = nfa_of("bb");
        let u = Nfa::union(&[m1, m2]);
        assert!(u.accepts(&w(&a, "aa")));
        assert!(u.accepts(&w(&a, "bb")));
        assert!(!u.accepts(&w(&a, "ab")));
    }

    #[test]
    fn shortest_word_finds_minimum() {
        let (m, a) = nfa_of("aaa|ab");
        assert_eq!(m.shortest_word(3), Some(w(&a, "ab")));
        let (e, _) = nfa_of("!");
        assert_eq!(e.shortest_word(3), None);
        let (eps, _) = nfa_of("_|aaa");
        assert_eq!(eps.shortest_word(3), Some(vec![]));
    }

    #[test]
    fn enumerate_matches_regex_enumeration() {
        let mut alpha = Alphabet::from_chars("ab");
        let r = parse_regex("(a|bb)*", &mut alpha).unwrap();
        let m = Nfa::from_regex(&r);
        assert_eq!(m.enumerate_upto(4, 2), r.enumerate_upto(4, 2));
    }

    #[test]
    fn trim_preserves_language() {
        let mut alpha = Alphabet::from_chars("ab");
        let r = parse_regex("a(b|!aa)", &mut alpha).unwrap();
        let m = Nfa::from_regex(&r);
        let t = m.trim();
        assert!(t.state_count() <= m.state_count());
        assert_eq!(t.enumerate_upto(4, 2), m.enumerate_upto(4, 2));
    }

    #[test]
    fn trim_empty_language() {
        let (m, _) = nfa_of("!");
        let t = m.trim();
        assert!(t.is_empty());
        assert_eq!(t.state_count(), 1);
    }

    #[test]
    fn hand_built_automaton() {
        // Two-state automaton: accepts odd number of a's.
        let mut m = Nfa::with_states(2);
        let a = Symbol(0);
        m.add_transition(StateId(0), Label::Sym(a), StateId(1));
        m.add_transition(StateId(1), Label::Sym(a), StateId(0));
        m.set_final(StateId(1), true);
        assert!(m.accepts(&[a]));
        assert!(!m.accepts(&[a, a]));
        assert!(m.accepts(&[a, a, a]));
    }

    #[test]
    fn epsilon_only_classification() {
        let (eps, _) = nfa_of("_");
        assert!(eps.is_epsilon_only());
        let (alt, _) = nfa_of("_|!"); // still {ε} after trimming the ∅ branch
        assert!(alt.is_epsilon_only());
        let (opt, _) = nfa_of("a*");
        assert!(opt.accepts_epsilon());
        assert!(!opt.is_epsilon_only());
        let (empty, _) = nfa_of("!");
        assert!(!empty.is_epsilon_only());
        let (sym, _) = nfa_of("a");
        assert!(!sym.is_epsilon_only());
    }

    #[test]
    fn inclusion_basic() {
        let (sub, _) = nfa_of("ab");
        let (sup, _) = nfa_of("a(b|c)");
        assert_eq!(sub.included_in(&sup, 3, 1 << 12), Some(true));
        assert_eq!(sup.included_in(&sub, 3, 1 << 12), Some(false));
        // Equal languages include both ways.
        let (x, _) = nfa_of("(a|b)+");
        let (y, _) = nfa_of("(a|b)(a|b)*");
        assert_eq!(x.included_in(&y, 3, 1 << 12), Some(true));
        assert_eq!(y.included_in(&x, 3, 1 << 12), Some(true));
        // ∅ ⊆ anything; anything non-empty ⊄ ∅.
        let (e, _) = nfa_of("!");
        assert_eq!(e.included_in(&x, 3, 1 << 12), Some(true));
        assert_eq!(x.included_in(&e, 3, 1 << 12), Some(false));
    }

    #[test]
    fn inclusion_with_any() {
        let (sub, _) = nfa_of("a.c");
        let (sup, _) = nfa_of(".*");
        assert_eq!(sub.included_in(&sup, 3, 1 << 12), Some(true));
        assert_eq!(sup.included_in(&sub, 3, 1 << 12), Some(false));
    }

    #[test]
    fn inclusion_budget_exceeded_is_none() {
        let (sub, _) = nfa_of("(a|b)*c");
        let (sup, _) = nfa_of("(a|b|c)*");
        assert_eq!(sub.included_in(&sup, 3, 1), None);
        assert_eq!(sub.included_in(&sup, 3, 1 << 12), Some(true));
    }

    #[test]
    fn universality() {
        let (u, _) = nfa_of(".*");
        assert_eq!(u.is_universal(3, 1 << 12), Some(true));
        let (u2, _) = nfa_of("(a|b|c)*");
        assert_eq!(u2.is_universal(3, 1 << 12), Some(true));
        let (not, _) = nfa_of("(a|b)*");
        assert_eq!(not.is_universal(3, 1 << 12), Some(false));
        let (plus, _) = nfa_of(".+"); // misses ε
        assert_eq!(plus.is_universal(3, 1 << 12), Some(false));
        assert_eq!(u.is_universal(3, 0), None);
    }

    #[test]
    fn intersect_all_three() {
        let (m1, a) = nfa_of("(a|b)*");
        let (m2, _) = nfa_of("a.*");
        let (m3, _) = nfa_of(".*b");
        let i = Nfa::intersect_all(&[m1, m2, m3]);
        assert!(i.accepts(&w(&a, "ab")));
        assert!(i.accepts(&w(&a, "aab")));
        assert!(!i.accepts(&w(&a, "ba")));
    }
}
