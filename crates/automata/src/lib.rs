//! Classical regular expressions and nondeterministic finite automata.
//!
//! This crate provides the language-descriptor substrate of the paper:
//! `RE_Σ` (classical regular expressions, Definition 3 restricted to
//! variable-free terms) and NFAs (§2.2: "NFAs are just graph databases, the
//! nodes of which are called states ... we allow the empty word as edge
//! label as well").
//!
//! Components:
//! - [`Regex`]: the AST, with smart constructors that keep terms flat and
//!   `∅`-normalized, a backtracking matcher (used as an oracle against the
//!   NFA simulation), and bounded-language enumeration;
//! - [`parse_regex`]: a concrete syntax (`|` alternation, juxtaposition,
//!   `*`/`+`, `.` for Σ, `()` grouping, `<name>` for long symbols);
//! - [`Nfa`]: Thompson construction, ε-closure membership simulation,
//!   product (intersection), union, emptiness, reachability and bounded
//!   enumeration;
//! - [`MaskSim`]: precomputed bitmask subset simulation (state sets as
//!   `⌈|Q|/64⌉` machine words), the representation the synchronized product
//!   search in `cxrpq-core` keys its visited sets on;
//! - [`nfa_to_regex`]: state elimination, used by the ECRPQ^er → CXRPQ^vsf,fl
//!   translation (Lemma 12) which needs a regular expression for
//!   `⋂_i L(α_i)`;
//! - [`Dfa`]: subset construction, Hopcroft minimization, complement, and
//!   exact language equivalence / inclusion — the decision procedures behind
//!   the test suite's language-equality checks.

pub mod dfa;
pub mod masksim;
pub mod nfa;
pub mod parser;
pub mod regex;
pub mod to_regex;

pub use dfa::{max_symbol, nfa_equivalent, nfa_included, Dfa};
pub use masksim::MaskSim;
pub use nfa::{Label, Nfa, StateId};
pub use parser::{parse_regex, ParseError};
pub use regex::Regex;
pub use to_regex::nfa_to_regex;
