//! Bitmask subset simulation for NFAs.
//!
//! The synchronized product search of `cxrpq-core` keeps one NFA state
//! *set* per walker in every product configuration; with `Vec<bool>`
//! representations each configuration costs a heap allocation per walker
//! and hashing costs a pass over `|Q|` bytes. A [`MaskSim`] precomputes,
//! for every state, the ε-closure of each transition target as a bitmask,
//! so state sets become `⌈|Q|/64⌉` machine words: stepping is a handful of
//! OR instructions over the set bits and hashing/equality are word-wise.

use crate::nfa::{Label, Nfa};
use cxrpq_graph::Symbol;

/// Precomputed bitmask simulation tables for one [`Nfa`].
#[derive(Clone, Debug)]
pub struct MaskSim {
    state_count: usize,
    words: usize,
    /// ε-closed start set.
    start: Vec<u64>,
    /// Final-state membership mask.
    finals: Vec<u64>,
    /// Per-state non-ε transitions as `(label, target state index)`; the
    /// target's ε-closure mask lives at `closures[target · words ..]`.
    trans: Vec<Vec<(Label, usize)>>,
    /// Flattened ε-closure masks, `words` words per entry.
    closures: Vec<u64>,
}

impl MaskSim {
    /// Builds the tables. `O(|Q|² / 64 + |δ|)` time and space.
    pub fn new(nfa: &Nfa) -> Self {
        let n = nfa.state_count();
        let words = n.div_ceil(64).max(1);
        // ε-closure mask per state.
        let mut closures = vec![0u64; n * words];
        for s in nfa.states() {
            for t in nfa.eps_closure_of(s) {
                closures[s.index() * words + t.index() / 64] |= 1 << (t.index() % 64);
            }
        }
        let mut finals = vec![0u64; words];
        for f in nfa.final_states() {
            finals[f.index() / 64] |= 1 << (f.index() % 64);
        }
        let mut start = vec![0u64; words];
        let si = nfa.start().index();
        start.copy_from_slice(&closures[si * words..(si + 1) * words]);
        // Non-ε transitions only: ε-moves are folded into the closures.
        let trans = nfa
            .states()
            .map(|s| {
                nfa.transitions(s)
                    .iter()
                    .filter(|&&(l, _)| l != Label::Eps)
                    .map(|&(l, t)| (l, t.index()))
                    .collect()
            })
            .collect();
        Self {
            state_count: n,
            words,
            start,
            finals,
            trans,
            closures,
        }
    }

    /// Number of NFA states |Q|.
    #[inline]
    pub fn state_count(&self) -> usize {
        self.state_count
    }

    /// Words per state-set mask (`⌈|Q|/64⌉`, at least 1).
    #[inline]
    pub fn words(&self) -> usize {
        self.words
    }

    /// The ε-closed start set.
    pub fn start_mask(&self) -> &[u64] {
        &self.start
    }

    /// One symbol step on a closed mask, OR-ing the closed result into
    /// `out` (callers zero `out` first). Returns `true` when any state
    /// remains alive.
    pub fn step_into(&self, cur: &[u64], a: Symbol, out: &mut [u64]) -> bool {
        debug_assert_eq!(cur.len(), self.words);
        debug_assert_eq!(out.len(), self.words);
        for (wi, &w) in cur.iter().enumerate() {
            let mut m = w;
            while m != 0 {
                let s = wi * 64 + m.trailing_zeros() as usize;
                m &= m - 1;
                for &(l, t) in &self.trans[s] {
                    if l.reads(a) {
                        let c = &self.closures[t * self.words..(t + 1) * self.words];
                        for (o, &cw) in out.iter_mut().zip(c) {
                            *o |= cw;
                        }
                    }
                }
            }
        }
        out.iter().any(|&w| w != 0)
    }

    /// One symbol step, allocating the result mask.
    pub fn step(&self, cur: &[u64], a: Symbol) -> Vec<u64> {
        let mut out = vec![0u64; self.words];
        self.step_into(cur, a, &mut out);
        out
    }

    /// Whether the mask contains a final state.
    #[inline]
    pub fn any_final(&self, mask: &[u64]) -> bool {
        mask.iter().zip(&self.finals).any(|(&m, &f)| m & f != 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_regex;
    use cxrpq_graph::Alphabet;

    fn sim_of(pattern: &str) -> (MaskSim, Nfa, Alphabet) {
        let mut a = Alphabet::from_chars("abc");
        let nfa = Nfa::from_regex(&parse_regex(pattern, &mut a).unwrap());
        (MaskSim::new(&nfa), nfa, a)
    }

    /// Mask-based acceptance must agree with the Vec<bool> simulation.
    fn accepts_mask(sim: &MaskSim, w: &[Symbol]) -> bool {
        let mut cur = sim.start_mask().to_vec();
        for &a in w {
            let next = sim.step(&cur, a);
            if next.iter().all(|&x| x == 0) {
                return false;
            }
            cur = next;
        }
        sim.any_final(&cur)
    }

    #[test]
    fn agrees_with_subset_simulation() {
        for pattern in ["a(b|c)*", "a+b+", "(ab)*|c", "_", ".*b", "!"] {
            let (sim, nfa, alpha) = sim_of(pattern);
            for text in ["", "a", "ab", "abc", "abcb", "b", "cab", "aabb"] {
                let w = alpha.parse_word(text).unwrap();
                assert_eq!(
                    accepts_mask(&sim, &w),
                    nfa.accepts(&w),
                    "pattern {pattern:?}, word {text:?}"
                );
            }
        }
    }

    #[test]
    fn multiword_masks() {
        // A concatenation long enough to exceed 64 Thompson states.
        let pattern = "abcabcabcabcabcabcabcabcabcabcabcabc";
        let (sim, nfa, alpha) = sim_of(pattern);
        assert!(sim.state_count() > 64);
        assert!(sim.words() >= 2);
        let w = alpha.parse_word(pattern).unwrap();
        assert!(accepts_mask(&sim, &w));
        assert!(nfa.accepts(&w));
        let short = alpha.parse_word("abc").unwrap();
        assert!(!accepts_mask(&sim, &short));
    }
}
