//! Classical regular expression ASTs.

use cxrpq_graph::{Alphabet, Symbol};
use std::collections::HashSet;
use std::fmt;

/// A classical regular expression over an interned alphabet.
///
/// Follows the paper's definition (§3): symbols, ε, concatenation,
/// alternation and `+`; `r*` is kept as an AST node but is semantically
/// `r+ ∨ ε` (footnote 1). `∅` is included "for technical reasons" —
/// Lemma 10's specialization can produce it. `Any` denotes the predicate
/// "any single symbol of Σ" so that `Σ` and `Σ*` stay constant-sized
/// independently of |Σ|.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Regex {
    /// `∅` — the empty language.
    Empty,
    /// `ε` — the empty word.
    Epsilon,
    /// A single terminal symbol.
    Sym(Symbol),
    /// Any single symbol of Σ.
    Any,
    /// Concatenation `r₁ · r₂ · … · rₙ` (n ≥ 2 after normalization).
    Concat(Vec<Regex>),
    /// Alternation `r₁ ∨ r₂ ∨ … ∨ rₙ` (n ≥ 2 after normalization).
    Alt(Vec<Regex>),
    /// `r⁺` — one or more repetitions.
    Plus(Box<Regex>),
    /// `r*` — zero or more repetitions (sugar for `r⁺ ∨ ε`).
    Star(Box<Regex>),
}

impl Regex {
    /// The regex denoting a fixed word (ε for the empty word).
    pub fn word(w: &[Symbol]) -> Regex {
        match w.len() {
            0 => Regex::Epsilon,
            1 => Regex::Sym(w[0]),
            _ => Regex::Concat(w.iter().map(|&s| Regex::Sym(s)).collect()),
        }
    }

    /// Smart concatenation: flattens, drops ε units, absorbs ∅.
    pub fn concat(parts: Vec<Regex>) -> Regex {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Empty => return Regex::Empty,
                Regex::Epsilon => {}
                Regex::Concat(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Regex::Epsilon,
            1 => out.pop().unwrap(),
            _ => Regex::Concat(out),
        }
    }

    /// Smart alternation: flattens, drops ∅ alternatives, dedups.
    pub fn alt(parts: Vec<Regex>) -> Regex {
        let mut out: Vec<Regex> = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Regex::Empty => {}
                Regex::Alt(inner) => {
                    for q in inner {
                        if !out.contains(&q) {
                            out.push(q);
                        }
                    }
                }
                other => {
                    if !out.contains(&other) {
                        out.push(other);
                    }
                }
            }
        }
        match out.len() {
            0 => Regex::Empty,
            1 => out.pop().unwrap(),
            _ => Regex::Alt(out),
        }
    }

    /// Smart `+`: `∅⁺ = ∅`, `ε⁺ = ε`, `(r⁺)⁺ = r⁺`, `(r*)⁺ = r*`.
    pub fn plus(r: Regex) -> Regex {
        match r {
            Regex::Empty => Regex::Empty,
            Regex::Epsilon => Regex::Epsilon,
            p @ Regex::Plus(_) => p,
            s @ Regex::Star(_) => s,
            other => Regex::Plus(Box::new(other)),
        }
    }

    /// Smart `*`: `∅* = ε`, `ε* = ε`, `(r⁺)* = (r*)* = r*`.
    pub fn star(r: Regex) -> Regex {
        match r {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            Regex::Plus(inner) => Regex::Star(inner),
            s @ Regex::Star(_) => s,
            other => Regex::Star(Box::new(other)),
        }
    }

    /// `Σ*` — all words.
    pub fn sigma_star() -> Regex {
        Regex::Star(Box::new(Regex::Any))
    }

    /// Size |r| — the number of AST nodes, the measure used by the paper's
    /// blow-up bounds (Theorem 4, Lemma 8).
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Sym(_) | Regex::Any => 1,
            Regex::Concat(ps) | Regex::Alt(ps) => 1 + ps.iter().map(Regex::size).sum::<usize>(),
            Regex::Plus(p) | Regex::Star(p) => 1 + p.size(),
        }
    }

    /// Whether `ε ∈ L(r)` (nullability), computed syntactically.
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Sym(_) | Regex::Any => false,
            Regex::Epsilon | Regex::Star(_) => true,
            Regex::Concat(ps) => ps.iter().all(Regex::nullable),
            Regex::Alt(ps) => ps.iter().any(Regex::nullable),
            Regex::Plus(p) => p.nullable(),
        }
    }

    /// Whether `L(r) = ∅`, computed syntactically (sound and complete because
    /// the smart constructors never bury `∅` under other operators — but this
    /// also handles non-normalized terms).
    pub fn is_empty_lang(&self) -> bool {
        match self {
            Regex::Empty => true,
            Regex::Epsilon | Regex::Sym(_) | Regex::Any => false,
            Regex::Concat(ps) => ps.iter().any(Regex::is_empty_lang),
            Regex::Alt(ps) => ps.iter().all(Regex::is_empty_lang),
            Regex::Plus(p) => p.is_empty_lang(),
            Regex::Star(_) => false,
        }
    }

    /// Backtracking membership test `w ∈ L(r)`.
    ///
    /// Implemented directly on the AST (no automaton) so it can serve as an
    /// independent oracle against [`crate::Nfa::accepts`] in property tests.
    /// `sigma` is needed to know what `Any` may match (only its presence
    /// matters; any symbol in `w` is assumed to be from Σ).
    pub fn matches(&self, w: &[Symbol]) -> bool {
        // Match r against w[i..]; call k with every reachable end position.
        fn go(r: &Regex, w: &[Symbol], i: usize, ends: &mut HashSet<usize>) {
            match r {
                Regex::Empty => {}
                Regex::Epsilon => {
                    ends.insert(i);
                }
                Regex::Sym(a) => {
                    if i < w.len() && w[i] == *a {
                        ends.insert(i + 1);
                    }
                }
                Regex::Any => {
                    if i < w.len() {
                        ends.insert(i + 1);
                    }
                }
                Regex::Concat(ps) => {
                    let mut frontier: HashSet<usize> = HashSet::from([i]);
                    for p in ps {
                        let mut next = HashSet::new();
                        for &j in &frontier {
                            go(p, w, j, &mut next);
                        }
                        frontier = next;
                        if frontier.is_empty() {
                            return;
                        }
                    }
                    ends.extend(frontier);
                }
                Regex::Alt(ps) => {
                    for p in ps {
                        go(p, w, i, ends);
                    }
                }
                Regex::Plus(p) => {
                    // Fixpoint of "one more iteration" starting from one copy.
                    let mut frontier: HashSet<usize> = HashSet::new();
                    go(p, w, i, &mut frontier);
                    let mut all = frontier.clone();
                    while !frontier.is_empty() {
                        let mut next = HashSet::new();
                        for &j in &frontier {
                            go(p, w, j, &mut next);
                        }
                        frontier = next.difference(&all).copied().collect();
                        all.extend(frontier.iter().copied());
                    }
                    ends.extend(all);
                }
                Regex::Star(p) => {
                    ends.insert(i);
                    go(&Regex::Plus(p.clone()), w, i, ends);
                }
            }
        }
        let mut ends = HashSet::new();
        go(self, w, 0, &mut ends);
        ends.contains(&w.len())
    }

    /// Enumerates all words of `L(r)` with length ≤ `max_len`.
    ///
    /// Used by the CXRPQ^{≤k} candidate enumerator (Theorem 6) and as a test
    /// oracle. `sigma_size` bounds the expansion of `Any`.
    pub fn enumerate_upto(&self, max_len: usize, sigma_size: usize) -> Vec<Vec<Symbol>> {
        fn langs(r: &Regex, max_len: usize, sigma: usize) -> HashSet<Vec<Symbol>> {
            match r {
                Regex::Empty => HashSet::new(),
                Regex::Epsilon => HashSet::from([vec![]]),
                Regex::Sym(a) => {
                    if max_len >= 1 {
                        HashSet::from([vec![*a]])
                    } else {
                        HashSet::new()
                    }
                }
                Regex::Any => {
                    if max_len >= 1 {
                        (0..sigma as u32).map(|i| vec![Symbol(i)]).collect()
                    } else {
                        HashSet::new()
                    }
                }
                Regex::Concat(ps) => {
                    let mut acc: HashSet<Vec<Symbol>> = HashSet::from([vec![]]);
                    for p in ps {
                        let rhs = langs(p, max_len, sigma);
                        let mut next = HashSet::new();
                        for l in &acc {
                            for r in &rhs {
                                if l.len() + r.len() <= max_len {
                                    let mut w = l.clone();
                                    w.extend_from_slice(r);
                                    next.insert(w);
                                }
                            }
                        }
                        acc = next;
                        if acc.is_empty() {
                            break;
                        }
                    }
                    acc
                }
                Regex::Alt(ps) => {
                    let mut acc = HashSet::new();
                    for p in ps {
                        acc.extend(langs(p, max_len, sigma));
                    }
                    acc
                }
                Regex::Plus(p) | Regex::Star(p) => {
                    let base = langs(p, max_len, sigma);
                    let mut acc: HashSet<Vec<Symbol>> = base.clone();
                    if matches!(r, Regex::Star(_)) {
                        acc.insert(vec![]);
                    }
                    let mut frontier = base.clone();
                    loop {
                        let mut next = HashSet::new();
                        for l in &frontier {
                            for b in &base {
                                if l.len() + b.len() <= max_len {
                                    let mut w = l.clone();
                                    w.extend_from_slice(b);
                                    if !acc.contains(&w) {
                                        next.insert(w);
                                    }
                                }
                            }
                        }
                        if next.is_empty() {
                            break;
                        }
                        acc.extend(next.iter().cloned());
                        frontier = next;
                    }
                    acc
                }
            }
        }
        let mut v: Vec<Vec<Symbol>> = langs(self, max_len, sigma_size).into_iter().collect();
        v.sort();
        v
    }

    /// Pretty-prints the regex using alphabet names.
    pub fn render(&self, alphabet: &Alphabet) -> String {
        fn prec(r: &Regex) -> u8 {
            match r {
                Regex::Alt(_) => 0,
                Regex::Concat(_) => 1,
                _ => 2,
            }
        }
        fn go(r: &Regex, alphabet: &Alphabet, out: &mut String, min_prec: u8) {
            let p = prec(r);
            let parens = p < min_prec;
            if parens {
                out.push('(');
            }
            match r {
                Regex::Empty => out.push('∅'),
                Regex::Epsilon => out.push('ε'),
                Regex::Sym(a) => {
                    let name = alphabet.name(*a);
                    if name.chars().count() == 1 {
                        out.push_str(name);
                    } else {
                        out.push('<');
                        out.push_str(name);
                        out.push('>');
                    }
                }
                Regex::Any => out.push('.'),
                Regex::Concat(ps) => {
                    for q in ps {
                        go(q, alphabet, out, 2);
                    }
                }
                Regex::Alt(ps) => {
                    for (i, q) in ps.iter().enumerate() {
                        if i > 0 {
                            out.push('|');
                        }
                        go(q, alphabet, out, 1);
                    }
                }
                Regex::Plus(q) => {
                    go(q, alphabet, out, 2);
                    out.push('+');
                }
                Regex::Star(q) => {
                    go(q, alphabet, out, 2);
                    out.push('*');
                }
            }
            if parens {
                out.push(')');
            }
        }
        let mut s = String::new();
        go(self, alphabet, &mut s, 0);
        s
    }
}

impl fmt::Display for Regex {
    /// Display with raw symbol ids; prefer [`Regex::render`] with an alphabet.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut alpha = Alphabet::new();
        let mut max = 0u32;
        fn scan(r: &Regex, max: &mut u32) {
            match r {
                Regex::Sym(Symbol(i)) => *max = (*max).max(*i + 1),
                Regex::Concat(ps) | Regex::Alt(ps) => ps.iter().for_each(|p| scan(p, max)),
                Regex::Plus(p) | Regex::Star(p) => scan(p, max),
                _ => {}
            }
        }
        scan(self, &mut max);
        for i in 0..max {
            alpha.intern(&format!("s{i}"));
        }
        f.write_str(&self.render(&alpha))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sy(i: u32) -> Regex {
        Regex::Sym(Symbol(i))
    }

    #[test]
    fn smart_concat_normalizes() {
        assert_eq!(Regex::concat(vec![]), Regex::Epsilon);
        assert_eq!(Regex::concat(vec![sy(0)]), sy(0));
        assert_eq!(
            Regex::concat(vec![sy(0), Regex::Epsilon, sy(1)]),
            Regex::Concat(vec![sy(0), sy(1)])
        );
        assert_eq!(Regex::concat(vec![sy(0), Regex::Empty]), Regex::Empty);
        // Flattening.
        assert_eq!(
            Regex::concat(vec![Regex::Concat(vec![sy(0), sy(1)]), sy(2)]),
            Regex::Concat(vec![sy(0), sy(1), sy(2)])
        );
    }

    #[test]
    fn smart_alt_normalizes() {
        assert_eq!(Regex::alt(vec![]), Regex::Empty);
        assert_eq!(Regex::alt(vec![sy(0), Regex::Empty]), sy(0));
        assert_eq!(Regex::alt(vec![sy(0), sy(0)]), sy(0));
        assert_eq!(
            Regex::alt(vec![sy(0), Regex::Alt(vec![sy(1), sy(0)])]),
            Regex::Alt(vec![sy(0), sy(1)])
        );
    }

    #[test]
    fn smart_star_plus() {
        assert_eq!(Regex::star(Regex::Empty), Regex::Epsilon);
        assert_eq!(Regex::plus(Regex::Empty), Regex::Empty);
        assert_eq!(
            Regex::star(Regex::plus(sy(0))),
            Regex::Star(Box::new(sy(0)))
        );
        assert_eq!(
            Regex::plus(Regex::star(sy(0))),
            Regex::Star(Box::new(sy(0)))
        );
    }

    #[test]
    fn nullable_cases() {
        assert!(Regex::Epsilon.nullable());
        assert!(!sy(0).nullable());
        assert!(Regex::star(sy(0)).nullable());
        assert!(!Regex::plus(sy(0)).nullable());
        assert!(Regex::concat(vec![Regex::star(sy(0)), Regex::star(sy(1))]).nullable());
        assert!(Regex::alt(vec![sy(0), Regex::Epsilon]).nullable());
    }

    #[test]
    fn empty_lang_detection() {
        assert!(Regex::Empty.is_empty_lang());
        assert!(Regex::Concat(vec![sy(0), Regex::Empty]).is_empty_lang());
        assert!(!Regex::Star(Box::new(Regex::Empty)).is_empty_lang());
        assert!(!Regex::alt(vec![sy(0)]).is_empty_lang());
    }

    #[test]
    fn matcher_basics() {
        let a = Symbol(0);
        let b = Symbol(1);
        // (ab)+
        let r = Regex::plus(Regex::concat(vec![Regex::Sym(a), Regex::Sym(b)]));
        assert!(r.matches(&[a, b]));
        assert!(r.matches(&[a, b, a, b]));
        assert!(!r.matches(&[]));
        assert!(!r.matches(&[a, b, a]));
        // a*b
        let r2 = Regex::concat(vec![Regex::star(Regex::Sym(a)), Regex::Sym(b)]);
        assert!(r2.matches(&[b]));
        assert!(r2.matches(&[a, a, a, b]));
        assert!(!r2.matches(&[a, a]));
    }

    #[test]
    fn matcher_handles_nullable_plus_without_divergence() {
        let a = Symbol(0);
        // (a*)+ — naive backtracking would loop on the ε iteration.
        let r = Regex::plus(Regex::star(Regex::Sym(a)));
        assert!(r.matches(&[]));
        assert!(r.matches(&[a, a]));
    }

    #[test]
    fn matcher_any() {
        let a = Symbol(0);
        let b = Symbol(1);
        let r = Regex::concat(vec![Regex::Any, Regex::Sym(b)]);
        assert!(r.matches(&[a, b]));
        assert!(r.matches(&[b, b]));
        assert!(!r.matches(&[b]));
    }

    #[test]
    fn enumerate_upto_small() {
        let a = Symbol(0);
        let b = Symbol(1);
        // (a|b)* up to length 2 over Σ = {a, b}: ε, a, b, aa, ab, ba, bb.
        let r = Regex::star(Regex::alt(vec![Regex::Sym(a), Regex::Sym(b)]));
        let words = r.enumerate_upto(2, 2);
        assert_eq!(words.len(), 7);
        // a+ up to length 3.
        let r2 = Regex::plus(Regex::Sym(a));
        assert_eq!(r2.enumerate_upto(3, 2).len(), 3);
        // ∅.
        assert!(Regex::Empty.enumerate_upto(3, 2).is_empty());
    }

    #[test]
    fn enumerate_agrees_with_matcher() {
        let a = Symbol(0);
        let b = Symbol(1);
        let r = Regex::concat(vec![
            Regex::star(Regex::alt(vec![Regex::Sym(a), Regex::Sym(b)])),
            Regex::Sym(a),
        ]);
        for w in r.enumerate_upto(4, 2) {
            assert!(r.matches(&w), "{w:?} enumerated but not matched");
        }
        // Exhaustive cross-check over all words up to length 3.
        for n in 0..=3usize {
            for mask in 0..(1usize << n) {
                let w: Vec<Symbol> = (0..n).map(|i| Symbol(((mask >> i) & 1) as u32)).collect();
                let enumerated = r.enumerate_upto(3, 2).contains(&w);
                assert_eq!(enumerated, r.matches(&w), "mismatch on {w:?}");
            }
        }
    }

    #[test]
    fn size_counts_nodes() {
        let a = sy(0);
        let r = Regex::Concat(vec![a.clone(), Regex::Plus(Box::new(a))]);
        assert_eq!(r.size(), 4);
    }

    #[test]
    fn render_round_readable() {
        let alpha = Alphabet::from_chars("ab");
        let a = Regex::Sym(alpha.sym("a"));
        let b = Regex::Sym(alpha.sym("b"));
        let r = Regex::concat(vec![Regex::alt(vec![a.clone(), b]), Regex::star(a)]);
        assert_eq!(r.render(&alpha), "(a|b)a*");
    }
}
