//! Concrete syntax for classical regular expressions.
//!
//! Grammar (whitespace ignored):
//!
//! ```text
//! alt    := concat ('|' concat)*
//! concat := repeat+
//! repeat := atom ('*' | '+')*
//! atom   := symbol | '.' | 'ε' | '_' | '∅' | '!' | '(' alt ')'
//! symbol := any char except | * + ( ) . _ ! < > ε ∅ whitespace
//!         | '<' name '>'            (multi-character symbol names)
//! ```
//!
//! `.` is Σ (any symbol), `_`/`ε` is the empty word, `!`/`∅` the empty
//! language. Symbols are interned into the supplied [`Alphabet`].

use crate::regex::Regex;
use cxrpq_graph::Alphabet;
use std::fmt;

/// A parse failure with position information.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset of the failure.
    pub pos: usize,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for ParseError {}

pub(crate) struct Cursor<'a> {
    chars: Vec<(usize, char)>,
    pub(crate) idx: usize,
    input: &'a str,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(input: &'a str) -> Self {
        Self {
            chars: input.char_indices().collect(),
            idx: 0,
            input,
        }
    }

    pub(crate) fn skip_ws(&mut self) {
        while let Some(&(_, c)) = self.chars.get(self.idx) {
            if c.is_whitespace() {
                self.idx += 1;
            } else {
                break;
            }
        }
    }

    pub(crate) fn peek(&mut self) -> Option<char> {
        self.skip_ws();
        self.chars.get(self.idx).map(|&(_, c)| c)
    }

    pub(crate) fn bump(&mut self) -> Option<char> {
        self.skip_ws();
        let c = self.chars.get(self.idx).map(|&(_, c)| c);
        if c.is_some() {
            self.idx += 1;
        }
        c
    }

    pub(crate) fn pos(&self) -> usize {
        self.chars
            .get(self.idx)
            .map(|&(p, _)| p)
            .unwrap_or(self.input.len())
    }

    pub(crate) fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError {
            pos: self.pos(),
            msg: msg.into(),
        }
    }

    pub(crate) fn at_end(&mut self) -> bool {
        self.peek().is_none()
    }

    /// Reads a `<name>` bracketed symbol name; assumes `<` already consumed.
    pub(crate) fn read_bracketed(&mut self) -> Result<String, ParseError> {
        let mut name = String::new();
        loop {
            match self.chars.get(self.idx).map(|&(_, c)| c) {
                Some('>') => {
                    self.idx += 1;
                    if name.is_empty() {
                        return Err(self.err("empty <> symbol name"));
                    }
                    return Ok(name);
                }
                Some(c) => {
                    name.push(c);
                    self.idx += 1;
                }
                None => return Err(self.err("unterminated <symbol>")),
            }
        }
    }
}

/// Characters with reserved meaning at the regex layer.
pub(crate) fn is_reserved(c: char) -> bool {
    matches!(
        c,
        '|' | '*' | '+' | '(' | ')' | '.' | '_' | '!' | '<' | '>' | 'ε' | '∅' | '∨' | '{' | '}'
    )
}

/// Parses a classical regular expression, interning symbols into `alphabet`.
pub fn parse_regex(input: &str, alphabet: &mut Alphabet) -> Result<Regex, ParseError> {
    let mut cur = Cursor::new(input);
    let r = parse_alt(&mut cur, alphabet)?;
    if !cur.at_end() {
        return Err(cur.err("trailing input"));
    }
    Ok(r)
}

pub(crate) fn parse_alt(cur: &mut Cursor, alphabet: &mut Alphabet) -> Result<Regex, ParseError> {
    let mut parts = vec![parse_concat(cur, alphabet)?];
    while matches!(cur.peek(), Some('|') | Some('∨')) {
        cur.bump();
        parts.push(parse_concat(cur, alphabet)?);
    }
    Ok(if parts.len() == 1 {
        parts.pop().unwrap()
    } else {
        // Preserve user structure: no dedup here, only ∅ elimination.
        Regex::alt(parts)
    })
}

fn parse_concat(cur: &mut Cursor, alphabet: &mut Alphabet) -> Result<Regex, ParseError> {
    let mut parts = Vec::new();
    loop {
        match cur.peek() {
            None | Some('|') | Some('∨') | Some(')') => break,
            _ => parts.push(parse_repeat(cur, alphabet)?),
        }
    }
    if parts.is_empty() {
        return Err(cur.err("expected expression"));
    }
    Ok(Regex::concat(parts))
}

fn parse_repeat(cur: &mut Cursor, alphabet: &mut Alphabet) -> Result<Regex, ParseError> {
    let mut r = parse_atom(cur, alphabet)?;
    loop {
        match cur.peek() {
            Some('*') => {
                cur.bump();
                r = Regex::star(r);
            }
            Some('+') => {
                cur.bump();
                r = Regex::plus(r);
            }
            _ => break,
        }
    }
    Ok(r)
}

fn parse_atom(cur: &mut Cursor, alphabet: &mut Alphabet) -> Result<Regex, ParseError> {
    match cur.bump() {
        Some('(') => {
            let r = parse_alt(cur, alphabet)?;
            match cur.bump() {
                Some(')') => Ok(r),
                _ => Err(cur.err("expected ')'")),
            }
        }
        Some('.') => Ok(Regex::Any),
        Some('_') | Some('ε') => Ok(Regex::Epsilon),
        Some('!') | Some('∅') => Ok(Regex::Empty),
        Some('<') => {
            let name = cur.read_bracketed()?;
            Ok(Regex::Sym(alphabet.intern(&name)))
        }
        Some(c) if !is_reserved(c) => Ok(Regex::Sym(alphabet.intern(&c.to_string()))),
        Some(c) => Err(cur.err(format!("unexpected character {c:?}"))),
        None => Err(cur.err("unexpected end of input")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxrpq_graph::Symbol;

    fn parse(s: &str) -> (Regex, Alphabet) {
        let mut a = Alphabet::new();
        let r = parse_regex(s, &mut a).unwrap();
        (r, a)
    }

    #[test]
    fn parses_symbols_and_concat() {
        let (r, a) = parse("ab");
        assert_eq!(
            r,
            Regex::Concat(vec![Regex::Sym(a.sym("a")), Regex::Sym(a.sym("b"))])
        );
    }

    #[test]
    fn parses_alternation_and_precedence() {
        let (r, a) = parse("ab|c");
        let ab = Regex::Concat(vec![Regex::Sym(a.sym("a")), Regex::Sym(a.sym("b"))]);
        assert_eq!(r, Regex::Alt(vec![ab, Regex::Sym(a.sym("c"))]));
    }

    #[test]
    fn parses_repetition_binding() {
        let (r, a) = parse("ab*");
        assert_eq!(
            r,
            Regex::Concat(vec![
                Regex::Sym(a.sym("a")),
                Regex::Star(Box::new(Regex::Sym(a.sym("b"))))
            ])
        );
        let (r2, a2) = parse("(ab)+");
        assert_eq!(
            r2,
            Regex::Plus(Box::new(Regex::Concat(vec![
                Regex::Sym(a2.sym("a")),
                Regex::Sym(a2.sym("b"))
            ])))
        );
    }

    #[test]
    fn parses_special_atoms() {
        let (r, _) = parse(".*");
        assert_eq!(r, Regex::sigma_star());
        let (r2, _) = parse("_");
        assert_eq!(r2, Regex::Epsilon);
        let (r3, _) = parse("!");
        assert_eq!(r3, Regex::Empty);
        let (r4, _) = parse("ε|a");
        assert!(matches!(r4, Regex::Alt(_)));
    }

    #[test]
    fn parses_bracketed_symbols() {
        let (r, a) = parse("<z12><z3>");
        assert_eq!(a.len(), 2);
        assert_eq!(
            r,
            Regex::Concat(vec![Regex::Sym(Symbol(0)), Regex::Sym(Symbol(1))])
        );
        assert_eq!(a.name(Symbol(0)), "z12");
    }

    #[test]
    fn parses_unicode_operators() {
        let (r, a) = parse("a ∨ b");
        assert_eq!(
            r,
            Regex::Alt(vec![Regex::Sym(a.sym("a")), Regex::Sym(a.sym("b"))])
        );
    }

    #[test]
    fn whitespace_is_ignored() {
        let (r1, _) = parse("a b | c *");
        let (r2, _) = parse("ab|c*");
        assert_eq!(format!("{r1:?}"), format!("{r2:?}"));
    }

    #[test]
    fn rejects_garbage() {
        let mut a = Alphabet::new();
        assert!(parse_regex("a)", &mut a).is_err());
        assert!(parse_regex("(a", &mut a).is_err());
        assert!(parse_regex("", &mut a).is_err());
        assert!(parse_regex("|a", &mut a).is_err());
        assert!(parse_regex("<ab", &mut a).is_err());
        assert!(parse_regex("<>", &mut a).is_err());
    }

    #[test]
    fn round_trip_render_parse() {
        let inputs = ["(a|b)a*", "ab+c", "<lbl>(a|<lbl>)*", "a(b|ε)"];
        for s in inputs {
            let mut alpha = Alphabet::new();
            let r = parse_regex(s, &mut alpha).unwrap();
            let printed = r.render(&alpha);
            let mut alpha2 = alpha.clone();
            let r2 = parse_regex(&printed, &mut alpha2).unwrap();
            assert_eq!(r, r2, "round trip failed for {s} -> {printed}");
        }
    }
}
