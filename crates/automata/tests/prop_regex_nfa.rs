//! Property tests: the AST backtracking matcher, the Thompson-NFA
//! simulation, bounded enumeration, reversal and state elimination must all
//! agree on random regular expressions.

use cxrpq_automata::{nfa_equivalent, nfa_included, nfa_to_regex, Dfa, Nfa, Regex};
use cxrpq_graph::Symbol;
use proptest::prelude::*;

const CASES: u32 = if cfg!(debug_assertions) { 32 } else { 128 };

fn regex_strategy() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::Epsilon),
        Just(Regex::Empty),
        (0u32..2).prop_map(|i| Regex::Sym(Symbol(i))),
        Just(Regex::Any),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..=3).prop_map(Regex::Concat),
            proptest::collection::vec(inner.clone(), 2..=3).prop_map(Regex::Alt),
            inner.clone().prop_map(|r| Regex::Plus(Box::new(r))),
            inner.prop_map(|r| Regex::Star(Box::new(r))),
        ]
    })
}

fn word_strategy() -> impl Strategy<Value = Vec<Symbol>> {
    proptest::collection::vec(0u32..2, 0..=6).prop_map(|v| v.into_iter().map(Symbol).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// AST matcher ≡ NFA simulation.
    #[test]
    fn matcher_agrees_with_nfa(r in regex_strategy(), w in word_strategy()) {
        let nfa = Nfa::from_regex(&r);
        prop_assert_eq!(r.matches(&w), nfa.accepts(&w));
    }

    /// AST-level bounded enumeration ≡ NFA-level bounded enumeration.
    #[test]
    fn enumerations_agree(r in regex_strategy()) {
        let nfa = Nfa::from_regex(&r);
        prop_assert_eq!(r.enumerate_upto(4, 2), nfa.enumerate_upto(4, 2));
    }

    /// State elimination round-trips the language.
    #[test]
    fn state_elimination_round_trip(r in regex_strategy()) {
        let nfa = Nfa::from_regex(&r);
        let back = nfa_to_regex(&nfa);
        let nfa2 = Nfa::from_regex(&back);
        prop_assert_eq!(nfa.enumerate_upto(4, 2), nfa2.enumerate_upto(4, 2));
    }

    /// Emptiness ≡ syntactic emptiness ≡ no short witness for trim automata.
    #[test]
    fn emptiness_coherent(r in regex_strategy()) {
        let nfa = Nfa::from_regex(&r);
        prop_assert_eq!(nfa.is_empty(), r.is_empty_lang());
        if !nfa.is_empty() {
            prop_assert!(nfa.shortest_word(2).is_some());
        } else {
            prop_assert!(nfa.shortest_word(2).is_none());
        }
    }

    /// Intersection is sound and complete on enumerated words.
    #[test]
    fn intersection_correct(r1 in regex_strategy(), r2 in regex_strategy()) {
        let m1 = Nfa::from_regex(&r1);
        let m2 = Nfa::from_regex(&r2);
        let i = Nfa::intersection(&m1, &m2);
        for w in i.enumerate_upto(3, 2) {
            prop_assert!(m1.accepts(&w) && m2.accepts(&w));
        }
        for w in m1.enumerate_upto(3, 2) {
            prop_assert_eq!(i.accepts(&w), m2.accepts(&w));
        }
    }

    /// Nullability matches ε-acceptance.
    #[test]
    fn nullable_matches_acceptance(r in regex_strategy()) {
        prop_assert_eq!(r.nullable(), Nfa::from_regex(&r).accepts(&[]));
    }

    /// Determinization preserves the language; minimization preserves the
    /// DFA's language and never grows it; complement flips membership.
    #[test]
    fn dfa_pipeline_sound(r in regex_strategy(), w in word_strategy()) {
        let nfa = Nfa::from_regex(&r);
        let dfa = Dfa::from_nfa(&nfa, 2);
        prop_assert_eq!(nfa.accepts(&w), dfa.accepts(&w));
        let min = dfa.minimize();
        prop_assert!(min.state_count() <= dfa.state_count());
        prop_assert_eq!(dfa.accepts(&w), min.accepts(&w));
        prop_assert!(Dfa::equivalent(&dfa, &min));
        prop_assert_eq!(dfa.complement().accepts(&w), !dfa.accepts(&w));
    }

    /// State elimination is an exact language round-trip (decided by DFA
    /// equivalence, not sampling — strictly stronger than
    /// `state_elimination_round_trip`).
    #[test]
    fn state_elimination_exact(r in regex_strategy()) {
        let nfa = Nfa::from_regex(&r);
        let back = Nfa::from_regex(&nfa_to_regex(&nfa));
        prop_assert!(nfa_equivalent(&nfa, &back, 2));
    }

    /// Minimization is canonical: two equivalent regexes minimize to DFAs of
    /// the same size, and `find_difference` returns a word exactly when the
    /// languages differ (verified against the NFA simulation).
    #[test]
    fn equivalence_decision_correct(r1 in regex_strategy(), r2 in regex_strategy()) {
        let m1 = Nfa::from_regex(&r1);
        let m2 = Nfa::from_regex(&r2);
        let d1 = Dfa::from_nfa(&m1, 2);
        let d2 = Dfa::from_nfa(&m2, 2);
        match Dfa::find_difference(&d1, &d2) {
            Some(w) => prop_assert_ne!(m1.accepts(&w), m2.accepts(&w)),
            None => {
                prop_assert_eq!(
                    d1.minimize().state_count(),
                    d2.minimize().state_count()
                );
                // Spot-check agreement on short words.
                for w in m1.enumerate_upto(3, 2) {
                    prop_assert!(m2.accepts(&w));
                }
            }
        }
        // Inclusion is consistent with intersection-emptiness of complement:
        // L(m1) ⊆ L(m2) iff every enumerated member of m1 is in m2.
        if nfa_included(&m1, &m2, 2) {
            for w in m1.enumerate_upto(3, 2) {
                prop_assert!(m2.accepts(&w));
            }
        }
    }

    /// Intersection via NFAs matches DFA-level conjunction of memberships —
    /// the machinery behind the Lemma 12 translation's `β ≡ ⋂ᵢ L(αᵢ)`.
    #[test]
    fn intersection_exact_by_dfa(r1 in regex_strategy(), r2 in regex_strategy(), w in word_strategy()) {
        let m1 = Nfa::from_regex(&r1);
        let m2 = Nfa::from_regex(&r2);
        let inter = Nfa::intersection(&m1, &m2);
        let d = Dfa::from_nfa(&inter, 2);
        prop_assert_eq!(d.accepts(&w), m1.accepts(&w) && m2.accepts(&w));
    }
}
