//! End-to-end smoke test for the `serve` subcommand: a real TCP server,
//! a mixed workload over multiple connections (repeated queries, a
//! governed abort, protocol verbs), shared-cache warm hits, and a clean
//! `SHUTDOWN`.

use cxrpq_cli::{run_serve, ServeConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::mpsc;

const GRAPH: &str = "\
alphabet a b c
edge u a m1
edge m1 b m2
edge m2 c m3
edge m3 a m4
edge m4 b v
";

const Q_SIMPLE: &str = "ans(x, y) <- (x) -[ a ]-> (y)";
const Q_HEAVY: &str = "ans(x, y) <- (x) -[ z{(a|b)+}cz ]-> (y)";

struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Self {
        let writer = TcpStream::connect(addr).expect("connect");
        let reader = BufReader::new(writer.try_clone().expect("clone"));
        Client { reader, writer }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send");
        self.writer.flush().expect("flush");
    }

    fn read_line(&mut self) -> String {
        let mut line = String::new();
        let n = self.reader.read_line(&mut line).expect("read");
        assert!(n > 0, "server closed the connection unexpectedly");
        line.trim_end().to_string()
    }

    /// Reads one `.`-terminated response frame (header + body lines).
    fn read_frame(&mut self) -> Vec<String> {
        let mut lines = Vec::new();
        loop {
            let line = self.read_line();
            if line == "." {
                return lines;
            }
            lines.push(line);
        }
    }

    fn request(&mut self, line: &str) -> Vec<String> {
        self.send(line);
        self.read_frame()
    }
}

fn header_field<'a>(header: &'a str, key: &str) -> &'a str {
    header
        .split_whitespace()
        .find_map(|tok| tok.strip_prefix(key).and_then(|t| t.strip_prefix('=')))
        .unwrap_or_else(|| panic!("missing {key}= in {header:?}"))
}

#[test]
fn serve_smoke_mixed_workload() {
    let (tx, rx) = mpsc::channel();
    let server = std::thread::spawn(move || {
        run_serve(
            GRAPH,
            ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                ..ServeConfig::default()
            },
            move |addr| tx.send(addr).unwrap(),
        )
    });
    let addr = rx.recv().expect("server ready");

    let mut a = Client::connect(addr);

    // Liveness.
    a.send("PING");
    assert_eq!(a.read_line(), "pong");

    // Cold evaluation, then a warm repeat served from the shared cache.
    let cold = a.request(Q_SIMPLE);
    assert_eq!(header_field(&cold[0], "cached"), "miss", "{cold:?}");
    assert_eq!(header_field(&cold[0], "answers"), "2", "{cold:?}");
    assert!(cold.contains(&"(u, m1)".to_string()), "{cold:?}");
    let warm = a.request(Q_SIMPLE);
    assert_eq!(header_field(&warm[0], "cached"), "answer-hit", "{warm:?}");
    assert_eq!(&cold[1..], &warm[1..], "cached answers must be identical");

    // A formatting variant of the same query also hits (normalized key).
    let variant = a.request("ans( x ,  y ) <- ( x ) -[ a ]-> ( y )");
    assert_eq!(header_field(&variant[0], "cached"), "answer-hit");

    // Governed abort: the partial result is flagged and never cached.
    let aborted = a.request(&format!("--max-steps 1 {Q_HEAVY}"));
    assert!(aborted[0].contains("aborted=fuel"), "{aborted:?}");
    let retry = a.request(Q_HEAVY);
    assert_eq!(
        header_field(&retry[0], "cached"),
        "miss",
        "aborted run must not have poisoned the cache: {retry:?}"
    );
    assert_eq!(header_field(&retry[0], "answers"), "1", "{retry:?}");

    // Per-request limit only truncates what is shown.
    let limited = a.request(&format!("--limit 1 {Q_SIMPLE}"));
    assert_eq!(header_field(&limited[0], "answers"), "2");
    assert_eq!(header_field(&limited[0], "shown"), "1");
    assert_eq!(limited.len(), 2, "header + one tuple: {limited:?}");

    // Malformed input is an error frame, not a dropped connection.
    let bad = a.request("ans( <- broken");
    assert!(bad[0].starts_with("err "), "{bad:?}");
    a.send("PING");
    assert_eq!(a.read_line(), "pong", "connection survives bad requests");

    // A second connection shares the same cache.
    let mut b = Client::connect(addr);
    let shared = b.request(Q_SIMPLE);
    assert_eq!(
        header_field(&shared[0], "cached"),
        "answer-hit",
        "{shared:?}"
    );

    // STATS reflects the workload: warm hits happened, the abort was
    // refused by the cache.
    let stats = b.request("STATS");
    assert_eq!(stats[0], "ok stats");
    let field = |key: &str| -> u64 {
        stats
            .iter()
            .find_map(|l| l.strip_prefix(key).and_then(|l| l.strip_prefix('=')))
            .unwrap_or_else(|| panic!("missing {key} in {stats:?}"))
            .parse()
            .unwrap()
    };
    assert!(field("answer-hits") >= 3, "{stats:?}");
    assert_eq!(field("aborted-uncached"), 1, "{stats:?}");
    assert_eq!(field("errors"), 1, "{stats:?}");

    let bye = b.request("QUIT");
    assert_eq!(bye[0], "ok bye");

    // Clean shutdown from the first connection.
    let down = a.request("SHUTDOWN");
    assert_eq!(down[0], "ok shutting down");
    let report = server.join().expect("server thread").expect("serve ok");
    assert!(report.contains("served"), "{report}");
    assert!(report.contains("answer-hit(s)"), "{report}");
}

#[test]
fn serve_cancels_on_disconnect() {
    // A client that hangs up mid-connection must not wedge the server:
    // the disconnect watcher trips the per-request governor, the
    // (aborted) run installs nothing, and the server keeps serving.
    let (tx, rx) = mpsc::channel();
    let server = std::thread::spawn(move || {
        run_serve(
            GRAPH,
            ServeConfig {
                addr: "127.0.0.1:0".to_string(),
                ..ServeConfig::default()
            },
            move |addr| tx.send(addr).unwrap(),
        )
    });
    let addr = rx.recv().expect("server ready");

    {
        let mut ghost = Client::connect(addr);
        ghost.send(Q_HEAVY);
        // Drop without reading the response: the socket closes and the
        // watcher cancels whatever is still running.
    }

    let mut c = Client::connect(addr);
    let r = c.request(Q_SIMPLE);
    assert!(r[0].starts_with("ok "), "server still serving: {r:?}");
    let down = c.request("SHUTDOWN");
    assert_eq!(down[0], "ok shutting down");
    server.join().expect("server thread").expect("serve ok");
}
