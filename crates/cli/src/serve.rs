//! The `serve` subcommand: a line-delimited TCP query service.
//!
//! One process loads a graph once and answers queries from many
//! connections, sharing a single [`QueryCache`] (plans + small answer
//! sets) and the process-wide worker pool across all of them — the
//! serving layer this repo's PSPACE-hard per-query costs demand.
//!
//! ## Protocol
//!
//! Requests are single lines; responses are a header line, zero or more
//! answer-tuple lines, and a lone `.` terminator.
//!
//! ```text
//! PING                      → pong
//! STATS                     → ok stats, key=value lines, .
//! QUIT                      → ok bye, . — closes the connection
//! SHUTDOWN                  → ok shutting down, . — stops the server
//! [--flag value ...] query  → ok answers=N shown=M engine=E cached=O ... / err ...
//! ```
//!
//! Query lines may lead with any of `--engine`, `--k`, `--limit`,
//! `--timeout-ms`, `--max-steps`, `--max-mem-mb` to override the
//! server-wide defaults for that one request. Every request runs under
//! its own [`Governor`]; a client that disconnects mid-evaluation trips
//! the governor's cancel flag, so abandoned queries stop burning the
//! pool (and, being aborted, never poison the cache).

use crate::{parse_engine, parse_graph, CmdError, EvalCmdOptions};
use cxrpq_core::{CacheConfig, EvalOptions, Governor, QueryCache, ServedAnswers, Verdict};
use cxrpq_graph::GraphDb;
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// How often the disconnect watcher polls an idle socket.
const WATCH_TICK: Duration = Duration::from_millis(25);

/// Configuration for [`run_serve`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address. Port 0 picks an ephemeral port; the bound address is
    /// handed to `on_ready` either way.
    pub addr: String,
    /// Server-wide per-request defaults (engine, k, limit, governor
    /// budgets), overridable per request line.
    pub defaults: EvalCmdOptions,
    /// Query-cache sizing.
    pub cache: CacheConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7878".to_string(),
            defaults: EvalCmdOptions {
                // A server should never let one request hog the process
                // forever; clients can still raise or lower this per line.
                timeout_ms: Some(30_000),
                ..EvalCmdOptions::default()
            },
            cache: CacheConfig::default(),
        }
    }
}

/// Shared state for all connection threads.
struct Server {
    db: GraphDb,
    cache: QueryCache,
    defaults: EvalCmdOptions,
    addr: SocketAddr,
    shutdown: AtomicBool,
    requests: AtomicU64,
    errors: AtomicU64,
    aborted: AtomicU64,
}

// Connection threads share the server through an `Arc`.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Server>();
};

/// Runs the query service until a client sends `SHUTDOWN`. Calls
/// `on_ready` with the bound address once the listener is accepting
/// (port 0 in `cfg.addr` is resolved here), and returns a final report.
pub fn run_serve(
    graph_text: &str,
    cfg: ServeConfig,
    on_ready: impl FnOnce(SocketAddr),
) -> Result<String, CmdError> {
    let ServeConfig {
        addr: bind_addr,
        defaults,
        cache,
    } = cfg;
    let (db, _) = parse_graph(graph_text)?;
    let listener = TcpListener::bind(&bind_addr).map_err(|e| format!("bind {bind_addr}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let srv = Arc::new(Server {
        db,
        cache: QueryCache::new(cache),
        defaults,
        addr,
        shutdown: AtomicBool::new(false),
        requests: AtomicU64::new(0),
        errors: AtomicU64::new(0),
        aborted: AtomicU64::new(0),
    });
    on_ready(addr);

    let mut handles = Vec::new();
    for conn in listener.incoming() {
        if srv.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let stream = match conn {
            Ok(s) => s,
            Err(_) => continue,
        };
        let srv = Arc::clone(&srv);
        handles.push(std::thread::spawn(move || handle_connection(&srv, stream)));
        handles.retain(|h| !h.is_finished());
    }
    for h in handles {
        let _ = h.join();
    }

    let s = srv.cache.stats();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "served {} request(s) · {} error(s) · {} aborted",
        srv.requests.load(Ordering::Relaxed),
        srv.errors.load(Ordering::Relaxed),
        srv.aborted.load(Ordering::Relaxed),
    );
    let _ = writeln!(
        out,
        "cache: {} lookup(s) · {} answer-hit(s) · {} plan-hit(s) · {} miss(es) · {} eviction(s)",
        s.lookups, s.answer_hits, s.plan_hits, s.misses, s.evictions
    );
    Ok(out)
}

/// One connection: read request lines, write framed responses.
fn handle_connection(srv: &Server, stream: TcpStream) {
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(read_half);
    let mut writer = stream;
    for line in reader.lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let response = match line {
            "PING" => "pong\n".to_string(),
            "STATS" => render_stats(srv),
            "QUIT" => "ok bye\n.\n".to_string(),
            "SHUTDOWN" => {
                srv.shutdown.store(true, Ordering::SeqCst);
                // Unblock the accept loop so it observes the flag.
                let _ = TcpStream::connect(srv.addr);
                "ok shutting down\n.\n".to_string()
            }
            request => handle_query(srv, &writer, request),
        };
        if writer.write_all(response.as_bytes()).is_err() || writer.flush().is_err() {
            break;
        }
        if line == "QUIT" || line == "SHUTDOWN" {
            break;
        }
    }
}

/// Evaluates one query request line through the shared cache under a
/// per-request governor, with a disconnect watcher holding its cancel
/// flag.
fn handle_query(srv: &Server, stream: &TcpStream, request: &str) -> String {
    srv.requests.fetch_add(1, Ordering::Relaxed);
    let (opts, query) = match parse_request(request, &srv.defaults) {
        Ok(parsed) => parsed,
        Err(e) => {
            srv.errors.fetch_add(1, Ordering::Relaxed);
            return render_error(&e);
        }
    };
    let eval_opts = EvalOptions {
        bounded_k: opts.k.unwrap_or(3),
        force: opts.engine,
        governor: None,
        plan_seed: None,
    };
    let gov = opts
        .governor()
        .unwrap_or_else(|| Arc::new(Governor::unlimited()));
    let done = Arc::new(AtomicBool::new(false));
    let watcher = spawn_disconnect_watcher(stream, Arc::clone(&gov), Arc::clone(&done));
    let result = srv.cache.answers_governed(&srv.db, &query, &eval_opts, gov);
    done.store(true, Ordering::Relaxed);
    if let Some(h) = watcher {
        let _ = h.join();
        // The watcher clone shares the socket, so its poll timeout must
        // not leak into the reader's blocking `lines()` loop.
        let _ = stream.set_read_timeout(None);
    }
    match result {
        Ok(served) => {
            if matches!(served.verdict, Verdict::Aborted(_)) {
                srv.aborted.fetch_add(1, Ordering::Relaxed);
            }
            render_answers(&srv.db, &served, opts.limit)
        }
        Err(e) => {
            srv.errors.fetch_add(1, Ordering::Relaxed);
            render_error(&e.to_string())
        }
    }
}

/// Splits `[--flag value ...] query text` into per-request options
/// (seeded from the server defaults) and the query text proper.
fn parse_request(
    line: &str,
    defaults: &EvalCmdOptions,
) -> Result<(EvalCmdOptions, String), CmdError> {
    let toks: Vec<&str> = line.split_whitespace().collect();
    let mut opts = *defaults;
    let mut i = 0;
    while i < toks.len() && toks[i].starts_with("--") {
        let value = toks
            .get(i + 1)
            .ok_or_else(|| format!("{} needs a value", toks[i]))?;
        match toks[i] {
            "--engine" => opts.engine = Some(parse_engine(value)?),
            "--k" => opts.k = Some(parse_num(toks[i], value)?),
            "--limit" => opts.limit = Some(parse_num(toks[i], value)?),
            "--timeout-ms" => opts.timeout_ms = Some(parse_num(toks[i], value)?),
            "--max-steps" => opts.max_steps = Some(parse_num(toks[i], value)?),
            "--max-mem-mb" => opts.max_mem_mb = Some(parse_num(toks[i], value)?),
            other => return Err(format!("unknown option {other:?}")),
        }
        i += 2;
    }
    if i == toks.len() {
        return Err("empty query".to_string());
    }
    Ok((opts, toks[i..].join(" ")))
}

fn parse_num<T: std::str::FromStr>(flag: &str, value: &str) -> Result<T, CmdError>
where
    T::Err: std::fmt::Display,
{
    value.parse().map_err(|e| format!("{flag}: {e}"))
}

/// Watches a cloned socket for EOF/reset while a query evaluates and
/// trips the governor's cancel flag on disconnect. `peek` never consumes
/// bytes, so pipelined follow-up requests are untouched.
fn spawn_disconnect_watcher(
    stream: &TcpStream,
    gov: Arc<Governor>,
    done: Arc<AtomicBool>,
) -> Option<std::thread::JoinHandle<()>> {
    let peek = stream.try_clone().ok()?;
    peek.set_read_timeout(Some(WATCH_TICK)).ok()?;
    Some(std::thread::spawn(move || {
        let mut buf = [0u8; 1];
        while !done.load(Ordering::Relaxed) {
            match peek.peek(&mut buf) {
                // EOF: the client hung up mid-evaluation.
                Ok(0) => {
                    gov.cancel();
                    break;
                }
                // Pipelined data is waiting; the connection is alive.
                Ok(_) => std::thread::sleep(WATCH_TICK),
                Err(e) if matches!(e.kind(), ErrorKind::WouldBlock | ErrorKind::TimedOut) => {}
                Err(_) => {
                    gov.cancel();
                    break;
                }
            }
        }
    }))
}

fn render_answers(db: &GraphDb, served: &ServedAnswers, limit: Option<usize>) -> String {
    let limit = limit.unwrap_or(usize::MAX);
    let shown = served.answers.len().min(limit);
    let mut out = String::new();
    let _ = write!(
        out,
        "ok answers={} shown={} arity={} engine={} cached={} exact={} elapsed-us={}",
        served.answers.len(),
        shown,
        served.arity,
        served.engine,
        served.outcome,
        served.exact,
        served.elapsed.as_micros()
    );
    if let Verdict::Aborted(reason) = served.verdict {
        let _ = write!(out, " aborted={reason}");
    }
    out.push('\n');
    for tuple in served.answers.iter().take(limit) {
        let names: Vec<String> = tuple.iter().map(|&n| db.node_name(n)).collect();
        let _ = writeln!(out, "({})", names.join(", "));
    }
    out.push_str(".\n");
    out
}

fn render_stats(srv: &Server) -> String {
    let s = srv.cache.stats();
    let mut out = String::from("ok stats\n");
    let _ = writeln!(out, "requests={}", srv.requests.load(Ordering::Relaxed));
    let _ = writeln!(out, "errors={}", srv.errors.load(Ordering::Relaxed));
    let _ = writeln!(out, "aborted={}", srv.aborted.load(Ordering::Relaxed));
    let _ = writeln!(out, "lookups={}", s.lookups);
    let _ = writeln!(out, "answer-hits={}", s.answer_hits);
    let _ = writeln!(out, "plan-hits={}", s.plan_hits);
    let _ = writeln!(out, "misses={}", s.misses);
    let _ = writeln!(out, "survived-appends={}", s.survived_appends);
    let _ = writeln!(out, "invalidated={}", s.invalidated);
    let _ = writeln!(out, "aborted-uncached={}", s.aborted_uncached);
    let _ = writeln!(out, "evictions={}", s.evictions);
    out.push_str(".\n");
    out
}

/// Errors are flattened to one line so the `.` framing stays parseable.
fn render_error(msg: &str) -> String {
    let flat = msg.replace('\n', "; ");
    format!("err {flat}\n.\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_parsing_splits_flags_from_query() {
        let defaults = EvalCmdOptions::default();
        let (opts, q) = parse_request(
            "--limit 2 --timeout-ms 500 ans(x, y) <- (x) -[ a ]-> (y)",
            &defaults,
        )
        .unwrap();
        assert_eq!(opts.limit, Some(2));
        assert_eq!(opts.timeout_ms, Some(500));
        assert_eq!(q, "ans(x, y) <- (x) -[ a ]-> (y)");
    }

    #[test]
    fn request_parsing_keeps_defaults_and_rejects_garbage() {
        let defaults = EvalCmdOptions {
            timeout_ms: Some(30_000),
            ..EvalCmdOptions::default()
        };
        let (opts, _) = parse_request("ans() <- (x) -[ a ]-> (y)", &defaults).unwrap();
        assert_eq!(opts.timeout_ms, Some(30_000), "server default survives");
        let (opts2, _) =
            parse_request("--timeout-ms 7 ans() <- (x) -[ a ]-> (y)", &defaults).unwrap();
        assert_eq!(opts2.timeout_ms, Some(7), "per-request override wins");
        assert!(parse_request("--limit", &defaults).is_err());
        assert!(parse_request("--bogus 3 q", &defaults).is_err());
        assert!(parse_request("--limit 3", &defaults)
            .unwrap_err()
            .contains("empty query"));
        assert!(parse_request("--k xyz q", &defaults).is_err());
    }

    #[test]
    fn error_rendering_is_single_frame() {
        let r = render_error("boom\nline two");
        assert_eq!(r, "err boom; line two\n.\n");
    }
}
