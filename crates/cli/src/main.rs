//! `cxrpq-cli` — query graph databases with conjunctive xregex path queries
//! from the command line.
//!
//! ```text
//! cxrpq-cli graph-info  <graph-file>
//! cxrpq-cli classify    <query-file>
//! cxrpq-cli eval        <graph-file> <query-file> [--engine simple|vsf|bounded]
//!                       [--k N] [--limit N] [--witness]
//!                       [--timeout-ms N] [--max-steps N] [--max-mem-mb N]
//! cxrpq-cli check       <graph-file> <query-file> <node>...
//! cxrpq-cli normal-form <query-file>
//! cxrpq-cli translate   <query-file> --to union-crpq --k N
//! cxrpq-cli translate   <query-file> --to union-ecrpq
//! cxrpq-cli sample      <query-file> [--count N] [--seed N]
//! ```

use cxrpq_cli::{
    check, classify, eval, graph_dot, graph_info, normal_form_report, parse_engine, run_serve,
    sample, translate_cmd, EvalCmdOptions, ServeConfig, TranslateTarget,
};
use std::process::ExitCode;

const USAGE: &str = "\
usage: cxrpq-cli <command> ...
  graph-info  <graph-file>
  dot         <graph-file>
  classify    <query-file>
  eval        <graph-file> <query-file> [--engine simple|vsf|bounded] [--k N]
              [--limit N] [--witness]
              [--timeout-ms N] [--max-steps N] [--max-mem-mb N]
  check       <graph-file> <query-file> <node>...
  normal-form <query-file>
  translate   <query-file> --to union-crpq --k N | --to union-ecrpq
  sample      <query-file> [--count N] [--seed N]
  serve       <graph-file> [--addr HOST:PORT] [--k N] [--limit N]
              [--timeout-ms N] [--max-steps N] [--max-mem-mb N]
";

fn read(path: &str) -> Result<String, String> {
    std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))
}

fn run(args: &[String]) -> Result<String, String> {
    let cmd = args.first().map(String::as_str).ok_or(USAGE.to_string())?;
    match cmd {
        "graph-info" => {
            let path = args.get(1).ok_or("graph-info needs a graph file")?;
            graph_info(&read(path)?)
        }
        "dot" => {
            let path = args.get(1).ok_or("dot needs a graph file")?;
            graph_dot(&read(path)?)
        }
        "classify" => {
            let path = args.get(1).ok_or("classify needs a query file")?;
            classify(&read(path)?)
        }
        "eval" => {
            let graph = args.get(1).ok_or("eval needs <graph> <query>")?;
            let query = args.get(2).ok_or("eval needs <graph> <query>")?;
            let mut opts = EvalCmdOptions::default();
            let mut i = 3;
            while i < args.len() {
                match args[i].as_str() {
                    "--engine" => {
                        i += 1;
                        opts.engine =
                            Some(parse_engine(args.get(i).ok_or("--engine needs a value")?)?);
                    }
                    "--k" => {
                        i += 1;
                        opts.k = Some(
                            args.get(i)
                                .ok_or("--k needs a value")?
                                .parse()
                                .map_err(|e| format!("--k: {e}"))?,
                        );
                    }
                    "--limit" => {
                        i += 1;
                        opts.limit = Some(
                            args.get(i)
                                .ok_or("--limit needs a value")?
                                .parse()
                                .map_err(|e| format!("--limit: {e}"))?,
                        );
                    }
                    "--timeout-ms" => {
                        i += 1;
                        opts.timeout_ms = Some(
                            args.get(i)
                                .ok_or("--timeout-ms needs a value")?
                                .parse()
                                .map_err(|e| format!("--timeout-ms: {e}"))?,
                        );
                    }
                    "--max-steps" => {
                        i += 1;
                        opts.max_steps = Some(
                            args.get(i)
                                .ok_or("--max-steps needs a value")?
                                .parse()
                                .map_err(|e| format!("--max-steps: {e}"))?,
                        );
                    }
                    "--max-mem-mb" => {
                        i += 1;
                        opts.max_mem_mb = Some(
                            args.get(i)
                                .ok_or("--max-mem-mb needs a value")?
                                .parse()
                                .map_err(|e| format!("--max-mem-mb: {e}"))?,
                        );
                    }
                    "--witness" => opts.witness = true,
                    other => return Err(format!("unknown option {other:?}\n{USAGE}")),
                }
                i += 1;
            }
            eval(&read(graph)?, &read(query)?, opts)
        }
        "check" => {
            let graph = args.get(1).ok_or("check needs <graph> <query> <node>...")?;
            let query = args.get(2).ok_or("check needs <graph> <query> <node>...")?;
            let nodes: Vec<&str> = args[3..].iter().map(String::as_str).collect();
            check(&read(graph)?, &read(query)?, &nodes)
        }
        "normal-form" => {
            let path = args.get(1).ok_or("normal-form needs a query file")?;
            normal_form_report(&read(path)?)
        }
        "translate" => {
            let path = args.get(1).ok_or("translate needs a query file")?;
            let mut target = None;
            let mut k = None;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--to" => {
                        i += 1;
                        target = Some(args.get(i).ok_or("--to needs a value")?.clone());
                    }
                    "--k" => {
                        i += 1;
                        k = Some(
                            args.get(i)
                                .ok_or("--k needs a value")?
                                .parse::<usize>()
                                .map_err(|e| format!("--k: {e}"))?,
                        );
                    }
                    other => return Err(format!("unknown option {other:?}")),
                }
                i += 1;
            }
            let target = match target.as_deref() {
                Some("union-crpq") => TranslateTarget::UnionCrpq {
                    k: k.ok_or("union-crpq needs --k")?,
                },
                Some("union-ecrpq") => TranslateTarget::UnionEcrpq,
                other => {
                    return Err(format!(
                        "--to must be union-crpq|union-ecrpq, got {other:?}"
                    ))
                }
            };
            translate_cmd(&read(path)?, target)
        }
        "sample" => {
            let path = args.get(1).ok_or("sample needs a query file")?;
            let mut count = 5usize;
            let mut seed = 1u64;
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--count" => {
                        i += 1;
                        count = args
                            .get(i)
                            .ok_or("--count needs a value")?
                            .parse()
                            .map_err(|e| format!("--count: {e}"))?;
                    }
                    "--seed" => {
                        i += 1;
                        seed = args
                            .get(i)
                            .ok_or("--seed needs a value")?
                            .parse()
                            .map_err(|e| format!("--seed: {e}"))?;
                    }
                    other => return Err(format!("unknown option {other:?}")),
                }
                i += 1;
            }
            sample(&read(path)?, count, seed)
        }
        "serve" => {
            let graph = args.get(1).ok_or("serve needs a graph file")?;
            let mut cfg = ServeConfig::default();
            let mut i = 2;
            while i < args.len() {
                match args[i].as_str() {
                    "--addr" => {
                        i += 1;
                        cfg.addr = args.get(i).ok_or("--addr needs a value")?.clone();
                    }
                    "--k" => {
                        i += 1;
                        cfg.defaults.k = Some(
                            args.get(i)
                                .ok_or("--k needs a value")?
                                .parse()
                                .map_err(|e| format!("--k: {e}"))?,
                        );
                    }
                    "--limit" => {
                        i += 1;
                        cfg.defaults.limit = Some(
                            args.get(i)
                                .ok_or("--limit needs a value")?
                                .parse()
                                .map_err(|e| format!("--limit: {e}"))?,
                        );
                    }
                    "--timeout-ms" => {
                        i += 1;
                        cfg.defaults.timeout_ms = Some(
                            args.get(i)
                                .ok_or("--timeout-ms needs a value")?
                                .parse()
                                .map_err(|e| format!("--timeout-ms: {e}"))?,
                        );
                    }
                    "--max-steps" => {
                        i += 1;
                        cfg.defaults.max_steps = Some(
                            args.get(i)
                                .ok_or("--max-steps needs a value")?
                                .parse()
                                .map_err(|e| format!("--max-steps: {e}"))?,
                        );
                    }
                    "--max-mem-mb" => {
                        i += 1;
                        cfg.defaults.max_mem_mb = Some(
                            args.get(i)
                                .ok_or("--max-mem-mb needs a value")?
                                .parse()
                                .map_err(|e| format!("--max-mem-mb: {e}"))?,
                        );
                    }
                    other => return Err(format!("unknown option {other:?}\n{USAGE}")),
                }
                i += 1;
            }
            run_serve(&read(graph)?, cfg, |addr| {
                println!("listening on {addr}");
                use std::io::Write as _;
                let _ = std::io::stdout().flush();
            })
        }
        "--help" | "-h" | "help" => Ok(USAGE.to_string()),
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(report) => {
            print!("{report}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn no_args_prints_usage_error() {
        assert!(run(&[]).unwrap_err().contains("usage"));
    }

    #[test]
    fn help_prints_usage() {
        assert!(run(&argv(&["--help"])).unwrap().contains("graph-info"));
        assert!(run(&argv(&["help"])).unwrap().contains("translate"));
    }

    #[test]
    fn unknown_command_rejected() {
        let e = run(&argv(&["frobnicate"])).unwrap_err();
        assert!(e.contains("unknown command"));
    }

    #[test]
    fn missing_operands_rejected() {
        assert!(run(&argv(&["eval"])).unwrap_err().contains("eval needs"));
        assert!(run(&argv(&["translate", "/nonexistent", "--to", "bogus"]))
            .unwrap_err()
            .contains("union-crpq|union-ecrpq"));
        assert!(run(&argv(&["classify", "/nonexistent-file-xyz"]))
            .unwrap_err()
            .contains("/nonexistent-file-xyz"));
    }

    #[test]
    fn eval_option_errors() {
        // Option parsing fails before any file IO for unknown options.
        let e = run(&argv(&["eval", "/g", "/q", "--bogus"])).unwrap_err();
        assert!(e.contains("unknown option"));
        let e2 = run(&argv(&["eval", "/g", "/q", "--k", "xyz"])).unwrap_err();
        assert!(e2.contains("--k"));
        let e3 = run(&argv(&["eval", "/g", "/q", "--engine", "warp"])).unwrap_err();
        assert!(e3.contains("unknown engine"));
        let e4 = run(&argv(&["eval", "/g", "/q", "--max-steps", "many"])).unwrap_err();
        assert!(e4.contains("--max-steps"));
        let e5 = run(&argv(&["eval", "/g", "/q", "--timeout-ms"])).unwrap_err();
        assert!(e5.contains("--timeout-ms needs a value"));
    }

    #[test]
    fn end_to_end_through_temp_files() {
        let dir = std::env::temp_dir().join("cxrpq-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let g = dir.join("g.graph");
        let q = dir.join("q.cxrpq");
        std::fs::write(&g, "edge u a v\nedge v a u\n").unwrap();
        std::fs::write(&q, "ans(x, y) <- (x) -[ aa ]-> (y)").unwrap();
        let out = run(&argv(&[
            "eval",
            g.to_str().unwrap(),
            q.to_str().unwrap(),
            "--limit",
            "5",
        ]))
        .unwrap();
        assert!(out.contains("answers: 2"), "{out}");
        let dot = run(&argv(&["dot", g.to_str().unwrap()])).unwrap();
        assert!(dot.contains("digraph"));
        std::fs::remove_dir_all(&dir).ok();
    }
}
