//! Command implementations for `cxrpq-cli`.
//!
//! Each command is a pure function from input *contents* (not file paths)
//! to a rendered report, so the whole surface is unit-testable; `main.rs`
//! only handles argument parsing and file IO.
//!
//! Commands:
//!
//! | command      | purpose                                                    |
//! |--------------|------------------------------------------------------------|
//! | `graph-info` | database statistics                                        |
//! | `classify`   | §5/§6 fragment of a query + planned engine                 |
//! | `eval`       | evaluate a query (auto / forced engine, optional witness)  |
//! | `check`      | the Check problem for a node tuple                         |
//! | `normal-form`| Theorem 4 normal form with per-step size accounting        |
//! | `translate`  | Lemma 13/14 union translations with size reports           |
//! | `sample`     | sample conjunctive matches of the query's xregex           |

pub mod serve;

pub use serve::{run_serve, ServeConfig};

use cxrpq_core::engine::{AutoEvaluator, EngineKind, EvalOptions};
use cxrpq_core::query_text::parse_query;
use cxrpq_core::translate;
use cxrpq_core::{AbortReason, AtomRef, Cxrpq, Diagnostic, Governor, Lint, Severity, Verdict};
use cxrpq_graph::{read_graph, Alphabet, GraphDb, NodeId};
use cxrpq_xregex::classification;
use cxrpq_xregex::normal_form::normal_form;
use cxrpq_xregex::sample::{sample_conjunctive_match, SampleConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::HashMap;
use std::fmt::Write;
use std::sync::Arc;
use std::time::Duration;

/// A command failure, rendered to stderr by `main`.
pub type CmdError = String;

fn parse_graph(text: &str) -> Result<(GraphDb, HashMap<String, NodeId>), CmdError> {
    read_graph(text).map_err(|e| format!("graph: {e}"))
}

/// Parses a query against the (extensible) alphabet of `db`, so labels may
/// intern new symbols mentioned only in the query.
fn parse_query_for(db: &GraphDb, query_text: &str) -> Result<(Cxrpq, Alphabet), CmdError> {
    let mut alphabet = db.alphabet().clone();
    let q = parse_query(query_text, &mut alphabet).map_err(|e| format!("query: {e}"))?;
    Ok((q, alphabet))
}

/// `graph-info <graph>`: node/edge counts and a per-symbol histogram.
pub fn graph_info(graph_text: &str) -> Result<String, CmdError> {
    let (db, _) = parse_graph(graph_text)?;
    let mut out = String::new();
    let _ = writeln!(out, "nodes:   {}", db.node_count());
    let _ = writeln!(out, "edges:   {}", db.edge_count());
    let _ = writeln!(out, "size |D|: {}", db.size());
    let _ = writeln!(out, "alphabet ({} symbols):", db.alphabet().len());
    let mut counts = vec![0usize; db.alphabet().len()];
    for (_, a, _) in db.edges() {
        counts[a.index()] += 1;
    }
    for s in db.alphabet().symbols() {
        let _ = writeln!(
            out,
            "  {:<12} {:>6} arcs",
            db.alphabet().name(s),
            counts[s.index()]
        );
    }
    Ok(out)
}

/// `classify <query>`: fragment flags and the planner's engine choice.
pub fn classify(query_text: &str) -> Result<String, CmdError> {
    let mut alphabet = Alphabet::new();
    let q = parse_query(query_text, &mut alphabet).map_err(|e| format!("query: {e}"))?;
    let c = classification(q.conjunctive());
    let auto = AutoEvaluator::new(&q);
    let mut out = String::new();
    let _ = writeln!(out, "edges:            {}", q.pattern().edge_count());
    let _ = writeln!(out, "output arity:     {}", q.output().len());
    let _ = writeln!(out, "string variables: {}", q.conjunctive().var_count());
    let _ = writeln!(out, "size |q|:         {}", q.size());
    let _ = writeln!(out, "vstar-free:       {}", c.vstar_free);
    let _ = writeln!(out, "valt-free:        {}", c.valt_free);
    let _ = writeln!(out, "variable-simple:  {}", c.variable_simple);
    let _ = writeln!(out, "simple:           {}", c.simple);
    let _ = writeln!(out, "normal form:      {}", c.normal_form);
    let _ = writeln!(out, "flat variables:   {}", c.all_flat);
    let _ = writeln!(out, "fragment:         {:?}", c.fragment());
    let _ = writeln!(out, "planned engine:   {}", auto.plan());
    let _ = writeln!(
        out,
        "exact:            {}",
        if auto.is_exact() {
            "yes"
        } else {
            "no (bounded-image under-approximation)"
        }
    );
    Ok(out)
}

/// Renders the static analyzer's report (phase 0 of the solver pipeline):
/// a one-line summary of the rewrite, then each diagnostic as
/// `severity [lint] atom: explanation`.
fn render_analysis(out: &mut String, stats: Option<&cxrpq_core::PipelineStats>) {
    let Some(report) = stats.and_then(|s| s.analysis.as_ref()) else {
        return;
    };
    let st = &report.stats;
    let verdict = if st.unsat {
        "statically unsatisfiable"
    } else {
        "rewritten query kept"
    };
    let _ = writeln!(
        out,
        "analysis: {} atom(s) dropped · {} var(s) merged · {} universal · {}",
        st.atoms_dropped, st.vars_merged, st.universal_atoms, verdict
    );
    for d in report.diagnostics.iter() {
        let _ = writeln!(out, "  {d}");
    }
}

/// Renders the solver pipeline's per-phase stats (plan order, prune rounds,
/// domain shrinkage) when the chosen engine reports them.
fn render_pipeline(out: &mut String, stats: Option<&cxrpq_core::PipelineStats>) {
    let Some(s) = stats else { return };
    let order: Vec<String> = s.var_order.iter().map(|v| format!("v{}", v.0)).collect();
    let fills = if s.per_source_sweeps {
        "per-source sweeps"
    } else {
        "batched wavefronts"
    };
    // Projection pushdown: how many plan variables were existentially
    // eliminated instead of enumerated (empty when projection was off).
    let eliminated = if s.eliminated_vars > 0 {
        format!(" · {} var(s) eliminated", s.eliminated_vars)
    } else {
        String::new()
    };
    if s.domain_before.is_empty() {
        // Pruning was skipped (nothing to prune, or an early-exiting call
        // with no pinned binding staying lazy).
        let _ = writeln!(
            out,
            "pipeline: order [{}] · prune skipped{}",
            order.join(" "),
            eliminated
        );
    } else {
        let _ = writeln!(
            out,
            "pipeline: order [{}] · prune {} round(s) via {} · domains {} → {}{}",
            order.join(" "),
            s.rounds,
            fills,
            s.total_before(),
            s.total_after(),
            eliminated
        );
    }
    render_strategy(out, s);
}

/// Renders the enumeration strategy line: which connected components of the
/// query core were routed to worst-case-optimal leapfrog intersection versus
/// the tree backtracker, and how many multiway seeks the run performed.
fn render_strategy(out: &mut String, s: &cxrpq_core::PipelineStats) {
    if s.leapfrog_components == 0 && s.tree_components == 0 {
        return;
    }
    if s.leapfrog_components > 0 {
        let _ = writeln!(
            out,
            "strategy: leapfrog ({} cyclic component(s), {} tree) · {} seek(s)",
            s.leapfrog_components, s.tree_components, s.intersection_seeks
        );
    } else {
        let _ = writeln!(
            out,
            "strategy: backtrack ({} tree component(s))",
            s.tree_components
        );
    }
}

/// Options for [`eval`].
#[derive(Clone, Copy, Debug, Default)]
pub struct EvalCmdOptions {
    /// Forced engine (None = plan by fragment).
    pub engine: Option<EngineKind>,
    /// Image bound for the bounded engine.
    pub k: Option<usize>,
    /// Print at most this many answers.
    pub limit: Option<usize>,
    /// Also extract and print a witness.
    pub witness: bool,
    /// Wall-clock deadline for evaluation, in milliseconds.
    pub timeout_ms: Option<u64>,
    /// Solver step (fuel) budget.
    pub max_steps: Option<u64>,
    /// Approximate memory ceiling for solver allocations, in MiB.
    pub max_mem_mb: Option<u64>,
}

impl EvalCmdOptions {
    /// The governor implied by the resource flags, if any was given.
    pub(crate) fn governor(&self) -> Option<Arc<Governor>> {
        if self.timeout_ms.is_none() && self.max_steps.is_none() && self.max_mem_mb.is_none() {
            return None;
        }
        let mut gov = Governor::unlimited();
        if let Some(ms) = self.timeout_ms {
            gov = gov.with_deadline(Duration::from_millis(ms));
        }
        if let Some(steps) = self.max_steps {
            gov = gov.with_max_steps(steps);
        }
        if let Some(mb) = self.max_mem_mb {
            gov = gov.with_mem_limit((mb as usize).saturating_mul(1024 * 1024));
        }
        Some(Arc::new(gov))
    }
}

/// The human-readable diagnostic for an aborted evaluation, rendered with
/// the same `severity [lint] atom: message` shape as the analyzer's lints.
pub fn abort_diagnostic(reason: AbortReason) -> Diagnostic {
    let cause = match reason {
        AbortReason::Deadline => "the wall-clock deadline (--timeout-ms) expired",
        AbortReason::Fuel => "the step budget (--max-steps) ran out",
        AbortReason::Memory => "the memory ceiling (--max-mem-mb) was reached",
        AbortReason::Cancelled => "evaluation was cancelled",
        AbortReason::Injected => "a fault-injection checkpoint fired",
    };
    Diagnostic {
        lint: Lint::ResourceAbort,
        severity: Severity::Warning,
        atom: AtomRef::Pattern,
        message: format!(
            "evaluation aborted early: {cause}; results are a sound partial under-approximation"
        ),
    }
}

/// Appends the abort diagnostic when the run did not complete.
fn render_verdict(out: &mut String, verdict: Verdict) {
    if let Verdict::Aborted(reason) = verdict {
        let _ = writeln!(out, "{}", abort_diagnostic(reason));
    }
}

/// `eval <graph> <query>`: answers (or Boolean verdict) plus provenance.
pub fn eval(graph_text: &str, query_text: &str, opts: EvalCmdOptions) -> Result<String, CmdError> {
    let (db, _) = parse_graph(graph_text)?;
    let (q, _) = parse_query_for(&db, query_text)?;
    let auto = AutoEvaluator::with_options(
        &q,
        EvalOptions {
            bounded_k: opts.k.unwrap_or(3),
            force: opts.engine,
            governor: opts.governor(),
            plan_seed: None,
        },
    )
    .map_err(|e| e.to_string())?;
    let mut out = String::new();
    let _ = writeln!(out, "engine: {}", auto.plan());
    if !auto.is_exact() {
        let _ = writeln!(
            out,
            "note: general-fragment query evaluated under ⊨_{{≤{}}} (Theorem 6); \
             answers are a sound under-approximation",
            opts.k.unwrap_or(3)
        );
    }
    if q.is_boolean() {
        let r = auto.boolean(&db);
        let _ = writeln!(
            out,
            "match: {}  (eval {:?} + plan {:?})",
            r.value, r.elapsed, r.plan_elapsed
        );
        render_analysis(&mut out, r.pipeline.as_ref());
        render_pipeline(&mut out, r.pipeline.as_ref());
        render_verdict(&mut out, r.verdict);
    } else {
        let r = auto.answers(&db);
        let _ = writeln!(
            out,
            "answers: {}  (eval {:?} + plan {:?})",
            r.value.len(),
            r.elapsed,
            r.plan_elapsed
        );
        render_analysis(&mut out, r.pipeline.as_ref());
        render_pipeline(&mut out, r.pipeline.as_ref());
        render_verdict(&mut out, r.verdict);
        let limit = opts.limit.unwrap_or(usize::MAX);
        for tuple in r.value.iter().take(limit) {
            let names: Vec<String> = tuple.iter().map(|&n| db.node_name(n)).collect();
            let _ = writeln!(out, "  ({})", names.join(", "));
        }
        if r.value.len() > limit {
            let _ = writeln!(out, "  … {} more", r.value.len() - limit);
        }
    }
    if opts.witness {
        match auto.witness(&db).value {
            Some(w) => {
                let _ = writeln!(out, "witness:");
                for line in w.render(&db).lines() {
                    let _ = writeln!(out, "  {line}");
                }
            }
            None => {
                let _ = writeln!(out, "witness: none (no match)");
            }
        }
    }
    Ok(out)
}

/// `check <graph> <query> <node>…`: the Check problem for named nodes.
pub fn check(graph_text: &str, query_text: &str, node_names: &[&str]) -> Result<String, CmdError> {
    let (db, names) = parse_graph(graph_text)?;
    let (q, _) = parse_query_for(&db, query_text)?;
    if node_names.len() != q.output().len() {
        return Err(format!(
            "query has output arity {}, got {} nodes",
            q.output().len(),
            node_names.len()
        ));
    }
    let tuple: Vec<NodeId> = node_names
        .iter()
        .map(|n| {
            names
                .get(*n)
                .copied()
                .ok_or_else(|| format!("unknown node {n:?}"))
        })
        .collect::<Result<_, _>>()?;
    let auto = AutoEvaluator::new(&q);
    let r = auto.check(&db, &tuple);
    Ok(format!(
        "({}) ∈ q(D): {}  [engine: {}, {:?}]\n",
        node_names.join(", "),
        r.value,
        r.engine,
        r.elapsed
    ))
}

/// `normal-form <query>`: Theorem 4's construction with size accounting.
pub fn normal_form_report(query_text: &str) -> Result<String, CmdError> {
    let mut alphabet = Alphabet::new();
    let q = parse_query(query_text, &mut alphabet).map_err(|e| format!("query: {e}"))?;
    let (nf, stats) = normal_form(q.conjunctive()).map_err(|e| format!("normal form: {e}"))?;
    let mut out = String::new();
    let _ = writeln!(out, "input size |ᾱ|:    {}", stats.input_size);
    let _ = writeln!(out, "after Step 1:      {} (Lemma 4)", stats.after_step1);
    let _ = writeln!(out, "after Step 2:      {} (Lemma 5)", stats.after_step2);
    let _ = writeln!(out, "normal form |β̄|:   {} (Lemma 6)", stats.output_size);
    let _ = writeln!(out, "components:");
    for rendered in nf.render(&alphabet) {
        let _ = writeln!(out, "  {rendered}");
    }
    Ok(out)
}

/// Target of a [`translate`] run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TranslateTarget {
    /// Lemma 14: `CXRPQ^{≤k} → ∪-CRPQ` (needs `k` and `|Σ|`).
    UnionCrpq {
        /// The image bound.
        k: usize,
    },
    /// Lemma 13: `CXRPQ^{vsf} → ∪-ECRPQ^er`.
    UnionEcrpq,
}

/// `translate <query> --to …`: run a §7 translation and report its size.
pub fn translate_cmd(query_text: &str, target: TranslateTarget) -> Result<String, CmdError> {
    let mut alphabet = Alphabet::new();
    let q = parse_query(query_text, &mut alphabet).map_err(|e| format!("query: {e}"))?;
    let mut out = String::new();
    match target {
        TranslateTarget::UnionCrpq { k } => {
            let union = translate::cxrpq_bounded_to_union(&q, k, alphabet.len().max(1));
            let _ = writeln!(out, "Lemma 14: CXRPQ^{{≤{k}}} → ∪-CRPQ");
            let _ = writeln!(out, "members:    {}", union.len());
            let _ = writeln!(out, "total size: {}", union.size());
            let _ = writeln!(out, "input size: {}", q.size());
        }
        TranslateTarget::UnionEcrpq => {
            let union = translate::cxrpq_vsf_to_union(&q).map_err(|e| format!("translate: {e}"))?;
            let _ = writeln!(out, "Lemma 13: CXRPQ^vsf → ∪-ECRPQ^er");
            let _ = writeln!(out, "members:    {}", union.len());
            let _ = writeln!(out, "total size: {}", union.size());
            let _ = writeln!(out, "all ECRPQ^er: {}", union.is_er());
            let _ = writeln!(out, "input size: {}", q.size());
        }
    }
    Ok(out)
}

/// `sample <query>`: random conjunctive matches of the query's xregex.
pub fn sample(query_text: &str, count: usize, seed: u64) -> Result<String, CmdError> {
    let mut alphabet = Alphabet::new();
    let q = parse_query(query_text, &mut alphabet).map_err(|e| format!("query: {e}"))?;
    let sigma = alphabet.len().max(1);
    let cfg = SampleConfig {
        rep_continue: 0.5,
        max_reps: 3,
        free_image_max: 2,
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = String::new();
    let mut produced = 0usize;
    for _ in 0..count * 20 {
        if produced == count {
            break;
        }
        if let Some((words, vmap)) =
            sample_conjunctive_match(q.conjunctive(), sigma, &cfg, &mut rng)
        {
            let rendered: Vec<String> = words
                .iter()
                .map(|w| format!("\"{}\"", alphabet.render_word(w)))
                .collect();
            let images: Vec<String> = vmap
                .iter()
                .map(|(x, w)| {
                    format!(
                        "{}=\"{}\"",
                        q.conjunctive().vars().name(*x),
                        alphabet.render_word(w)
                    )
                })
                .collect();
            let _ = writeln!(out, "({})  [{}]", rendered.join(", "), images.join(", "));
            produced += 1;
        }
    }
    if produced == 0 {
        let _ = writeln!(out, "no samples produced (language may be empty)");
    }
    Ok(out)
}

/// `dot <graph>`: Graphviz export of the database.
pub fn graph_dot(graph_text: &str) -> Result<String, CmdError> {
    let (db, _) = parse_graph(graph_text)?;
    Ok(cxrpq_graph::dot::to_dot(&db, "db"))
}

/// Parses `--engine` values.
pub fn parse_engine(name: &str) -> Result<EngineKind, CmdError> {
    match name {
        "simple" => Ok(EngineKind::Simple),
        "vsf" => Ok(EngineKind::Vsf),
        "bounded" => Ok(EngineKind::Bounded),
        other => Err(format!(
            "unknown engine {other:?} (expected simple|vsf|bounded)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GRAPH: &str = "\
alphabet a b c
edge u a m1
edge m1 b m2
edge m2 c m3
edge m3 a m4
edge m4 b v
";

    const QUERY: &str = "ans(x, y) <- (x) -[ z{(a|b)+}cz ]-> (y)";

    #[test]
    fn graph_info_reports_counts() {
        let out = graph_info(GRAPH).unwrap();
        assert!(out.contains("nodes:   6"));
        assert!(out.contains("edges:   5"));
        assert!(out.contains("alphabet (3 symbols):"));
    }

    #[test]
    fn classify_reports_fragment_and_plan() {
        let out = classify(QUERY).unwrap();
        assert!(out.contains("fragment:         Simple"));
        assert!(out.contains("planned engine:   simple"));
        assert!(out.contains("exact:            yes"));
    }

    #[test]
    fn eval_lists_answers() {
        let out = eval(GRAPH, QUERY, EvalCmdOptions::default()).unwrap();
        assert!(out.contains("answers: 1"), "{out}");
        assert!(out.contains("(u, v)"));
        // The simple engine reports the solver pipeline's per-phase stats.
        assert!(out.contains("pipeline: order ["), "{out}");
        assert!(out.contains("domains"), "{out}");
        // A single-atom core is a tree, so the backtracker handles it.
        assert!(
            out.contains("strategy: backtrack (1 tree component(s))"),
            "{out}"
        );
    }

    #[test]
    fn eval_reports_leapfrog_strategy_on_cyclic_cores() {
        let graph = "\
alphabet a b c
edge n0 a n1
edge n1 b n2
edge n2 c n0
edge n0 a n3
";
        let query = "ans(x, y, z) <- (x) -[ a ]-> (y), (y) -[ b ]-> (z), (z) -[ c ]-> (x)";
        let out = eval(graph, query, EvalCmdOptions::default()).unwrap();
        assert!(
            out.contains("strategy: leapfrog (1 cyclic component(s), 0 tree)"),
            "{out}"
        );
        assert!(out.contains("seek(s)"), "{out}");
        assert!(out.contains("(n0, n1, n2)"), "{out}");
    }

    #[test]
    fn eval_renders_analyzer_diagnostics() {
        // The second atom's language contains the first's, so the analyzer
        // drops it and the CLI surfaces the lint.
        let query = "ans(x, y) <- (x) -[ ab ]-> (y), (x) -[ a(b|c) ]-> (y)";
        let out = eval(GRAPH, query, EvalCmdOptions::default()).unwrap();
        assert!(out.contains("analysis: 1 atom(s) dropped"), "{out}");
        assert!(out.contains("[subsumed-atom]"), "{out}");
        assert!(out.contains("warning"), "{out}");
        assert!(out.contains("(u, m2)"), "{out}");
    }

    #[test]
    fn eval_reports_static_unsat() {
        let query = "ans(x, y) <- (x) -[ ab ]-> (y), (x) -[ ! ]-> (y)";
        let out = eval(GRAPH, query, EvalCmdOptions::default()).unwrap();
        assert!(out.contains("answers: 0"), "{out}");
        assert!(out.contains("statically unsatisfiable"), "{out}");
        assert!(out.contains("[empty-atom]"), "{out}");
    }

    #[test]
    fn eval_with_witness_and_forced_engine() {
        let out = eval(
            GRAPH,
            QUERY,
            EvalCmdOptions {
                engine: Some(EngineKind::Bounded),
                k: Some(2),
                witness: true,
                limit: Some(10),
                ..EvalCmdOptions::default()
            },
        )
        .unwrap();
        assert!(out.contains("bounded-image"));
        assert!(out.contains("witness:"));
        assert!(out.contains("z = \"ab\""));
    }

    #[test]
    fn check_resolves_node_names() {
        let out = check(GRAPH, QUERY, &["u", "v"]).unwrap();
        assert!(out.contains("∈ q(D): true"), "{out}");
        let out2 = check(GRAPH, QUERY, &["u", "m1"]).unwrap();
        assert!(out2.contains("∈ q(D): false"));
        let err = check(GRAPH, QUERY, &["u"]).unwrap_err();
        assert!(err.contains("arity"));
        let err2 = check(GRAPH, QUERY, &["u", "nope"]).unwrap_err();
        assert!(err2.contains("unknown node"));
    }

    #[test]
    fn normal_form_reports_steps() {
        let out =
            normal_form_report("ans() <- (x) -[ z{ab|ba}z ]-> (y), (u) -[ z|ab ]-> (v)").unwrap();
        assert!(out.contains("after Step 1:"));
        assert!(out.contains("normal form"));
    }

    #[test]
    fn translate_reports_union_sizes() {
        let out = translate_cmd(QUERY, TranslateTarget::UnionCrpq { k: 2 }).unwrap();
        assert!(out.contains("members:"), "{out}");
        let out2 = translate_cmd(
            "ans() <- (x) -[ z{ab|ba}z ]-> (y)",
            TranslateTarget::UnionEcrpq,
        )
        .unwrap();
        assert!(out2.contains("all ECRPQ^er: true"));
    }

    #[test]
    fn sample_produces_matches() {
        let out = sample(QUERY, 3, 42).unwrap();
        // Every line shows the component word and the z-image.
        assert!(out.lines().count() >= 1);
        assert!(out.contains("z="), "{out}");
    }

    #[test]
    fn abort_diagnostic_renders_like_a_lint() {
        let d = abort_diagnostic(AbortReason::Fuel);
        assert_eq!(
            d.to_string(),
            "warning [resource-abort] pattern: evaluation aborted early: \
             the step budget (--max-steps) ran out; results are a sound \
             partial under-approximation"
        );
        assert!(abort_diagnostic(AbortReason::Deadline)
            .to_string()
            .contains("--timeout-ms"));
        assert!(abort_diagnostic(AbortReason::Memory)
            .to_string()
            .contains("--max-mem-mb"));
    }

    #[test]
    fn eval_reports_resource_abort() {
        let out = eval(
            GRAPH,
            QUERY,
            EvalCmdOptions {
                max_steps: Some(1),
                ..EvalCmdOptions::default()
            },
        )
        .unwrap();
        assert!(out.contains("warning [resource-abort] pattern:"), "{out}");
        assert!(out.contains("--max-steps"), "{out}");
    }

    #[test]
    fn eval_without_limits_stays_complete() {
        let out = eval(GRAPH, QUERY, EvalCmdOptions::default()).unwrap();
        assert!(!out.contains("resource-abort"), "{out}");
        // Generous limits don't trip either.
        let out2 = eval(
            GRAPH,
            QUERY,
            EvalCmdOptions {
                timeout_ms: Some(60_000),
                max_steps: Some(u64::MAX),
                max_mem_mb: Some(4096),
                ..EvalCmdOptions::default()
            },
        )
        .unwrap();
        assert!(!out2.contains("resource-abort"), "{out2}");
        assert!(out2.contains("answers: 1"), "{out2}");
    }

    #[test]
    fn errors_are_reported_not_panicked() {
        assert!(graph_info("bogus line\n").is_err());
        assert!(classify("not a query").is_err());
        assert!(eval(GRAPH, "ans(", EvalCmdOptions::default()).is_err());
        assert!(parse_engine("warp").is_err());
        assert!(parse_engine("vsf").is_ok());
    }

    #[test]
    fn dot_export_via_cli() {
        let out = graph_dot(GRAPH).unwrap();
        assert!(out.starts_with("digraph db {"));
        assert!(out.contains("label=\"u\""));
        assert!(out.contains("label=\"a\""));
    }
}
