//! The paper's hardness reductions, as executable instance builders with
//! brute-force baselines:
//!
//! - Theorem 1: NFA-intersection → single-edge CXRPQ with
//!   `α_ni = # z{(a|b)*} (## z)* ###` (PSpace-hardness in data complexity);
//! - Theorem 3: the vstar-free variant `α^k_ni` with `(## z)^{k-1}` spelled
//!   out (PSpace-hardness in combined complexity);
//! - Theorem 7 / Figure 4: Hitting Set → single-edge `CXRPQ^{≤1}` with a
//!   simple xregex over Σ = {a, b, #} (NP-hardness in combined complexity);
//! - Theorem 3/7: graph reachability → CRPQ `a b* a a` (NL-hardness in data
//!   complexity).

use cxrpq_automata::{Label, Nfa, StateId};
use cxrpq_core::{Crpq, Cxrpq, CxrpqBuilder};
use cxrpq_graph::{Alphabet, GraphBuilder, GraphDb, NodeId, Symbol};
use cxrpq_xregex::{ConjunctiveXregex, VarTable, Xregex};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

// ---------------------------------------------------------------------
// Theorem 1 / Theorem 3: NFA intersection
// ---------------------------------------------------------------------

/// An NFA-intersection instance over {a, b}: ε-free automata with a single
/// final state each (as assumed in the Theorem 1 proof).
pub struct NfaIntersection {
    /// The automata `M₁, …, M_k`.
    pub nfas: Vec<Nfa>,
}

impl NfaIntersection {
    /// Ground truth: is `⋂ᵢ L(Mᵢ)` non-empty? Computed directly on the
    /// product automaton.
    pub fn intersection_nonempty(&self) -> bool {
        !Nfa::intersect_all(&self.nfas).is_empty()
    }

    /// A shortest common word, when one exists.
    pub fn shortest_witness(&self) -> Option<Vec<Symbol>> {
        Nfa::intersect_all(&self.nfas).shortest_word(2)
    }
}

/// Generates `k` random ε-free NFAs over {a, b} with `states` states each.
/// Transition density is tuned so intersections are non-trivially often
/// non-empty.
pub fn random_nfa_intersection(k: usize, states: usize, seed: u64) -> NfaIntersection {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nfas = Vec::with_capacity(k);
    for _ in 0..k {
        let mut m = Nfa::with_states(states);
        // Single final state: the last one.
        m.set_final(StateId(states as u32 - 1), true);
        let transitions = (states as f64 * 2.5) as usize;
        for _ in 0..transitions {
            let from = StateId(rng.random_range(0..states as u32));
            let to = StateId(rng.random_range(0..states as u32));
            let sym = Symbol(rng.random_range(0..2));
            m.add_transition(from, Label::Sym(sym), to);
        }
        nfas.push(m);
    }
    NfaIntersection { nfas }
}

/// The Theorem 1 graph database: state graphs of all `Mᵢ` chained with
/// `#`/`##`/`###` connector paths from `s` to `t`. Returns `(D, s, t)`.
///
/// The alphabet is Δ = {a, b, #}.
pub fn theorem1_database(inst: &NfaIntersection) -> (GraphDb, NodeId, NodeId) {
    let alphabet = Arc::new(Alphabet::from_chars("ab#"));
    let hash = alphabet.sym("#");
    let mut db = GraphBuilder::new(alphabet);
    let s = db.add_named_node("s");
    let t = db.add_named_node("t");
    let mut starts = Vec::new();
    let mut finals = Vec::new();
    for m in &inst.nfas {
        let base: Vec<NodeId> = (0..m.state_count()).map(|_| db.add_node()).collect();
        for st in m.states() {
            for &(l, to) in m.transitions(st) {
                match l {
                    Label::Sym(a) => {
                        db.add_edge(base[st.index()], a, base[to.index()]);
                    }
                    Label::Eps | Label::Any => {
                        panic!("Theorem 1 reduction requires ε-free symbol NFAs")
                    }
                }
            }
        }
        starts.push(base[m.start().index()]);
        let f = m
            .final_states()
            .next()
            .expect("single final state by construction");
        finals.push(base[f.index()]);
    }
    db.add_word_path(s, &[hash], starts[0]);
    for i in 0..inst.nfas.len() - 1 {
        db.add_word_path(finals[i], &[hash, hash], starts[i + 1]);
    }
    db.add_word_path(finals[inst.nfas.len() - 1], &[hash, hash, hash], t);
    (db.freeze(), s, t)
}

/// The Theorem 1 query: the single-edge CXRPQ with
/// `α_ni = # z{(a|b)*} (## z)* ###` (a *fixed* query — the hardness is in
/// data complexity).
///
/// Output = (x, y): the paper treats the `##`/`###` connectors as atomic
/// arcs, which our databases realize as length-2/3 paths; checking the
/// tuple `(s, t)` (rather than Boolean evaluation) excludes paths that
/// start at a connector midpoint, exactly matching the proof's "path from
/// s to t" argument.
pub fn alpha_ni(alphabet: &mut Alphabet) -> Cxrpq {
    CxrpqBuilder::new(alphabet)
        .edge("x", "#z{(a|b)*}(##z)*###", "y")
        .output(&["x", "y"])
        .build()
        .expect("static query")
}

/// The Theorem 3 query `α^k_ni`: `(## z)^{k-1}` spelled out — vstar-free,
/// size Θ(k).
pub fn alpha_kni(k: usize, alphabet: &mut Alphabet) -> Cxrpq {
    assert!(k >= 1);
    let mut label = String::from("#z{(a|b)*}");
    for _ in 0..k - 1 {
        label.push_str("##z");
    }
    label.push_str("###");
    CxrpqBuilder::new(alphabet)
        .edge("x", &label, "y")
        .output(&["x", "y"])
        .build()
        .expect("static query")
}

// ---------------------------------------------------------------------
// Theorem 7 / Figure 4: Hitting Set
// ---------------------------------------------------------------------

/// A Hitting Set instance: sets `A₁, …, A_m ⊆ U = {0, …, n-1}`, bound `k`.
#[derive(Clone, Debug)]
pub struct HittingSet {
    /// Universe size n.
    pub universe: usize,
    /// The subsets to hit.
    pub sets: Vec<Vec<usize>>,
    /// Maximum hitting-set size.
    pub k: usize,
}

impl HittingSet {
    /// Brute force: does a hitting set of size ≤ k exist?
    pub fn brute_force(&self) -> bool {
        fn rec(hs: &HittingSet, chosen: &mut Vec<usize>, next: usize) -> bool {
            if hs.sets.iter().all(|s| s.iter().any(|z| chosen.contains(z))) {
                return true;
            }
            if chosen.len() == hs.k || next == hs.universe {
                return false;
            }
            for z in next..hs.universe {
                chosen.push(z);
                if rec(hs, chosen, z + 1) {
                    return true;
                }
                chosen.pop();
            }
            false
        }
        rec(self, &mut Vec::new(), 0)
    }
}

/// Generates a random Hitting Set instance.
pub fn random_hitting_set(
    universe: usize,
    sets: usize,
    set_size: usize,
    k: usize,
    seed: u64,
) -> HittingSet {
    let mut rng = StdRng::seed_from_u64(seed);
    let sets = (0..sets)
        .map(|_| {
            let mut s: Vec<usize> = Vec::new();
            while s.len() < set_size.min(universe) {
                let z = rng.random_range(0..universe);
                if !s.contains(&z) {
                    s.push(z);
                }
            }
            s
        })
        .collect();
    HittingSet { universe, sets, k }
}

/// The Theorem 7 reduction: database (Figure 4) and Boolean single-edge
/// `CXRPQ^{≤1}` query, over Σ = {a, b, #} with `⟨zᵢ⟩ = b aⁱ⁺¹ b`.
///
/// `D ⊨_{≤1} q` iff the instance has a hitting set of size ≤ k.
pub fn theorem7_reduction(inst: &HittingSet) -> (GraphDb, Cxrpq) {
    let alphabet = Arc::new(Alphabet::from_chars("ab#"));
    let a = alphabet.sym("a");
    let b = alphabet.sym("b");
    let hash = alphabet.sym("#");
    let encode = |z: usize| -> Vec<Symbol> {
        let mut w = vec![b];
        w.extend(std::iter::repeat_n(a, z + 1));
        w.push(b);
        w
    };
    let mut db = GraphBuilder::new(alphabet);
    let s = db.add_named_node("s");
    let u: Vec<NodeId> = (0..=inst.k)
        .map(|i| db.add_named_node(&format!("u{i}")))
        .collect();
    let v: Vec<NodeId> = (0..=inst.sets.len())
        .map(|i| db.add_named_node(&format!("v{i}")))
        .collect();
    let t = db.add_named_node("t");
    db.add_edge(s, hash, u[0]);
    for i in 1..=inst.k {
        for z in 0..inst.universe {
            db.add_word_path(u[i - 1], &encode(z), u[i]);
        }
    }
    db.add_edge(u[inst.k], hash, v[0]);
    for (i, set) in inst.sets.iter().enumerate() {
        for &z in set {
            db.add_word_path(v[i], &encode(z), v[i + 1]);
        }
    }
    for vi in &v {
        for z in 0..inst.universe {
            db.add_word_path(*vi, &encode(z), *vi);
        }
    }
    db.add_edge(v[inst.sets.len()], hash, t);

    // α = # Π xᵢ{a|b|ε} # (Π xᵢ)^m #  with (n+2)·k variables.
    let nvars = (inst.universe + 2) * inst.k;
    let mut vars = VarTable::new();
    let xs: Vec<_> = (0..nvars).map(|i| vars.intern(&format!("x{i}"))).collect();
    let abeps = Xregex::alt(vec![Xregex::Sym(a), Xregex::Sym(b), Xregex::Epsilon]);
    let mut parts = vec![Xregex::Sym(hash)];
    for &x in &xs {
        parts.push(Xregex::def(x, abeps.clone()));
    }
    parts.push(Xregex::Sym(hash));
    for _ in 0..inst.sets.len() {
        for &x in &xs {
            parts.push(Xregex::VarRef(x));
        }
    }
    parts.push(Xregex::Sym(hash));
    let comp = Xregex::concat(parts);
    let cxre = ConjunctiveXregex::new(vec![comp], vars).expect("valid by construction");
    let mut pattern = cxrpq_core::GraphPattern::new();
    let x = pattern.node("x");
    let y = pattern.node("y");
    pattern.add_edge(x, 0usize, y);
    let q = Cxrpq::from_parts(pattern, cxre, vec![]);
    (db.freeze(), q)
}

// ---------------------------------------------------------------------
// NL-hardness: reachability
// ---------------------------------------------------------------------

/// The Theorem 3/7 NL-hardness gadget: an unlabelled digraph (edge list
/// over `0..n`) plus `s`/`t` becomes a database over {a, b} where `s′ →* t″`
/// via `a b* a a` iff `t` is reachable from `s`. Returns `(D, query)`.
pub fn reachability_reduction(
    n: usize,
    edges: &[(usize, usize)],
    s: usize,
    t: usize,
    alphabet_out: &mut Alphabet,
) -> (GraphDb, Crpq) {
    let alphabet = Arc::new(Alphabet::from_chars("ab"));
    let a = alphabet.sym("a");
    let b = alphabet.sym("b");
    let mut db = GraphBuilder::new(alphabet);
    let base: Vec<NodeId> = (0..n).map(|_| db.add_node()).collect();
    for &(u, v) in edges {
        db.add_edge(base[u], b, base[v]);
    }
    let sp = db.add_named_node("s'");
    let tp = db.add_named_node("t'");
    let tpp = db.add_named_node("t''");
    db.add_edge(sp, a, base[s]);
    db.add_edge(base[t], a, tp);
    db.add_edge(tp, a, tpp);
    let q = Crpq::build(&[("x", "ab*aa", "z")], &[], alphabet_out).expect("static query");
    (db.freeze(), q)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxrpq_core::{
        BoundedEvaluator, CrpqEvaluator, GenericEvaluator, GenericOutcome, VsfEvaluator,
    };

    #[test]
    fn theorem1_reduction_correct_on_random_instances() {
        for seed in 0..12u64 {
            let inst = random_nfa_intersection(2, 3, seed);
            let (db, s, t) = theorem1_database(&inst);
            let mut alpha = db.alphabet().clone();
            let q = alpha_ni(&mut alpha);
            let expected = inst.intersection_nonempty();
            // Witness length bounds the needed image size.
            let cap = inst.shortest_witness().map(|w| w.len()).unwrap_or(6).max(1);
            let outcome = GenericEvaluator::new(&q, cap).check(&db, &[s, t]);
            let got = matches!(outcome, GenericOutcome::Match { .. });
            assert_eq!(got, expected, "seed {seed}");
        }
    }

    #[test]
    fn theorem3_reduction_correct() {
        for seed in [1u64, 3, 5, 8] {
            let inst = random_nfa_intersection(2, 3, seed);
            let (db, s, t) = theorem1_database(&inst);
            let mut alpha = db.alphabet().clone();
            let q = alpha_kni(2, &mut alpha);
            assert_ne!(q.fragment(), cxrpq_xregex::Fragment::General);
            let expected = inst.intersection_nonempty();
            // α^k_ni is vstar-free: the Lemma 7 engine evaluates it exactly,
            // with unbounded variable images.
            let got = VsfEvaluator::new(&q).unwrap().check(&db, &[s, t]);
            assert_eq!(got, expected, "seed {seed}");
        }
    }

    #[test]
    fn hitting_set_reduction_positive_and_negative() {
        // {0,1}, {1,2} with k = 1: z = 1 hits both.
        let yes = HittingSet {
            universe: 3,
            sets: vec![vec![0, 1], vec![1, 2]],
            k: 1,
        };
        assert!(yes.brute_force());
        let (db, q) = theorem7_reduction(&yes);
        assert!(BoundedEvaluator::new(&q, 1).boolean(&db));

        // {0}, {1} with k = 1: impossible.
        let no = HittingSet {
            universe: 2,
            sets: vec![vec![0], vec![1]],
            k: 1,
        };
        assert!(!no.brute_force());
        let (db2, q2) = theorem7_reduction(&no);
        assert!(!BoundedEvaluator::new(&q2, 1).boolean(&db2));
    }

    #[test]
    fn hitting_set_reduction_random_agreement() {
        for seed in 0..6u64 {
            let inst = random_hitting_set(3, 2, 2, 1, seed);
            let (db, q) = theorem7_reduction(&inst);
            assert_eq!(
                BoundedEvaluator::new(&q, 1).boolean(&db),
                inst.brute_force(),
                "seed {seed}: {inst:?}"
            );
        }
    }

    #[test]
    fn reachability_reduction_correct() {
        let mut alpha = Alphabet::new();
        // 0 → 1 → 2, 3 isolated.
        let (db, q) = reachability_reduction(4, &[(0, 1), (1, 2)], 0, 2, &mut alpha);
        assert!(CrpqEvaluator::new(&q).boolean(&db));
        let mut alpha2 = Alphabet::new();
        let (db2, q2) = reachability_reduction(4, &[(0, 1), (1, 2)], 3, 0, &mut alpha2);
        assert!(!CrpqEvaluator::new(&q2).boolean(&db2));
    }

    #[test]
    fn theorem1_query_is_fixed_size() {
        let mut a1 = Alphabet::from_chars("ab#");
        let mut a2 = Alphabet::from_chars("ab#");
        let q = alpha_ni(&mut a1);
        let q3 = alpha_kni(4, &mut a2);
        assert!(q.size() < q3.size());
        // α^k_ni grows linearly in k.
        let mut a3 = Alphabet::from_chars("ab#");
        let q8 = alpha_kni(8, &mut a3);
        assert!(q8.size() > q3.size());
    }
}
