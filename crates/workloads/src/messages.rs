//! The Figure 2 motivating domain: a phone-message network where some
//! individuals hide their communication by encoding messages as sequences
//! of simple text messages relayed via intermediaries (Figure 2, G3).

use cxrpq_core::{Cxrpq, CxrpqBuilder};
use cxrpq_graph::{Alphabet, GraphBuilder, GraphDb, NodeId, Symbol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A synthetic message network with planted hidden channels.
pub struct MessageNetwork {
    /// The database (labels = message types).
    pub db: GraphDb,
    /// Planted covert pairs `(v1, v2, mutual_friend)`.
    pub planted: Vec<(NodeId, NodeId, NodeId)>,
}

/// Generates a message network over `messages` message types with
/// `population` people, `noise_edges` random messages, plus `planted`
/// covert triples satisfying Figure 2's G3: v1 reaches v2 by a sequence x
/// of ≥ 2 messages, v2 reaches v1 by a sequence y of ≥ 2 messages, and a
/// mutual contact is reached from v1 by repetitions of x and from v2 by
/// repetitions of y.
pub fn generate(
    population: usize,
    messages: usize,
    noise_edges: usize,
    planted: usize,
    seed: u64,
) -> MessageNetwork {
    assert!(messages >= 2 && population >= 4);
    let names: Vec<String> = (0..messages).map(|i| format!("m{i}")).collect();
    let alphabet = Arc::new(Alphabet::from_names(names.iter()));
    let mut rng = StdRng::seed_from_u64(seed);
    let mut db = GraphBuilder::new(alphabet);
    for _ in 0..population {
        db.add_node();
    }
    let sigma = db.alphabet().len() as u32;
    let mut planted_out = Vec::new();
    for _ in 0..planted {
        let v1 = NodeId(rng.random_range(0..population as u32));
        let v2 = NodeId(rng.random_range(0..population as u32));
        let friend = NodeId(rng.random_range(0..population as u32));
        let xlen = rng.random_range(2..=3usize);
        let ylen = rng.random_range(2..=3usize);
        let x: Vec<Symbol> = (0..xlen)
            .map(|_| Symbol(rng.random_range(0..sigma)))
            .collect();
        let y: Vec<Symbol> = (0..ylen)
            .map(|_| Symbol(rng.random_range(0..sigma)))
            .collect();
        db.add_word_path(v1, &x, v2);
        db.add_word_path(v2, &y, v1);
        // Repetitions of the code words reach the mutual contact.
        let reps_x = rng.random_range(1..=2usize);
        let reps_y = rng.random_range(1..=2usize);
        let xx: Vec<Symbol> = x.iter().copied().cycle().take(x.len() * reps_x).collect();
        let yy: Vec<Symbol> = y.iter().copied().cycle().take(y.len() * reps_y).collect();
        db.add_word_path(v1, &xx, friend);
        db.add_word_path(v2, &yy, friend);
        planted_out.push((v1, v2, friend));
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < noise_edges && attempts < noise_edges * 10 {
        attempts += 1;
        let u = NodeId(rng.random_range(0..db.node_count() as u32));
        let v = NodeId(rng.random_range(0..db.node_count() as u32));
        let a = Symbol(rng.random_range(0..sigma));
        if db.add_edge(u, a, v) {
            added += 1;
        }
    }
    MessageNetwork {
        db: db.freeze(),
        planted: planted_out,
    }
}

/// Figure 2 G3 — the hidden-communication query: pairs `(v1, v2)` with
/// mutual code-word paths and a common contact reached by repetitions.
/// Evaluated as `CXRPQ^{≤k}` (the paper's example uses k = 10: code words
/// of bounded length, repetitions unbounded).
pub fn fig2_g3(alphabet: &mut Alphabet) -> Cxrpq {
    CxrpqBuilder::new(alphabet)
        .edge("v1", "x{..+}", "v2")
        .edge("v2", "y{..+}", "v1")
        .edge("v1", "(x|y)+", "m")
        .edge("v2", "(x|y)+", "m")
        .output(&["v1", "v2"])
        .build()
        .expect("static query")
}

/// Figure 2 G1 over message types `a`, `b`, `c` (requires those symbols in
/// the alphabet): w has a direct x ∈ {a,b} arc to v1 and reaches v2 via
/// `(x|c)+`.
pub fn fig2_g1(alphabet: &mut Alphabet) -> Cxrpq {
    CxrpqBuilder::new(alphabet)
        .edge("w", "x{a|b}", "v1")
        .edge("w", "(x|c)+", "v2")
        .output(&["v1", "v2"])
        .build()
        .expect("static query")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxrpq_core::BoundedEvaluator;

    #[test]
    fn planted_channels_are_found() {
        let net = generate(12, 3, 10, 2, 21);
        let mut alpha = net.db.alphabet().clone();
        let q = fig2_g3(&mut alpha);
        let ev = BoundedEvaluator::new(&q, 3);
        let answers = ev.answers(&net.db);
        for (v1, v2, _) in &net.planted {
            assert!(
                answers.contains(&vec![*v1, *v2]),
                "planted pair ({v1:?}, {v2:?}) not found"
            );
        }
    }

    #[test]
    fn no_channels_in_pure_noise() {
        // A sparse random network without planted pairs only rarely
        // satisfies G3 (occasionally a short random cycle does, which is
        // correct behaviour); this seed is verified clean.
        let net = generate(16, 3, 8, 0, 1);
        let mut alpha = net.db.alphabet().clone();
        let q = fig2_g3(&mut alpha);
        let ev = BoundedEvaluator::new(&q, 2);
        assert!(ev.answers(&net.db).is_empty());
    }

    #[test]
    fn fig2_g1_semantics() {
        // Hand-built: w -a-> v1, w -a-> u -c-> v2 (x = a works);
        // and w -b-> v1' with only a-path onwards (x = b fails).
        let alphabet = Arc::new(Alphabet::from_chars("abc"));
        let a = alphabet.sym("a");
        let b = alphabet.sym("b");
        let c = alphabet.sym("c");
        let mut db = GraphBuilder::new(alphabet);
        let w = db.add_node();
        let v1 = db.add_node();
        let u = db.add_node();
        let v2 = db.add_node();
        db.add_edge(w, a, v1);
        db.add_edge(w, a, u);
        db.add_edge(u, c, v2);
        let v1b = db.add_node();
        db.add_edge(w, b, v1b);
        let db = db.freeze();
        let mut alpha = db.alphabet().clone();
        let q = fig2_g1(&mut alpha);
        let ev = BoundedEvaluator::new(&q, 1);
        let ans = ev.answers(&db);
        assert!(ans.contains(&vec![v1, v2])); // x = a
        assert!(ans.contains(&vec![v1, u]));
        // x = b: w -b-> v1b but no (b|c)+ path from w to v2.
        assert!(!ans.contains(&vec![v1b, v2]));
    }
}
