//! The expressiveness witnesses of §7 (Figures 6 and 7) and their database
//! families — the separation instances behind Figure 5's strict inclusions.

use cxrpq_automata::parse_regex;
use cxrpq_core::{Cxrpq, CxrpqBuilder, Ecrpq, GraphPattern, RegularRelation};
use cxrpq_graph::{Alphabet, GraphBuilder, GraphDb, NodeId, Symbol};
use std::sync::Arc;

/// Figure 6: `q_{aⁿbⁿ}` — an ECRPQ (equal-length relation) matching
/// databases containing `c aⁿ c` and `d bⁿ d` paths with the *same* n.
/// Witnesses `⟦ECRPQ^er⟧ ⊊ ⟦ECRPQ⟧` (Theorem 9).
pub fn q_anbn(alphabet: &mut Alphabet) -> Ecrpq {
    let mut pattern = GraphPattern::new();
    let edges = [
        ("x", "c", "y1"),
        ("y1", "a*", "y2"),
        ("y2", "c", "z"),
        ("x2", "d", "y12"),
        ("y12", "b*", "y22"),
        ("y22", "d", "z2"),
    ];
    for (s, l, d) in edges {
        let r = parse_regex(l, alphabet).unwrap();
        let sv = pattern.node(s);
        let dv = pattern.node(d);
        pattern.add_edge(sv, r, dv);
    }
    Ecrpq::new(
        pattern,
        vec![(RegularRelation::equal_length(2), vec![1, 4])],
        vec![],
    )
    .expect("static query")
}

/// Figure 6 variant: `q_{aⁿaⁿ}` — the same pattern with both repetition
/// edges labelled `a*` under an *equality* relation. Witnesses
/// `⟦CRPQ⟧ ⊊ ⟦ECRPQ^er⟧` (Theorem 9, Claim 2).
pub fn q_anan(alphabet: &mut Alphabet) -> Ecrpq {
    let mut pattern = GraphPattern::new();
    let edges = [
        ("x", "c", "y1"),
        ("y1", "a*", "y2"),
        ("y2", "c", "z"),
        ("x2", "d", "y12"),
        ("y12", "a*", "y22"),
        ("y22", "d", "z2"),
    ];
    for (s, l, d) in edges {
        let r = parse_regex(l, alphabet).unwrap();
        let sv = pattern.node(s);
        let dv = pattern.node(d);
        pattern.add_edge(sv, r, dv);
    }
    Ecrpq::new(
        pattern,
        vec![(RegularRelation::equality(2), vec![1, 4])],
        vec![],
    )
    .expect("static query")
}

/// Figure 7: `q₁ ∈ CXRPQ^{≤1}` — `u1 -x{a|b}-> u2`, `u3 -d-> u2`,
/// `u3 -(x|c)-> u4`. Witnesses `⟦CRPQ⟧ ⊊ ⟦CXRPQ^{≤k}⟧` (Lemma 15).
pub fn q1(alphabet: &mut Alphabet) -> Cxrpq {
    CxrpqBuilder::new(alphabet)
        .edge("u1", "x{a|b}", "u2")
        .edge("u3", "d", "u2")
        .edge("u3", "x|c", "u4")
        .build()
        .expect("static query")
}

/// The Lemma 15 database family `D_{σ₁,σ₂}`: `v1 -σ₁-> v2`, `v3 -d-> v2`,
/// `v3 -σ₂-> v4`. `D_{σ₁,σ₂} ⊨ q₁` iff σ₁ ∈ {a, b} and (σ₂ = σ₁ or σ₂ = c).
pub fn d_sigma(s1: char, s2: char) -> GraphDb {
    let alphabet = Arc::new(Alphabet::from_chars("abcd"));
    let mut db = GraphBuilder::new(alphabet);
    let v1 = db.add_node();
    let v2 = db.add_node();
    let v3 = db.add_node();
    let v4 = db.add_node();
    let sym1 = db.alphabet().sym(&s1.to_string());
    let sym2 = db.alphabet().sym(&s2.to_string());
    let d = db.alphabet().sym("d");
    db.add_edge(v1, sym1, v2);
    db.add_edge(v3, d, v2);
    db.add_edge(v3, sym2, v4);
    db.freeze()
}

/// Figure 7: `q₂ ∈ CXRPQ` — the single-edge query
/// `# y{x{a⁺b}x*} c y #`, matching paths labelled
/// `#(aⁿ¹b)ⁿ² c (aⁿ¹b)ⁿ² #`. Witnesses `⟦ECRPQ^er⟧ ⊊ ⟦CXRPQ⟧` (Lemma 16).
pub fn q2(alphabet: &mut Alphabet) -> Cxrpq {
    CxrpqBuilder::new(alphabet)
        .edge("u1", "#y{x{a+b}x*}cy#", "u2")
        .build()
        .expect("static query")
}

/// The Lemma 16 path family: a simple path labelled
/// `# (aᵖb)^q c (aʳb)^s #`; returns `(db, source, sink)`.
pub fn pumping_path(p: usize, q: usize, r: usize, s: usize) -> (GraphDb, NodeId, NodeId) {
    let alphabet = Arc::new(Alphabet::from_chars("abc#"));
    let a = alphabet.sym("a");
    let b = alphabet.sym("b");
    let c = alphabet.sym("c");
    let hash = alphabet.sym("#");
    let mut word: Vec<Symbol> = vec![hash];
    for _ in 0..q {
        word.extend(std::iter::repeat_n(a, p));
        word.push(b);
    }
    word.push(c);
    for _ in 0..s {
        word.extend(std::iter::repeat_n(a, r));
        word.push(b);
    }
    word.push(hash);
    let mut db = GraphBuilder::new(alphabet);
    let src = db.add_node();
    let snk = db.add_node();
    db.add_word_path(src, &word, snk);
    (db.freeze(), src, snk)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::{d_anam, d_anbm};
    use cxrpq_core::{BoundedEvaluator, EcrpqEvaluator, GenericEvaluator, GenericOutcome};

    #[test]
    fn q_anbn_separates_lengths() {
        let mut alpha = Alphabet::from_chars("abcd");
        let q = q_anbn(&mut alpha);
        for (n, m, expect) in [
            (0, 0, true),
            (2, 2, true),
            (4, 4, true),
            (2, 3, false),
            (5, 1, false),
        ] {
            let (db, _, _) = d_anbm(n, m);
            assert_eq!(EcrpqEvaluator::new(&q).boolean(&db), expect, "n={n} m={m}");
        }
    }

    #[test]
    fn q_anan_needs_equal_words() {
        let mut alpha = Alphabet::from_chars("abcd");
        let q = q_anan(&mut alpha);
        for (n, m, expect) in [(3, 3, true), (0, 0, true), (3, 2, false)] {
            let (db, _, _) = d_anam(n, m);
            assert_eq!(EcrpqEvaluator::new(&q).boolean(&db), expect, "n={n} m={m}");
        }
    }

    #[test]
    fn q1_matrix_matches_lemma_15() {
        let mut alpha = Alphabet::from_chars("abcd");
        let q = q1(&mut alpha);
        // D_{σ1,σ2} ⊨ q1 iff σ1 ∈ {a,b} ∧ (σ2 = σ1 ∨ σ2 = c).
        for s1 in ['a', 'b'] {
            for s2 in ['a', 'b', 'c'] {
                let db = d_sigma(s1, s2);
                let expect = s2 == s1 || s2 == 'c';
                assert_eq!(
                    BoundedEvaluator::new(&q, 1).boolean(&db),
                    expect,
                    "σ=({s1},{s2})"
                );
            }
        }
    }

    #[test]
    fn q2_matches_pumped_family_iff_halves_agree() {
        let mut alpha = Alphabet::from_chars("abc#");
        let q = q2(&mut alpha);
        // #(ab)²c(ab)²#: match with images x = ab, y = abab (k = 4).
        let (db, _, _) = pumping_path(1, 2, 1, 2);
        assert_eq!(
            GenericEvaluator::new(&q, 4).evaluate(&db),
            GenericOutcome::Match { k: 4 }
        );
        // Unequal inner exponents: #(ab)²c(a²b)²# — never a match (the cap
        // exceeds the path length, so the verdict is definitive).
        let (db2, _, _) = pumping_path(1, 2, 2, 2);
        assert!(matches!(
            GenericEvaluator::new(&q, 8).evaluate(&db2),
            GenericOutcome::NoMatchUpTo { .. }
        ));
        // Unequal repetition counts: #(ab)¹c(ab)²# — no match.
        let (db3, _, _) = pumping_path(1, 1, 1, 2);
        assert!(matches!(
            GenericEvaluator::new(&q, 8).evaluate(&db3),
            GenericOutcome::NoMatchUpTo { .. }
        ));
    }
}
