//! The Figure 1 motivating domain: persons with biological-parent arcs
//! `(u, p, v)` ("u is a (biological) parent of v") and supervision arcs
//! `(u, s, v)` ("v is u's PhD-supervisor"), exactly as in the paper's
//! introduction.

use cxrpq_core::Crpq;
use cxrpq_graph::{Alphabet, GraphBuilder, GraphDb, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A synthetic academic-genealogy population.
pub struct Genealogy {
    /// The database (labels `p`, `s`).
    pub db: GraphDb,
    /// Persons by generation (roots first).
    pub generations: Vec<Vec<NodeId>>,
}

/// Generates `gens` generations of `width` persons each. Every non-root has
/// one parent in the previous generation; every person has a supervisor
/// drawn from the previous generation with probability `supervised`.
pub fn generate(gens: usize, width: usize, supervised: f64, seed: u64) -> Genealogy {
    let alphabet = Arc::new(Alphabet::from_chars("ps"));
    let p = alphabet.sym("p");
    let s = alphabet.sym("s");
    let mut db = GraphBuilder::new(alphabet);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut generations: Vec<Vec<NodeId>> = Vec::with_capacity(gens);
    for g in 0..gens {
        let mut layer = Vec::with_capacity(width);
        for _ in 0..width {
            let person = db.add_node();
            if g > 0 {
                let parent = generations[g - 1][rng.random_range(0..width)];
                db.add_edge(parent, p, person);
                if rng.random_bool(supervised) {
                    let supervisor = generations[g - 1][rng.random_range(0..width)];
                    // (person, s, supervisor): supervisor is person's
                    // PhD-supervisor.
                    db.add_edge(person, s, supervisor);
                }
            }
            layer.push(person);
        }
        generations.push(layer);
    }
    Genealogy {
        db: db.freeze(),
        generations,
    }
}

/// Figure 1 G1: pairs `(v1, v2)` where v1's child has been supervised by
/// v2's parent. With `(u,p,v)` = "u is parent of v" and `(u,s,v)` = "v is
/// u's supervisor", the chain is `v1 -p-> child -s-> sup -p-> v2`.
pub fn fig1_g1(alphabet: &mut Alphabet) -> Crpq {
    Crpq::build(
        &[("v1", "ps", "sup"), ("sup", "p", "v2")],
        &["v1", "v2"],
        alphabet,
    )
    .expect("static query")
}

/// Figure 1 G2: `v1 -(p⁺ ∨ s⁺)-> v2` — biological ancestor or academical
/// descendant.
pub fn fig1_g2(alphabet: &mut Alphabet) -> Crpq {
    Crpq::build(&[("v1", "p+|s+", "v2")], &["v1", "v2"], alphabet).expect("static query")
}

/// Figure 1 G3: persons with a biological ancestor that is also their
/// academical ancestor: `m -p+-> v1` and `v1 -s+-> m`.
pub fn fig1_g3(alphabet: &mut Alphabet) -> Crpq {
    Crpq::build(&[("m", "p+", "v1"), ("v1", "s+", "m")], &["v1"], alphabet).expect("static query")
}

/// Figure 1 G4: pairs `(v1, v2)` biologically and academically related:
/// a common biological ancestor and a common academic ancestor.
pub fn fig1_g4(alphabet: &mut Alphabet) -> Crpq {
    Crpq::build(
        &[
            ("b", "p+", "v1"),
            ("b", "p+", "v2"),
            ("v1", "s+", "m"),
            ("v2", "s+", "m"),
        ],
        &["v1", "v2"],
        alphabet,
    )
    .expect("static query")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxrpq_core::CrpqEvaluator;

    #[test]
    fn generator_shapes() {
        let g = generate(4, 6, 0.8, 3);
        assert_eq!(g.generations.len(), 4);
        assert_eq!(g.db.node_count(), 24);
        // Every non-root has exactly one parent.
        let p = g.db.alphabet().sym("p");
        for layer in &g.generations[1..] {
            for &person in layer {
                let parents = g.db.in_edges(person).filter(|(l, _)| *l == p).count();
                assert_eq!(parents, 1);
            }
        }
    }

    #[test]
    fn g2_finds_ancestors() {
        let g = generate(3, 4, 0.5, 11);
        let mut alpha = g.db.alphabet().clone();
        let q = fig1_g2(&mut alpha);
        let ans = CrpqEvaluator::new(&q).answers(&g.db);
        // Every root-grandchild pair along parent chains must appear.
        let root = g.generations[0][0];
        let has_descendant = ans.iter().any(|t| t[0] == root);
        assert!(has_descendant);
    }

    #[test]
    fn hand_built_g1_matches() {
        // Deterministic miniature: r -p-> c, c -s-> sup, sup -p-> v2.
        let alphabet = Arc::new(Alphabet::from_chars("ps"));
        let p = alphabet.sym("p");
        let s = alphabet.sym("s");
        let mut db = GraphBuilder::new(alphabet);
        let v1 = db.add_node();
        let c = db.add_node();
        let sup = db.add_node();
        let v2 = db.add_node();
        db.add_edge(v1, p, c);
        db.add_edge(c, s, sup);
        db.add_edge(sup, p, v2);
        let db = db.freeze();
        let mut alpha = db.alphabet().clone();
        let q = fig1_g1(&mut alpha);
        let ans = CrpqEvaluator::new(&q).answers(&db);
        assert_eq!(ans, std::collections::BTreeSet::from([vec![v1, v2]]));
    }

    #[test]
    fn g3_detects_incestuous_lineage() {
        // m -p-> v1 and v1 -s-> m: the ancestor supervises the descendant.
        let alphabet = Arc::new(Alphabet::from_chars("ps"));
        let p = alphabet.sym("p");
        let s = alphabet.sym("s");
        let mut db = GraphBuilder::new(alphabet);
        let m = db.add_node();
        let v1 = db.add_node();
        db.add_edge(m, p, v1);
        db.add_edge(v1, s, m);
        let db = db.freeze();
        let mut alpha = db.alphabet().clone();
        let q = fig1_g3(&mut alpha);
        let ans = CrpqEvaluator::new(&q).answers(&db);
        assert!(ans.contains(&vec![v1]));
    }
}
