//! Generic graph-database generators.

use cxrpq_graph::{Alphabet, GraphBuilder, GraphDb, NodeId, Symbol};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

/// A uniformly random edge-labelled multigraph with `nodes` nodes and (up
/// to) `edges` distinct arcs over the given alphabet.
pub fn random_labeled(alphabet: Arc<Alphabet>, nodes: usize, edges: usize, seed: u64) -> GraphDb {
    assert!(nodes > 0 && !alphabet.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    let sigma = alphabet.len() as u32;
    let mut db = GraphBuilder::new(alphabet);
    for _ in 0..nodes {
        db.add_node();
    }
    let mut added = 0;
    let mut attempts = 0;
    while added < edges && attempts < edges * 10 {
        attempts += 1;
        let u = NodeId(rng.random_range(0..nodes as u32));
        let v = NodeId(rng.random_range(0..nodes as u32));
        let a = Symbol(rng.random_range(0..sigma));
        if db.add_edge(u, a, v) {
            added += 1;
        }
    }
    db.freeze()
}

/// A `rows × cols` directed grid with right- and down-arcs, labels drawn
/// uniformly from the alphabet. Node `(r, c)` is `NodeId(r · cols + c)`.
///
/// Grids are the classic bounded-degree, high-diameter shape for reach
/// benchmarks: frontiers stay wide without the fan-out of random graphs.
pub fn grid_labeled(alphabet: Arc<Alphabet>, rows: usize, cols: usize, seed: u64) -> GraphDb {
    assert!(rows > 0 && cols > 0 && !alphabet.is_empty());
    let mut rng = StdRng::seed_from_u64(seed);
    let sigma = alphabet.len() as u32;
    let mut db = GraphBuilder::new(alphabet);
    for _ in 0..rows * cols {
        db.add_node();
    }
    let at = |r: usize, c: usize| NodeId((r * cols + c) as u32);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                db.add_edge(at(r, c), Symbol(rng.random_range(0..sigma)), at(r, c + 1));
            }
            if r + 1 < rows {
                db.add_edge(at(r, c), Symbol(rng.random_range(0..sigma)), at(r + 1, c));
            }
        }
    }
    db.freeze()
}

/// A simple path labelled by `word`; returns `(db, source, sink)`.
pub fn labeled_path(alphabet: Arc<Alphabet>, word: &[Symbol]) -> (GraphDb, NodeId, NodeId) {
    let mut db = GraphBuilder::new(alphabet);
    let s = db.add_node();
    if word.is_empty() {
        return (db.freeze(), s, s);
    }
    let t = db.add_node();
    db.add_word_path(s, word, t);
    (db.freeze(), s, t)
}

/// A cycle labelled by `word` (repeating).
pub fn labeled_cycle(alphabet: Arc<Alphabet>, word: &[Symbol]) -> GraphDb {
    assert!(!word.is_empty());
    let mut db = GraphBuilder::new(alphabet);
    let start = db.add_node();
    if word.len() == 1 {
        db.add_edge(start, word[0], start);
        return db.freeze();
    }
    let mut prev = start;
    for &a in &word[..word.len() - 1] {
        let n = db.add_node();
        db.add_edge(prev, a, n);
        prev = n;
    }
    db.add_edge(prev, word[word.len() - 1], start);
    db.freeze()
}

/// The §7 two-path family: two node-disjoint labelled paths; returns the
/// database and the endpoints `((s₁, t₁), (s₂, t₂))`.
pub fn two_paths(
    alphabet: Arc<Alphabet>,
    w1: &[Symbol],
    w2: &[Symbol],
) -> (GraphDb, (NodeId, NodeId), (NodeId, NodeId)) {
    let mut db = GraphBuilder::new(alphabet);
    let s1 = db.add_node();
    let t1 = db.add_node();
    let s2 = db.add_node();
    let t2 = db.add_node();
    db.add_word_path(s1, w1, t1);
    db.add_word_path(s2, w2, t2);
    (db.freeze(), (s1, t1), (s2, t2))
}

/// `D_{n,m}` of the Theorem 9/10 proofs: disjoint paths labelled `c aⁿ c`
/// and `d bᵐ d`.
pub fn d_anbm(n: usize, m: usize) -> (GraphDb, (NodeId, NodeId), (NodeId, NodeId)) {
    let alphabet = Arc::new(Alphabet::from_chars("abcd"));
    let a = alphabet.sym("a");
    let b = alphabet.sym("b");
    let c = alphabet.sym("c");
    let d = alphabet.sym("d");
    let mut w1 = vec![c];
    w1.extend(std::iter::repeat_n(a, n));
    w1.push(c);
    let mut w2 = vec![d];
    w2.extend(std::iter::repeat_n(b, m));
    w2.push(d);
    two_paths(alphabet, &w1, &w2)
}

/// Variant for `q_{aⁿaⁿ}`: paths `c aⁿ c` and `d aᵐ d`.
pub fn d_anam(n: usize, m: usize) -> (GraphDb, (NodeId, NodeId), (NodeId, NodeId)) {
    let alphabet = Arc::new(Alphabet::from_chars("abcd"));
    let a = alphabet.sym("a");
    let c = alphabet.sym("c");
    let d = alphabet.sym("d");
    let mut w1 = vec![c];
    w1.extend(std::iter::repeat_n(a, n));
    w1.push(c);
    let mut w2 = vec![d];
    w2.extend(std::iter::repeat_n(a, m));
    w2.push(d);
    two_paths(alphabet, &w1, &w2)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_graph_respects_limits() {
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let db = random_labeled(alpha, 50, 120, 7);
        assert_eq!(db.node_count(), 50);
        assert!(db.edge_count() <= 120);
        assert!(db.edge_count() > 60, "too sparse for the requested size");
    }

    #[test]
    fn random_graph_is_deterministic_per_seed() {
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let d1 = random_labeled(alpha.clone(), 20, 40, 42);
        let d2 = random_labeled(alpha, 20, 40, 42);
        let e1: std::collections::BTreeSet<_> = d1.edges().collect();
        let e2: std::collections::BTreeSet<_> = d2.edges().collect();
        assert_eq!(e1, e2);
    }

    #[test]
    fn grid_shape() {
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let g = grid_labeled(alpha, 3, 4, 11);
        assert_eq!(g.node_count(), 12);
        // 3·(4−1) right arcs + (3−1)·4 down arcs.
        assert_eq!(g.edge_count(), 17);
        assert!(g.reachable(NodeId(0), NodeId(11)));
        assert!(!g.reachable(NodeId(11), NodeId(0)));
    }

    #[test]
    fn path_and_cycle_shapes() {
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let w = alpha.parse_word("abab").unwrap();
        let (db, s, t) = labeled_path(alpha.clone(), &w);
        assert!(db.has_path_labelled(s, &w, t));
        assert_eq!(db.node_count(), 5);
        let cyc = labeled_cycle(alpha, &w);
        assert_eq!(cyc.node_count(), 4);
        assert_eq!(cyc.edge_count(), 4);
    }

    #[test]
    fn d_family_shapes() {
        let (db, (s1, t1), (s2, t2)) = d_anbm(3, 2);
        let alpha = db.alphabet();
        let w1 = alpha.parse_word("caaac").unwrap();
        let w2 = alpha.parse_word("dbbd").unwrap();
        assert!(db.has_path_labelled(s1, &w1, t1));
        assert!(db.has_path_labelled(s2, &w2, t2));
        assert!(!db.reachable(s1, s2));
    }
}
