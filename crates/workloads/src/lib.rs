//! Workload generators for the CXRPQ reproduction: synthetic graph
//! databases modelled on the paper's motivating examples, the database
//! families constructed inside its proofs, and the hardness-reduction
//! instance builders of Theorems 1, 3 and 7.

pub mod genealogy;
pub mod graphs;
pub mod messages;
pub mod rand_queries;
pub mod reductions;
pub mod witnesses;
