//! Random query generators for fuzzing and property tests.
//!
//! Validity by construction: variables are introduced in a fixed order;
//! the definition of `xᵢ` may reference only `x_j` with `j < i` (acyclic)
//! and each variable is defined at most once overall (sequential); no
//! variable occurs under a repetition (vstar-free).

use cxrpq_automata::Regex;
use cxrpq_graph::Symbol;
use cxrpq_xregex::{ConjunctiveXregex, Var, VarTable, Xregex};
use rand::Rng;

/// Shape parameters for random generation.
#[derive(Clone, Copy, Debug)]
pub struct QueryShape {
    /// Number of components (pattern edges).
    pub dims: usize,
    /// Number of string variables.
    pub vars: usize,
    /// Alphabet size |Σ|.
    pub sigma: usize,
    /// Probability that a component slot becomes an alternation.
    pub alt_prob: f64,
}

impl Default for QueryShape {
    fn default() -> Self {
        Self {
            dims: 2,
            vars: 2,
            sigma: 2,
            alt_prob: 0.3,
        }
    }
}

/// A random classical regex over symbols `0..sigma` with nesting depth at
/// most `depth` (concatenation, alternation, star). Also the edge-label
/// generator for random CRPQ patterns in differential solver tests.
pub fn random_classical<R: Rng + ?Sized>(rng: &mut R, sigma: usize, depth: usize) -> Regex {
    let choice = if depth == 0 {
        0
    } else {
        rng.random_range(0..5u32)
    };
    match choice {
        0 => Regex::Sym(Symbol(rng.random_range(0..sigma as u32))),
        1 => Regex::Epsilon,
        2 => Regex::concat(vec![
            random_classical(rng, sigma, depth - 1),
            random_classical(rng, sigma, depth - 1),
        ]),
        3 => Regex::alt(vec![
            random_classical(rng, sigma, depth - 1),
            random_classical(rng, sigma, depth - 1),
        ]),
        _ => Regex::star(random_classical(rng, sigma, depth - 1)),
    }
}

/// A random vstar-free conjunctive xregex with the given shape.
///
/// Each variable is assigned a random defining component and position;
/// definition bodies are variable-simple over earlier variables; extra
/// references are sprinkled across components (possibly under
/// variable-containing alternations, exercising Step 1 of the normal form).
pub fn random_vstar_free<R: Rng + ?Sized>(rng: &mut R, shape: &QueryShape) -> ConjunctiveXregex {
    let mut vars = VarTable::new();
    let xs: Vec<Var> = (0..shape.vars)
        .map(|i| vars.intern(&format!("x{i}")))
        .collect();
    // Component slots: each component is a list of items.
    let mut slots: Vec<Vec<Xregex>> = vec![Vec::new(); shape.dims];
    for (i, &x) in xs.iter().enumerate() {
        // Definition body over variables x_0 … x_{i-1}.
        let mut body_parts = vec![Xregex::from_regex(&random_classical(rng, shape.sigma, 2))];
        if i > 0 && rng.random_bool(0.5) {
            let r = xs[rng.random_range(0..i)];
            body_parts.push(Xregex::VarRef(r));
            body_parts.push(Xregex::from_regex(&random_classical(rng, shape.sigma, 1)));
        }
        let def = Xregex::def(x, Xregex::concat(body_parts));
        let comp = rng.random_range(0..shape.dims);
        let item = if rng.random_bool(shape.alt_prob) {
            Xregex::alt(vec![
                def,
                Xregex::from_regex(&random_classical(rng, shape.sigma, 1)),
            ])
        } else {
            def
        };
        slots[comp].push(item);
    }
    // Sprinkle references.
    let n_refs = rng.random_range(1..=shape.vars.max(1) * 2);
    for _ in 0..n_refs {
        let x = xs[rng.random_range(0..xs.len())];
        let comp = rng.random_range(0..shape.dims);
        let item = if rng.random_bool(shape.alt_prob) {
            Xregex::alt(vec![
                Xregex::VarRef(x),
                Xregex::from_regex(&random_classical(rng, shape.sigma, 1)),
            ])
        } else {
            Xregex::VarRef(x)
        };
        slots[comp].push(item);
    }
    // Classical glue.
    for slot in &mut slots {
        slot.push(Xregex::from_regex(&random_classical(rng, shape.sigma, 1)));
    }
    let comps: Vec<Xregex> = slots.into_iter().map(Xregex::concat).collect();
    ConjunctiveXregex::new(comps, vars).expect("valid by construction")
}

/// A random *finite* classical regex (no `*`/`+`): concatenations and
/// alternations of symbols and ε, with word length at most `2^depth`.
fn random_finite_classical<R: Rng + ?Sized>(rng: &mut R, sigma: usize, depth: usize) -> Regex {
    let choice = if depth == 0 {
        rng.random_range(0..2u32)
    } else {
        rng.random_range(0..4u32)
    };
    match choice {
        0 => Regex::Sym(Symbol(rng.random_range(0..sigma as u32))),
        1 => Regex::Epsilon,
        2 => Regex::concat(vec![
            random_finite_classical(rng, sigma, depth - 1),
            random_finite_classical(rng, sigma, depth - 1),
        ]),
        _ => Regex::alt(vec![
            random_finite_classical(rng, sigma, depth - 1),
            random_finite_classical(rng, sigma, depth - 1),
        ]),
    }
}

/// A random *simple* conjunctive xregex (the Lemma 3 fragment): components
/// are concatenations of classical chunks, definitions with classical
/// bodies, and references — no variable under an alternation or repetition.
///
/// Every variable is defined exactly once, with a *finite* body of word
/// length ≤ `2^body_depth` (default shape: ≤ 4), so `⊨_{≤k}` evaluation is
/// exact for any `k ≥ 2^body_depth` — the property the cross-engine
/// agreement tests rely on to compare the bounded engine against the exact
/// ones.
pub fn random_simple<R: Rng + ?Sized>(rng: &mut R, shape: &QueryShape) -> ConjunctiveXregex {
    let body_depth = 2usize;
    let mut vars = VarTable::new();
    let xs: Vec<Var> = (0..shape.vars)
        .map(|i| vars.intern(&format!("x{i}")))
        .collect();
    let mut slots: Vec<Vec<Xregex>> = vec![Vec::new(); shape.dims];
    for &x in &xs {
        let body = random_finite_classical(rng, shape.sigma, body_depth);
        let comp = rng.random_range(0..shape.dims);
        slots[comp].push(Xregex::def(x, Xregex::from_regex(&body)));
    }
    // Sprinkle references (bare, never under alternation: simple fragment).
    if !xs.is_empty() {
        let n_refs = rng.random_range(1..=shape.vars * 2);
        for _ in 0..n_refs {
            let x = xs[rng.random_range(0..xs.len())];
            let comp = rng.random_range(0..shape.dims);
            slots[comp].push(Xregex::VarRef(x));
        }
    }
    // Classical glue (repetitions allowed outside variables).
    for slot in &mut slots {
        slot.push(Xregex::from_regex(&random_classical(rng, shape.sigma, 1)));
    }
    let comps: Vec<Xregex> = slots.into_iter().map(Xregex::concat).collect();
    ConjunctiveXregex::new(comps, vars).expect("valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxrpq_xregex::classification;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn generated_queries_are_valid_and_vstar_free() {
        let mut rng = StdRng::seed_from_u64(17);
        for seed_round in 0..50 {
            let cx = random_vstar_free(
                &mut rng,
                &QueryShape {
                    dims: 2,
                    vars: 3,
                    sigma: 2,
                    alt_prob: 0.4,
                },
            );
            let c = classification(&cx);
            assert!(c.vstar_free, "round {seed_round}: not vstar-free");
        }
    }

    #[test]
    fn generated_simple_queries_classify_simple() {
        let mut rng = StdRng::seed_from_u64(5);
        for round in 0..50 {
            let cx = random_simple(
                &mut rng,
                &QueryShape {
                    dims: 2,
                    vars: 2,
                    sigma: 2,
                    alt_prob: 0.0,
                },
            );
            let c = classification(&cx);
            assert!(c.simple, "round {round}: not simple");
        }
    }

    #[test]
    fn normal_form_round_trip_on_random_queries() {
        use cxrpq_xregex::matcher::MatchConfig;
        use cxrpq_xregex::normal_form::normal_form;
        use cxrpq_xregex::sample::{sample_conjunctive_match, SampleConfig};
        let mut rng = StdRng::seed_from_u64(23);
        let cfg = SampleConfig {
            rep_continue: 0.4,
            max_reps: 2,
            free_image_max: 2,
        };
        // The backtracking oracle is exponential and gives up (rather than
        // answer unsoundly) on instances that exhaust its fuel; those are
        // skipped via `try_is_match`, and a floor on executed checks below
        // guards against the test passing vacuously.
        let mut checked = 0usize;
        for _ in 0..20 {
            let cx = random_vstar_free(&mut rng, &QueryShape::default());
            let (nf, _) = normal_form(&cx).unwrap();
            // Sampled matches of the original are matches of the normal
            // form (and vice versa).
            for _ in 0..5 {
                if let Some((words, _)) = sample_conjunctive_match(&cx, 2, &cfg, &mut rng) {
                    if let Some(result) = nf.try_is_match(&words, &MatchConfig::default()) {
                        checked += 1;
                        assert!(result.is_some(), "normal form lost a match");
                    }
                }
                if let Some((words, _)) = sample_conjunctive_match(&nf, 2, &cfg, &mut rng) {
                    if let Some(result) = cx.try_is_match(&words, &MatchConfig::default()) {
                        checked += 1;
                        assert!(result.is_some(), "normal form gained a match");
                    }
                }
            }
        }
        assert!(
            checked >= 50,
            "only {checked}/200 round-trip checks ran — oracle or sampler degraded"
        );
    }
}
