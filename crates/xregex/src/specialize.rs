//! Lemma 10: specializing a conjunctive xregex to a fixed variable mapping.
//!
//! For `ᾱ ∈ m-CXRE` and a mapping `v̄`, there is a tuple `β̄` of *classical*
//! regular expressions with `L(β̄) = L^{v̄}(ᾱ)` — the conjunctive matches
//! whose variable mapping is exactly `v̄`. The construction (§6.1):
//!
//! - **Step A** — mark every definition `x{γ}` (innermost first) with whether
//!   `γ′` can produce `v̄(x)`, where `γ′` replaces inner references and
//!   definitions by their intended images; definitions marked 0 are *cut*:
//!   the syntax tree is deleted upward until the nearest alternation node
//!   (whole component becomes `∅` when there is none);
//! - **Step B** — for every `x` with `v̄(x) ≠ ε` whose definitions survive,
//!   prune alternation branches that avoid instantiating a definition of `x`
//!   (the match *must* instantiate one); if `x` originally had definitions
//!   but none survives, the whole tuple is `∅`;
//! - **Step C** — replace all surviving definitions and references by the
//!   image words.
//!
//! **Clarification (documented in DESIGN.md):** variables with *no*
//! definition anywhere in `ᾱ` are the `x{Σ*}` dummy-definition variables of
//! the §3.1 semantics; any image is admissible for them, so Step B's
//! `∅`-rule applies only to variables that had definitions in the original
//! tuple. This is the reading consistent with reference-only equality edges
//! (Lemma 12).

use crate::ast::{Var, Xregex};
use crate::conjunctive::ConjunctiveXregex;
use cxrpq_automata::{Nfa, Regex};
use cxrpq_graph::Symbol;
use std::collections::BTreeMap;

/// A total variable mapping `v̄` (variables absent from the map are ε).
pub type VarMapping = BTreeMap<Var, Vec<Symbol>>;

/// Mutable working tree for the cut/prune transformations.
#[derive(Clone, Debug)]
enum SNode {
    Empty,
    Eps,
    Sym(Symbol),
    Any,
    Concat(Vec<SNode>),
    Alt(Vec<SNode>),
    Plus(Box<SNode>),
    Star(Box<SNode>),
    Ref(Var),
    Def {
        var: Var,
        body: Box<SNode>,
        checked: bool,
    },
}

impl SNode {
    fn from_xregex(r: &Xregex) -> SNode {
        match r {
            Xregex::Empty => SNode::Empty,
            Xregex::Epsilon => SNode::Eps,
            Xregex::Sym(a) => SNode::Sym(*a),
            Xregex::Any => SNode::Any,
            Xregex::Concat(ps) => SNode::Concat(ps.iter().map(SNode::from_xregex).collect()),
            Xregex::Alt(ps) => SNode::Alt(ps.iter().map(SNode::from_xregex).collect()),
            Xregex::Plus(p) => SNode::Plus(Box::new(SNode::from_xregex(p))),
            Xregex::Star(p) => SNode::Star(Box::new(SNode::from_xregex(p))),
            Xregex::VarRef(x) => SNode::Ref(*x),
            Xregex::VarDef(x, p) => SNode::Def {
                var: *x,
                body: Box::new(SNode::from_xregex(p)),
                checked: false,
            },
        }
    }

    /// Finds the path (child indices) to an innermost unchecked definition.
    fn find_unchecked_innermost(&self, path: &mut Vec<usize>) -> bool {
        match self {
            SNode::Concat(ps) | SNode::Alt(ps) => {
                for (i, p) in ps.iter().enumerate() {
                    path.push(i);
                    if p.find_unchecked_innermost(path) {
                        return true;
                    }
                    path.pop();
                }
                false
            }
            SNode::Plus(p) | SNode::Star(p) => {
                path.push(0);
                if p.find_unchecked_innermost(path) {
                    return true;
                }
                path.pop();
                false
            }
            SNode::Def { body, checked, .. } => {
                path.push(0);
                if body.find_unchecked_innermost(path) {
                    return true;
                }
                path.pop();
                !checked
            }
            _ => false,
        }
    }

    fn at_path(&self, path: &[usize]) -> &SNode {
        match (self, path.split_first()) {
            (node, None) => node,
            (SNode::Concat(ps) | SNode::Alt(ps), Some((&i, rest))) => ps[i].at_path(rest),
            (SNode::Plus(p) | SNode::Star(p) | SNode::Def { body: p, .. }, Some((_, rest))) => {
                p.at_path(rest)
            }
            _ => unreachable!("bad path"),
        }
    }

    fn mark_checked(&mut self, path: &[usize]) {
        match (self, path.split_first()) {
            (SNode::Def { checked, .. }, None) => *checked = true,
            (SNode::Concat(ps) | SNode::Alt(ps), Some((&i, rest))) => ps[i].mark_checked(rest),
            (SNode::Plus(p) | SNode::Star(p) | SNode::Def { body: p, .. }, Some((_, rest))) => {
                p.mark_checked(rest);
            }
            _ => unreachable!("bad path"),
        }
    }

    /// Cuts the subtree at `path` upward to the nearest alternation node.
    /// Returns `true` when the whole tree must be deleted (no alternation on
    /// the way to the root).
    fn cut(&mut self, path: &[usize]) -> bool {
        let Some((&i, rest)) = path.split_first() else {
            return true; // the node itself
        };
        match self {
            SNode::Alt(ps) => {
                if ps[i].cut(rest) {
                    ps.remove(i);
                    if ps.is_empty() {
                        return true;
                    }
                }
                false
            }
            SNode::Concat(ps) => ps[i].cut(rest),
            SNode::Plus(p) | SNode::Star(p) | SNode::Def { body: p, .. } => p.cut(rest),
            _ => unreachable!("bad path"),
        }
    }

    /// Step B pruning: keeps, under every alternation on a path to a
    /// definition of `x`, only the children that still reach one. Returns
    /// whether the subtree contains a definition of `x`.
    fn force_instantiation(&mut self, x: Var) -> bool {
        match self {
            SNode::Def { var, body, .. } => {
                let inner = body.force_instantiation(x);
                *var == x || inner
            }
            SNode::Concat(ps) => {
                let mut any = false;
                for p in ps {
                    any |= p.force_instantiation(x);
                }
                any
            }
            SNode::Alt(ps) => {
                let flags: Vec<bool> = ps.iter_mut().map(|p| p.force_instantiation(x)).collect();
                if flags.iter().any(|&f| f) {
                    let mut keep = flags.iter();
                    ps.retain(|_| *keep.next().unwrap());
                    true
                } else {
                    false
                }
            }
            SNode::Plus(p) | SNode::Star(p) => {
                // Definitions cannot occur under repetition (sequentiality).
                debug_assert!(!p.force_instantiation(x));
                false
            }
            _ => false,
        }
    }

    /// Whether any definition of `x` survives in the tree.
    fn has_def_of(&self, x: Var) -> bool {
        match self {
            SNode::Def { var, body, .. } => *var == x || body.has_def_of(x),
            SNode::Concat(ps) | SNode::Alt(ps) => ps.iter().any(|p| p.has_def_of(x)),
            SNode::Plus(p) | SNode::Star(p) => p.has_def_of(x),
            _ => false,
        }
    }

    /// Step C: replaces definitions and references by image words.
    fn to_regex(&self, psi: &VarMapping) -> Regex {
        let image =
            |x: &Var| -> Regex { Regex::word(psi.get(x).map(Vec::as_slice).unwrap_or(&[])) };
        match self {
            SNode::Empty => Regex::Empty,
            SNode::Eps => Regex::Epsilon,
            SNode::Sym(a) => Regex::Sym(*a),
            SNode::Any => Regex::Any,
            SNode::Concat(ps) => Regex::concat(ps.iter().map(|p| p.to_regex(psi)).collect()),
            SNode::Alt(ps) => Regex::alt(ps.iter().map(|p| p.to_regex(psi)).collect()),
            SNode::Plus(p) => Regex::plus(p.to_regex(psi)),
            SNode::Star(p) => Regex::star(p.to_regex(psi)),
            SNode::Ref(x) => image(x),
            SNode::Def { var, .. } => image(var),
        }
    }
}

/// Replaces every reference and definition in `body` by its image word under
/// `psi`, yielding the classical `γ′` of Lemma 10's membership check. Also
/// used by the CXRPQ^{≤k} candidate enumerator.
pub fn substituted_body(body: &Xregex, psi: &VarMapping) -> Regex {
    let image = |x: &Var| -> Regex { Regex::word(psi.get(x).map(Vec::as_slice).unwrap_or(&[])) };
    match body {
        Xregex::Empty => Regex::Empty,
        Xregex::Epsilon => Regex::Epsilon,
        Xregex::Sym(a) => Regex::Sym(*a),
        Xregex::Any => Regex::Any,
        Xregex::Concat(ps) => Regex::concat(ps.iter().map(|p| substituted_body(p, psi)).collect()),
        Xregex::Alt(ps) => Regex::alt(ps.iter().map(|p| substituted_body(p, psi)).collect()),
        Xregex::Plus(p) => Regex::plus(substituted_body(p, psi)),
        Xregex::Star(p) => Regex::star(substituted_body(p, psi)),
        Xregex::VarRef(x) => image(x),
        Xregex::VarDef(x, _) => image(x),
    }
}

/// Lemma 10: computes classical `β̄` with `L(β̄) = L^{v̄}(ᾱ)`.
///
/// Returns `None` when `L^{v̄}(ᾱ) = ∅` is detected syntactically (a
/// component reduced to `∅`, or a mandatory instantiation is impossible).
/// Variables absent from `psi` are taken to be ε.
pub fn specialize(cx: &ConjunctiveXregex, psi: &VarMapping) -> Option<Vec<Regex>> {
    let originally_defined: Vec<Var> = cx.defined_vars();
    let mut trees: Vec<Option<SNode>> = cx
        .components()
        .iter()
        .map(|c| Some(SNode::from_xregex(c)))
        .collect();

    // Step A: mark / cut definitions, innermost first.
    for slot in &mut trees {
        while let Some(tree) = slot.as_mut() {
            let mut path = Vec::new();
            if !tree.find_unchecked_innermost(&mut path) {
                break;
            }
            let (var, body) = match tree.at_path(&path) {
                SNode::Def { var, body, .. } => (*var, body.as_ref().clone()),
                _ => unreachable!(),
            };
            let gamma_prime = snode_substitute(&body, psi);
            let target = psi.get(&var).map(Vec::as_slice).unwrap_or(&[]);
            let can_produce = Nfa::from_regex(&gamma_prime).accepts(target);
            if can_produce {
                tree.mark_checked(&path);
            } else if tree.cut(&path) {
                *slot = None; // whole component deleted
            }
        }
    }

    // Step B: force instantiation of variables with non-ε images.
    for &x in &originally_defined {
        let img_nonempty = psi.get(&x).map(|v| !v.is_empty()).unwrap_or(false);
        if !img_nonempty {
            continue;
        }
        let mut survives = false;
        for slot in &mut trees {
            if let Some(tree) = slot.as_mut() {
                if tree.has_def_of(x) {
                    tree.force_instantiation(x);
                    survives = true;
                }
            }
        }
        if !survives {
            return None; // v̄(x) ≠ ε but no definition can be instantiated
        }
    }

    // Step C: replace by images.
    let mut out = Vec::with_capacity(trees.len());
    for slot in &trees {
        match slot {
            None => return None,
            Some(tree) => {
                let r = tree.to_regex(psi);
                if r.is_empty_lang() {
                    return None;
                }
                out.push(r);
            }
        }
    }
    Some(out)
}

fn snode_substitute(body: &SNode, psi: &VarMapping) -> Regex {
    let image = |x: &Var| -> Regex { Regex::word(psi.get(x).map(Vec::as_slice).unwrap_or(&[])) };
    match body {
        SNode::Empty => Regex::Empty,
        SNode::Eps => Regex::Epsilon,
        SNode::Sym(a) => Regex::Sym(*a),
        SNode::Any => Regex::Any,
        SNode::Concat(ps) => Regex::concat(ps.iter().map(|p| snode_substitute(p, psi)).collect()),
        SNode::Alt(ps) => Regex::alt(ps.iter().map(|p| snode_substitute(p, psi)).collect()),
        SNode::Plus(p) => Regex::plus(snode_substitute(p, psi)),
        SNode::Star(p) => Regex::star(snode_substitute(p, psi)),
        SNode::Ref(x) => image(x),
        SNode::Def { var, .. } => image(var),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::MatchConfig;
    use crate::parser::parse_conjunctive;
    use cxrpq_graph::Alphabet;

    fn setup(inputs: &[&str], alpha: &mut Alphabet) -> ConjunctiveXregex {
        let (comps, vt) = parse_conjunctive(inputs, alpha).unwrap();
        ConjunctiveXregex::new(comps, vt).unwrap()
    }

    fn psi_of(pairs: &[(&str, &str)], cx: &ConjunctiveXregex, a: &Alphabet) -> VarMapping {
        pairs
            .iter()
            .map(|(v, w)| (cx.vars().var(v).unwrap(), a.parse_word(w).unwrap()))
            .collect()
    }

    #[test]
    fn section_6_1_worked_example() {
        // α1 = x3{x1{ca*c}x2*} ∨ ((x1{cb*}∨x1{x4c*})(b∨x2*)x3{x1x2x1*})
        // α2 = (x1|x2)* x4{(b|c)*x2*} x2{(a|b)*a}
        // v̄ = (ca, a, caaca, ca): expected β = (ca(b|a*)caaca, ((ca)|a)*caa).
        let mut a = Alphabet::from_chars("abc");
        let cx = setup(
            &[
                "x3{x1{ca*c}x2*}|((x1{cb*}|x1{x4c*})(b|x2*)x3{x1x2x1*})",
                "(x1|x2)* x4{(b|c)*x2*} x2{(a|b)*a}",
            ],
            &mut a,
        );
        let psi = psi_of(
            &[("x1", "ca"), ("x2", "a"), ("x3", "caaca"), ("x4", "ca")],
            &cx,
            &a,
        );
        let beta = specialize(&cx, &psi).expect("non-empty specialization");
        assert_eq!(beta.len(), 2);
        // β1 ≡ ca(b|a*)caaca: check a few members / non-members.
        let m1 = Nfa::from_regex(&beta[0]);
        assert!(m1.accepts(&a.parse_word("cabcaaca").unwrap()));
        assert!(m1.accepts(&a.parse_word("cacaaca").unwrap())); // a* = ε
        assert!(m1.accepts(&a.parse_word("caaacaaca").unwrap())); // a* = aa
        assert!(!m1.accepts(&a.parse_word("caaca").unwrap()));
        // β2 ≡ ((ca)|a)*caa.
        let m2 = Nfa::from_regex(&beta[1]);
        assert!(m2.accepts(&a.parse_word("caa").unwrap()));
        assert!(m2.accepts(&a.parse_word("cacaa").unwrap()));
        assert!(m2.accepts(&a.parse_word("acaa").unwrap()));
        assert!(!m2.accepts(&a.parse_word("ca").unwrap()));
    }

    #[test]
    fn specialization_agrees_with_pinned_oracle() {
        // For each candidate mapping, membership in L(β̄) must coincide with
        // the pinned-mapping conjunctive-match oracle.
        let mut a = Alphabet::from_chars("ab");
        let cx = setup(&["x{a|bb}(a|x)y", "y{b*}x"], &mut a);
        let words: Vec<Vec<Symbol>> = (0..=4usize)
            .flat_map(|n| {
                (0..(1u32 << n))
                    .map(move |mask| (0..n).map(|i| Symbol((mask >> i) & 1)).collect::<Vec<_>>())
            })
            .collect();
        let images: Vec<Vec<Symbol>> = (0..=2usize)
            .flat_map(|n| {
                (0..(1u32 << n))
                    .map(move |mask| (0..n).map(|i| Symbol((mask >> i) & 1)).collect::<Vec<_>>())
            })
            .collect();
        let x = cx.vars().var("x").unwrap();
        let y = cx.vars().var("y").unwrap();
        for ix in &images {
            for iy in &images {
                let psi: VarMapping = [(x, ix.clone()), (y, iy.clone())].into_iter().collect();
                let beta = specialize(&cx, &psi);
                let nfas: Option<Vec<Nfa>> =
                    beta.map(|bs| bs.iter().map(Nfa::from_regex).collect());
                for w1 in &words {
                    for w2 in &words {
                        let via_beta = nfas
                            .as_ref()
                            .map(|ms| ms[0].accepts(w1) && ms[1].accepts(w2))
                            .unwrap_or(false);
                        let via_oracle = cx
                            .is_match(&[w1.clone(), w2.clone()], &MatchConfig::pinned(psi.clone()))
                            .unwrap()
                            .is_some();
                        assert_eq!(
                            via_beta, via_oracle,
                            "ψ=({ix:?},{iy:?}) words=({w1:?},{w2:?})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn impossible_image_yields_none() {
        let mut a = Alphabet::from_chars("ab");
        let cx = setup(&["x{a+}bx"], &mut a);
        let x = cx.vars().var("x").unwrap();
        // x must produce from a+, so image "b" is impossible; the definition
        // is unavoidable → whole component ∅.
        let psi: VarMapping = [(x, a.parse_word("b").unwrap())].into_iter().collect();
        assert!(specialize(&cx, &psi).is_none());
        // ε is impossible too (a+ is not nullable).
        let psi2: VarMapping = [(x, vec![])].into_iter().collect();
        assert!(specialize(&cx, &psi2).is_none());
        // "aa" works.
        let psi3: VarMapping = [(x, a.parse_word("aa").unwrap())].into_iter().collect();
        let beta = specialize(&cx, &psi3).unwrap();
        assert!(Nfa::from_regex(&beta[0]).accepts(&a.parse_word("aabaa").unwrap()));
    }

    #[test]
    fn cut_retreats_to_alternation() {
        let mut a = Alphabet::from_chars("ab");
        // (x{a+} b) | b*: with ψ(x) = ε the left branch dies, b* survives.
        let cx = setup(&["(x{a+}b)|b*"], &mut a);
        let psi = VarMapping::new();
        let beta = specialize(&cx, &psi).unwrap();
        let m = Nfa::from_regex(&beta[0]);
        assert!(m.accepts(&a.parse_word("bb").unwrap()));
        assert!(!m.accepts(&a.parse_word("ab").unwrap()));
    }

    #[test]
    fn never_defined_variables_are_free() {
        // Reference-only variables (Lemma 12-style equality edges) accept
        // any image.
        let mut a = Alphabet::from_chars("ab");
        let (comps, mut vt) = parse_conjunctive(&["aa", "bb"], &mut a).unwrap();
        let z = vt.intern("z");
        let mut comps = comps;
        comps[0] = Xregex::VarRef(z);
        comps[1] = Xregex::VarRef(z);
        let cx = ConjunctiveXregex::new(comps, vt).unwrap();
        let psi: VarMapping = [(z, a.parse_word("ab").unwrap())].into_iter().collect();
        let beta = specialize(&cx, &psi).unwrap();
        for b in &beta {
            let m = Nfa::from_regex(b);
            assert!(m.accepts(&a.parse_word("ab").unwrap()));
            assert!(!m.accepts(&a.parse_word("a").unwrap()));
        }
    }

    #[test]
    fn forced_instantiation_prunes_branches() {
        let mut a = Alphabet::from_chars("abc");
        // (x{a}|b) x: with ψ(x) = a, the b-branch (which leaves x
        // uninstantiated, hence ε) must be pruned.
        let cx = setup(&["(x{a}|b)x"], &mut a);
        let x = cx.vars().var("x").unwrap();
        let psi: VarMapping = [(x, a.parse_word("a").unwrap())].into_iter().collect();
        let beta = specialize(&cx, &psi).unwrap();
        let m = Nfa::from_regex(&beta[0]);
        assert!(m.accepts(&a.parse_word("aa").unwrap()));
        assert!(!m.accepts(&a.parse_word("ba").unwrap()));
        assert!(!m.accepts(&a.parse_word("b").unwrap()));
        // With ψ(x) = ε both branches survive (x-def can produce… no: a ≠ ε,
        // so the x-branch is cut and only b remains).
        let psi2: VarMapping = [(x, vec![])].into_iter().collect();
        let beta2 = specialize(&cx, &psi2).unwrap();
        let m2 = Nfa::from_regex(&beta2[0]);
        assert!(m2.accepts(&a.parse_word("b").unwrap()));
        assert!(!m2.accepts(&a.parse_word("aa").unwrap()));
    }
}
