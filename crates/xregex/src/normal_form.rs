//! The normal-form construction of §5.1 (Theorem 4), in the paper's three
//! steps:
//!
//! 1. **Multiply out** alternations containing variables (Lemma 4) — each
//!    component becomes an alternation of *variable-simple* xregex. May blow
//!    up exponentially.
//! 2. **Relabel** so that every variable has at most one definition in the
//!    whole tuple (Lemma 5): definitions in different branches become fresh
//!    variables `x⁽ʲ⁾`, references become concatenations `x⁽¹⁾…x⁽ᵗ⁾`.
//!    Quadratic.
//! 3. **Flatten** non-basic definitions (Lemma 6): processed in ≺-topological
//!    order, each non-basic definition `z{γ₁…γ_p}` is replaced by a
//!    concatenation of fresh basic definitions `u₁{γ₁}…u_p{γ_p}` and every
//!    reference of `z` by `u₁…u_p`. Exponential in general (§5.3's chain
//!    family), quadratic when all variables are flat (Lemma 8).
//!
//! The result is in *normal form*: every component is an alternation of
//! simple xregex, evaluable by the Lemma 3 engine.

use crate::ast::{Var, VarTable, Xregex};
use crate::classify::{is_basic_body, is_vstar_free};
use crate::conjunctive::ConjunctiveXregex;

use std::fmt;

/// Why the construction is inapplicable.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum NormalFormError {
    /// Some component is not vstar-free (Step 1 is only language-preserving
    /// for vstar-free input — Lemma 4's proof needs the split alternation to
    /// not sit under a `+`).
    NotVstarFree,
}

impl fmt::Display for NormalFormError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "normal form requires a vstar-free conjunctive xregex")
    }
}

impl std::error::Error for NormalFormError {}

/// Size accounting for the pipeline — the measurable content of Theorem 4
/// (double-exponential worst case) and Lemma 8 (quadratic for flat input).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NormalFormStats {
    /// |ᾱ| of the input.
    pub input_size: usize,
    /// Total size after Step 1 (multiplying out alternations).
    pub after_step1: usize,
    /// Total size after Step 2 (unique definitions).
    pub after_step2: usize,
    /// |β̄| of the normal form.
    pub output_size: usize,
    /// Number of alternation branches per component after Step 1.
    pub branches: Vec<usize>,
    /// Fresh variables introduced by Steps 2 and 3.
    pub fresh_vars: usize,
}

// ---------------------------------------------------------------------
// Step 1 — Lemma 4
// ---------------------------------------------------------------------

/// Expands one vstar-free xregex into the branches of an equivalent
/// alternation of variable-simple xregex (`L_ref` is preserved branchwise:
/// the union of the branches' ref-languages equals `L_ref(r)`).
pub fn expand_variable_simple(r: &Xregex) -> Result<Vec<Xregex>, NormalFormError> {
    if !is_vstar_free(r) {
        return Err(NormalFormError::NotVstarFree);
    }
    Ok(expand(r))
}

fn expand(r: &Xregex) -> Vec<Xregex> {
    match r {
        Xregex::Empty => Vec::new(),
        Xregex::Epsilon | Xregex::Sym(_) | Xregex::Any | Xregex::VarRef(_) => vec![r.clone()],
        Xregex::VarDef(x, body) => expand(body)
            .into_iter()
            .map(|b| Xregex::VarDef(*x, Box::new(b)))
            .collect(),
        Xregex::Concat(ps) => {
            let mut acc: Vec<Xregex> = vec![Xregex::Epsilon];
            for p in ps {
                let choices = expand(p);
                let mut next = Vec::with_capacity(acc.len() * choices.len());
                for a in &acc {
                    for c in &choices {
                        next.push(Xregex::concat(vec![a.clone(), c.clone()]));
                    }
                }
                acc = next;
            }
            acc
        }
        Xregex::Alt(ps) => {
            // Variable-free branches may stay grouped (the paper only splits
            // alternations that contain definitions or references).
            let mut classical = Vec::new();
            let mut out = Vec::new();
            for p in ps {
                if p.is_classical() {
                    classical.push(p.clone());
                } else {
                    out.extend(expand(p));
                }
            }
            if !classical.is_empty() {
                out.insert(0, Xregex::alt(classical));
            }
            out
        }
        // vstar-free: repetition bodies are classical.
        Xregex::Plus(_) | Xregex::Star(_) => vec![r.clone()],
    }
}

// ---------------------------------------------------------------------
// Step 2 — Lemma 5
// ---------------------------------------------------------------------

/// Ensures every variable has at most one definition across the whole tuple
/// of branch lists. Definitions of `x` in branches `j₁ < … < j_t` of its
/// defining component become fresh variables; every reference of `x`
/// anywhere becomes the concatenation of references of the fresh variables.
fn relabel_unique_defs(comps: &mut [Vec<Xregex>], vars: &mut VarTable, fresh_count: &mut usize) {
    let all_vars: Vec<Var> = {
        let joint = Xregex::concat(comps.iter().flatten().cloned().collect());
        joint.defined_vars().into_iter().collect()
    };
    for x in all_vars {
        // Locate the branches containing a definition of x.
        let mut sites: Vec<(usize, usize)> = Vec::new();
        for (ci, branches) in comps.iter().enumerate() {
            for (bi, b) in branches.iter().enumerate() {
                if b.def_count(x) > 0 {
                    sites.push((ci, bi));
                }
            }
        }
        if sites.len() <= 1 {
            continue; // already unique
        }
        // Fresh variable per definition site.
        let base_name = vars.name(x).to_string();
        let fresh: Vec<Var> = (0..sites.len())
            .map(|j| {
                *fresh_count += 1;
                vars.fresh(&format!("{base_name}_{}", j + 1))
            })
            .collect();
        for (slot, &(ci, bi)) in sites.iter().enumerate() {
            comps[ci][bi] = rename_defs(&comps[ci][bi], x, fresh[slot]);
        }
        // Replace all references of x by x⁽¹⁾…x⁽ᵗ⁾.
        let replacement = Xregex::concat(fresh.iter().map(|&f| Xregex::VarRef(f)).collect());
        for branches in comps.iter_mut() {
            for b in branches.iter_mut() {
                *b = b.replace_refs(x, &replacement);
            }
        }
    }
}

/// Renames every definition of `x` (not its references) to `nx`.
fn rename_defs(r: &Xregex, x: Var, nx: Var) -> Xregex {
    match r {
        Xregex::VarDef(y, body) => {
            let nb = Box::new(rename_defs(body, x, nx));
            Xregex::VarDef(if *y == x { nx } else { *y }, nb)
        }
        Xregex::Concat(ps) => Xregex::Concat(ps.iter().map(|p| rename_defs(p, x, nx)).collect()),
        Xregex::Alt(ps) => Xregex::Alt(ps.iter().map(|p| rename_defs(p, x, nx)).collect()),
        Xregex::Plus(p) => Xregex::Plus(Box::new(rename_defs(p, x, nx))),
        Xregex::Star(p) => Xregex::Star(Box::new(rename_defs(p, x, nx))),
        other => other.clone(),
    }
}

// ---------------------------------------------------------------------
// Step 3 — Lemma 6
// ---------------------------------------------------------------------

/// Replaces a definition of `x` (unique by Step 2) by `replacement`.
fn replace_def(r: &Xregex, x: Var, replacement: &Xregex) -> Xregex {
    match r {
        Xregex::VarDef(y, _) if *y == x => replacement.clone(),
        Xregex::VarDef(y, body) => Xregex::VarDef(*y, Box::new(replace_def(body, x, replacement))),
        Xregex::Concat(ps) => {
            Xregex::Concat(ps.iter().map(|p| replace_def(p, x, replacement)).collect())
        }
        Xregex::Alt(ps) => Xregex::Alt(ps.iter().map(|p| replace_def(p, x, replacement)).collect()),
        Xregex::Plus(p) => Xregex::Plus(Box::new(replace_def(p, x, replacement))),
        Xregex::Star(p) => Xregex::Star(Box::new(replace_def(p, x, replacement))),
        other => other.clone(),
    }
}

/// The body factors of a variable-simple definition body: maximal classical
/// chunks, single references, and nested definitions, in order. Nested
/// concatenations (introduced by reference replacement) are flattened first.
fn body_factors(body: &Xregex) -> Vec<Xregex> {
    fn flatten(r: &Xregex, out: &mut Vec<Xregex>) {
        match r {
            Xregex::Concat(ps) => ps.iter().for_each(|p| flatten(p, out)),
            other => out.push(other.clone()),
        }
    }
    let mut items: Vec<Xregex> = Vec::new();
    flatten(body, &mut items);
    let mut factors: Vec<Xregex> = Vec::new();
    let mut classical_run: Vec<Xregex> = Vec::new();
    for item in items {
        if item.is_classical() {
            classical_run.push(item);
        } else {
            if !classical_run.is_empty() {
                factors.push(Xregex::concat(std::mem::take(&mut classical_run)));
            }
            factors.push(item);
        }
    }
    if !classical_run.is_empty() {
        factors.push(Xregex::concat(classical_run));
    }
    factors
}

/// The main modification step of Lemma 6, applied in ≺-topological order.
fn flatten_defs(comps: &mut [Vec<Xregex>], vars: &mut VarTable, fresh_count: &mut usize) {
    let joint = Xregex::concat(comps.iter().flatten().cloned().collect());
    let order =
        crate::validate::topological_vars(&joint).expect("validated conjunctive xregex is acyclic");
    for x in order {
        // Locate the (unique) current definition of x, if any.
        let mut body: Option<Xregex> = None;
        for branches in comps.iter() {
            for b in branches {
                find_def_body(b, x, &mut body);
            }
        }
        let Some(body) = body else { continue };
        if is_basic_body(&body) {
            continue;
        }
        // Build γ'₁…γ'_p and the reference replacement.
        let mut new_defs: Vec<Xregex> = Vec::new();
        let mut ref_vars: Vec<Var> = Vec::new();
        for factor in body_factors(&body) {
            match factor {
                Xregex::VarDef(y, b) => {
                    ref_vars.push(y);
                    new_defs.push(Xregex::VarDef(y, b));
                }
                other => {
                    *fresh_count += 1;
                    let u = vars.fresh("u");
                    ref_vars.push(u);
                    new_defs.push(Xregex::VarDef(u, Box::new(other)));
                }
            }
        }
        let def_replacement = Xregex::concat(new_defs);
        let ref_replacement = Xregex::concat(ref_vars.iter().map(|&v| Xregex::VarRef(v)).collect());
        for branches in comps.iter_mut() {
            for b in branches.iter_mut() {
                *b = replace_def(b, x, &def_replacement);
                *b = b.replace_refs(x, &ref_replacement);
            }
        }
    }
}

fn find_def_body(r: &Xregex, x: Var, out: &mut Option<Xregex>) {
    match r {
        Xregex::VarDef(y, body) => {
            if *y == x {
                *out = Some((**body).clone());
            }
            find_def_body(body, x, out);
        }
        Xregex::Concat(ps) | Xregex::Alt(ps) => {
            ps.iter().for_each(|p| find_def_body(p, x, out));
        }
        Xregex::Plus(p) | Xregex::Star(p) => find_def_body(p, x, out),
        _ => {}
    }
}

// ---------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------

/// Transforms a vstar-free conjunctive xregex into an equivalent one in
/// normal form (Theorem 4), returning size statistics for the blow-up
/// experiments (E6/E7).
pub fn normal_form(
    cx: &ConjunctiveXregex,
) -> Result<(ConjunctiveXregex, NormalFormStats), NormalFormError> {
    let input_size = cx.size();
    let mut vars = cx.vars().clone();
    let mut fresh_count = 0usize;

    // Step 1.
    let mut comps: Vec<Vec<Xregex>> = cx
        .components()
        .iter()
        .map(expand_variable_simple)
        .collect::<Result<_, _>>()?;
    let branches: Vec<usize> = comps.iter().map(Vec::len).collect();
    let size_of = |comps: &[Vec<Xregex>]| -> usize {
        comps
            .iter()
            .map(|bs| bs.iter().map(Xregex::size).sum::<usize>())
            .sum()
    };
    let after_step1 = size_of(&comps);

    // Step 2.
    relabel_unique_defs(&mut comps, &mut vars, &mut fresh_count);
    let after_step2 = size_of(&comps);

    // Step 3.
    flatten_defs(&mut comps, &mut vars, &mut fresh_count);
    let output_size = size_of(&comps);

    let components: Vec<Xregex> = comps
        .into_iter()
        .map(|bs| {
            if bs.is_empty() {
                Xregex::Empty
            } else {
                Xregex::alt(bs)
            }
        })
        .collect();
    let nf = ConjunctiveXregex::new(components, vars).expect("normal form preserves validity");
    Ok((
        nf,
        NormalFormStats {
            input_size,
            after_step1,
            after_step2,
            output_size,
            branches,
            fresh_vars: fresh_count,
        },
    ))
}

/// Lazily enumerates the *simple* conjunctive xregex obtained by fixing one
/// variable-simple branch per component (the derandomized nondeterministic
/// choices of Lemma 7) and flattening. The union of their conjunctive-match
/// sets equals `L(ᾱ)`.
pub fn simple_choices(cx: &ConjunctiveXregex) -> Result<SimpleChoiceIter, NormalFormError> {
    let expanded: Vec<Vec<Xregex>> = cx
        .components()
        .iter()
        .map(expand_variable_simple)
        .collect::<Result<_, _>>()?;
    Ok(SimpleChoiceIter {
        expanded,
        vars: cx.vars().clone(),
        idx: Some(Vec::new()),
    })
}

/// Iterator over branch combinations (see [`simple_choices`]).
pub struct SimpleChoiceIter {
    expanded: Vec<Vec<Xregex>>,
    vars: VarTable,
    /// Current combination (odometer); `None` when exhausted.
    idx: Option<Vec<usize>>,
}

impl SimpleChoiceIter {
    /// Total number of combinations.
    pub fn combination_count(&self) -> usize {
        self.expanded.iter().map(Vec::len).product()
    }
}

impl Iterator for SimpleChoiceIter {
    type Item = ConjunctiveXregex;

    fn next(&mut self) -> Option<Self::Item> {
        let idx = self.idx.as_mut()?;
        if idx.is_empty() {
            if self.expanded.iter().any(|b| b.is_empty()) {
                self.idx = None;
                return None;
            }
            *idx = vec![0; self.expanded.len()];
        }
        let choice: Vec<Xregex> = self
            .expanded
            .iter()
            .zip(idx.iter())
            .map(|(bs, &i)| bs[i].clone())
            .collect();
        // Advance the odometer.
        let mut carry = true;
        for (i, bs) in self.expanded.iter().enumerate().rev() {
            if !carry {
                break;
            }
            let cur = &mut self.idx.as_mut().unwrap()[i];
            *cur += 1;
            if *cur < bs.len() {
                carry = false;
            } else {
                *cur = 0;
            }
        }
        if carry {
            self.idx = None;
        }
        // Per-choice, each variable already has ≤ 1 definition (variable-
        // simple branches instantiate every definition they contain), so
        // Step 2 is the identity; flatten directly.
        let mut comps: Vec<Vec<Xregex>> = choice.into_iter().map(|c| vec![c]).collect();
        let mut vars = self.vars.clone();
        let mut fresh = 0usize;
        flatten_defs(&mut comps, &mut vars, &mut fresh);
        let components: Vec<Xregex> = comps.into_iter().map(|mut bs| bs.pop().unwrap()).collect();
        Some(
            ConjunctiveXregex::new(components, vars)
                .expect("choice of a valid conjunctive xregex stays valid"),
        )
    }
}

// ---------------------------------------------------------------------
// Blow-up families (§5.3) — exported for the benchmarks
// ---------------------------------------------------------------------

/// The §5.3 chain family
/// `x₁{a}x₂{x₁x₁}x₃{x₂x₂}…x_n{x_{n-1}x_{n-1}}`,
/// on which Step 3 blows up exponentially.
pub fn chain_family(n: usize, a: cxrpq_graph::Symbol) -> (Xregex, VarTable) {
    assert!(n >= 1);
    let mut vars = VarTable::new();
    let xs: Vec<Var> = (1..=n).map(|i| vars.intern(&format!("x{i}"))).collect();
    let mut parts = vec![Xregex::def(xs[0], Xregex::Sym(a))];
    for i in 1..n {
        parts.push(Xregex::def(
            xs[i],
            Xregex::Concat(vec![Xregex::VarRef(xs[i - 1]), Xregex::VarRef(xs[i - 1])]),
        ));
    }
    (Xregex::concat(parts), vars)
}

/// A flat family of comparable size: `x₁{a a} x₂{x₁} … x_n{x_{n-1}} x_n`,
/// every definition basic, on which the construction stays quadratic
/// (Lemma 8).
pub fn flat_family(n: usize, a: cxrpq_graph::Symbol) -> (Xregex, VarTable) {
    assert!(n >= 1);
    let mut vars = VarTable::new();
    let xs: Vec<Var> = (1..=n).map(|i| vars.intern(&format!("x{i}"))).collect();
    let mut parts = vec![Xregex::def(
        xs[0],
        Xregex::Concat(vec![Xregex::Sym(a), Xregex::Sym(a)]),
    )];
    for i in 1..n {
        parts.push(Xregex::def(xs[i], Xregex::VarRef(xs[i - 1])));
    }
    parts.push(Xregex::VarRef(xs[n - 1]));
    (Xregex::concat(parts), vars)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{is_normal_form, is_simple, is_variable_simple};
    use crate::matcher::MatchConfig;
    use crate::parser::parse_conjunctive;
    use cxrpq_graph::{Alphabet, Symbol};

    fn conj(inputs: &[&str], alpha: &mut Alphabet) -> ConjunctiveXregex {
        let (comps, vt) = parse_conjunctive(inputs, alpha).unwrap();
        ConjunctiveXregex::new(comps, vt).unwrap()
    }

    #[test]
    fn step1_produces_variable_simple_branches() {
        let mut a = Alphabet::from_chars("abc");
        let cx = conj(
            &["x{a*y{b*}az}|(x{b*}(z|y{c*}))", "(a*|x)z{y(a|b)}"],
            &mut a,
        );
        for comp in cx.components() {
            for b in expand_variable_simple(comp).unwrap() {
                assert!(is_variable_simple(&b), "branch not variable-simple");
            }
        }
    }

    #[test]
    fn step1_example_from_section_5_1() {
        // γ1 = x{a*y{b*}az} ∨ (x{b*}·(z ∨ y{c*})) expands to 3 branches.
        let mut a = Alphabet::from_chars("abc");
        let cx = conj(
            &["x{a*y{b*}az}|(x{b*}(z|y{c*}))", "(a*|x)z{y(a|b)}"],
            &mut a,
        );
        let b0 = expand_variable_simple(cx.component(0)).unwrap();
        assert_eq!(b0.len(), 3);
        let b1 = expand_variable_simple(cx.component(1)).unwrap();
        assert_eq!(b1.len(), 2);
    }

    #[test]
    fn normal_form_is_normal_form() {
        let mut a = Alphabet::from_chars("abc");
        let cx = conj(
            &["x{a*y{b*}az}|(x{b*}(z|y{c*}))", "(a*|x)z{y(a|b)}"],
            &mut a,
        );
        let (nf, stats) = normal_form(&cx).unwrap();
        for comp in nf.components() {
            assert!(is_normal_form(comp), "component not in normal form");
        }
        assert!(stats.output_size >= stats.input_size);
        assert_eq!(stats.branches, vec![3, 2]);
    }

    #[test]
    fn normal_form_preserves_sampled_matches() {
        // Language preservation, membership-tested in both directions on the
        // §5.1 example (small words enumerated via the oracle).
        let mut a = Alphabet::from_chars("ab");
        let cx = conj(&["x{a|bb}(a|x)", "b*x"], &mut a);
        let (nf, _) = normal_form(&cx).unwrap();
        let cfg = MatchConfig::default();
        // Enumerate all word pairs up to length 4/4 and compare membership.
        let words: Vec<Vec<Symbol>> = (0..=4usize)
            .flat_map(|n| {
                (0..(1u32 << n))
                    .map(move |mask| (0..n).map(|i| Symbol((mask >> i) & 1)).collect::<Vec<_>>())
            })
            .collect();
        let mut checked = 0;
        for w1 in &words {
            for w2 in &words {
                let lhs = cx
                    .is_match(&[w1.clone(), w2.clone()], &cfg)
                    .unwrap()
                    .is_some();
                let rhs = nf
                    .is_match(&[w1.clone(), w2.clone()], &cfg)
                    .unwrap()
                    .is_some();
                assert_eq!(lhs, rhs, "mismatch on ({w1:?}, {w2:?})");
                if lhs {
                    checked += 1;
                }
            }
        }
        assert!(checked > 0, "vacuous test");
    }

    #[test]
    fn chain_family_blows_up_exponentially() {
        let a = Symbol(0);
        let mut prev = 0usize;
        let mut sizes = Vec::new();
        for n in 2..=7 {
            let (chain, vars) = chain_family(n, a);
            let cx = ConjunctiveXregex::new(vec![chain], vars).unwrap();
            let (nf, stats) = normal_form(&cx).unwrap();
            assert!(is_normal_form(nf.component(0)));
            sizes.push(stats.output_size);
            prev = stats.output_size.max(prev);
        }
        // Strictly growing and at least doubling towards the end.
        assert!(sizes.windows(2).all(|w| w[1] > w[0]));
        let ratio = sizes[sizes.len() - 1] as f64 / sizes[sizes.len() - 2] as f64;
        assert!(ratio > 1.7, "expected ~2x growth per step, got {ratio}");
    }

    #[test]
    fn flat_family_stays_small() {
        let a = Symbol(0);
        for n in 2..=10 {
            let (flat, vars) = flat_family(n, a);
            let cx = ConjunctiveXregex::new(vec![flat], vars).unwrap();
            let (nf, stats) = normal_form(&cx).unwrap();
            assert!(is_normal_form(nf.component(0)));
            // Lemma 8: O(|ᾱ|²).
            assert!(
                stats.output_size <= stats.input_size * stats.input_size,
                "flat normal form exceeded quadratic bound: {} vs {}",
                stats.output_size,
                stats.input_size
            );
        }
    }

    #[test]
    fn simple_choices_cover_language() {
        let mut a = Alphabet::from_chars("ab");
        let cx = conj(&["x{a|bb}(a|x)", "b*x"], &mut a);
        let choices: Vec<_> = simple_choices(&cx).unwrap().collect();
        assert!(!choices.is_empty());
        for ch in &choices {
            for comp in ch.components() {
                assert!(is_simple(comp), "choice component not simple");
            }
        }
        // Union of choice languages equals L(cx) on small words.
        let cfg = MatchConfig::default();
        let words: Vec<Vec<Symbol>> = (0..=3usize)
            .flat_map(|n| {
                (0..(1u32 << n))
                    .map(move |mask| (0..n).map(|i| Symbol((mask >> i) & 1)).collect::<Vec<_>>())
            })
            .collect();
        for w1 in &words {
            for w2 in &words {
                let direct = cx
                    .is_match(&[w1.clone(), w2.clone()], &cfg)
                    .unwrap()
                    .is_some();
                let via_choices = choices.iter().any(|ch| {
                    ch.is_match(&[w1.clone(), w2.clone()], &cfg)
                        .unwrap()
                        .is_some()
                });
                assert_eq!(direct, via_choices, "mismatch on ({w1:?}, {w2:?})");
            }
        }
    }

    #[test]
    fn rejects_non_vstar_free() {
        let mut a = Alphabet::from_chars("ab#");
        let cx = conj(&["#z{(a|b)*}(##z)*###"], &mut a);
        assert_eq!(normal_form(&cx).unwrap_err(), NormalFormError::NotVstarFree);
    }

    #[test]
    fn worked_example_section_5_1_shapes() {
        // The paper's γ̄: γ1 = x{a*y{b*}az} ∨ (x{b*}·(z ∨ y{c*})),
        //                γ2 = (a* ∨ x)·z{y·(a|b)}.
        let mut a = Alphabet::from_chars("abc");
        let cx = conj(
            &["x{a*y{b*}az}|(x{b*}(z|y{c*}))", "(a*|x)z{y(a|b)}"],
            &mut a,
        );
        let (nf, stats) = normal_form(&cx).unwrap();
        // Step 2 must split x (defs in 3 branches of component 0) and z
        // (defs in 2 branches of component 1)… z has one def per branch of
        // component 1 → 2 sites; y has defs in branches 1 and 3 → 2 sites.
        assert!(stats.fresh_vars > 0);
        // All components in normal form, none empty.
        for c in nf.components() {
            assert!(is_normal_form(c));
            assert_ne!(c, &Xregex::Empty);
        }
    }
}
