//! Random sampling of ref-words and conjunctive matches.
//!
//! Sampling a conjunctive match follows the `⟨·⟩int` semantics literally:
//! we sample one ref-word for `O_ᾱ α₁ # α₂ # … # α_m` — where `O_ᾱ` holds
//! `x{Σ*}` dummy definitions for the variables without a definition anywhere
//! — and split the single `deref` result at the separators. Because all
//! components live in *one* ref-word, they share one variable mapping by
//! construction, which is exactly the conjunctive-match condition of §3.1.

use crate::ast::{Var, Xregex};
use crate::conjunctive::ConjunctiveXregex;
use crate::refword::{RefTok, RefWord};
use cxrpq_automata::Regex;
use cxrpq_graph::Symbol;
use rand::Rng;
use std::collections::BTreeMap;

/// Knobs for the samplers.
#[derive(Clone, Copy, Debug)]
pub struct SampleConfig {
    /// Probability of continuing a `+`/`*` repetition after each iteration.
    pub rep_continue: f64,
    /// Hard cap on repetition counts.
    pub max_reps: usize,
    /// Maximum length of the random image of a never-defined variable.
    pub free_image_max: usize,
}

impl Default for SampleConfig {
    fn default() -> Self {
        Self {
            rep_continue: 0.5,
            max_reps: 4,
            free_image_max: 3,
        }
    }
}

/// Whether the term can derive at least one ref-word (i.e. `L_ref ≠ ∅`).
fn derivable(r: &Xregex) -> bool {
    match r {
        Xregex::Empty => false,
        Xregex::Concat(ps) => ps.iter().all(derivable),
        Xregex::Alt(ps) => ps.iter().any(derivable),
        Xregex::Plus(p) => derivable(p),
        Xregex::Star(_) => true,
        Xregex::VarDef(_, p) => derivable(p),
        _ => true,
    }
}

fn sample_tokens<R: Rng + ?Sized>(
    r: &Xregex,
    sigma: usize,
    cfg: &SampleConfig,
    rng: &mut R,
    out: &mut Vec<RefTok>,
) {
    debug_assert!(derivable(r));
    match r {
        Xregex::Empty => unreachable!("caller checks derivability"),
        Xregex::Epsilon => {}
        Xregex::Sym(a) => out.push(RefTok::Sym(*a)),
        Xregex::Any => {
            assert!(sigma > 0, "cannot sample Σ over an empty alphabet");
            out.push(RefTok::Sym(Symbol(rng.random_range(0..sigma as u32))));
        }
        Xregex::Concat(ps) => {
            for p in ps {
                sample_tokens(p, sigma, cfg, rng, out);
            }
        }
        Xregex::Alt(ps) => {
            let viable: Vec<&Xregex> = ps.iter().filter(|p| derivable(p)).collect();
            let pick = viable[rng.random_range(0..viable.len())];
            sample_tokens(pick, sigma, cfg, rng, out);
        }
        Xregex::Plus(p) => {
            sample_tokens(p, sigma, cfg, rng, out);
            let mut reps = 1;
            while reps < cfg.max_reps && rng.random_bool(cfg.rep_continue) {
                sample_tokens(p, sigma, cfg, rng, out);
                reps += 1;
            }
        }
        Xregex::Star(p) => {
            if derivable(p) {
                let mut reps = 0;
                while reps < cfg.max_reps && rng.random_bool(cfg.rep_continue) {
                    sample_tokens(p, sigma, cfg, rng, out);
                    reps += 1;
                }
            }
        }
        Xregex::VarRef(x) => out.push(RefTok::Ref(*x)),
        Xregex::VarDef(x, body) => {
            out.push(RefTok::Open(*x));
            sample_tokens(body, sigma, cfg, rng, out);
            out.push(RefTok::Close(*x));
        }
    }
}

/// Samples a ref-word from `L_ref(α)` (`None` when the ref-language is
/// empty). `sigma` is |Σ|, needed to concretize `Any`.
pub fn sample_ref_word<R: Rng + ?Sized>(
    r: &Xregex,
    sigma: usize,
    cfg: &SampleConfig,
    rng: &mut R,
) -> Option<RefWord> {
    if !derivable(r) {
        return None;
    }
    let mut toks = Vec::new();
    sample_tokens(r, sigma, cfg, rng, &mut toks);
    Some(RefWord::new(toks).expect("derivations of valid xregex are ref-words"))
}

/// Samples a word from `L(α)` for a *single* xregex (§3 semantics).
pub fn sample_word<R: Rng + ?Sized>(
    r: &Xregex,
    sigma: usize,
    cfg: &SampleConfig,
    rng: &mut R,
) -> Option<Vec<Symbol>> {
    sample_ref_word(r, sigma, cfg, rng).map(|w| w.deref().0)
}

/// Samples a word from a classical regular expression.
pub fn sample_regex_word<R: Rng + ?Sized>(
    r: &Regex,
    sigma: usize,
    cfg: &SampleConfig,
    rng: &mut R,
) -> Option<Vec<Symbol>> {
    sample_word(&Xregex::from_regex(r), sigma, cfg, rng)
}

/// A sampled variable mapping ψ (variable → image).
pub type SampledMapping = BTreeMap<Var, Vec<Symbol>>;

/// Samples a conjunctive match `w̄ ∈ L(ᾱ)` with its variable mapping ψ.
///
/// Returns `None` when some component has an empty ref-language (so no
/// conjunctive match exists via this derivation; note ∅-components make the
/// whole language empty).
pub fn sample_conjunctive_match<R: Rng + ?Sized>(
    cx: &ConjunctiveXregex,
    sigma: usize,
    cfg: &SampleConfig,
    rng: &mut R,
) -> Option<(Vec<Vec<Symbol>>, SampledMapping)> {
    // Separator symbol outside Σ (images never contain it because the
    // separator occurs only between components, never inside a definition).
    let sep = Symbol(u32::MAX);
    let mut toks: Vec<RefTok> = Vec::new();
    // O_ᾱ: dummy definitions with random images for never-defined variables.
    for x in cx.undefined_vars() {
        toks.push(RefTok::Open(x));
        let len = rng.random_range(0..=cfg.free_image_max);
        for _ in 0..len {
            assert!(sigma > 0, "free variables need a non-empty alphabet");
            toks.push(RefTok::Sym(Symbol(rng.random_range(0..sigma as u32))));
        }
        toks.push(RefTok::Close(x));
    }
    toks.push(RefTok::Sym(sep));
    for (i, comp) in cx.components().iter().enumerate() {
        if !derivable(comp) {
            return None;
        }
        sample_tokens(comp, sigma, cfg, rng, &mut toks);
        if i + 1 < cx.dim() {
            toks.push(RefTok::Sym(sep));
        }
    }
    let rw = RefWord::new(toks).expect("joint derivation is a ref-word");
    let (full, vmap) = rw.deref();
    // Split at separators; drop the O_ᾱ prefix.
    let mut parts: Vec<Vec<Symbol>> = Vec::with_capacity(cx.dim() + 1);
    let mut cur = Vec::new();
    for s in full {
        if s == sep {
            parts.push(std::mem::take(&mut cur));
        } else {
            cur.push(s);
        }
    }
    parts.push(cur);
    debug_assert_eq!(parts.len(), cx.dim() + 1);
    parts.remove(0);
    // Total ψ: every variable of the tuple, ε-defaulted.
    let joint_vars = cx.joint().vars();
    let psi: BTreeMap<Var, Vec<Symbol>> = joint_vars
        .into_iter()
        .map(|v| (v, vmap.get(&v).cloned().unwrap_or_default()))
        .collect();
    Some((parts, psi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::matcher::{match_single, MatchConfig};
    use crate::parser::{parse_conjunctive, parse_xregex};
    use cxrpq_graph::Alphabet;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn sampled_words_match_their_xregex() {
        let mut a = Alphabet::from_chars("ab#");
        let inputs = [
            "x{(a|b)+}#x",
            "(x{a}|b)x",
            "#z{(a|b)*}(##z)*###",
            "y{x{ab}x*}y",
        ];
        let mut rng = StdRng::seed_from_u64(7);
        for s in inputs {
            let (r, vt) = parse_xregex(s, &mut a).unwrap();
            for _ in 0..50 {
                let w = sample_word(&r, a.len(), &SampleConfig::default(), &mut rng)
                    .expect("derivable");
                assert!(
                    match_single(&r, &w, vt.len(), &MatchConfig::default())
                        .unwrap()
                        .is_some(),
                    "sampled word {:?} does not match {s}",
                    a.render_word(&w)
                );
            }
        }
    }

    #[test]
    fn sampled_conjunctive_matches_pass_oracle() {
        let mut a = Alphabet::from_chars("abc");
        let (comps, vt) = parse_conjunctive(&["x{a|bb}(a|x)y", "y{b*}x", "c*xc*"], &mut a).unwrap();
        let cx = ConjunctiveXregex::new(comps, vt).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..60 {
            let (words, psi) =
                sample_conjunctive_match(&cx, a.len(), &SampleConfig::default(), &mut rng).unwrap();
            // The sampled mapping must be accepted by the pinned oracle.
            let got = cx
                .is_match(&words, &MatchConfig::pinned(psi.clone()))
                .unwrap();
            assert!(
                got.is_some(),
                "sampled match rejected: words={words:?} psi={psi:?}"
            );
        }
    }

    #[test]
    fn sampling_with_free_variables() {
        // Never-defined variable z as an equality constraint: both sampled
        // components must agree on z's image.
        let mut a = Alphabet::from_chars("ab");
        let (comps, mut vt) = parse_conjunctive(&["aa", "bb"], &mut a).unwrap();
        let z = vt.intern("z");
        let mut comps = comps;
        comps[0] = Xregex::concat(vec![comps[0].clone(), Xregex::VarRef(z)]);
        comps[1] = Xregex::concat(vec![Xregex::VarRef(z), comps[1].clone()]);
        let cx = ConjunctiveXregex::new(comps, vt).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..30 {
            let (words, psi) =
                sample_conjunctive_match(&cx, a.len(), &SampleConfig::default(), &mut rng).unwrap();
            let zv = &psi[&z];
            assert!(words[0].ends_with(zv));
            assert!(words[1].starts_with(zv));
        }
    }

    #[test]
    fn empty_language_yields_none() {
        let mut a = Alphabet::from_chars("ab");
        let (r, _) = parse_xregex("a!", &mut a).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        assert!(sample_word(&r, a.len(), &SampleConfig::default(), &mut rng).is_none());
    }

    #[test]
    fn star_can_sample_epsilon_and_repetitions() {
        let mut a = Alphabet::from_chars("a");
        let (r, _) = parse_xregex("a*", &mut a).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut lens = std::collections::BTreeSet::new();
        for _ in 0..200 {
            let w = sample_word(&r, 1, &SampleConfig::default(), &mut rng).unwrap();
            lens.insert(w.len());
        }
        assert!(lens.contains(&0));
        assert!(lens.iter().any(|&l| l >= 2));
    }
}
