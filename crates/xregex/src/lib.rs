//! Xregex — regular expressions with string variables (backreferences) — and
//! conjunctive xregex, the edge-label formalism of CXRPQ queries.
//!
//! Implements §2.1 and §3 of Schmid (PODS 2020):
//!
//! - [`Xregex`]: the AST of `XRE_{Σ,Xs}` (Definition 3), with validation of
//!   *sequentiality* and *acyclicity*;
//! - [`RefWord`] and [`RefWord::deref`]: subword-marked words, the `deref`
//!   function (Definition 2) and variable mappings;
//! - [`ConjunctiveXregex`]: m-tuples of xregex with the shared-variable
//!   semantics of §3.1 (including the `⟨γ⟩int` dummy-definition treatment of
//!   undefined variables);
//! - [`matcher`]: a backtracking membership oracle for `L(α)`, `L^{≤k}(α)`,
//!   `L^{v̄}(ᾱ)` and conjunctive matches — the executable form of the paper's
//!   semantics, used to validate every transformation in this workspace;
//! - [`classify`]: the fragment hierarchy of §5 (vstar-free, valt-free,
//!   variable-simple, simple, normal form, flat variables);
//! - [`mod@normal_form`]: the three-step normal-form construction of §5.1
//!   (Lemmas 4, 5, 6) with the flat-variable fast path of Lemma 8;
//! - [`mod@specialize`]: the `L^{v̄}(ᾱ)` → classical-regex-tuple construction of
//!   Lemma 10, the engine behind `CXRPQ^{≤k}` evaluation;
//! - [`sample`]: random ref-word / conjunctive-match generation (the
//!   completeness half of the property-test oracles).

pub mod ast;
pub mod classify;
pub mod conjunctive;
pub mod matcher;
pub mod normal_form;
pub mod parser;
pub mod refword;
pub mod sample;
pub mod specialize;
pub mod validate;

pub use ast::{Var, VarTable, Xregex};
pub use classify::{classification, Fragment};
pub use conjunctive::ConjunctiveXregex;
pub use matcher::{conjunctive_match, match_single, FuelExhausted, MatchConfig};
pub use normal_form::{normal_form, simple_choices, NormalFormStats};
pub use parser::{parse_conjunctive, parse_xregex, XregexParseError};
pub use refword::{RefTok, RefWord};
pub use specialize::specialize;
pub use validate::{is_acyclic, is_sequential, topological_vars};
