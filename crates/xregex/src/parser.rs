//! Concrete syntax for xregex.
//!
//! Extends the classical regex syntax of `cxrpq-automata` with variable
//! definitions `x{…}` and variable references (bare occurrences of a variable
//! name):
//!
//! ```text
//! x{(a|b)*} c x            — G1-style: bind x, then reference it
//! y{x{a+b}x*}cy            — nested definitions (Figure 7, q₂)
//! ```
//!
//! **Variable discovery.** Variable names are the identifiers that occur
//! immediately before a `{` anywhere in the input (for conjunctive xregex:
//! anywhere in *any* component — a reference may live in a different
//! component than its definition). Identifiers are `letter (letter|digit)*`
//! with maximal munch; remaining identifier characters decompose greedily
//! into known variable references and single-character symbols, so `xa`
//! parses as `x · a` when `x` is a variable. Use whitespace or parentheses to
//! break the munch (`a x{b}` vs `ax{b}`, the latter defining variable `ax`).
//!
//! Everything else matches the classical syntax: `|`/`∨` alternation,
//! juxtaposition, `*`, `+`, `.` = Σ, `_`/`ε`, `!`/`∅`, `<name>` symbols.

use crate::ast::{VarTable, Xregex};
use cxrpq_graph::Alphabet;
use std::collections::BTreeSet;
use std::fmt;

/// Parse error with byte position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XregexParseError {
    /// Byte offset of the failure in the offending component.
    pub pos: usize,
    /// Component index (0 for single xregex parsing).
    pub component: usize,
    /// Human-readable message.
    pub msg: String,
}

impl fmt::Display for XregexParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "xregex parse error in component {} at byte {}: {}",
            self.component, self.pos, self.msg
        )
    }
}

impl std::error::Error for XregexParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    LParen,
    RParen,
    RBrace,
    Bar,
    Star,
    Plus,
    Dot,
    Eps,
    Empty,
    Sym(String),
    VarRef(String),
    /// `name{` — opens a variable definition.
    DefOpen(String),
}

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic()
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric()
}

/// First pass: collect the names defined with `name{` anywhere in `inputs`.
fn scan_var_names(inputs: &[&str]) -> BTreeSet<String> {
    let mut vars = BTreeSet::new();
    for input in inputs {
        let chars: Vec<char> = input.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if is_ident_start(chars[i]) && (i == 0 || !is_ident_char(chars[i - 1])) {
                let mut j = i;
                while j < chars.len() && is_ident_char(chars[j]) {
                    j += 1;
                }
                if j < chars.len() && chars[j] == '{' {
                    vars.insert(chars[i..j].iter().collect());
                }
                i = j;
            } else {
                i += 1;
            }
        }
    }
    vars
}

fn tokenize(
    input: &str,
    component: usize,
    vars: &BTreeSet<String>,
) -> Result<Vec<Tok>, XregexParseError> {
    let chars: Vec<(usize, char)> = input.char_indices().collect();
    let mut toks = Vec::new();
    let mut i = 0;
    let err = |pos: usize, msg: &str| XregexParseError {
        pos,
        component,
        msg: msg.to_string(),
    };
    while i < chars.len() {
        let (pos, c) = chars[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' => {
                toks.push(Tok::LParen);
                i += 1;
            }
            ')' => {
                toks.push(Tok::RParen);
                i += 1;
            }
            '}' => {
                toks.push(Tok::RBrace);
                i += 1;
            }
            '{' => return Err(err(pos, "'{' must follow a variable name")),
            '|' | '∨' => {
                toks.push(Tok::Bar);
                i += 1;
            }
            '*' => {
                toks.push(Tok::Star);
                i += 1;
            }
            '+' => {
                toks.push(Tok::Plus);
                i += 1;
            }
            '.' => {
                toks.push(Tok::Dot);
                i += 1;
            }
            '_' | 'ε' => {
                toks.push(Tok::Eps);
                i += 1;
            }
            '!' | '∅' => {
                toks.push(Tok::Empty);
                i += 1;
            }
            '<' => {
                let mut j = i + 1;
                let mut name = String::new();
                loop {
                    match chars.get(j) {
                        Some(&(_, '>')) => break,
                        Some(&(_, ch)) => {
                            name.push(ch);
                            j += 1;
                        }
                        None => return Err(err(pos, "unterminated <symbol>")),
                    }
                }
                if name.is_empty() {
                    return Err(err(pos, "empty <> symbol name"));
                }
                toks.push(Tok::Sym(name));
                i = j + 1;
            }
            '>' => return Err(err(pos, "stray '>'")),
            c if is_ident_start(c) => {
                // Maximal identifier run.
                let mut j = i;
                while j < chars.len() && is_ident_char(chars[j].1) {
                    j += 1;
                }
                let run: String = chars[i..j].iter().map(|&(_, ch)| ch).collect();
                if j < chars.len() && chars[j].1 == '{' {
                    toks.push(Tok::DefOpen(run));
                    i = j + 1;
                } else {
                    // Greedy decomposition into var refs and 1-char symbols.
                    let run_chars: Vec<char> = run.chars().collect();
                    let mut k = 0;
                    while k < run_chars.len() {
                        let mut matched = None;
                        // Longest variable name that is a prefix of run[k..].
                        for len in (1..=run_chars.len() - k).rev() {
                            let cand: String = run_chars[k..k + len].iter().collect();
                            if vars.contains(&cand) {
                                matched = Some((cand, len));
                                break;
                            }
                        }
                        if let Some((name, len)) = matched {
                            toks.push(Tok::VarRef(name));
                            k += len;
                        } else {
                            toks.push(Tok::Sym(run_chars[k].to_string()));
                            k += 1;
                        }
                    }
                    i = j;
                }
            }
            c if c.is_numeric() || !c.is_alphanumeric() => {
                // A single non-identifier character symbol (e.g. '#', '0').
                toks.push(Tok::Sym(c.to_string()));
                i += 1;
            }
            _ => return Err(err(pos, "unexpected character")),
        }
    }
    Ok(toks)
}

struct P<'a> {
    toks: &'a [Tok],
    i: usize,
    component: usize,
    alphabet: &'a mut Alphabet,
    vars: &'a mut VarTable,
}

impl<'a> P<'a> {
    fn err(&self, msg: impl Into<String>) -> XregexParseError {
        XregexParseError {
            pos: self.i,
            component: self.component,
            msg: msg.into(),
        }
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i)
    }

    fn alt(&mut self) -> Result<Xregex, XregexParseError> {
        let mut parts = vec![self.concat()?];
        while matches!(self.peek(), Some(Tok::Bar)) {
            self.i += 1;
            parts.push(self.concat()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().unwrap()
        } else {
            Xregex::alt(parts)
        })
    }

    fn concat(&mut self) -> Result<Xregex, XregexParseError> {
        let mut parts = Vec::new();
        loop {
            match self.peek() {
                None | Some(Tok::Bar) | Some(Tok::RParen) | Some(Tok::RBrace) => break,
                _ => parts.push(self.repeat()?),
            }
        }
        if parts.is_empty() {
            return Err(self.err("expected expression"));
        }
        Ok(Xregex::concat(parts))
    }

    fn repeat(&mut self) -> Result<Xregex, XregexParseError> {
        let mut r = self.atom()?;
        loop {
            match self.peek() {
                Some(Tok::Star) => {
                    self.i += 1;
                    r = Xregex::star(r);
                }
                Some(Tok::Plus) => {
                    self.i += 1;
                    r = Xregex::plus(r);
                }
                _ => break,
            }
        }
        Ok(r)
    }

    fn atom(&mut self) -> Result<Xregex, XregexParseError> {
        let tok = self
            .peek()
            .cloned()
            .ok_or_else(|| self.err("unexpected end"))?;
        self.i += 1;
        match tok {
            Tok::LParen => {
                let r = self.alt()?;
                match self.peek() {
                    Some(Tok::RParen) => {
                        self.i += 1;
                        Ok(r)
                    }
                    _ => Err(self.err("expected ')'")),
                }
            }
            Tok::Dot => Ok(Xregex::Any),
            Tok::Eps => Ok(Xregex::Epsilon),
            Tok::Empty => Ok(Xregex::Empty),
            Tok::Sym(name) => Ok(Xregex::Sym(self.alphabet.intern(&name))),
            Tok::VarRef(name) => Ok(Xregex::VarRef(self.vars.intern(&name))),
            Tok::DefOpen(name) => {
                let v = self.vars.intern(&name);
                let body = self.alt()?;
                match self.peek() {
                    Some(Tok::RBrace) => {
                        self.i += 1;
                        if body.vars().contains(&v) {
                            return Err(self.err(format!(
                                "variable {name} occurs in its own definition body"
                            )));
                        }
                        Ok(Xregex::VarDef(v, Box::new(body)))
                    }
                    _ => Err(self.err("expected '}'")),
                }
            }
            other => Err(self.err(format!("unexpected token {other:?}"))),
        }
    }
}

fn parse_component(
    input: &str,
    component: usize,
    var_names: &BTreeSet<String>,
    alphabet: &mut Alphabet,
    vars: &mut VarTable,
) -> Result<Xregex, XregexParseError> {
    let toks = tokenize(input, component, var_names)?;
    let mut p = P {
        toks: &toks,
        i: 0,
        component,
        alphabet,
        vars,
    };
    let r = p.alt()?;
    if p.i != toks.len() {
        return Err(p.err("trailing input"));
    }
    Ok(r)
}

/// Parses a single xregex, interning symbols into `alphabet`.
///
/// Returns the term together with its variable table. Variable names are
/// discovered from `name{` occurrences in the input; to reference a variable
/// defined in *another* component use [`parse_conjunctive`] or
/// [`parse_xregex_with_vars`].
pub fn parse_xregex(
    input: &str,
    alphabet: &mut Alphabet,
) -> Result<(Xregex, VarTable), XregexParseError> {
    let names = scan_var_names(&[input]);
    let mut vars = VarTable::new();
    let r = parse_component(input, 0, &names, alphabet, &mut vars)?;
    Ok((r, vars))
}

/// Parses a single xregex with additional pre-declared variable names (so
/// that bare references to externally-defined variables are recognized).
pub fn parse_xregex_with_vars(
    input: &str,
    extra_vars: &[&str],
    alphabet: &mut Alphabet,
) -> Result<(Xregex, VarTable), XregexParseError> {
    let mut names = scan_var_names(&[input]);
    for v in extra_vars {
        names.insert((*v).to_string());
    }
    let mut vars = VarTable::new();
    // Intern declared vars first so indices are stable for callers.
    for v in extra_vars {
        vars.intern(v);
    }
    let r = parse_component(input, 0, &names, alphabet, &mut vars)?;
    Ok((r, vars))
}

/// Parses the components of a conjunctive xregex.
///
/// Variable names are discovered across *all* components first (a reference
/// in component i may point at a definition in component j ≠ i, per §3.1).
/// Returns the raw component list plus the shared variable table; wrap the
/// result in [`crate::ConjunctiveXregex::new`] to validate sequentiality and
/// acyclicity.
pub fn parse_conjunctive(
    inputs: &[&str],
    alphabet: &mut Alphabet,
) -> Result<(Vec<Xregex>, VarTable), XregexParseError> {
    parse_conjunctive_with_vars(inputs, &[], alphabet)
}

/// [`parse_conjunctive`] with additional pre-declared variable names —
/// needed for variables that are only ever *referenced* (pure multi-path
/// equality constraints, which have no `name{` occurrence to discover).
pub fn parse_conjunctive_with_vars(
    inputs: &[&str],
    extra_vars: &[&str],
    alphabet: &mut Alphabet,
) -> Result<(Vec<Xregex>, VarTable), XregexParseError> {
    let mut names = scan_var_names(inputs);
    let mut vars = VarTable::new();
    for v in extra_vars {
        names.insert((*v).to_string());
        vars.intern(v);
    }
    let mut comps = Vec::with_capacity(inputs.len());
    for (i, input) in inputs.iter().enumerate() {
        comps.push(parse_component(input, i, &names, alphabet, &mut vars)?);
    }
    Ok((comps, vars))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> (Xregex, Alphabet, VarTable) {
        let mut a = Alphabet::new();
        let (r, vt) = parse_xregex(s, &mut a).unwrap();
        (r, a, vt)
    }

    #[test]
    fn parses_definition_and_reference() {
        let (r, a, vt) = parse("x{a|b}cx");
        let x = vt.var("x").unwrap();
        assert_eq!(
            r,
            Xregex::Concat(vec![
                Xregex::VarDef(
                    x,
                    Box::new(Xregex::Alt(vec![
                        Xregex::Sym(a.sym("a")),
                        Xregex::Sym(a.sym("b"))
                    ]))
                ),
                Xregex::Sym(a.sym("c")),
                Xregex::VarRef(x),
            ])
        );
    }

    #[test]
    fn nested_definitions() {
        // Figure 7's q2 body: y{x{a+b}x*}cy
        let (r, _, vt) = parse("y{x{a+b}x*}cy");
        assert_eq!(vt.len(), 2);
        let y = vt.var("y").unwrap();
        let x = vt.var("x").unwrap();
        assert_eq!(r.def_count(y), 1);
        assert_eq!(r.def_count(x), 1);
        assert_eq!(r.ref_count(y), 1);
        assert_eq!(r.ref_count(x), 1);
    }

    #[test]
    fn greedy_ident_decomposition() {
        // "xa" with variable x = ref(x) · sym(a).
        let (r, a, vt) = parse("x{b}xa");
        let x = vt.var("x").unwrap();
        assert_eq!(
            r,
            Xregex::Concat(vec![
                Xregex::VarDef(x, Box::new(Xregex::Sym(a.sym("b")))),
                Xregex::VarRef(x),
                Xregex::Sym(a.sym("a")),
            ])
        );
    }

    #[test]
    fn multi_char_variable_names() {
        let (r, _, vt) = parse("x1{a}x2{b}x1x2");
        assert_eq!(vt.len(), 2);
        let x1 = vt.var("x1").unwrap();
        let x2 = vt.var("x2").unwrap();
        assert_eq!(r.ref_count(x1), 1);
        assert_eq!(r.ref_count(x2), 1);
    }

    #[test]
    fn repetition_on_reference() {
        let (r, _, vt) = parse("x{a}(x|c)+");
        let x = vt.var("x").unwrap();
        assert_eq!(r.ref_count(x), 1);
        assert!(matches!(
            r,
            Xregex::Concat(ref ps) if matches!(ps[1], Xregex::Plus(_))
        ));
    }

    #[test]
    fn conjunctive_cross_component_references() {
        let mut a = Alphabet::new();
        // x defined in component 0, referenced in component 1.
        let (comps, vt) = parse_conjunctive(&["x{a*}b", "cx"], &mut a).unwrap();
        let x = vt.var("x").unwrap();
        assert_eq!(comps[0].def_count(x), 1);
        assert_eq!(comps[1].ref_count(x), 1);
    }

    #[test]
    fn with_extra_vars() {
        let mut a = Alphabet::new();
        let (r, vt) = parse_xregex_with_vars("zz", &["z"], &mut a).unwrap();
        let z = vt.var("z").unwrap();
        assert_eq!(r.ref_count(z), 2);
    }

    #[test]
    fn without_declaration_idents_are_symbols() {
        let (r, a, vt) = parse("zz");
        assert!(vt.is_empty());
        assert_eq!(
            r,
            Xregex::Concat(vec![Xregex::Sym(a.sym("z")), Xregex::Sym(a.sym("z"))])
        );
    }

    #[test]
    fn hash_and_digit_symbols() {
        let (r, a, _) = parse("#z{(a|b)*}(##z)*###");
        assert!(a.symbol("#").is_some());
        // z must have been detected as a variable.
        assert_eq!(r.vars().len(), 1);
    }

    #[test]
    fn rejects_malformed() {
        let mut a = Alphabet::new();
        assert!(parse_xregex("x{a", &mut a).is_err());
        assert!(parse_xregex("{a}", &mut a).is_err());
        assert!(parse_xregex("x{ax}", &mut a).is_err()); // self-reference
        assert!(parse_xregex("x{a}}", &mut a).is_err());
    }

    #[test]
    fn render_parse_round_trip() {
        for s in [
            "x{a|b}cx",
            "y{x{a+b}x*}cy",
            "a*(x{(ya*)|(b*y)})z",
            "x{.*}#x",
        ] {
            let mut a = Alphabet::new();
            let (r, vt) = parse_xregex(s, &mut a).unwrap();
            let printed = r.render(&a, &vt);
            let mut a2 = a.clone();
            let (r2, vt2) = parse_xregex(&printed, &mut a2).unwrap();
            // Same shape up to variable renumbering: compare rendered forms.
            assert_eq!(printed, r2.render(&a2, &vt2), "round trip for {s}");
        }
    }
}
