//! Validation of xregex: sequentiality and variable-acyclicity.
//!
//! Per the paper (§3), an xregex `α` is *sequential* if every ref-word in
//! `L(α_ref)` contains at most one definition parenthesis `⊢x` per variable;
//! all xregex in the paper are assumed sequential. `α` is *acyclic* if the
//! relation `x ≺_α y` ("a definition of y contains a reference or definition
//! of x") has an acyclic transitive closure — this is what guarantees the
//! `deref` substitution process terminates.

use crate::ast::{Var, Xregex};
use std::collections::{BTreeMap, BTreeSet};

/// Multiplicity bound for definition instantiations within one derivation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mult {
    Fin(u32),
    Inf,
}

impl Mult {
    fn add(self, other: Mult) -> Mult {
        match (self, other) {
            (Mult::Fin(a), Mult::Fin(b)) => Mult::Fin(a.saturating_add(b)),
            _ => Mult::Inf,
        }
    }
    fn max(self, other: Mult) -> Mult {
        match (self, other) {
            (Mult::Fin(a), Mult::Fin(b)) => Mult::Fin(a.max(b)),
            _ => Mult::Inf,
        }
    }
}

/// For each variable, the maximum number of its definitions that can be
/// instantiated by a single ref-word of `α_ref`.
fn def_multiplicities(r: &Xregex) -> BTreeMap<Var, Mult> {
    match r {
        Xregex::Empty | Xregex::Epsilon | Xregex::Sym(_) | Xregex::Any | Xregex::VarRef(_) => {
            BTreeMap::new()
        }
        Xregex::Concat(ps) => {
            let mut acc: BTreeMap<Var, Mult> = BTreeMap::new();
            for p in ps {
                for (v, m) in def_multiplicities(p) {
                    let e = acc.entry(v).or_insert(Mult::Fin(0));
                    *e = e.add(m);
                }
            }
            acc
        }
        Xregex::Alt(ps) => {
            let mut acc: BTreeMap<Var, Mult> = BTreeMap::new();
            for p in ps {
                for (v, m) in def_multiplicities(p) {
                    let e = acc.entry(v).or_insert(Mult::Fin(0));
                    *e = e.max(m);
                }
            }
            acc
        }
        Xregex::Plus(p) | Xregex::Star(p) => {
            // Any definition under a repetition can be instantiated twice.
            def_multiplicities(p)
                .into_keys()
                .map(|v| (v, Mult::Inf))
                .collect()
        }
        Xregex::VarDef(x, p) => {
            let mut acc = def_multiplicities(p);
            let e = acc.entry(*x).or_insert(Mult::Fin(0));
            *e = e.add(Mult::Fin(1));
            acc
        }
    }
}

/// Whether `α` is sequential: every ref-word of `α_ref` instantiates at most
/// one definition per variable.
///
/// The syntactic criterion is exact for our ASTs: multiple definitions of
/// the same variable must sit in different alternation branches and no
/// definition may occur under `+`/`*`.
pub fn is_sequential(r: &Xregex) -> bool {
    def_multiplicities(r)
        .values()
        .all(|m| matches!(m, Mult::Fin(0) | Mult::Fin(1)))
}

/// The edges of the relation `≺_α`: `(x, y)` iff some definition of `y`
/// contains a reference or a definition of `x`.
pub fn var_relation(r: &Xregex) -> BTreeSet<(Var, Var)> {
    let mut edges = BTreeSet::new();
    fn go(r: &Xregex, edges: &mut BTreeSet<(Var, Var)>) {
        match r {
            Xregex::Concat(ps) | Xregex::Alt(ps) => ps.iter().for_each(|p| go(p, edges)),
            Xregex::Plus(p) | Xregex::Star(p) => go(p, edges),
            Xregex::VarDef(y, body) => {
                for x in body.vars() {
                    edges.insert((x, *y));
                }
                go(body, edges);
            }
            _ => {}
        }
    }
    go(r, &mut edges);
    edges
}

/// Whether the transitive closure of `≺_α` is acyclic.
pub fn is_acyclic(r: &Xregex) -> bool {
    topological_vars(r).is_some()
}

/// A topological order of `var(α)` with respect to `≺_α` (minimal variables
/// — those whose definitions contain no other variables — first), or `None`
/// when the relation is cyclic.
pub fn topological_vars(r: &Xregex) -> Option<Vec<Var>> {
    let vars: Vec<Var> = r.vars().into_iter().collect();
    let edges = var_relation(r);
    let mut indeg: BTreeMap<Var, usize> = vars.iter().map(|&v| (v, 0)).collect();
    let mut succ: BTreeMap<Var, Vec<Var>> = BTreeMap::new();
    for &(x, y) in &edges {
        if x == y {
            return None;
        }
        succ.entry(x).or_default().push(y);
        *indeg.get_mut(&y).unwrap() += 1;
    }
    let mut queue: Vec<Var> = indeg
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&v, _)| v)
        .collect();
    let mut order = Vec::with_capacity(vars.len());
    while let Some(v) = queue.pop() {
        order.push(v);
        if let Some(ss) = succ.get(&v) {
            for &s in ss {
                let d = indeg.get_mut(&s).unwrap();
                *d -= 1;
                if *d == 0 {
                    queue.push(s);
                }
            }
        }
    }
    if order.len() == vars.len() {
        Some(order)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_xregex;
    use cxrpq_graph::Alphabet;

    fn x(s: &str) -> Xregex {
        let mut a = Alphabet::new();
        parse_xregex(s, &mut a).unwrap().0
    }

    #[test]
    fn sequential_accepts_paper_examples() {
        assert!(is_sequential(&x("x{ya}")));
        // Definition 3's example x{(y{z{a*|bc}a}y)+b}x is a syntactically
        // valid xregex but NOT sequential: the definitions of y and z sit
        // under a + and can be instantiated twice.
        assert!(!is_sequential(&x("x{(y{z{a*|bc}a}y)+b}x")));
        assert!(is_sequential(&x("a*x1{a*x2{(a|b)*}b*a*}x2*(a|b)*x1")));
        // Multiple definitions in exclusive alternation branches are fine
        // (G4 of Figure 2 uses z{x|y} ∨ z{a*}).
        assert!(is_sequential(&x("z{u{a}|b}|z{a*}")));
    }

    #[test]
    fn sequential_rejects_repeated_definitions() {
        // A definition under + can instantiate twice.
        assert!(!is_sequential(&x("(x{a})+x")));
        assert!(!is_sequential(&x("(x{a}b)*")));
        // Two definitions on the same concatenation spine.
        assert!(!is_sequential(&x("x{a}x{b}")));
        // The paper's non-example (α2, α4): x1 defined in both.
        let mut a = Alphabet::new();
        let (comps, _) =
            crate::parser::parse_conjunctive(&["x1{(a|b)*}x3{c*}bx3", "x4{a*}bx4 x1{x2a}"], &mut a)
                .unwrap();
        let joint = Xregex::concat(comps);
        assert!(!is_sequential(&joint));
    }

    #[test]
    fn acyclicity_of_paper_example() {
        // α = x{a*}y{x} ∨ y{a*}x{y} is an xregex but ≺ is cyclic (§3).
        let cyclic = x("x{a*}y{x}|y{a*}x{y}");
        assert!(is_sequential(&cyclic));
        assert!(!is_acyclic(&cyclic));
    }

    #[test]
    fn var_relation_edges() {
        let mut a = Alphabet::new();
        let (r, vt) = crate::parser::parse_xregex_with_vars("z{y{a}x}b", &["x"], &mut a).unwrap();
        let (xv, yv, zv) = (
            vt.var("x").unwrap(),
            vt.var("y").unwrap(),
            vt.var("z").unwrap(),
        );
        let rel = var_relation(&r);
        assert!(rel.contains(&(yv, zv)));
        assert!(rel.contains(&(xv, zv)));
        assert!(!rel.contains(&(zv, yv)));
    }

    #[test]
    fn topological_order_respects_relation() {
        let mut a = Alphabet::new();
        let (r, vt) = parse_xregex("x{a}y{xx}z{yy}", &mut a).unwrap();
        let order = topological_vars(&r).unwrap();
        let pos = |v: &str| order.iter().position(|&o| o == vt.var(v).unwrap()).unwrap();
        assert!(pos("x") < pos("y"));
        assert!(pos("y") < pos("z"));
    }

    #[test]
    fn self_loop_is_cyclic() {
        // x{y} with y{x} elsewhere: x ≺ y and y ≺ x.
        assert!(!is_acyclic(&x("x{y}|y{x}")));
    }
}
