//! The fragment hierarchy of §5: vstar-free, valt-free, variable-simple,
//! simple, normal form, and flat variables.

use crate::ast::{Var, Xregex};
use crate::conjunctive::ConjunctiveXregex;

/// Whether any variable reference or definition occurs in the term.
fn has_vars(r: &Xregex) -> bool {
    !r.is_classical()
}

/// *Variable-star free* (vstar-free): no variable reference or definition
/// under a `+`/`*` operator. (Definitions under repetition are already ruled
/// out by sequentiality; the restriction bites on references, cf. `α_ni`.)
pub fn is_vstar_free(r: &Xregex) -> bool {
    match r {
        Xregex::Plus(p) | Xregex::Star(p) => !has_vars(p) && is_vstar_free(p),
        Xregex::Concat(ps) | Xregex::Alt(ps) => ps.iter().all(is_vstar_free),
        Xregex::VarDef(_, p) => is_vstar_free(p),
        _ => true,
    }
}

/// *Variable-alternation free* (valt-free): for every subexpression
/// `(β₁ ∨ β₂)`, neither branch contains a variable definition or reference.
pub fn is_valt_free(r: &Xregex) -> bool {
    match r {
        Xregex::Alt(ps) => ps.iter().all(|p| !has_vars(p) && is_valt_free(p)),
        Xregex::Concat(ps) => ps.iter().all(is_valt_free),
        Xregex::Plus(p) | Xregex::Star(p) => is_valt_free(p),
        Xregex::VarDef(_, p) => is_valt_free(p),
        _ => true,
    }
}

/// *Variable-simple*: vstar-free and valt-free. Equivalently (§5): a
/// concatenation `β₁β₂…β_k` where each `βᵢ` is a classical regular
/// expression, a variable reference, or a definition `x{γ}` with `γ`
/// variable-simple.
pub fn is_variable_simple(r: &Xregex) -> bool {
    is_vstar_free(r) && is_valt_free(r)
}

/// Whether a definition body is *basic*: a classical regular expression or a
/// single variable reference.
pub fn is_basic_body(body: &Xregex) -> bool {
    body.is_classical() || matches!(body, Xregex::VarRef(_))
}

/// *Simple*: variable-simple and every variable definition is basic.
pub fn is_simple(r: &Xregex) -> bool {
    if !is_variable_simple(r) {
        return false;
    }
    let mut ok = true;
    r.walk(&mut |n| {
        if let Xregex::VarDef(_, body) = n {
            if !is_basic_body(body) {
                ok = false;
            }
        }
    });
    ok
}

/// *Normal form*: an alternation `α₁ ∨ … ∨ α_m` where every `αᵢ` is simple
/// (a single simple term counts as a 1-ary alternation).
pub fn is_normal_form(r: &Xregex) -> bool {
    match r {
        Xregex::Alt(ps) => ps.iter().all(is_simple),
        other => is_simple(other),
    }
}

/// Whether variable `x` is *flat* in the joint term (§5.3): every definition
/// of `x` is basic, or `x` has no reference inside any other definition.
pub fn is_flat_var(joint: &Xregex, x: Var) -> bool {
    let mut all_defs_basic = true;
    let mut ref_in_other_def = false;
    joint.walk(&mut |n| {
        if let Xregex::VarDef(y, body) = n {
            if *y == x && !is_basic_body(body) {
                all_defs_basic = false;
            }
            if *y != x && body.ref_count(x) > 0 {
                ref_in_other_def = true;
            }
        }
    });
    all_defs_basic || !ref_in_other_def
}

/// The fragment of a conjunctive xregex, coarsest applicable class first.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fragment {
    /// Every component simple — evaluable by Lemma 3 directly.
    Simple,
    /// Every component in normal form (alternation of simple terms).
    NormalForm,
    /// Vstar-free with only flat variables (`CXRPQ^{vsf,fl}`, Theorem 5).
    VstarFreeFlat,
    /// Vstar-free (`CXRPQ^{vsf}`, Theorem 2).
    VstarFree,
    /// Unrestricted CXRPQ (PSpace-hard data complexity, Theorem 1).
    General,
}

/// Full classification report for a conjunctive xregex.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Classification {
    /// Every component vstar-free.
    pub vstar_free: bool,
    /// Every component valt-free.
    pub valt_free: bool,
    /// Every component variable-simple.
    pub variable_simple: bool,
    /// Every component simple.
    pub simple: bool,
    /// Every component in normal form.
    pub normal_form: bool,
    /// Every variable flat in the joint term.
    pub all_flat: bool,
}

impl Classification {
    /// The most specific evaluation fragment.
    pub fn fragment(&self) -> Fragment {
        if self.simple {
            Fragment::Simple
        } else if self.normal_form {
            Fragment::NormalForm
        } else if self.vstar_free && self.all_flat {
            Fragment::VstarFreeFlat
        } else if self.vstar_free {
            Fragment::VstarFree
        } else {
            Fragment::General
        }
    }
}

/// Classifies a conjunctive xregex against the §5 hierarchy.
pub fn classification(cx: &ConjunctiveXregex) -> Classification {
    let comps = cx.components();
    let joint = cx.joint();
    let all_flat = joint.vars().into_iter().all(|x| is_flat_var(&joint, x));
    Classification {
        vstar_free: comps.iter().all(is_vstar_free),
        valt_free: comps.iter().all(is_valt_free),
        variable_simple: comps.iter().all(is_variable_simple),
        simple: comps.iter().all(is_simple),
        normal_form: comps.iter().all(is_normal_form),
        all_flat,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_conjunctive, parse_xregex};
    use cxrpq_graph::Alphabet;

    fn x(s: &str) -> Xregex {
        let mut a = Alphabet::from_chars("abcd#u");
        parse_xregex(s, &mut a).unwrap().0
    }

    #[test]
    fn example_4_from_paper() {
        // "x{a*}(bx(c|a))*b is not vstar-free, but valt-free."
        let r1 = x("x{a*}(bx(c|a))*b");
        assert!(!is_vstar_free(&r1));
        assert!(is_valt_free(&r1));
        // "x{a*}y((bx)|(ca))b*y is vstar-free, but not valt-free."
        let mut a = Alphabet::from_chars("abc");
        let (r2, _) =
            crate::parser::parse_xregex_with_vars("x{a*}y((bx)|(ca))b*y", &["y"], &mut a).unwrap();
        assert!(is_vstar_free(&r2));
        assert!(!is_valt_free(&r2));
        // "ax{(b|c)*by{dxa*}}bxa*z{d*}zy is variable-simple, but not simple"
        // (we write the nested reference as a fresh symbol since Definition 3
        // item 4 forbids x inside its own definition body).
        let r3 = x("a u{(b|c)*b y{dca*}}bua*z{d*}zy");
        assert!(is_variable_simple(&r3));
        assert!(!is_simple(&r3)); // u's body is not basic
                                  // "ax{(b|c)*da}bxa*y{z}xy is simple."
        let r4 = x("a x{(b|c)*da}bxa* y{z{d}} x y");
        assert!(is_variable_simple(&r4));
        // y{z} is basic; z{d} is basic; x{(b|c)*da} is basic.
        assert!(is_simple(&x("a x{(b|c)*da}bx")));
    }

    #[test]
    fn figure_2_classifications() {
        let mut a = Alphabet::from_chars("abcd");
        // G1: x{a|b} and (x|c)+ — references under + make it non-vstar-free.
        let (comps, vt) = parse_conjunctive(&["x{a|b}", "(x|c)+"], &mut a).unwrap();
        let g1 = ConjunctiveXregex::new(comps, vt).unwrap();
        let c1 = classification(&g1);
        assert!(!c1.vstar_free);
        assert_eq!(c1.fragment(), Fragment::General);

        // G2: x{aa|b}, y{(c|d)*}, x|y — vstar-free; x|y is a variable
        // alternation so not valt-free; all variables flat.
        let mut a2 = Alphabet::from_chars("abcd");
        let (comps, vt) = parse_conjunctive(&["x{aa|b}", "y{(c|d)*}", "x|y"], &mut a2).unwrap();
        let g2 = ConjunctiveXregex::new(comps, vt).unwrap();
        let c2 = classification(&g2);
        assert!(c2.vstar_free);
        assert!(!c2.valt_free);
        assert!(c2.all_flat);
        // x|y is an alternation of two simple terms (bare references), so G2
        // is even in normal form — more specific than vsf,fl.
        assert_eq!(c2.fragment(), Fragment::NormalForm);

        // G4 contains z{x|y} ∨ z{a*} and defs referencing other defs:
        // vstar-free but x is not flat (x{(ya*)|(b*y)} is non-basic and x is
        // referenced inside z's definition).
        let mut a3 = Alphabet::from_chars("abcd");
        let (comps, vt) = parse_conjunctive(
            &["a*(x{(ya*)|(b*y)})z", "b*(y{c*|d*})", "z{x|y}|z{a*}"],
            &mut a3,
        )
        .unwrap();
        let g4 = ConjunctiveXregex::new(comps, vt).unwrap();
        let c4 = classification(&g4);
        assert!(c4.vstar_free);
        assert!(!c4.all_flat);
        assert_eq!(c4.fragment(), Fragment::VstarFree);
    }

    #[test]
    fn flatness_example_from_section_5_3() {
        // α1 = ub*x{y{a*}(a|b)*zy}, α2 = u{cbz{a*(b|ca)}}ax: every variable
        // flat. (u is referenced… u's def is non-basic but u has no reference
        // inside another definition; x non-basic def, no refs in other defs;
        // y, z basic defs.)
        let mut a = Alphabet::from_chars("abc");
        let (comps, vt) =
            parse_conjunctive(&["ub* x{y{a*}(a|b)*zy}", "u{cb z{a*(b|ca)}}ax"], &mut a).unwrap();
        let cx = ConjunctiveXregex::new(comps, vt).unwrap();
        let joint = cx.joint();
        for v in joint.vars() {
            assert!(
                is_flat_var(&joint, v),
                "variable {} should be flat",
                cx.vars().name(v)
            );
        }
    }

    #[test]
    fn non_flat_chain() {
        // §5.3 blow-up family: x1{a}x2{x1x1}x3{x2x2}: x2 has a non-basic
        // definition and a reference inside x3's definition → not flat.
        let mut a = Alphabet::from_chars("a");
        let (r, vt) = parse_xregex("x1{a}x2{x1x1}x3{x2x2}", &mut a).unwrap();
        let x2 = vt.var("x2").unwrap();
        assert!(!is_flat_var(&r, x2));
        let x1 = vt.var("x1").unwrap();
        assert!(is_flat_var(&r, x1)); // basic definition
    }

    #[test]
    fn normal_form_detection() {
        assert!(is_normal_form(&x("x{a*}bx|y{b}y")));
        assert!(is_normal_form(&x("x{a*}bx")));
        // Classical bodies are basic even when structured.
        assert!(is_normal_form(&x("x{a*(b|c)}x|y{b}y")));
        // Non-simple branch: def body mixing a definition with other factors.
        assert!(!is_normal_form(&x("x{y{a}b}x")));
        // An alternation above a variable is not simple, but is normal form
        // when each branch is simple.
        assert!(is_normal_form(&x("x{a}x|b*")));
    }
}
