//! Ref-words (Definition 1) and the `deref` function (Definition 2).
//!
//! A *subword-marked word* over Σ and `Xs` is a word over
//! `Σ ∪ {⊢x, ⊣x | x ∈ Xs} ∪ Xs` in which each parenthesis pair occurs at most
//! once and all parentheses are well-nested. A *ref-word* additionally has an
//! acyclic reference relation, which makes the substitution process of
//! `deref` terminate.

use crate::ast::{Var, VarTable};
use cxrpq_graph::{Alphabet, Symbol};
use std::collections::BTreeMap;

/// One token of a ref-word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RefTok {
    /// A terminal symbol.
    Sym(Symbol),
    /// Opening parenthesis `⊢x` of the definition of `x`.
    Open(Var),
    /// Closing parenthesis `⊣x`.
    Close(Var),
    /// A reference of `x`.
    Ref(Var),
}

/// A validated ref-word.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct RefWord {
    toks: Vec<RefTok>,
}

/// Why a token sequence is not a ref-word.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RefWordError {
    /// `⊢x` occurs twice.
    DuplicateOpen(Var),
    /// `⊣x` does not match the innermost open definition.
    MismatchedClose(Var),
    /// `⊣x` without `⊢x`, or `⊢x` never closed.
    Unbalanced,
    /// The reference relation `≺_w` is cyclic.
    Cyclic,
}

impl RefWord {
    /// Validates and wraps a token sequence (Definition 1).
    pub fn new(toks: Vec<RefTok>) -> Result<Self, RefWordError> {
        // Well-nestedness and at-most-once parentheses.
        let mut open_seen: BTreeMap<Var, bool> = BTreeMap::new();
        let mut stack: Vec<Var> = Vec::new();
        for t in &toks {
            match t {
                RefTok::Open(x) => {
                    if open_seen.insert(*x, true).is_some() {
                        return Err(RefWordError::DuplicateOpen(*x));
                    }
                    stack.push(*x);
                }
                RefTok::Close(x) => match stack.pop() {
                    Some(y) if y == *x => {}
                    Some(_) => return Err(RefWordError::MismatchedClose(*x)),
                    None => return Err(RefWordError::Unbalanced),
                },
                _ => {}
            }
        }
        if !stack.is_empty() {
            return Err(RefWordError::Unbalanced);
        }
        let w = RefWord { toks };
        if w.relation_is_cyclic() {
            return Err(RefWordError::Cyclic);
        }
        Ok(w)
    }

    /// The raw token sequence.
    pub fn tokens(&self) -> &[RefTok] {
        &self.toks
    }

    /// Variables that have a definition in this ref-word.
    pub fn defined_vars(&self) -> Vec<Var> {
        self.toks
            .iter()
            .filter_map(|t| match t {
                RefTok::Open(x) => Some(*x),
                _ => None,
            })
            .collect()
    }

    /// The relation `≺_w`: `x ≺_w y` iff the definition span of `y` contains
    /// a definition or reference of `x`. Returns `true` when the transitive
    /// closure is cyclic.
    fn relation_is_cyclic(&self) -> bool {
        let mut edges: Vec<(Var, Var)> = Vec::new();
        let mut stack: Vec<Var> = Vec::new();
        for t in &self.toks {
            match t {
                RefTok::Open(x) => {
                    for &y in &stack {
                        edges.push((*x, y));
                    }
                    stack.push(*x);
                }
                RefTok::Close(_) => {
                    stack.pop();
                }
                RefTok::Ref(x) => {
                    for &y in &stack {
                        edges.push((*x, y));
                    }
                }
                RefTok::Sym(_) => {}
            }
        }
        // Kahn's algorithm over the participating variables.
        let mut vars: Vec<Var> = edges
            .iter()
            .flat_map(|&(a, b)| [a, b])
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        let mut indeg: BTreeMap<Var, usize> = vars.iter().map(|&v| (v, 0)).collect();
        let mut succ: BTreeMap<Var, Vec<Var>> = BTreeMap::new();
        let mut seen = std::collections::BTreeSet::new();
        for &(a, b) in &edges {
            if a == b {
                return true;
            }
            if seen.insert((a, b)) {
                succ.entry(a).or_default().push(b);
                *indeg.get_mut(&b).unwrap() += 1;
            }
        }
        let mut queue: Vec<Var> = indeg
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&v, _)| v)
            .collect();
        let mut processed = 0;
        while let Some(v) = queue.pop() {
            processed += 1;
            if let Some(ss) = succ.get(&v) {
                for &s in ss {
                    let d = indeg.get_mut(&s).unwrap();
                    *d -= 1;
                    if *d == 0 {
                        queue.push(s);
                    }
                }
            }
        }
        vars.sort();
        processed != vars.len()
    }

    /// The `deref` function (Definition 2): substitutes definitions for
    /// references until a word over Σ remains.
    ///
    /// Returns `(deref(w), vmap_w)` where `vmap_w` maps every variable with a
    /// definition in `w` to its image; variables without a definition are ε
    /// (returned implicitly: absent from the map).
    pub fn deref(&self) -> (Vec<Symbol>, BTreeMap<Var, Vec<Symbol>>) {
        // Step 1: delete references of variables without a definition.
        let defined: std::collections::BTreeSet<Var> = self.defined_vars().into_iter().collect();
        let mut toks: Vec<RefTok> = self
            .toks
            .iter()
            .filter(|t| !matches!(t, RefTok::Ref(x) if !defined.contains(x)))
            .copied()
            .collect();
        let mut vmap: BTreeMap<Var, Vec<Symbol>> = BTreeMap::new();

        // Step 2: repeatedly resolve an innermost definition (one whose span
        // holds only terminal symbols).
        loop {
            let mut target: Option<(usize, usize, Var)> = None;
            let mut open_stack: Vec<(usize, Var)> = Vec::new();
            'scan: for (i, t) in toks.iter().enumerate() {
                match t {
                    RefTok::Open(x) => open_stack.push((i, *x)),
                    RefTok::Close(x) => {
                        let (start, y) = open_stack.pop().expect("validated");
                        debug_assert_eq!(*x, y);
                        // Pure iff span contains only symbols.
                        if toks[start + 1..i]
                            .iter()
                            .all(|t| matches!(t, RefTok::Sym(_)))
                        {
                            target = Some((start, i, y));
                            break 'scan;
                        }
                    }
                    _ => {}
                }
            }
            let Some((start, end, x)) = target else {
                debug_assert!(
                    toks.iter().all(|t| matches!(t, RefTok::Sym(_))),
                    "acyclic ref-word must fully resolve"
                );
                break;
            };
            let image: Vec<Symbol> = toks[start + 1..end]
                .iter()
                .map(|t| match t {
                    RefTok::Sym(s) => *s,
                    _ => unreachable!(),
                })
                .collect();
            vmap.insert(x, image.clone());
            // Replace the definition span and every reference of x by image.
            let mut next = Vec::with_capacity(toks.len() + image.len());
            for (i, t) in toks.iter().enumerate() {
                if i == start {
                    next.extend(image.iter().map(|&s| RefTok::Sym(s)));
                } else if i > start && i <= end {
                    // consumed
                } else if matches!(t, RefTok::Ref(y) if *y == x) {
                    next.extend(image.iter().map(|&s| RefTok::Sym(s)));
                } else {
                    next.push(*t);
                }
            }
            toks = next;
        }
        let word = toks
            .iter()
            .map(|t| match t {
                RefTok::Sym(s) => *s,
                _ => unreachable!(),
            })
            .collect();
        (word, vmap)
    }

    /// The variable image `vmap_w(x)` (ε when `x` has no definition).
    pub fn vmap(&self, x: Var) -> Vec<Symbol> {
        self.deref().1.remove(&x).unwrap_or_default()
    }

    /// Renders the ref-word with symbol/variable names.
    pub fn render(&self, alphabet: &Alphabet, vars: &VarTable) -> String {
        let mut s = String::new();
        for t in &self.toks {
            match t {
                RefTok::Sym(a) => s.push_str(alphabet.name(*a)),
                RefTok::Open(x) => {
                    s.push('⊢');
                    s.push_str(vars.name(*x));
                    s.push(' ');
                }
                RefTok::Close(x) => {
                    s.push(' ');
                    s.push('⊣');
                    s.push_str(vars.name(*x));
                }
                RefTok::Ref(x) => {
                    s.push('⟨');
                    s.push_str(vars.name(*x));
                    s.push('⟩');
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sym(i: u32) -> RefTok {
        RefTok::Sym(Symbol(i))
    }

    #[test]
    fn validates_nesting() {
        let x = Var(0);
        let y = Var(1);
        // ⊢x ⊢y ⊣x ⊣y — overlap is rejected.
        assert_eq!(
            RefWord::new(vec![
                RefTok::Open(x),
                RefTok::Open(y),
                RefTok::Close(x),
                RefTok::Close(y)
            ]),
            Err(RefWordError::MismatchedClose(x))
        );
        // ⊢x ⊣x ⊢x ⊣x — duplicate definition.
        assert_eq!(
            RefWord::new(vec![
                RefTok::Open(x),
                RefTok::Close(x),
                RefTok::Open(x),
                RefTok::Close(x)
            ]),
            Err(RefWordError::DuplicateOpen(x))
        );
        assert_eq!(
            RefWord::new(vec![RefTok::Open(x)]),
            Err(RefWordError::Unbalanced)
        );
    }

    #[test]
    fn paper_valid_and_invalid_ref_words() {
        // From §2.1: axb ⊢x ab ⊣x c ⊢y xaa ⊣y y is valid;
        let (a, b, c) = (Symbol(0), Symbol(1), Symbol(2));
        let (x, y) = (Var(0), Var(1));
        let valid = vec![
            sym(0),
            RefTok::Ref(x),
            sym(1),
            RefTok::Open(x),
            sym(0),
            sym(1),
            RefTok::Close(x),
            sym(2),
            RefTok::Open(y),
            RefTok::Ref(x),
            sym(0),
            sym(0),
            RefTok::Close(y),
            RefTok::Ref(y),
        ];
        assert!(RefWord::new(valid).is_ok());
        let _ = (a, b, c);
        // axb ⊢x ab ⊣x c ⊢y xaay ⊣y y — y references itself inside its
        // definition: cyclic.
        let cyclic = vec![
            sym(0),
            RefTok::Ref(x),
            sym(1),
            RefTok::Open(x),
            sym(0),
            sym(1),
            RefTok::Close(x),
            sym(2),
            RefTok::Open(y),
            RefTok::Ref(x),
            sym(0),
            sym(0),
            RefTok::Ref(y),
            RefTok::Close(y),
            RefTok::Ref(y),
        ];
        assert_eq!(RefWord::new(cyclic), Err(RefWordError::Cyclic));
    }

    #[test]
    fn deref_example_1_from_paper() {
        // Example 1: w = a x4 a ⊢x1 ab ⊢x2 acc ⊣x2 a x2 x4 ⊣x1 ⊢x3 x1 a x2 ⊣x3 x3 b x1
        // over Σ = {a, b, c} with variables x1..x4.
        let (a, b, c) = (Symbol(0), Symbol(1), Symbol(2));
        let (x1, x2, x3, x4) = (Var(0), Var(1), Var(2), Var(3));
        let w = RefWord::new(vec![
            sym(0),
            RefTok::Ref(x4),
            sym(0),
            RefTok::Open(x1),
            sym(0),
            sym(1),
            RefTok::Open(x2),
            sym(0),
            sym(2),
            sym(2),
            RefTok::Close(x2),
            sym(0),
            RefTok::Ref(x2),
            RefTok::Ref(x4),
            RefTok::Close(x1),
            RefTok::Open(x3),
            RefTok::Ref(x1),
            sym(0),
            RefTok::Ref(x2),
            RefTok::Close(x3),
            RefTok::Ref(x3),
            sym(1),
            RefTok::Ref(x1),
        ])
        .unwrap();
        let (word, vmap) = w.deref();
        let to_w = |s: &str| -> Vec<Symbol> {
            s.chars()
                .map(|ch| match ch {
                    'a' => a,
                    'b' => b,
                    'c' => c,
                    _ => unreachable!(),
                })
                .collect()
        };
        // vmap_w = (abaccaacc, acc, abaccaaccaacc, ε)
        assert_eq!(vmap.get(&x1), Some(&to_w("abaccaacc")));
        assert_eq!(vmap.get(&x2), Some(&to_w("acc")));
        assert_eq!(vmap.get(&x3), Some(&to_w("abaccaaccaacc")));
        assert_eq!(vmap.get(&x4), None); // no definition => ε
        let expected = to_w("aa")
            .into_iter()
            .chain(to_w("abaccaacc"))
            .chain(to_w("abaccaaccaacc"))
            .chain(to_w("abaccaaccaacc"))
            .chain(to_w("b"))
            .chain(to_w("abaccaacc"))
            .collect::<Vec<_>>();
        assert_eq!(word, expected);
    }

    #[test]
    fn deref_empty_definitions() {
        // ⊢x ⊣x c x ∈ L_ref(x{(a|b)*} c x): image of x is ε.
        let x = Var(0);
        let w = RefWord::new(vec![
            RefTok::Open(x),
            RefTok::Close(x),
            sym(2),
            RefTok::Ref(x),
        ])
        .unwrap();
        let (word, vmap) = w.deref();
        assert_eq!(word, vec![Symbol(2)]);
        assert_eq!(vmap.get(&x), Some(&vec![]));
    }

    #[test]
    fn undefined_refs_are_deleted() {
        let x = Var(0);
        let w = RefWord::new(vec![sym(0), RefTok::Ref(x), sym(1)]).unwrap();
        let (word, vmap) = w.deref();
        assert_eq!(word, vec![Symbol(0), Symbol(1)]);
        assert!(vmap.is_empty());
        assert_eq!(w.vmap(x), Vec::<Symbol>::new());
    }

    #[test]
    fn render_is_readable() {
        let alpha = Alphabet::from_chars("ab");
        let mut vt = VarTable::new();
        let x = vt.intern("x");
        let w = RefWord::new(vec![
            RefTok::Open(x),
            RefTok::Sym(alpha.sym("a")),
            RefTok::Close(x),
            RefTok::Ref(x),
        ])
        .unwrap();
        assert_eq!(w.render(&alpha, &vt), "⊢x a ⊣x⟨x⟩");
    }
}
