//! The xregex AST (`XRE_{Σ,Xs}`, Definition 3 of the paper).

use cxrpq_automata::Regex;
use cxrpq_graph::{Alphabet, Symbol};
use std::collections::{BTreeSet, HashMap};

/// An interned string variable from the set `Xs`.
///
/// String variables are disjoint from the terminal alphabet (`Xs ∩ Σ = ∅`);
/// the paper writes them in sans-serif (x, y, z, …).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var(pub u32);

impl Var {
    /// Dense index of the variable.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An interning table for string-variable names.
#[derive(Clone, Default, Debug)]
pub struct VarTable {
    names: Vec<String>,
    ids: HashMap<String, Var>,
}

impl VarTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a variable name.
    pub fn intern(&mut self, name: &str) -> Var {
        if let Some(&v) = self.ids.get(name) {
            return v;
        }
        let v = Var(self.names.len() as u32);
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), v);
        v
    }

    /// Looks up a variable by name.
    pub fn var(&self, name: &str) -> Option<Var> {
        self.ids.get(name).copied()
    }

    /// The name of a variable.
    pub fn name(&self, v: Var) -> &str {
        &self.names[v.index()]
    }

    /// Number of interned variables.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all variables.
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        (0..self.names.len() as u32).map(Var)
    }

    /// Interns a fresh variable with a name derived from `base` that does not
    /// collide with existing names (used by the normal-form construction to
    /// create the `u`-variables of Lemma 6).
    pub fn fresh(&mut self, base: &str) -> Var {
        if self.ids.contains_key(base) {
            let mut i = 1usize;
            loop {
                let candidate = format!("{base}_{i}");
                if !self.ids.contains_key(&candidate) {
                    return self.intern(&candidate);
                }
                i += 1;
            }
        } else {
            self.intern(base)
        }
    }
}

/// A regular expression with backreferences (xregex) over Σ and `Xs`.
///
/// Grammar per Definition 3: symbols, ε, `∅`, concatenation, alternation,
/// `+` (with `*` as `r⁺ ∨ ε` sugar), variable references `x`, and variable
/// definitions `x{α}` (where `x ∉ var(α)`). `Any` abbreviates the
/// single-symbol wildcard Σ.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Xregex {
    /// `∅` — the empty language.
    Empty,
    /// `ε` — the empty word.
    Epsilon,
    /// A terminal symbol.
    Sym(Symbol),
    /// Any single symbol of Σ.
    Any,
    /// Concatenation.
    Concat(Vec<Xregex>),
    /// Alternation.
    Alt(Vec<Xregex>),
    /// One or more repetitions.
    Plus(Box<Xregex>),
    /// Zero or more repetitions (`r⁺ ∨ ε`).
    Star(Box<Xregex>),
    /// A reference of variable `x`.
    VarRef(Var),
    /// A definition `x{α}`.
    VarDef(Var, Box<Xregex>),
}

impl Xregex {
    /// Lifts a classical regular expression into an xregex.
    pub fn from_regex(r: &Regex) -> Xregex {
        match r {
            Regex::Empty => Xregex::Empty,
            Regex::Epsilon => Xregex::Epsilon,
            Regex::Sym(a) => Xregex::Sym(*a),
            Regex::Any => Xregex::Any,
            Regex::Concat(ps) => Xregex::Concat(ps.iter().map(Xregex::from_regex).collect()),
            Regex::Alt(ps) => Xregex::Alt(ps.iter().map(Xregex::from_regex).collect()),
            Regex::Plus(p) => Xregex::Plus(Box::new(Xregex::from_regex(p))),
            Regex::Star(p) => Xregex::Star(Box::new(Xregex::from_regex(p))),
        }
    }

    /// Converts back to a classical regular expression when the term contains
    /// no variable references or definitions; `None` otherwise.
    pub fn to_regex(&self) -> Option<Regex> {
        Some(match self {
            Xregex::Empty => Regex::Empty,
            Xregex::Epsilon => Regex::Epsilon,
            Xregex::Sym(a) => Regex::Sym(*a),
            Xregex::Any => Regex::Any,
            Xregex::Concat(ps) => {
                Regex::Concat(ps.iter().map(Xregex::to_regex).collect::<Option<_>>()?)
            }
            Xregex::Alt(ps) => Regex::Alt(ps.iter().map(Xregex::to_regex).collect::<Option<_>>()?),
            Xregex::Plus(p) => Regex::Plus(Box::new(p.to_regex()?)),
            Xregex::Star(p) => Regex::Star(Box::new(p.to_regex()?)),
            Xregex::VarRef(_) | Xregex::VarDef(..) => return None,
        })
    }

    /// Whether the term is variable-free (a classical regular expression).
    pub fn is_classical(&self) -> bool {
        match self {
            Xregex::Empty | Xregex::Epsilon | Xregex::Sym(_) | Xregex::Any => true,
            Xregex::Concat(ps) | Xregex::Alt(ps) => ps.iter().all(Xregex::is_classical),
            Xregex::Plus(p) | Xregex::Star(p) => p.is_classical(),
            Xregex::VarRef(_) | Xregex::VarDef(..) => false,
        }
    }

    /// Smart concatenation (flattens, drops ε, absorbs ∅).
    pub fn concat(parts: Vec<Xregex>) -> Xregex {
        let mut out = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Xregex::Empty => return Xregex::Empty,
                Xregex::Epsilon => {}
                Xregex::Concat(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Xregex::Epsilon,
            1 => out.pop().unwrap(),
            _ => Xregex::Concat(out),
        }
    }

    /// Smart alternation (flattens, drops ∅ alternatives).
    pub fn alt(parts: Vec<Xregex>) -> Xregex {
        let mut out: Vec<Xregex> = Vec::with_capacity(parts.len());
        for p in parts {
            match p {
                Xregex::Empty => {}
                Xregex::Alt(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Xregex::Empty,
            1 => out.pop().unwrap(),
            _ => Xregex::Alt(out),
        }
    }

    /// Smart `+`.
    pub fn plus(r: Xregex) -> Xregex {
        match r {
            Xregex::Empty => Xregex::Empty,
            Xregex::Epsilon => Xregex::Epsilon,
            other => Xregex::Plus(Box::new(other)),
        }
    }

    /// Smart `*`.
    pub fn star(r: Xregex) -> Xregex {
        match r {
            Xregex::Empty | Xregex::Epsilon => Xregex::Epsilon,
            other => Xregex::Star(Box::new(other)),
        }
    }

    /// A definition `x{α}`. Panics if `x ∈ var(α)` (Definition 3 requires
    /// `x ∉ var(α)`).
    pub fn def(x: Var, body: Xregex) -> Xregex {
        assert!(
            !body.vars().contains(&x),
            "variable cannot occur in its own definition body"
        );
        Xregex::VarDef(x, Box::new(body))
    }

    /// Size |α| — number of AST nodes (the measure of the blow-up bounds).
    pub fn size(&self) -> usize {
        match self {
            Xregex::Empty | Xregex::Epsilon | Xregex::Sym(_) | Xregex::Any | Xregex::VarRef(_) => 1,
            Xregex::Concat(ps) | Xregex::Alt(ps) => 1 + ps.iter().map(Xregex::size).sum::<usize>(),
            Xregex::Plus(p) | Xregex::Star(p) => 1 + p.size(),
            Xregex::VarDef(_, p) => 1 + p.size(),
        }
    }

    /// `var(α)` — all variables occurring in the term (referenced or defined).
    pub fn vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            Xregex::Empty | Xregex::Epsilon | Xregex::Sym(_) | Xregex::Any => {}
            Xregex::Concat(ps) | Xregex::Alt(ps) => {
                ps.iter().for_each(|p| p.collect_vars(out));
            }
            Xregex::Plus(p) | Xregex::Star(p) => p.collect_vars(out),
            Xregex::VarRef(x) => {
                out.insert(*x);
            }
            Xregex::VarDef(x, p) => {
                out.insert(*x);
                p.collect_vars(out);
            }
        }
    }

    /// Variables with at least one definition in the term.
    pub fn defined_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.walk(&mut |n| {
            if let Xregex::VarDef(x, _) = n {
                out.insert(*x);
            }
        });
        out
    }

    /// Variables with at least one reference in the term.
    pub fn referenced_vars(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.walk(&mut |n| {
            if let Xregex::VarRef(x) = n {
                out.insert(*x);
            }
        });
        out
    }

    /// Number of definitions of `x` in the term (syntactic occurrences).
    pub fn def_count(&self, x: Var) -> usize {
        let mut n = 0;
        self.walk(&mut |node| {
            if matches!(node, Xregex::VarDef(y, _) if *y == x) {
                n += 1;
            }
        });
        n
    }

    /// Number of references of `x` in the term.
    pub fn ref_count(&self, x: Var) -> usize {
        let mut n = 0;
        self.walk(&mut |node| {
            if matches!(node, Xregex::VarRef(y) if *y == x) {
                n += 1;
            }
        });
        n
    }

    /// Whether the term denotes exactly `{ε}` — it matches the empty word
    /// and nothing else, with every variable it defines bound to ε.
    ///
    /// Decided syntactically, so the check is conservative on references:
    /// a `VarRef` could denote ε at runtime, but here it reports `false`.
    /// Used by the static analyzer's ε-variable elimination: a definition
    /// `x{α}` with `α.is_epsilon_only()` pins `ψ(x) = ε` on every match,
    /// so the definition and all references of `x` can be erased
    /// ([`Xregex::erase_var`]).
    pub fn is_epsilon_only(&self) -> bool {
        match self {
            Xregex::Epsilon => true,
            Xregex::Empty | Xregex::Sym(_) | Xregex::Any | Xregex::VarRef(_) => false,
            Xregex::Concat(ps) => ps.iter().all(Xregex::is_epsilon_only),
            Xregex::Alt(ps) => !ps.is_empty() && ps.iter().all(Xregex::is_epsilon_only),
            Xregex::Plus(p) | Xregex::Star(p) => p.is_epsilon_only(),
            Xregex::VarDef(_, p) => p.is_epsilon_only(),
        }
    }

    /// Erases variable `x`: every definition `x{α}` and every reference of
    /// `x` is replaced by ε. Only semantics-preserving when `ψ(x) = ε` on
    /// every match — i.e. the definition body `α` satisfies
    /// [`Xregex::is_epsilon_only`]; the caller checks that.
    pub fn erase_var(&self, x: Var) -> Xregex {
        match self {
            Xregex::VarRef(y) if *y == x => Xregex::Epsilon,
            Xregex::VarDef(y, _) if *y == x => Xregex::Epsilon,
            Xregex::Concat(ps) => Xregex::Concat(ps.iter().map(|p| p.erase_var(x)).collect()),
            Xregex::Alt(ps) => Xregex::Alt(ps.iter().map(|p| p.erase_var(x)).collect()),
            Xregex::Plus(p) => Xregex::Plus(Box::new(p.erase_var(x))),
            Xregex::Star(p) => Xregex::Star(Box::new(p.erase_var(x))),
            Xregex::VarDef(y, p) => Xregex::VarDef(*y, Box::new(p.erase_var(x))),
            other => other.clone(),
        }
    }

    /// Pre-order traversal visiting every node.
    pub fn walk(&self, f: &mut impl FnMut(&Xregex)) {
        f(self);
        match self {
            Xregex::Concat(ps) | Xregex::Alt(ps) => ps.iter().for_each(|p| p.walk(f)),
            Xregex::Plus(p) | Xregex::Star(p) => p.walk(f),
            Xregex::VarDef(_, p) => p.walk(f),
            _ => {}
        }
    }

    /// Replaces every reference of `x` by a clone of `replacement`
    /// (definitions of `x` are left untouched).
    pub fn replace_refs(&self, x: Var, replacement: &Xregex) -> Xregex {
        match self {
            Xregex::VarRef(y) if *y == x => replacement.clone(),
            Xregex::Concat(ps) => {
                Xregex::Concat(ps.iter().map(|p| p.replace_refs(x, replacement)).collect())
            }
            Xregex::Alt(ps) => {
                Xregex::Alt(ps.iter().map(|p| p.replace_refs(x, replacement)).collect())
            }
            Xregex::Plus(p) => Xregex::Plus(Box::new(p.replace_refs(x, replacement))),
            Xregex::Star(p) => Xregex::Star(Box::new(p.replace_refs(x, replacement))),
            Xregex::VarDef(y, p) => Xregex::VarDef(*y, Box::new(p.replace_refs(x, replacement))),
            other => other.clone(),
        }
    }

    /// Pretty-prints with symbol and variable names.
    pub fn render(&self, alphabet: &Alphabet, vars: &VarTable) -> String {
        fn prec(r: &Xregex) -> u8 {
            match r {
                Xregex::Alt(_) => 0,
                Xregex::Concat(_) => 1,
                _ => 2,
            }
        }
        fn go(r: &Xregex, a: &Alphabet, vt: &VarTable, out: &mut String, min_prec: u8) {
            let parens = prec(r) < min_prec;
            if parens {
                out.push('(');
            }
            match r {
                Xregex::Empty => out.push('∅'),
                Xregex::Epsilon => out.push('ε'),
                Xregex::Sym(s) => {
                    let name = a.name(*s);
                    if name.chars().count() == 1 {
                        out.push_str(name);
                    } else {
                        out.push('<');
                        out.push_str(name);
                        out.push('>');
                    }
                }
                Xregex::Any => out.push('.'),
                Xregex::Concat(ps) => {
                    for p in ps {
                        go(p, a, vt, out, 2);
                    }
                }
                Xregex::Alt(ps) => {
                    for (i, p) in ps.iter().enumerate() {
                        if i > 0 {
                            out.push('|');
                        }
                        go(p, a, vt, out, 1);
                    }
                }
                Xregex::Plus(p) => {
                    go(p, a, vt, out, 2);
                    out.push('+');
                }
                Xregex::Star(p) => {
                    go(p, a, vt, out, 2);
                    out.push('*');
                }
                Xregex::VarRef(x) => out.push_str(vt.name(*x)),
                Xregex::VarDef(x, p) => {
                    out.push_str(vt.name(*x));
                    out.push('{');
                    go(p, a, vt, out, 0);
                    out.push('}');
                }
            }
            if parens {
                out.push(')');
            }
        }
        let mut s = String::new();
        go(self, alphabet, vars, &mut s, 0);
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sy(i: u32) -> Xregex {
        Xregex::Sym(Symbol(i))
    }

    #[test]
    fn var_table_interning() {
        let mut vt = VarTable::new();
        let x = vt.intern("x");
        assert_eq!(vt.intern("x"), x);
        assert_eq!(vt.name(x), "x");
        let f = vt.fresh("x");
        assert_ne!(f, x);
        assert_eq!(vt.name(f), "x_1");
        let g = vt.fresh("u");
        assert_eq!(vt.name(g), "u");
    }

    #[test]
    fn vars_and_defs() {
        let mut vt = VarTable::new();
        let x = vt.intern("x");
        let y = vt.intern("y");
        // x{a} (y | b) x
        let r = Xregex::concat(vec![
            Xregex::def(x, sy(0)),
            Xregex::alt(vec![Xregex::VarRef(y), sy(1)]),
            Xregex::VarRef(x),
        ]);
        assert_eq!(r.vars(), BTreeSet::from([x, y]));
        assert_eq!(r.defined_vars(), BTreeSet::from([x]));
        assert_eq!(r.referenced_vars(), BTreeSet::from([x, y]));
        assert_eq!(r.def_count(x), 1);
        assert_eq!(r.ref_count(x), 1);
        assert!(!r.is_classical());
        assert!(r.to_regex().is_none());
    }

    #[test]
    #[should_panic(expected = "own definition")]
    fn def_rejects_self_reference() {
        let mut vt = VarTable::new();
        let x = vt.intern("x");
        let _ = Xregex::def(x, Xregex::VarRef(x));
    }

    #[test]
    fn regex_round_trip() {
        let r = Regex::concat(vec![
            Regex::Sym(Symbol(0)),
            Regex::star(Regex::alt(vec![Regex::Sym(Symbol(1)), Regex::Any])),
        ]);
        let x = Xregex::from_regex(&r);
        assert!(x.is_classical());
        assert_eq!(x.to_regex().unwrap(), r);
    }

    #[test]
    fn replace_refs_leaves_defs() {
        let mut vt = VarTable::new();
        let x = vt.intern("x");
        let r = Xregex::concat(vec![Xregex::def(x, sy(0)), Xregex::VarRef(x)]);
        let replaced = r.replace_refs(x, &sy(1));
        assert_eq!(replaced.ref_count(x), 0);
        assert_eq!(replaced.def_count(x), 1);
    }

    #[test]
    fn size_counts_all_nodes() {
        let mut vt = VarTable::new();
        let x = vt.intern("x");
        // x{a b} x  => concat(1) + def(1) + concat(1) + a(1) + b(1) + ref(1) = 6
        let r = Xregex::concat(vec![
            Xregex::def(x, Xregex::concat(vec![sy(0), sy(1)])),
            Xregex::VarRef(x),
        ]);
        assert_eq!(r.size(), 6);
    }

    #[test]
    fn render_uses_names() {
        let alpha = Alphabet::from_chars("ab");
        let mut vt = VarTable::new();
        let x = vt.intern("x");
        let r = Xregex::concat(vec![
            Xregex::def(
                x,
                Xregex::star(Xregex::alt(vec![
                    Xregex::Sym(alpha.sym("a")),
                    Xregex::Sym(alpha.sym("b")),
                ])),
            ),
            Xregex::Sym(alpha.sym("a")),
            Xregex::VarRef(x),
        ]);
        assert_eq!(r.render(&alpha, &vt), "x{(a|b)*}ax");
    }

    #[test]
    fn smart_constructors_normalize() {
        assert_eq!(Xregex::concat(vec![]), Xregex::Epsilon);
        assert_eq!(Xregex::alt(vec![]), Xregex::Empty);
        assert_eq!(Xregex::concat(vec![sy(0), Xregex::Empty]), Xregex::Empty);
        assert_eq!(Xregex::star(Xregex::Epsilon), Xregex::Epsilon);
        assert_eq!(Xregex::plus(Xregex::Empty), Xregex::Empty);
    }

    #[test]
    fn epsilon_only_classification() {
        assert!(Xregex::Epsilon.is_epsilon_only());
        // ε* and (ε|ε)+ denote {ε}; the raw variants dodge the smart ctors.
        assert!(Xregex::Star(Box::new(Xregex::Epsilon)).is_epsilon_only());
        assert!(Xregex::Plus(Box::new(Xregex::Alt(vec![
            Xregex::Epsilon,
            Xregex::Epsilon
        ])))
        .is_epsilon_only());
        assert!(!sy(0).is_epsilon_only());
        assert!(!Xregex::Empty.is_epsilon_only());
        assert!(!Xregex::Star(Box::new(sy(0))).is_epsilon_only());
        assert!(!Xregex::VarRef(Var(0)).is_epsilon_only());
    }

    #[test]
    fn erase_var_removes_defs_and_refs() {
        let mut vt = VarTable::new();
        let x = vt.intern("x");
        let y = vt.intern("y");
        // x{ε} a x y — erasing x leaves ε a ε y.
        let r = Xregex::Concat(vec![
            Xregex::def(x, Xregex::Epsilon),
            sy(0),
            Xregex::VarRef(x),
            Xregex::VarRef(y),
        ]);
        let erased = r.erase_var(x);
        assert_eq!(erased.def_count(x), 0);
        assert_eq!(erased.ref_count(x), 0);
        assert_eq!(erased.ref_count(y), 1);
        assert_eq!(
            erased,
            Xregex::Concat(vec![
                Xregex::Epsilon,
                sy(0),
                Xregex::Epsilon,
                Xregex::VarRef(y)
            ])
        );
    }
}
