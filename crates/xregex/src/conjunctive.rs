//! Conjunctive xregex (§3.1): tuples `ᾱ = (α₁, …, α_m)` of xregex that
//! generate tuples of words sharing one variable mapping.

use crate::ast::{Var, VarTable, Xregex};
use crate::matcher::{conjunctive_match, FuelExhausted, MatchConfig};
use crate::validate::{is_sequential, topological_vars};
use cxrpq_graph::{Alphabet, Symbol};
use std::collections::BTreeMap;
use std::fmt;

/// Why a tuple of xregex is not a valid conjunctive xregex.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum ConjunctiveError {
    /// The concatenation `α₁α₂…α_m` is not sequential (Definition 4 requires
    /// it to be an xregex, and all xregex are assumed sequential).
    NotSequential,
    /// The concatenation is not acyclic.
    Cyclic,
    /// Zero components.
    Empty,
}

impl fmt::Display for ConjunctiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConjunctiveError::NotSequential => {
                write!(
                    f,
                    "α₁…α_m is not sequential (duplicate instantiable definitions)"
                )
            }
            ConjunctiveError::Cyclic => write!(f, "variable relation ≺ is cyclic"),
            ConjunctiveError::Empty => write!(f, "a conjunctive xregex needs ≥ 1 component"),
        }
    }
}

impl std::error::Error for ConjunctiveError {}

/// A conjunctive xregex of dimension m (Definition 4): a tuple of xregex
/// whose concatenation is an acyclic, sequential xregex.
#[derive(Clone, Debug)]
pub struct ConjunctiveXregex {
    components: Vec<Xregex>,
    vars: VarTable,
}

impl ConjunctiveXregex {
    /// Validates Definition 4 and constructs the tuple.
    pub fn new(components: Vec<Xregex>, vars: VarTable) -> Result<Self, ConjunctiveError> {
        if components.is_empty() {
            return Err(ConjunctiveError::Empty);
        }
        let joint = Xregex::concat(components.clone());
        if !is_sequential(&joint) {
            return Err(ConjunctiveError::NotSequential);
        }
        if topological_vars(&joint).is_none() {
            return Err(ConjunctiveError::Cyclic);
        }
        Ok(Self { components, vars })
    }

    /// Dimension m.
    pub fn dim(&self) -> usize {
        self.components.len()
    }

    /// The components `ᾱ[i]`.
    pub fn components(&self) -> &[Xregex] {
        &self.components
    }

    /// Component `ᾱ[i]`.
    pub fn component(&self, i: usize) -> &Xregex {
        &self.components[i]
    }

    /// The shared variable table.
    pub fn vars(&self) -> &VarTable {
        &self.vars
    }

    /// Number of distinct variables occurring in the tuple.
    pub fn var_count(&self) -> usize {
        self.joint().vars().len()
    }

    /// The concatenation `α₁α₂…α_m` (used for validation and the ≺ relation).
    pub fn joint(&self) -> Xregex {
        Xregex::concat(self.components.clone())
    }

    /// Total size `|ᾱ| = Σ |αᵢ|`.
    pub fn size(&self) -> usize {
        self.components.iter().map(Xregex::size).sum()
    }

    /// The component containing definitions of `x`, if any. At most one
    /// component can define `x` (sequentiality), so this is well-defined.
    pub fn defining_component(&self, x: Var) -> Option<usize> {
        self.components
            .iter()
            .position(|c| c.defined_vars().contains(&x))
    }

    /// Variables with at least one definition somewhere in the tuple.
    pub fn defined_vars(&self) -> Vec<Var> {
        self.joint().defined_vars().into_iter().collect()
    }

    /// Variables occurring in the tuple but never defined — these range
    /// freely over Σ* (the `x{Σ*}` dummy definitions of `⟨·⟩int`).
    pub fn undefined_vars(&self) -> Vec<Var> {
        let joint = self.joint();
        let defined = joint.defined_vars();
        joint
            .vars()
            .into_iter()
            .filter(|v| !defined.contains(v))
            .collect()
    }

    /// A ≺-topological order of the variables (minimal first).
    pub fn topological_vars(&self) -> Vec<Var> {
        topological_vars(&self.joint()).expect("validated at construction")
    }

    /// Conjunctive-match oracle: is `w̄ ∈ L(ᾱ)` (per `cfg`)? Returns the
    /// witnessing variable mapping ψ, or [`FuelExhausted`] when the
    /// backtracking oracle ran out of fuel before covering the search space.
    pub fn is_match(
        &self,
        words: &[Vec<Symbol>],
        cfg: &MatchConfig,
    ) -> Result<Option<BTreeMap<Var, Vec<Symbol>>>, FuelExhausted> {
        conjunctive_match(&self.components, words, self.vars.len(), cfg)
    }

    /// [`Self::is_match`] with fuel exhaustion flattened to the outer `None`.
    /// Callers feeding the oracle random instances use this to skip the
    /// ones that are too large.
    pub fn try_is_match(
        &self,
        words: &[Vec<Symbol>],
        cfg: &MatchConfig,
    ) -> Option<Option<BTreeMap<Var, Vec<Symbol>>>> {
        self.is_match(words, cfg).ok()
    }

    /// Renders all components.
    pub fn render(&self, alphabet: &Alphabet) -> Vec<String> {
        self.components
            .iter()
            .map(|c| c.render(alphabet, &self.vars))
            .collect()
    }

    /// Replaces the components (for transformation pipelines); re-validates.
    pub fn with_components(
        &self,
        components: Vec<Xregex>,
        vars: VarTable,
    ) -> Result<Self, ConjunctiveError> {
        Self::new(components, vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_conjunctive;

    fn conj(inputs: &[&str]) -> Result<ConjunctiveXregex, ConjunctiveError> {
        let mut a = Alphabet::from_chars("abc#");
        let (comps, vt) = parse_conjunctive(inputs, &mut a).unwrap();
        ConjunctiveXregex::new(comps, vt)
    }

    #[test]
    fn example_3_validity() {
        // (α2, α4) is not a conjunctive xregex (x1 defined in both);
        // (α3, α4) and (α1, α2, α3) are.
        let a2 = "x1{(a|b)*}x3{c*}bx3";
        let a4 = "x4{a*}bx4 x1{x2a}";
        let a1 = "x2{x1|a*}b";
        let a3 = "x2*a*x1";
        assert!(matches!(
            conj(&[a2, a4]),
            Err(ConjunctiveError::NotSequential)
        ));
        assert!(conj(&[a3, a4]).is_ok());
        assert!(conj(&[a1, a2, a3]).is_ok());
    }

    #[test]
    fn defining_component_is_found() {
        let cx = conj(&["x{a*}b", "cx"]).unwrap();
        let x = cx.vars().var("x").unwrap();
        assert_eq!(cx.defining_component(x), Some(0));
        assert!(cx.undefined_vars().is_empty());
    }

    #[test]
    fn undefined_vars_reported() {
        let mut a = Alphabet::from_chars("ab");
        let (comps, mut vt) = parse_conjunctive(&["ab", "ba"], &mut a).unwrap();
        let z = vt.intern("z");
        let mut comps = comps;
        comps[0] = Xregex::concat(vec![comps[0].clone(), Xregex::VarRef(z)]);
        comps[1] = Xregex::concat(vec![comps[1].clone(), Xregex::VarRef(z)]);
        let cx = ConjunctiveXregex::new(comps, vt).unwrap();
        assert_eq!(cx.undefined_vars(), vec![z]);
    }

    #[test]
    fn cyclic_rejected() {
        let mut a = Alphabet::from_chars("ab");
        let (comps, vt) = parse_conjunctive(&["x{y}a", "y{x}b"], &mut a).unwrap();
        assert!(matches!(
            ConjunctiveXregex::new(comps, vt),
            Err(ConjunctiveError::Cyclic)
        ));
    }

    #[test]
    fn size_and_dim() {
        let cx = conj(&["x{a}b", "x"]).unwrap();
        assert_eq!(cx.dim(), 2);
        assert_eq!(cx.size(), 5); // concat(1)+def(1)+a(1)+b(1) + ref(1)
    }
}
