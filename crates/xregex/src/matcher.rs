//! Backtracking membership oracles for xregex and conjunctive xregex.
//!
//! This module is the *executable semantics* of the paper: a direct
//! implementation of "does `w` match `α` with some witness ref-word and
//! variable mapping" (§3) and of conjunctive matches (§3.1), including
//!
//! - the rule that a variable whose definitions are present in a component
//!   but not instantiated by the witness ref-word has image ε, and
//! - the rule that a variable with *no* definition in any component ranges
//!   freely over Σ* (the `⟨γ⟩int` dummy-definition semantics), which is how
//!   CXRPQ expresses multi-path equality;
//! - optional image-size bounds (`L^{≤k}`, §6) and pinned variable mappings
//!   (`L^{v̄}`, §6.1).
//!
//! Matching xregex is NP-hard (§8), so this is exponential-time backtracking
//! with a fuel limit — it is the *oracle* the polynomial machinery is tested
//! against, not the evaluation engine.

use crate::ast::{Var, Xregex};
use cxrpq_graph::Symbol;
use std::collections::BTreeMap;
use std::fmt;

/// The backtracking oracle ran out of fuel before finding a match or
/// exhausting the search space. Returned instead of an unsound "no match":
/// the instance was too large for the oracle, not a non-member.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FuelExhausted;

impl fmt::Display for FuelExhausted {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "match oracle fuel exhausted — instance too large")
    }
}

impl std::error::Error for FuelExhausted {}

/// Configuration for the match oracles.
#[derive(Clone, Debug)]
pub struct MatchConfig {
    /// `L^{≤k}` image bound: every variable image must have length ≤ k.
    pub image_bound: Option<usize>,
    /// Pinned variable images (the `v̄` of `L^{v̄}`); unmentioned variables
    /// are free. Pinned values are exempt from `image_bound`.
    pub pinned: BTreeMap<Var, Vec<Symbol>>,
    /// Backtracking fuel. The oracle reports [`FuelExhausted`] when it runs
    /// out rather than returning an unsound "no match".
    pub max_steps: u64,
}

impl Default for MatchConfig {
    fn default() -> Self {
        Self {
            image_bound: None,
            pinned: BTreeMap::new(),
            max_steps: 20_000_000,
        }
    }
}

impl MatchConfig {
    /// Oracle for `L^{≤k}`.
    pub fn bounded(k: usize) -> Self {
        Self {
            image_bound: Some(k),
            ..Self::default()
        }
    }

    /// Oracle for `L^{v̄}`.
    pub fn pinned(pinned: BTreeMap<Var, Vec<Symbol>>) -> Self {
        Self {
            pinned,
            ..Self::default()
        }
    }
}

enum Trail {
    Env(u32),
    Inst(u32),
}

struct Ctx {
    env: Vec<Option<Vec<Symbol>>>,
    inst: Vec<bool>,
    trail: Vec<Trail>,
    bound: Option<usize>,
    steps: u64,
    max_steps: u64,
    exhausted: bool,
}

impl Ctx {
    fn new(nvars: usize, cfg: &MatchConfig) -> Self {
        let mut env = vec![None; nvars];
        for (&v, val) in &cfg.pinned {
            env[v.index()] = Some(val.clone());
        }
        Self {
            env,
            inst: vec![false; nvars],
            trail: Vec::new(),
            bound: cfg.image_bound,
            steps: 0,
            max_steps: cfg.max_steps,
            exhausted: false,
        }
    }

    fn mark(&self) -> usize {
        self.trail.len()
    }

    fn set_env(&mut self, x: Var, v: Vec<Symbol>) {
        debug_assert!(self.env[x.index()].is_none());
        self.env[x.index()] = Some(v);
        self.trail.push(Trail::Env(x.0));
    }

    fn set_inst(&mut self, x: Var) {
        debug_assert!(!self.inst[x.index()]);
        self.inst[x.index()] = true;
        self.trail.push(Trail::Inst(x.0));
    }

    fn undo(&mut self, to: usize) {
        while self.trail.len() > to {
            match self.trail.pop().unwrap() {
                Trail::Env(i) => self.env[i as usize] = None,
                Trail::Inst(i) => self.inst[i as usize] = false,
            }
        }
    }

    fn vmap(&self) -> BTreeMap<Var, Vec<Symbol>> {
        self.env
            .iter()
            .enumerate()
            .map(|(i, v)| (Var(i as u32), v.clone().unwrap_or_default()))
            .collect()
    }
}

type Cont<'a> = &'a mut dyn FnMut(usize, &mut Ctx) -> bool;

/// Matches `r` against `w[i..]`, invoking `k` at every reachable end
/// position. Invariant: on a `false` return, the binding trail is restored
/// to its state at entry (and likewise for `k`).
fn mx(r: &Xregex, w: &[Symbol], i: usize, cx: &mut Ctx, k: Cont) -> bool {
    cx.steps += 1;
    if cx.steps > cx.max_steps {
        cx.exhausted = true;
        return false;
    }
    match r {
        Xregex::Empty => false,
        Xregex::Epsilon => k(i, cx),
        Xregex::Sym(a) => i < w.len() && w[i] == *a && k(i + 1, cx),
        Xregex::Any => i < w.len() && k(i + 1, cx),
        Xregex::Concat(ps) => seq(ps, w, i, cx, k),
        Xregex::Alt(ps) => {
            for p in ps {
                if mx(p, w, i, cx, &mut *k) {
                    return true;
                }
            }
            false
        }
        Xregex::Plus(body) => plus_m(body, w, i, cx, k),
        Xregex::Star(body) => {
            if k(i, cx) {
                return true;
            }
            plus_m(body, w, i, cx, k)
        }
        Xregex::VarRef(x) => {
            match cx.env[x.index()].clone() {
                Some(v) => {
                    if w[i..].starts_with(&v) {
                        k(i + v.len(), cx)
                    } else {
                        false
                    }
                }
                None => {
                    // Guess the image: any prefix of the remaining input,
                    // shortest first, respecting the image bound.
                    let max_l = (w.len() - i).min(cx.bound.unwrap_or(usize::MAX));
                    for l in 0..=max_l {
                        let t0 = cx.mark();
                        cx.set_env(*x, w[i..i + l].to_vec());
                        if k(i + l, cx) {
                            return true;
                        }
                        cx.undo(t0);
                    }
                    false
                }
            }
        }
        Xregex::VarDef(x, body) => {
            let start = i;
            let xv = *x;
            mx(body, w, i, cx, &mut |j, cx| {
                let image = &w[start..j];
                if let Some(b) = cx.bound {
                    if image.len() > b {
                        return false;
                    }
                }
                if cx.inst[xv.index()] {
                    // A second instantiation: only reachable on
                    // non-sequential input; reject the parse.
                    return false;
                }
                let t0 = cx.mark();
                match &cx.env[xv.index()] {
                    Some(v) if v.as_slice() == image => {}
                    Some(_) => return false,
                    None => cx.set_env(xv, image.to_vec()),
                }
                cx.set_inst(xv);
                if k(j, cx) {
                    true
                } else {
                    cx.undo(t0);
                    false
                }
            })
        }
    }
}

fn seq(parts: &[Xregex], w: &[Symbol], i: usize, cx: &mut Ctx, k: Cont) -> bool {
    match parts.split_first() {
        None => k(i, cx),
        Some((first, rest)) => mx(first, w, i, cx, &mut |j, cx| seq(rest, w, j, cx, &mut *k)),
    }
}

fn plus_m(body: &Xregex, w: &[Symbol], i: usize, cx: &mut Ctx, k: Cont) -> bool {
    let t0 = cx.mark();
    mx(body, w, i, cx, &mut |j, cx| {
        if k(j, cx) {
            return true;
        }
        // ε-progress guard: a further iteration from the same position with
        // no new bindings cannot produce anything new.
        if j == i && cx.trail.len() == t0 {
            return false;
        }
        plus_m(body, w, j, cx, &mut *k)
    })
}

fn finalize_uninstantiated(vars: &[Var], cx: &mut Ctx, t0: usize) -> bool {
    for &x in vars {
        if !cx.inst[x.index()] {
            match &cx.env[x.index()] {
                Some(v) if !v.is_empty() => {
                    cx.undo(t0);
                    return false;
                }
                Some(_) => {}
                None => cx.set_env(x, Vec::new()),
            }
        }
    }
    true
}

/// Membership oracle for the (1-dimensional) xregex semantics of §3:
/// `w ∈ L(α)` (or `L^{≤k}`/`L^{v̄}` per `cfg`). Returns a witnessing variable
/// mapping, or [`FuelExhausted`] if the fuel budget ran out before the
/// search space was covered (a definitive "no match" needs full coverage).
///
/// References of variables that end up without an instantiated definition
/// deref to ε (Definition 2, step 1) — this differs from the 1-dimensional
/// *conjunctive* semantics, where never-defined variables range over Σ*.
pub fn match_single(
    r: &Xregex,
    w: &[Symbol],
    nvars: usize,
    cfg: &MatchConfig,
) -> Result<Option<BTreeMap<Var, Vec<Symbol>>>, FuelExhausted> {
    let mut cx = Ctx::new(nvars, cfg);
    let all_vars: Vec<Var> = (0..nvars as u32).map(Var).collect();
    let mut result = None;
    let found = mx(r, w, 0, &mut cx, &mut |i, cx| {
        if i != w.len() {
            return false;
        }
        let t0 = cx.mark();
        if !finalize_uninstantiated(&all_vars, cx, t0) {
            return false;
        }
        result = Some(cx.vmap());
        true
    });
    if !found && cx.exhausted {
        return Err(FuelExhausted);
    }
    Ok(result)
}

/// Conjunctive-match oracle (§3.1): is `w̄ ∈ L(ᾱ)`, and if so with which
/// shared variable mapping ψ? [`FuelExhausted`] means the fuel budget ran
/// out before the search space was covered.
///
/// `components`/`words` must have the same length; `nvars` is the size of
/// the shared variable table. Semantics faithfully implemented:
///
/// - all components share one variable mapping ψ;
/// - a variable whose definitions live in component i but are not
///   instantiated by the chosen ref-word of component i has ψ(x) = ε;
/// - a variable with no definition anywhere is unconstrained (`x{Σ*}` dummy
///   definitions of `⟨·⟩int`).
pub fn conjunctive_match(
    components: &[Xregex],
    words: &[Vec<Symbol>],
    nvars: usize,
    cfg: &MatchConfig,
) -> Result<Option<BTreeMap<Var, Vec<Symbol>>>, FuelExhausted> {
    assert_eq!(components.len(), words.len(), "dimension mismatch");
    let defs_in: Vec<Vec<Var>> = components
        .iter()
        .map(|c| c.defined_vars().into_iter().collect())
        .collect();
    let mut cx = Ctx::new(nvars, cfg);
    let mut result = None;
    let found = comp_rec(components, words, &defs_in, 0, &mut cx, &mut result);
    if !found && cx.exhausted {
        return Err(FuelExhausted);
    }
    Ok(result)
}

fn comp_rec(
    comps: &[Xregex],
    words: &[Vec<Symbol>],
    defs_in: &[Vec<Var>],
    idx: usize,
    cx: &mut Ctx,
    result: &mut Option<BTreeMap<Var, Vec<Symbol>>>,
) -> bool {
    if idx == comps.len() {
        *result = Some(cx.vmap());
        return true;
    }
    let w = &words[idx];
    mx(&comps[idx], w, 0, cx, &mut |i, cx| {
        if i != w.len() {
            return false;
        }
        // Variables defined (syntactically) in this component but not
        // instantiated by this parse must map to ε.
        let t0 = cx.mark();
        if !finalize_uninstantiated(&defs_in[idx], cx, t0) {
            return false;
        }
        if comp_rec(comps, words, defs_in, idx + 1, cx, result) {
            true
        } else {
            cx.undo(t0);
            false
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_conjunctive, parse_xregex};
    use cxrpq_graph::Alphabet;

    fn single(pattern: &str, word: &str) -> Option<BTreeMap<Var, Vec<Symbol>>> {
        single_cfg(pattern, word, &MatchConfig::default())
    }

    fn single_cfg(
        pattern: &str,
        word: &str,
        cfg: &MatchConfig,
    ) -> Option<BTreeMap<Var, Vec<Symbol>>> {
        let mut a = Alphabet::from_chars("abcd#");
        let (r, vt) = parse_xregex(pattern, &mut a).unwrap();
        let w = a.parse_word(word).unwrap();
        match_single(&r, &w, vt.len(), cfg).unwrap()
    }

    #[test]
    fn backreference_equality() {
        // x{(a|b)+} c x — both halves must be equal.
        assert!(single("x{(a|b)+}cx", "abcab").is_some());
        assert!(single("x{(a|b)+}cx", "abcba").is_none());
        assert!(single("x{(a|b)+}cx", "c").is_none()); // + forbids ε
    }

    #[test]
    fn vmap_is_reported() {
        let mut a = Alphabet::from_chars("abc");
        let (r, vt) = parse_xregex("x{a+}bx", &mut a).unwrap();
        let w = a.parse_word("aabaa").unwrap();
        let vmap = match_single(&r, &w, vt.len(), &MatchConfig::default())
            .unwrap()
            .unwrap();
        let x = vt.var("x").unwrap();
        assert_eq!(vmap[&x], a.parse_word("aa").unwrap());
    }

    #[test]
    fn star_of_reference() {
        // The paper's α_ni shape: #z{(a|b)*}(##z)*###
        let p = "#z{(a|b)*}(##z)*###";
        assert!(single(p, "#ab###").is_some());
        assert!(single(p, "#ab##ab##ab###").is_some());
        assert!(single(p, "#ab##ba###").is_none());
        assert!(single(p, "####").is_some()); // z = ε
    }

    #[test]
    fn uninstantiated_definition_forces_epsilon() {
        // (x{a}|b) x : choosing branch b leaves x uninstantiated => x = ε.
        let p = "(x{a}|b)x";
        assert!(single(p, "aa").is_some());
        assert!(single(p, "b").is_some());
        assert!(
            single(p, "ba").is_none(),
            "x must be ε when not instantiated"
        );
    }

    #[test]
    fn reference_before_definition() {
        // A reference textually before its definition still sees the image.
        let p = "x c x{a+}";
        assert!(single(p, "acaa").is_none()); // images differ (a vs aa)
        assert!(single(p, "aca").is_some());
        assert!(single(p, "aacaa").is_some());
    }

    #[test]
    fn single_semantics_undefined_vars_are_epsilon() {
        // α = x (a lone reference, never defined): L(α) = {ε}.
        let mut a = Alphabet::from_chars("ab");
        let (r, vt) = parse_xregex_decl("x", &["x"], &mut a);
        assert!(match_single(&r, &[], vt.len(), &MatchConfig::default())
            .unwrap()
            .is_some());
        let w = a.parse_word("a").unwrap();
        assert!(match_single(&r, &w, vt.len(), &MatchConfig::default())
            .unwrap()
            .is_none());
    }

    fn parse_xregex_decl(
        s: &str,
        vars: &[&str],
        a: &mut Alphabet,
    ) -> (Xregex, crate::ast::VarTable) {
        crate::parser::parse_xregex_with_vars(s, vars, a).unwrap()
    }

    #[test]
    fn image_bound_enforced() {
        let p = "x{a+}bx";
        assert!(single_cfg(p, "aabaa", &MatchConfig::bounded(2)).is_some());
        assert!(single_cfg(p, "aaabaaa", &MatchConfig::bounded(2)).is_none());
        assert!(single_cfg(p, "aaabaaa", &MatchConfig::bounded(3)).is_some());
    }

    #[test]
    fn pinned_mapping() {
        let mut a = Alphabet::from_chars("ab");
        let (r, vt) = parse_xregex("x{(a|b)+}x", &mut a).unwrap();
        let x = vt.var("x").unwrap();
        let w = a.parse_word("abab").unwrap();
        // Pin x = ab: match.
        let cfg = MatchConfig::pinned(BTreeMap::from([(x, a.parse_word("ab").unwrap())]));
        assert!(match_single(&r, &w, vt.len(), &cfg).unwrap().is_some());
        // Pin x = ba: no match.
        let cfg2 = MatchConfig::pinned(BTreeMap::from([(x, a.parse_word("ba").unwrap())]));
        assert!(match_single(&r, &w, vt.len(), &cfg2).unwrap().is_none());
    }

    #[test]
    fn example_2_from_paper() {
        // α = a*x1{a* x2{(a|b)*} b*a*} x2*(a|b)* x1 over {a,b};
        // w = a^4 (ba)^2 (ab)^3 (ba)^3 a ∈ L(α)  (Example 2).
        let mut a = Alphabet::from_chars("ab");
        let (r, vt) = parse_xregex("a*x1{a*x2{(a|b)*}b*a*}x2*(a|b)*x1", &mut a).unwrap();
        let w = a
            .parse_word(&format!("{}{}{}{}a", "aaaa", "baba", "ababab", "bababa"))
            .unwrap();
        assert!(match_single(&r, &w, vt.len(), &MatchConfig::default())
            .unwrap()
            .is_some());
    }

    #[test]
    fn example_2_gamma_from_paper() {
        // γ = x1{c*(x2{a*}|x3{b*})} c x2 c x3 b x1 matches c²a²ca²cbc²a²
        // with vmap (c²a², a², ε).
        let mut a = Alphabet::from_chars("abc");
        let (r, vt) = parse_xregex("x1{c*(x2{a*}|x3{b*})}cx2cx3bx1", &mut a).unwrap();
        let w = a.parse_word("ccaacaacbccaa").unwrap();
        let vmap = match_single(&r, &w, vt.len(), &MatchConfig::default())
            .unwrap()
            .unwrap();
        assert_eq!(vmap[&vt.var("x1").unwrap()], a.parse_word("ccaa").unwrap());
        assert_eq!(vmap[&vt.var("x2").unwrap()], a.parse_word("aa").unwrap());
        assert_eq!(vmap[&vt.var("x3").unwrap()], Vec::<Symbol>::new());
    }

    #[test]
    fn conjunctive_shared_variables() {
        // γ1 = (x{a*}|b*) y, γ2 = y{xaxb} b y* — §3.1's worked example.
        let mut a = Alphabet::from_chars("ab#");
        let (comps, vt) = parse_conjunctive(&["(x{a*}|b*)y", "y{xaxb}by*"], &mut a).unwrap();
        // (aa·a⁵b, a⁵bb(a⁵b)²) with x = aa, y = a⁵b... the paper's example:
        // w1 = aa a^5 b? Actually w1 = x-image + y-image = aa·a⁵b.
        let w1 = a.parse_word("aaaaaaab").unwrap(); // aa · a⁵b
        let w2 = a.parse_word("aaaaabbaaaaabaaaaab").unwrap(); // (a⁵b) b (a⁵b)(a⁵b)
        let vmap = conjunctive_match(&comps, &[w1, w2], vt.len(), &MatchConfig::default()).unwrap();
        // y{xaxb} with x = aa gives y = aaaaab = a⁵b... wait: x a x b = aa·a·aa·b = a⁵b. ✓
        let vmap = vmap.expect("conjunctive match should exist");
        assert_eq!(vmap[&vt.var("x").unwrap()], a.parse_word("aa").unwrap());
        assert_eq!(vmap[&vt.var("y").unwrap()], a.parse_word("aaaaab").unwrap());
    }

    #[test]
    fn conjunctive_rejects_inconsistent_mapping() {
        // From §3.1: (a#aa, a#a³bba³b) is NOT a conjunctive match for
        // ((x{a*}|b*)y, y{xaxb}by*) because the y images differ.
        let mut a = Alphabet::from_chars("ab#");
        let (comps, vt) = parse_conjunctive(&["(x{a*}|b*)y", "y{xaxb}by*"], &mut a).unwrap();
        let w1 = a.parse_word("aa").unwrap(); // x = a, y = a would need w1 = a·a
        let w2 = a.parse_word("aabbaab").unwrap(); // y = aab = x a x b with x = a
                                                   // w1 = aa: x-branch gives x-image a then y must be a; but y = aab. Fail.
        assert!(
            conjunctive_match(&comps, &[w1, w2], vt.len(), &MatchConfig::default())
                .unwrap()
                .is_none()
        );
    }

    #[test]
    fn conjunctive_undefined_variable_is_equality() {
        // Two components that are just references of z (never defined):
        // matches iff the words are equal (Σ* dummy definitions).
        let mut a = Alphabet::from_chars("ab");
        let (mut comps, mut vt) = parse_conjunctive(&["z{a}", "z"], &mut a).unwrap();
        // Rebuild: replace component 0 by a bare reference too.
        let z = vt.var("z").unwrap();
        comps[0] = Xregex::VarRef(z);
        let w1 = a.parse_word("abab").unwrap();
        let w2 = a.parse_word("abab").unwrap();
        let w3 = a.parse_word("abba").unwrap();
        assert!(
            conjunctive_match(&comps, &[w1.clone(), w2], vt.len(), &MatchConfig::default())
                .unwrap()
                .is_some()
        );
        assert!(
            conjunctive_match(&comps, &[w1, w3], vt.len(), &MatchConfig::default())
                .unwrap()
                .is_none()
        );
        let _ = &mut vt;
    }

    #[test]
    fn conjunctive_example_3_negative_and_positive() {
        // Example 3: (w1, w2, w3) = (aab, bbacbc, aa) is NOT a conjunctive
        // match for (α1, α2, α3); (abb, abccbcc, ababaaab) IS, with
        // ψ = (ab, ab, cc).
        let mut a = Alphabet::from_chars("abc");
        let (comps, vt) =
            parse_conjunctive(&["x2{x1|a*}b", "x1{(a|b)*}x3{c*}bx3", "x2*a*x1"], &mut a).unwrap();
        let neg = [
            a.parse_word("aab").unwrap(),
            a.parse_word("bbacbc").unwrap(),
            a.parse_word("aa").unwrap(),
        ];
        assert!(
            conjunctive_match(&comps, &neg, vt.len(), &MatchConfig::default())
                .unwrap()
                .is_none()
        );
        let pos = [
            a.parse_word("abb").unwrap(),
            a.parse_word("abccbcc").unwrap(),
            a.parse_word("ababaaab").unwrap(),
        ];
        let vmap = conjunctive_match(&comps, &pos, vt.len(), &MatchConfig::default())
            .unwrap()
            .unwrap();
        assert_eq!(vmap[&vt.var("x1").unwrap()], a.parse_word("ab").unwrap());
        assert_eq!(vmap[&vt.var("x2").unwrap()], a.parse_word("ab").unwrap());
        assert_eq!(vmap[&vt.var("x3").unwrap()], a.parse_word("cc").unwrap());
    }

    #[test]
    fn classical_fragment_agrees_with_nfa() {
        use cxrpq_automata::Nfa;
        let mut a = Alphabet::from_chars("ab");
        let (r, vt) = parse_xregex("(a|bb)*a", &mut a).unwrap();
        let nfa = Nfa::from_regex(&r.to_regex().unwrap());
        for n in 0..=4usize {
            for mask in 0..(1u32 << n) {
                let w: Vec<Symbol> = (0..n).map(|i| Symbol((mask >> i) & 1)).collect();
                assert_eq!(
                    match_single(&r, &w, vt.len(), &MatchConfig::default())
                        .unwrap()
                        .is_some(),
                    nfa.accepts(&w),
                    "mismatch on {w:?}"
                );
            }
        }
    }
}
