//! Property tests for the xregex semantics stack: ref-word sampling,
//! deref, the matcher oracles and the Lemma 10 specialization.

use cxrpq_automata::Nfa;
use cxrpq_graph::{Alphabet, Symbol};
use cxrpq_xregex::matcher::{match_single, MatchConfig};
use cxrpq_xregex::sample::{sample_ref_word, sample_word, SampleConfig};
use cxrpq_xregex::specialize::{specialize, VarMapping};
use cxrpq_xregex::{parse_conjunctive, parse_xregex, ConjunctiveXregex};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

const CASES: u32 = if cfg!(debug_assertions) { 12 } else { 64 };

/// A fixed zoo of valid xregex exercising every construct.
const PATTERNS: &[&str] = &[
    "x{(a|b)+}cx",
    "(x{a}|b)x",
    "#z{(a|b)*}(##z)*###",
    "y{x{ab}x*}y",
    "a*x1{a*x2{(a|b)*}b*a*}x2*(a|b)*x1",
    "x{a*}(b|x)c*",
    "z{a|bb}(a|z)z",
];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(CASES))]

    /// Sampling from L_ref(α), deref-ing, and re-matching must succeed —
    /// sampler and matcher implement the same semantics from opposite ends.
    #[test]
    fn sampled_words_always_match(pat_idx in 0usize..PATTERNS.len(), seed in 0u64..10_000) {
        let mut alpha = Alphabet::from_chars("ab#c");
        let (r, vt) = parse_xregex(PATTERNS[pat_idx], &mut alpha).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SampleConfig { rep_continue: 0.4, max_reps: 3, free_image_max: 2 };
        if let Some(w) = sample_word(&r, alpha.len(), &cfg, &mut rng) {
            prop_assert!(
                match_single(&r, &w, vt.len(), &MatchConfig::default()).unwrap().is_some(),
                "sampled word {:?} rejected for {}",
                alpha.render_word(&w),
                PATTERNS[pat_idx]
            );
        }
    }

    /// The vmap reported by the matcher is itself a valid pinned mapping.
    #[test]
    fn matcher_vmap_is_self_consistent(pat_idx in 0usize..PATTERNS.len(), seed in 0u64..10_000) {
        let mut alpha = Alphabet::from_chars("ab#c");
        let (r, vt) = parse_xregex(PATTERNS[pat_idx], &mut alpha).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SampleConfig { rep_continue: 0.4, max_reps: 2, free_image_max: 2 };
        if let Some(w) = sample_word(&r, alpha.len(), &cfg, &mut rng) {
            if let Some(vmap) = match_single(&r, &w, vt.len(), &MatchConfig::default()).unwrap() {
                let pinned = MatchConfig::pinned(vmap);
                prop_assert!(match_single(&r, &w, vt.len(), &pinned).unwrap().is_some());
            }
        }
    }

    /// Ref-word sampling produces structurally valid ref-words whose deref
    /// matches the sampled word (closure of Definition 1/2).
    #[test]
    fn ref_words_deref_consistently(pat_idx in 0usize..PATTERNS.len(), seed in 0u64..10_000) {
        let mut alpha = Alphabet::from_chars("ab#c");
        let (r, vt) = parse_xregex(PATTERNS[pat_idx], &mut alpha).unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = SampleConfig { rep_continue: 0.4, max_reps: 2, free_image_max: 2 };
        if let Some(rw) = sample_ref_word(&r, alpha.len(), &cfg, &mut rng) {
            let (word, vmap) = rw.deref();
            // The deref word matches α with the deref variable mapping
            // pinned (restricted to defined variables).
            let psi: std::collections::BTreeMap<_, _> = vmap.into_iter().collect();
            let pinned = MatchConfig::pinned(psi);
            prop_assert!(match_single(&r, &word, vt.len(), &pinned).unwrap().is_some());
        }
        let _ = vt;
    }
}

/// Lemma 10 exhaustively on a small conjunctive xregex: for every mapping
/// with images up to length 2 and every word pair up to length 3, the
/// specialized regexes agree with the pinned conjunctive oracle.
#[test]
fn specialization_exhaustive_small() {
    let mut alpha = Alphabet::from_chars("ab");
    let (comps, vt) = parse_conjunctive(&["(x{a+}|b)y", "y{x|bb}a"], &mut alpha).unwrap();
    let cx = ConjunctiveXregex::new(comps, vt).unwrap();
    let x = cx.vars().var("x").unwrap();
    let y = cx.vars().var("y").unwrap();
    let words = |n: usize| -> Vec<Vec<Symbol>> {
        (0..=n)
            .flat_map(|len| {
                (0..(1u32 << len)).map(move |mask| {
                    (0..len)
                        .map(|i| Symbol((mask >> i) & 1))
                        .collect::<Vec<_>>()
                })
            })
            .collect()
    };
    for ix in words(2) {
        for iy in words(2) {
            let psi: VarMapping = [(x, ix.clone()), (y, iy.clone())].into_iter().collect();
            let beta = specialize(&cx, &psi);
            let nfas: Option<Vec<Nfa>> = beta.map(|b| b.iter().map(Nfa::from_regex).collect());
            for w1 in words(3) {
                for w2 in words(3) {
                    let via_beta = nfas
                        .as_ref()
                        .map(|m| m[0].accepts(&w1) && m[1].accepts(&w2))
                        .unwrap_or(false);
                    let via_oracle = cx
                        .is_match(&[w1.clone(), w2.clone()], &MatchConfig::pinned(psi.clone()))
                        .unwrap()
                        .is_some();
                    assert_eq!(
                        via_beta, via_oracle,
                        "ψ=({ix:?},{iy:?}) words=({w1:?},{w2:?})"
                    );
                }
            }
        }
    }
}
