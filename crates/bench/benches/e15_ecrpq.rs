//! Criterion bench for E15 (§1.3, Lemma 12): ECRPQ evaluation — the
//! Figure 6 equal-length query on growing two-path databases, and an
//! `ECRPQ^er` against its `CXRPQ^{vsf,fl}` translation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxrpq_automata::parse_regex;
use cxrpq_core::translate::ecrpq_er_to_cxrpq;
use cxrpq_core::Ecrpq;
use cxrpq_core::{EcrpqEvaluator, GraphPattern, RegularRelation, VsfEvaluator};
use cxrpq_graph::Alphabet;
use cxrpq_workloads::graphs::d_anbm;
use cxrpq_workloads::witnesses::q_anbn;
use std::sync::Arc;
use std::time::Duration;

fn er_query(alpha: &mut Alphabet) -> Ecrpq {
    let mut pattern = GraphPattern::new();
    let x = pattern.node("x");
    let y = pattern.node("y");
    let u = pattern.node("u");
    let v = pattern.node("v");
    let r1 = parse_regex("a*b", alpha).unwrap();
    let r2 = parse_regex("a+b*", alpha).unwrap();
    pattern.add_edge(x, r1, y);
    pattern.add_edge(u, r2, v);
    Ecrpq::new(
        pattern,
        vec![(RegularRelation::equality(2), vec![0, 1])],
        vec![],
    )
    .unwrap()
}

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e15_ecrpq");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    // (a) Figure 6 equal-length query, growing n.
    let mut alpha = Alphabet::from_chars("abcd");
    let q6 = q_anbn(&mut alpha);
    for n in [8usize, 16, 32] {
        let (db, _, _) = d_anbm(n, n);
        group.bench_with_input(BenchmarkId::new("q_anbn", db.size()), &db, |b, db| {
            let ev = EcrpqEvaluator::new(&q6);
            b.iter(|| std::hint::black_box(ev.boolean(db)));
        });
    }
    // (b) ECRPQ^er direct vs its Lemma 12 translation.
    let alpha2 = Arc::new(Alphabet::from_chars("ab"));
    let mut db = cxrpq_graph::GraphBuilder::new(alpha2);
    for w in ["aab", "aab", "abb", "ab", "b", "aaab"] {
        let s = db.add_node();
        let t = db.add_node();
        let word = db.alphabet().parse_word(w).unwrap();
        db.add_word_path(s, &word, t);
    }
    let mut a3 = db.alphabet().clone();
    let db = db.freeze();
    let qer = er_query(&mut a3);
    let translated = ecrpq_er_to_cxrpq(&qer).unwrap();
    group.bench_function("er_direct", |b| {
        let ev = EcrpqEvaluator::new(&qer);
        b.iter(|| std::hint::black_box(ev.boolean(&db)));
    });
    group.bench_function("er_via_cxrpq_vsf_fl", |b| {
        let ev = VsfEvaluator::new(&translated).unwrap();
        b.iter(|| std::hint::black_box(ev.boolean(&db)));
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
