//! Criterion bench for E1 (Figure 1): the four genealogy CRPQs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxrpq_core::CrpqEvaluator;
use cxrpq_workloads::genealogy;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let g = genealogy::generate(6, 8, 0.7, 42);
    let mut alpha = g.db.alphabet().clone();
    let queries = [
        ("g1", genealogy::fig1_g1(&mut alpha)),
        ("g2", genealogy::fig1_g2(&mut alpha)),
        ("g3", genealogy::fig1_g3(&mut alpha)),
        ("g4", genealogy::fig1_g4(&mut alpha)),
    ];
    let mut group = c.benchmark_group("e1_fig1_genealogy");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for (name, q) in &queries {
        group.bench_with_input(BenchmarkId::from_parameter(name), q, |b, q| {
            let ev = CrpqEvaluator::new(q);
            b.iter(|| std::hint::black_box(ev.answers(&g.db).len()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
