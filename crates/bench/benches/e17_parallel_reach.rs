//! E17: batched multi-source + parallel frontier product reachability.
//!
//! Two questions, on the four e16 shapes (line, grid, random, label-dense)
//! plus one deliberately large random shape:
//!
//! 1. **Batching** — a candidate sweep over `k` sources of one automaton:
//!    `k` independent [`reach_set_scratch`] walks (the per-source path the
//!    solver used before this bench's PR) vs ONE [`reach_all`] wavefront
//!    with 64-source membership stripes. Both run single-threaded, so the
//!    ratio isolates the algorithmic batching win.
//! 2. **Parallel frontiers** — [`reach_all_with`] and the sharded
//!    [`SyncSearch`] pinned to 1 thread vs all available cores on the
//!    largest shape (levels below the serial threshold never shard, so
//!    only genuinely fat frontiers engage the workers).
//!
//! Each measurement is preceded by an equality assertion (batched =
//! per-source, N-thread = 1-thread), and the single-source `reach_set`
//! numbers of the e16 shapes are re-recorded as a regression anchor against
//! `BENCH_reach.json`'s `reach_csr_ms`.
//!
//! Run: `cargo bench -p cxrpq-bench --bench e17_parallel_reach` (add
//! `-- --fast` for the CI smoke configuration). Full runs record
//! `BENCH_parallel.json` at the workspace root; override the path (and
//! enable recording in fast mode) with `BENCH_PARALLEL_OUT`.

use cxrpq_automata::{parse_regex, Nfa};
use cxrpq_bench::scoped_spawn_sharded;
use cxrpq_core::frontier::{expand_sharded, FrontierConfig};
use cxrpq_core::reach::{reach_all_with, reach_set, reach_set_scratch, Direction, ReachScratch};
use cxrpq_core::sync::{SyncSearch, SyncSpec};
use cxrpq_core::WorkerPool;
use cxrpq_graph::{Alphabet, GraphDb, NodeId, Symbol};
use cxrpq_workloads::graphs;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn median_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<Duration> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2].as_secs_f64() * 1e3
}

fn nfa_of(alpha: &Alphabet, pattern: &str) -> Nfa {
    let mut a = alpha.clone();
    Nfa::from_regex(&parse_regex(pattern, &mut a).unwrap())
}

/// Evenly spaced source sample of size ≤ `k`.
fn spread_sources(db: &GraphDb, k: usize) -> Vec<NodeId> {
    let n = db.node_count();
    let k = k.min(n).max(1);
    (0..k).map(|i| NodeId((i * n / k) as u32)).collect()
}

struct BatchResult {
    shape: &'static str,
    nodes: usize,
    edges: usize,
    sources: usize,
    per_source_ms: f64,
    batched_ms: f64,
    single_source_ms: f64,
}

/// Batched-vs-per-source on one shape (both single-threaded); also
/// re-anchors the single-source time for comparison with BENCH_reach.json.
fn run_batch_shape(
    shape: &'static str,
    db: &GraphDb,
    reach_nfa: &Nfa,
    anchor: NodeId,
    k: usize,
    iters: usize,
) -> BatchResult {
    let sources = spread_sources(db, k);
    let serial = FrontierConfig::serial();

    // Agreement first: the wavefront must reproduce every per-source set.
    let batched = reach_all_with(db, reach_nfa, &sources, Direction::Forward, None, &serial);
    let mut scratch = ReachScratch::default();
    for (i, &u) in sources.iter().enumerate() {
        let single = reach_set_scratch(db, reach_nfa, u, Direction::Forward, None, &mut scratch);
        assert_eq!(batched[i], single, "{shape}: source {i} mismatch");
    }

    let per_source_ms = median_ms(iters, || {
        let mut scratch = ReachScratch::default();
        for &u in &sources {
            std::hint::black_box(reach_set_scratch(
                db,
                reach_nfa,
                u,
                Direction::Forward,
                None,
                &mut scratch,
            ));
        }
    });
    let batched_ms = median_ms(iters, || {
        std::hint::black_box(reach_all_with(
            db,
            reach_nfa,
            &sources,
            Direction::Forward,
            None,
            &serial,
        ));
    });
    let single_source_ms = median_ms(iters, || {
        std::hint::black_box(reach_set(db, reach_nfa, anchor, Direction::Forward, None));
    });
    BatchResult {
        shape,
        nodes: db.node_count(),
        edges: db.edge_count(),
        sources: sources.len(),
        per_source_ms,
        batched_ms,
        single_source_ms,
    }
}

struct ParallelResult {
    shape: &'static str,
    nodes: usize,
    edges: usize,
    threads: usize,
    reach_t1_ms: f64,
    reach_tn_ms: f64,
    sync_t1_ms: f64,
    sync_tn_ms: f64,
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let iters = if fast { 3 } else { 7 };
    let scale = if fast { 4 } else { 1 };
    let threads = FrontierConfig::auto().worker_count();
    let mut results = Vec::new();

    // The four e16 shapes, same constructions, for the batching question.
    {
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let n = 1200 / scale;
        let word: Vec<Symbol> = alpha.parse_word(&"ab".repeat(n)).unwrap();
        let (db, (s1, _), _) = graphs::two_paths(alpha, &word, &word);
        let reach_nfa = nfa_of(db.alphabet(), "(ab)*");
        results.push(run_batch_shape("line", &db, &reach_nfa, s1, 128, iters));
    }
    {
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let side = 28 / scale.min(2);
        let db = graphs::grid_labeled(alpha, side, side, 7);
        let reach_nfa = nfa_of(db.alphabet(), "(a|b)*a");
        results.push(run_batch_shape(
            "grid",
            &db,
            &reach_nfa,
            NodeId(0),
            128,
            iters,
        ));
    }
    {
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let n = 200 / scale.min(2);
        let db = graphs::random_labeled(alpha, n, 4 * n, 99);
        let reach_nfa = nfa_of(db.alphabet(), "a(a|b)*c");
        results.push(run_batch_shape(
            "random",
            &db,
            &reach_nfa,
            NodeId(0),
            128,
            iters,
        ));
    }
    {
        let alpha = Arc::new(Alphabet::from_chars("abcdefghijklmnop"));
        let n = 96 / scale.min(2);
        let db = graphs::random_labeled(alpha, n, 24 * n, 41);
        let reach_nfa = nfa_of(db.alphabet(), "(a|b)(a|b|c|d)*");
        results.push(run_batch_shape(
            "label-dense",
            &db,
            &reach_nfa,
            NodeId(0),
            96,
            iters,
        ));
    }

    // The largest shape: a random multigraph big enough that BFS levels
    // clear the serial threshold and the sharded expansion engages.
    let parallel_result = {
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let n = 30_000 / scale;
        let db = graphs::random_labeled(alpha, n, 6 * n, 1234);
        let reach_nfa = nfa_of(db.alphabet(), "(a|b)*c");
        let sources = spread_sources(&db, 64);
        let t1 = FrontierConfig::with_threads(1);
        let tn = FrontierConfig::with_threads(threads);

        let r1 = reach_all_with(&db, &reach_nfa, &sources, Direction::Forward, None, &t1);
        let rn = reach_all_with(&db, &reach_nfa, &sources, Direction::Forward, None, &tn);
        assert_eq!(r1, rn, "random-xl: thread count changed reach_all");
        let reach_t1_ms = median_ms(iters, || {
            std::hint::black_box(reach_all_with(
                &db,
                &reach_nfa,
                &sources,
                Direction::Forward,
                None,
                &t1,
            ));
        });
        let reach_tn_ms = median_ms(iters, || {
            std::hint::black_box(reach_all_with(
                &db,
                &reach_nfa,
                &sources,
                Direction::Forward,
                None,
                &tn,
            ));
        });

        // Synchronized search on the same database: two equality walkers
        // produce fat configuration levels.
        let def = nfa_of(db.alphabet(), "(a|b|c)(a|b|c)(a|b|c)(a|b|c)");
        let spec = SyncSpec::equality_group(Some(def), 2);
        let sync_t1_cfg = FrontierConfig::with_threads(1)
            .with_serial_threshold(FrontierConfig::SYNC_SERIAL_THRESHOLD);
        let sync_tn_cfg = FrontierConfig::with_threads(threads)
            .with_serial_threshold(FrontierConfig::SYNC_SERIAL_THRESHOLD);
        let starts = [sources[0], sources[1]];
        let s1 = SyncSearch::forward(&db, &spec)
            .with_config(sync_t1_cfg)
            .run(&starts, None, None);
        let sn = SyncSearch::forward(&db, &spec)
            .with_config(sync_tn_cfg)
            .run(&starts, None, None);
        assert_eq!(s1, sn, "random-xl: thread count changed SyncSearch");
        let sync_t1_ms = median_ms(iters, || {
            std::hint::black_box(
                SyncSearch::forward(&db, &spec)
                    .with_config(sync_t1_cfg)
                    .run(&starts, None, None),
            );
        });
        let sync_tn_ms = median_ms(iters, || {
            std::hint::black_box(
                SyncSearch::forward(&db, &spec)
                    .with_config(sync_tn_cfg)
                    .run(&starts, None, None),
            );
        });
        ParallelResult {
            shape: "random-xl",
            nodes: db.node_count(),
            edges: db.edge_count(),
            threads,
            reach_t1_ms,
            reach_tn_ms,
            sync_t1_ms,
            sync_tn_ms,
        }
    };

    // Dispatch A/B: the persistent pool's `expand_sharded` (what the
    // frontier engine calls per level since the pool PR) against the old
    // per-level scoped-spawn dispatch it replaced, on an identical
    // frontier-expansion workload. The old numbers in BENCH_parallel.json
    // history were measured through scoped spawns; this section keeps
    // both paths side by side.
    let dispatch = {
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let n = 8_000 / scale;
        let db = graphs::random_labeled(alpha, n, 6 * n, 77);
        let frontier: Vec<NodeId> = (0..db.node_count() as u32).map(NodeId).collect();
        let levels = if fast { 40 } else { 160 };
        let shards = threads.max(2);
        let pool = WorkerPool::global();
        let expand = |_: usize, slice: &[NodeId]| -> usize {
            slice.iter().map(|&u| db.out_edges(u).count()).sum()
        };
        let pooled: usize = expand_sharded(&frontier, shards, pool, expand)
            .into_iter()
            .sum();
        let scoped: usize = scoped_spawn_sharded(&frontier, shards, expand)
            .into_iter()
            .sum();
        assert_eq!(pooled, scoped, "dispatch paths disagree on the workload");
        let scoped_ms = median_ms(iters, || {
            for _ in 0..levels {
                std::hint::black_box(scoped_spawn_sharded(&frontier, shards, expand));
            }
        });
        let pool_ms = median_ms(iters, || {
            for _ in 0..levels {
                std::hint::black_box(expand_sharded(&frontier, shards, pool, expand));
            }
        });
        (levels, shards, scoped_ms, pool_ms)
    };

    // Report.
    println!(
        "{:<12} {:>7} {:>7} {:>5} | {:>11} {:>10} {:>7} | {:>10}",
        "shape", "nodes", "edges", "srcs", "per-source", "batched", "x", "1-source"
    );
    for r in &results {
        println!(
            "{:<12} {:>7} {:>7} {:>5} | {:>9.3}ms {:>8.3}ms {:>6.2}x | {:>8.4}ms",
            r.shape,
            r.nodes,
            r.edges,
            r.sources,
            r.per_source_ms,
            r.batched_ms,
            r.per_source_ms / r.batched_ms,
            r.single_source_ms,
        );
    }
    let p = &parallel_result;
    println!(
        "\n{} ({} nodes, {} edges), {} thread(s) detected:",
        p.shape, p.nodes, p.edges, p.threads
    );
    println!(
        "  reach_all  1t {:>9.3}ms  {}t {:>9.3}ms  {:>5.2}x",
        p.reach_t1_ms,
        p.threads,
        p.reach_tn_ms,
        p.reach_t1_ms / p.reach_tn_ms
    );
    println!(
        "  sync       1t {:>9.3}ms  {}t {:>9.3}ms  {:>5.2}x",
        p.sync_t1_ms,
        p.threads,
        p.sync_tn_ms,
        p.sync_t1_ms / p.sync_tn_ms
    );
    let (d_levels, d_shards, d_scoped_ms, d_pool_ms) = dispatch;
    println!(
        "\ndispatch ({d_levels} levels x {d_shards} shards):\n  \
         scoped spawns {d_scoped_ms:>9.3}ms\n  \
         worker pool   {d_pool_ms:>9.3}ms  {:>5.2}x",
        d_scoped_ms / d_pool_ms
    );
    if p.threads == 1 {
        println!();
        println!("  ============================= WARNING =============================");
        println!("  Only ONE worker thread was detected on this host. The \"parallel\"");
        println!("  numbers above are PLACEHOLDERS: both configurations ran the same");
        println!("  single-threaded code path, so the speedup column says nothing");
        println!("  about the frontier parallelism. Re-run on a multi-core host before");
        println!("  quoting any parallel figure from this bench or its JSON record.");
        println!("  ===================================================================");
    }

    // JSON record at the workspace root, same conventions as e16.
    let explicit = std::env::var("BENCH_PARALLEL_OUT").ok();
    if fast && explicit.is_none() {
        println!(
            "\nfast mode: BENCH_parallel.json not rewritten (set BENCH_PARALLEL_OUT to record)"
        );
        return;
    }
    let out_path = explicit
        .unwrap_or_else(|| format!("{}/../../BENCH_parallel.json", env!("CARGO_MANIFEST_DIR")));
    // Single-thread containers can't demonstrate parallel speedups; flag
    // the numbers as placeholders both at the top level and inside the
    // summary object, so consumers reading either stay honest.
    let placeholder = threads == 1;
    let mut json = String::from("{\n  \"bench\": \"e17_parallel_reach\",\n  \"mode\": ");
    json.push_str(if fast { "\"fast\"" } else { "\"full\"" });
    json.push_str(&format!(
        ",\n  \"threads_detected\": {threads},\n  \"parallel_numbers_are_placeholder\": {placeholder},\n  \"shapes\": [\n",
    ));
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shape\": \"{}\", \"nodes\": {}, \"edges\": {}, \"sources\": {}, \
             \"per_source_ms\": {:.4}, \"batched_ms\": {:.4}, \"batched_speedup\": {:.2}, \
             \"single_source_ms\": {:.4}}}{}\n",
            r.shape,
            r.nodes,
            r.edges,
            r.sources,
            r.per_source_ms,
            r.batched_ms,
            r.per_source_ms / r.batched_ms,
            r.single_source_ms,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str(&format!(
        "  ],\n  \"dispatch\": {{\"levels\": {}, \"shards\": {}, \"scoped_spawn_ms\": {:.4}, \
         \"pool_ms\": {:.4}, \"pool_speedup\": {:.2}}},\n",
        d_levels,
        d_shards,
        d_scoped_ms,
        d_pool_ms,
        d_scoped_ms / d_pool_ms,
    ));
    json.push_str(&format!(
        "  \"parallel\": {{\"shape\": \"{}\", \"nodes\": {}, \"edges\": {}, \"threads\": {}, \
         \"parallel_numbers_are_placeholder\": {placeholder}, \
         \"reach_t1_ms\": {:.4}, \"reach_tn_ms\": {:.4}, \"reach_parallel_speedup\": {:.2}, \
         \"sync_t1_ms\": {:.4}, \"sync_tn_ms\": {:.4}, \"sync_parallel_speedup\": {:.2}}}\n}}\n",
        p.shape,
        p.nodes,
        p.edges,
        p.threads,
        p.reach_t1_ms,
        p.reach_tn_ms,
        p.reach_t1_ms / p.reach_tn_ms,
        p.sync_t1_ms,
        p.sync_tn_ms,
        p.sync_t1_ms / p.sync_tn_ms,
    ));
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("warning: could not write {out_path}: {e}");
    } else {
        println!("\nrecorded {out_path}");
    }
}
