//! Criterion bench for E3/E4 (Theorems 1 and 3): the NFA-intersection
//! reduction. Cost of deciding the reduced instance grows steeply with the
//! number of intersected automata — the executable shape of the
//! PSpace-hardness arguments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxrpq_core::{GenericEvaluator, VsfEvaluator};
use cxrpq_workloads::reductions::{
    alpha_kni, alpha_ni, random_nfa_intersection, theorem1_database,
};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e3_nfa_intersection");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    for k in [1usize, 2, 3] {
        let inst = random_nfa_intersection(k, 5, 11);
        let (db, s, t) = theorem1_database(&inst);
        // Theorem 1: the *fixed* query α_ni, image-bound deepening.
        let mut a1 = db.alphabet().clone();
        let q1 = alpha_ni(&mut a1);
        group.bench_with_input(BenchmarkId::new("thm1_generic", k), &k, |b, _| {
            let ev = GenericEvaluator::new(&q1, 8);
            b.iter(|| std::hint::black_box(ev.check(&db, &[s, t])));
        });
        // Theorem 3: the vstar-free α^k_ni of size Θ(k).
        let mut a2 = db.alphabet().clone();
        let qk = alpha_kni(k, &mut a2);
        group.bench_with_input(BenchmarkId::new("thm3_vsf", k), &k, |b, _| {
            let ev = VsfEvaluator::new(&qk).expect("α^k_ni is vstar-free");
            b.iter(|| std::hint::black_box(ev.check(&db, &[s, t])));
        });
        // Baseline: the direct product-automaton decision.
        group.bench_with_input(BenchmarkId::new("baseline_product", k), &k, |b, _| {
            b.iter(|| std::hint::black_box(inst.intersection_nonempty()));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
