//! Criterion bench for E5 (Lemma 3): simple-CXRPQ evaluation, |D| sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxrpq_core::{CxrpqBuilder, SimpleEvaluator};
use cxrpq_graph::Alphabet;
use cxrpq_workloads::graphs;
use std::sync::Arc;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let alpha = Arc::new(Alphabet::from_chars("abc"));
    let mut group = c.benchmark_group("e5_simple_eval_data_sweep");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for exp in [5u32, 7, 9] {
        let n = 1usize << exp;
        let db = graphs::random_labeled(alpha.clone(), n, 2 * n, 99);
        let mut a2 = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut a2)
            .edge("x", "z{(a|b)+}", "y")
            .edge("y", "c*z", "w")
            .build()
            .unwrap();
        let ev = SimpleEvaluator::new(&q).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(db.size()), &db, |b, db| {
            b.iter(|| std::hint::black_box(ev.boolean(db)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
