//! Criterion bench for E11 (Lemma 14): evaluating a `CXRPQ^{≤k}` directly
//! vs through its `∪-CRPQ` expansion. The union's member count grows like
//! `(|Σ|+1)^{nk}`, so direct evaluation wins by growing factors — the
//! conciseness gap §8 asks about.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxrpq_core::translate::cxrpq_bounded_to_union;
use cxrpq_core::{BoundedEvaluator, CxrpqBuilder};
use cxrpq_graph::Alphabet;
use cxrpq_workloads::graphs;
use std::sync::Arc;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let alpha = Arc::new(Alphabet::from_chars("abc"));
    let db = graphs::random_labeled(alpha, 48, 96, 5);
    let mut a2 = db.alphabet().clone();
    let q = CxrpqBuilder::new(&mut a2)
        .edge("x", "z{(a|b)+}cz", "y")
        .build()
        .unwrap();
    let mut group = c.benchmark_group("e11_lemma14");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    for k in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::new("direct_bounded", k), &k, |b, &k| {
            let ev = BoundedEvaluator::new(&q, k);
            b.iter(|| std::hint::black_box(ev.boolean(&db)));
        });
        // Translation cost (query compilation).
        group.bench_with_input(BenchmarkId::new("translate", k), &k, |b, &k| {
            b.iter(|| std::hint::black_box(cxrpq_bounded_to_union(&q, k, 3).len()));
        });
        // Evaluating the pre-translated union.
        let union = cxrpq_bounded_to_union(&q, k, 3);
        group.bench_with_input(BenchmarkId::new("union_eval", k), &k, |b, _| {
            b.iter(|| std::hint::black_box(union.boolean(&db)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
