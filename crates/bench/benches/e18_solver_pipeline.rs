//! E18: the plan/prune/enumerate solver pipeline (with projection
//! pushdown) vs the naive-order full-enumerate-then-project reference.
//!
//! Query shapes over the e16/e17 graph families, all evaluated
//! exhaustively (`answers`) by [`CrpqEvaluator`] under both solver
//! configurations (the pipeline side runs `.projected()` — the production
//! default of `answers()`):
//!
//! - **star** — three atoms sharing a source variable, one labelled by a
//!   rare symbol: planning fills the rare atom first and the prune phase
//!   collapses the shared variable's domain before the expensive fills run;
//! - **star_proj** — a wider fan-out star projecting onto the hub only:
//!   every spoke variable is existential and the enumerator replaces the
//!   spoke cross-product with one witness probe per hub candidate;
//! - **chain** — three atoms in a line ending in a rare symbol: the naive
//!   path discovers the dead end only after enumerating every prefix
//!   binding (with one per-source backward/forward search per intermediate
//!   node), while semi-joins kill the prefixes up front;
//! - **diamond** — two branches re-joining on a rare atom;
//! - **single** — one atom, the pipeline-overhead regression guard (the
//!   acceptance bar is staying within 10% of naive);
//!
//! plus the **line** shape from e17's adversarial batching case, where the
//! adaptive probe must route prune fills to per-source sweeps (asserted)
//! and the middle variable makes naive enumeration morphism-cubic while
//! the projected run deduplicates `(x, z)` at the enumerator, and
//! **line_proj** — the same graph projected onto `x` alone, the extreme
//! 1-of-N case. Every measurement is preceded by an equality assertion
//! between the two configurations' answer relations.
//!
//! Run: `cargo bench -p cxrpq-bench --bench e18_solver_pipeline` (add
//! `-- --fast` for the CI smoke configuration). Full runs record
//! `BENCH_solver.json` at the workspace root; override the path (and
//! enable recording in fast mode) with `BENCH_SOLVER_OUT`.
//!
//! Setting `CXRPQ_SMOKE_MAX_STEPS=<fuel>` additionally re-runs every shape
//! under a resource governor with that step budget and asserts bounded,
//! panic-free termination with a clean verdict: an aborted run must report
//! `Aborted` and return a subset of the complete answers, an untripped run
//! must return them all — the CI guard for the governed abort paths.

use cxrpq_core::{Crpq, CrpqEvaluator, Governor, SolveOptions, Strategy};
use cxrpq_graph::{Alphabet, GraphBuilder, GraphDb, NodeId, Symbol};
use cxrpq_workloads::graphs;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn median_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<Duration> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2].as_secs_f64() * 1e3
}

/// A random multigraph over `{a, b}` with `edges` arcs plus `rare` arcs
/// labelled `c` — the label skew the planner's CSR statistics pick up.
/// Deterministic (splitmix-style) so runs are comparable without an RNG
/// dependency.
fn random_ab_rare_c(nodes: usize, edges: usize, rare: usize, seed: u64) -> GraphDb {
    let alpha = Arc::new(Alphabet::from_chars("abc"));
    let mut b = GraphBuilder::new(alpha);
    let syms: Vec<Symbol> = ["a", "b", "c"]
        .iter()
        .map(|s| b.alphabet().sym(s))
        .collect();
    for _ in 0..nodes {
        b.add_node();
    }
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) as usize
    };
    for _ in 0..edges {
        let u = NodeId((next() % nodes) as u32);
        let v = NodeId((next() % nodes) as u32);
        let s = syms[next() % 2]; // a or b only
        b.add_edge(u, s, v);
    }
    for _ in 0..rare {
        let u = NodeId((next() % nodes) as u32);
        let v = NodeId((next() % nodes) as u32);
        b.add_edge(u, syms[2], v);
    }
    b.freeze()
}

/// The AGM worst-case triangle instance over three m-node blocks X, Y, Z:
/// each relation is a double star (`x_0` reaches every `y`, every `x`
/// reaches `y_0`, and likewise Y→Z via `b` and Z→X via `a`). Every
/// pairwise join has Θ(m²) tuples while the triangle output is Θ(m) — the
/// regime where any join-at-a-time plan is provably suboptimal and the
/// multiway intersection skips the dead hub bindings in one seek.
fn spoke_triangle(m: usize) -> GraphDb {
    let alpha = Arc::new(Alphabet::from_chars("ab"));
    let mut bld = GraphBuilder::new(alpha);
    let a = bld.alphabet().sym("a");
    let b = bld.alphabet().sym("b");
    for _ in 0..3 * m {
        bld.add_node();
    }
    let x = |i: usize| NodeId(i as u32);
    let y = |i: usize| NodeId((m + i) as u32);
    let z = |i: usize| NodeId((2 * m + i) as u32);
    for i in 0..m {
        bld.add_edge(x(0), a, y(i));
        bld.add_edge(x(i), a, y(0));
        bld.add_edge(y(0), b, z(i));
        bld.add_edge(y(i), b, z(0));
        bld.add_edge(z(0), a, x(i));
        bld.add_edge(z(i), a, x(0));
    }
    bld.freeze()
}

struct ShapeResult {
    shape: &'static str,
    nodes: usize,
    edges: usize,
    atoms: usize,
    answers: usize,
    naive_ms: f64,
    pipeline_ms: f64,
    per_source_sweeps: bool,
    eliminated_vars: usize,
    /// Cyclic cores routed to the leapfrog intersection by the Auto
    /// strategy (0 on tree shapes).
    leapfrog_components: usize,
    /// Median of the same pipeline run with the leapfrog intersection
    /// disabled (`Strategy::Backtrack`) — only measured on cyclic shapes,
    /// where `pipeline_ms` is the leapfrog lane.
    backtrack_ms: Option<f64>,
    /// Governed smoke outcome when `CXRPQ_SMOKE_MAX_STEPS` is set:
    /// (aborted?, partial answer count).
    governed: Option<(bool, usize)>,
}

/// The governed-smoke fuel budget, when the env var is set.
fn smoke_budget() -> Option<u64> {
    std::env::var("CXRPQ_SMOKE_MAX_STEPS")
        .ok()
        .map(|v| v.parse().expect("CXRPQ_SMOKE_MAX_STEPS must be a number"))
}

fn run_shape(
    shape: &'static str,
    db: &GraphDb,
    query_edges: &[(&str, &str, &str)],
    output: &[&str],
    iters: usize,
) -> ShapeResult {
    let mut alpha = db.alphabet().clone();
    let q = Crpq::build(query_edges, output, &mut alpha).unwrap();
    let ev = CrpqEvaluator::new(&q);
    let naive = SolveOptions::naive();
    let piped = SolveOptions::pipeline().projected();

    // Agreement first: the projected pipeline must reproduce the naive
    // full-enumerate-then-project answers.
    let (ans_naive, _) = ev.answers_opts(db, &naive);
    let (ans_piped, stats) = ev.answers_opts(db, &piped);
    assert_eq!(
        ans_naive, ans_piped,
        "{shape}: pipeline changed the answers"
    );
    let stats = stats.as_ref();
    let per_source_sweeps = stats.map(|s| s.per_source_sweeps).unwrap_or(false);
    let eliminated_vars = stats.map(|s| s.eliminated_vars).unwrap_or(0);
    let leapfrog_components = stats.map(|s| s.leapfrog_components).unwrap_or(0);

    // Governed smoke: the same solve under an aggressive fuel budget must
    // terminate (bounded by the budget), never panic, and only ever
    // under-approximate; an untripped governor must change nothing.
    let governed = smoke_budget().map(|budget| {
        let gov = Arc::new(Governor::unlimited().with_max_steps(budget));
        let (partial, _) = ev.answers_opts(db, &piped.clone().governed(gov.clone()));
        assert!(
            partial.is_subset(&ans_naive),
            "{shape}: governed smoke produced tuples outside the complete relation"
        );
        if gov.is_aborted() {
            assert!(
                gov.verdict().to_string().contains("aborted"),
                "{shape}: tripped governor must report an Aborted verdict"
            );
        } else {
            assert_eq!(
                partial, ans_naive,
                "{shape}: untripped governor changed the answers"
            );
        }
        (gov.is_aborted(), partial.len())
    });

    let naive_ms = median_ms(iters, || {
        std::hint::black_box(ev.answers_opts(db, &naive));
    });
    let pipeline_ms = median_ms(iters, || {
        std::hint::black_box(ev.answers_opts(db, &piped));
    });
    ShapeResult {
        shape,
        nodes: db.node_count(),
        edges: db.edge_count(),
        atoms: query_edges.len(),
        answers: ans_naive.len(),
        naive_ms,
        pipeline_ms,
        per_source_sweeps,
        eliminated_vars,
        leapfrog_components,
        backtrack_ms: None,
        governed,
    }
}

/// A cyclic shape measured under three enumeration lanes: the naive
/// reference, the pipeline with the leapfrog intersection (the Auto
/// routing — asserted), and the same pipeline with leapfrog disabled.
fn run_cyclic_shape(
    shape: &'static str,
    db: &GraphDb,
    query_edges: &[(&str, &str, &str)],
    output: &[&str],
    iters: usize,
) -> ShapeResult {
    let mut r = run_shape(shape, db, query_edges, output, iters);
    assert!(
        r.leapfrog_components >= 1,
        "{shape}: a cyclic core must route to leapfrog under Auto"
    );
    let mut alpha = db.alphabet().clone();
    let q = Crpq::build(query_edges, output, &mut alpha).unwrap();
    let ev = CrpqEvaluator::new(&q);
    let back = SolveOptions::pipeline()
        .projected()
        .with_strategy(Strategy::Backtrack);
    let (ans_back, _) = ev.answers_opts(db, &back);
    let (ans_leap, _) = ev.answers_opts(db, &SolveOptions::pipeline().projected());
    assert_eq!(
        ans_back, ans_leap,
        "{shape}: forced backtrack disagrees with leapfrog"
    );
    r.backtrack_ms = Some(median_ms(iters, || {
        std::hint::black_box(ev.answers_opts(db, &back));
    }));
    r
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let iters = if fast { 3 } else { 7 };
    let scale = if fast { 4 } else { 1 };
    let mut results = Vec::new();

    // Star: three atoms out of one variable, the c-atom rare.
    {
        let n = 480 / scale;
        let db = random_ab_rare_c(n, 4 * n, n / 40, 0xe18);
        results.push(run_shape(
            "star",
            &db,
            &[("x", "ab", "y1"), ("x", "ba", "y2"), ("x", "c", "y3")],
            &["x", "y3"],
            iters,
        ));
    }
    // Star with wide fan-out, projected onto the hub only: all four spoke
    // variables are existential (1-of-N output).
    {
        let n = 480 / scale;
        let db = random_ab_rare_c(n, 4 * n, n / 40, 0xe18);
        let r = run_shape(
            "star_proj",
            &db,
            &[
                ("x", "ab", "y1"),
                ("x", "ba", "y2"),
                ("x", "(ab|ba)", "y3"),
                ("x", "c", "y4"),
            ],
            &["x"],
            iters,
        );
        assert_eq!(r.eliminated_vars, 4, "star_proj: all spokes existential");
        results.push(r);
    }
    // Chain: naive discovers the rare tail only after enumerating every
    // prefix binding.
    {
        let n = 480 / scale;
        let db = random_ab_rare_c(n, 4 * n, n / 40, 0xc4a1);
        results.push(run_shape(
            "chain",
            &db,
            &[
                ("x1", "ab", "x2"),
                ("x2", "ab", "x3"),
                ("x3", "ba", "x4"),
                ("x4", "c", "x5"),
            ],
            &["x1", "x5"],
            iters,
        ));
    }
    // Chain projected onto its tail: the planner's output-biased
    // tie-breaking places x5 first within the cheap c-atom, so every other
    // variable falls into the existential suffix (1-of-N output).
    {
        let n = 480 / scale;
        let db = random_ab_rare_c(n, 4 * n, n / 40, 0xc4a1);
        let r = run_shape(
            "chain_tail",
            &db,
            &[
                ("x1", "ab", "x2"),
                ("x2", "ab", "x3"),
                ("x3", "ba", "x4"),
                ("x4", "c", "x5"),
            ],
            &["x5"],
            iters,
        );
        assert_eq!(
            r.eliminated_vars, 4,
            "chain_tail: output bias must leave only x5 in the prefix"
        );
        results.push(r);
    }
    // Diamond: two branches re-joining on a rare atom.
    {
        let n = 480 / scale;
        let db = random_ab_rare_c(n, 4 * n, n / 40, 0xd1a);
        results.push(run_shape(
            "diamond",
            &db,
            &[
                ("x", "ab", "y"),
                ("x", "ba", "z"),
                ("y", "ab", "w"),
                ("z", "c", "w"),
            ],
            &["x", "w"],
            iters,
        ));
    }
    // Single atom: the overhead guard.
    {
        let n = 480 / scale;
        let db = random_ab_rare_c(n, 4 * n, n / 40, 0x51);
        results.push(run_shape(
            "single",
            &db,
            &[("x", "ab", "y")],
            &["x", "y"],
            iters,
        ));
    }
    // Line (e17's adversarial batching shape): the adaptive probe must
    // route prune fills to per-source sweeps.
    {
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let m = 400 / scale;
        let word: Vec<Symbol> = alpha.parse_word(&"ab".repeat(m)).unwrap();
        let (db, _, _) = graphs::two_paths(alpha, &word, &word);
        let r = run_shape(
            "line",
            &db,
            &[("x", "(ab)+", "y"), ("y", "(ab)+", "z")],
            &["x", "z"],
            iters,
        );
        assert!(
            r.per_source_sweeps,
            "line: the probe must pick per-source sweeps on a long chain"
        );
        results.push(r);
        // The same graph projected onto x alone: y and z are both
        // existential (1-of-N output) and each x needs one witness probe.
        let r2 = run_shape(
            "line_proj",
            &db,
            &[("x", "(ab)+", "y"), ("y", "(ab)+", "z")],
            &["x"],
            iters,
        );
        assert_eq!(r2.eliminated_vars, 2, "line_proj: y and z existential");
        results.push(r2);
    }
    // Cyclic cores: the worst-case-optimal leapfrog lane vs the forced
    // backtracker vs naive.
    //
    // The triangle runs on the AGM worst-case "spoke" instance, where any
    // join-at-a-time plan is provably Θ(m²) while the output (and the
    // leapfrog run) is near-linear; the dense diamond and 4-clique run on
    // a uniform random multigraph, where candidate sets are wide but the
    // multiway intersections are narrow.
    {
        let m = 400 / scale.min(2);
        let db = spoke_triangle(m);
        results.push(run_cyclic_shape(
            "triangle",
            &db,
            &[("x", "a", "y"), ("y", "b", "z"), ("z", "a", "x")],
            &["x", "y", "z"],
            iters,
        ));
    }
    let dense = |seed: u64| {
        let n = 480 / scale;
        random_ab_rare_c(n, 16 * n, 0, seed)
    };
    // Dense diamond: a 4-cycle with both joins on common labels (unlike
    // the tree-narrowed "diamond" shape above, nothing is rare here).
    {
        let db = dense(0xdd);
        results.push(run_cyclic_shape(
            "diamond_dense",
            &db,
            &[
                ("x", "a", "y"),
                ("y", "b", "w"),
                ("x", "b", "z"),
                ("z", "a", "w"),
            ],
            &["x", "w"],
            iters,
        ));
    }
    // 4-clique: six atoms, every variable in three cycles.
    {
        let db = dense(0xc14);
        results.push(run_cyclic_shape(
            "clique4",
            &db,
            &[
                ("x", "a", "y"),
                ("x", "b", "z"),
                ("x", "a", "w"),
                ("y", "b", "z"),
                ("y", "a", "w"),
                ("z", "b", "w"),
            ],
            &["x", "w"],
            iters,
        ));
    }

    println!(
        "{:<10} {:>6} {:>6} {:>5} {:>8} {:>5} | {:>10} {:>11} {:>7} | fills",
        "shape", "nodes", "edges", "atoms", "answers", "elim", "naive", "pipeline", "x"
    );
    for r in &results {
        println!(
            "{:<10} {:>6} {:>6} {:>5} {:>8} {:>5} | {:>8.3}ms {:>9.3}ms {:>6.2}x | {}",
            r.shape,
            r.nodes,
            r.edges,
            r.atoms,
            r.answers,
            r.eliminated_vars,
            r.naive_ms,
            r.pipeline_ms,
            r.naive_ms / r.pipeline_ms,
            if r.per_source_sweeps {
                "per-source"
            } else {
                "wavefront"
            },
        );
    }

    // The strategy comparison on cyclic shapes: pipeline_ms above is the
    // leapfrog lane; this table adds the forced-backtrack lane.
    if results.iter().any(|r| r.backtrack_ms.is_some()) {
        println!(
            "\n{:<14} {:>11} {:>11} {:>7}",
            "cyclic shape", "backtrack", "leapfrog", "x"
        );
        for r in results.iter().filter(|r| r.backtrack_ms.is_some()) {
            let back = r.backtrack_ms.unwrap();
            println!(
                "{:<14} {:>9.3}ms {:>9.3}ms {:>6.2}x",
                r.shape,
                back,
                r.pipeline_ms,
                back / r.pipeline_ms,
            );
        }
    }

    if let Some(budget) = smoke_budget() {
        let aborted = results
            .iter()
            .filter(|r| matches!(r.governed, Some((true, _))))
            .count();
        println!(
            "\ngoverned smoke (max-steps {budget}): {aborted}/{} shapes aborted cleanly, \
             every partial relation ⊆ complete",
            results.len()
        );
        assert!(
            aborted > 0,
            "governed smoke budget {budget} too generous: no shape aborted"
        );
    }

    let explicit = std::env::var("BENCH_SOLVER_OUT").ok();
    if fast && explicit.is_none() {
        println!("\nfast mode: BENCH_solver.json not rewritten (set BENCH_SOLVER_OUT to record)");
        return;
    }
    let out_path = explicit
        .unwrap_or_else(|| format!("{}/../../BENCH_solver.json", env!("CARGO_MANIFEST_DIR")));
    let mut json = String::from("{\n  \"bench\": \"e18_solver_pipeline\",\n  \"mode\": ");
    json.push_str(if fast { "\"fast\"" } else { "\"full\"" });
    json.push_str(",\n  \"shapes\": [\n");
    for (i, r) in results.iter().enumerate() {
        let strategy = match r.backtrack_ms {
            Some(back) => format!(
                ", \"leapfrog_components\": {}, \"backtrack_ms\": {:.4}, \
                 \"leapfrog_speedup\": {:.2}",
                r.leapfrog_components,
                back,
                back / r.pipeline_ms
            ),
            None => String::new(),
        };
        json.push_str(&format!(
            "    {{\"shape\": \"{}\", \"nodes\": {}, \"edges\": {}, \"atoms\": {}, \
             \"answers\": {}, \"eliminated_vars\": {}, \"naive_ms\": {:.4}, \
             \"pipeline_ms\": {:.4}, \"pipeline_speedup\": {:.2}, \
             \"per_source_sweeps\": {}{}}}{}\n",
            r.shape,
            r.nodes,
            r.edges,
            r.atoms,
            r.answers,
            r.eliminated_vars,
            r.naive_ms,
            r.pipeline_ms,
            r.naive_ms / r.pipeline_ms,
            r.per_source_sweeps,
            strategy,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("warning: could not write {out_path}: {e}");
    } else {
        println!("\nrecorded {out_path}");
    }
}
