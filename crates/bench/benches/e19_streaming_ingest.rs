//! E19: streaming ingest over the layered delta-CSR storage.
//!
//! Two questions, measured instead of guessed:
//!
//! 1. **Static overhead** — after the merged-iteration refactor, what do
//!    the e16 reach searches cost on fully-compacted (delta-free) graphs?
//!    The same four shapes as `e16_reach_csr` are rebuilt and re-timed;
//!    against the committed `BENCH_reach.json` the ratio must stay within
//!    a few percent of the pre-refactor slice path (the acceptance bar for
//!    the layered-storage PR is ~5%).
//!
//! 2. **Ingest strategy crossover** — an interleaved insert/query workload
//!    (batches of appended arcs, a fixed query mix after every batch) run
//!    under three maintenance strategies:
//!    - `refreeze`: rebuild the whole CSR from scratch after every batch
//!      (the only option before this PR);
//!    - `delta`: append into the overlay, queries iterate merged runs;
//!    - `compact`: append into the overlay, then fold touched rows back
//!      into the base before querying (incremental freeze).
//!
//!    The workload runs over a growing random multigraph at several delta
//!    sizes (small overlays favour `delta`; large overlays amortize the
//!    row merges) plus streaming variants of the e16 line and grid shapes.
//!    All three strategies must produce identical answer sets.
//!
//! Run: `cargo bench -p cxrpq-bench --bench e19_streaming_ingest` (add
//! `-- --fast` for the CI smoke configuration). Full runs record
//! `BENCH_streaming.json` at the workspace root; override the path (and
//! enable recording in fast mode) with `BENCH_STREAMING_OUT`.

use cxrpq_automata::{parse_regex, Nfa};
use cxrpq_core::reach::{reach_set, Direction};
use cxrpq_graph::{Alphabet, GraphBuilder, GraphDb, NodeId, Symbol};
use cxrpq_workloads::graphs;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn median_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<Duration> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2].as_secs_f64() * 1e3
}

fn nfa_of(alpha: &Alphabet, pattern: &str) -> Nfa {
    let mut a = alpha.clone();
    Nfa::from_regex(&parse_regex(pattern, &mut a).unwrap())
}

/// Deterministic splitmix-style stream (no RNG dependency).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> usize {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        (z ^ (z >> 31)) as usize
    }
}

// ---------------------------------------------------------------------
// Part 1: static overhead on the e16 shapes.
// ---------------------------------------------------------------------

struct StaticResult {
    shape: &'static str,
    nodes: usize,
    edges: usize,
    reach_ms: f64,
    /// `reach_csr_ms` of the committed pre-refactor record, if available.
    baseline_ms: Option<f64>,
}

impl StaticResult {
    fn overhead(&self) -> Option<f64> {
        self.baseline_ms.map(|b| self.reach_ms / b)
    }
}

/// Minimal extraction of `"reach_csr_ms"` for one shape from the committed
/// `BENCH_reach.json` (hand-rolled like the writers; no JSON dependency).
fn baseline_reach_ms(record: Option<&str>, shape: &str) -> Option<f64> {
    let text = record?;
    let line = text
        .lines()
        .find(|l| l.contains(&format!("\"shape\": \"{shape}\"")))?;
    let key = "\"reach_csr_ms\": ";
    let at = line.find(key)? + key.len();
    line[at..].split([',', '}']).next()?.trim().parse().ok()
}

fn static_shapes(iters: usize, scale: usize, record: Option<&str>) -> Vec<StaticResult> {
    let mut out = Vec::new();
    let mut push = |shape: &'static str, db: &GraphDb, nfa: &Nfa, from: NodeId| {
        assert!(db.is_compacted(), "{shape}: static shapes carry no overlay");
        // Warm up before timing — the e16 record was taken on a hot cache
        // (its CSR pass runs after the legacy baseline), so a cold first
        // pass here would overstate the merged-iteration overhead.
        for _ in 0..iters {
            std::hint::black_box(reach_set(db, nfa, from, Direction::Forward, None));
        }
        let reach_ms = median_ms(iters, || {
            std::hint::black_box(reach_set(db, nfa, from, Direction::Forward, None));
        });
        out.push(StaticResult {
            shape,
            nodes: db.node_count(),
            edges: db.edge_count(),
            reach_ms,
            baseline_ms: baseline_reach_ms(record, shape),
        });
    };

    // Same construction parameters as e16_reach_csr's full mode (scaled
    // down only in fast mode, where the record comparison is skipped).
    {
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let n = 1200 / scale;
        let word: Vec<Symbol> = alpha.parse_word(&"ab".repeat(n)).unwrap();
        let (db, (s1, _), _) = graphs::two_paths(alpha, &word, &word);
        push("line", &db, &nfa_of(db.alphabet(), "(ab)*"), s1);
    }
    {
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let side = 28 / scale.min(2);
        let db = graphs::grid_labeled(alpha, side, side, 7);
        push("grid", &db, &nfa_of(db.alphabet(), "(a|b)*a"), NodeId(0));
    }
    {
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let n = 200 / scale.min(2);
        let db = graphs::random_labeled(alpha, n, 4 * n, 99);
        let a = db.alphabet().sym("a");
        let s1 = db
            .nodes()
            .find(|&m| !db.successors_with(m, a).is_empty())
            .expect("an a-source");
        push("random", &db, &nfa_of(db.alphabet(), "a(a|b)*c"), s1);
    }
    {
        let alpha = Arc::new(Alphabet::from_chars("abcdefghijklmnop"));
        let n = 96 / scale.min(2);
        let db = graphs::random_labeled(alpha, n, 24 * n, 41);
        let a = db.alphabet().sym("a");
        let s1 = db
            .nodes()
            .find(|&m| !db.successors_with(m, a).is_empty())
            .expect("an a-source");
        push(
            "label-dense",
            &db,
            &nfa_of(db.alphabet(), "(a|b)(a|b|c|d)*"),
            s1,
        );
    }
    out
}

// ---------------------------------------------------------------------
// Part 2: interleaved insert/query under three maintenance strategies.
// ---------------------------------------------------------------------

/// One streaming scenario: a frozen seed graph, a stream of arc batches,
/// and a query mix to run after every batch.
struct Scenario {
    shape: &'static str,
    seed_db: GraphDb,
    stream: Vec<Vec<(NodeId, Symbol, NodeId)>>,
    nfa: Nfa,
    sources: Vec<NodeId>,
}

impl Scenario {
    fn query(&self, db: &GraphDb) -> usize {
        let mut total = 0;
        for &s in &self.sources {
            total += reach_set(db, &self.nfa, s, Direction::Forward, None).len();
        }
        total
    }

    fn final_answers(&self, db: &GraphDb) -> Vec<HashSet<NodeId>> {
        self.sources
            .iter()
            .map(|&s| reach_set(db, &self.nfa, s, Direction::Forward, None))
            .collect()
    }
}

struct StrategyRun {
    ingest_ms: f64,
    query_ms: f64,
}

impl StrategyRun {
    fn total_ms(&self) -> f64 {
        self.ingest_ms + self.query_ms
    }
}

/// Runs the interleaved workload once per strategy, asserting all three
/// converge on the same final answers. Per-phase times are medians over
/// `iters` full workload replays.
fn run_scenario(sc: &Scenario, iters: usize) -> (StrategyRun, StrategyRun, StrategyRun, usize) {
    // Answer agreement on the final graph, once.
    let final_db = {
        let mut db = sc.seed_db.clone();
        for batch in &sc.stream {
            db.append_batch(batch);
        }
        db
    };
    let reference = sc.final_answers(&final_db);
    {
        let mut compacted = sc.seed_db.clone();
        for batch in &sc.stream {
            compacted.append_batch(batch);
            compacted.compact();
        }
        assert_eq!(
            sc.final_answers(&compacted),
            reference,
            "{}: compact diverged",
            sc.shape
        );
        let refrozen = final_db.to_builder().freeze();
        assert_eq!(
            sc.final_answers(&refrozen),
            reference,
            "{}: refreeze diverged",
            sc.shape
        );
    }

    type IngestFn = Box<dyn FnMut(&[(NodeId, Symbol, NodeId)]) -> GraphDb>;
    let timed = |mut ingest: IngestFn| {
        let mut ingest_ms = 0.0;
        let mut query_ms = 0.0;
        let run = median_ms(iters, || {
            let mut i_acc = Duration::ZERO;
            let mut q_acc = Duration::ZERO;
            for batch in &sc.stream {
                let t0 = Instant::now();
                let db = ingest(batch);
                i_acc += t0.elapsed();
                let t1 = Instant::now();
                std::hint::black_box(sc.query(&db));
                q_acc += t1.elapsed();
            }
            ingest_ms = i_acc.as_secs_f64() * 1e3;
            query_ms = q_acc.as_secs_f64() * 1e3;
        });
        let _ = run;
        StrategyRun {
            ingest_ms,
            query_ms,
        }
    };

    // refreeze: accumulate arcs, rebuild the whole CSR every batch.
    let refreeze = {
        let mut acc: Vec<(NodeId, Symbol, NodeId)> = Vec::new();
        let seed = sc.seed_db.clone();
        timed(Box::new(move |batch| {
            acc.extend_from_slice(batch);
            let mut b = seed.to_builder();
            for &(u, a, v) in &acc {
                b.add_edge(u, a, v);
            }
            b.freeze()
        }))
    };
    // delta: append into the overlay, query merged runs. The overlay is
    // carried across batches (worst case for merged iteration).
    let delta = {
        let mut db = sc.seed_db.clone();
        timed(Box::new(move |batch| {
            db.append_batch(batch);
            db.clone()
        }))
    };
    // compact: append, then fold touched rows back before querying.
    let compact = {
        let mut db = sc.seed_db.clone();
        timed(Box::new(move |batch| {
            db.append_batch(batch);
            db.compact();
            db.clone()
        }))
    };
    (refreeze, delta, compact, sc.stream.len())
}

/// A growing random multigraph: `n` nodes, `base` frozen arcs, `extra`
/// streamed arcs in `batches` equal batches.
fn random_scenario(
    shape: &'static str,
    n: usize,
    base: usize,
    extra: usize,
    batches: usize,
    seed: u64,
) -> Scenario {
    let alpha = Arc::new(Alphabet::from_chars("abc"));
    let syms: Vec<Symbol> = ["a", "b", "c"].iter().map(|s| alpha.sym(s)).collect();
    let mut mix = Mix(seed);
    let mut b = GraphBuilder::new(alpha);
    for _ in 0..n {
        b.add_node();
    }
    for _ in 0..base {
        let (u, v) = (mix.next() % n, mix.next() % n);
        b.add_edge(NodeId(u as u32), syms[mix.next() % 3], NodeId(v as u32));
    }
    let seed_db = b.freeze();
    let per = extra.div_ceil(batches);
    let stream: Vec<Vec<(NodeId, Symbol, NodeId)>> = (0..batches)
        .map(|_| {
            (0..per)
                .map(|_| {
                    (
                        NodeId((mix.next() % n) as u32),
                        syms[mix.next() % 3],
                        NodeId((mix.next() % n) as u32),
                    )
                })
                .collect()
        })
        .collect();
    let nfa = nfa_of(seed_db.alphabet(), "a(a|b)*c");
    let sources: Vec<NodeId> = (0..4).map(|i| NodeId((i * (n / 4)) as u32)).collect();
    Scenario {
        shape,
        seed_db,
        stream,
        nfa,
        sources,
    }
}

/// The e16 line shape, streamed: the second `(ab)^m` path is appended arc
/// by arc onto a frozen first path.
fn line_scenario(m: usize, batches: usize) -> Scenario {
    let alpha = Arc::new(Alphabet::from_chars("ab"));
    let word: Vec<Symbol> = alpha.parse_word(&"ab".repeat(m)).unwrap();
    let mut b = GraphBuilder::new(alpha);
    let s1 = b.add_node();
    let mut prev = s1;
    for &a in &word {
        let next = b.add_node();
        b.add_edge(prev, a, next);
        prev = next;
    }
    // Pre-allocate the second path's nodes; its arcs arrive as the stream.
    let s2 = b.add_node();
    let mut arcs = Vec::with_capacity(word.len());
    let mut p = s2;
    for &a in &word {
        let next = b.add_node();
        arcs.push((p, a, next));
        p = next;
    }
    let seed_db = b.freeze();
    let per = arcs.len().div_ceil(batches);
    let stream = arcs.chunks(per).map(<[_]>::to_vec).collect();
    let nfa = nfa_of(seed_db.alphabet(), "(ab)*");
    Scenario {
        shape: "line",
        seed_db,
        stream,
        nfa,
        sources: vec![s1, s2],
    }
}

/// The e16 grid shape, streamed: a frozen `rows × cols` grid gains random
/// labelled shortcut arcs.
fn grid_scenario(side: usize, extra: usize, batches: usize, seed: u64) -> Scenario {
    let alpha = Arc::new(Alphabet::from_chars("ab"));
    let seed_db = graphs::grid_labeled(alpha, side, side, 7);
    let n = seed_db.node_count();
    let syms: Vec<Symbol> = ["a", "b"]
        .iter()
        .map(|s| seed_db.alphabet().sym(s))
        .collect();
    let mut mix = Mix(seed);
    let per = extra.div_ceil(batches);
    let stream: Vec<Vec<(NodeId, Symbol, NodeId)>> = (0..batches)
        .map(|_| {
            (0..per)
                .map(|_| {
                    (
                        NodeId((mix.next() % n) as u32),
                        syms[mix.next() % 2],
                        NodeId((mix.next() % n) as u32),
                    )
                })
                .collect()
        })
        .collect();
    let nfa = nfa_of(seed_db.alphabet(), "(a|b)*a");
    Scenario {
        shape: "grid",
        seed_db,
        stream,
        nfa,
        sources: vec![NodeId(0), NodeId((n / 2) as u32)],
    }
}

struct StreamResult {
    shape: String,
    nodes: usize,
    base_edges: usize,
    delta_edges: usize,
    batches: usize,
    refreeze: StrategyRun,
    delta: StrategyRun,
    compact: StrategyRun,
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let iters = if fast { 3 } else { 9 };
    let scale = if fast { 4 } else { 1 };

    // Part 1: static merged-iteration overhead on the e16 shapes.
    let record = if fast {
        None // scaled-down shapes are not comparable to the full record
    } else {
        std::fs::read_to_string(format!(
            "{}/../../BENCH_reach.json",
            env!("CARGO_MANIFEST_DIR")
        ))
        .ok()
    };
    let statics = static_shapes(iters, scale, record.as_deref());
    println!(
        "{:<12} {:>7} {:>7} | {:>10} {:>10} {:>9}",
        "static", "nodes", "edges", "reach now", "recorded", "overhead"
    );
    for s in &statics {
        match (s.baseline_ms, s.overhead()) {
            (Some(b), Some(x)) => println!(
                "{:<12} {:>7} {:>7} | {:>8.3}ms {:>8.3}ms {:>8.2}x",
                s.shape, s.nodes, s.edges, s.reach_ms, b, x
            ),
            _ => println!(
                "{:<12} {:>7} {:>7} | {:>8.3}ms {:>10} {:>9}",
                s.shape, s.nodes, s.edges, s.reach_ms, "-", "-"
            ),
        }
    }

    // Part 2: ingest strategies over growing graphs. The random family
    // sweeps the overlay size to expose the delta-vs-compact crossover.
    let scenarios: Vec<Scenario> = vec![
        random_scenario(
            "random-small-delta",
            512 / scale,
            2048 / scale,
            128 / scale,
            8,
            0xe19,
        ),
        random_scenario(
            "random-mid-delta",
            512 / scale,
            2048 / scale,
            1024 / scale,
            8,
            0xe19,
        ),
        random_scenario(
            "random-large-delta",
            512 / scale,
            2048 / scale,
            4096 / scale,
            8,
            0xe19,
        ),
        line_scenario(600 / scale, 6),
        grid_scenario(24 / scale.min(2), 256 / scale, 8, 0x61d),
    ];
    let mut results = Vec::new();
    for sc in &scenarios {
        let (refreeze, delta, compact, batches) = run_scenario(sc, iters);
        results.push(StreamResult {
            shape: sc.shape.to_string(),
            nodes: sc.seed_db.node_count(),
            base_edges: sc.seed_db.edge_count(),
            delta_edges: sc.stream.iter().map(Vec::len).sum(),
            batches,
            refreeze,
            delta,
            compact,
        });
    }

    println!(
        "\n{:<20} {:>6} {:>6} {:>6} | {:>9} {:>9} {:>9} | best",
        "stream", "nodes", "base", "delta", "refreeze", "delta", "compact"
    );
    for r in &results {
        let (rf, dl, cp) = (
            r.refreeze.total_ms(),
            r.delta.total_ms(),
            r.compact.total_ms(),
        );
        let best = if dl <= rf && dl <= cp {
            "delta"
        } else if cp <= rf {
            "compact"
        } else {
            "refreeze"
        };
        println!(
            "{:<20} {:>6} {:>6} {:>6} | {:>7.2}ms {:>7.2}ms {:>7.2}ms | {}",
            r.shape, r.nodes, r.base_edges, r.delta_edges, rf, dl, cp, best
        );
    }

    let explicit = std::env::var("BENCH_STREAMING_OUT").ok();
    if fast && explicit.is_none() {
        println!(
            "\nfast mode: BENCH_streaming.json not rewritten (set BENCH_STREAMING_OUT to record)"
        );
        return;
    }
    let out_path = explicit
        .unwrap_or_else(|| format!("{}/../../BENCH_streaming.json", env!("CARGO_MANIFEST_DIR")));
    let mut json = String::from("{\n  \"bench\": \"e19_streaming_ingest\",\n  \"mode\": ");
    json.push_str(if fast { "\"fast\"" } else { "\"full\"" });
    json.push_str(",\n  \"static_overhead\": [\n");
    for (i, s) in statics.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shape\": \"{}\", \"nodes\": {}, \"edges\": {}, \"reach_ms\": {:.4}, \
             \"recorded_reach_csr_ms\": {}, \"overhead\": {}}}{}\n",
            s.shape,
            s.nodes,
            s.edges,
            s.reach_ms,
            s.baseline_ms.map_or("null".into(), |b| format!("{b:.4}")),
            s.overhead().map_or("null".into(), |x| format!("{x:.3}")),
            if i + 1 < statics.len() { "," } else { "" }
        ));
    }
    json.push_str("  ],\n  \"streaming\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shape\": \"{}\", \"nodes\": {}, \"base_edges\": {}, \"delta_edges\": {}, \
             \"batches\": {}, \
             \"refreeze_ingest_ms\": {:.4}, \"refreeze_query_ms\": {:.4}, \
             \"delta_ingest_ms\": {:.4}, \"delta_query_ms\": {:.4}, \
             \"compact_ingest_ms\": {:.4}, \"compact_query_ms\": {:.4}}}{}\n",
            r.shape,
            r.nodes,
            r.base_edges,
            r.delta_edges,
            r.batches,
            r.refreeze.ingest_ms,
            r.refreeze.query_ms,
            r.delta.ingest_ms,
            r.delta.query_ms,
            r.compact.ingest_ms,
            r.compact.query_ms,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("warning: could not write {out_path}: {e}");
    } else {
        println!("\nrecorded {out_path}");
    }
}
