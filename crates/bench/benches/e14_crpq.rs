//! Criterion bench for E14 (Lemma 1): the CRPQ baseline, |D| sweep.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxrpq_core::{Crpq, CrpqEvaluator};
use cxrpq_graph::Alphabet;
use cxrpq_workloads::graphs;
use std::sync::Arc;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let alpha = Arc::new(Alphabet::from_chars("abc"));
    let mut group = c.benchmark_group("e14_crpq_data_sweep");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for exp in [5u32, 7, 9, 11] {
        let n = 1usize << exp;
        let db = graphs::random_labeled(alpha.clone(), n, 2 * n, 21);
        let mut a2 = db.alphabet().clone();
        let q = Crpq::build(&[("x", "a(a|b)*", "y"), ("y", "(b|c)+", "z")], &[], &mut a2).unwrap();
        group.bench_with_input(BenchmarkId::from_parameter(db.size()), &db, |b, db| {
            let ev = CrpqEvaluator::new(&q);
            b.iter(|| std::hint::black_box(ev.boolean(db)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
