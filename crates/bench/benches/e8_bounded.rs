//! Criterion bench for E8 (Theorem 6): CXRPQ^{≤k} evaluation — data sweep
//! and the k sweep with/without candidate pruning.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxrpq_core::{BoundedEvaluator, CxrpqBuilder};
use cxrpq_graph::Alphabet;
use cxrpq_workloads::graphs;
use std::sync::Arc;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let alpha = Arc::new(Alphabet::from_chars("abc"));
    let mut group = c.benchmark_group("e8_bounded_eval");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    // (a) data sweep, fixed k = 2.
    for exp in [5u32, 7, 9] {
        let n = 1usize << exp;
        let db = graphs::random_labeled(alpha.clone(), n, 2 * n, 3);
        let mut a2 = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut a2)
            .edge("x", "z{(a|b)+}cz", "y")
            .build()
            .unwrap();
        group.bench_with_input(
            BenchmarkId::new("data_sweep_k2", db.size()),
            &db,
            |b, db| {
                let ev = BoundedEvaluator::new(&q, 2);
                b.iter(|| std::hint::black_box(ev.boolean(db)));
            },
        );
    }
    // (b) k sweep, pruned vs blind.
    let db = graphs::random_labeled(alpha, 64, 128, 4);
    let mut a2 = db.alphabet().clone();
    let q = CxrpqBuilder::new(&mut a2)
        .edge("x", "z{ab*}cz", "y")
        .build()
        .unwrap();
    for k in [1usize, 2, 3] {
        group.bench_with_input(BenchmarkId::new("pruned", k), &k, |b, &k| {
            let ev = BoundedEvaluator::new(&q, k);
            b.iter(|| std::hint::black_box(ev.boolean(&db)));
        });
        group.bench_with_input(BenchmarkId::new("blind", k), &k, |b, &k| {
            let ev = BoundedEvaluator::new(&q, k).without_pruning();
            b.iter(|| std::hint::black_box(ev.boolean(&db)));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
