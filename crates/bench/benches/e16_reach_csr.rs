//! E16: CSR + dense-bitset product search vs the legacy representation.
//!
//! Measures `reach_set` (single-walker `D × M` BFS) and `sync_targets`
//! (synchronized equality-group search) on four graph shapes — line, grid,
//! random, and a label-dense multigraph — against a faithful in-bench
//! reimplementation of the storage this workspace used before the CSR
//! refactor: per-node `Vec<(Symbol, NodeId)>` adjacency filtered per
//! transition, `HashSet<(NodeId, StateId)>` visited sets, and `Vec<bool>`
//! NFA state sets hashed inside whole product configurations.
//!
//! Run: `cargo bench -p cxrpq-bench --bench e16_reach_csr` (add `-- --fast`
//! for the CI smoke configuration). Results are printed as a table and —
//! in full mode — recorded in `BENCH_reach.json` at the workspace root
//! (the crate's manifest directory is baked in at compile time; override
//! the full path with the `BENCH_REACH_OUT` environment variable, which
//! also enables recording in fast mode).

use cxrpq_automata::{parse_regex, Label, Nfa, StateId};
use cxrpq_core::reach::{reach_set, Direction};
use cxrpq_core::sync::{sync_targets, SyncSpec};
use cxrpq_graph::{Alphabet, GraphDb, NodeId, Symbol};
use cxrpq_workloads::graphs;
use std::collections::{HashSet, VecDeque};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------
// Legacy baseline: the pre-CSR storage and search, verbatim in spirit.
// ---------------------------------------------------------------------

/// Insertion-ordered adjacency lists, as `GraphDb` stored them before the
/// CSR refactor.
struct LegacyGraph {
    out: Vec<Vec<(Symbol, NodeId)>>,
    #[allow(dead_code)]
    inc: Vec<Vec<(Symbol, NodeId)>>,
}

impl LegacyGraph {
    fn from_db(db: &GraphDb) -> Self {
        let n = db.node_count();
        let mut out = vec![Vec::new(); n];
        let mut inc = vec![Vec::new(); n];
        for (u, a, v) in db.edges() {
            out[u.index()].push((a, v));
            inc[v.index()].push((a, u));
        }
        Self { out, inc }
    }
}

/// The old `reach_set`: filtered adjacency + hashed `(node, state)` visited.
fn legacy_reach_set(g: &LegacyGraph, nfa: &Nfa, u: NodeId) -> HashSet<NodeId> {
    let mut out = HashSet::new();
    let mut visited: HashSet<(NodeId, StateId)> = HashSet::new();
    let mut queue: VecDeque<(NodeId, StateId)> = VecDeque::new();
    visited.insert((u, nfa.start()));
    queue.push_back((u, nfa.start()));
    while let Some((node, st)) = queue.pop_front() {
        if nfa.is_final(st) {
            out.insert(node);
        }
        for &(l, t) in nfa.transitions(st) {
            match l {
                Label::Eps => {
                    if visited.insert((node, t)) {
                        queue.push_back((node, t));
                    }
                }
                Label::Sym(a) => {
                    for &(b, next) in &g.out[node.index()] {
                        if b == a && visited.insert((next, t)) {
                            queue.push_back((next, t));
                        }
                    }
                }
                Label::Any => {
                    for &(_, next) in &g.out[node.index()] {
                        if visited.insert((next, t)) {
                            queue.push_back((next, t));
                        }
                    }
                }
            }
        }
    }
    out
}

/// The old synchronized configuration: `Vec<bool>` state sets hashed whole.
#[derive(Clone, PartialEq, Eq, Hash)]
struct LegacySyncState {
    positions: Vec<NodeId>,
    statesets: Vec<Vec<bool>>,
}

/// The old equality-group search (the relation the Lemma 3 evaluator uses):
/// per-step symbol intersection via `HashSet<Symbol>`, `Vec<bool>` stepping,
/// hashed whole-configuration visited set.
fn legacy_sync_targets(g: &LegacyGraph, nfas: &[Nfa], starts: &[NodeId]) -> HashSet<Vec<NodeId>> {
    let s = nfas.len();
    let init = LegacySyncState {
        positions: starts.to_vec(),
        statesets: nfas.iter().map(Nfa::start_set).collect(),
    };
    let accepting = |st: &LegacySyncState| (0..s).all(|i| nfas[i].any_final(&st.statesets[i]));
    let mut out = HashSet::new();
    let mut visited: HashSet<LegacySyncState> = HashSet::new();
    let mut queue = VecDeque::new();
    visited.insert(init.clone());
    queue.push_back(init);
    while let Some(st) = queue.pop_front() {
        if accepting(&st) {
            out.insert(st.positions.clone());
        }
        // Candidate symbols: available from every walker.
        let mut syms: Option<HashSet<Symbol>> = None;
        for i in 0..s {
            let here: HashSet<Symbol> = g.out[st.positions[i].index()]
                .iter()
                .map(|&(a, _)| a)
                .collect();
            syms = Some(match syms {
                None => here,
                Some(acc) => acc.intersection(&here).copied().collect(),
            });
            if syms.as_ref().unwrap().is_empty() {
                break;
            }
        }
        for a in syms.unwrap_or_default() {
            let mut next_sets = Vec::with_capacity(s);
            let mut succs: Vec<Vec<NodeId>> = Vec::with_capacity(s);
            let mut dead = false;
            for (i, nfa) in nfas.iter().enumerate() {
                let ns = nfa.step(&st.statesets[i], a);
                if ns.iter().all(|&b| !b) {
                    dead = true;
                    break;
                }
                next_sets.push(ns);
                succs.push(
                    g.out[st.positions[i].index()]
                        .iter()
                        .filter(|&&(b, _)| b == a)
                        .map(|&(_, v)| v)
                        .collect(),
                );
            }
            if dead || succs.iter().any(Vec::is_empty) {
                continue;
            }
            let mut combo = vec![0usize; s];
            loop {
                let positions: Vec<NodeId> = (0..s).map(|i| succs[i][combo[i]]).collect();
                let next = LegacySyncState {
                    positions,
                    statesets: next_sets.clone(),
                };
                if visited.insert(next.clone()) {
                    queue.push_back(next);
                }
                let mut k = s;
                let mut done = true;
                while k > 0 {
                    k -= 1;
                    combo[k] += 1;
                    if combo[k] < succs[k].len() {
                        done = false;
                        break;
                    }
                    combo[k] = 0;
                }
                if done {
                    break;
                }
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

fn median_ms(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<Duration> = (0..iters)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed()
        })
        .collect();
    samples.sort();
    samples[samples.len() / 2].as_secs_f64() * 1e3
}

struct ShapeResult {
    shape: &'static str,
    nodes: usize,
    edges: usize,
    reach_legacy_ms: f64,
    reach_csr_ms: f64,
    sync_legacy_ms: f64,
    sync_csr_ms: f64,
}

fn nfa_of(alpha: &Alphabet, pattern: &str) -> Nfa {
    let mut a = alpha.clone();
    Nfa::from_regex(&parse_regex(pattern, &mut a).unwrap())
}

/// First node with an outgoing `a`-arc (random shapes are seed-dependent;
/// anchoring the searches on such a node keeps them non-trivial).
fn start_with_label(db: &GraphDb, a: Symbol) -> NodeId {
    db.nodes()
        .find(|&n| !db.successors_with(n, a).is_empty())
        .expect("some node carries the label")
}

/// One shape: verify agreement once, then time both implementations.
#[allow(clippy::too_many_arguments)]
fn run_shape(
    shape: &'static str,
    db: &GraphDb,
    reach_nfa: &Nfa,
    reach_from: NodeId,
    def_nfa: Option<Nfa>,
    sync_starts: [NodeId; 2],
    iters: usize,
) -> ShapeResult {
    let legacy = LegacyGraph::from_db(db);
    let spec = SyncSpec::equality_group(def_nfa, 2);

    // Agreement: both implementations must compute identical sets.
    let r_legacy = legacy_reach_set(&legacy, reach_nfa, reach_from);
    let r_csr = reach_set(db, reach_nfa, reach_from, Direction::Forward, None);
    assert_eq!(r_legacy, r_csr, "{shape}: reach_set mismatch");
    let s_legacy = legacy_sync_targets(&legacy, &spec.nfas, &sync_starts);
    let s_csr = sync_targets(db, &spec, &sync_starts, None);
    assert_eq!(s_legacy, s_csr, "{shape}: sync_targets mismatch");

    let reach_legacy_ms = median_ms(iters, || {
        std::hint::black_box(legacy_reach_set(&legacy, reach_nfa, reach_from));
    });
    let reach_csr_ms = median_ms(iters, || {
        std::hint::black_box(reach_set(
            db,
            reach_nfa,
            reach_from,
            Direction::Forward,
            None,
        ));
    });
    let sync_legacy_ms = median_ms(iters, || {
        std::hint::black_box(legacy_sync_targets(&legacy, &spec.nfas, &sync_starts));
    });
    let sync_csr_ms = median_ms(iters, || {
        std::hint::black_box(sync_targets(db, &spec, &sync_starts, None));
    });
    ShapeResult {
        shape,
        nodes: db.node_count(),
        edges: db.edge_count(),
        reach_legacy_ms,
        reach_csr_ms,
        sync_legacy_ms,
        sync_csr_ms,
    }
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let iters = if fast { 3 } else { 9 };
    let scale = if fast { 4 } else { 1 };
    let mut results = Vec::new();

    // Line: two disjoint (ab)^n paths; the sync walkers run in lockstep.
    {
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let n = 1200 / scale;
        let word: Vec<Symbol> = alpha.parse_word(&"ab".repeat(n)).unwrap();
        let (db, (s1, _), (s2, _)) = graphs::two_paths(alpha, &word, &word);
        let reach_nfa = nfa_of(db.alphabet(), "(ab)*");
        let def = nfa_of(db.alphabet(), "(a|b)*");
        results.push(run_shape(
            "line",
            &db,
            &reach_nfa,
            s1,
            Some(def),
            [s1, s2],
            iters,
        ));
    }

    // Grid: bounded degree, high diameter, random labels.
    {
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let side = 28 / scale.min(2);
        let db = graphs::grid_labeled(alpha, side, side, 7);
        let reach_nfa = nfa_of(db.alphabet(), "(a|b)*a");
        results.push(run_shape(
            "grid",
            &db,
            &reach_nfa,
            NodeId(0),
            None,
            [NodeId(0), NodeId(0)],
            iters,
        ));
    }

    // Random sparse multigraph.
    {
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let n = 200 / scale.min(2);
        let db = graphs::random_labeled(alpha, n, 4 * n, 99);
        let a = db.alphabet().sym("a");
        let reach_nfa = nfa_of(db.alphabet(), "a(a|b)*c");
        let def = nfa_of(db.alphabet(), "a(a|b|c)*");
        let s1 = start_with_label(&db, a);
        let s2 = db
            .nodes()
            .find(|&m| m != s1 && !db.successors_with(m, a).is_empty())
            .expect("two a-sources");
        results.push(run_shape(
            "random",
            &db,
            &reach_nfa,
            s1,
            Some(def),
            [s1, s2],
            iters,
        ));
    }

    // Label-dense multigraph: few nodes, 16 labels, heavy parallel arcs —
    // the shape where per-(node, label) ranges beat row filtering hardest.
    {
        let alpha = Arc::new(Alphabet::from_chars("abcdefghijklmnop"));
        let n = 96 / scale.min(2);
        let db = graphs::random_labeled(alpha, n, 24 * n, 41);
        let a = db.alphabet().sym("a");
        let reach_nfa = nfa_of(db.alphabet(), "(a|b)(a|b|c|d)*");
        let def = nfa_of(db.alphabet(), "(a|b|c|d|e|f|g|h)*");
        let s1 = start_with_label(&db, a);
        results.push(run_shape(
            "label-dense",
            &db,
            &reach_nfa,
            s1,
            Some(def),
            [s1, NodeId((s1.0 + 1) % db.node_count() as u32)],
            iters,
        ));
    }

    // Report.
    println!(
        "{:<12} {:>7} {:>7} | {:>12} {:>10} {:>7} | {:>12} {:>10} {:>7}",
        "shape", "nodes", "edges", "reach legacy", "reach csr", "x", "sync legacy", "sync csr", "x"
    );
    for r in &results {
        println!(
            "{:<12} {:>7} {:>7} | {:>10.3}ms {:>8.3}ms {:>6.2}x | {:>10.3}ms {:>8.3}ms {:>6.2}x",
            r.shape,
            r.nodes,
            r.edges,
            r.reach_legacy_ms,
            r.reach_csr_ms,
            r.reach_legacy_ms / r.reach_csr_ms,
            r.sync_legacy_ms,
            r.sync_csr_ms,
            r.sync_legacy_ms / r.sync_csr_ms,
        );
    }

    // JSON record, at the workspace root: two levels above this crate's
    // manifest directory (baked in at compile time, so the path is stable
    // regardless of the invoking CWD). Fast (smoke) runs do not overwrite
    // the committed full-run record unless a path is given explicitly.
    let explicit = std::env::var("BENCH_REACH_OUT").ok();
    if fast && explicit.is_none() {
        println!("\nfast mode: BENCH_reach.json not rewritten (set BENCH_REACH_OUT to record)");
        return;
    }
    let out_path = explicit
        .unwrap_or_else(|| format!("{}/../../BENCH_reach.json", env!("CARGO_MANIFEST_DIR")));
    let mut json = String::from("{\n  \"bench\": \"e16_reach_csr\",\n  \"mode\": ");
    json.push_str(if fast { "\"fast\"" } else { "\"full\"" });
    json.push_str(",\n  \"shapes\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shape\": \"{}\", \"nodes\": {}, \"edges\": {}, \
             \"reach_legacy_ms\": {:.4}, \"reach_csr_ms\": {:.4}, \"reach_speedup\": {:.2}, \
             \"sync_legacy_ms\": {:.4}, \"sync_csr_ms\": {:.4}, \"sync_speedup\": {:.2}}}{}\n",
            r.shape,
            r.nodes,
            r.edges,
            r.reach_legacy_ms,
            r.reach_csr_ms,
            r.reach_legacy_ms / r.reach_csr_ms,
            r.sync_legacy_ms,
            r.sync_csr_ms,
            r.sync_legacy_ms / r.sync_csr_ms,
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("warning: could not write {out_path}: {e}");
    } else {
        println!("\nrecorded {out_path}");
    }
}
