//! Ablation bench: serial vs parallel candidate-mapping enumeration in the
//! bounded-image engine (Theorem 6's NP guess explored across threads), and
//! the witness-extraction overhead relative to Boolean evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxrpq_core::{BoundedEvaluator, CxrpqBuilder, SimpleEvaluator};
use cxrpq_graph::Alphabet;
use cxrpq_workloads::graphs;
use std::sync::Arc;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let alpha = Arc::new(Alphabet::from_chars("abc"));
    let db = graphs::random_labeled(alpha, 64, 160, 9);
    let mut a2 = db.alphabet().clone();
    // Two dependent variables make the mapping space worth splitting.
    let q = CxrpqBuilder::new(&mut a2)
        .edge("x", "y{(a|b)+}c", "m")
        .edge("m", "z{y(a|b)}cz", "n")
        .build()
        .unwrap();
    let mut group = c.benchmark_group("ablation_parallel_bounded");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    let ev = BoundedEvaluator::new(&q, 3);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::new("threads", threads), &threads, |b, &t| {
            b.iter(|| std::hint::black_box(ev.boolean_parallel(&db, t)));
        });
    }
    group.finish();

    // Witness overhead: Boolean decision vs full certificate extraction.
    let mut a3 = db.alphabet().clone();
    let qs = CxrpqBuilder::new(&mut a3)
        .edge("x", "z{(a|b)+}cz", "y")
        .build()
        .unwrap();
    let mut group2 = c.benchmark_group("ablation_witness_overhead");
    group2
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    let simple = SimpleEvaluator::new(&qs).unwrap();
    group2.bench_function("boolean", |b| {
        b.iter(|| std::hint::black_box(simple.boolean(&db)));
    });
    group2.bench_function("witness", |b| {
        b.iter(|| std::hint::black_box(simple.witness(&db).is_some()));
    });
    group2.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
