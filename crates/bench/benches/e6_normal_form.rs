//! Criterion bench for E6/E7 (Theorem 4, Lemma 8): normal-form
//! construction on the exponential chain family vs. the flat family.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxrpq_graph::Symbol;
use cxrpq_xregex::normal_form::{chain_family, flat_family, normal_form};
use cxrpq_xregex::ConjunctiveXregex;
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let a = Symbol(0);
    let mut group = c.benchmark_group("e6_normal_form");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(800));
    for n in [4usize, 6, 8] {
        let (chain, vars) = chain_family(n, a);
        let cx = ConjunctiveXregex::new(vec![chain], vars).unwrap();
        group.bench_with_input(BenchmarkId::new("chain", n), &cx, |b, cx| {
            b.iter(|| std::hint::black_box(normal_form(cx).unwrap().1.output_size));
        });
        let (flat, vars) = flat_family(n, a);
        let fx = ConjunctiveXregex::new(vec![flat], vars).unwrap();
        group.bench_with_input(BenchmarkId::new("flat", n), &fx, |b, fx| {
            b.iter(|| std::hint::black_box(normal_form(fx).unwrap().1.output_size));
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
