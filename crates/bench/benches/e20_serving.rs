//! E20: serving throughput — the shared `QueryCache` + persistent worker
//! pool behind the CLI `serve` subcommand.
//!
//! Three questions on one random labeled graph:
//!
//! 1. **Cold vs warm** — a repeated-query workload through a fresh cache
//!    (every request pays parse + analyze + plan + solve) vs a primed one
//!    (answer hits replay the stored relation). Answers on the cached path
//!    are asserted identical to the cold path, and the warm path is
//!    asserted ≥ 5x faster (acceptance criterion; in practice it is
//!    orders of magnitude). A third pass with the answer budget forced to
//!    zero isolates the plan-hit path (cached parse + plan, fresh solve).
//! 2. **Mixed throughput** — queries/sec over epochs of 80% hot-set /
//!    20% always-fresh requests through one shared cache: epoch 0 is the
//!    cold qps, later epochs the steady-state warm qps.
//! 3. **Pool vs scoped spawns** — `WorkerPool::run_sharded` against the
//!    old per-level `std::thread::scope` dispatch on an identical sharded
//!    workload, isolating the dispatch overhead the pool removes.
//!
//! Run: `cargo bench -p cxrpq-bench --bench e20_serving` (add `-- --fast`
//! for the CI smoke configuration). Full runs record `BENCH_serving.json`
//! at the workspace root; override the path (and enable recording in fast
//! mode) with `BENCH_SERVING_OUT`.

use cxrpq_bench::{median_ms, scoped_spawn_sharded};
use cxrpq_core::{CacheConfig, CacheOutcome, EvalOptions, QueryCache, WorkerPool};
use cxrpq_graph::{Alphabet, GraphDb};
use cxrpq_workloads::graphs;
use std::sync::Arc;

/// The hot set: repeated queries a serving workload keeps asking.
/// Selective patterns, so their answer relations fit the byte budget and
/// the warm path is the answer-hit path.
const HOT: &[&str] = &[
    "ans(x, y) <- (x) -[ abc ]-> (y)",
    "ans(x) <- (x) -[ z{ab}z ]-> (y), (y) -[ c ]-> (x)",
    "ans(x, y) <- (x) -[ a(b|c)a ]-> (y)",
    "ans(x, y) <- (x) -[ ca(a|b) ]-> (y)",
    "ans(y) <- (x) -[ z{ca}z ]-> (y), (y) -[ b ]-> (x)",
    "ans(x, y) <- (x) -[ ab ]-> (y), (y) -[ c ]-> (x)",
    "ans(x) <- (x) -[ abca ]-> (y)",
    "ans(x, y) <- (x) -[ bca|cab ]-> (y)",
];

/// A deterministic, never-repeating fresh query: index `i` encoded as a
/// base-3 word over {a,b,c}, long enough to stay selective.
fn fresh_query(i: usize) -> String {
    let mut w = String::new();
    let mut v = i;
    for _ in 0..5 {
        w.push(['a', 'b', 'c'][v % 3]);
        v /= 3;
    }
    format!("ans(x, y) <- (x) -[ {w}|{w}c ]-> (y)")
}

fn serving_db(scale: usize) -> GraphDb {
    let alpha = Arc::new(Alphabet::from_chars("abc"));
    let n = 300 / scale;
    graphs::random_labeled(alpha, n, 4 * n, 7)
}

fn cache_cfg(answer_budget_bytes: usize) -> CacheConfig {
    CacheConfig {
        shards: 8,
        capacity_per_shard: 256,
        answer_budget_bytes,
    }
}

fn main() {
    let fast = std::env::args().any(|a| a == "--fast");
    let iters = if fast { 3 } else { 9 };
    let scale = if fast { 3 } else { 1 };
    let threads = WorkerPool::global().worker_count();
    let db = serving_db(scale);
    let opts = EvalOptions::default();
    let budget = 256 * 1024;

    // --- 1. Cold vs warm on the repeated workload ------------------------
    // Correctness first: a primed cache must replay exactly the cold
    // answers, and every hot query must actually be served from the
    // answer path once warm.
    let warm_cache = QueryCache::new(cache_cfg(budget));
    let mut cold_answers = Vec::new();
    for q in HOT {
        let cold = warm_cache.answers(&db, q, &opts).unwrap();
        assert_eq!(cold.outcome, CacheOutcome::Miss, "{q}");
        cold_answers.push(cold.answers);
    }
    for (q, cold) in HOT.iter().zip(&cold_answers) {
        let warm = warm_cache.answers(&db, q, &opts).unwrap();
        assert_eq!(
            warm.outcome,
            CacheOutcome::AnswerHit,
            "{q}: hot-set answers must fit the byte budget"
        );
        assert_eq!(&warm.answers, cold, "{q}: cached path diverged from cold");
    }

    let cold_ms = median_ms(iters, || {
        let fresh = QueryCache::new(cache_cfg(budget));
        for q in HOT {
            std::hint::black_box(fresh.answers(&db, q, &opts).unwrap());
        }
    });
    let warm_ms = median_ms(iters, || {
        for q in HOT {
            std::hint::black_box(warm_cache.answers(&db, q, &opts).unwrap());
        }
    });
    let warm_speedup = cold_ms / warm_ms;
    assert!(
        warm_speedup >= 5.0,
        "acceptance: warm hit path must be >= 5x faster than cold \
         (cold {cold_ms:.3}ms, warm {warm_ms:.3}ms, {warm_speedup:.1}x)"
    );

    // Plan-hit path: zero answer budget keeps the parse + plan but
    // re-solves every request.
    let plan_cache = QueryCache::new(cache_cfg(0));
    for q in HOT {
        plan_cache.answers(&db, q, &opts).unwrap();
    }
    for (q, cold) in HOT.iter().zip(&cold_answers) {
        let r = plan_cache.answers(&db, q, &opts).unwrap();
        assert_eq!(r.outcome, CacheOutcome::PlanHit, "{q}");
        assert_eq!(&r.answers, cold, "{q}: plan-hit path diverged from cold");
    }
    let plan_hit_ms = median_ms(iters, || {
        for q in HOT {
            std::hint::black_box(plan_cache.answers(&db, q, &opts).unwrap());
        }
    });

    // --- 2. Mixed repeated/fresh throughput ------------------------------
    let per_epoch = if fast { 40 } else { 200 };
    let warm_epochs = if fast { 1 } else { 3 };
    let mixed = QueryCache::new(cache_cfg(budget));
    let mut fresh_counter = 0usize;
    let mut epoch_qps = Vec::new();
    for _ in 0..=warm_epochs {
        let requests: Vec<String> = (0..per_epoch)
            .map(|i| {
                if i % 5 == 4 {
                    fresh_counter += 1;
                    fresh_query(fresh_counter)
                } else {
                    HOT[i % HOT.len()].to_string()
                }
            })
            .collect();
        let t0 = std::time::Instant::now();
        for q in &requests {
            std::hint::black_box(mixed.answers(&db, q, &opts).unwrap());
        }
        epoch_qps.push(per_epoch as f64 / t0.elapsed().as_secs_f64());
    }
    let cold_qps = epoch_qps[0];
    let warm_qps = {
        let mut w: Vec<f64> = epoch_qps[1..].to_vec();
        w.sort_by(f64::total_cmp);
        w[w.len() / 2]
    };
    let mixed_stats = mixed.stats();
    let hit_rate = mixed_stats.answer_hits as f64 / mixed_stats.lookups as f64;

    // --- 3. Pool dispatch vs per-level scoped spawns ----------------------
    let levels = if fast { 50 } else { 200 };
    let items: Vec<u64> = (0..2048).collect();
    let shards = threads.max(2);
    let pool = WorkerPool::global();
    let expected: u64 = items.iter().sum();
    let pooled: u64 = pool
        .run_sharded(&items, shards, |_, s| s.iter().sum::<u64>())
        .into_iter()
        .sum();
    let scoped: u64 = scoped_spawn_sharded(&items, shards, |_, s| s.iter().sum::<u64>())
        .into_iter()
        .sum();
    assert_eq!(pooled, expected);
    assert_eq!(scoped, expected);
    let scoped_ms = median_ms(iters, || {
        for _ in 0..levels {
            std::hint::black_box(scoped_spawn_sharded(&items, shards, |_, s| {
                s.iter().sum::<u64>()
            }));
        }
    });
    let pool_ms = median_ms(iters, || {
        for _ in 0..levels {
            std::hint::black_box(pool.run_sharded(&items, shards, |_, s| s.iter().sum::<u64>()));
        }
    });

    // --- Report -----------------------------------------------------------
    println!(
        "repeated workload ({} queries, {} nodes, {} edges):",
        HOT.len(),
        db.node_count(),
        db.edge_count()
    );
    println!("  cold (fresh cache)   {cold_ms:>9.3}ms");
    println!("  warm (answer hits)   {warm_ms:>9.3}ms   {warm_speedup:>7.1}x");
    println!(
        "  warm (plan hits)     {plan_hit_ms:>9.3}ms   {:>7.1}x",
        cold_ms / plan_hit_ms
    );
    println!("\nmixed workload ({per_epoch} requests/epoch, 80% hot / 20% fresh):");
    println!("  cold epoch {cold_qps:>10.0} q/s");
    println!("  warm epoch {warm_qps:>10.0} q/s   (answer-hit rate {hit_rate:.2})");
    println!("\ndispatch ({levels} levels x {shards} shards, {threads} worker thread(s)):");
    println!("  scoped spawns        {scoped_ms:>9.3}ms");
    println!(
        "  worker pool          {pool_ms:>9.3}ms   {:>7.2}x",
        scoped_ms / pool_ms
    );
    if threads == 1 {
        println!();
        println!("  note: only ONE worker thread detected; dispatch numbers measure");
        println!("  spawn overhead, not parallel speedup (placeholder for scaling).");
    }

    // --- JSON record -------------------------------------------------------
    let explicit = std::env::var("BENCH_SERVING_OUT").ok();
    if fast && explicit.is_none() {
        println!("\nfast mode: BENCH_serving.json not rewritten (set BENCH_SERVING_OUT to record)");
        return;
    }
    let out_path = explicit
        .unwrap_or_else(|| format!("{}/../../BENCH_serving.json", env!("CARGO_MANIFEST_DIR")));
    let placeholder = threads == 1;
    let json = format!(
        "{{\n  \"bench\": \"e20_serving\",\n  \"mode\": \"{mode}\",\n  \
         \"threads_detected\": {threads},\n  \
         \"parallel_numbers_are_placeholder\": {placeholder},\n  \
         \"repeated_workload\": {{\"queries\": {hot}, \"nodes\": {nodes}, \"edges\": {edges}, \
         \"cold_ms\": {cold_ms:.4}, \"warm_answer_hit_ms\": {warm_ms:.4}, \
         \"warm_speedup\": {warm_speedup:.1}, \"warm_plan_hit_ms\": {plan_hit_ms:.4}, \
         \"plan_hit_speedup\": {plan_speedup:.2}, \"answers_identical\": true}},\n  \
         \"mixed_throughput\": {{\"requests_per_epoch\": {per_epoch}, \"hot_fraction\": 0.8, \
         \"cold_qps\": {cold_qps:.0}, \"warm_qps\": {warm_qps:.0}, \
         \"answer_hit_rate\": {hit_rate:.3}}},\n  \
         \"dispatch\": {{\"levels\": {levels}, \"shards\": {shards}, \
         \"scoped_spawn_ms\": {scoped_ms:.4}, \"pool_ms\": {pool_ms:.4}, \
         \"pool_speedup\": {pool_speedup:.2}}}\n}}\n",
        mode = if fast { "fast" } else { "full" },
        hot = HOT.len(),
        nodes = db.node_count(),
        edges = db.edge_count(),
        plan_speedup = cold_ms / plan_hit_ms,
        pool_speedup = scoped_ms / pool_ms,
    );
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("warning: could not write {out_path}: {e}");
    } else {
        println!("\nrecorded {out_path}");
    }
}
