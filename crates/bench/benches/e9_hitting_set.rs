//! Criterion bench for E9 (Theorem 7, Figure 4): the Hitting-Set reduction
//! to single-edge CXRPQ^{≤1} evaluation — NP-hardness shape in the instance
//! size, against the brute-force baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cxrpq_core::BoundedEvaluator;
use cxrpq_workloads::reductions::{random_hitting_set, theorem7_reduction};
use std::time::Duration;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_hitting_set");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(200))
        .measurement_time(Duration::from_millis(900));
    for universe in [3usize, 4, 5] {
        let inst = random_hitting_set(universe, 3, 2, 2, 7);
        let (db, q) = theorem7_reduction(&inst);
        group.bench_with_input(
            BenchmarkId::new("reduction_bounded", universe),
            &universe,
            |b, _| {
                let ev = BoundedEvaluator::new(&q, 1);
                b.iter(|| std::hint::black_box(ev.boolean(&db)));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("baseline_brute_force", universe),
            &universe,
            |b, _| {
                b.iter(|| std::hint::black_box(inst.brute_force()));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
