//! Shared helpers for the cxrpq benchmark harness.

use std::time::Instant;

/// Milliseconds (fractional) for one invocation of `f`.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Median-of-`n` timing in milliseconds.
pub fn median_ms(n: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..n)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The pre-pool dispatch baseline: per-level scoped thread spawns, shaped
/// exactly like `frontier.rs`'s sharded expansion before the persistent
/// worker pool replaced it. Kept here so the pool benches (e17, e20) can
/// A/B the old dispatch path against `WorkerPool::run_sharded` on the
/// same workload.
pub fn scoped_spawn_sharded<T: Sync, R: Send>(
    items: &[T],
    shards: usize,
    worker: impl Fn(usize, &[T]) -> R + Sync,
) -> Vec<R> {
    if shards <= 1 || items.len() <= 1 {
        return vec![worker(0, items)];
    }
    let chunk = items.len().div_ceil(shards.min(items.len()));
    let worker = &worker;
    std::thread::scope(|s| {
        let handles: Vec<_> = items
            .chunks(chunk)
            .enumerate()
            .map(|(i, slice)| s.spawn(move || worker(i, slice)))
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Renders a markdown table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let t = table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
    }

    #[test]
    fn median_is_finite() {
        let m = median_ms(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(m >= 0.0 && m.is_finite());
    }

    #[test]
    fn scoped_baseline_matches_chunked_results() {
        let items: Vec<u64> = (0..100).collect();
        let sums = scoped_spawn_sharded(&items, 4, |_, s| s.iter().sum::<u64>());
        assert_eq!(sums.iter().sum::<u64>(), items.iter().sum::<u64>());
        assert_eq!(sums.len(), 4);
        let inline = scoped_spawn_sharded(&items, 1, |_, s| s.len());
        assert_eq!(inline, vec![100]);
    }
}
