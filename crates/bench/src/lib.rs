//! Shared helpers for the cxrpq benchmark harness.

use std::time::Instant;

/// Milliseconds (fractional) for one invocation of `f`.
pub fn time_ms<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed().as_secs_f64() * 1e3)
}

/// Median-of-`n` timing in milliseconds.
pub fn median_ms(n: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..n)
        .map(|_| {
            let start = Instant::now();
            f();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Renders a markdown table.
pub fn table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders() {
        let t = table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
    }

    #[test]
    fn median_is_finite() {
        let m = median_ms(3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(m >= 0.0 && m.is_finite());
    }
}
