//! The experiment harness: regenerates every table of EXPERIMENTS.md.
//!
//! Usage:
//! ```text
//! cargo run -p cxrpq-bench --release --bin experiments -- all   > EXPERIMENTS.md
//! cargo run -p cxrpq-bench --release --bin experiments -- e5 e6
//! ```
//!
//! Each experiment corresponds to a paper artefact per the index in
//! DESIGN.md. The output is self-contained markdown with the shape
//! expectations stated inline.

use cxrpq_bench::{median_ms, table, time_ms};
use cxrpq_core::{
    translate, BoundedEvaluator, CrpqEvaluator, EcrpqEvaluator, GenericEvaluator, GenericOutcome,
    LogEvaluator, SimpleEvaluator, VsfEvaluator,
};
use cxrpq_graph::Alphabet;
use cxrpq_workloads::{genealogy, graphs, messages, reductions, witnesses};
use cxrpq_xregex::normal_form::{chain_family, flat_family, normal_form};
use cxrpq_xregex::ConjunctiveXregex;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let want = |name: &str| args.is_empty() || args.iter().any(|a| a == name || a == "all");
    println!("# EXPERIMENTS — paper vs. measured");
    println!();
    println!(
        "Reproduction record for Schmid, *Conjunctive Regular Path Queries with\n\
         String Variables* (PODS 2020). The paper is theoretical, so each\n\
         experiment reproduces the *quantitative content* of a figure,\n\
         theorem, or lemma: correctness of a reduction/translation, the shape\n\
         of a complexity curve, or a construction's size blow-up. Regenerate\n\
         with `cargo run -p cxrpq-bench --release --bin experiments -- all`.\n\
         Absolute times are machine-specific; the claims under test are the\n\
         *shapes* and the boolean agreements."
    );
    println!();
    if want("e1") {
        e1_fig1();
    }
    if want("e2") {
        e2_fig2();
    }
    if want("e3") {
        e3_theorem1();
    }
    if want("e4") {
        e4_theorem3();
    }
    if want("e5") {
        e5_lemma3();
    }
    if want("e6") {
        e6_chain_blowup();
    }
    if want("e7") {
        e7_flat();
    }
    if want("e8") {
        e8_bounded();
    }
    if want("e9") {
        e9_hitting_set();
    }
    if want("e10") {
        e10_log();
    }
    if want("e11") {
        e11_union_crpq();
    }
    if want("e12") {
        e12_expressiveness();
    }
    if want("e13") {
        e13_walkthrough();
    }
    if want("e14") {
        e14_crpq();
    }
    if want("e15") {
        e15_ecrpq_er();
    }
    if want("e16") {
        e16_witnesses_and_semantics();
    }
    if want("e17") {
        e17_parallel();
    }
}

// -------------------------------------------------------------------------

fn e1_fig1() {
    println!("## E1 — Figure 1: RPQ/CRPQ examples on genealogy data");
    println!();
    println!(
        "The four Figure 1 graph patterns evaluated on synthetic academic\n\
         genealogies (p = parent, s = supervisor arcs). Expected shape:\n\
         answer counts grow with population; per-query time stays low-order\n\
         polynomial in |D| (Lemma 1: NL data complexity)."
    );
    println!();
    let mut rows = Vec::new();
    for gens in [4usize, 6, 8] {
        let g = genealogy::generate(gens, 8, 0.7, 42);
        let mut alpha = g.db.alphabet().clone();
        let queries = [
            ("G1", genealogy::fig1_g1(&mut alpha)),
            ("G2", genealogy::fig1_g2(&mut alpha)),
            ("G3", genealogy::fig1_g3(&mut alpha)),
            ("G4", genealogy::fig1_g4(&mut alpha)),
        ];
        for (name, q) in &queries {
            let ev = CrpqEvaluator::new(q);
            let (ans, ms) = time_ms(|| ev.answers(&g.db));
            rows.push(vec![
                format!("{gens}×8"),
                g.db.size().to_string(),
                name.to_string(),
                ans.len().to_string(),
                format!("{ms:.2}"),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &["population", "‖D‖", "query", "answers", "time (ms)"],
            &rows
        )
    );
}

fn e2_fig2() {
    println!("## E2 — Figure 2: CXRPQ examples on message networks");
    println!();
    println!(
        "Figure 2's G3 (hidden-communication) as a CXRPQ^{{≤3}} on networks\n\
         with planted covert pairs. Expected: 100% planted-pair recall;\n\
         false positives only from genuine coincidental channels."
    );
    println!();
    let mut rows = Vec::new();
    for (pop, noise, planted) in [(12usize, 10usize, 2usize), (20, 20, 3), (30, 30, 4)] {
        let net = messages::generate(pop, 3, noise, planted, 7);
        let mut alpha = net.db.alphabet().clone();
        let q = messages::fig2_g3(&mut alpha);
        let ev = BoundedEvaluator::new(&q, 3);
        let (ans, ms) = time_ms(|| ev.answers(&net.db));
        let recalled = net
            .planted
            .iter()
            .filter(|(v1, v2, _)| ans.contains(&vec![*v1, *v2]))
            .count();
        rows.push(vec![
            pop.to_string(),
            net.db.size().to_string(),
            planted.to_string(),
            format!("{recalled}/{planted}"),
            ans.len().to_string(),
            format!("{ms:.1}"),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "people",
                "‖D‖",
                "planted",
                "recalled",
                "answers",
                "time (ms)"
            ],
            &rows
        )
    );
}

fn e3_theorem1() {
    println!("## E3 — Theorem 1: NFA-intersection reduction (PSpace-hardness witness)");
    println!();
    println!(
        "Random k-NFA intersection instances reduced to the *fixed*\n\
         single-edge query α_ni = #z{{(a|b)*}}(##z)*### and evaluated by\n\
         iterative image-bound deepening (Check(s,t)). Expected: 100%\n\
         agreement with the product-automaton ground truth, and cost that\n\
         grows steeply with k — the paper's point is that a fixed query is\n\
         already PSpace-hard in |D|."
    );
    println!();
    let mut rows = Vec::new();
    for k in 1..=4usize {
        let mut agree = 0;
        let mut total = 0;
        let mut ms_sum = 0.0;
        let mut mappings = 0usize;
        for seed in 0..4u64 {
            let inst = reductions::random_nfa_intersection(k, 3, seed * 31 + k as u64);
            let (db, s, t) = reductions::theorem1_database(&inst);
            let mut alpha = db.alphabet().clone();
            let q = reductions::alpha_ni(&mut alpha);
            let expected = inst.intersection_nonempty();
            let cap = inst.shortest_witness().map(|w| w.len()).unwrap_or(5).max(1);
            let ev = GenericEvaluator::new(&q, cap);
            let (outcome, ms) = time_ms(|| ev.check(&db, &[s, t]));
            let got = matches!(outcome, GenericOutcome::Match { .. });
            let (_, stats) = ev.evaluate_with_stats(&db);
            mappings += stats.mappings;
            agree += usize::from(got == expected);
            total += 1;
            ms_sum += ms;
        }
        rows.push(vec![
            k.to_string(),
            format!("{agree}/{total}"),
            mappings.to_string(),
            format!("{:.2}", ms_sum / total as f64),
        ]);
    }
    println!(
        "{}",
        table(
            &["k (NFAs)", "agreement", "mappings tried", "avg time (ms)"],
            &rows
        )
    );
}

fn e4_theorem3() {
    println!("## E4 — Theorem 3: vstar-free variant α^k_ni");
    println!();
    println!(
        "Same instances through the vstar-free query α^k_ni (size Θ(k)),\n\
         evaluated exactly by the Lemma 7 engine — no image bound needed.\n\
         Expected: 100% agreement; query size grows linearly with k."
    );
    println!();
    let mut rows = Vec::new();
    for k in 1..=3usize {
        let mut agree = 0;
        let mut total = 0;
        let mut ms_sum = 0.0;
        let mut qsize = 0;
        for seed in 0..4u64 {
            let inst = reductions::random_nfa_intersection(k, 3, seed * 17 + k as u64);
            let (db, s, t) = reductions::theorem1_database(&inst);
            let mut alpha = db.alphabet().clone();
            let q = reductions::alpha_kni(k, &mut alpha);
            qsize = q.size();
            let expected = inst.intersection_nonempty();
            let ev = VsfEvaluator::new(&q).expect("vstar-free");
            let (got, ms) = time_ms(|| ev.check(&db, &[s, t]));
            agree += usize::from(got == expected);
            total += 1;
            ms_sum += ms;
        }
        rows.push(vec![
            k.to_string(),
            qsize.to_string(),
            format!("{agree}/{total}"),
            format!("{:.2}", ms_sum / total as f64),
        ]);
    }
    println!(
        "{}",
        table(&["k (NFAs)", "‖q‖", "agreement", "avg time (ms)"], &rows)
    );
}

fn simple_query(alpha: &mut Alphabet) -> cxrpq_core::Cxrpq {
    cxrpq_core::CxrpqBuilder::new(alpha)
        .edge("x", "z{(a|b)+}", "y")
        .edge("y", "c*z", "w")
        .build()
        .expect("static")
}

fn e5_lemma3() {
    println!("## E5 — Lemma 3 / Theorem 2: simple-CXRPQ data-complexity scaling");
    println!();
    println!(
        "Fixed simple query x -z{{(a|b)+}}-> y -c*z-> w on random graphs of\n\
         growing size (|E| = 2|V|, |Σ| = 3). Expected: time and explored\n\
         product states grow polynomially (near-linearly) in |D| — the\n\
         executable face of the NL data-complexity bound."
    );
    println!();
    let alpha = Arc::new(Alphabet::from_chars("abc"));
    let mut rows = Vec::new();
    for exp in 5..=10u32 {
        let n = 1usize << exp;
        let db = graphs::random_labeled(alpha.clone(), n, 2 * n, 99);
        let mut a2 = db.alphabet().clone();
        let q = simple_query(&mut a2);
        let ev = SimpleEvaluator::new(&q).expect("simple");
        let ((found, states), ms) = time_ms(|| ev.boolean_with_stats(&db));
        rows.push(vec![
            n.to_string(),
            db.size().to_string(),
            found.to_string(),
            states.to_string(),
            format!("{ms:.2}"),
        ]);
    }
    println!(
        "{}",
        table(
            &["‖V‖", "‖D‖", "matched", "product states", "time (ms)"],
            &rows
        )
    );
}

fn e6_chain_blowup() {
    println!("## E6 — Theorem 4 / §5.3: exponential normal-form blow-up");
    println!();
    println!(
        "The chain family x₁{{a}}x₂{{x₁x₁}}…x_n{{x_{{n-1}}x_{{n-1}}}}: Step 3\n\
         doubles reference counts at every level. Expected: output size\n\
         roughly doubles per step (the paper's Theorem 4 worst case)."
    );
    println!();
    let a = cxrpq_graph::Symbol(0);
    let mut rows = Vec::new();
    let mut prev = 0usize;
    for n in 2..=10usize {
        let (chain, vars) = chain_family(n, a);
        let cx = ConjunctiveXregex::new(vec![chain], vars).unwrap();
        let ((_, stats), ms) = time_ms(|| normal_form(&cx).unwrap());
        let ratio = if prev > 0 {
            format!("{:.2}", stats.output_size as f64 / prev as f64)
        } else {
            "—".to_string()
        };
        prev = stats.output_size;
        rows.push(vec![
            n.to_string(),
            stats.input_size.to_string(),
            stats.output_size.to_string(),
            ratio,
            format!("{ms:.2}"),
        ]);
    }
    println!(
        "{}",
        table(
            &["n", "‖ᾱ‖", "‖normal form‖", "growth ×", "time (ms)"],
            &rows
        )
    );
}

fn e7_flat() {
    println!("## E7 — Lemma 8 / Theorem 5: flat variables stay quadratic");
    println!();
    println!(
        "The flat family x₁{{aa}}x₂{{x₁}}…x_n{{x_{{n-1}}}}x_n (all\n\
         definitions basic). Expected: |normal form| ≤ |ᾱ|² — the polynomial\n\
         bound behind Theorem 5's PSpace combined complexity."
    );
    println!();
    let a = cxrpq_graph::Symbol(0);
    let mut rows = Vec::new();
    for n in 2..=12usize {
        let (flat, vars) = flat_family(n, a);
        let cx = ConjunctiveXregex::new(vec![flat], vars).unwrap();
        let (_, stats) = normal_form(&cx).unwrap();
        rows.push(vec![
            n.to_string(),
            stats.input_size.to_string(),
            stats.output_size.to_string(),
            (stats.input_size * stats.input_size).to_string(),
            (stats.output_size <= stats.input_size * stats.input_size).to_string(),
        ]);
    }
    println!(
        "{}",
        table(
            &["n", "‖ᾱ‖", "‖normal form‖", "‖ᾱ‖²", "≤ quadratic?"],
            &rows
        )
    );
}

fn e8_bounded() {
    println!("## E8 — Theorem 6: CXRPQ^≤k evaluation and the pruning ablation");
    println!();
    println!(
        "(a) Data scaling: fixed query z{{(a|b)+}}cz with k = 2 on growing\n\
         random graphs — expected polynomial (near-linear) growth.\n\
         (b) Combined scaling in k on a fixed graph, with and without\n\
         candidate pruning — expected (|Σ|+1)^{{nk}}-style growth for the\n\
         blind enumeration and far fewer candidate mappings when pruning."
    );
    println!();
    let alpha = Arc::new(Alphabet::from_chars("abc"));
    let mut rows = Vec::new();
    for exp in 5..=9u32 {
        let n = 1usize << exp;
        let db = graphs::random_labeled(alpha.clone(), n, 2 * n, 3);
        let mut a2 = db.alphabet().clone();
        let q = cxrpq_core::CxrpqBuilder::new(&mut a2)
            .edge("x", "z{(a|b)+}cz", "y")
            .build()
            .expect("static");
        let ev = BoundedEvaluator::new(&q, 2);
        let ((found, stats), ms) = time_ms(|| ev.boolean_with_stats(&db));
        rows.push(vec![
            n.to_string(),
            db.size().to_string(),
            found.to_string(),
            stats.mappings.to_string(),
            format!("{ms:.2}"),
        ]);
    }
    println!("### (a) |D| sweep, k = 2");
    println!();
    println!(
        "{}",
        table(&["‖V‖", "‖D‖", "matched", "mappings", "time (ms)"], &rows)
    );

    let db = graphs::random_labeled(alpha, 64, 128, 4);
    let mut a2 = db.alphabet().clone();
    let q = cxrpq_core::CxrpqBuilder::new(&mut a2)
        .edge("x", "z{ab*}cz", "y")
        .build()
        .expect("static");
    let mut rows = Vec::new();
    for k in 1..=4usize {
        let (r1, ms1) = time_ms(|| BoundedEvaluator::new(&q, k).boolean_with_stats(&db));
        let (r2, ms2) = time_ms(|| {
            BoundedEvaluator::new(&q, k)
                .without_pruning()
                .boolean_with_stats(&db)
        });
        assert_eq!(r1.0, r2.0, "ablation changed the verdict");
        rows.push(vec![
            k.to_string(),
            r1.1.mappings.to_string(),
            r2.1.mappings.to_string(),
            format!("{ms1:.2}"),
            format!("{ms2:.2}"),
        ]);
    }
    println!("### (b) k sweep on |V| = 64, pruned vs blind enumeration");
    println!();
    println!(
        "{}",
        table(
            &[
                "k",
                "mappings (pruned)",
                "mappings (blind)",
                "time pruned (ms)",
                "time blind (ms)"
            ],
            &rows
        )
    );
}

fn e9_hitting_set() {
    println!("## E9 — Theorem 7 / Figure 4: Hitting-Set reduction (NP-hardness witness)");
    println!();
    println!(
        "Random Hitting Set instances through the Figure 4 database and the\n\
         single-edge simple CXRPQ^{{≤1}} with (n+2)·k string variables.\n\
         Expected: 100% agreement with brute force and steeply growing cost\n\
         in n·k — single-edge NP-hardness, impossible for acyclic CRPQs."
    );
    println!();
    let mut rows = Vec::new();
    for (n, m, k) in [
        (2usize, 2usize, 1usize),
        (3, 2, 1),
        (4, 2, 1),
        (3, 3, 1),
        (2, 2, 2),
    ] {
        let mut agree = 0;
        let mut total = 0;
        let mut ms_sum = 0.0;
        for seed in 0..3u64 {
            let inst = reductions::random_hitting_set(n, m, 2, k, seed + 100);
            let (db, q) = reductions::theorem7_reduction(&inst);
            let expected = inst.brute_force();
            let ev = BoundedEvaluator::new(&q, 1);
            let (got, ms) = time_ms(|| ev.boolean(&db));
            agree += usize::from(got == expected);
            total += 1;
            ms_sum += ms;
        }
        rows.push(vec![
            format!("n={n}, m={m}, k={k}"),
            ((n + 2) * k).to_string(),
            format!("{agree}/{total}"),
            format!("{:.1}", ms_sum / total as f64),
        ]);
    }
    println!(
        "{}",
        table(
            &["instance", "#variables", "agreement", "avg time (ms)"],
            &rows
        )
    );
}

fn e10_log() {
    println!("## E10 — Corollary 1: CXRPQ^log scaling");
    println!();
    println!(
        "Single-edge query z{{(a|b)+}}cz with k = ⌈log₂|D|⌉ chosen per\n\
         database. Expected: stays feasible as |D| grows (NP combined,\n\
         O(log²|D|) space data complexity); k grows logarithmically."
    );
    println!();
    let alpha = Arc::new(Alphabet::from_chars("abc"));
    let mut rows = Vec::new();
    for exp in 5..=9u32 {
        let n = 1usize << exp;
        let db = graphs::random_labeled(alpha.clone(), n, 2 * n, 11);
        let mut a2 = db.alphabet().clone();
        let q = cxrpq_core::CxrpqBuilder::new(&mut a2)
            .edge("x", "z{(a|b)+}cz", "y")
            .build()
            .expect("static");
        let ev = LogEvaluator::new(&q);
        let k = LogEvaluator::bound_for(&db);
        let ((found, stats), ms) = time_ms(|| ev.boolean_with_stats(&db));
        rows.push(vec![
            db.size().to_string(),
            k.to_string(),
            found.to_string(),
            stats.mappings.to_string(),
            format!("{ms:.2}"),
        ]);
    }
    println!(
        "{}",
        table(
            &["‖D‖", "k = ⌈log₂‖D‖⌉", "matched", "mappings", "time (ms)"],
            &rows
        )
    );
}

fn e11_union_crpq() {
    println!("## E11 — Lemma 14: the ∪-CRPQ expansion and its conciseness gap");
    println!();
    println!(
        "Expanding z{{(a|b)*}}…z into a union of specialized CRPQs. Expected:\n\
         union size grows like Σ^{{≤k}} (exponential in k), while the direct\n\
         CXRPQ^{{≤k}} evaluator pays only for candidates consistent with the\n\
         query — the conciseness gap the paper highlights in §8."
    );
    println!();
    let alpha = Arc::new(Alphabet::from_chars("ab"));
    let db = graphs::random_labeled(alpha, 48, 96, 13);
    let mut a2 = db.alphabet().clone();
    let q = cxrpq_core::CxrpqBuilder::new(&mut a2)
        .edge("x", "z{(a|b)*}az", "y")
        .build()
        .expect("static");
    let mut rows = Vec::new();
    for k in 0..=4usize {
        let (union, ms_build) = time_ms(|| translate::cxrpq_bounded_to_union_crpq(&q, k, 2));
        let direct = median_ms(3, || {
            let _ = BoundedEvaluator::new(&q, k).boolean(&db);
        });
        let expanded = median_ms(3, || {
            let _ = translate::union_crpq_boolean(&union, &db);
        });
        let total_size: usize = union.iter().map(cxrpq_core::Crpq::size).sum();
        rows.push(vec![
            k.to_string(),
            union.len().to_string(),
            total_size.to_string(),
            format!("{ms_build:.2}"),
            format!("{direct:.2}"),
            format!("{expanded:.2}"),
        ]);
    }
    println!(
        "{}",
        table(
            &[
                "k",
                "∪-CRPQ members",
                "Σ‖qᵢ‖",
                "build (ms)",
                "direct eval (ms)",
                "union eval (ms)"
            ],
            &rows
        )
    );
}

fn e12_expressiveness() {
    println!("## E12 — Figure 5 / §7: the expressiveness matrix");
    println!();
    println!(
        "The separation witnesses evaluated on the proof databases. Expected\n\
         boolean patterns are exactly those used in the proofs of Theorems\n\
         9/10 and Lemmas 15/16 (✓ = matches, ✗ = does not)."
    );
    println!();
    let mut rows = Vec::new();
    // q_anbn on D_{n,m}.
    {
        let mut alpha = Alphabet::from_chars("abcd");
        let q = witnesses::q_anbn(&mut alpha);
        for (n, m) in [(3usize, 3usize), (3, 2), (0, 0), (1, 4)] {
            let (db, _, _) = graphs::d_anbm(n, m);
            let got = EcrpqEvaluator::new(&q).boolean(&db);
            rows.push(vec![
                "q_aⁿbⁿ (ECRPQ, equal-length)".into(),
                format!("D(caⁿc, dbᵐd) n={n} m={m}"),
                (n == m).to_string(),
                got.to_string(),
                (got == (n == m)).to_string(),
            ]);
        }
    }
    // q_anan on D_{n,m} with a-paths.
    {
        let mut alpha = Alphabet::from_chars("abcd");
        let q = witnesses::q_anan(&mut alpha);
        for (n, m) in [(2usize, 2usize), (2, 3)] {
            let (db, _, _) = graphs::d_anam(n, m);
            let got = EcrpqEvaluator::new(&q).boolean(&db);
            rows.push(vec![
                "q_aⁿaⁿ (ECRPQ^er, equality)".into(),
                format!("D(caⁿc, daᵐd) n={n} m={m}"),
                (n == m).to_string(),
                got.to_string(),
                (got == (n == m)).to_string(),
            ]);
        }
    }
    // q1 on D_{σ1,σ2}.
    {
        let mut alpha = Alphabet::from_chars("abcd");
        let q = witnesses::q1(&mut alpha);
        for (s1, s2) in [('a', 'a'), ('a', 'c'), ('a', 'b'), ('b', 'b'), ('b', 'a')] {
            let db = witnesses::d_sigma(s1, s2);
            let expected = s1 == s2 || s2 == 'c';
            let got = BoundedEvaluator::new(&q, 1).boolean(&db);
            rows.push(vec![
                "q₁ (CXRPQ^≤1, Lemma 15)".into(),
                format!("D_(σ₁={s1}, σ₂={s2})"),
                expected.to_string(),
                got.to_string(),
                (got == expected).to_string(),
            ]);
        }
    }
    // q2 on the pumping family.
    {
        let mut alpha = Alphabet::from_chars("abc#");
        let q = witnesses::q2(&mut alpha);
        for (p, qq, r, s, expected) in [
            (1usize, 2usize, 1usize, 2usize, true),
            (1, 2, 2, 2, false),
            (1, 1, 1, 2, false),
            (2, 2, 2, 2, true),
        ] {
            let (db, _, _) = witnesses::pumping_path(p, qq, r, s);
            let got = matches!(
                GenericEvaluator::new(&q, 8).evaluate(&db),
                GenericOutcome::Match { .. }
            );
            rows.push(vec![
                "q₂ (CXRPQ, Lemma 16)".into(),
                format!("#(a^{p}b)^{qq}c(a^{r}b)^{s}#"),
                expected.to_string(),
                got.to_string(),
                (got == expected).to_string(),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &["witness query", "database", "expected", "measured", "agree"],
            &rows
        )
    );
    // Translation equivalences (Lemmas 12/13) on a sampled workload.
    println!("### Translation equivalences (Lemmas 12 & 13)");
    println!();
    let mut rows = Vec::new();
    {
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let db = graphs::random_labeled(alpha, 24, 48, 5);
        let mut a2 = db.alphabet().clone();
        let mut pattern = cxrpq_core::GraphPattern::new();
        let x = pattern.node("x");
        let y = pattern.node("y");
        let u = pattern.node("u");
        let v = pattern.node("v");
        let r1 = cxrpq_automata::parse_regex("a(a|b)*", &mut a2).unwrap();
        let r2 = cxrpq_automata::parse_regex("(a|b)*b", &mut a2).unwrap();
        pattern.add_edge(x, r1, y);
        pattern.add_edge(u, r2, v);
        let er = cxrpq_core::Ecrpq::new(
            pattern,
            vec![(cxrpq_core::RegularRelation::equality(2), vec![0, 1])],
            vec![],
        )
        .unwrap();
        let direct = EcrpqEvaluator::new(&er).boolean(&db);
        let tr = translate::ecrpq_er_to_cxrpq(&er).unwrap();
        let via = VsfEvaluator::new(&tr).unwrap().boolean(&db);
        rows.push(vec![
            "Lemma 12: ECRPQ^er → CXRPQ^vsf,fl".into(),
            direct.to_string(),
            via.to_string(),
            (direct == via).to_string(),
        ]);
        let back = translate::cxrpq_vsf_to_union_ecrpq_er(&tr).unwrap();
        let via2 = translate::union_ecrpq_boolean(&back, &db);
        rows.push(vec![
            "Lemma 13: CXRPQ^vsf → ∪-ECRPQ^er".into(),
            via.to_string(),
            via2.to_string(),
            (via == via2).to_string(),
        ]);
    }
    println!(
        "{}",
        table(&["translation", "source", "translated", "agree"], &rows)
    );
}

fn e13_walkthrough() {
    println!("## E13 — §5.1 worked example: normal-form pipeline statistics");
    println!();
    println!(
        "The paper's γ̄ = (x{{a*y{{b*}}az}} ∨ (x{{b*}}(z ∨ y{{c*}})),\n\
         (a* ∨ x)·z{{y(a|b)}}) through Steps 1–3. Expected shape: 3 and 2\n\
         branches after Step 1 (as in the text), modest growth per step."
    );
    println!();
    let mut alpha = Alphabet::from_chars("abc");
    let (comps, vt) = cxrpq_xregex::parse_conjunctive(
        &["x{a*y{b*}az}|(x{b*}(z|y{c*}))", "(a*|x)z{y(a|b)}"],
        &mut alpha,
    )
    .unwrap();
    let cx = ConjunctiveXregex::new(comps, vt).unwrap();
    let (nf, stats) = normal_form(&cx).unwrap();
    let rows = vec![
        vec!["input ‖ᾱ‖".to_string(), stats.input_size.to_string()],
        vec![
            "after Step 1 (Lemma 4)".to_string(),
            stats.after_step1.to_string(),
        ],
        vec![
            "after Step 2 (Lemma 5)".to_string(),
            stats.after_step2.to_string(),
        ],
        vec!["normal form ‖β̄‖".to_string(), stats.output_size.to_string()],
        vec![
            "branches per component".to_string(),
            format!("{:?}", stats.branches),
        ],
        vec!["fresh variables".to_string(), stats.fresh_vars.to_string()],
    ];
    println!("{}", table(&["stage", "value"], &rows));
    println!("Normal form components:");
    println!();
    for (i, line) in nf.render(&alpha).iter().enumerate() {
        println!("- β{}: `{}`", i + 1, line);
    }
    println!();
}

fn e14_crpq() {
    println!("## E14 — Lemma 1: CRPQ baseline data-complexity scaling");
    println!();
    println!(
        "Fixed 2-edge CRPQ (x -a(a|b)*-> y, y -(b|c)+-> z) on growing random\n\
         graphs — the baseline that E5/E8 curves are compared against.\n\
         Expected: near-linear growth in |D|."
    );
    println!();
    let alpha = Arc::new(Alphabet::from_chars("abc"));
    let mut rows = Vec::new();
    for exp in 5..=11u32 {
        let n = 1usize << exp;
        let db = graphs::random_labeled(alpha.clone(), n, 2 * n, 21);
        let mut a2 = db.alphabet().clone();
        let q =
            cxrpq_core::Crpq::build(&[("x", "a(a|b)*", "y"), ("y", "(b|c)+", "z")], &[], &mut a2)
                .unwrap();
        let ev = CrpqEvaluator::new(&q);
        let ((found, states), ms) = time_ms(|| ev.boolean_with_stats(&db));
        rows.push(vec![
            n.to_string(),
            db.size().to_string(),
            found.to_string(),
            states.to_string(),
            format!("{ms:.2}"),
        ]);
    }
    println!(
        "{}",
        table(
            &["‖V‖", "‖D‖", "matched", "product states", "time (ms)"],
            &rows
        )
    );
}

fn e15_ecrpq_er() {
    println!("## E15 — §1.3: ECRPQ^er vs. its CXRPQ translation");
    println!();
    println!(
        "Equality-relation workloads evaluated natively (synchronized\n\
         relation product) and through the Lemma 12 CXRPQ^vsf,fl\n\
         translation. Expected: identical answers; comparable growth shape\n\
         (both engines walk the same synchronized product space)."
    );
    println!();
    let mut rows = Vec::new();
    for scale in [16usize, 32, 64] {
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let db = graphs::random_labeled(alpha.clone(), scale, 2 * scale, 31);
        let mut a2 = db.alphabet().clone();
        let mut pattern = cxrpq_core::GraphPattern::new();
        let x = pattern.node("x");
        let y = pattern.node("y");
        let u = pattern.node("u");
        let v = pattern.node("v");
        let r1 = cxrpq_automata::parse_regex("a(a|b)*", &mut a2).unwrap();
        let r2 = cxrpq_automata::parse_regex("a(a|b)*", &mut a2).unwrap();
        pattern.add_edge(x, r1, y);
        pattern.add_edge(u, r2, v);
        let er = cxrpq_core::Ecrpq::new(
            pattern,
            vec![(cxrpq_core::RegularRelation::equality(2), vec![0, 1])],
            vec![],
        )
        .unwrap();
        let tr = translate::ecrpq_er_to_cxrpq(&er).unwrap();
        let vsf = VsfEvaluator::new(&tr).unwrap();
        let native = median_ms(3, || {
            let _ = EcrpqEvaluator::new(&er).boolean(&db);
        });
        let translated = median_ms(3, || {
            let _ = vsf.boolean(&db);
        });
        let agree = EcrpqEvaluator::new(&er).boolean(&db) == vsf.boolean(&db);
        rows.push(vec![
            db.size().to_string(),
            format!("{native:.2}"),
            format!("{translated:.2}"),
            agree.to_string(),
        ]);
    }
    println!(
        "{}",
        table(
            &["‖D‖", "native ECRPQ^er (ms)", "via CXRPQ (ms)", "agree"],
            &rows
        )
    );
}

// -------------------------------------------------------------------------

fn e16_witnesses_and_semantics() {
    use cxrpq_core::path_semantics::{rpq_holds, PathSemantics};
    use cxrpq_core::CxrpqBuilder;
    use cxrpq_xregex::matcher::MatchConfig;

    println!("## E16 — §8 extensions: witness extraction and path semantics");
    println!();
    println!(
        "Two extensions the paper sketches in §8/§1. (a) Every engine\n\
         returns *certificates* (morphism + paths + variable images); the\n\
         table reports certification agreement with the independent\n\
         backtracking oracle on planted instances. (b) RPQ evaluation under\n\
         arbitrary/trail/simple-path semantics separates on cyclic data\n\
         (\\[34, 36, 35\\] recalled in §1)."
    );
    println!();
    // (a) witness certification sweep.
    let mut rows = Vec::new();
    /// Planted instance: word paths (`"s>t"`, label word), a one-edge
    /// query pattern, and whether a witness must exist.
    type WitnessCase = (&'static [(&'static str, &'static str)], &'static str, bool);
    let cases: &[WitnessCase] = &[
        (
            &[("u>m", "ab"), ("m>v", "c"), ("v>w", "ab")],
            "z{ab|ba}cz",
            true,
        ),
        (
            &[("u>m", "ab"), ("m>v", "c"), ("v>w", "ba")],
            "z{ab|ba}cz",
            false,
        ),
        (&[("u>v", "abab")], "z{ab}z", true),
        (&[("u>v", "abba")], "z{ab}z", false),
        (&[("u>v", "aacaa")], "y{a+}cy", true),
    ];
    for (edges, pat, expect) in cases {
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = cxrpq_graph::GraphBuilder::new(alpha);
        let mut names: std::collections::HashMap<String, cxrpq_graph::NodeId> =
            std::collections::HashMap::new();
        for (pair, w) in *edges {
            let (s, t) = pair.split_once('>').unwrap();
            let sn = *names.entry(s.to_string()).or_insert_with(|| db.add_node());
            let tn = *names.entry(t.to_string()).or_insert_with(|| db.add_node());
            let word = db.alphabet().parse_word(w).unwrap();
            db.add_word_path(sn, &word, tn);
        }
        let mut a2 = db.alphabet().clone();
        let db = db.freeze();
        let q = CxrpqBuilder::new(&mut a2)
            .edge("x", pat, "y")
            .build()
            .unwrap();
        let ev = VsfEvaluator::new(&q).unwrap();
        let w = ev.witness(&db);
        let certified = match &w {
            Some(w) => q.certifies(&db, w, &MatchConfig::default()).is_ok(),
            None => false,
        };
        rows.push(vec![
            pat.to_string(),
            expect.to_string(),
            w.is_some().to_string(),
            if w.is_some() {
                certified.to_string()
            } else {
                "—".to_string()
            },
        ]);
    }
    println!(
        "{}",
        table(
            &["query", "expected match", "witness found", "certified"],
            &rows
        )
    );
    // (b) path-semantics separation on the lollipop family.
    let mut rows2 = Vec::new();
    for loops in [1usize, 2, 3] {
        // s ⇄ m cycle plus s → t; word a^{2·loops + 1} forces `loops` cycles.
        let alpha = Arc::new(Alphabet::from_chars("a"));
        let mut db = cxrpq_graph::GraphBuilder::new(alpha);
        let a = db.alphabet().sym("a");
        let s = db.add_node();
        let m = db.add_node();
        let t = db.add_node();
        db.add_edge(s, a, m);
        db.add_edge(m, a, s);
        db.add_edge(s, a, t);
        let word = "a".repeat(2 * loops + 1);
        let mut a2 = db.alphabet().clone();
        let db = db.freeze();
        let nfa =
            cxrpq_automata::Nfa::from_regex(&cxrpq_automata::parse_regex(&word, &mut a2).unwrap());
        rows2.push(vec![
            format!("a^{}", 2 * loops + 1),
            rpq_holds(&db, &nfa, s, t, PathSemantics::Arbitrary).to_string(),
            rpq_holds(&db, &nfa, s, t, PathSemantics::Trail).to_string(),
            rpq_holds(&db, &nfa, s, t, PathSemantics::SimplePath).to_string(),
        ]);
    }
    println!(
        "{}",
        table(&["query word", "arbitrary", "trail", "simple path"], &rows2)
    );
    println!(
        "Expected: certificates exist exactly for matching instances and all\n\
         certify; trail semantics admits one cycle traversal but not two;\n\
         simple-path semantics admits none."
    );
    println!();
}

fn e17_parallel() {
    use cxrpq_core::CxrpqBuilder;

    println!("## E17 — ablation: parallel candidate-mapping enumeration");
    println!();
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    println!(
        "Theorem 6's NP guess is an independent enumeration, so it splits\n\
         across threads. Expected shape: speedup approaches min(threads,\n\
         cores) with no change in answers (agreement column). This host has\n\
         {cores} core(s) — on a single-core host the expectation degrades to\n\
         ≈1.0× with bounded thread overhead."
    );
    println!();
    // A full-enumeration workload (answers, blind enumeration) so every
    // thread does its whole share — the shape NP-hard instances take when
    // no early exit fires.
    let alpha = Arc::new(Alphabet::from_chars("abc"));
    let db = graphs::random_labeled(alpha, 512, 1536, 9);
    let mut a2 = db.alphabet().clone();
    let q = CxrpqBuilder::new(&mut a2)
        .edge("x", "y{(a|b)+}c", "m")
        .edge("m", "z{y(a|b)}cz", "n")
        .output(&["x", "n"])
        .build()
        .unwrap();
    let ev = BoundedEvaluator::new(&q, 3).without_pruning();
    let serial = ev.answers(&db);
    let base = median_ms(3, || {
        let _ = ev.answers(&db);
    });
    let mut rows = vec![vec![
        "1".to_string(),
        format!("{base:.2}"),
        "1.00".to_string(),
        "true".to_string(),
    ]];
    for threads in [2usize, 4, 8] {
        let t = median_ms(3, || {
            let _ = ev.answers_parallel(&db, threads);
        });
        let agree = ev.answers_parallel(&db, threads) == serial;
        rows.push(vec![
            threads.to_string(),
            format!("{t:.2}"),
            format!("{:.2}", base / t.max(1e-9)),
            agree.to_string(),
        ]);
    }
    println!(
        "{}",
        table(&["threads", "time (ms)", "speedup", "agree"], &rows)
    );
}
