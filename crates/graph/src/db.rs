//! The graph-database multigraph `D = (V_D, E_D)`.
//!
//! Storage is split into two forms:
//!
//! - [`GraphBuilder`] — the mutable construction side. Nodes and arcs are
//!   appended freely (duplicate arcs are rejected, parallel arcs with
//!   distinct labels are allowed, per §2.2 of the paper).
//! - [`GraphDb`] — the frozen, query side, produced by
//!   [`GraphBuilder::freeze`]. Adjacency is stored in CSR (compressed sparse
//!   row) form, label-sorted within each row, in both directions. All arcs
//!   of a node carrying a given label therefore occupy one contiguous range,
//!   so [`GraphDb::successors_with`] / [`GraphDb::predecessors_with`] return
//!   slices instead of filtering — the per-transition inner loop of every
//!   product search in `cxrpq-core`.
//!
//! Every frozen database carries a process-wide monotonically increasing
//! [`GraphDb::generation`] id, which caches (e.g. `ReachCache` in
//! `cxrpq-core`) use to detect being replayed against a different database.

use crate::alphabet::{Alphabet, Symbol};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A node (vertex) of a graph database.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Dense index of the node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

static GENERATION: AtomicU64 = AtomicU64::new(1);

/// The mutable construction side of a graph database.
///
/// Append nodes and arcs, then call [`GraphBuilder::freeze`] to obtain the
/// immutable, CSR-indexed [`GraphDb`]. A frozen database can be thawed back
/// into a builder with [`GraphDb::to_builder`] (used by the rare callers
/// that extend a database after querying it).
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    alphabet: Arc<Alphabet>,
    edges: Vec<(NodeId, Symbol, NodeId)>,
    edge_set: HashSet<(NodeId, Symbol, NodeId)>,
    node_names: Vec<Option<String>>,
}

impl GraphBuilder {
    /// Creates an empty builder over `alphabet`.
    pub fn new(alphabet: Arc<Alphabet>) -> Self {
        Self {
            alphabet,
            edges: Vec::new(),
            edge_set: HashSet::new(),
            node_names: Vec::new(),
        }
    }

    /// The database alphabet Σ.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// A shareable handle to the database alphabet.
    pub fn alphabet_arc(&self) -> Arc<Alphabet> {
        Arc::clone(&self.alphabet)
    }

    /// Adds a fresh anonymous node.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.node_names.len() as u32);
        self.node_names.push(None);
        id
    }

    /// Adds a fresh named node (names are for display/debugging only).
    pub fn add_named_node(&mut self, name: &str) -> NodeId {
        let id = self.add_node();
        self.node_names[id.index()] = Some(name.to_string());
        id
    }

    /// Adds the arc `(u, a, v)`. Returns `false` if it was already present.
    pub fn add_edge(&mut self, u: NodeId, a: Symbol, v: NodeId) -> bool {
        assert!(u.index() < self.node_names.len(), "unknown source node");
        assert!(v.index() < self.node_names.len(), "unknown target node");
        if !self.edge_set.insert((u, a, v)) {
            return false;
        }
        self.edges.push((u, a, v));
        true
    }

    /// Adds a path from `u` to `v` labelled by `word`, creating
    /// `|word| - 1` fresh intermediate nodes.
    ///
    /// This is the convention used throughout the paper's reductions, where
    /// "an arc labelled with `##`" stands for a length-2 path. An empty word
    /// is rejected (graph databases have no ε-arcs; length-0 paths exist
    /// implicitly on every node).
    pub fn add_word_path(&mut self, u: NodeId, word: &[Symbol], v: NodeId) {
        assert!(!word.is_empty(), "cannot add an ε-labelled arc");
        let mut cur = u;
        for (i, &a) in word.iter().enumerate() {
            let next = if i + 1 == word.len() { v } else { self.add_node() };
            self.add_edge(cur, a, next);
            cur = next;
        }
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of distinct arcs added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Freezes the builder into an immutable CSR-indexed database.
    ///
    /// Both adjacency directions are built with a counting sort over the
    /// edge list, then each row is sorted by `(label, neighbour)` so that
    /// per-`(node, label)` ranges are contiguous. Runs in
    /// `O(|V| + |E| log deg_max)`.
    pub fn freeze(self) -> GraphDb {
        let n = self.node_names.len();
        let m = self.edges.len();
        let mut label_counts: Vec<u32> = vec![0; self.alphabet.len()];
        for &(_, a, _) in &self.edges {
            if a.index() >= label_counts.len() {
                label_counts.resize(a.index() + 1, 0);
            }
            label_counts[a.index()] += 1;
        }
        let build = |key: fn(&(NodeId, Symbol, NodeId)) -> NodeId,
                     val: fn(&(NodeId, Symbol, NodeId)) -> (Symbol, NodeId)| {
            let mut off: Vec<u32> = vec![0; n + 1];
            for e in &self.edges {
                off[key(e).index() + 1] += 1;
            }
            for i in 0..n {
                off[i + 1] += off[i];
            }
            let mut cursor = off.clone();
            let mut adj: Vec<(Symbol, NodeId)> = vec![(Symbol(0), NodeId(0)); m];
            for e in &self.edges {
                let k = key(e).index();
                adj[cursor[k] as usize] = val(e);
                cursor[k] += 1;
            }
            for i in 0..n {
                adj[off[i] as usize..off[i + 1] as usize].sort_unstable();
            }
            (off, adj)
        };
        let (out_off, out_adj) = build(|e| e.0, |e| (e.1, e.2));
        let (in_off, in_adj) = build(|e| e.2, |e| (e.1, e.0));
        GraphDb {
            alphabet: self.alphabet,
            generation: GENERATION.fetch_add(1, Ordering::Relaxed),
            out_off,
            out_adj,
            in_off,
            in_adj,
            label_counts,
            node_names: self.node_names,
            shape_hint: std::sync::OnceLock::new(),
        }
    }
}

/// A frozen, CSR-indexed, directed, edge-labelled multigraph over an
/// interned alphabet.
///
/// Nodes are dense `u32` ids; edges are `(source, symbol, target)` triples.
/// Both forward and backward adjacency are maintained so that product
/// searches can run in either direction; each adjacency row is sorted by
/// `(label, neighbour)`.
#[derive(Clone, Debug)]
pub struct GraphDb {
    alphabet: Arc<Alphabet>,
    generation: u64,
    out_off: Vec<u32>,
    out_adj: Vec<(Symbol, NodeId)>,
    in_off: Vec<u32>,
    in_adj: Vec<(Symbol, NodeId)>,
    label_counts: Vec<u32>,
    node_names: Vec<Option<String>>,
    shape_hint: std::sync::OnceLock<(usize, bool)>,
}

/// The contiguous `(label, neighbour)` range of one label within a
/// label-sorted adjacency row.
#[inline]
fn label_range(row: &[(Symbol, NodeId)], a: Symbol) -> &[(Symbol, NodeId)] {
    let lo = row.partition_point(|&(s, _)| s < a);
    let hi = lo + row[lo..].partition_point(|&(s, _)| s == a);
    &row[lo..hi]
}

/// Iterator over the maximal equal-label runs of a label-sorted adjacency
/// row, yielding `(label, run)` pairs. See [`GraphDb::out_label_runs`].
pub struct LabelRuns<'a> {
    rest: &'a [(Symbol, NodeId)],
}

impl<'a> Iterator for LabelRuns<'a> {
    type Item = (Symbol, &'a [(Symbol, NodeId)]);

    fn next(&mut self) -> Option<Self::Item> {
        let &(a, _) = self.rest.first()?;
        let len = self.rest.partition_point(|&(s, _)| s == a);
        let (run, rest) = self.rest.split_at(len);
        self.rest = rest;
        Some((a, run))
    }
}

impl GraphDb {
    /// The database alphabet Σ.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// A shareable handle to the database alphabet.
    pub fn alphabet_arc(&self) -> Arc<Alphabet> {
        Arc::clone(&self.alphabet)
    }

    /// A process-wide monotonically increasing id assigned at freeze time.
    ///
    /// Two databases frozen separately never share a generation (clones
    /// do — they are the same immutable content). Caches keyed by node ids
    /// bind to this id to detect cross-database reuse.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Thaws the database back into a builder holding the same nodes and
    /// arcs (the resulting builder freezes into a *new* generation).
    pub fn to_builder(&self) -> GraphBuilder {
        let mut b = GraphBuilder::new(self.alphabet_arc());
        b.node_names = self.node_names.clone();
        for (u, a, v) in self.edges() {
            b.add_edge(u, a, v);
        }
        b
    }

    /// The display name of a node (its id when unnamed).
    pub fn node_name(&self, v: NodeId) -> String {
        match &self.node_names[v.index()] {
            Some(n) => n.clone(),
            None => format!("v{}", v.0),
        }
    }

    /// Number of nodes |V_D|.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of arcs |E_D|.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_adj.len()
    }

    /// Number of arcs labelled `a`.
    #[inline]
    pub fn label_edge_count(&self, a: Symbol) -> usize {
        self.label_counts.get(a.index()).copied().unwrap_or(0) as usize
    }

    /// Per-label arc counts, indexed by [`Symbol::index`].
    pub fn label_edge_counts(&self) -> &[u32] {
        &self.label_counts
    }

    /// Size measure |D| = |V_D| + |E_D| used for data-complexity sweeps.
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Outgoing arcs of `u` as `(label, target)` pairs, sorted by
    /// `(label, target)`.
    #[inline]
    pub fn out_edges(&self, u: NodeId) -> &[(Symbol, NodeId)] {
        &self.out_adj[self.out_off[u.index()] as usize..self.out_off[u.index() + 1] as usize]
    }

    /// Incoming arcs of `v` as `(label, source)` pairs, sorted by
    /// `(label, source)`.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> &[(Symbol, NodeId)] {
        &self.in_adj[self.in_off[v.index()] as usize..self.in_off[v.index() + 1] as usize]
    }

    /// Arcs `u -a-> ·` as a contiguous slice of the CSR row (every pair's
    /// symbol equals `a`); no per-call filtering.
    #[inline]
    pub fn successors_with(&self, u: NodeId, a: Symbol) -> &[(Symbol, NodeId)] {
        label_range(self.out_edges(u), a)
    }

    /// Arcs `· -a-> v` as a contiguous slice of the reverse CSR row.
    #[inline]
    pub fn predecessors_with(&self, v: NodeId, a: Symbol) -> &[(Symbol, NodeId)] {
        label_range(self.in_edges(v), a)
    }

    /// The maximal equal-label runs of `u`'s outgoing row — one
    /// `(label, contiguous run)` pair per distinct outgoing label.
    pub fn out_label_runs(&self, u: NodeId) -> LabelRuns<'_> {
        LabelRuns {
            rest: self.out_edges(u),
        }
    }

    /// The maximal equal-label runs of `v`'s incoming row.
    pub fn in_label_runs(&self, v: NodeId) -> LabelRuns<'_> {
        LabelRuns {
            rest: self.in_edges(v),
        }
    }

    /// Whether the arc `(u, a, v)` exists (binary search of the CSR row).
    pub fn has_edge(&self, u: NodeId, a: Symbol, v: NodeId) -> bool {
        self.out_edges(u).binary_search(&(a, v)).is_ok()
    }

    /// All arcs, grouped by source and label-sorted within each source.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, Symbol, NodeId)> + '_ {
        self.nodes().flat_map(move |u| {
            self.out_edges(u).iter().map(move |&(a, v)| (u, a, v))
        })
    }

    /// Checks whether there is a path from `u` to `v` labelled exactly `word`.
    ///
    /// Runs a breadth-first frontier scan over `word` (length-0 paths match
    /// the empty word on `u == v`, per §2.2).
    pub fn has_path_labelled(&self, u: NodeId, word: &[Symbol], v: NodeId) -> bool {
        // One bitset dedups every frontier: before each step the previous
        // frontier's bits are removed (O(|frontier|)), so only the initial
        // zeroing touches all |V| bits.
        let mut seen = crate::bitset::DenseBitSet::new(self.node_count());
        let mut nodes = vec![u];
        seen.insert(u.index());
        for &a in word {
            for &n in &nodes {
                seen.remove(n.index());
            }
            let mut next_nodes = Vec::new();
            for &n in &nodes {
                for &(_, t) in self.successors_with(n, a) {
                    if seen.insert(t.index()) {
                        next_nodes.push(t);
                    }
                }
            }
            if next_nodes.is_empty() {
                return false;
            }
            nodes = next_nodes;
        }
        seen.contains(v.index())
    }

    /// Whether a plain (label-oblivious) BFS from two spread sample nodes
    /// exceeds `levels` levels — the "long-diameter" shape hint consumers
    /// use to route batched wavefronts vs per-source product sweeps.
    ///
    /// Computed lazily and memoized on the frozen database (the shape of
    /// an immutable graph never changes), so repeated queries against the
    /// same `GraphDb` pay the `O(|V| + |E|)` probe once. The memo is keyed
    /// by `levels`; a different threshold re-probes without re-caching
    /// (callers use one threshold in practice).
    pub fn long_diameter_hint(&self, levels: usize) -> bool {
        let &(cached_levels, verdict) = self
            .shape_hint
            .get_or_init(|| (levels, self.bfs_depth_exceeds(levels)));
        if cached_levels == levels {
            verdict
        } else {
            self.bfs_depth_exceeds(levels)
        }
    }

    fn bfs_depth_exceeds(&self, levels: usize) -> bool {
        let n = self.node_count();
        if n == 0 {
            return false;
        }
        // Walk both directions: a chain whose arcs run from high ids to
        // low ids is invisible to a forward walk from node 0 but not to
        // the backward one.
        let samples = [NodeId(0), NodeId((n / 2) as u32)];
        let mut seen = crate::bitset::DenseBitSet::new(n);
        let mut frontier: Vec<NodeId> = Vec::new();
        let mut next: Vec<NodeId> = Vec::new();
        for forward in [true, false] {
            for &s in &samples {
                seen.clear();
                frontier.clear();
                seen.insert(s.index());
                frontier.push(s);
                let mut depth = 0usize;
                while !frontier.is_empty() {
                    depth += 1;
                    if depth > levels {
                        return true;
                    }
                    next.clear();
                    for &u in &frontier {
                        let adj = if forward {
                            self.out_edges(u)
                        } else {
                            self.in_edges(u)
                        };
                        for &(_, v) in adj {
                            if seen.insert(v.index()) {
                                next.push(v);
                            }
                        }
                    }
                    std::mem::swap(&mut frontier, &mut next);
                }
            }
        }
        false
    }

    /// Plain (label-oblivious) reachability from `u` to `v`.
    pub fn reachable(&self, u: NodeId, v: NodeId) -> bool {
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![u];
        seen[u.index()] = true;
        while let Some(n) = stack.pop() {
            if n == v {
                return true;
            }
            for &(_, t) in self.out_edges(n) {
                if !seen[t.index()] {
                    seen[t.index()] = true;
                    stack.push(t);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc_builder() -> GraphBuilder {
        GraphBuilder::new(Arc::new(Alphabet::from_chars("abc")))
    }

    #[test]
    fn add_nodes_and_edges() {
        let mut b = abc_builder();
        let a = b.alphabet().sym("a");
        let u = b.add_node();
        let v = b.add_node();
        assert!(b.add_edge(u, a, v));
        assert!(!b.add_edge(u, a, v), "duplicate arc rejected");
        let d = b.freeze();
        assert_eq!(d.node_count(), 2);
        assert_eq!(d.edge_count(), 1);
        assert!(d.has_edge(u, a, v));
        assert!(!d.has_edge(v, a, u));
    }

    #[test]
    fn parallel_edges_with_distinct_labels() {
        let mut bld = abc_builder();
        let (a, b) = (bld.alphabet().sym("a"), bld.alphabet().sym("b"));
        let u = bld.add_node();
        let v = bld.add_node();
        assert!(bld.add_edge(u, a, v));
        assert!(bld.add_edge(u, b, v));
        let d = bld.freeze();
        assert_eq!(d.edge_count(), 2);
        assert_eq!(d.successors_with(u, a), &[(a, v)]);
        assert_eq!(d.label_edge_count(a), 1);
        assert_eq!(d.label_edge_count(b), 1);
    }

    #[test]
    fn word_path_creates_intermediates() {
        let mut b = abc_builder();
        let w = b.alphabet().parse_word("abc").unwrap();
        let u = b.add_node();
        let v = b.add_node();
        b.add_word_path(u, &w, v);
        let d = b.freeze();
        assert_eq!(d.node_count(), 4); // u, v + 2 intermediates
        assert!(d.has_path_labelled(u, &w, v));
        assert!(!d.has_path_labelled(u, &w[..2], v));
    }

    #[test]
    fn empty_word_path_matches_only_self() {
        let mut b = abc_builder();
        let u = b.add_node();
        let v = b.add_node();
        let d = b.freeze();
        assert!(d.has_path_labelled(u, &[], u));
        assert!(!d.has_path_labelled(u, &[], v));
    }

    #[test]
    fn reachable_follows_any_labels() {
        let mut bld = abc_builder();
        let (a, b) = (bld.alphabet().sym("a"), bld.alphabet().sym("b"));
        let u = bld.add_node();
        let m = bld.add_node();
        let v = bld.add_node();
        let w = bld.add_node();
        bld.add_edge(u, a, m);
        bld.add_edge(m, b, v);
        let d = bld.freeze();
        assert!(d.reachable(u, v));
        assert!(!d.reachable(u, w));
        assert!(d.reachable(u, u));
    }

    #[test]
    fn in_edges_mirror_out_edges() {
        let mut b = abc_builder();
        let a = b.alphabet().sym("a");
        let u = b.add_node();
        let v = b.add_node();
        b.add_edge(u, a, v);
        let d = b.freeze();
        assert_eq!(d.in_edges(v), &[(a, u)]);
        assert_eq!(d.out_edges(u), &[(a, v)]);
        assert_eq!(d.predecessors_with(v, a), &[(a, u)]);
    }

    #[test]
    fn named_nodes_display() {
        let mut b = abc_builder();
        let s = b.add_named_node("s");
        let t = b.add_node();
        let d = b.freeze();
        assert_eq!(d.node_name(s), "s");
        assert_eq!(d.node_name(t), "v1");
    }

    #[test]
    fn rows_are_label_sorted_and_ranges_contiguous() {
        let mut bld = abc_builder();
        let (a, b, c) = (
            bld.alphabet().sym("a"),
            bld.alphabet().sym("b"),
            bld.alphabet().sym("c"),
        );
        let u = bld.add_node();
        let xs: Vec<NodeId> = (0..4).map(|_| bld.add_node()).collect();
        // Insert out of label order on purpose.
        bld.add_edge(u, c, xs[0]);
        bld.add_edge(u, a, xs[1]);
        bld.add_edge(u, b, xs[2]);
        bld.add_edge(u, a, xs[3]);
        let d = bld.freeze();
        let row = d.out_edges(u);
        assert!(row.windows(2).all(|w| w[0] <= w[1]), "row sorted");
        assert_eq!(d.successors_with(u, a).len(), 2);
        assert_eq!(d.successors_with(u, b), &[(b, xs[2])]);
        let runs: Vec<(Symbol, usize)> =
            d.out_label_runs(u).map(|(s, r)| (s, r.len())).collect();
        assert_eq!(runs, vec![(a, 2), (b, 1), (c, 1)]);
    }

    #[test]
    fn generations_are_distinct_and_thaw_extends() {
        let mut b = abc_builder();
        let a = b.alphabet().sym("a");
        let u = b.add_node();
        let v = b.add_node();
        b.add_edge(u, a, v);
        let d1 = b.freeze();
        let d2 = d1.clone();
        assert_eq!(d1.generation(), d2.generation(), "clones share content");
        let mut t = d1.to_builder();
        let w = t.add_node();
        t.add_edge(v, a, w);
        let d3 = t.freeze();
        assert_ne!(d1.generation(), d3.generation());
        assert_eq!(d3.edge_count(), 2);
        assert!(d3.has_edge(u, a, v));
        assert!(d3.has_edge(v, a, w));
        assert_eq!(d3.node_name(u), d1.node_name(u));
    }
}
