//! The graph-database multigraph `D = (V_D, E_D)`.

use crate::alphabet::{Alphabet, Symbol};
use std::collections::HashSet;
use std::sync::Arc;

/// A node (vertex) of a graph database.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Dense index of the node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A dense edge identifier (insertion order).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EdgeId(pub u32);

/// A directed, edge-labelled multigraph over an interned alphabet.
///
/// Nodes are dense `u32` ids; edges are `(source, symbol, target)` triples.
/// Both forward and backward adjacency lists are maintained so that product
/// searches can run in either direction.
///
/// Following the paper (§2.2), *parallel* edges with distinct labels are
/// allowed; duplicate `(u, a, v)` triples are rejected to keep `|E_D|`
/// meaningful (a graph database is a set of arcs, not a bag).
#[derive(Clone, Debug)]
pub struct GraphDb {
    alphabet: Arc<Alphabet>,
    out: Vec<Vec<(Symbol, NodeId)>>,
    inc: Vec<Vec<(Symbol, NodeId)>>,
    edge_set: HashSet<(NodeId, Symbol, NodeId)>,
    node_names: Vec<Option<String>>,
}

impl GraphDb {
    /// Creates an empty database over `alphabet`.
    pub fn new(alphabet: Arc<Alphabet>) -> Self {
        Self {
            alphabet,
            out: Vec::new(),
            inc: Vec::new(),
            edge_set: HashSet::new(),
            node_names: Vec::new(),
        }
    }

    /// The database alphabet Σ.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// A shareable handle to the database alphabet.
    pub fn alphabet_arc(&self) -> Arc<Alphabet> {
        Arc::clone(&self.alphabet)
    }

    /// Adds a fresh anonymous node.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.out.len() as u32);
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        self.node_names.push(None);
        id
    }

    /// Adds a fresh named node (names are for display/debugging only).
    pub fn add_named_node(&mut self, name: &str) -> NodeId {
        let id = self.add_node();
        self.node_names[id.index()] = Some(name.to_string());
        id
    }

    /// The display name of a node (its id when unnamed).
    pub fn node_name(&self, v: NodeId) -> String {
        match &self.node_names[v.index()] {
            Some(n) => n.clone(),
            None => format!("v{}", v.0),
        }
    }

    /// Adds the arc `(u, a, v)`. Returns `false` if it was already present.
    pub fn add_edge(&mut self, u: NodeId, a: Symbol, v: NodeId) -> bool {
        assert!(u.index() < self.out.len(), "unknown source node");
        assert!(v.index() < self.out.len(), "unknown target node");
        if !self.edge_set.insert((u, a, v)) {
            return false;
        }
        self.out[u.index()].push((a, v));
        self.inc[v.index()].push((a, u));
        true
    }

    /// Adds a path from `u` to `v` labelled by `word`, creating
    /// `|word| - 1` fresh intermediate nodes.
    ///
    /// This is the convention used throughout the paper's reductions, where
    /// "an arc labelled with `##`" stands for a length-2 path. An empty word
    /// is rejected (graph databases have no ε-arcs; length-0 paths exist
    /// implicitly on every node).
    pub fn add_word_path(&mut self, u: NodeId, word: &[Symbol], v: NodeId) {
        assert!(!word.is_empty(), "cannot add an ε-labelled arc");
        let mut cur = u;
        for (i, &a) in word.iter().enumerate() {
            let next = if i + 1 == word.len() { v } else { self.add_node() };
            self.add_edge(cur, a, next);
            cur = next;
        }
    }

    /// Number of nodes |V_D|.
    pub fn node_count(&self) -> usize {
        self.out.len()
    }

    /// Number of arcs |E_D|.
    pub fn edge_count(&self) -> usize {
        self.edge_set.len()
    }

    /// Size measure |D| = |V_D| + |E_D| used for data-complexity sweeps.
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.out.len() as u32).map(NodeId)
    }

    /// Outgoing arcs of `u` as `(label, target)` pairs.
    #[inline]
    pub fn out_edges(&self, u: NodeId) -> &[(Symbol, NodeId)] {
        &self.out[u.index()]
    }

    /// Incoming arcs of `v` as `(label, source)` pairs.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> &[(Symbol, NodeId)] {
        &self.inc[v.index()]
    }

    /// Successors of `u` along arcs labelled `a`.
    pub fn successors_with(&self, u: NodeId, a: Symbol) -> impl Iterator<Item = NodeId> + '_ {
        self.out[u.index()]
            .iter()
            .filter(move |(s, _)| *s == a)
            .map(|(_, v)| *v)
    }

    /// Whether the arc `(u, a, v)` exists.
    pub fn has_edge(&self, u: NodeId, a: Symbol, v: NodeId) -> bool {
        self.edge_set.contains(&(u, a, v))
    }

    /// All arcs, in unspecified order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, Symbol, NodeId)> + '_ {
        self.out.iter().enumerate().flat_map(|(u, adj)| {
            adj.iter().map(move |(a, v)| (NodeId(u as u32), *a, *v))
        })
    }

    /// Checks whether there is a path from `u` to `v` labelled exactly `word`.
    ///
    /// Runs a breadth-first frontier scan over `word` (length-0 paths match
    /// the empty word on `u == v`, per §2.2).
    pub fn has_path_labelled(&self, u: NodeId, word: &[Symbol], v: NodeId) -> bool {
        let mut frontier: HashSet<NodeId> = HashSet::from([u]);
        for &a in word {
            let mut next = HashSet::new();
            for &n in &frontier {
                for t in self.successors_with(n, a) {
                    next.insert(t);
                }
            }
            if next.is_empty() {
                return false;
            }
            frontier = next;
        }
        frontier.contains(&v)
    }

    /// Plain (label-oblivious) reachability from `u` to `v`.
    pub fn reachable(&self, u: NodeId, v: NodeId) -> bool {
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![u];
        seen[u.index()] = true;
        while let Some(n) = stack.pop() {
            if n == v {
                return true;
            }
            for &(_, t) in self.out_edges(n) {
                if !seen[t.index()] {
                    seen[t.index()] = true;
                    stack.push(t);
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc_db() -> GraphDb {
        GraphDb::new(Arc::new(Alphabet::from_chars("abc")))
    }

    #[test]
    fn add_nodes_and_edges() {
        let mut d = abc_db();
        let a = d.alphabet().sym("a");
        let u = d.add_node();
        let v = d.add_node();
        assert!(d.add_edge(u, a, v));
        assert!(!d.add_edge(u, a, v), "duplicate arc rejected");
        assert_eq!(d.node_count(), 2);
        assert_eq!(d.edge_count(), 1);
        assert!(d.has_edge(u, a, v));
        assert!(!d.has_edge(v, a, u));
    }

    #[test]
    fn parallel_edges_with_distinct_labels() {
        let mut d = abc_db();
        let (a, b) = (d.alphabet().sym("a"), d.alphabet().sym("b"));
        let u = d.add_node();
        let v = d.add_node();
        assert!(d.add_edge(u, a, v));
        assert!(d.add_edge(u, b, v));
        assert_eq!(d.edge_count(), 2);
        assert_eq!(d.successors_with(u, a).collect::<Vec<_>>(), vec![v]);
    }

    #[test]
    fn word_path_creates_intermediates() {
        let mut d = abc_db();
        let w = d.alphabet().parse_word("abc").unwrap();
        let u = d.add_node();
        let v = d.add_node();
        d.add_word_path(u, &w, v);
        assert_eq!(d.node_count(), 4); // u, v + 2 intermediates
        assert!(d.has_path_labelled(u, &w, v));
        assert!(!d.has_path_labelled(u, &w[..2], v));
    }

    #[test]
    fn empty_word_path_matches_only_self() {
        let mut d = abc_db();
        let u = d.add_node();
        let v = d.add_node();
        assert!(d.has_path_labelled(u, &[], u));
        assert!(!d.has_path_labelled(u, &[], v));
    }

    #[test]
    fn reachable_follows_any_labels() {
        let mut d = abc_db();
        let (a, b) = (d.alphabet().sym("a"), d.alphabet().sym("b"));
        let u = d.add_node();
        let m = d.add_node();
        let v = d.add_node();
        let w = d.add_node();
        d.add_edge(u, a, m);
        d.add_edge(m, b, v);
        assert!(d.reachable(u, v));
        assert!(!d.reachable(u, w));
        assert!(d.reachable(u, u));
    }

    #[test]
    fn in_edges_mirror_out_edges() {
        let mut d = abc_db();
        let a = d.alphabet().sym("a");
        let u = d.add_node();
        let v = d.add_node();
        d.add_edge(u, a, v);
        assert_eq!(d.in_edges(v), &[(a, u)]);
        assert_eq!(d.out_edges(u), &[(a, v)]);
    }

    #[test]
    fn named_nodes_display() {
        let mut d = abc_db();
        let s = d.add_named_node("s");
        let t = d.add_node();
        assert_eq!(d.node_name(s), "s");
        assert_eq!(d.node_name(t), "v1");
    }
}
