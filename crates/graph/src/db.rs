//! The graph-database multigraph `D = (V_D, E_D)`.
//!
//! Storage is split into two forms:
//!
//! - [`GraphBuilder`] — the bulk construction side. Nodes and arcs are
//!   appended freely (duplicate arcs are rejected, parallel arcs with
//!   distinct labels are allowed, per §2.2 of the paper).
//! - [`GraphDb`] — the query side, produced by [`GraphBuilder::freeze`].
//!
//! # Layered snapshot storage
//!
//! A `GraphDb` is a *layered* snapshot, LSM-style:
//!
//! - **Base CSR** — adjacency in CSR (compressed sparse row) form,
//!   label-sorted within each row, in both directions. All arcs of a node
//!   carrying a given label occupy one contiguous range.
//! - **Delta overlay** ([`DeltaOverlay`]) — a small mutable per-node,
//!   label-sorted adjacency overlay on top of the base, fed by
//!   [`GraphDb::append`] / [`GraphDb::append_batch`] /
//!   [`GraphDb::append_node`]. Streaming ingestion lands here without
//!   touching the base arrays.
//! - **Compaction** ([`GraphDb::compact`]) — merges the overlay into the
//!   base CSR *row by row*: untouched rows are copied wholesale, touched
//!   rows are two-pointer merged with their (already sorted) delta rows, so
//!   no re-sort of the whole edge list ever happens after the initial
//!   freeze. Compaction does not change the edge set, so it does not mint a
//!   new generation — caches bound to the snapshot stay valid.
//!
//! Row access ([`GraphDb::successors_with`] / [`GraphDb::predecessors_with`]
//! / [`GraphDb::out_edges`] / [`GraphDb::in_edges`]) returns an [`EdgeRun`]:
//! one contiguous base-CSR run chained with one contiguous delta run. On a
//! compacted database the delta side is empty and iteration degenerates to
//! the plain slice walk — the per-transition inner loop of every product
//! search in `cxrpq-core` pays only a predictable branch for the layering.
//!
//! # Generations
//!
//! Every snapshot carries a process-wide unique [`GraphDb::generation`] id
//! identifying its *edge-set content*: freezing mints one, and every
//! successful append mints a fresh one (compaction does not). The freeze-
//! time generation doubles as the database's [`GraphDb::lineage`]. Alongside
//! the global id the database tracks **per-label generations**
//! ([`GraphDb::label_generation`]) — the generation at which arcs of that
//! label last changed — and a bounded append history, so caches can ask
//! [`GraphDb::delta_since`] exactly which labels changed between a snapshot
//! they were filled at and the present one. `ReachCache` in `cxrpq-core`
//! uses this to keep memoized fills across appends that touch no label of
//! its automaton, instead of invalidating wholesale.

use crate::alphabet::{Alphabet, Symbol};
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A node (vertex) of a graph database.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Dense index of the node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

static GENERATION: AtomicU64 = AtomicU64::new(1);

/// The mutable construction side of a graph database.
///
/// Append nodes and arcs, then call [`GraphBuilder::freeze`] to obtain the
/// immutable, CSR-indexed [`GraphDb`]. A frozen database can be thawed back
/// into a builder with [`GraphDb::to_builder`] (used by the rare callers
/// that extend a database after querying it).
#[derive(Clone, Debug)]
pub struct GraphBuilder {
    alphabet: Arc<Alphabet>,
    edges: Vec<(NodeId, Symbol, NodeId)>,
    edge_set: HashSet<(NodeId, Symbol, NodeId)>,
    node_names: Vec<Option<String>>,
}

impl GraphBuilder {
    /// Creates an empty builder over `alphabet`.
    pub fn new(alphabet: Arc<Alphabet>) -> Self {
        Self {
            alphabet,
            edges: Vec::new(),
            edge_set: HashSet::new(),
            node_names: Vec::new(),
        }
    }

    /// The database alphabet Σ.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// A shareable handle to the database alphabet.
    pub fn alphabet_arc(&self) -> Arc<Alphabet> {
        Arc::clone(&self.alphabet)
    }

    /// Adds a fresh anonymous node.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.node_names.len() as u32);
        self.node_names.push(None);
        id
    }

    /// Adds a fresh named node (names are for display/debugging only).
    pub fn add_named_node(&mut self, name: &str) -> NodeId {
        let id = self.add_node();
        self.node_names[id.index()] = Some(name.to_string());
        id
    }

    /// Adds the arc `(u, a, v)`. Returns `false` if it was already present.
    pub fn add_edge(&mut self, u: NodeId, a: Symbol, v: NodeId) -> bool {
        assert!(u.index() < self.node_names.len(), "unknown source node");
        assert!(v.index() < self.node_names.len(), "unknown target node");
        if !self.edge_set.insert((u, a, v)) {
            return false;
        }
        self.edges.push((u, a, v));
        true
    }

    /// Adds a path from `u` to `v` labelled by `word`, creating
    /// `|word| - 1` fresh intermediate nodes.
    ///
    /// This is the convention used throughout the paper's reductions, where
    /// "an arc labelled with `##`" stands for a length-2 path. An empty word
    /// is rejected (graph databases have no ε-arcs; length-0 paths exist
    /// implicitly on every node).
    pub fn add_word_path(&mut self, u: NodeId, word: &[Symbol], v: NodeId) {
        assert!(!word.is_empty(), "cannot add an ε-labelled arc");
        let mut cur = u;
        for (i, &a) in word.iter().enumerate() {
            let next = if i + 1 == word.len() {
                v
            } else {
                self.add_node()
            };
            self.add_edge(cur, a, next);
            cur = next;
        }
    }

    /// Number of nodes added so far.
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of distinct arcs added so far.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Freezes the builder into an immutable CSR-indexed database.
    ///
    /// Both adjacency directions are built with a counting sort over the
    /// edge list, then each row is sorted by `(label, neighbour)` so that
    /// per-`(node, label)` ranges are contiguous. Runs in
    /// `O(|V| + |E| log deg_max)`.
    pub fn freeze(self) -> GraphDb {
        let n = self.node_names.len();
        let m = self.edges.len();
        let mut label_counts: Vec<u32> = vec![0; self.alphabet.len()];
        for &(_, a, _) in &self.edges {
            if a.index() >= label_counts.len() {
                label_counts.resize(a.index() + 1, 0);
            }
            label_counts[a.index()] += 1;
        }
        let build = |key: fn(&(NodeId, Symbol, NodeId)) -> NodeId,
                     val: fn(&(NodeId, Symbol, NodeId)) -> (Symbol, NodeId)| {
            let mut off: Vec<u32> = vec![0; n + 1];
            for e in &self.edges {
                off[key(e).index() + 1] += 1;
            }
            for i in 0..n {
                off[i + 1] += off[i];
            }
            let mut cursor = off.clone();
            let mut adj: Vec<(Symbol, NodeId)> = vec![(Symbol(0), NodeId(0)); m];
            for e in &self.edges {
                let k = key(e).index();
                adj[cursor[k] as usize] = val(e);
                cursor[k] += 1;
            }
            for i in 0..n {
                adj[off[i] as usize..off[i + 1] as usize].sort_unstable();
            }
            (off, adj)
        };
        let (out_off, out_adj) = build(|e| e.0, |e| (e.1, e.2));
        let (in_off, in_adj) = build(|e| e.2, |e| (e.1, e.0));
        let generation = GENERATION.fetch_add(1, Ordering::Relaxed);
        GraphDb {
            alphabet: self.alphabet,
            generation,
            lineage: generation,
            out_off,
            out_adj,
            in_off,
            in_adj,
            label_counts,
            label_generations: Vec::new(),
            node_names: self.node_names,
            delta: DeltaOverlay::default(),
            appends: Vec::new(),
            history_complete: true,
            shape_hint: std::sync::OnceLock::new(),
        }
    }
}

/// The mutable delta layer of a [`GraphDb`]: per-node adjacency rows (both
/// directions) holding the arcs appended since the last freeze/compaction,
/// each row sorted by `(label, neighbour)` exactly like a base CSR row —
/// so per-`(node, label)` delta runs are contiguous and merge with base
/// runs by simple chaining.
///
/// Rows are keyed sparsely by node id: the overlay's memory footprint and
/// [`GraphDb::compact`]'s merge work are both proportional to the set of
/// *touched* rows, never to `|V|`.
#[derive(Clone, Debug, Default)]
pub struct DeltaOverlay {
    out: std::collections::HashMap<u32, Vec<(Symbol, NodeId)>>,
    inn: std::collections::HashMap<u32, Vec<(Symbol, NodeId)>>,
    len: usize,
}

impl DeltaOverlay {
    /// Number of arcs currently in the overlay.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the overlay holds no arcs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of adjacency rows touched (summed over both directions).
    pub fn touched_rows(&self) -> usize {
        self.out.len() + self.inn.len()
    }

    /// Inserts into one direction's row, keeping it `(label, neighbour)`
    /// sorted. Returns `false` when the arc was already present.
    fn insert(
        rows: &mut std::collections::HashMap<u32, Vec<(Symbol, NodeId)>>,
        key: NodeId,
        val: (Symbol, NodeId),
    ) -> bool {
        let row = rows.entry(key.0).or_default();
        match row.binary_search(&val) {
            Ok(_) => false,
            Err(pos) => {
                row.insert(pos, val);
                debug_assert!(
                    row.windows(2).all(|w| w[0] < w[1]),
                    "delta row must stay strictly (label, neighbour)-sorted"
                );
                true
            }
        }
    }
}

/// One merged adjacency run: a contiguous base-CSR run chained with the
/// matching contiguous delta-overlay run. This is what every row accessor
/// of [`GraphDb`] returns instead of a bare slice.
///
/// `EdgeRun` is itself the iterator (it is `Copy`; iterate it directly or
/// via [`IntoIterator`]), yielding `(Symbol, NodeId)` pairs — base arcs
/// first, then delta arcs. Within each layer pairs are `(label, neighbour)`
/// sorted; across the whole run they are *not* globally sorted (the layers
/// are concatenated, not merged), which no product search relies on. On a
/// compacted database the delta side is empty and iteration is exactly the
/// old slice walk.
#[derive(Clone, Copy, Debug, Default)]
pub struct EdgeRun<'a> {
    base: &'a [(Symbol, NodeId)],
    delta: &'a [(Symbol, NodeId)],
}

impl<'a> EdgeRun<'a> {
    #[inline]
    fn new(base: &'a [(Symbol, NodeId)], delta: &'a [(Symbol, NodeId)]) -> Self {
        Self { base, delta }
    }

    /// Total number of arcs in the run.
    #[inline]
    pub fn len(&self) -> usize {
        self.base.len() + self.delta.len()
    }

    /// Whether the run holds no arcs.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.base.is_empty() && self.delta.is_empty()
    }

    /// Random access (base arcs first, then delta arcs) — the synchronized
    /// search's odometer indexes runs directly.
    #[inline]
    pub fn get(&self, i: usize) -> (Symbol, NodeId) {
        if i < self.base.len() {
            self.base[i]
        } else {
            self.delta[i - self.base.len()]
        }
    }

    /// Membership test by binary search of both layers.
    #[inline]
    pub fn contains(&self, pair: (Symbol, NodeId)) -> bool {
        self.base.binary_search(&pair).is_ok() || self.delta.binary_search(&pair).is_ok()
    }

    /// The smallest pair `≥ pair` in `(label, neighbour)` order, by binary
    /// search of both layers (the minimum of the two per-layer successors).
    /// On a single-label run this seeks through neighbours in ascending
    /// `NodeId` order — the sorted-set view a leapfrog intersection needs.
    #[inline]
    pub fn seek_ge(&self, pair: (Symbol, NodeId)) -> Option<(Symbol, NodeId)> {
        let b = self.base[self.base.partition_point(|&e| e < pair)..]
            .first()
            .copied();
        let d = self.delta[self.delta.partition_point(|&e| e < pair)..]
            .first()
            .copied();
        match (b, d) {
            (Some(x), Some(y)) => Some(x.min(y)),
            (x, y) => x.or(y),
        }
    }

    /// The run materialized as a vector (tests and diagnostics).
    pub fn to_vec(self) -> Vec<(Symbol, NodeId)> {
        self.collect()
    }
}

impl Iterator for EdgeRun<'_> {
    type Item = (Symbol, NodeId);

    #[inline]
    fn next(&mut self) -> Option<(Symbol, NodeId)> {
        if let Some((&e, rest)) = self.base.split_first() {
            self.base = rest;
            Some(e)
        } else if let Some((&e, rest)) = self.delta.split_first() {
            self.delta = rest;
            Some(e)
        } else {
            None
        }
    }

    #[inline]
    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.len();
        (n, Some(n))
    }
}

impl ExactSizeIterator for EdgeRun<'_> {}

/// A layered, CSR-indexed, directed, edge-labelled multigraph over an
/// interned alphabet: an immutable label-sorted base CSR plus a small
/// mutable [`DeltaOverlay`] (see the module docs).
///
/// Nodes are dense `u32` ids; edges are `(source, symbol, target)` triples.
/// Both forward and backward adjacency are maintained so that product
/// searches can run in either direction; each adjacency row (base and
/// delta) is sorted by `(label, neighbour)`.
#[derive(Clone, Debug)]
pub struct GraphDb {
    alphabet: Arc<Alphabet>,
    generation: u64,
    /// The freeze-time generation: shared by every snapshot descended from
    /// the same freeze via appends, never by separately frozen databases.
    lineage: u64,
    out_off: Vec<u32>,
    out_adj: Vec<(Symbol, NodeId)>,
    in_off: Vec<u32>,
    in_adj: Vec<(Symbol, NodeId)>,
    label_counts: Vec<u32>,
    /// Per-label generation ids: `label_generations[a]` is the generation
    /// minted by the last append that added an `a`-labelled arc (absent or
    /// 0 = unchanged since freeze, i.e. effectively `lineage`).
    label_generations: Vec<u64>,
    node_names: Vec<Option<String>>,
    delta: DeltaOverlay,
    /// Append history since freeze: one `(generation, changed labels)`
    /// entry per minted generation, ascending, bounded by
    /// [`APPEND_HISTORY_CAP`]. [`GraphDb::delta_since`] answers from it.
    appends: Vec<(u64, Vec<Symbol>)>,
    /// Whether `appends` still reaches back to the freeze (false once the
    /// cap truncated it — `delta_since(lineage)` then answers `None`).
    history_complete: bool,
    shape_hint: std::sync::OnceLock<(usize, bool)>,
}

/// Append-history entries retained before the oldest are dropped; snapshots
/// older than the retained window invalidate caches wholesale (the sound
/// fallback). Generous against any realistic cache-refresh cadence.
const APPEND_HISTORY_CAP: usize = 256;

/// The contiguous `(label, neighbour)` range of one label within a
/// label-sorted adjacency row.
#[inline]
fn label_range(row: &[(Symbol, NodeId)], a: Symbol) -> &[(Symbol, NodeId)] {
    let lo = row.partition_point(|&(s, _)| s < a);
    let hi = lo + row[lo..].partition_point(|&(s, _)| s == a);
    &row[lo..hi]
}

/// Iterator over the maximal equal-label runs of a layered adjacency row,
/// yielding `(label, merged run)` pairs in ascending label order — each run
/// chains the label's base-CSR range with its delta range. See
/// [`GraphDb::out_label_runs`].
pub struct LabelRuns<'a> {
    base: &'a [(Symbol, NodeId)],
    delta: &'a [(Symbol, NodeId)],
}

impl<'a> Iterator for LabelRuns<'a> {
    type Item = (Symbol, EdgeRun<'a>);

    fn next(&mut self) -> Option<Self::Item> {
        let a = match (self.base.first(), self.delta.first()) {
            (Some(&(b, _)), Some(&(d, _))) => b.min(d),
            (Some(&(b, _)), None) => b,
            (None, Some(&(d, _))) => d,
            (None, None) => return None,
        };
        // Both layers are label-sorted and `a` is the smaller head label,
        // so each layer's `a`-run (possibly empty) is a prefix.
        let blen = self.base.partition_point(|&(s, _)| s == a);
        let (brun, brest) = self.base.split_at(blen);
        self.base = brest;
        let dlen = self.delta.partition_point(|&(s, _)| s == a);
        let (drun, drest) = self.delta.split_at(dlen);
        self.delta = drest;
        Some((a, EdgeRun::new(brun, drun)))
    }
}

impl GraphDb {
    /// The database alphabet Σ.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// A shareable handle to the database alphabet.
    pub fn alphabet_arc(&self) -> Arc<Alphabet> {
        Arc::clone(&self.alphabet)
    }

    /// A process-wide unique id identifying this snapshot's edge-set
    /// content: minted at freeze time and re-minted by every successful
    /// append ([`GraphDb::compact`] keeps it — compaction changes layout,
    /// not content).
    ///
    /// Two databases frozen separately never share a generation (clones
    /// do — they are the same content until one of them is appended to).
    /// Caches keyed by node ids bind to this id to detect being replayed
    /// against different content.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The freeze-time generation, shared by every snapshot descended from
    /// the same freeze via appends — the coarse "same database?" test
    /// underneath the per-label [`GraphDb::delta_since`] refinement.
    #[inline]
    pub fn lineage(&self) -> u64 {
        self.lineage
    }

    /// The generation at which arcs labelled `a` last changed: the lineage
    /// (freeze) generation until some append adds an `a`-arc, then that
    /// append's generation.
    #[inline]
    pub fn label_generation(&self, a: Symbol) -> u64 {
        match self.label_generations.get(a.index()) {
            Some(&g) if g != 0 => g,
            _ => self.lineage,
        }
    }

    /// The labels whose arc sets changed after the snapshot `generation`,
    /// in ascending order — or `None` when `generation` is not a known
    /// ancestor of this snapshot (a different lineage, a divergently
    /// appended clone, or history truncated past it), in which case callers
    /// must assume everything changed.
    ///
    /// `Some(vec![])` means the edge content is identical (only node
    /// additions, or no change at all): label-keyed caches may keep
    /// everything.
    pub fn delta_since(&self, generation: u64) -> Option<Vec<Symbol>> {
        if generation == self.generation {
            return Some(Vec::new());
        }
        let start = if generation == self.lineage {
            if !self.history_complete {
                return None;
            }
            0
        } else {
            match self.appends.binary_search_by_key(&generation, |e| e.0) {
                Ok(i) => i + 1,
                Err(_) => return None,
            }
        };
        let mut changed: Vec<Symbol> = Vec::new();
        for (_, labels) in &self.appends[start..] {
            for &l in labels {
                if !changed.contains(&l) {
                    changed.push(l);
                }
            }
        }
        changed.sort_unstable();
        Some(changed)
    }

    /// Thaws the database back into a builder holding the same nodes and
    /// arcs (the resulting builder freezes into a *new* generation).
    pub fn to_builder(&self) -> GraphBuilder {
        let mut b = GraphBuilder::new(self.alphabet_arc());
        b.node_names = self.node_names.clone();
        for (u, a, v) in self.edges() {
            b.add_edge(u, a, v);
        }
        b
    }

    /// The display name of a node (its id when unnamed).
    pub fn node_name(&self, v: NodeId) -> String {
        match &self.node_names[v.index()] {
            Some(n) => n.clone(),
            None => format!("v{}", v.0),
        }
    }

    /// Number of nodes |V_D|.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_names.len()
    }

    /// Number of arcs |E_D| (base CSR plus delta overlay).
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.out_adj.len() + self.delta.len
    }

    /// Number of arcs in the frozen base CSR alone.
    #[inline]
    pub fn base_edge_count(&self) -> usize {
        self.out_adj.len()
    }

    /// Number of arcs in the delta overlay alone (0 on a compacted
    /// database).
    #[inline]
    pub fn delta_edge_count(&self) -> usize {
        self.delta.len
    }

    /// Whether the delta overlay is empty (every arc lives in the base
    /// CSR).
    #[inline]
    pub fn is_compacted(&self) -> bool {
        self.delta.is_empty()
    }

    /// Number of arcs labelled `a` — maintained incrementally across
    /// appends, so plan-time statistics stay delta-aware for free.
    #[inline]
    pub fn label_edge_count(&self, a: Symbol) -> usize {
        self.label_counts.get(a.index()).copied().unwrap_or(0) as usize
    }

    /// Per-label arc counts (base + delta), indexed by [`Symbol::index`].
    pub fn label_edge_counts(&self) -> &[u32] {
        &self.label_counts
    }

    /// Size measure |D| = |V_D| + |E_D| used for data-complexity sweeps.
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// `u`'s base-CSR outgoing row (no delta).
    #[inline]
    fn base_out_row(&self, u: NodeId) -> &[(Symbol, NodeId)] {
        &self.out_adj[self.out_off[u.index()] as usize..self.out_off[u.index() + 1] as usize]
    }

    /// `v`'s base-CSR incoming row (no delta).
    #[inline]
    fn base_in_row(&self, v: NodeId) -> &[(Symbol, NodeId)] {
        &self.in_adj[self.in_off[v.index()] as usize..self.in_off[v.index() + 1] as usize]
    }

    /// `u`'s delta outgoing row (empty unless appends touched `u`).
    #[inline]
    fn delta_out_row(&self, u: NodeId) -> &[(Symbol, NodeId)] {
        if self.delta.len == 0 {
            return &[];
        }
        self.delta.out.get(&u.0).map_or(&[][..], Vec::as_slice)
    }

    /// `v`'s delta incoming row (empty unless appends touched `v`).
    #[inline]
    fn delta_in_row(&self, v: NodeId) -> &[(Symbol, NodeId)] {
        if self.delta.len == 0 {
            return &[];
        }
        self.delta.inn.get(&v.0).map_or(&[][..], Vec::as_slice)
    }

    /// Outgoing arcs of `u` as `(label, target)` pairs: the base run
    /// chained with the delta run, each `(label, target)`-sorted.
    #[inline]
    pub fn out_edges(&self, u: NodeId) -> EdgeRun<'_> {
        EdgeRun::new(self.base_out_row(u), self.delta_out_row(u))
    }

    /// Incoming arcs of `v` as `(label, source)` pairs: the base run
    /// chained with the delta run, each `(label, source)`-sorted.
    #[inline]
    pub fn in_edges(&self, v: NodeId) -> EdgeRun<'_> {
        EdgeRun::new(self.base_in_row(v), self.delta_in_row(v))
    }

    /// Arcs `u -a-> ·` as a merged run: the contiguous `a`-range of the
    /// base CSR row chained with the contiguous `a`-range of the delta row
    /// (every pair's symbol equals `a`); no per-call filtering.
    #[inline]
    pub fn successors_with(&self, u: NodeId, a: Symbol) -> EdgeRun<'_> {
        EdgeRun::new(
            label_range(self.base_out_row(u), a),
            label_range(self.delta_out_row(u), a),
        )
    }

    /// Arcs `· -a-> v` as a merged run over the reverse rows.
    #[inline]
    pub fn predecessors_with(&self, v: NodeId, a: Symbol) -> EdgeRun<'_> {
        EdgeRun::new(
            label_range(self.base_in_row(v), a),
            label_range(self.delta_in_row(v), a),
        )
    }

    /// The maximal equal-label runs of `u`'s outgoing row — one
    /// `(label, merged run)` pair per distinct outgoing label, ascending.
    pub fn out_label_runs(&self, u: NodeId) -> LabelRuns<'_> {
        LabelRuns {
            base: self.base_out_row(u),
            delta: self.delta_out_row(u),
        }
    }

    /// The maximal equal-label runs of `v`'s incoming row.
    pub fn in_label_runs(&self, v: NodeId) -> LabelRuns<'_> {
        LabelRuns {
            base: self.base_in_row(v),
            delta: self.delta_in_row(v),
        }
    }

    /// Whether the arc `(u, a, v)` exists (binary search of the base CSR
    /// row, then the delta row).
    pub fn has_edge(&self, u: NodeId, a: Symbol, v: NodeId) -> bool {
        self.out_edges(u).contains((a, v))
    }

    /// All arcs, grouped by source; within each source the base arcs come
    /// label-sorted first, then any delta arcs.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, Symbol, NodeId)> + '_ {
        self.nodes()
            .flat_map(move |u| self.out_edges(u).map(move |(a, v)| (u, a, v)))
    }

    /// Appends the arc `(u, a, v)` to the delta overlay, minting a fresh
    /// generation. Returns `false` (and mints nothing) if the arc was
    /// already present. See [`GraphDb::append_batch`] for bulk ingestion.
    pub fn append(&mut self, u: NodeId, a: Symbol, v: NodeId) -> bool {
        self.append_batch(&[(u, a, v)]) == 1
    }

    /// Appends a batch of arcs to the delta overlay, minting ONE fresh
    /// generation for the whole batch (none if every arc was a duplicate).
    /// Returns the number of arcs actually added.
    ///
    /// Per arc: `O(log)` duplicate check against both layers plus a sorted
    /// insert into the touched delta rows — no base CSR traffic at all.
    /// Call [`GraphDb::compact`] once the overlay has grown past the point
    /// where merged iteration hurts (measured in `BENCH_streaming.json`).
    pub fn append_batch(&mut self, batch: &[(NodeId, Symbol, NodeId)]) -> usize {
        let mut added = 0usize;
        let mut labels: Vec<Symbol> = Vec::new();
        for &(u, a, v) in batch {
            assert!(u.index() < self.node_names.len(), "unknown source node");
            assert!(v.index() < self.node_names.len(), "unknown target node");
            if self.has_edge(u, a, v) {
                continue;
            }
            DeltaOverlay::insert(&mut self.delta.out, u, (a, v));
            DeltaOverlay::insert(&mut self.delta.inn, v, (a, u));
            self.delta.len += 1;
            if a.index() >= self.label_counts.len() {
                self.label_counts.resize(a.index() + 1, 0);
            }
            self.label_counts[a.index()] += 1;
            if !labels.contains(&a) {
                labels.push(a);
            }
            added += 1;
        }
        if added > 0 {
            labels.sort_unstable();
            let gen = self.mint_generation(labels.clone());
            for a in labels {
                if a.index() >= self.label_generations.len() {
                    self.label_generations.resize(a.index() + 1, 0);
                }
                self.label_generations[a.index()] = gen;
            }
        }
        added
    }

    /// Adds a fresh anonymous node to the live snapshot (its adjacency
    /// rows start empty). Mints a fresh generation with an empty change
    /// set — label-keyed caches survive it.
    pub fn append_node(&mut self) -> NodeId {
        let id = NodeId(self.node_names.len() as u32);
        self.node_names.push(None);
        let out_end = *self.out_off.last().expect("offsets nonempty");
        self.out_off.push(out_end);
        let in_end = *self.in_off.last().expect("offsets nonempty");
        self.in_off.push(in_end);
        self.mint_generation(Vec::new());
        id
    }

    /// [`GraphDb::append_node`] with a display name.
    pub fn append_named_node(&mut self, name: &str) -> NodeId {
        let id = self.append_node();
        self.node_names[id.index()] = Some(name.to_string());
        id
    }

    /// Mints and installs a fresh generation recording `labels` as changed,
    /// and resets the memoized shape hint (the graph just changed shape).
    fn mint_generation(&mut self, labels: Vec<Symbol>) -> u64 {
        let gen = GENERATION.fetch_add(1, Ordering::Relaxed);
        self.generation = gen;
        self.appends.push((gen, labels));
        if self.appends.len() > APPEND_HISTORY_CAP {
            let excess = self.appends.len() - APPEND_HISTORY_CAP;
            self.appends.drain(..excess);
            self.history_complete = false;
        }
        self.shape_hint = std::sync::OnceLock::new();
        gen
    }

    /// Merges the delta overlay into the base CSR, re-freezing only the
    /// touched rows: untouched rows are copied wholesale, touched rows are
    /// two-pointer merged with their sorted delta rows (no re-sort). The
    /// edge set is unchanged, so the generation is kept and bound caches
    /// stay valid; [`GraphDb::delta_since`] keeps answering for the whole
    /// retained append history.
    pub fn compact(&mut self) {
        if self.delta.is_empty() {
            return;
        }
        let delta = std::mem::take(&mut self.delta);
        let n = self.node_names.len();
        merge_side(n, &mut self.out_off, &mut self.out_adj, &delta.out);
        merge_side(n, &mut self.in_off, &mut self.in_adj, &delta.inn);
        debug_assert!(
            self.delta.is_empty() && self.delta.touched_rows() == 0,
            "compact must leave no touched delta rows behind"
        );
        debug_assert_eq!(
            self.out_adj.len(),
            self.in_adj.len(),
            "both directions must hold the same arc multiset after compaction"
        );
    }

    /// Checks whether there is a path from `u` to `v` labelled exactly `word`.
    ///
    /// Runs a breadth-first frontier scan over `word` (length-0 paths match
    /// the empty word on `u == v`, per §2.2).
    pub fn has_path_labelled(&self, u: NodeId, word: &[Symbol], v: NodeId) -> bool {
        // One bitset dedups every frontier: before each step the previous
        // frontier's bits are removed (O(|frontier|)), so only the initial
        // zeroing touches all |V| bits.
        let mut seen = crate::bitset::DenseBitSet::new(self.node_count());
        let mut nodes = vec![u];
        seen.insert(u.index());
        for &a in word {
            for &n in &nodes {
                seen.remove(n.index());
            }
            let mut next_nodes = Vec::new();
            for &n in &nodes {
                for (_, t) in self.successors_with(n, a) {
                    if seen.insert(t.index()) {
                        next_nodes.push(t);
                    }
                }
            }
            if next_nodes.is_empty() {
                return false;
            }
            nodes = next_nodes;
        }
        seen.contains(v.index())
    }

    /// Whether a plain (label-oblivious) BFS from two spread sample nodes
    /// exceeds `levels` levels — the "long-diameter" shape hint consumers
    /// use to route batched wavefronts vs per-source product sweeps.
    ///
    /// Computed lazily and memoized on the frozen database (the shape of
    /// an immutable graph never changes), so repeated queries against the
    /// same `GraphDb` pay the `O(|V| + |E|)` probe once. The memo is keyed
    /// by `levels`; a different threshold re-probes without re-caching
    /// (callers use one threshold in practice).
    pub fn long_diameter_hint(&self, levels: usize) -> bool {
        let &(cached_levels, verdict) = self
            .shape_hint
            .get_or_init(|| (levels, self.bfs_depth_exceeds(levels)));
        if cached_levels == levels {
            verdict
        } else {
            self.bfs_depth_exceeds(levels)
        }
    }

    fn bfs_depth_exceeds(&self, levels: usize) -> bool {
        let n = self.node_count();
        if n == 0 {
            return false;
        }
        // Walk both directions: a chain whose arcs run from high ids to
        // low ids is invisible to a forward walk from node 0 but not to
        // the backward one.
        let samples = [NodeId(0), NodeId((n / 2) as u32)];
        let mut seen = crate::bitset::DenseBitSet::new(n);
        let mut frontier: Vec<NodeId> = Vec::new();
        let mut next: Vec<NodeId> = Vec::new();
        for forward in [true, false] {
            for &s in &samples {
                seen.clear();
                frontier.clear();
                seen.insert(s.index());
                frontier.push(s);
                let mut depth = 0usize;
                while !frontier.is_empty() {
                    depth += 1;
                    if depth > levels {
                        return true;
                    }
                    next.clear();
                    for &u in &frontier {
                        let adj = if forward {
                            self.out_edges(u)
                        } else {
                            self.in_edges(u)
                        };
                        for (_, v) in adj {
                            if seen.insert(v.index()) {
                                next.push(v);
                            }
                        }
                    }
                    std::mem::swap(&mut frontier, &mut next);
                }
            }
        }
        false
    }

    /// Plain (label-oblivious) reachability from `u` to `v`.
    pub fn reachable(&self, u: NodeId, v: NodeId) -> bool {
        let mut seen = vec![false; self.node_count()];
        let mut stack = vec![u];
        seen[u.index()] = true;
        while let Some(n) = stack.pop() {
            if n == v {
                return true;
            }
            for (_, t) in self.out_edges(n) {
                if !seen[t.index()] {
                    seen[t.index()] = true;
                    stack.push(t);
                }
            }
        }
        false
    }
}

/// Merges one direction's delta rows into its base CSR arrays: untouched
/// rows are copied wholesale, touched rows two-pointer merged (both layers
/// are `(label, neighbour)`-sorted, so the result is too).
fn merge_side(
    n: usize,
    off: &mut Vec<u32>,
    adj: &mut Vec<(Symbol, NodeId)>,
    delta_rows: &std::collections::HashMap<u32, Vec<(Symbol, NodeId)>>,
) {
    let extra: usize = delta_rows.values().map(Vec::len).sum();
    if extra == 0 {
        return;
    }
    let mut new_adj: Vec<(Symbol, NodeId)> = Vec::with_capacity(adj.len() + extra);
    let mut new_off: Vec<u32> = Vec::with_capacity(n + 1);
    new_off.push(0);
    for i in 0..n {
        let base = &adj[off[i] as usize..off[i + 1] as usize];
        debug_assert!(
            base.windows(2).all(|w| w[0] < w[1]),
            "base CSR row must be strictly (label, neighbour)-sorted"
        );
        let row_start = new_adj.len();
        match delta_rows.get(&(i as u32)) {
            None => new_adj.extend_from_slice(base),
            Some(d) => {
                debug_assert!(
                    d.windows(2).all(|w| w[0] < w[1]),
                    "delta row must be strictly (label, neighbour)-sorted"
                );
                debug_assert!(
                    d.iter().all(|v| base.binary_search(v).is_err()),
                    "delta row must be disjoint from its base row"
                );
                let (mut bi, mut di) = (0usize, 0usize);
                while bi < base.len() && di < d.len() {
                    if base[bi] <= d[di] {
                        new_adj.push(base[bi]);
                        bi += 1;
                    } else {
                        new_adj.push(d[di]);
                        di += 1;
                    }
                }
                new_adj.extend_from_slice(&base[bi..]);
                new_adj.extend_from_slice(&d[di..]);
            }
        }
        debug_assert!(
            new_adj[row_start..].windows(2).all(|w| w[0] < w[1]),
            "merged row must come out strictly (label, neighbour)-sorted"
        );
        new_off.push(new_adj.len() as u32);
    }
    *off = new_off;
    *adj = new_adj;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc_builder() -> GraphBuilder {
        GraphBuilder::new(Arc::new(Alphabet::from_chars("abc")))
    }

    #[test]
    fn add_nodes_and_edges() {
        let mut b = abc_builder();
        let a = b.alphabet().sym("a");
        let u = b.add_node();
        let v = b.add_node();
        assert!(b.add_edge(u, a, v));
        assert!(!b.add_edge(u, a, v), "duplicate arc rejected");
        let d = b.freeze();
        assert_eq!(d.node_count(), 2);
        assert_eq!(d.edge_count(), 1);
        assert!(d.has_edge(u, a, v));
        assert!(!d.has_edge(v, a, u));
    }

    #[test]
    fn parallel_edges_with_distinct_labels() {
        let mut bld = abc_builder();
        let (a, b) = (bld.alphabet().sym("a"), bld.alphabet().sym("b"));
        let u = bld.add_node();
        let v = bld.add_node();
        assert!(bld.add_edge(u, a, v));
        assert!(bld.add_edge(u, b, v));
        let d = bld.freeze();
        assert_eq!(d.edge_count(), 2);
        assert_eq!(d.successors_with(u, a).to_vec(), vec![(a, v)]);
        assert_eq!(d.label_edge_count(a), 1);
        assert_eq!(d.label_edge_count(b), 1);
    }

    #[test]
    fn word_path_creates_intermediates() {
        let mut b = abc_builder();
        let w = b.alphabet().parse_word("abc").unwrap();
        let u = b.add_node();
        let v = b.add_node();
        b.add_word_path(u, &w, v);
        let d = b.freeze();
        assert_eq!(d.node_count(), 4); // u, v + 2 intermediates
        assert!(d.has_path_labelled(u, &w, v));
        assert!(!d.has_path_labelled(u, &w[..2], v));
    }

    #[test]
    fn empty_word_path_matches_only_self() {
        let mut b = abc_builder();
        let u = b.add_node();
        let v = b.add_node();
        let d = b.freeze();
        assert!(d.has_path_labelled(u, &[], u));
        assert!(!d.has_path_labelled(u, &[], v));
    }

    #[test]
    fn reachable_follows_any_labels() {
        let mut bld = abc_builder();
        let (a, b) = (bld.alphabet().sym("a"), bld.alphabet().sym("b"));
        let u = bld.add_node();
        let m = bld.add_node();
        let v = bld.add_node();
        let w = bld.add_node();
        bld.add_edge(u, a, m);
        bld.add_edge(m, b, v);
        let d = bld.freeze();
        assert!(d.reachable(u, v));
        assert!(!d.reachable(u, w));
        assert!(d.reachable(u, u));
    }

    #[test]
    fn seek_ge_over_base_delta_and_straddling_runs() {
        let mut bld = abc_builder();
        let (a, b) = (bld.alphabet().sym("a"), bld.alphabet().sym("b"));
        let base = bld.add_node(); // 0: base-layer arcs only
        let fresh = bld.add_node(); // 1: delta-layer arcs only
        let mixed = bld.add_node(); // 2: arcs in both layers
        for _ in 0..8 {
            bld.add_node(); // targets 3..=10
        }
        for t in [4, 6, 8] {
            bld.add_edge(base, a, NodeId(t));
            bld.add_edge(mixed, a, NodeId(t));
        }
        let mut d = bld.freeze();
        for (s, t) in [(fresh, 5), (fresh, 7), (mixed, 5), (mixed, 9)] {
            assert!(d.append(s, a, NodeId(t)));
        }

        let base_only = d.successors_with(base, a); // {4, 6, 8}, all base
        assert_eq!(base_only.seek_ge((a, NodeId(0))), Some((a, NodeId(4))));
        assert_eq!(base_only.seek_ge((a, NodeId(5))), Some((a, NodeId(6))));
        assert_eq!(base_only.seek_ge((a, NodeId(8))), Some((a, NodeId(8))));
        assert_eq!(base_only.seek_ge((a, NodeId(9))), None);
        assert!(base_only.contains((a, NodeId(6))));
        assert!(!base_only.contains((a, NodeId(5))));

        let delta_only = d.successors_with(fresh, a); // {5, 7}, all delta
        assert_eq!(delta_only.seek_ge((a, NodeId(0))), Some((a, NodeId(5))));
        assert_eq!(delta_only.seek_ge((a, NodeId(6))), Some((a, NodeId(7))));
        assert_eq!(delta_only.seek_ge((a, NodeId(8))), None);
        assert!(delta_only.contains((a, NodeId(7))));

        // Straddling: {4, 6, 8} base ∪ {5, 9} delta — the successor is the
        // minimum across both layers, whichever holds it.
        let both = d.successors_with(mixed, a);
        assert_eq!(both.seek_ge((a, NodeId(0))), Some((a, NodeId(4)))); // base
        assert_eq!(both.seek_ge((a, NodeId(5))), Some((a, NodeId(5)))); // delta
        assert_eq!(both.seek_ge((a, NodeId(7))), Some((a, NodeId(8)))); // base
        assert_eq!(both.seek_ge((a, NodeId(9))), Some((a, NodeId(9)))); // delta
        assert_eq!(both.seek_ge((a, NodeId(10))), None);
        assert!(both.contains((a, NodeId(9))) && both.contains((a, NodeId(8))));
        // An empty run seeks to nothing.
        assert_eq!(d.successors_with(base, b).seek_ge((b, NodeId(0))), None);
        // Compacting merges the layers without changing the answers.
        d.compact();
        let merged = d.successors_with(mixed, a);
        assert_eq!(merged.seek_ge((a, NodeId(5))), Some((a, NodeId(5))));
        assert_eq!(merged.seek_ge((a, NodeId(10))), None);
    }

    #[test]
    fn in_edges_mirror_out_edges() {
        let mut b = abc_builder();
        let a = b.alphabet().sym("a");
        let u = b.add_node();
        let v = b.add_node();
        b.add_edge(u, a, v);
        let d = b.freeze();
        assert_eq!(d.in_edges(v).to_vec(), vec![(a, u)]);
        assert_eq!(d.out_edges(u).to_vec(), vec![(a, v)]);
        assert_eq!(d.predecessors_with(v, a).to_vec(), vec![(a, u)]);
    }

    #[test]
    fn named_nodes_display() {
        let mut b = abc_builder();
        let s = b.add_named_node("s");
        let t = b.add_node();
        let d = b.freeze();
        assert_eq!(d.node_name(s), "s");
        assert_eq!(d.node_name(t), "v1");
    }

    #[test]
    fn rows_are_label_sorted_and_ranges_contiguous() {
        let mut bld = abc_builder();
        let (a, b, c) = (
            bld.alphabet().sym("a"),
            bld.alphabet().sym("b"),
            bld.alphabet().sym("c"),
        );
        let u = bld.add_node();
        let xs: Vec<NodeId> = (0..4).map(|_| bld.add_node()).collect();
        // Insert out of label order on purpose.
        bld.add_edge(u, c, xs[0]);
        bld.add_edge(u, a, xs[1]);
        bld.add_edge(u, b, xs[2]);
        bld.add_edge(u, a, xs[3]);
        let d = bld.freeze();
        let row = d.out_edges(u).to_vec();
        assert!(row.windows(2).all(|w| w[0] <= w[1]), "row sorted");
        assert_eq!(d.successors_with(u, a).len(), 2);
        assert_eq!(d.successors_with(u, b).to_vec(), vec![(b, xs[2])]);
        let runs: Vec<(Symbol, usize)> = d.out_label_runs(u).map(|(s, r)| (s, r.len())).collect();
        assert_eq!(runs, vec![(a, 2), (b, 1), (c, 1)]);
    }

    #[test]
    fn generations_are_distinct_and_thaw_extends() {
        let mut b = abc_builder();
        let a = b.alphabet().sym("a");
        let u = b.add_node();
        let v = b.add_node();
        b.add_edge(u, a, v);
        let d1 = b.freeze();
        let d2 = d1.clone();
        assert_eq!(d1.generation(), d2.generation(), "clones share content");
        let mut t = d1.to_builder();
        let w = t.add_node();
        t.add_edge(v, a, w);
        let d3 = t.freeze();
        assert_ne!(d1.generation(), d3.generation());
        assert_eq!(d3.edge_count(), 2);
        assert!(d3.has_edge(u, a, v));
        assert!(d3.has_edge(v, a, w));
        assert_eq!(d3.node_name(u), d1.node_name(u));
    }

    /// a-line over three nodes frozen, then appends on top.
    fn line3() -> (GraphDb, Symbol, Symbol, [NodeId; 3]) {
        let mut bld = abc_builder();
        let (a, b) = (bld.alphabet().sym("a"), bld.alphabet().sym("b"));
        let n0 = bld.add_node();
        let n1 = bld.add_node();
        let n2 = bld.add_node();
        bld.add_edge(n0, a, n1);
        bld.add_edge(n1, a, n2);
        (bld.freeze(), a, b, [n0, n1, n2])
    }

    #[test]
    fn append_lands_in_merged_runs_both_directions() {
        let (mut d, a, b, [n0, n1, n2]) = line3();
        let g0 = d.generation();
        assert!(d.append(n0, b, n2));
        assert!(!d.append(n0, b, n2), "duplicate append rejected");
        assert!(!d.append(n0, a, n1), "base duplicate rejected too");
        assert_ne!(d.generation(), g0, "append mints a generation");
        assert_eq!(d.lineage(), g0, "lineage sticks to the freeze");
        assert_eq!(d.edge_count(), 3);
        assert_eq!(d.base_edge_count(), 2);
        assert_eq!(d.delta_edge_count(), 1);
        assert!(!d.is_compacted());
        assert_eq!(d.label_edge_count(b), 1, "counts are delta-aware");
        assert!(d.has_edge(n0, b, n2));
        assert_eq!(d.successors_with(n0, b).to_vec(), vec![(b, n2)]);
        assert_eq!(d.predecessors_with(n2, b).to_vec(), vec![(b, n0)]);
        assert_eq!(d.out_edges(n0).to_vec(), vec![(a, n1), (b, n2)]);
        assert_eq!(d.in_edges(n2).to_vec(), vec![(a, n1), (b, n0)]);
        // Merged label runs stay ascending with per-label merged ranges.
        let runs: Vec<(Symbol, Vec<(Symbol, NodeId)>)> =
            d.out_label_runs(n0).map(|(s, r)| (s, r.to_vec())).collect();
        assert_eq!(runs, vec![(a, vec![(a, n1)]), (b, vec![(b, n2)])]);
        // Paths can cross layer boundaries.
        assert!(d.has_path_labelled(n0, &[b], n2));
        assert!(d.reachable(n0, n2));
    }

    #[test]
    fn append_batch_mints_one_generation_and_merges_label_runs() {
        let (mut d, a, b, [n0, n1, n2]) = line3();
        let g0 = d.generation();
        let added = d.append_batch(&[(n0, a, n2), (n0, b, n1), (n0, a, n1)]);
        assert_eq!(added, 2, "one duplicate skipped");
        assert_eq!(d.delta_since(g0), Some(vec![a, b]));
        // The a-run now spans both layers: base (a, n1) + delta (a, n2).
        assert_eq!(d.successors_with(n0, a).to_vec(), vec![(a, n1), (a, n2)]);
        let runs: Vec<(Symbol, usize)> = d.out_label_runs(n0).map(|(s, r)| (s, r.len())).collect();
        assert_eq!(runs, vec![(a, 2), (b, 1)]);
    }

    #[test]
    fn compact_preserves_content_and_generation() {
        let (mut d, a, b, [n0, n1, n2]) = line3();
        d.append(n0, b, n2);
        d.append(n2, a, n0);
        let before: std::collections::BTreeSet<_> = d.edges().collect();
        let gen = d.generation();
        d.compact();
        assert!(d.is_compacted());
        assert_eq!(d.generation(), gen, "compaction keeps the generation");
        assert_eq!(d.edge_count(), 4);
        assert_eq!(d.base_edge_count(), 4);
        let after: std::collections::BTreeSet<_> = d.edges().collect();
        assert_eq!(before, after);
        // Compacted rows are globally (label, neighbour)-sorted again.
        let row = d.out_edges(n0).to_vec();
        assert!(row.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(d.successors_with(n0, b).to_vec(), vec![(b, n2)]);
        assert_eq!(d.predecessors_with(n0, a).to_vec(), vec![(a, n2)]);
        // History survives compaction: a cache bound before the appends
        // still learns exactly which labels changed.
        assert_eq!(d.delta_since(gen), Some(vec![]));
        d.compact(); // idempotent
        assert_eq!(d.edge_count(), 4);
        let _ = n1;
    }

    #[test]
    fn append_node_extends_the_live_snapshot() {
        let (mut d, a, _, [n0, _, n2]) = line3();
        let g0 = d.generation();
        let w = d.append_node();
        assert_eq!(w.index(), 3);
        assert_eq!(d.node_count(), 4);
        assert!(d.out_edges(w).is_empty());
        assert!(d.in_edges(w).is_empty());
        assert_eq!(
            d.delta_since(g0),
            Some(vec![]),
            "node additions change no label"
        );
        assert!(d.append(n2, a, w));
        assert!(d.has_path_labelled(n0, &[a, a, a], w));
        let named = d.append_named_node("fresh");
        assert_eq!(d.node_name(named), "fresh");
        // Thawing a layered snapshot carries delta arcs and new nodes.
        let thawed = d.to_builder().freeze();
        assert_eq!(thawed.node_count(), 5);
        assert!(thawed.has_edge(n2, a, w));
    }

    #[test]
    fn per_label_generations_track_appends() {
        let (mut d, a, b, [n0, _, n2]) = line3();
        let g0 = d.generation();
        assert_eq!(d.label_generation(a), g0);
        assert_eq!(d.label_generation(b), g0);
        d.append(n0, b, n2);
        let g1 = d.generation();
        assert_eq!(d.label_generation(a), g0, "a untouched by the append");
        assert_eq!(d.label_generation(b), g1);
        assert_eq!(d.delta_since(g0), Some(vec![b]));
        assert_eq!(d.delta_since(g1), Some(vec![]));
        d.append(n2, a, n0);
        assert_eq!(d.delta_since(g0), Some(vec![a, b]));
        assert_eq!(d.delta_since(g1), Some(vec![a]));
    }

    #[test]
    fn delta_since_rejects_foreign_and_divergent_snapshots() {
        let (mut d1, a, b, [n0, _, n2]) = line3();
        let (other, _, _, _) = line3();
        assert_eq!(
            d1.delta_since(other.generation()),
            None,
            "separately frozen database is not an ancestor"
        );
        // Divergent clones: a generation minted on one branch is unknown
        // to the other, even though both share the lineage.
        let mut d2 = d1.clone();
        d1.append(n0, a, n2);
        let g_d1 = d1.generation();
        d2.append(n0, b, n2);
        assert_eq!(d2.delta_since(g_d1), None);
        assert_eq!(d1.delta_since(d2.generation()), None);
        // But the shared freeze generation answers on both branches.
        assert_eq!(d1.delta_since(d1.lineage()), Some(vec![a]));
        assert_eq!(d2.delta_since(d2.lineage()), Some(vec![b]));
    }

    #[test]
    fn history_truncation_falls_back_to_unknown() {
        let mut bld = abc_builder();
        let a = bld.alphabet().sym("a");
        let nodes: Vec<NodeId> = (0..300).map(|_| bld.add_node()).collect();
        let mut d = bld.freeze();
        let lineage = d.generation();
        let mut mid_gen = 0;
        for (i, w) in nodes.windows(2).enumerate() {
            d.append(w[0], a, w[1]);
            if i == 10 {
                mid_gen = d.generation();
            }
        }
        // 299 appends overflow the 256-entry history: neither the lineage
        // nor an early append generation is answerable any more.
        assert_eq!(d.delta_since(lineage), None);
        assert_eq!(d.delta_since(mid_gen), None);
        // Recent generations still are.
        assert_eq!(d.delta_since(d.generation()), Some(vec![]));
    }
}
