//! Materialized paths through a graph database.

use crate::alphabet::{Alphabet, Symbol};
use crate::db::{GraphDb, NodeId};

/// A path `(w_0, a_1, w_1, …, a_k, w_k)` through a graph database.
///
/// Stored as the node sequence plus the label word; the invariant
/// `nodes.len() == label.len() + 1` always holds.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Path {
    nodes: Vec<NodeId>,
    label: Vec<Symbol>,
}

impl Path {
    /// The length-0 path sitting on `v` (labelled ε).
    pub fn trivial(v: NodeId) -> Self {
        Self {
            nodes: vec![v],
            label: Vec::new(),
        }
    }

    /// Builds a path from its node sequence and label, checking arity.
    pub fn new(nodes: Vec<NodeId>, label: Vec<Symbol>) -> Self {
        assert_eq!(nodes.len(), label.len() + 1, "malformed path");
        Self { nodes, label }
    }

    /// Extends the path by one arc.
    pub fn push(&mut self, a: Symbol, v: NodeId) {
        self.label.push(a);
        self.nodes.push(v);
    }

    /// Removes the last arc (no-op on a trivial path). Returns the removed
    /// `(symbol, endpoint)` pair.
    pub fn pop(&mut self) -> Option<(Symbol, NodeId)> {
        let a = self.label.pop()?;
        let v = self.nodes.pop().expect("nodes = labels + 1");
        Some((a, v))
    }

    /// First node of the path.
    pub fn start(&self) -> NodeId {
        self.nodes[0]
    }

    /// Last node of the path.
    pub fn end(&self) -> NodeId {
        *self.nodes.last().unwrap()
    }

    /// Number of arcs.
    pub fn len(&self) -> usize {
        self.label.len()
    }

    /// Whether this is a length-0 path.
    pub fn is_empty(&self) -> bool {
        self.label.is_empty()
    }

    /// The label word of the path.
    pub fn label(&self) -> &[Symbol] {
        &self.label
    }

    /// The node sequence of the path.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Checks that every arc of the path exists in `db`.
    pub fn is_valid_in(&self, db: &GraphDb) -> bool {
        self.nodes
            .windows(2)
            .zip(self.label.iter())
            .all(|(w, &a)| db.has_edge(w[0], a, w[1]))
    }

    /// Renders the path as `v0 -a-> v1 -b-> v2`.
    pub fn render(&self, db: &GraphDb, alphabet: &Alphabet) -> String {
        let mut s = db.node_name(self.nodes[0]);
        for (i, &a) in self.label.iter().enumerate() {
            s.push_str(&format!(
                " -{}-> {}",
                alphabet.name(a),
                db.node_name(self.nodes[i + 1])
            ));
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use std::sync::Arc;

    #[test]
    fn trivial_path_is_empty() {
        let p = Path::trivial(NodeId(3));
        assert!(p.is_empty());
        assert_eq!(p.start(), p.end());
    }

    #[test]
    fn push_and_validate() {
        let mut b = crate::db::GraphBuilder::new(Arc::new(Alphabet::from_chars("ab")));
        let a = b.alphabet().sym("a");
        let u = b.add_node();
        let v = b.add_node();
        b.add_edge(u, a, v);
        let db = b.freeze();
        let mut p = Path::trivial(u);
        p.push(a, v);
        assert!(p.is_valid_in(&db));
        assert_eq!(p.len(), 1);
        assert_eq!(p.end(), v);
        // An arc not in the database invalidates the path.
        let mut q = Path::trivial(v);
        q.push(a, u);
        assert!(!q.is_valid_in(&db));
    }

    #[test]
    #[should_panic(expected = "malformed path")]
    fn new_checks_arity() {
        let _ = Path::new(vec![NodeId(0)], vec![Symbol(0)]);
    }

    #[test]
    fn render_is_readable() {
        let mut b = crate::db::GraphBuilder::new(Arc::new(Alphabet::from_chars("ab")));
        let a = b.alphabet().sym("a");
        let u = b.add_named_node("s");
        let v = b.add_named_node("t");
        b.add_edge(u, a, v);
        let db = b.freeze();
        let mut p = Path::trivial(u);
        p.push(a, v);
        assert_eq!(p.render(&db, db.alphabet()), "s -a-> t");
    }
}
