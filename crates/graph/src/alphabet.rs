//! Interned alphabet symbols.
//!
//! The paper fixes a finite terminal alphabet Σ. Symbols are interned into
//! dense `u32` ids so that automata transitions, edge labels and words are
//! cheap to store and compare. An [`Alphabet`] owns the id ↔ name mapping and
//! is shared by a database and the queries evaluated over it.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// An interned alphabet symbol (a terminal letter of Σ).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Symbol(pub u32);

impl Symbol {
    /// The dense index of the symbol, suitable for table lookups.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A finite terminal alphabet Σ with interned symbol names.
///
/// Cloning an `Alphabet` is cheap (`Arc`-backed name table semantics are not
/// needed here; the struct itself is small and typically wrapped in an `Arc`
/// by callers that share it between a database and many queries).
#[derive(Clone, Default, Debug)]
pub struct Alphabet {
    names: Vec<String>,
    ids: HashMap<String, Symbol>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an alphabet from an iterator of symbol names.
    pub fn from_names<I, S>(names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: AsRef<str>,
    {
        let mut a = Self::new();
        for n in names {
            a.intern(n.as_ref());
        }
        a
    }

    /// Creates an alphabet of single-character symbols, e.g. `"abc"` ↦ Σ = {a, b, c}.
    pub fn from_chars(chars: &str) -> Self {
        Self::from_names(chars.chars().map(|c| c.to_string()))
    }

    /// Interns `name`, returning its symbol (existing or fresh).
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&s) = self.ids.get(name) {
            return s;
        }
        let s = Symbol(self.names.len() as u32);
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), s);
        s
    }

    /// Looks up an already-interned symbol by name.
    pub fn symbol(&self, name: &str) -> Option<Symbol> {
        self.ids.get(name).copied()
    }

    /// Looks up an already-interned symbol by name, panicking when absent.
    ///
    /// Intended for tests and examples where the alphabet is fixed up front.
    pub fn sym(&self, name: &str) -> Symbol {
        self.symbol(name)
            .unwrap_or_else(|| panic!("symbol {name:?} not in alphabet"))
    }

    /// The name of a symbol.
    pub fn name(&self, s: Symbol) -> &str {
        &self.names[s.index()]
    }

    /// Number of symbols |Σ|.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over all symbols in id order.
    pub fn symbols(&self) -> impl Iterator<Item = Symbol> + '_ {
        (0..self.names.len() as u32).map(Symbol)
    }

    /// Renders a word (sequence of symbols) as a string.
    ///
    /// Single-character symbol names are concatenated directly; longer names
    /// are juxtaposed with `·` separators so that words remain unambiguous.
    pub fn render_word(&self, word: &[Symbol]) -> String {
        if word.is_empty() {
            return "ε".to_string();
        }
        let all_single = word.iter().all(|s| self.name(*s).chars().count() == 1);
        if all_single {
            word.iter().map(|s| self.name(*s)).collect()
        } else {
            word.iter()
                .map(|s| self.name(*s))
                .collect::<Vec<_>>()
                .join("·")
        }
    }

    /// Parses a word of single-character symbols, e.g. `"abba"`.
    ///
    /// Returns `None` when a character is not an interned symbol.
    pub fn parse_word(&self, text: &str) -> Option<Vec<Symbol>> {
        text.chars().map(|c| self.symbol(&c.to_string())).collect()
    }
}

impl fmt::Display for Alphabet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{{}}}", self.names.join(", "))
    }
}

/// A shared, immutable alphabet handle.
pub type SharedAlphabet = Arc<Alphabet>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut a = Alphabet::new();
        let s1 = a.intern("a");
        let s2 = a.intern("a");
        assert_eq!(s1, s2);
        assert_eq!(a.len(), 1);
        assert_eq!(a.name(s1), "a");
    }

    #[test]
    fn from_chars_builds_singletons() {
        let a = Alphabet::from_chars("abc");
        assert_eq!(a.len(), 3);
        assert_eq!(a.sym("b"), Symbol(1));
    }

    #[test]
    fn render_word_single_chars() {
        let a = Alphabet::from_chars("ab");
        let w = vec![a.sym("a"), a.sym("b"), a.sym("a")];
        assert_eq!(a.render_word(&w), "aba");
        assert_eq!(a.render_word(&[]), "ε");
    }

    #[test]
    fn render_word_long_names() {
        let mut a = Alphabet::new();
        let x = a.intern("<z1>");
        let y = a.intern("<z2>");
        assert_eq!(a.render_word(&[x, y]), "<z1>·<z2>");
    }

    #[test]
    fn parse_word_round_trips() {
        let a = Alphabet::from_chars("ab");
        let w = a.parse_word("abba").unwrap();
        assert_eq!(a.render_word(&w), "abba");
        assert!(a.parse_word("abc").is_none());
    }

    #[test]
    fn symbols_iterates_in_order() {
        let a = Alphabet::from_chars("xyz");
        let ids: Vec<u32> = a.symbols().map(|s| s.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }
}
