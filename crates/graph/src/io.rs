//! A plain-text interchange format for graph databases.
//!
//! Line-oriented, whitespace-separated, `#` comments:
//!
//! ```text
//! # optional header fixing symbol order (otherwise interned on first use)
//! alphabet a b c
//! # optional isolated-node declarations
//! node idle_person
//! # arcs: source label target (nodes created on first mention)
//! edge alice parent bob
//! edge bob   parent carol
//! ```
//!
//! Node and symbol names are arbitrary non-whitespace tokens, so the format
//! serves both the single-character alphabets of the paper's examples and
//! workloads with long relation names.

use crate::alphabet::Alphabet;
use crate::db::{GraphBuilder, GraphDb, NodeId};
use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A parse error with 1-based line number.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct GraphIoError {
    /// 1-based line of the offending input.
    pub line: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for GraphIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for GraphIoError {}

fn err(line: usize, message: impl Into<String>) -> GraphIoError {
    GraphIoError {
        line,
        message: message.into(),
    }
}

/// Parses the text format into a database (plus a name → node index).
pub fn read_graph(text: &str) -> Result<(GraphDb, HashMap<String, NodeId>), GraphIoError> {
    let mut alphabet = Alphabet::new();
    // First pass: collect symbols so the alphabet is complete before the
    // database takes ownership of it.
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        match it.next().unwrap() {
            "alphabet" => {
                for tok in it {
                    alphabet.intern(tok);
                }
            }
            "edge" => {
                let _src = it.next().ok_or_else(|| err(i + 1, "edge needs 3 fields"))?;
                let label = it.next().ok_or_else(|| err(i + 1, "edge needs 3 fields"))?;
                alphabet.intern(label);
            }
            _ => {}
        }
    }
    let mut db = GraphBuilder::new(Arc::new(alphabet));
    let mut names: HashMap<String, NodeId> = HashMap::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let mut it = line.split_whitespace();
        let head = it.next().unwrap();
        match head {
            "alphabet" => {}
            "node" => {
                let name = it.next().ok_or_else(|| err(i + 1, "node needs a name"))?;
                if names.contains_key(name) {
                    return Err(err(i + 1, format!("duplicate node {name:?}")));
                }
                let id = db.add_named_node(name);
                names.insert(name.to_string(), id);
            }
            "edge" => {
                let src = it
                    .next()
                    .ok_or_else(|| err(i + 1, "edge needs 3 fields"))?
                    .to_string();
                let label = it.next().ok_or_else(|| err(i + 1, "edge needs 3 fields"))?;
                let dst = it
                    .next()
                    .ok_or_else(|| err(i + 1, "edge needs 3 fields"))?
                    .to_string();
                if let Some(extra) = it.next() {
                    return Err(err(i + 1, format!("unexpected token {extra:?}")));
                }
                let a = db
                    .alphabet()
                    .symbol(label)
                    .expect("symbol interned in first pass");
                let get = |db: &mut GraphBuilder, names: &mut HashMap<String, NodeId>, n: &str| {
                    if let Some(&id) = names.get(n) {
                        id
                    } else {
                        let id = db.add_named_node(n);
                        names.insert(n.to_string(), id);
                        id
                    }
                };
                let s = get(&mut db, &mut names, &src);
                let d = get(&mut db, &mut names, &dst);
                db.add_edge(s, a, d);
            }
            other => {
                return Err(err(
                    i + 1,
                    format!("unknown directive {other:?} (expected alphabet/node/edge)"),
                ))
            }
        }
    }
    Ok((db.freeze(), names))
}

/// Serializes a database into the text format ([`read_graph`]'s inverse up
/// to node naming: anonymous nodes get their display names).
pub fn write_graph(db: &GraphDb) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let _ = write!(out, "alphabet");
    for s in db.alphabet().symbols() {
        let _ = write!(out, " {}", db.alphabet().name(s));
    }
    let _ = writeln!(out);
    // Nodes with no incident edges need explicit declarations.
    let mut isolated: Vec<NodeId> = db.nodes().collect();
    let mut touched = vec![false; db.node_count()];
    for (u, _, v) in db.edges() {
        touched[u.index()] = true;
        touched[v.index()] = true;
    }
    isolated.retain(|n| !touched[n.index()]);
    for n in isolated {
        let _ = writeln!(out, "node {}", db.node_name(n));
    }
    for (u, a, v) in db.edges() {
        let _ = writeln!(
            out,
            "edge {} {} {}",
            db.node_name(u),
            db.alphabet().name(a),
            db.node_name(v)
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_graph() {
        let text = "\
# a family
alphabet p s
edge alice p bob
edge bob s carol   # supervisor
node hermit
";
        let (db, names) = read_graph(text).unwrap();
        assert_eq!(db.node_count(), 4);
        assert_eq!(db.edge_count(), 2);
        assert_eq!(db.alphabet().len(), 2);
        let p = db.alphabet().sym("p");
        assert!(db.has_edge(names["alice"], p, names["bob"]));
        assert!(names.contains_key("hermit"));
    }

    #[test]
    fn symbols_interned_without_header() {
        let (db, names) = read_graph("edge x knows y\nedge y likes x\n").unwrap();
        assert_eq!(db.alphabet().len(), 2);
        assert!(db.has_edge(names["y"], db.alphabet().sym("likes"), names["x"]));
    }

    #[test]
    fn round_trip() {
        let text = "alphabet a b\nnode lonely\nedge u a v\nedge v b u\nedge u b u\n";
        let (db, _) = read_graph(text).unwrap();
        let (db2, names2) = read_graph(&write_graph(&db)).unwrap();
        assert_eq!(db.node_count(), db2.node_count());
        assert_eq!(db.edge_count(), db2.edge_count());
        assert_eq!(db.alphabet().len(), db2.alphabet().len());
        let a = db2.alphabet().sym("a");
        assert!(db2.has_edge(names2["u"], a, names2["v"]));
        assert!(names2.contains_key("lonely"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = read_graph("alphabet a\nedge u a\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("3 fields"));
        let e2 = read_graph("nope x y z\n").unwrap_err();
        assert_eq!(e2.line, 1);
        assert!(e2.message.contains("unknown directive"));
        let e3 = read_graph("node x\nnode x\n").unwrap_err();
        assert_eq!(e3.line, 2);
        assert!(e3.message.contains("duplicate"));
        let e4 = read_graph("edge a b c d\n").unwrap_err();
        assert!(e4.message.contains("unexpected token"));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let (db, _) = read_graph("\n# only a comment\n\nedge a x b # trailing\n").unwrap();
        assert_eq!(db.edge_count(), 1);
    }
}
