//! A dense fixed-capacity bitset.
//!
//! The visited sets of the product searches in `cxrpq-core` are keyed by
//! `node · |Q| + state` — a dense rectangle — so a flat `u64` word array
//! beats hashing every `(node, state)` pair: one shift/mask per membership
//! test, no hashing, no per-entry allocation, and the whole set lives in
//! `⌈len/64⌉` contiguous words.

/// A fixed-capacity set of `usize` indices below `len`.
#[derive(Clone, Debug, Default)]
pub struct DenseBitSet {
    words: Vec<u64>,
    len: usize,
}

impl DenseBitSet {
    /// An empty set over the universe `0..len`.
    pub fn new(len: usize) -> Self {
        Self {
            words: vec![0; len.div_ceil(64)],
            len,
        }
    }

    /// The set containing every index of the universe `0..len`, built by
    /// whole words (trailing bits beyond `len` stay clear so `count` and
    /// `ones` remain exact).
    pub fn full(len: usize) -> Self {
        let mut s = Self::new(len);
        for w in &mut s.words {
            *w = !0;
        }
        let tail = len % 64;
        if tail != 0 {
            if let Some(last) = s.words.last_mut() {
                *last = (1u64 << tail) - 1;
            }
        }
        s
    }

    /// The universe size.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.len
    }

    /// Inserts `i`, returning `true` when it was not yet present.
    #[inline]
    pub fn insert(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len, "index {i} out of capacity {}", self.len);
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let fresh = self.words[w] & b == 0;
        self.words[w] |= b;
        fresh
    }

    /// Removes `i`, returning `true` when it was present.
    #[inline]
    pub fn remove(&mut self, i: usize) -> bool {
        debug_assert!(i < self.len, "index {i} out of capacity {}", self.len);
        let (w, b) = (i / 64, 1u64 << (i % 64));
        let present = self.words[w] & b != 0;
        self.words[w] &= !b;
        present
    }

    /// Whether `i` is present.
    #[inline]
    pub fn contains(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "index {i} out of capacity {}", self.len);
        self.words[i / 64] & (1 << (i % 64)) != 0
    }

    /// Removes every element (capacity unchanged).
    pub fn clear(&mut self) {
        self.words.fill(0);
    }

    /// Word-level union: OR-merges `other` into `self` with one pass over
    /// the word arrays instead of element-wise inserts.
    ///
    /// Both sets must cover the same universe.
    pub fn union_with(&mut self, other: &Self) {
        assert_eq!(
            self.len, other.len,
            "union over mismatched universes ({} vs {})",
            self.len, other.len
        );
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
    }

    /// Word-level intersection: AND-merges `other` into `self` with one
    /// pass over the word arrays instead of element-wise tests.
    ///
    /// Both sets must cover the same universe.
    pub fn intersect_with(&mut self, other: &Self) {
        assert_eq!(
            self.len, other.len,
            "intersection over mismatched universes ({} vs {})",
            self.len, other.len
        );
        for (w, &o) in self.words.iter_mut().zip(&other.words) {
            *w &= o;
        }
    }

    /// Number of elements present.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// The smallest present index `≥ i`, or `None` when no such element
    /// exists. One mask plus a word scan, so a leapfrog intersection can
    /// treat the set as a sorted ascending iterator with random seeks
    /// (resuming from wherever the previous probe landed costs nothing:
    /// the scan always starts at `i`'s word).
    #[inline]
    pub fn seek_ge(&self, i: usize) -> Option<usize> {
        if i >= self.len {
            return None;
        }
        let mut w = i / 64;
        let mut word = self.words[w] & (!0u64 << (i % 64));
        loop {
            if word != 0 {
                return Some(w * 64 + word.trailing_zeros() as usize);
            }
            w += 1;
            word = *self.words.get(w)?;
        }
    }

    /// Iterates over the present indices in increasing order.
    pub fn ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut m = w;
            std::iter::from_fn(move || {
                if m == 0 {
                    return None;
                }
                let b = m.trailing_zeros() as usize;
                m &= m - 1;
                Some(wi * 64 + b)
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_clear() {
        let mut s = DenseBitSet::new(130);
        assert!(!s.contains(0));
        assert!(s.insert(0));
        assert!(!s.insert(0), "second insert reports already-present");
        assert!(s.insert(63));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(s.contains(129) && s.contains(64));
        assert_eq!(s.count(), 4);
        assert_eq!(s.ones().collect::<Vec<_>>(), vec![0, 63, 64, 129]);
        assert!(s.remove(64));
        assert!(!s.remove(64), "second remove reports absent");
        assert!(!s.contains(64));
        s.clear();
        assert_eq!(s.count(), 0);
        assert!(!s.contains(63));
    }

    #[test]
    fn union_merges_words() {
        let mut a = DenseBitSet::new(130);
        let mut b = DenseBitSet::new(130);
        a.insert(0);
        a.insert(70);
        b.insert(70);
        b.insert(129);
        a.union_with(&b);
        assert_eq!(a.ones().collect::<Vec<_>>(), vec![0, 70, 129]);
        assert_eq!(b.count(), 2, "source of the merge is untouched");
    }

    #[test]
    #[should_panic(expected = "mismatched universes")]
    fn union_rejects_mismatched_capacity() {
        let mut a = DenseBitSet::new(64);
        a.union_with(&DenseBitSet::new(65));
    }

    #[test]
    fn intersect_keeps_common_words() {
        let mut a = DenseBitSet::new(130);
        let mut b = DenseBitSet::new(130);
        a.insert(0);
        a.insert(70);
        a.insert(129);
        b.insert(70);
        b.insert(129);
        b.insert(1);
        a.intersect_with(&b);
        assert_eq!(a.ones().collect::<Vec<_>>(), vec![70, 129]);
        assert_eq!(b.count(), 3, "source of the merge is untouched");
    }

    #[test]
    fn full_sets_every_index_and_no_more() {
        for len in [0, 1, 63, 64, 65, 130] {
            let s = DenseBitSet::full(len);
            assert_eq!(s.count(), len, "len {len}");
            assert_eq!(s.ones().collect::<Vec<_>>(), (0..len).collect::<Vec<_>>());
        }
    }

    #[test]
    fn seek_ge_finds_next_member() {
        let mut s = DenseBitSet::new(200);
        for i in [0, 63, 64, 129, 199] {
            s.insert(i);
        }
        assert_eq!(s.seek_ge(0), Some(0));
        assert_eq!(s.seek_ge(1), Some(63));
        assert_eq!(s.seek_ge(63), Some(63));
        assert_eq!(s.seek_ge(65), Some(129), "crosses an all-zero word");
        assert_eq!(s.seek_ge(130), Some(199));
        assert_eq!(s.seek_ge(199), Some(199));
        assert_eq!(s.seek_ge(200), None, "past the universe");
        let empty = DenseBitSet::new(100);
        assert_eq!(empty.seek_ge(0), None);
        // seek_ge agrees with the ascending iterator on every start point.
        for i in 0..200 {
            assert_eq!(s.seek_ge(i), s.ones().find(|&x| x >= i), "start {i}");
        }
    }

    #[test]
    fn empty_universe() {
        let s = DenseBitSet::new(0);
        assert_eq!(s.capacity(), 0);
        assert_eq!(s.count(), 0);
        assert_eq!(s.ones().count(), 0);
    }
}
