//! Edge-labelled graph databases — the data model of Schmid (PODS 2020), §2.2.
//!
//! A *graph database* over a finite alphabet Σ is a directed, edge-labelled
//! multigraph `D = (V_D, E_D)` with `E_D ⊆ V_D × Σ × V_D`. Paths are
//! sequences of consecutive edges; the *label* of a path is the concatenation
//! of its edge labels, and every node has an ε-labelled path of length 0 to
//! itself.
//!
//! This crate provides:
//! - [`Symbol`] / [`Alphabet`]: interned alphabet symbols (labels may be
//!   arbitrary strings, e.g. `<z17>` in the Hitting-Set reduction of the
//!   paper's Theorem 7);
//! - [`GraphBuilder`]: the bulk construction side of a database;
//! - [`GraphDb`]: a layered snapshot — an immutable label-sorted CSR base
//!   plus a small mutable [`DeltaOverlay`] fed by [`GraphDb::append`], with
//!   [`GraphDb::successors_with`] and [`GraphDb::predecessors_with`]
//!   returning merged [`EdgeRun`] iterators over both layers,
//!   [`GraphDb::compact`] to fold the overlay back into the base, and
//!   monotonically increasing [`GraphDb::generation`] /
//!   [`GraphDb::label_generation`] ids for cache binding and label-aware
//!   invalidation;
//! - [`DenseBitSet`]: the flat visited-set representation the product
//!   searches in `cxrpq-core` use instead of hashed `(node, state)` pairs;
//! - [`Path`]: materialized paths with their labels;
//! - [`dot`]: Graphviz export for debugging and for reproducing the paper's
//!   figures;
//! - [`io`]: a line-oriented text interchange format (`alphabet`/`node`/
//!   `edge` directives) used by the `cxrpq-cli` tool.

pub mod alphabet;
pub mod bitset;
pub mod db;
pub mod dot;
pub mod io;
pub mod path;

pub use alphabet::{Alphabet, Symbol};
pub use bitset::DenseBitSet;
pub use db::{DeltaOverlay, EdgeRun, GraphBuilder, GraphDb, LabelRuns, NodeId};
pub use io::{read_graph, write_graph, GraphIoError};
pub use path::Path;
