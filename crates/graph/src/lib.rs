//! Edge-labelled graph databases — the data model of Schmid (PODS 2020), §2.2.
//!
//! A *graph database* over a finite alphabet Σ is a directed, edge-labelled
//! multigraph `D = (V_D, E_D)` with `E_D ⊆ V_D × Σ × V_D`. Paths are
//! sequences of consecutive edges; the *label* of a path is the concatenation
//! of its edge labels, and every node has an ε-labelled path of length 0 to
//! itself.
//!
//! This crate provides:
//! - [`Symbol`] / [`Alphabet`]: interned alphabet symbols (labels may be
//!   arbitrary strings, e.g. `<z17>` in the Hitting-Set reduction of the
//!   paper's Theorem 7);
//! - [`GraphBuilder`]: the mutable construction side of a database;
//! - [`GraphDb`]: the frozen multigraph, with label-sorted CSR adjacency in
//!   both directions ([`GraphDb::successors_with`] and
//!   [`GraphDb::predecessors_with`] return contiguous slices) and a
//!   monotonically increasing [`GraphDb::generation`] id for cache binding;
//! - [`DenseBitSet`]: the flat visited-set representation the product
//!   searches in `cxrpq-core` use instead of hashed `(node, state)` pairs;
//! - [`Path`]: materialized paths with their labels;
//! - [`dot`]: Graphviz export for debugging and for reproducing the paper's
//!   figures;
//! - [`io`]: a line-oriented text interchange format (`alphabet`/`node`/
//!   `edge` directives) used by the `cxrpq-cli` tool.

pub mod alphabet;
pub mod bitset;
pub mod db;
pub mod dot;
pub mod io;
pub mod path;

pub use alphabet::{Alphabet, Symbol};
pub use bitset::DenseBitSet;
pub use db::{GraphBuilder, GraphDb, LabelRuns, NodeId};
pub use io::{read_graph, write_graph, GraphIoError};
pub use path::Path;
