//! Graphviz (DOT) export of graph databases, used to reproduce the paper's
//! figures and for debugging reductions.

use crate::db::GraphDb;
use std::fmt::Write as _;

/// Renders `db` in Graphviz DOT syntax.
pub fn to_dot(db: &GraphDb, graph_name: &str) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "digraph {graph_name} {{");
    let _ = writeln!(s, "  rankdir=LR;");
    for v in db.nodes() {
        let _ = writeln!(s, "  n{} [label=\"{}\"];", v.0, escape(&db.node_name(v)));
    }
    for (u, a, v) in db.edges() {
        let _ = writeln!(
            s,
            "  n{} -> n{} [label=\"{}\"];",
            u.0,
            v.0,
            escape(db.alphabet().name(a))
        );
    }
    s.push_str("}\n");
    s
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use std::sync::Arc;

    #[test]
    fn dot_contains_all_arcs() {
        let mut bld = crate::db::GraphBuilder::new(Arc::new(Alphabet::from_chars("ab")));
        let a = bld.alphabet().sym("a");
        let b = bld.alphabet().sym("b");
        let u = bld.add_named_node("s");
        let v = bld.add_node();
        bld.add_edge(u, a, v);
        bld.add_edge(v, b, u);
        let dot = to_dot(&bld.freeze(), "g");
        assert!(dot.contains("digraph g {"));
        assert!(dot.contains("n0 -> n1 [label=\"a\"]"));
        assert!(dot.contains("n1 -> n0 [label=\"b\"]"));
        assert!(dot.contains("label=\"s\""));
    }

    #[test]
    fn dot_escapes_quotes() {
        let mut alpha = Alphabet::new();
        alpha.intern("\"q\"");
        let mut bld = crate::db::GraphBuilder::new(Arc::new(alpha));
        let s = bld.alphabet().sym("\"q\"");
        let u = bld.add_node();
        let v = bld.add_node();
        bld.add_edge(u, s, v);
        let dot = to_dot(&bld.freeze(), "g");
        assert!(dot.contains("\\\"q\\\""));
    }
}
