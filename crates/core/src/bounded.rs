//! Theorem 6: evaluation of `CXRPQ^{≤k}` — NP combined / NL data complexity.
//!
//! The algorithm of §6.1: nondeterministically guess a variable mapping
//! `v̄ ∈ (Σ^{≤k})ⁿ`, specialize the conjunctive xregex to a tuple of
//! classical regular expressions (Lemma 10/11), and evaluate the resulting
//! CRPQ. Derandomized here as an enumeration of candidate mappings in
//! ≺-topological order, with *candidate pruning*: a defined variable only
//! ranges over `{ε} ∪ ⋃_defs L^{≤k}(γ′)` where `γ′` substitutes the images
//! of earlier variables — every skipped mapping is one Lemma 10 would
//! specialize to ∅. The unpruned enumeration (all `(|Σ|+1)^{nk}`-ish
//! mappings) is kept as an ablation for experiment E8.

use crate::crpq::CrpqEvaluator;
use crate::cxrpq::Cxrpq;
use crate::governor::Governor;
use crate::solve::SolveOptions;
use crate::witness::QueryWitness;
use cxrpq_automata::Nfa;
use cxrpq_graph::{GraphDb, NodeId, Symbol};
use cxrpq_xregex::specialize::{specialize, substituted_body, VarMapping};
use cxrpq_xregex::{Var, Xregex};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Counters from one evaluation run (experiment E8's measurable content).
#[derive(Clone, Copy, Default, Debug, PartialEq, Eq)]
pub struct BoundedStats {
    /// Candidate variable mappings visited.
    pub mappings: usize,
    /// Mappings whose specialization was non-empty (CRPQs evaluated).
    pub crpqs_evaluated: usize,
    /// Product states explored across all CRPQ evaluations.
    pub product_states: usize,
}

/// The `CXRPQ^{≤k}` engine.
pub struct BoundedEvaluator<'q> {
    q: &'q Cxrpq,
    k: usize,
    prune: bool,
    gov: Option<Arc<Governor>>,
}

impl<'q> BoundedEvaluator<'q> {
    /// Evaluator for `q^{≤k}` with candidate pruning enabled.
    pub fn new(q: &'q Cxrpq, k: usize) -> Self {
        Self {
            q,
            k,
            prune: true,
            gov: None,
        }
    }

    /// Disables candidate pruning (blind `(Σ^{≤k})ⁿ` enumeration) — the
    /// ablation arm of experiment E8.
    pub fn without_pruning(mut self) -> Self {
        self.prune = false;
        self
    }

    /// Runs the mapping enumeration *and* every specialized-CRPQ solve
    /// under `gov`: one checkpoint per enumeration node, governed solver
    /// options on the inner evaluations. An abort truncates the mapping
    /// enumeration — the result is a sound under-approximation.
    pub fn governed(mut self, gov: Arc<Governor>) -> Self {
        self.gov = Some(gov);
        self
    }

    fn gov_ref(&self) -> &Governor {
        self.gov.as_deref().unwrap_or(Governor::disabled())
    }

    /// Attaches the evaluator's governor (if any) to inner solver options.
    fn opts(&self, base: SolveOptions) -> SolveOptions {
        match &self.gov {
            Some(g) => base.governed(g.clone()),
            None => base,
        }
    }

    /// The image bound k.
    pub fn k(&self) -> usize {
        self.k
    }

    fn all_words_upto(&self, sigma: usize) -> Vec<Vec<Symbol>> {
        let mut out: Vec<Vec<Symbol>> = vec![Vec::new()];
        let mut frontier: Vec<Vec<Symbol>> = vec![Vec::new()];
        for _ in 0..self.k {
            let mut next = Vec::with_capacity(frontier.len() * sigma);
            for w in &frontier {
                for s in 0..sigma as u32 {
                    let mut v = w.clone();
                    v.push(Symbol(s));
                    next.push(v);
                }
            }
            out.extend(next.iter().cloned());
            frontier = next;
        }
        out
    }

    /// Definition bodies of `x` across all components.
    fn def_bodies(&self, x: Var) -> Vec<Xregex> {
        let mut bodies = Vec::new();
        for c in self.q.conjunctive().components() {
            c.walk(&mut |n| {
                if let Xregex::VarDef(y, body) = n {
                    if *y == x {
                        bodies.push((**body).clone());
                    }
                }
            });
        }
        bodies
    }

    /// Enumerates candidate mappings in ≺-topological order; `f` returns
    /// `true` to stop.
    fn for_each_mapping(
        &self,
        sigma: usize,
        stats: &mut BoundedStats,
        f: &mut dyn FnMut(&VarMapping, &mut BoundedStats) -> bool,
    ) -> bool {
        let order = self.q.conjunctive().topological_vars();
        let mut psi = VarMapping::new();
        self.rec(&order, 0, sigma, &mut psi, stats, f)
    }

    /// Candidate images of `x` given the images of ≺-earlier variables.
    fn candidates_for(&self, x: Var, psi: &VarMapping, sigma: usize) -> Vec<Vec<Symbol>> {
        let bodies = self.def_bodies(x);
        if !self.prune || bodies.is_empty() {
            // Undefined variables range over all of Σ^{≤k} (dummy-definition
            // semantics); unpruned mode enumerates blindly for everyone.
            self.all_words_upto(sigma)
        } else {
            let mut set: BTreeSet<Vec<Symbol>> = BTreeSet::new();
            set.insert(Vec::new()); // ε: the never-instantiated option
            for body in &bodies {
                let re = substituted_body(body, psi);
                for w in Nfa::from_regex(&re).enumerate_upto(self.k, sigma) {
                    set.insert(w);
                }
            }
            set.into_iter().collect()
        }
    }

    fn rec(
        &self,
        order: &[Var],
        idx: usize,
        sigma: usize,
        psi: &mut VarMapping,
        stats: &mut BoundedStats,
        f: &mut dyn FnMut(&VarMapping, &mut BoundedStats) -> bool,
    ) -> bool {
        // One checkpoint per enumeration node; an abort reports "no hit"
        // for the whole subtree (sound under-approximation).
        if !self.gov_ref().checkpoint() {
            return false;
        }
        if idx == order.len() {
            stats.mappings += 1;
            return f(psi, stats);
        }
        let x = order[idx];
        for c in self.candidates_for(x, psi, sigma) {
            if self.gov_ref().is_aborted() {
                break;
            }
            psi.insert(x, c);
            if self.rec(order, idx + 1, sigma, psi, stats, f) {
                psi.remove(&x);
                return true;
            }
            psi.remove(&x);
        }
        false
    }

    /// Boolean evaluation `D ⊨_{≤k} q`.
    pub fn boolean(&self, db: &GraphDb) -> bool {
        self.boolean_with_stats(db).0
    }

    /// Boolean evaluation with enumeration counters.
    pub fn boolean_with_stats(&self, db: &GraphDb) -> (bool, BoundedStats) {
        let sigma = db.alphabet().len();
        let mut stats = BoundedStats::default();
        let hit = self.for_each_mapping(sigma, &mut stats, &mut |psi, stats| {
            let Some(regexes) = specialize(self.q.conjunctive(), psi) else {
                return false;
            };
            stats.crpqs_evaluated += 1;
            let crpq = self.q.to_crpq(&regexes);
            let (found, states) = CrpqEvaluator::new(&crpq)
                .boolean_with_stats_opts(db, &self.opts(SolveOptions::early_exit().projected()));
            stats.product_states += states;
            found
        });
        (hit, stats)
    }

    /// The answer relation `q^{≤k}(D)` — the union of the specialized
    /// CRPQs' answers over all candidate mappings.
    pub fn answers(&self, db: &GraphDb) -> BTreeSet<Vec<NodeId>> {
        let sigma = db.alphabet().len();
        let mut out = BTreeSet::new();
        let mut stats = BoundedStats::default();
        self.for_each_mapping(sigma, &mut stats, &mut |psi, _| {
            if let Some(regexes) = specialize(self.q.conjunctive(), psi) {
                let crpq = self.q.to_crpq(&regexes);
                out.extend(
                    CrpqEvaluator::new(&crpq)
                        .answers_opts(db, &self.opts(SolveOptions::pipeline().projected()))
                        .0,
                );
            }
            false
        });
        out
    }

    /// The Check problem `t̄ ∈ q^{≤k}(D)`.
    pub fn check(&self, db: &GraphDb, tuple: &[NodeId]) -> bool {
        let sigma = db.alphabet().len();
        let mut stats = BoundedStats::default();
        self.for_each_mapping(sigma, &mut stats, &mut |psi, _| {
            if let Some(regexes) = specialize(self.q.conjunctive(), psi) {
                let crpq = self.q.to_crpq(&regexes);
                if CrpqEvaluator::new(&crpq)
                    .check_opts(
                        db,
                        tuple,
                        &self.opts(SolveOptions::early_exit().projected()),
                    )
                    .0
                {
                    return true;
                }
            }
            false
        })
    }

    /// Evaluation under one fixed mapping: `D ⊨_{v̄} q` (used by tests and
    /// by the Lemma 14 translation).
    pub fn boolean_fixed(&self, db: &GraphDb, psi: &VarMapping) -> bool {
        match specialize(self.q.conjunctive(), psi) {
            Some(regexes) => CrpqEvaluator::new(&self.q.to_crpq(&regexes)).boolean(db),
            None => false,
        }
    }

    /// Boolean evaluation parallelized across candidate images of the first
    /// ≺-variable — candidate mappings are independent, so the enumeration
    /// splits embarrassingly (the NP guess of Theorem 6 explored in
    /// parallel). Falls back to the serial path for variable-free queries or
    /// `threads ≤ 1`.
    pub fn boolean_parallel(&self, db: &GraphDb, threads: usize) -> bool {
        use std::sync::atomic::{AtomicBool, Ordering};
        let sigma = db.alphabet().len();
        let order = self.q.conjunctive().topological_vars();
        if order.is_empty() || threads <= 1 {
            return self.boolean(db);
        }
        let x = order[0];
        let candidates = self.candidates_for(x, &VarMapping::new(), sigma);
        if candidates.is_empty() {
            return false;
        }
        let found = AtomicBool::new(false);
        let order = &order;
        crate::pool::WorkerPool::global().run_sharded(&candidates, threads, |_, chunk| {
            for c in chunk {
                if found.load(Ordering::Relaxed) || self.gov_ref().is_aborted() {
                    return;
                }
                let mut psi = VarMapping::new();
                psi.insert(x, c.clone());
                let mut stats = BoundedStats::default();
                let hit =
                    self.rec(
                        order,
                        1,
                        sigma,
                        &mut psi,
                        &mut stats,
                        &mut |psi, _| match specialize(self.q.conjunctive(), psi) {
                            Some(regexes) => {
                                CrpqEvaluator::new(&self.q.to_crpq(&regexes)).boolean(db)
                            }
                            None => false,
                        },
                    );
                if hit {
                    found.store(true, Ordering::Relaxed);
                    return;
                }
            }
        });
        found.load(Ordering::Relaxed)
    }

    /// The answer relation computed in parallel (same split as
    /// [`Self::boolean_parallel`]; per-thread partial answers are merged).
    pub fn answers_parallel(&self, db: &GraphDb, threads: usize) -> BTreeSet<Vec<NodeId>> {
        let sigma = db.alphabet().len();
        let order = self.q.conjunctive().topological_vars();
        if order.is_empty() || threads <= 1 {
            return self.answers(db);
        }
        let x = order[0];
        let candidates = self.candidates_for(x, &VarMapping::new(), sigma);
        if candidates.is_empty() {
            return BTreeSet::new();
        }
        let order = &order;
        let partials =
            crate::pool::WorkerPool::global().run_sharded(&candidates, threads, |_, chunk| {
                let mut local: BTreeSet<Vec<NodeId>> = BTreeSet::new();
                for c in chunk {
                    if self.gov_ref().is_aborted() {
                        break;
                    }
                    let mut psi = VarMapping::new();
                    psi.insert(x, c.clone());
                    let mut stats = BoundedStats::default();
                    self.rec(order, 1, sigma, &mut psi, &mut stats, &mut |psi, _| {
                        if let Some(regexes) = specialize(self.q.conjunctive(), psi) {
                            let crpq = self.q.to_crpq(&regexes);
                            local.extend(CrpqEvaluator::new(&crpq).answers(db));
                        }
                        false
                    });
                }
                local
            });
        let mut merged: BTreeSet<Vec<NodeId>> = BTreeSet::new();
        for local in partials {
            merged.extend(local);
        }
        merged
    }

    /// A certificate for some matching morphism under the `≤k` semantics:
    /// the first candidate mapping whose specialized CRPQ matches supplies
    /// the paths; the images are the mapping itself.
    pub fn witness(&self, db: &GraphDb) -> Option<QueryWitness> {
        self.witness_impl(db, None)
    }

    /// A certificate for `t̄ ∈ q^{≤k}(D)`.
    pub fn witness_for(&self, db: &GraphDb, tuple: &[NodeId]) -> Option<QueryWitness> {
        self.witness_impl(db, Some(tuple))
    }

    fn witness_impl(&self, db: &GraphDb, tuple: Option<&[NodeId]>) -> Option<QueryWitness> {
        let sigma = db.alphabet().len();
        let vars = self.q.conjunctive().vars();
        let mut stats = BoundedStats::default();
        let mut found: Option<QueryWitness> = None;
        self.for_each_mapping(sigma, &mut stats, &mut |psi, _| {
            let Some(regexes) = specialize(self.q.conjunctive(), psi) else {
                return false;
            };
            let crpq = self.q.to_crpq(&regexes);
            let ev = CrpqEvaluator::new(&crpq);
            let w = match tuple {
                Some(t) => ev.witness_for(db, t),
                None => ev.witness(db),
            };
            if let Some(mut w) = w {
                w.images = psi
                    .iter()
                    .map(|(x, img)| (vars.name(*x).to_string(), img.clone()))
                    .collect();
                found = Some(w);
                return true;
            }
            false
        });
        found
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cxrpq::CxrpqBuilder;
    use cxrpq_graph::Alphabet;
    use cxrpq_graph::GraphBuilder;
    use std::sync::Arc;

    fn path_db(words: &[&str]) -> (GraphDb, Vec<(NodeId, NodeId)>) {
        let alpha = Arc::new(Alphabet::from_chars("abc#"));
        let mut db = GraphBuilder::new(alpha);
        let mut ends = Vec::new();
        for w in words {
            let s = db.add_node();
            let t = db.add_node();
            let word = db.alphabet().parse_word(w).unwrap();
            db.add_word_path(s, &word, t);
            ends.push((s, t));
        }
        (db.freeze(), ends)
    }

    #[test]
    fn single_edge_bounded_matching() {
        let (db, ends) = path_db(&["abcab"]);
        let mut alpha = db.alphabet().clone();
        // z{(a|b)+} c z: needs image "ab" (k ≥ 2).
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("x", "z{(a|b)+}cz", "y")
            .output(&["x", "y"])
            .build()
            .unwrap();
        assert!(BoundedEvaluator::new(&q, 2).check(&db, &[ends[0].0, ends[0].1]));
        // k = 1 is too small for image "ab".
        assert!(!BoundedEvaluator::new(&q, 1).check(&db, &[ends[0].0, ends[0].1]));
    }

    #[test]
    fn pruned_and_unpruned_agree() {
        let (db, _) = path_db(&["abcab", "aabaa", "cc"]);
        let mut alpha = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("x", "z{(a|b)+}cz", "y")
            .build()
            .unwrap();
        for k in 0..=3 {
            let pruned = BoundedEvaluator::new(&q, k);
            let blind = BoundedEvaluator::new(&q, k).without_pruning();
            assert_eq!(pruned.boolean(&db), blind.boolean(&db), "k={k}");
        }
    }

    #[test]
    fn pruning_reduces_enumeration() {
        let (db, _) = path_db(&["abcab"]);
        let mut alpha = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("x", "z{ab}cz", "y") // z can only be "ab" (or ε)
            .build()
            .unwrap();
        let (_, s1) = BoundedEvaluator::new(&q, 3).boolean_with_stats(&db);
        let (_, s2) = BoundedEvaluator::new(&q, 3)
            .without_pruning()
            .boolean_with_stats(&db);
        assert!(
            s1.mappings < s2.mappings,
            "pruned {} !< blind {}",
            s1.mappings,
            s2.mappings
        );
    }

    #[test]
    fn dependent_definitions() {
        // y{a|b}, x{yy}: x's candidates depend on y's image.
        let (db, ends) = path_db(&["a", "aa"]);
        let mut alpha = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("p", "y{a|b}", "q")
            .edge("r", "x{yy}", "s")
            .output(&["p", "q", "r", "s"])
            .build()
            .unwrap();
        let ev = BoundedEvaluator::new(&q, 2);
        assert!(ev.check(&db, &[ends[0].0, ends[0].1, ends[1].0, ends[1].1]));
        // And the wrong composition is rejected ("a" path for x).
        assert!(!ev.check(&db, &[ends[1].0, ends[1].1, ends[0].0, ends[0].1]));
    }

    #[test]
    fn crpq_subsumption() {
        // A variable-free CXRPQ behaves exactly like the CRPQ (k irrelevant,
        // CRPQ ⊆ CXRPQ^{≤k}).
        let (db, ends) = path_db(&["abc"]);
        let mut alpha = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("x", "a.c", "y")
            .output(&["x", "y"])
            .build()
            .unwrap();
        let ev = BoundedEvaluator::new(&q, 0);
        assert!(ev.check(&db, &[ends[0].0, ends[0].1]));
    }

    #[test]
    fn answers_union_over_mappings() {
        let (db, ends) = path_db(&["aca", "bcb", "acb"]);
        let mut alpha = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("x", "z{a|b}cz", "y")
            .output(&["x", "y"])
            .build()
            .unwrap();
        let ans = BoundedEvaluator::new(&q, 1).answers(&db);
        assert!(ans.contains(&vec![ends[0].0, ends[0].1]));
        assert!(ans.contains(&vec![ends[1].0, ends[1].1]));
        assert!(!ans.contains(&vec![ends[2].0, ends[2].1]));
    }

    #[test]
    fn parallel_agrees_with_serial() {
        let (db, _) = path_db(&["abcab", "aabaa", "cc", "bacba"]);
        let mut alpha = db.alphabet().clone();
        for pat in ["z{(a|b)+}cz", "y{a|b}x{yy}cx", "z{ab}cz"] {
            let q = CxrpqBuilder::new(&mut alpha)
                .edge("u", pat, "v")
                .output(&["u", "v"])
                .build()
                .unwrap();
            for k in 1..=2 {
                let ev = BoundedEvaluator::new(&q, k);
                for threads in [1, 2, 4] {
                    assert_eq!(
                        ev.boolean(&db),
                        ev.boolean_parallel(&db, threads),
                        "{pat} k={k} threads={threads}"
                    );
                    assert_eq!(
                        ev.answers(&db),
                        ev.answers_parallel(&db, threads),
                        "{pat} k={k} threads={threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn parallel_handles_variable_free_queries() {
        let (db, ends) = path_db(&["abc"]);
        let mut alpha = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("x", "a.c", "y")
            .output(&["x", "y"])
            .build()
            .unwrap();
        let ev = BoundedEvaluator::new(&q, 1);
        assert!(ev.boolean_parallel(&db, 4));
        assert!(ev
            .answers_parallel(&db, 4)
            .contains(&vec![ends[0].0, ends[0].1]));
    }

    #[test]
    fn governed_answers_are_sound_partial_subsets() {
        let (db, _) = path_db(&["aca", "bcb", "acb"]);
        let mut alpha = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("x", "z{a|b}cz", "y")
            .output(&["x", "y"])
            .build()
            .unwrap();
        let complete = BoundedEvaluator::new(&q, 1).answers(&db);
        for fuel in 0..24 {
            let gov = Arc::new(Governor::unlimited().with_max_steps(fuel));
            let partial = BoundedEvaluator::new(&q, 1)
                .governed(gov.clone())
                .answers(&db);
            assert!(
                partial.is_subset(&complete),
                "fuel {fuel}: partial must under-approximate"
            );
        }
        // Enough fuel: identical relation, governor never trips.
        let gov = Arc::new(Governor::unlimited().with_max_steps(u64::MAX));
        let full = BoundedEvaluator::new(&q, 1)
            .governed(gov.clone())
            .answers(&db);
        assert_eq!(full, complete);
        assert!(!gov.is_aborted());
    }

    #[test]
    fn unbounded_paths_with_bounded_images() {
        // CRPQ-parts may still traverse arbitrarily long paths: a* z{b} a* z.
        let (db, ends) = path_db(&["aaaaabaaab"]);
        let mut alpha = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("x", "a*z{b}a*z", "y")
            .output(&["x", "y"])
            .build()
            .unwrap();
        assert!(BoundedEvaluator::new(&q, 1).check(&db, &[ends[0].0, ends[0].1]));
    }
}
