//! Static query analysis ahead of the planner.
//!
//! [`analyze`] inspects a [`Problem`](crate::solve::Problem)'s constraints
//! purely at the automaton level — no graph search runs — and produces a
//! [`Diagnostics`] report plus a semantics-preserving rewrite plan the
//! solver applies before [`SolvePlan::build`](crate::plan::SolvePlan):
//!
//! - **Emptiness** — an atom whose language is `∅` makes the whole conjunct
//!   unsatisfiable: the solver answers empty with zero search steps.
//! - **Footprint** — an atom every word of whose language needs an alphabet
//!   letter with no arcs in this database is unsatisfiable *against this
//!   database* (a restricted emptiness check: `Sym(a)` transitions are
//!   traversable iff the database has `a`-arcs). Database-dependent, so it
//!   is a per-call verdict, never a persistent rewrite.
//! - **ε-only atoms** — `x -ε-> y` forces `h(x) = h(y)`; the variables are
//!   unified (union-find) and the atom dropped, shrinking the constraint
//!   graph the planner sees.
//! - **Universality** — a `Σ*` atom filters nothing; it is flagged so the
//!   planner orders it last ([`SolvePlan::build`](crate::plan::SolvePlan)'s
//!   universal slice).
//! - **Containment** — for parallel atoms over the same (unified) variable
//!   pair, a bounded product-construction inclusion check
//!   ([`Nfa::included_in`]) finds subsumption: if `L(i) ⊆ L(j)`, any path
//!   witnessing atom `i` witnesses atom `j` too, so the *wider* atom `j` is
//!   redundant and dropped (Figueira–Morvan–Romero-style minimization,
//!   restricted to parallel atoms). A check that exceeds its state budget
//!   keeps both atoms and reports `containment-capped` — never drops.
//! - **Structure** — a cyclic constraint component (at least as many atoms
//!   as variables) is reported as `cyclic-pattern`, the backtracker's
//!   worst shape.
//!
//! The analyzer is on by default ([`SolveOptions::analyze`]
//! (crate::solve::SolveOptions)); the `naive` preset stays unanalyzed as
//! the differential reference.

use crate::diagnostics::{AtomRef, Diagnostics, Lint, Severity};
use crate::solve::{FreeEdge, Group};
use cxrpq_automata::{Label, Nfa};
use cxrpq_graph::GraphDb;

/// Knobs for one [`analyze`] run.
#[derive(Clone, Copy, Debug)]
pub struct AnalyzeOptions {
    /// Cap on visited product states per bounded inclusion/universality
    /// check; exceeding it abandons the check (both atoms kept).
    pub containment_budget: usize,
}

/// Counters summarizing what the analyzer did, reported through
/// [`PipelineStats::analysis`](crate::solve::PipelineStats).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AnalysisStats {
    /// Atoms removed from the problem (ε-only and subsumed atoms).
    pub atoms_dropped: usize,
    /// Node-variable pairs unified by ε-only atoms.
    pub vars_merged: usize,
    /// The query was proven unsatisfiable without any search.
    pub unsat: bool,
    /// Atoms flagged `Σ*`-universal (kept, deprioritized).
    pub universal_atoms: usize,
    /// Containment checks abandoned at the state budget.
    pub containment_capped: usize,
}

/// The analyzer's report: counters plus the ranked lint list.
#[derive(Clone, Debug, Default)]
pub struct AnalysisReport {
    /// What was rewritten/refuted, as counters.
    pub stats: AnalysisStats,
    /// The findings, severity-ranked.
    pub diagnostics: Diagnostics,
}

/// The full analysis outcome: the user-facing report plus the rewrite plan
/// the solver applies (and undoes) around one run.
pub(crate) struct Analysis {
    pub report: AnalysisReport,
    /// Union-find representative per node variable (identity when no ε
    /// merges happened). Representatives are the smallest member index.
    pub var_rep: Vec<usize>,
    /// Per-free-edge drop flags (ε-only and subsumed atoms).
    pub drop_edges: Vec<bool>,
    /// Per-free-edge `Σ*`-universal flags (original indices).
    pub universal: Vec<bool>,
}

/// Union-find with the smallest member as representative, so unified
/// variables keep a stable, explainable name.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    /// Unions the classes of `a` and `b`; returns `false` when they were
    /// already one class.
    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (lo, hi) = (ra.min(rb), ra.max(rb));
        self.parent[hi] = lo;
        true
    }
}

/// Restricted emptiness against the database's label set: can the
/// automaton reach a final state using only letters the database has arcs
/// for? (`Eps` is always traversable, `Any` iff any arc exists.) A `false`
/// verdict means every accepted word needs a missing letter — the atom can
/// never be witnessed against this database. Necessary, not sufficient.
fn footprint_reachable(nfa: &Nfa, db: &GraphDb) -> bool {
    let has_arcs = db.edge_count() > 0;
    let mut seen = vec![false; nfa.state_count()];
    let mut stack = vec![nfa.start()];
    seen[nfa.start().index()] = true;
    while let Some(s) = stack.pop() {
        if nfa.is_final(s) {
            return true;
        }
        for &(l, t) in nfa.transitions(s) {
            let traversable = match l {
                Label::Eps => true,
                Label::Sym(a) => db.label_edge_count(a) > 0,
                Label::Any => has_arcs,
            };
            if traversable && !seen[t.index()] {
                seen[t.index()] = true;
                stack.push(t);
            }
        }
    }
    false
}

/// Runs every analysis pass over the problem's constraints. Pure: the
/// constraints are only read; the caller applies (and later undoes) the
/// returned rewrite plan.
pub(crate) fn analyze(
    node_count: usize,
    free_edges: &[FreeEdge],
    groups: &[Group],
    db: &GraphDb,
    opts: &AnalyzeOptions,
) -> Analysis {
    let sigma = db.alphabet().len();
    let mut diags = Diagnostics::default();
    let mut stats = AnalysisStats::default();
    let mut uf = UnionFind::new(node_count);
    let mut drop_edges = vec![false; free_edges.len()];
    let mut universal = vec![false; free_edges.len()];

    // Per-atom passes: emptiness, footprint, ε-unification, universality.
    for (i, e) in free_edges.iter().enumerate() {
        let nfa = e.cache.nfa();
        if nfa.is_empty() {
            diags.push(
                Lint::EmptyAtom,
                Severity::Error,
                AtomRef::Edge(i),
                "the atom's language is empty — no path can ever witness it".into(),
            );
            stats.unsat = true;
            continue;
        }
        if !footprint_reachable(nfa, db) {
            diags.push(
                Lint::FootprintMiss,
                Severity::Error,
                AtomRef::Edge(i),
                "every word of the atom's language needs a letter with no arcs in this database"
                    .into(),
            );
            stats.unsat = true;
            continue;
        }
        if nfa.is_epsilon_only() {
            if db.node_count() == 0 {
                // An ε-atom still needs a node for its endpoints to map to.
                diags.push(
                    Lint::FootprintMiss,
                    Severity::Error,
                    AtomRef::Edge(i),
                    "an ε-atom needs a node for its endpoints and the database has none".into(),
                );
                stats.unsat = true;
                continue;
            }
            drop_edges[i] = true;
            stats.atoms_dropped += 1;
            if e.src != e.dst && uf.union(e.src.index(), e.dst.index()) {
                stats.vars_merged += 1;
                diags.push(
                    Lint::EpsilonAtom,
                    Severity::Info,
                    AtomRef::Edge(i),
                    format!(
                        "ε-only atom: node variables ?{} and ?{} were unified",
                        e.src.index(),
                        e.dst.index()
                    ),
                );
            } else {
                diags.push(
                    Lint::EpsilonAtom,
                    Severity::Info,
                    AtomRef::Edge(i),
                    "ε-only atom over already-equal endpoints: always satisfied, dropped".into(),
                );
            }
            continue;
        }
        if nfa.is_universal(sigma, opts.containment_budget) == Some(true) {
            universal[i] = true;
            stats.universal_atoms += 1;
            diags.push(
                Lint::UniversalAtom,
                Severity::Info,
                AtomRef::Edge(i),
                "Σ*-universal atom: it filters nothing and is deprioritized by the planner".into(),
            );
        }
    }

    // Group members: each walker's word must lie in its own language, so
    // member emptiness/footprint misses are unsatisfiable too. Equality
    // groups additionally share one word across every member — a small
    // member intersection being empty refutes the group outright.
    for (gi, g) in groups.iter().enumerate() {
        let mut member_dead = false;
        for (mi, nfa) in g.spec.nfas.iter().enumerate() {
            if nfa.is_empty() {
                diags.push(
                    Lint::EmptyAtom,
                    Severity::Error,
                    AtomRef::GroupMember(gi, mi),
                    "the member's language is empty — no path tuple can witness the group".into(),
                );
                stats.unsat = true;
                member_dead = true;
            } else if !footprint_reachable(nfa, db) {
                diags.push(
                    Lint::FootprintMiss,
                    Severity::Error,
                    AtomRef::GroupMember(gi, mi),
                    "every word of the member's language needs a letter with no arcs in this database"
                        .into(),
                );
                stats.unsat = true;
                member_dead = true;
            }
        }
        if !member_dead && g.spec.relation.is_equality() && g.spec.nfas.len() > 1 {
            let product: usize = g
                .spec
                .nfas
                .iter()
                .map(Nfa::state_count)
                .try_fold(1usize, |acc, n| acc.checked_mul(n))
                .unwrap_or(usize::MAX);
            if product <= opts.containment_budget && Nfa::intersect_all(&g.spec.nfas).is_empty() {
                diags.push(
                    Lint::EmptyAtom,
                    Severity::Error,
                    AtomRef::GroupMember(gi, 0),
                    "the equality group's member languages have an empty intersection — no shared word exists"
                        .into(),
                );
                stats.unsat = true;
            }
        }
    }

    // Containment-based subsumption among surviving parallel atoms over the
    // same (unified) endpoint pair. Dropping the *superset* language is the
    // sound direction: a witness path for the narrower atom automatically
    // witnesses the wider one.
    if !stats.unsat {
        for i in 0..free_edges.len() {
            for j in (i + 1)..free_edges.len() {
                if drop_edges[i] {
                    break;
                }
                if drop_edges[j] {
                    continue;
                }
                let key_i = (
                    uf.find(free_edges[i].src.index()),
                    uf.find(free_edges[i].dst.index()),
                );
                let key_j = (
                    uf.find(free_edges[j].src.index()),
                    uf.find(free_edges[j].dst.index()),
                );
                if key_i != key_j {
                    continue;
                }
                let (a, b) = (free_edges[i].cache.nfa(), free_edges[j].cache.nfa());
                let fwd = a.included_in(b, sigma, opts.containment_budget);
                if fwd == Some(true) {
                    drop_edges[j] = true;
                    stats.atoms_dropped += 1;
                    diags.push(
                        Lint::SubsumedAtom,
                        Severity::Warning,
                        AtomRef::Edge(j),
                        format!(
                            "language contains atom #{i}'s over the same endpoints — the wider atom is redundant and was dropped"
                        ),
                    );
                    continue;
                }
                let bwd = b.included_in(a, sigma, opts.containment_budget);
                if bwd == Some(true) {
                    drop_edges[i] = true;
                    stats.atoms_dropped += 1;
                    diags.push(
                        Lint::SubsumedAtom,
                        Severity::Warning,
                        AtomRef::Edge(i),
                        format!(
                            "language contains atom #{j}'s over the same endpoints — the wider atom is redundant and was dropped"
                        ),
                    );
                    continue;
                }
                if fwd.is_none() || bwd.is_none() {
                    stats.containment_capped += 1;
                    diags.push(
                        Lint::ContainmentCapped,
                        Severity::Warning,
                        AtomRef::Edge(i),
                        format!(
                            "containment check against atom #{j} exceeded the state budget — both atoms kept"
                        ),
                    );
                }
            }
        }
    }

    // Structural pass: flag cyclic constraint components (post-rewrite
    // shape — what the planner will actually see).
    if !stats.unsat {
        let mut arcs: Vec<(usize, usize)> = Vec::new();
        for (i, e) in free_edges.iter().enumerate() {
            if !drop_edges[i] {
                arcs.push((uf.find(e.src.index()), uf.find(e.dst.index())));
            }
        }
        for g in groups {
            for (s, d) in g.srcs.iter().zip(g.dsts.iter()) {
                arcs.push((uf.find(s.index()), uf.find(d.index())));
            }
        }
        let mut comp = UnionFind::new(node_count);
        for &(s, d) in &arcs {
            comp.union(s, d);
        }
        let mut vars_per: std::collections::HashMap<usize, std::collections::HashSet<usize>> =
            std::collections::HashMap::new();
        let mut arcs_per: std::collections::HashMap<usize, usize> =
            std::collections::HashMap::new();
        for &(s, d) in &arcs {
            let root = comp.find(s);
            let vs = vars_per.entry(root).or_default();
            vs.insert(s);
            vs.insert(d);
            *arcs_per.entry(root).or_default() += 1;
        }
        if arcs_per
            .iter()
            .any(|(root, &count)| count >= vars_per[root].len())
        {
            diags.push(
                Lint::CyclicPattern,
                Severity::Info,
                AtomRef::Pattern,
                "the constraint graph has a cyclic component (at least as many atoms as variables) — the hardest shape for backtracking"
                    .into(),
            );
        }
    }

    let var_rep: Vec<usize> = (0..node_count).map(|v| uf.find(v)).collect();
    Analysis {
        report: AnalysisReport {
            stats,
            diagnostics: diags,
        },
        var_rep,
        drop_edges,
        universal,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::NodeVar;
    use crate::reach::ReachCache;
    use crate::sync::SyncSpec;
    use cxrpq_automata::parse_regex;
    use cxrpq_graph::{Alphabet, GraphBuilder, GraphDb};
    use std::sync::Arc;

    const OPTS: AnalyzeOptions = AnalyzeOptions {
        containment_budget: 4096,
    };

    fn ab_path() -> GraphDb {
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut b = GraphBuilder::new(alpha);
        let w = b.alphabet().parse_word("ab").unwrap();
        let u = b.add_node();
        let v = b.add_node();
        b.add_word_path(u, &w, v);
        b.freeze()
    }

    fn edge(db: &GraphDb, src: u32, dst: u32, re: &str) -> FreeEdge {
        let mut a = db.alphabet().clone();
        FreeEdge {
            src: NodeVar(src),
            dst: NodeVar(dst),
            cache: ReachCache::new(Nfa::from_regex(&parse_regex(re, &mut a).unwrap())),
        }
    }

    #[test]
    fn empty_atom_is_unsat() {
        let db = ab_path();
        let free = vec![edge(&db, 0, 1, "!")];
        let a = analyze(2, &free, &[], &db, &OPTS);
        assert!(a.report.stats.unsat);
        assert!(a.report.diagnostics.has(Lint::EmptyAtom));
    }

    #[test]
    fn footprint_miss_is_unsat_but_db_dependent() {
        let db = ab_path(); // has a- and b-arcs, no c-arcs
        let free = vec![edge(&db, 0, 1, "a*c")];
        let a = analyze(2, &free, &[], &db, &OPTS);
        assert!(a.report.stats.unsat);
        assert!(a.report.diagnostics.has(Lint::FootprintMiss));
        // An alternation with one supported branch passes.
        let free2 = vec![edge(&db, 0, 1, "c|ab")];
        let a2 = analyze(2, &free2, &[], &db, &OPTS);
        assert!(!a2.report.stats.unsat);
    }

    #[test]
    fn epsilon_atom_unifies_variables() {
        let db = ab_path();
        let free = vec![edge(&db, 0, 1, "_"), edge(&db, 1, 2, "ab")];
        let a = analyze(3, &free, &[], &db, &OPTS);
        assert!(!a.report.stats.unsat);
        assert_eq!(a.report.stats.vars_merged, 1);
        assert_eq!(a.report.stats.atoms_dropped, 1);
        assert!(a.drop_edges[0] && !a.drop_edges[1]);
        assert_eq!(a.var_rep[1], 0, "smaller index becomes the representative");
        assert!(a.report.diagnostics.has(Lint::EpsilonAtom));
    }

    #[test]
    fn universal_atom_is_flagged_not_dropped() {
        let db = ab_path();
        let free = vec![edge(&db, 0, 1, ".*"), edge(&db, 0, 1, "ab")];
        let a = analyze(2, &free, &[], &db, &OPTS);
        assert_eq!(a.report.stats.universal_atoms, 1);
        assert!(a.universal[0] && !a.universal[1]);
        // The ab-atom is contained in Σ*, so the Σ* atom is also subsumed.
        assert!(a.drop_edges[0]);
        assert!(a.report.diagnostics.has(Lint::UniversalAtom));
        assert!(a.report.diagnostics.has(Lint::SubsumedAtom));
    }

    #[test]
    fn subsumption_drops_the_superset_language() {
        let db = ab_path();
        // L(ab) ⊆ L(a(b|c)): the wider second atom is dropped.
        let free = vec![edge(&db, 0, 1, "ab"), edge(&db, 0, 1, "a(b|c)")];
        let a = analyze(2, &free, &[], &db, &OPTS);
        assert!(!a.drop_edges[0]);
        assert!(a.drop_edges[1]);
        assert_eq!(a.report.stats.atoms_dropped, 1);
        // Incomparable languages are both kept, silently.
        let free2 = vec![edge(&db, 0, 1, "ab"), edge(&db, 0, 1, "ba")];
        let a2 = analyze(2, &free2, &[], &db, &OPTS);
        assert!(!a2.drop_edges[0] && !a2.drop_edges[1]);
        assert!(!a2.report.diagnostics.has(Lint::ContainmentCapped));
    }

    #[test]
    fn duplicated_atom_dropped_once() {
        let db = ab_path();
        let free = vec![edge(&db, 0, 1, "ab"), edge(&db, 0, 1, "ab")];
        let a = analyze(2, &free, &[], &db, &OPTS);
        assert!(!a.drop_edges[0]);
        assert!(a.drop_edges[1]);
    }

    #[test]
    fn parallel_atoms_found_through_epsilon_unification() {
        let db = ab_path();
        // 0 -ε-> 2 unifies {0, 2}; the ab-atoms 0→1 and 2→1 become
        // parallel and one is subsumed.
        let free = vec![
            edge(&db, 0, 2, "_"),
            edge(&db, 0, 1, "ab"),
            edge(&db, 2, 1, "a(b|c)"),
        ];
        let a = analyze(3, &free, &[], &db, &OPTS);
        assert!(a.drop_edges[0], "ε atom dropped");
        assert!(!a.drop_edges[1]);
        assert!(a.drop_edges[2], "wider parallel atom dropped");
        assert_eq!(a.report.stats.atoms_dropped, 2);
    }

    #[test]
    fn capped_containment_keeps_both_atoms() {
        let db = ab_path();
        let free = vec![edge(&db, 0, 1, "(a|b)*a"), edge(&db, 0, 1, "(a|b)*b")];
        let tiny = AnalyzeOptions {
            containment_budget: 1,
        };
        let a = analyze(2, &free, &[], &db, &tiny);
        assert!(!a.drop_edges[0] && !a.drop_edges[1], "cap must never drop");
        assert_eq!(a.report.stats.containment_capped, 1);
        assert!(a.report.diagnostics.has(Lint::ContainmentCapped));
        assert_eq!(a.report.stats.atoms_dropped, 0);
    }

    #[test]
    fn group_member_emptiness_is_unsat() {
        let db = ab_path();
        let mut a_ = db.alphabet().clone();
        let dead = Nfa::from_regex(&parse_regex("!", &mut a_).unwrap());
        let groups = vec![Group::new(
            vec![NodeVar(0)],
            vec![NodeVar(1)],
            SyncSpec::equality_group(Some(dead), 1),
        )];
        let a = analyze(2, &[], &groups, &db, &OPTS);
        assert!(a.report.stats.unsat);
    }

    #[test]
    fn equality_group_with_disjoint_members_is_unsat() {
        let db = ab_path();
        let mut al = db.alphabet().clone();
        let m1 = Nfa::from_regex(&parse_regex("a+", &mut al).unwrap());
        let m2 = Nfa::from_regex(&parse_regex("b+", &mut al).unwrap());
        let groups = vec![Group::new(
            vec![NodeVar(0), NodeVar(2)],
            vec![NodeVar(1), NodeVar(3)],
            SyncSpec {
                nfas: vec![m1, m2],
                relation: crate::relation::RegularRelation::equality(2),
            },
        )];
        let a = analyze(4, &[], &groups, &db, &OPTS);
        assert!(a.report.stats.unsat, "no word is in both a+ and b+");
    }

    #[test]
    fn cyclic_pattern_is_reported() {
        let db = ab_path();
        let free = vec![edge(&db, 0, 1, "a"), edge(&db, 1, 0, "b")];
        let a = analyze(2, &free, &[], &db, &OPTS);
        assert!(a.report.diagnostics.has(Lint::CyclicPattern));
        let acyclic = vec![edge(&db, 0, 1, "a"), edge(&db, 1, 2, "b")];
        let a2 = analyze(3, &acyclic, &[], &db, &OPTS);
        assert!(!a2.report.diagnostics.has(Lint::CyclicPattern));
    }
}
