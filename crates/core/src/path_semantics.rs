//! RPQ evaluation under alternative path semantics.
//!
//! The paper evaluates queries under *arbitrary* path semantics (walks),
//! and its introduction points to the line of work on simple-path and trail
//! semantics \[34, 36, 35\] where "such semantics make the evaluation of
//! RPQs much more difficult": arbitrary-path RPQs are NL, while simple-path
//! and trail evaluation are NP-complete in general. This module implements
//! all three for single-edge queries (RPQs), so the engines' default
//! semantics can be contrasted experimentally with the restricted ones.
//!
//! - [`PathSemantics::Arbitrary`]: product BFS (polynomial; the default
//!   everywhere else in this crate);
//! - [`PathSemantics::SimplePath`]: no repeated *node* — backtracking over
//!   the product, worst-case exponential (NP-hard in general);
//! - [`PathSemantics::Trail`]: no repeated *edge* — same search over edge
//!   sets.

use crate::domains::probe_long_diameter;
use crate::frontier::FrontierConfig;
use crate::governor::Governor;
use crate::reach::{reach_all_governed, reach_set_governed, Direction, ReachScratch, WaveScratch};
use crate::witness::edge_path_governed;
use cxrpq_automata::{Label, Nfa, StateId};
use cxrpq_graph::{GraphDb, NodeId, Path, Symbol};
use std::collections::BTreeSet;

/// Which paths count as matches.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PathSemantics {
    /// Any walk (nodes and edges may repeat) — the paper's semantics.
    Arbitrary,
    /// Paths with pairwise-distinct nodes.
    SimplePath,
    /// Paths with pairwise-distinct edges.
    Trail,
}

/// Is there a path `from →* to` labelled by a word of `L(nfa)` under the
/// given semantics?
pub fn rpq_holds(db: &GraphDb, nfa: &Nfa, from: NodeId, to: NodeId, sem: PathSemantics) -> bool {
    rpq_witness(db, nfa, from, to, sem).is_some()
}

/// A witnessing path, if any.
pub fn rpq_witness(
    db: &GraphDb,
    nfa: &Nfa,
    from: NodeId,
    to: NodeId,
    sem: PathSemantics,
) -> Option<Path> {
    rpq_witness_governed(db, nfa, from, to, sem, Governor::disabled())
}

/// [`rpq_witness`] under a [`Governor`]: the arbitrary-semantics BFS and
/// the restricted backtracking search both checkpoint per expanded node;
/// an abort yields `None` (sound failure — the search never fabricates a
/// path) and the reason is readable from the governor's verdict.
pub fn rpq_witness_governed(
    db: &GraphDb,
    nfa: &Nfa,
    from: NodeId,
    to: NodeId,
    sem: PathSemantics,
    gov: &Governor,
) -> Option<Path> {
    match sem {
        PathSemantics::Arbitrary => edge_path_governed(db, nfa, from, to, gov),
        PathSemantics::SimplePath | PathSemantics::Trail => {
            let mut search = RestrictedSearch {
                db,
                nfa,
                to,
                sem,
                gov,
                visited_nodes: vec![false; db.node_count()],
                used_edges: BTreeSet::new(),
                path: Path::trivial(from),
            };
            search.visited_nodes[from.index()] = true;
            let start_states = nfa.eps_closure_of(nfa.start());
            for s in start_states {
                if search.dfs(from, s) {
                    return Some(search.path);
                }
            }
            None
        }
    }
}

/// All pairs `(u, v)` connected under the semantics.
///
/// Arbitrary semantics is routed by the same cheap BFS-diameter probe the
/// solver's prune phase uses ([`probe_long_diameter`]): short-diameter
/// graphs run one batched multi-source wavefront ([`reach_all`]) over all
/// nodes — `⌈|V|/64⌉` passes over `D × M` instead of one BFS per source —
/// while long-diameter (chain-shaped) graphs fall back to per-source
/// scratch sweeps, where staggered membership arrivals would make the
/// wavefront re-expand cells level after level. The restricted semantics
/// stay a quadratic sweep (exponential per source in the worst case).
pub fn rpq_pairs(db: &GraphDb, nfa: &Nfa, sem: PathSemantics) -> BTreeSet<(NodeId, NodeId)> {
    rpq_pairs_governed(db, nfa, sem, Governor::disabled())
}

/// [`rpq_pairs`] under a [`Governor`]: per-source sweeps stop at the first
/// aborted source and the batched wavefront drains mid-stripe, so the
/// returned relation is always a sound subset of the complete one.
pub fn rpq_pairs_governed(
    db: &GraphDb,
    nfa: &Nfa,
    sem: PathSemantics,
    gov: &Governor,
) -> BTreeSet<(NodeId, NodeId)> {
    let mut out = BTreeSet::new();
    match sem {
        PathSemantics::Arbitrary if probe_long_diameter(db) => {
            let mut scratch = ReachScratch::default();
            for u in db.nodes() {
                if gov.is_aborted() {
                    break;
                }
                for v in reach_set_governed(db, nfa, u, Direction::Forward, None, &mut scratch, gov)
                {
                    out.insert((u, v));
                }
            }
        }
        PathSemantics::Arbitrary => {
            let sources: Vec<NodeId> = db.nodes().collect();
            let sets = reach_all_governed(
                db,
                nfa,
                &sources,
                Direction::Forward,
                None,
                &FrontierConfig::auto(),
                &mut WaveScratch::default(),
                gov,
            );
            for (u, set) in sources.into_iter().zip(sets) {
                for v in set {
                    out.insert((u, v));
                }
            }
        }
        PathSemantics::SimplePath | PathSemantics::Trail => {
            for u in db.nodes() {
                if gov.is_aborted() {
                    break;
                }
                for v in db.nodes() {
                    if gov.is_aborted() {
                        break;
                    }
                    if rpq_witness_governed(db, nfa, u, v, sem, gov).is_some() {
                        out.insert((u, v));
                    }
                }
            }
        }
    }
    out
}

struct RestrictedSearch<'a> {
    db: &'a GraphDb,
    nfa: &'a Nfa,
    to: NodeId,
    sem: PathSemantics,
    gov: &'a Governor,
    visited_nodes: Vec<bool>,
    used_edges: BTreeSet<(NodeId, Symbol, NodeId)>,
    path: Path,
}

impl RestrictedSearch<'_> {
    /// Extends the current path from `node` in NFA state `st` (already
    /// ε-closed on entry by the caller's iteration over closures).
    /// A governor abort reports "no path" up the whole stack — a sound
    /// under-approximation, mirroring the solver's enumeration.
    fn dfs(&mut self, node: NodeId, st: StateId) -> bool {
        if !self.gov.checkpoint() {
            return false;
        }
        if node == self.to && self.nfa.is_final(st) {
            return true;
        }
        // Collect the symbol transitions reachable through ε-closure first:
        // (symbol-or-any, target state).
        let mut moves: Vec<(Label, StateId)> = Vec::new();
        for &cs in &self.nfa.eps_closure_of(st) {
            if cs != st && self.to == node && self.nfa.is_final(cs) {
                return true;
            }
            for &(l, t) in self.nfa.transitions(cs) {
                if l != Label::Eps {
                    moves.push((l, t));
                }
            }
        }
        for (l, t) in moves {
            // Sym moves expand over the merged per-label run (base CSR
            // range + delta overlay); Any moves take the whole merged row.
            let range = match l {
                Label::Sym(a) => self.db.successors_with(node, a),
                Label::Any => self.db.out_edges(node),
                Label::Eps => unreachable!("ε filtered above"),
            };
            for (b, next) in range {
                match self.sem {
                    PathSemantics::SimplePath => {
                        if self.visited_nodes[next.index()] {
                            continue;
                        }
                        self.visited_nodes[next.index()] = true;
                        self.path.push(b, next);
                        if self.dfs(next, t) {
                            return true;
                        }
                        self.path.pop();
                        self.visited_nodes[next.index()] = false;
                    }
                    PathSemantics::Trail => {
                        let edge = (node, b, next);
                        if self.used_edges.contains(&edge) {
                            continue;
                        }
                        self.used_edges.insert(edge);
                        self.path.push(b, next);
                        if self.dfs(next, t) {
                            return true;
                        }
                        self.path.pop();
                        self.used_edges.remove(&edge);
                    }
                    PathSemantics::Arbitrary => unreachable!("handled by BFS"),
                }
            }
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::reach_all;
    use cxrpq_automata::parse_regex;
    use cxrpq_graph::Alphabet;
    use cxrpq_graph::GraphBuilder;
    use std::sync::Arc;

    fn nfa(db: &GraphDb, pattern: &str) -> Nfa {
        let mut a = db.alphabet().clone();
        Nfa::from_regex(&parse_regex(pattern, &mut a).unwrap())
    }

    /// s ⇄ m plus s → t: the word aaa reaches t only by revisiting s.
    fn lollipop() -> (GraphDb, NodeId, NodeId, NodeId) {
        let alpha = Arc::new(Alphabet::from_chars("a"));
        let mut db = GraphBuilder::new(alpha);
        let a = db.alphabet().sym("a");
        let s = db.add_node();
        let m = db.add_node();
        let t = db.add_node();
        db.add_edge(s, a, m);
        db.add_edge(m, a, s);
        db.add_edge(s, a, t);
        (db.freeze(), s, m, t)
    }

    #[test]
    fn semantics_separate_on_the_lollipop() {
        let (db, s, _, t) = lollipop();
        let m = nfa(&db, "aaa");
        // Arbitrary: s→m→s→t. Trail: the three arcs are distinct. Simple: s
        // repeats — impossible.
        assert!(rpq_holds(&db, &m, s, t, PathSemantics::Arbitrary));
        assert!(rpq_holds(&db, &m, s, t, PathSemantics::Trail));
        assert!(!rpq_holds(&db, &m, s, t, PathSemantics::SimplePath));
    }

    #[test]
    fn trail_refuses_edge_reuse() {
        let (db, s, _, t) = lollipop();
        // aaaaa needs the s→m→s loop twice: trail fails, arbitrary works.
        let m = nfa(&db, "aaaaa");
        assert!(rpq_holds(&db, &m, s, t, PathSemantics::Arbitrary));
        assert!(!rpq_holds(&db, &m, s, t, PathSemantics::Trail));
    }

    #[test]
    fn all_semantics_agree_on_dags() {
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let mut db = GraphBuilder::new(alpha);
        let w = db.alphabet().parse_word("abab").unwrap();
        let s = db.add_node();
        let t = db.add_node();
        db.add_word_path(s, &w, t);
        let db = db.freeze();
        let m = nfa(&db, "(ab)+");
        for sem in [
            PathSemantics::Arbitrary,
            PathSemantics::SimplePath,
            PathSemantics::Trail,
        ] {
            assert!(rpq_holds(&db, &m, s, t, sem), "{sem:?}");
        }
        let pairs_arb = rpq_pairs(&db, &m, PathSemantics::Arbitrary);
        let pairs_simple = rpq_pairs(&db, &m, PathSemantics::SimplePath);
        assert_eq!(pairs_arb, pairs_simple);
    }

    #[test]
    fn witnesses_respect_their_semantics() {
        let (db, s, _, t) = lollipop();
        let m = nfa(&db, "a+");
        let w_simple = rpq_witness(&db, &m, s, t, PathSemantics::SimplePath).unwrap();
        assert!(w_simple.is_valid_in(&db));
        let mut nodes = w_simple.nodes().to_vec();
        nodes.sort();
        nodes.dedup();
        assert_eq!(
            nodes.len(),
            w_simple.nodes().len(),
            "nodes must be distinct"
        );
        let m3 = nfa(&db, "aaa");
        let w_trail = rpq_witness(&db, &m3, s, t, PathSemantics::Trail).unwrap();
        assert!(w_trail.is_valid_in(&db));
        let mut edges: Vec<_> = (0..w_trail.len())
            .map(|i| {
                (
                    w_trail.nodes()[i],
                    w_trail.label()[i],
                    w_trail.nodes()[i + 1],
                )
            })
            .collect();
        edges.sort();
        edges.dedup();
        assert_eq!(edges.len(), w_trail.len(), "edges must be distinct");
    }

    #[test]
    fn epsilon_matches_under_every_semantics() {
        let (db, s, _, _) = lollipop();
        let m = nfa(&db, "a*");
        for sem in [
            PathSemantics::Arbitrary,
            PathSemantics::SimplePath,
            PathSemantics::Trail,
        ] {
            assert!(rpq_holds(&db, &m, s, s, sem), "{sem:?}");
        }
    }

    #[test]
    fn rpq_pairs_per_source_route_agrees_on_long_chains() {
        // A 150-node chain trips the long-diameter probe, so rpq_pairs
        // takes the per-source route; the pair relation must match what
        // the batched wavefront computes directly.
        let alpha = Arc::new(Alphabet::from_chars("a"));
        let mut b = GraphBuilder::new(alpha);
        let a = b.alphabet().sym("a");
        let nodes: Vec<NodeId> = (0..150).map(|_| b.add_node()).collect();
        for w in nodes.windows(2) {
            b.add_edge(w[0], a, w[1]);
        }
        let db = b.freeze();
        assert!(probe_long_diameter(&db));
        let m = nfa(&db, "aaa");
        let routed = rpq_pairs(&db, &m, PathSemantics::Arbitrary);
        let mut reference = BTreeSet::new();
        let sources: Vec<NodeId> = db.nodes().collect();
        let sets = reach_all(&db, &m, &sources, Direction::Forward, None);
        for (u, set) in sources.into_iter().zip(sets) {
            for v in set {
                reference.insert((u, v));
            }
        }
        assert_eq!(routed, reference);
        assert_eq!(routed.len(), 147); // every node three hops from the end
    }

    #[test]
    fn governed_pairs_are_sound_partial_subsets() {
        let (db, _, _, _) = lollipop();
        let m = nfa(&db, "a+");
        for sem in [
            PathSemantics::Arbitrary,
            PathSemantics::SimplePath,
            PathSemantics::Trail,
        ] {
            let complete = rpq_pairs(&db, &m, sem);
            for fuel in 0..12 {
                let gov = Governor::unlimited().with_max_steps(fuel);
                let partial = rpq_pairs_governed(&db, &m, sem, &gov);
                assert!(
                    partial.is_subset(&complete),
                    "{sem:?} fuel {fuel}: partial must under-approximate"
                );
            }
        }
    }

    #[test]
    fn restricted_pairs_are_subsets_of_arbitrary() {
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let mut db = GraphBuilder::new(alpha);
        let a = db.alphabet().sym("a");
        let b = db.alphabet().sym("b");
        // A small tangle: triangle + chord.
        let n: Vec<NodeId> = (0..4).map(|_| db.add_node()).collect();
        db.add_edge(n[0], a, n[1]);
        db.add_edge(n[1], b, n[2]);
        db.add_edge(n[2], a, n[0]);
        db.add_edge(n[0], b, n[3]);
        db.add_edge(n[3], a, n[1]);
        let db = db.freeze();
        let m = nfa(&db, "(a|b)(a|b)+");
        let arb = rpq_pairs(&db, &m, PathSemantics::Arbitrary);
        let simple = rpq_pairs(&db, &m, PathSemantics::SimplePath);
        let trail = rpq_pairs(&db, &m, PathSemantics::Trail);
        assert!(simple.is_subset(&arb));
        assert!(trail.is_subset(&arb));
        assert!(simple.is_subset(&trail), "simple paths are trails");
    }
}
