//! Conjunctive xregex path queries — CXRPQ (Definition 5).
//!
//! A CXRPQ is an `<`-CPQ whose edge labels, read jointly, form a conjunctive
//! xregex: edge `i` carries component `ᾱ[i]`, and a matching morphism must
//! be witnessed by a *conjunctive match* `(w₁, …, w_m) ∈ L(ᾱ)` — this is
//! what lets string variables express inter-path dependencies.
//!
//! Evaluation dispatches by fragment through [`crate::engine`]; every
//! engine ultimately reduces to the shared plan/prune/enumerate solver
//! pipeline of [`crate::solve`] (candidate domains are pruned by semi-joins
//! before any backtracking, see [`crate::domains`]).

use crate::crpq::Crpq;
use crate::pattern::{GraphPattern, NodeVar};
use cxrpq_automata::Regex;
use cxrpq_graph::Alphabet;
use cxrpq_xregex::conjunctive::ConjunctiveError;
use cxrpq_xregex::{classification, ConjunctiveXregex, Fragment, XregexParseError};
use std::fmt;

/// Errors from building a CXRPQ.
#[derive(Debug)]
pub enum CxrpqError {
    /// An edge label failed to parse.
    Parse(XregexParseError),
    /// The tuple of labels is not a conjunctive xregex (Definition 4).
    Conjunctive(ConjunctiveError),
    /// An output variable does not occur in the pattern.
    UnknownOutput(String),
}

impl fmt::Display for CxrpqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CxrpqError::Parse(e) => write!(f, "{e}"),
            CxrpqError::Conjunctive(e) => write!(f, "{e}"),
            CxrpqError::UnknownOutput(n) => write!(f, "unknown output variable {n:?}"),
        }
    }
}

impl std::error::Error for CxrpqError {}

/// A CXRPQ `z̄ ← G_q` with conjunctive xregex `ᾱ`; edge `i` is labelled by
/// component `ᾱ[i]`.
#[derive(Clone, Debug)]
pub struct Cxrpq {
    pattern: GraphPattern<usize>,
    cxre: ConjunctiveXregex,
    output: Vec<NodeVar>,
}

impl Cxrpq {
    /// Wraps pre-built parts. The pattern's edge labels must be exactly
    /// `0..m` in edge order.
    pub fn from_parts(
        pattern: GraphPattern<usize>,
        cxre: ConjunctiveXregex,
        output: Vec<NodeVar>,
    ) -> Self {
        assert_eq!(pattern.edge_count(), cxre.dim(), "edge/component mismatch");
        for (i, (_, c, _)) in pattern.edges().iter().enumerate() {
            assert_eq!(*c, i, "edge labels must be component indices in order");
        }
        Self {
            pattern,
            cxre,
            output,
        }
    }

    /// The graph pattern (labels are component indices).
    pub fn pattern(&self) -> &GraphPattern<usize> {
        &self.pattern
    }

    /// The conjunctive xregex `ᾱ`.
    pub fn conjunctive(&self) -> &ConjunctiveXregex {
        &self.cxre
    }

    /// The output tuple `z̄`.
    pub fn output(&self) -> &[NodeVar] {
        &self.output
    }

    /// Whether the query is Boolean.
    pub fn is_boolean(&self) -> bool {
        self.output.is_empty()
    }

    /// Query size |q|.
    pub fn size(&self) -> usize {
        self.pattern.node_count() + self.cxre.size()
    }

    /// The §5 fragment of the query's conjunctive xregex.
    pub fn fragment(&self) -> Fragment {
        classification(&self.cxre).fragment()
    }

    /// Rebuilds the query with a different (dimension-preserving)
    /// conjunctive xregex — Proposition 2: equal conjunctive-match languages
    /// give equivalent queries.
    pub fn with_conjunctive(&self, cxre: ConjunctiveXregex) -> Self {
        assert_eq!(cxre.dim(), self.cxre.dim());
        Self {
            pattern: self.pattern.clone(),
            cxre,
            output: self.output.clone(),
        }
    }

    /// Instantiates the pattern with classical regexes (one per component),
    /// yielding a CRPQ — the shape produced by Lemma 11.
    pub fn to_crpq(&self, regexes: &[Regex]) -> Crpq {
        assert_eq!(regexes.len(), self.cxre.dim());
        let pattern = self.pattern.map_labels(|i, _| regexes[i].clone());
        Crpq::new(pattern, self.output.clone())
    }

    /// Semantic witness verification: the witness's paths must be
    /// structurally valid (see [`crate::witness::QueryWitness::verify`]) and
    /// its matching words must form a conjunctive match of the query's
    /// conjunctive xregex, checked by the backtracking oracle under `cfg`
    /// (exponential in general — intended for tests and auditing).
    pub fn certifies(
        &self,
        db: &cxrpq_graph::GraphDb,
        w: &crate::witness::QueryWitness,
        cfg: &cxrpq_xregex::matcher::MatchConfig,
    ) -> Result<(), String> {
        w.verify(db, &self.pattern)?;
        let words = w.matching_words();
        match self.cxre.is_match(&words, cfg) {
            Ok(Some(_)) => Ok(()),
            Ok(None) => Err("matching words are not a conjunctive match".into()),
            Err(e) => Err(format!("oracle could not certify: {e}")),
        }
    }

    /// Renders the query edges for display.
    pub fn render(&self, alphabet: &Alphabet) -> Vec<String> {
        self.pattern
            .edges()
            .iter()
            .map(|(x, i, y)| {
                format!(
                    "({} , {} , {})",
                    self.pattern.node_name(*x),
                    self.cxre.component(*i).render(alphabet, self.cxre.vars()),
                    self.pattern.node_name(*y)
                )
            })
            .collect()
    }
}

/// Builder: collect `(src, xregex, dst)` edges, then parse all labels as one
/// conjunctive xregex (cross-component references included).
pub struct CxrpqBuilder<'a> {
    alphabet: &'a mut Alphabet,
    edges: Vec<(String, String, String)>,
    output: Vec<String>,
    declared_vars: Vec<String>,
}

impl<'a> CxrpqBuilder<'a> {
    /// Starts a builder over `alphabet`.
    pub fn new(alphabet: &'a mut Alphabet) -> Self {
        Self {
            alphabet,
            edges: Vec::new(),
            output: Vec::new(),
            declared_vars: Vec::new(),
        }
    }

    /// Declares string-variable names up front. Needed only for variables
    /// that never occur in a definition `name{…}` (pure multi-path equality
    /// references).
    pub fn declare_vars(mut self, names: &[&str]) -> Self {
        self.declared_vars
            .extend(names.iter().map(|s| s.to_string()));
        self
    }

    /// Adds an edge `(src) -[xregex]-> (dst)`.
    pub fn edge(mut self, src: &str, xregex: &str, dst: &str) -> Self {
        self.edges
            .push((src.to_string(), xregex.to_string(), dst.to_string()));
        self
    }

    /// Declares the output tuple (node-variable names).
    pub fn output(mut self, names: &[&str]) -> Self {
        self.output = names.iter().map(|s| s.to_string()).collect();
        self
    }

    /// Parses and validates the query.
    pub fn build(self) -> Result<Cxrpq, CxrpqError> {
        let labels: Vec<&str> = self.edges.iter().map(|(_, l, _)| l.as_str()).collect();
        let declared: Vec<&str> = self.declared_vars.iter().map(String::as_str).collect();
        let (comps, vars) =
            cxrpq_xregex::parser::parse_conjunctive_with_vars(&labels, &declared, self.alphabet)
                .map_err(CxrpqError::Parse)?;
        let cxre = ConjunctiveXregex::new(comps, vars).map_err(CxrpqError::Conjunctive)?;
        let mut pattern = GraphPattern::new();
        for (i, (src, _, dst)) in self.edges.iter().enumerate() {
            let s = pattern.node(src);
            let d = pattern.node(dst);
            pattern.add_edge(s, i, d);
        }
        let mut output = Vec::with_capacity(self.output.len());
        for name in &self.output {
            output.push(
                pattern
                    .node_var(name)
                    .ok_or_else(|| CxrpqError::UnknownOutput(name.clone()))?,
            );
        }
        Ok(Cxrpq::from_parts(pattern, cxre, output))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_parses_figure_2_g1() {
        let mut alpha = Alphabet::from_chars("abc");
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("v1", "x{a|b}", "w")
            .edge("w", "(x|c)+", "v2")
            .output(&["v1", "v2"])
            .build()
            .unwrap();
        assert_eq!(q.pattern().edge_count(), 2);
        assert_eq!(q.conjunctive().dim(), 2);
        assert_eq!(q.fragment(), Fragment::General); // reference under +
        assert!(!q.is_boolean());
    }

    #[test]
    fn builder_figure_2_g3_is_general() {
        let mut alpha = Alphabet::from_chars("ab");
        // G3: v1 -x{ΣΣ+}-> v2, v2 -y{ΣΣ+}-> v1, v1 -(x|y)+-> m, v2 -(x|y)+-> m
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("v1", "x{..+}", "v2")
            .edge("v2", "y{..+}", "v1")
            .edge("v1", "(x|y)+", "m")
            .edge("v2", "(x|y)+", "m")
            .build()
            .unwrap();
        assert_eq!(q.fragment(), Fragment::General);
        assert!(q.is_boolean());
    }

    #[test]
    fn builder_rejects_invalid_conjunctive() {
        let mut alpha = Alphabet::from_chars("ab");
        // x defined in two components → not sequential.
        let r = CxrpqBuilder::new(&mut alpha)
            .edge("u", "x{a}", "v")
            .edge("v", "x{b}", "w")
            .build();
        assert!(matches!(r, Err(CxrpqError::Conjunctive(_))));
    }

    #[test]
    fn builder_rejects_unknown_output() {
        let mut alpha = Alphabet::from_chars("ab");
        let r = CxrpqBuilder::new(&mut alpha)
            .edge("u", "a", "v")
            .output(&["nope"])
            .build();
        assert!(matches!(r, Err(CxrpqError::UnknownOutput(_))));
    }

    #[test]
    fn to_crpq_maps_labels() {
        let mut alpha = Alphabet::from_chars("ab");
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("u", "x{a}", "v")
            .edge("v", "x", "w")
            .output(&["u", "w"])
            .build()
            .unwrap();
        let a = alpha.sym("a");
        let crpq = q.to_crpq(&[Regex::Sym(a), Regex::Sym(a)]);
        assert_eq!(crpq.pattern().edge_count(), 2);
        assert_eq!(crpq.output().len(), 2);
    }

    #[test]
    fn render_round_trip() {
        let mut alpha = Alphabet::from_chars("ab");
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("u", "x{(a|b)+}", "v")
            .edge("v", "x", "w")
            .build()
            .unwrap();
        let rendered = q.render(&alpha);
        assert_eq!(rendered[0], "(u , x{(a|b)+} , v)");
        assert_eq!(rendered[1], "(v , x , w)");
    }
}
