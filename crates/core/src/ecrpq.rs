//! Extended conjunctive regular path queries (ECRPQ) of Barceló et al. \[8\]
//! — the paper's main comparison class (§1.3, §7).
//!
//! An ECRPQ is a CRPQ plus regular relations `R_j(ω̄_j)` over tuples of the
//! matched paths. Evaluation is PSpace-complete in combined complexity and
//! NL-complete in data complexity; the engine here instantiates the shared
//! constraint solver with one synchronized group per relation.
//!
//! `ECRPQ^er` — only equality relations — is the fragment CXRPQ subsumes
//! (Lemma 12).

use crate::governor::Outcome;
use crate::pattern::{GraphPattern, NodeVar};
use crate::reach::ReachCache;
use crate::relation::RegularRelation;
use crate::solve::{FreeEdge, Group, PipelineStats, Problem, SolveOptions};
use crate::sync::SyncSpec;
use crate::witness::QueryWitness;
use cxrpq_automata::{Nfa, Regex};
use cxrpq_graph::{GraphDb, NodeId};
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Errors from assembling an ECRPQ.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EcrpqError {
    /// Relation arity does not match the number of edges it constrains.
    ArityMismatch,
    /// A relation references a nonexistent edge.
    BadEdgeIndex,
    /// An edge occurs in more than one relation (not supported by this
    /// engine; the paper's examples never need it).
    OverlappingRelations,
}

impl fmt::Display for EcrpqError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EcrpqError::ArityMismatch => write!(f, "relation arity ≠ edge tuple length"),
            EcrpqError::BadEdgeIndex => write!(f, "relation references unknown edge"),
            EcrpqError::OverlappingRelations => {
                write!(f, "an edge may occur in at most one relation")
            }
        }
    }
}

impl std::error::Error for EcrpqError {}

/// An ECRPQ `z̄ ← G_q, ∧_j R_j(ω̄_j)`.
#[derive(Clone, Debug)]
pub struct Ecrpq {
    pattern: GraphPattern<Regex>,
    relations: Vec<(RegularRelation, Vec<usize>)>,
    output: Vec<NodeVar>,
}

impl Ecrpq {
    /// Validates and assembles the query.
    pub fn new(
        pattern: GraphPattern<Regex>,
        relations: Vec<(RegularRelation, Vec<usize>)>,
        output: Vec<NodeVar>,
    ) -> Result<Self, EcrpqError> {
        let m = pattern.edge_count();
        let mut used = vec![false; m];
        for (rel, edges) in &relations {
            if rel.arity() != edges.len() {
                return Err(EcrpqError::ArityMismatch);
            }
            for &e in edges {
                if e >= m {
                    return Err(EcrpqError::BadEdgeIndex);
                }
                if used[e] {
                    return Err(EcrpqError::OverlappingRelations);
                }
                used[e] = true;
            }
        }
        Ok(Self {
            pattern,
            relations,
            output,
        })
    }

    /// The graph pattern.
    pub fn pattern(&self) -> &GraphPattern<Regex> {
        &self.pattern
    }

    /// The relations with their edge tuples.
    pub fn relations(&self) -> &[(RegularRelation, Vec<usize>)] {
        &self.relations
    }

    /// The output tuple.
    pub fn output(&self) -> &[NodeVar] {
        &self.output
    }

    /// Whether every relation is an equality relation (`ECRPQ^er`),
    /// detected structurally ([`RegularRelation::is_equality`]).
    pub fn is_er(&self) -> bool {
        self.relations.iter().all(|(rel, _)| rel.is_equality())
    }

    /// Query size (nodes + regex sizes + relation states).
    pub fn size(&self) -> usize {
        self.pattern.node_count()
            + self
                .pattern
                .edges()
                .iter()
                .map(|(_, r, _)| r.size())
                .sum::<usize>()
            + self
                .relations
                .iter()
                .map(|(r, _)| r.state_count())
                .sum::<usize>()
    }
}

/// The ECRPQ evaluation engine.
pub struct EcrpqEvaluator<'q> {
    q: &'q Ecrpq,
}

impl<'q> EcrpqEvaluator<'q> {
    /// Creates the engine.
    pub fn new(q: &'q Ecrpq) -> Self {
        Self { q }
    }

    fn problem(&self) -> Problem {
        let mut p = Problem::new(self.q.pattern.node_count());
        let mut in_relation = vec![false; self.q.pattern.edge_count()];
        for (rel, edges) in &self.q.relations {
            for &e in edges {
                in_relation[e] = true;
            }
            let nfas: Vec<Nfa> = edges
                .iter()
                .map(|&e| Nfa::from_regex(&self.q.pattern.edges()[e].1))
                .collect();
            let srcs: Vec<NodeVar> = edges.iter().map(|&e| self.q.pattern.edges()[e].0).collect();
            let dsts: Vec<NodeVar> = edges.iter().map(|&e| self.q.pattern.edges()[e].2).collect();
            p.groups.push(Group::new(
                srcs,
                dsts,
                SyncSpec {
                    nfas,
                    relation: rel.clone(),
                },
            ));
        }
        for (i, (src, re, dst)) in self.q.pattern.edges().iter().enumerate() {
            if !in_relation[i] {
                p.free_edges.push(FreeEdge {
                    src: *src,
                    dst: *dst,
                    cache: ReachCache::new(Nfa::from_regex(re)),
                });
            }
        }
        p
    }

    /// Boolean evaluation `D ⊨ q`.
    pub fn boolean(&self, db: &GraphDb) -> bool {
        self.boolean_opts(db, &SolveOptions::early_exit().projected())
            .0
    }

    /// [`EcrpqEvaluator::boolean`] under explicit solver options, with the
    /// pipeline stats of the run.
    pub fn boolean_opts(&self, db: &GraphDb, opts: &SolveOptions) -> (bool, Option<PipelineStats>) {
        let mut p = self.problem();
        let mut found = false;
        p.solve_with(db, &HashMap::new(), &[], opts, &mut |_| {
            found = true;
            true
        });
        (found, p.pipeline.take())
    }

    /// The answer relation `q(D)`, computed with projection pushdown:
    /// pattern variables outside the output tuple are existentially
    /// eliminated instead of enumerated.
    pub fn answers(&self, db: &GraphDb) -> BTreeSet<Vec<NodeId>> {
        self.answers_opts(db, &SolveOptions::pipeline().projected())
            .0
    }

    /// [`EcrpqEvaluator::answers`] under explicit solver options, with the
    /// pipeline stats of the run. The default pipeline's prune phase
    /// batch-warms the relation-free edge caches over the shrinking
    /// candidate domains (subsuming the old whole-database prefill), and
    /// every selective relation walker contributes its own reachability
    /// semi-join as a necessary condition. Pass [`SolveOptions::projected`]
    /// for projection pushdown (the naive reference without it is
    /// full-enumerate-then-project).
    pub fn answers_opts(
        &self,
        db: &GraphDb,
        opts: &SolveOptions,
    ) -> (BTreeSet<Vec<NodeId>>, Option<PipelineStats>) {
        let mut out = BTreeSet::new();
        let mut p = self.problem();
        let output = self.q.output.clone();
        p.solve_with(db, &HashMap::new(), &output, opts, &mut |bindings| {
            out.insert(
                output
                    .iter()
                    .map(|v| bindings[v.index()].expect("required var bound"))
                    .collect(),
            );
            false
        });
        (out, p.pipeline.take())
    }

    /// The Check problem `t̄ ∈ q(D)`.
    pub fn check(&self, db: &GraphDb, tuple: &[NodeId]) -> bool {
        self.check_opts(db, tuple, &SolveOptions::early_exit().projected())
            .0
    }

    /// [`EcrpqEvaluator::check`] under explicit solver options, with the
    /// pipeline stats of the run.
    pub fn check_opts(
        &self,
        db: &GraphDb,
        tuple: &[NodeId],
        opts: &SolveOptions,
    ) -> (bool, Option<PipelineStats>) {
        assert_eq!(tuple.len(), self.q.output.len());
        let mut pinned = HashMap::new();
        for (v, n) in self.q.output.iter().zip(tuple) {
            if let Some(&prev) = pinned.get(v) {
                if prev != *n {
                    return (false, None);
                }
            }
            pinned.insert(*v, *n);
        }
        let mut p = self.problem();
        let mut found = false;
        p.solve_with(db, &pinned, &[], opts, &mut |_| {
            found = true;
            true
        });
        (found, p.pipeline.take())
    }

    /// [`EcrpqEvaluator::boolean_opts`] with the run's [`Verdict`]: an
    /// aborted run may report `false` where a complete run would say `true`
    /// (sound under-approximation) and tags the result
    /// [`crate::governor::Verdict::Aborted`].
    pub fn boolean_outcome(
        &self,
        db: &GraphDb,
        opts: &SolveOptions,
    ) -> (Outcome<bool>, Option<PipelineStats>) {
        let (found, stats) = self.boolean_opts(db, opts);
        (
            Outcome::from_governor(found, opts.governor.as_deref()),
            stats,
        )
    }

    /// [`EcrpqEvaluator::answers_opts`] with the run's [`Verdict`]: an
    /// aborted run returns the partial answers accumulated before the trip
    /// (always a subset of the complete relation).
    pub fn answers_outcome(
        &self,
        db: &GraphDb,
        opts: &SolveOptions,
    ) -> (Outcome<BTreeSet<Vec<NodeId>>>, Option<PipelineStats>) {
        let (ans, stats) = self.answers_opts(db, opts);
        (Outcome::from_governor(ans, opts.governor.as_deref()), stats)
    }

    /// [`EcrpqEvaluator::check_opts`] with the run's [`Verdict`].
    pub fn check_outcome(
        &self,
        db: &GraphDb,
        tuple: &[NodeId],
        opts: &SolveOptions,
    ) -> (Outcome<bool>, Option<PipelineStats>) {
        let (found, stats) = self.check_opts(db, tuple, opts);
        (
            Outcome::from_governor(found, opts.governor.as_deref()),
            stats,
        )
    }

    /// A certificate for some matching morphism: one path per edge, with
    /// relation-constrained edges witnessed jointly so their labels satisfy
    /// the relation.
    pub fn witness(&self, db: &GraphDb) -> Option<QueryWitness> {
        self.witness_impl(db, &HashMap::new())
    }

    /// A certificate for `t̄ ∈ q(D)`.
    pub fn witness_for(&self, db: &GraphDb, tuple: &[NodeId]) -> Option<QueryWitness> {
        let pinned = crate::witness::pin_tuple(self.q.output(), tuple)?;
        self.witness_impl(db, &pinned)
    }

    fn witness_impl(
        &self,
        db: &GraphDb,
        pinned: &HashMap<NodeVar, NodeId>,
    ) -> Option<QueryWitness> {
        let mut p = self.problem();
        let required: Vec<NodeVar> = self.q.pattern.node_vars().collect();
        let mut sol: Option<Vec<Option<NodeId>>> = None;
        p.solve_with(
            db,
            pinned,
            &required,
            &SolveOptions::early_exit(),
            &mut |b| {
                sol = Some(b.to_vec());
                true
            },
        );
        let b = sol?;
        let node = |v: NodeVar| b[v.index()].expect("required variables are bound");
        let m = self.q.pattern.edge_count();
        let mut paths: Vec<Option<cxrpq_graph::Path>> = vec![None; m];
        for (rel, edges) in &self.q.relations {
            let spec = SyncSpec {
                nfas: edges
                    .iter()
                    .map(|&e| Nfa::from_regex(&self.q.pattern.edges()[e].1))
                    .collect(),
                relation: rel.clone(),
            };
            let starts: Vec<NodeId> = edges
                .iter()
                .map(|&e| node(self.q.pattern.edges()[e].0))
                .collect();
            let ends: Vec<NodeId> = edges
                .iter()
                .map(|&e| node(self.q.pattern.edges()[e].2))
                .collect();
            let group = crate::witness::group_paths(db, &spec, &starts, &ends)?;
            for (&e, path) in edges.iter().zip(group) {
                paths[e] = Some(path);
            }
        }
        for (i, (src, re, dst)) in self.q.pattern.edges().iter().enumerate() {
            if paths[i].is_none() {
                let nfa = Nfa::from_regex(re);
                paths[i] = Some(crate::witness::edge_path(db, &nfa, node(*src), node(*dst))?);
            }
        }
        Some(QueryWitness {
            morphism: crate::witness::morphism_of(&self.q.pattern, &b),
            paths: paths.into_iter().map(Option::unwrap).collect(),
            images: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxrpq_automata::parse_regex;
    use cxrpq_graph::Alphabet;
    use cxrpq_graph::GraphBuilder;
    use std::sync::Arc;

    /// Builds the Figure 6 query q_{aⁿbⁿ}: x -c-> y1 -a*-> y2 -c-> z and
    /// x' -d-> y1' -b*-> y2' -d-> z' with |a-path| = |b-path|.
    fn q_anbn(alpha: &mut Alphabet) -> Ecrpq {
        let mut pattern = GraphPattern::new();
        let nodes = ["x", "y1", "y2", "z", "x2", "y12", "y22", "z2"];
        for n in nodes {
            pattern.node(n);
        }
        let nv = |p: &GraphPattern<Regex>, n: &str| p.node_var(n).unwrap();
        let re = |alpha: &mut Alphabet, s: &str| parse_regex(s, alpha).unwrap();
        let edges = [
            ("x", "c", "y1"),
            ("y1", "a*", "y2"), // edge 1
            ("y2", "c", "z"),
            ("x2", "d", "y12"),
            ("y12", "b*", "y22"), // edge 4
            ("y22", "d", "z2"),
        ];
        for (s, l, d) in edges {
            let r = re(alpha, l);
            let sv = pattern.node(s);
            let dv = pattern.node(d);
            pattern.add_edge(sv, r, dv);
        }
        let _ = nv;
        Ecrpq::new(
            pattern,
            vec![(RegularRelation::equal_length(2), vec![1, 4])],
            vec![],
        )
        .unwrap()
    }

    /// A database with a `c aⁿ c` path and a `d bᵐ d` path.
    fn d_nm(n: usize, m: usize) -> GraphDb {
        let alpha = Arc::new(Alphabet::from_chars("abcd"));
        let mut db = GraphBuilder::new(alpha);
        let c = db.alphabet().sym("c");
        let d = db.alphabet().sym("d");
        let a = db.alphabet().sym("a");
        let b = db.alphabet().sym("b");
        let mut prev = db.add_node();
        let mut next = db.add_node();
        db.add_edge(prev, c, next);
        prev = next;
        for _ in 0..n {
            next = db.add_node();
            db.add_edge(prev, a, next);
            prev = next;
        }
        next = db.add_node();
        db.add_edge(prev, c, next);
        let mut prev2 = db.add_node();
        let mut next2 = db.add_node();
        db.add_edge(prev2, d, next2);
        prev2 = next2;
        for _ in 0..m {
            next2 = db.add_node();
            db.add_edge(prev2, b, next2);
            prev2 = next2;
        }
        next2 = db.add_node();
        db.add_edge(prev2, d, next2);
        db.freeze()
    }

    #[test]
    fn q_anbn_requires_equal_lengths() {
        let mut alpha = Alphabet::from_chars("abcd");
        let q = q_anbn(&mut alpha);
        assert!(!q.is_er());
        let ev = EcrpqEvaluator::new(&q);
        assert!(ev.boolean(&d_nm(3, 3)));
        assert!(ev.boolean(&d_nm(0, 0)));
        assert!(!ev.boolean(&d_nm(3, 2)));
        assert!(!ev.boolean(&d_nm(1, 4)));
    }

    #[test]
    fn equality_relation_query() {
        // Two (a|b)* edges from shared source, equal words → same target
        // word; build D where the only equal pair is planted.
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let mut db = GraphBuilder::new(alpha);
        let s = db.add_node();
        let t1 = db.add_node();
        let t2 = db.add_node();
        let ab = db.alphabet().parse_word("ab").unwrap();
        let ba = db.alphabet().parse_word("ba").unwrap();
        db.add_word_path(s, &ab, t1);
        db.add_word_path(s, &ba, t2);
        let db = db.freeze();
        let mut alpha2 = db.alphabet().clone();
        let mut pattern = GraphPattern::new();
        let x = pattern.node("x");
        let y = pattern.node("y");
        let z = pattern.node("z");
        let r1 = parse_regex("(a|b)+", &mut alpha2).unwrap();
        let r2 = parse_regex("(a|b)+", &mut alpha2).unwrap();
        pattern.add_edge(x, r1, y);
        pattern.add_edge(x, r2, z);
        let q = Ecrpq::new(
            pattern,
            vec![(RegularRelation::equality(2), vec![0, 1])],
            vec![x, y, z],
        )
        .unwrap();
        assert!(q.is_er());
        let ans = EcrpqEvaluator::new(&q).answers(&db);
        assert!(ans.contains(&vec![s, t1, t1]));
        assert!(ans.contains(&vec![s, t2, t2]));
        assert!(!ans.contains(&vec![s, t1, t2]));
    }

    #[test]
    fn prefix_relation_query() {
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let mut db = GraphBuilder::new(alpha);
        let s = db.add_node();
        let t1 = db.add_node();
        let t2 = db.add_node();
        let ab = db.alphabet().parse_word("ab").unwrap();
        let abba = db.alphabet().parse_word("abba").unwrap();
        db.add_word_path(s, &ab, t1);
        db.add_word_path(s, &abba, t2);
        let db = db.freeze();
        let mut alpha2 = db.alphabet().clone();
        let mut pattern = GraphPattern::new();
        let x = pattern.node("x");
        let y = pattern.node("y");
        let z = pattern.node("z");
        let r1 = parse_regex("(a|b)+", &mut alpha2).unwrap();
        let r2 = parse_regex("(a|b)+", &mut alpha2).unwrap();
        pattern.add_edge(x, r1, y);
        pattern.add_edge(x, r2, z);
        let q = Ecrpq::new(
            pattern,
            vec![(RegularRelation::prefix(), vec![0, 1])],
            vec![y, z],
        )
        .unwrap();
        let ans = EcrpqEvaluator::new(&q).answers(&db);
        assert!(ans.contains(&vec![t1, t2])); // ab prefix of abba
        assert!(!ans.contains(&vec![t2, t1]));
    }

    #[test]
    fn hamming_relation_query_finds_near_duplicates() {
        // Two branches ab / aa from s: within Hamming distance 1 of each
        // other, but not equal — the approximate-equality ECRPQ accepts the
        // mixed pair, the exact-equality one does not.
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let mut db = GraphBuilder::new(alpha);
        let s = db.add_node();
        let t1 = db.add_node();
        let t2 = db.add_node();
        let ab = db.alphabet().parse_word("ab").unwrap();
        let aa = db.alphabet().parse_word("aa").unwrap();
        db.add_word_path(s, &ab, t1);
        db.add_word_path(s, &aa, t2);
        let db = db.freeze();
        let mut alpha2 = db.alphabet().clone();
        let build = |alpha: &mut Alphabet, rel: RegularRelation| {
            let mut pattern = GraphPattern::new();
            let x = pattern.node("x");
            let y = pattern.node("y");
            let z = pattern.node("z");
            let r1 = parse_regex("(a|b)+", alpha).unwrap();
            let r2 = parse_regex("(a|b)+", alpha).unwrap();
            pattern.add_edge(x, r1, y);
            pattern.add_edge(x, r2, z);
            Ecrpq::new(pattern, vec![(rel, vec![0, 1])], vec![y, z]).unwrap()
        };
        let approx = build(&mut alpha2, RegularRelation::hamming_leq(1));
        let exact = build(&mut alpha2, RegularRelation::equality(2));
        let approx_ans = EcrpqEvaluator::new(&approx).answers(&db);
        let exact_ans = EcrpqEvaluator::new(&exact).answers(&db);
        assert!(approx_ans.contains(&vec![t1, t2]));
        assert!(!exact_ans.contains(&vec![t1, t2]));
        // Exact answers are a subset of approximate ones (d_H = 0 ⊆ d_H ≤ 1).
        assert!(exact_ans.is_subset(&approx_ans));
        // Witness paths differ in exactly one position.
        let w = EcrpqEvaluator::new(&approx)
            .witness_for(&db, &[t1, t2])
            .unwrap();
        let (w1, w2) = (w.paths[0].label(), w.paths[1].label());
        assert_eq!(w1.len(), w2.len());
        let dist = w1.iter().zip(w2).filter(|(a, b)| a != b).count();
        assert_eq!(dist, 1);
    }

    #[test]
    fn validation_rejects_overlap() {
        let mut alpha = Alphabet::from_chars("ab");
        let mut pattern = GraphPattern::new();
        let x = pattern.node("x");
        let y = pattern.node("y");
        let r = parse_regex("a", &mut alpha).unwrap();
        pattern.add_edge(x, r, y);
        assert!(matches!(
            Ecrpq::new(
                pattern.clone(),
                vec![
                    (RegularRelation::equality(1), vec![0]),
                    (RegularRelation::equal_length(1), vec![0])
                ],
                vec![],
            ),
            Err(EcrpqError::OverlappingRelations)
        ));
        assert!(matches!(
            Ecrpq::new(
                pattern.clone(),
                vec![(RegularRelation::equality(2), vec![0])],
                vec![],
            ),
            Err(EcrpqError::ArityMismatch)
        ));
        assert!(matches!(
            Ecrpq::new(
                pattern,
                vec![(RegularRelation::equality(1), vec![5])],
                vec![],
            ),
            Err(EcrpqError::BadEdgeIndex)
        ));
    }
}
