//! Phase 2 of the solver pipeline: semi-join domain reduction.
//!
//! Every node variable starts with the full node set as its *candidate
//! domain* (a [`DenseBitSet`] over node ids; pinned variables collapse to a
//! singleton). Each free edge `(x, M, y)` is a reachability relation
//! `R_M ⊆ V × V`, and one semi-join pass enforces arc consistency in both
//! directions from a single batch of fills *joined from the smaller
//! endpoint domain* — forward when `|dom(x)| ≤ |dom(y)|`:
//!
//! - `dom(x) ← { u ∈ dom(x) : targets_M(u) ∩ dom(y) ≠ ∅ }`
//! - `dom(y) ← dom(y) ∩ ⋃_{u ∈ dom(x)} targets_M(u)`
//!
//! and the mirror image via the reversed automaton otherwise (so a pinned
//! destination costs one backward search from the singleton, never one
//! forward search per node). Passes repeat to a fixpoint (capped by the
//! caller — early-exiting `boolean`/`check` calls cap low), visiting edges
//! cheapest-first per the plan so the sharpest filters narrow the domains
//! other edges then fill over. Fills are *domain-restricted*:
//! [`ReachCache::fill_targets`] stripes cover only the current domain,
//! never all of `db.nodes()`, so every later round costs traffic
//! proportional to what pruning has already achieved. Under streaming
//! appends the caches invalidate per label ([`GraphDb::delta_since`]): an
//! edge automaton whose alphabet misses every appended label keeps its
//! fills across generations.
//!
//! **Adaptive probe.** Batched wavefront fills win ~3–4× on random and
//! label-dense shapes but lose to per-source sweeps on long-diameter chains
//! (staggered membership arrivals re-expand cells; see `BENCH_parallel.json`).
//! [`probe_long_diameter`] runs one cheap plain-graph BFS and routes the
//! fills: past [`LONG_DIAMETER_LEVELS`] levels the graph is chain-like and
//! every fill falls back to per-source [`ReachScratch`] sweeps.
//!
//! Groups do not run their synchronized product search per candidate (it
//! would cost more than it saves), but they still prune through *necessary
//! conditions*: the solver synthesizes one pruning-only [`FreeEdge`] per
//! group walker whose endpoints must be connected under the walker's own
//! automaton (for equality groups, under the definition automaton every
//! equal word must match — see
//! [`Problem::group_prune_edges`](crate::solve::Problem)). Unselective
//! (Σ*-like) walker automata are skipped; the synthesized edges join the
//! semi-join fixpoint here exactly like real edges and are dropped before
//! enumeration. This is what makes existential leaves sound and cheap for
//! CXRPQ groups: a group variable's domain is already def-language
//! consistent when the enumerator asks for a single witness.

use crate::governor::Governor;
use crate::pattern::NodeVar;
use crate::solve::FreeEdge;
use cxrpq_graph::{DenseBitSet, GraphDb, NodeId};

/// BFS depth past which a graph counts as long-diameter and batched
/// wavefronts are routed to per-source sweeps.
pub const LONG_DIAMETER_LEVELS: usize = 96;

/// Cheap shape probe: plain-graph BFS (labels ignored) from two spread
/// sample nodes, stopping as soon as [`LONG_DIAMETER_LEVELS`] levels are
/// exceeded — routes fills between wavefront batching and per-source
/// sweeps. The verdict is memoized on the frozen database
/// ([`GraphDb::long_diameter_hint`]), so repeated solver calls against the
/// same `GraphDb` pay the `O(|V| + |E|)` walk once.
pub fn probe_long_diameter(db: &GraphDb) -> bool {
    db.long_diameter_hint(LONG_DIAMETER_LEVELS)
}

/// Per-variable candidate domains over one database's node set.
pub struct Domains {
    doms: Vec<DenseBitSet>,
    sizes: Vec<usize>,
    universe: usize,
}

/// What one pruning run did, for [`PipelineStats`](crate::solve::PipelineStats).
#[derive(Clone, Debug, Default)]
pub struct PruneOutcome {
    /// Semi-join passes executed (0 = nothing to prune).
    pub rounds: usize,
    /// Whether the adaptive probe routed fills to per-source sweeps.
    pub per_source_sweeps: bool,
    /// Whether some constrained domain emptied (the problem is
    /// unsatisfiable and enumeration can be skipped).
    pub emptied: bool,
}

impl Domains {
    /// Full domains: every variable may take any of `db_nodes` nodes.
    pub fn full(node_vars: usize, db_nodes: usize) -> Self {
        Self {
            doms: (0..node_vars)
                .map(|_| DenseBitSet::full(db_nodes))
                .collect(),
            sizes: vec![db_nodes; node_vars],
            universe: db_nodes,
        }
    }

    /// Collapses `v`'s domain to the singleton `{n}` (a pinned binding).
    /// Returns `false` when `n` is out of range for the database — no
    /// morphism can map `v` there, so the problem has no solutions.
    pub fn pin(&mut self, v: NodeVar, n: NodeId) -> bool {
        if n.index() >= self.universe {
            return false;
        }
        let d = &mut self.doms[v.index()];
        d.clear();
        d.insert(n.index());
        self.sizes[v.index()] = 1;
        true
    }

    /// Whether `n` is still a candidate for `v`.
    #[inline]
    pub fn contains(&self, v: NodeVar, n: NodeId) -> bool {
        self.doms[v.index()].contains(n.index())
    }

    /// Current domain size of `v`.
    pub fn size(&self, v: NodeVar) -> usize {
        self.sizes[v.index()]
    }

    /// Domain sizes for all variables (index = variable index).
    pub fn sizes(&self) -> &[usize] {
        &self.sizes
    }

    /// The candidates of `v` in ascending node order.
    pub fn members(&self, v: NodeVar) -> Vec<NodeId> {
        self.iter(v).collect()
    }

    /// The raw domain bitset of `v` — a sorted ascending candidate set with
    /// `seek_ge`, which lets the leapfrog enumerator join the semi-joined
    /// domain into its multiway intersection as one more sorted iterator.
    #[inline]
    pub fn bits(&self, v: NodeVar) -> &DenseBitSet {
        &self.doms[v.index()]
    }

    /// Iterates the candidates of `v` in ascending node order without
    /// materializing them (the solver's seed sweeps consume this chunkwise).
    pub fn iter(&self, v: NodeVar) -> impl Iterator<Item = NodeId> + '_ {
        self.doms[v.index()].ones().map(|i| NodeId(i as u32))
    }

    /// One semi-join pass over `edges` in the given visit order; returns
    /// whether any domain shrank. `per_source` routes cache fills (see the
    /// module docs).
    ///
    /// Each edge is joined *from its smaller endpoint domain*: forward
    /// (targets from `dom(src)`) or backward (sources from `dom(dst)`,
    /// via the reversed automaton) — so a pinned destination costs one
    /// backward search from the singleton, never one forward search per
    /// node of the universe.
    fn pass(
        &mut self,
        db: &GraphDb,
        edges: &mut [FreeEdge],
        order: &[usize],
        per_source: bool,
        gov: &Governor,
    ) -> bool {
        let mut changed = false;
        for &i in order {
            if !gov.checkpoint() {
                break; // drain: an aborted pass only ever shrank domains
            }
            let (src, dst) = (edges[i].src, edges[i].dst);
            let forward = self.sizes[src.index()] <= self.sizes[dst.index()];
            // The joined-from side (`near`) and the derived side (`far`).
            let (near, far) = if forward { (src, dst) } else { (dst, src) };
            let near_members = self.members(near);
            if near_members.is_empty() {
                // Already empty; the caller bails after the pass.
                continue;
            }
            if forward {
                edges[i]
                    .cache
                    .fill_targets_with(db, &near_members, per_source);
            } else {
                edges[i]
                    .cache
                    .fill_sources_with(db, &near_members, per_source);
            }
            gov.charge_mem(self.universe.div_ceil(8));
            let mut new_far = DenseBitSet::new(self.universe);
            let mut new_far_size = 0usize;
            let mut kept_near = 0usize;
            for &u in &near_members {
                let across = if forward {
                    edges[i].cache.targets(db, u)
                } else {
                    edges[i].cache.sources(db, u)
                };
                let mut supported = false;
                for &v in across.iter() {
                    if self.doms[far.index()].contains(v.index()) {
                        supported = true;
                        if new_far.insert(v.index()) {
                            new_far_size += 1;
                        }
                    }
                }
                if supported {
                    kept_near += 1;
                } else {
                    self.doms[near.index()].remove(u.index());
                    changed = true;
                }
            }
            self.sizes[near.index()] = kept_near;
            // A self-loop edge (src == dst) must intersect with the
            // near-side removals above, so re-derive instead of overwrite.
            if src == dst {
                let d = &mut self.doms[far.index()];
                d.intersect_with(&new_far);
                let size = d.count();
                if size != self.sizes[far.index()] {
                    changed = true;
                }
                self.sizes[far.index()] = size;
            } else {
                if new_far_size != self.sizes[far.index()] {
                    changed = true;
                }
                self.doms[far.index()] = new_far;
                self.sizes[far.index()] = new_far_size;
            }
        }
        changed
    }

    /// Runs semi-join passes to a fixpoint or `max_rounds`, cheapest edge
    /// first when per-edge `costs` (index-aligned with `edges`, which may
    /// include synthesized group-walker edges beyond the plan's real ones)
    /// are given. Domains of variables in no free edge are untouched.
    /// `per_source` is the caller's adaptive-probe verdict
    /// ([`probe_long_diameter`]) routing the fills.
    pub fn prune(
        &mut self,
        db: &GraphDb,
        edges: &mut [FreeEdge],
        costs: Option<&[u64]>,
        max_rounds: usize,
        per_source: bool,
        gov: &Governor,
    ) -> PruneOutcome {
        let mut out = PruneOutcome::default();
        if edges.is_empty() || max_rounds == 0 {
            return out;
        }
        out.per_source_sweeps = per_source;
        let mut order: Vec<usize> = (0..edges.len()).collect();
        if let Some(c) = costs {
            debug_assert_eq!(c.len(), edges.len());
            order.sort_by_key(|&i| (c[i], i));
        }
        for _ in 0..max_rounds {
            if gov.is_aborted() {
                break; // fixpoint abandoned; domains only ever shrank
            }
            out.rounds += 1;
            let changed = self.pass(db, edges, &order, out.per_source_sweeps, gov);
            let emptied = edges
                .iter()
                .any(|e| self.sizes[e.src.index()] == 0 || self.sizes[e.dst.index()] == 0);
            if emptied {
                out.emptied = true;
                return out;
            }
            if !changed {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::ReachCache;
    use cxrpq_automata::{parse_regex, Nfa};
    use cxrpq_graph::{Alphabet, GraphBuilder, GraphDb};
    use std::sync::Arc;

    fn line_db(word: &str) -> (GraphDb, Vec<NodeId>) {
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = GraphBuilder::new(alpha);
        let w = db.alphabet().parse_word(word).unwrap();
        let nodes: Vec<NodeId> = (0..=w.len()).map(|_| db.add_node()).collect();
        for (i, &s) in w.iter().enumerate() {
            db.add_edge(nodes[i], s, nodes[i + 1]);
        }
        (db.freeze(), nodes)
    }

    fn edge(db: &GraphDb, src: u32, dst: u32, re: &str) -> FreeEdge {
        let mut a = db.alphabet().clone();
        FreeEdge {
            src: NodeVar(src),
            dst: NodeVar(dst),
            cache: ReachCache::new(Nfa::from_regex(&parse_regex(re, &mut a).unwrap())),
        }
    }

    #[test]
    fn semi_join_restricts_both_endpoints() {
        let (db, nodes) = line_db("abc");
        // x -ab-> y: only x = n0 (reads ab to n2), only y = n2.
        let mut edges = vec![edge(&db, 0, 1, "ab")];
        let mut doms = Domains::full(2, db.node_count());
        let out = doms.prune(&db, &mut edges, None, 8, false, Governor::disabled());
        assert!(!out.emptied);
        assert_eq!(doms.members(NodeVar(0)), vec![nodes[0]]);
        assert_eq!(doms.members(NodeVar(1)), vec![nodes[2]]);
        assert_eq!(doms.size(NodeVar(0)), 1);
    }

    #[test]
    fn fixpoint_propagates_across_edges() {
        let (db, nodes) = line_db("aab");
        // x -a-> y, y -b-> z on the chain a,a,b: y must simultaneously be
        // an a-target ({n1, n2}) and a b-source ({n2}), so y = n2, which
        // forces x = n1 and z = n3.
        let mut edges = vec![edge(&db, 0, 1, "a"), edge(&db, 1, 2, "b")];
        let mut doms = Domains::full(3, db.node_count());
        let out = doms.prune(&db, &mut edges, None, 8, false, Governor::disabled());
        assert!(!out.emptied);
        assert!(out.rounds >= 2);
        assert_eq!(doms.members(NodeVar(0)), vec![nodes[1]]);
        assert_eq!(doms.members(NodeVar(1)), vec![nodes[2]]);
        assert_eq!(doms.members(NodeVar(2)), vec![nodes[3]]);
    }

    #[test]
    fn unsatisfiable_edge_empties_and_reports() {
        let (db, _) = line_db("ab");
        let mut edges = vec![edge(&db, 0, 1, "cc")];
        let mut doms = Domains::full(2, db.node_count());
        let out = doms.prune(&db, &mut edges, None, 8, false, Governor::disabled());
        assert!(out.emptied);
    }

    #[test]
    fn pinning_out_of_range_is_rejected() {
        let (db, nodes) = line_db("ab");
        let mut doms = Domains::full(2, db.node_count());
        assert!(doms.pin(NodeVar(0), nodes[1]));
        assert_eq!(doms.members(NodeVar(0)), vec![nodes[1]]);
        assert!(!doms.pin(NodeVar(1), NodeId(500)));
    }

    #[test]
    fn self_loop_edge_intersects_not_overwrites() {
        // Cycle a-a: x -aa-> x holds for both nodes; x -ab-> x for neither.
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let mut b = GraphBuilder::new(alpha);
        let a = b.alphabet().sym("a");
        let n0 = b.add_node();
        let n1 = b.add_node();
        b.add_edge(n0, a, n1);
        b.add_edge(n1, a, n0);
        let db = b.freeze();
        let mut edges = vec![edge(&db, 0, 0, "aa")];
        let mut doms = Domains::full(1, db.node_count());
        let out = doms.prune(&db, &mut edges, None, 8, false, Governor::disabled());
        assert!(!out.emptied);
        assert_eq!(doms.members(NodeVar(0)), vec![n0, n1]);

        let mut edges2 = vec![edge(&db, 0, 0, "ab")];
        let mut doms2 = Domains::full(1, db.node_count());
        let out2 = doms2.prune(&db, &mut edges2, None, 8, false, Governor::disabled());
        assert!(out2.emptied);
    }

    #[test]
    fn probe_classifies_shapes() {
        let (chain, _) = line_db(&"abc".repeat(50)); // diameter 150
        assert!(probe_long_diameter(&chain));
        let (short, _) = line_db("abcabc");
        assert!(!probe_long_diameter(&short));
        // A chain whose arcs run from high ids to low ids is invisible to
        // a forward walk from node 0; the backward walk must catch it.
        let alpha = Arc::new(Alphabet::from_chars("a"));
        let mut b = GraphBuilder::new(alpha);
        let a = b.alphabet().sym("a");
        let nodes: Vec<NodeId> = (0..150).map(|_| b.add_node()).collect();
        for w in nodes.windows(2) {
            b.add_edge(w[1], a, w[0]);
        }
        assert!(probe_long_diameter(&b.freeze()));
    }
}
