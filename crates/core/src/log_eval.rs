//! Corollary 1: `CXRPQ^{log}` — image sizes bounded by `log |D|`.
//!
//! Same machinery as Theorem 6, with `k = ⌈log₂ |D|⌉` chosen per database:
//! NP combined complexity, `O(log² |D|)` space in data complexity.

use crate::bounded::{BoundedEvaluator, BoundedStats};
use crate::cxrpq::Cxrpq;
use cxrpq_graph::{GraphDb, NodeId};
use std::collections::BTreeSet;

/// The `CXRPQ^{log}` engine.
pub struct LogEvaluator<'q> {
    q: &'q Cxrpq,
}

impl<'q> LogEvaluator<'q> {
    /// Creates the engine.
    pub fn new(q: &'q Cxrpq) -> Self {
        Self { q }
    }

    /// The image bound used for `db`: `⌈log₂ |D|⌉` (at least 1).
    pub fn bound_for(db: &GraphDb) -> usize {
        let n = db.size().max(2);
        (usize::BITS - (n - 1).leading_zeros()) as usize
    }

    /// Boolean evaluation `D ⊨_{log} q`.
    pub fn boolean(&self, db: &GraphDb) -> bool {
        BoundedEvaluator::new(self.q, Self::bound_for(db)).boolean(db)
    }

    /// Boolean evaluation with enumeration counters.
    pub fn boolean_with_stats(&self, db: &GraphDb) -> (bool, BoundedStats) {
        BoundedEvaluator::new(self.q, Self::bound_for(db)).boolean_with_stats(db)
    }

    /// The answer relation `q^{log}(D)`.
    pub fn answers(&self, db: &GraphDb) -> BTreeSet<Vec<NodeId>> {
        BoundedEvaluator::new(self.q, Self::bound_for(db)).answers(db)
    }

    /// The Check problem.
    pub fn check(&self, db: &GraphDb, tuple: &[NodeId]) -> bool {
        BoundedEvaluator::new(self.q, Self::bound_for(db)).check(db, tuple)
    }

    /// A certificate for some matching morphism under the `log` semantics.
    pub fn witness(&self, db: &GraphDb) -> Option<crate::witness::QueryWitness> {
        BoundedEvaluator::new(self.q, Self::bound_for(db)).witness(db)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cxrpq::CxrpqBuilder;
    use cxrpq_graph::Alphabet;
    use cxrpq_graph::GraphBuilder;
    use std::sync::Arc;

    #[test]
    fn bound_grows_with_database() {
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let mut db = GraphBuilder::new(alpha);
        let a = db.alphabet().sym("a");
        let mut prev = db.add_node();
        for _ in 0..2 {
            let n = db.add_node();
            db.add_edge(prev, a, n);
            prev = n;
        }
        let small = LogEvaluator::bound_for(&db.clone().freeze());
        for _ in 0..60 {
            let n = db.add_node();
            db.add_edge(prev, a, n);
            prev = n;
        }
        let big = LogEvaluator::bound_for(&db.freeze());
        assert!(big > small);
        assert_eq!(big, 7); // |D| = 63 nodes + 62 edges = 125 → ⌈log₂⌉ = 7
    }

    #[test]
    fn log_images_admit_longer_witnesses_on_bigger_dbs() {
        // z{(a|b)+} c z with witness image length 4 works once |D| ≥ 16.
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = GraphBuilder::new(alpha);
        let s = db.add_node();
        let m1 = db.add_node();
        let m2 = db.add_node();
        let t = db.add_node();
        let w = db.alphabet().parse_word("abab").unwrap();
        let c = db.alphabet().parse_word("c").unwrap();
        db.add_word_path(s, &w, m1);
        db.add_word_path(m1, &c, m2);
        db.add_word_path(m2, &w, t);
        let db = db.freeze();
        let mut alpha2 = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha2)
            .edge("x", "z{(a|b)+}cz", "y")
            .output(&["x", "y"])
            .build()
            .unwrap();
        // |D| = 10 nodes + 9 edges = 19 → k = 5 ≥ 4: the witness fits.
        assert!(LogEvaluator::bound_for(&db) >= 4);
        assert!(LogEvaluator::new(&q).check(&db, &[s, t]));
    }

    #[test]
    fn log_agrees_with_explicit_bounded() {
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = GraphBuilder::new(alpha);
        let s = db.add_node();
        let t = db.add_node();
        let w = db.alphabet().parse_word("abcab").unwrap();
        db.add_word_path(s, &w, t);
        let db = db.freeze();
        let mut alpha2 = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha2)
            .edge("x", "z{(a|b)+}cz", "y")
            .output(&["x", "y"])
            .build()
            .unwrap();
        let k = LogEvaluator::bound_for(&db);
        let log = LogEvaluator::new(&q);
        let explicit = BoundedEvaluator::new(&q, k);
        assert_eq!(log.boolean(&db), explicit.boolean(&db));
        assert_eq!(log.answers(&db), explicit.answers(&db));
        let (b1, s1) = log.boolean_with_stats(&db);
        let (b2, s2) = explicit.boolean_with_stats(&db);
        assert_eq!((b1, s1), (b2, s2));
    }

    #[test]
    fn log_witness_certifies() {
        use cxrpq_xregex::matcher::MatchConfig;
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = GraphBuilder::new(alpha);
        let s = db.add_node();
        let t = db.add_node();
        let w = db.alphabet().parse_word("abcab").unwrap();
        db.add_word_path(s, &w, t);
        let db = db.freeze();
        let mut alpha2 = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha2)
            .edge("x", "z{(a|b)+}cz", "y")
            .build()
            .unwrap();
        let w = LogEvaluator::new(&q).witness(&db).expect("match exists");
        q.certifies(&db, &w, &MatchConfig::default()).unwrap();
        // The image respects the log bound.
        let k = LogEvaluator::bound_for(&db);
        assert!(w.images.iter().all(|(_, img)| img.len() <= k));
    }

    #[test]
    fn minimum_bound_is_one() {
        let alpha = Arc::new(Alphabet::from_chars("a"));
        let mut db = GraphBuilder::new(alpha);
        db.add_node();
        assert_eq!(LogEvaluator::bound_for(&db.freeze()), 1);
    }
}
