//! Phase 1 of the solver pipeline: constraint-graph planning.
//!
//! The [`Problem`](crate::solve::Problem)'s free edges and groups induce a
//! *constraint graph* over node variables: every constraint connects the
//! variables it mentions. Before any search runs, [`SolvePlan::build`]
//! estimates a traversal cost for each constraint from the database's
//! label statistics ([`GraphDb::label_edge_count`], maintained across
//! streaming appends, so plans stay delta-aware) — an automaton whose
//! transition symbols label few database arcs explores a small product
//! region and filters hard — and emits a *connected, cheapest-first*
//! variable order: start at the cheapest constraint, then repeatedly take
//! the cheapest constraint sharing a variable with the ordered prefix
//! (Prim-style), jumping components only when forced. The enumerate phase
//! seeds variables in this order and prefers cheap constraints when several
//! half-bound extensions compete, so join order follows the data instead of
//! query-text accident.
//!
//! **Cyclic cores.** The plan classifies query cores by the *cycle rank*
//! of the free-edge subgraph: over the variables and free-edge constraints
//! of each edge-connected component, a component is a tree iff
//! `incidences = vars + edges − 1`, and any excess incidence closes a
//! cycle — two parallel atoms over the same variable pair count, exactly
//! because a multiway intersection can exploit them. Only free edges enter
//! the rank: the leapfrog intersection operates on per-edge candidate
//! sets, so a variable group overlapping an edge in two variables (the
//! shape every simple-CXRPQ atom compiles to) is a Berge cycle it cannot
//! exploit and must not trigger on — groups merge components for
//! connectivity but never add rank. Cyclic cores are where binary
//! semi-join backtracking is provably suboptimal (triangles, dense
//! diamonds), so the enumerator routes their variables to the
//! worst-case-optimal leapfrog intersection ([`SolvePlan::cyclic_var`])
//! while trees keep the plain backtracker. The classification runs after
//! the analyzer's subsumption pass has dropped redundant parallel atoms,
//! so minimizable pseudo-cycles don't trigger it.
//!
//! **Projection split.** The plan also records which node variables are in
//! the query's *output tuple* and where each variable is last used
//! ([`SolvePlan::last_use`]): the variable order decomposes into an
//! *enumerate prefix* — everything up to and including the last output
//! variable (outputs plus the shared variables needed to reach them) — and
//! an *existential suffix* ([`SolvePlan::prefix_len`]) of non-output
//! variables that only ever need an existence witness. Under projection
//! pushdown ([`SolveOptions::projected`](crate::solve::SolveOptions::projected))
//! the enumerator never backtracks over the suffix: once every output
//! variable is bound it asks for a single witness of the rest and moves on.

use crate::pattern::NodeVar;
use crate::solve::{FreeEdge, Group};
use cxrpq_automata::{Label, Nfa, StateId};
use cxrpq_graph::{GraphDb, Symbol};

/// Estimated cost of searching the product of `db` with `nfa`: each
/// `Sym(a)` transition can expand over every `a`-labelled arc, each `Any`
/// transition over every arc, ε over none. The absolute number is
/// meaningless; only the ordering between constraints matters (the prune
/// phase also compares it against the database's total arc count to skip
/// unselective group semi-joins).
pub(crate) fn nfa_cost(nfa: &Nfa, db: &GraphDb) -> u64 {
    let mut cost = 0u64;
    for s in nfa.states() {
        for &(l, _) in nfa.transitions(s) {
            cost += match l {
                Label::Eps => 0,
                Label::Sym(a) => db.label_edge_count(a) as u64,
                Label::Any => db.edge_count() as u64,
            };
        }
    }
    cost
}

/// Cost of `nfa` as a pruning-only semi-join, or `None` when it is
/// unselective. `nfa_cost` sums over all states, so a selective multi-state
/// chain (`aa` over an `a`-heavy graph) can out-cost the database even
/// though each hop filters hard; and raw per-state views misread
/// Thompson-style alternations, whose branch-entry states each look
/// selective although the fork as a whole covers the alphabet. The honest
/// granularity is the *effective state*: a capped subset walk visits the
/// ε-closed state sets actually reachable while consuming symbols, and the
/// automaton earns a necessary-condition semi-join as soon as one of them
/// can step over fewer arcs than the whole database. Σ*-style loops and
/// whole-alphabet alternations — every effective state of which expands
/// over everything and keeps everything — are the ones skipped. Def NFAs
/// are tiny; past [`SUBSET_CAP`] effective states the walk gives up and
/// assumes the automaton filters.
pub(crate) fn walker_prune_cost(nfa: &Nfa, db: &GraphDb) -> Option<u64> {
    const SUBSET_CAP: usize = 32;
    let full = db.edge_count() as u64;
    if full == 0 {
        return Some(nfa_cost(nfa, db));
    }
    let closure = |seed: &[StateId]| -> Vec<StateId> {
        let mut set = vec![false; nfa.state_count()];
        for s in seed {
            set[s.index()] = true;
        }
        nfa.eps_close(&mut set);
        (0..nfa.state_count())
            .filter(|&i| set[i])
            .map(|i| StateId(i as u32))
            .collect()
    };
    let mut seen: Vec<Vec<StateId>> = Vec::new();
    let mut queue: Vec<Vec<StateId>> = vec![closure(&[nfa.start()])];
    while let Some(sub) = queue.pop() {
        if seen.contains(&sub) {
            continue;
        }
        let mut syms = Vec::new();
        let mut any_targets: Vec<StateId> = Vec::new();
        for &s in &sub {
            for &(l, t) in nfa.transitions(s) {
                match l {
                    Label::Eps => {}
                    Label::Sym(a) => {
                        if !syms.contains(&a) {
                            syms.push(a);
                        }
                    }
                    Label::Any => any_targets.push(t),
                }
            }
        }
        if syms.is_empty() && any_targets.is_empty() {
            // Final-only effective state: nothing left to filter here.
            seen.push(sub);
            continue;
        }
        let cost: u64 = if any_targets.is_empty() {
            syms.iter().map(|&a| db.label_edge_count(a) as u64).sum()
        } else {
            full // an Any step alone covers every arc
        };
        if cost < full {
            return Some(nfa_cost(nfa, db));
        }
        if seen.len() + queue.len() >= SUBSET_CAP {
            return Some(nfa_cost(nfa, db));
        }
        for &a in &syms {
            let mut tgts = any_targets.clone();
            for &s in &sub {
                for &(l, t) in nfa.transitions(s) {
                    if l == Label::Sym(a) {
                        tgts.push(t);
                    }
                }
            }
            queue.push(closure(&tgts));
        }
        if syms.is_empty() {
            queue.push(closure(&any_targets));
        }
        seen.push(sub);
    }
    None
}

/// The accepted symbols of `nfa` when its language is a non-empty set of
/// single-symbol words, else `None`. For such an atom the database's own
/// label-sorted CSR rows *are* its reach adjacency — `successors_with` /
/// `predecessors_with` runs can feed a leapfrog intersection directly, with
/// no product search and no materialization. The check is conservative:
/// ε must not be accepted (a final state in the start closure), every
/// `Sym` step from the start closure must land in a closure that is final
/// and has no further non-ε transitions (so no longer word — and no dead
/// branch that would make the run a strict over-approximation), and `Any`
/// steps are left to the general reach path.
pub(crate) fn single_step_symbols(nfa: &Nfa) -> Option<Vec<Symbol>> {
    let n = nfa.state_count();
    let closure = |seed: StateId| -> Vec<bool> {
        let mut set = vec![false; n];
        set[seed.index()] = true;
        nfa.eps_close(&mut set);
        set
    };
    let start = closure(nfa.start());
    if (0..n).any(|i| start[i] && nfa.is_final(StateId(i as u32))) {
        return None; // accepts ε
    }
    let mut syms: Vec<Symbol> = Vec::new();
    for (i, _) in start.iter().enumerate().filter(|&(_, &s)| s) {
        for &(l, t) in nfa.transitions(StateId(i as u32)) {
            match l {
                Label::Eps => {}
                Label::Any => return None,
                Label::Sym(a) => {
                    let tc = closure(t);
                    let mut has_final = false;
                    for (j, &inside) in tc.iter().enumerate() {
                        if !inside {
                            continue;
                        }
                        let sj = StateId(j as u32);
                        has_final |= nfa.is_final(sj);
                        if nfa.transitions(sj).iter().any(|&(l2, _)| l2 != Label::Eps) {
                            return None; // a second step is possible
                        }
                    }
                    if !has_final {
                        return None; // dead branch: runs would over-approximate
                    }
                    if !syms.contains(&a) {
                        syms.push(a);
                    }
                }
            }
        }
    }
    if syms.is_empty() {
        return None; // empty language — nothing for a run scan to yield
    }
    syms.sort_unstable();
    Some(syms)
}

/// A constraint of the plan's constraint graph, with its endpoints and
/// estimated cost.
struct PlanConstraint {
    vars: Vec<NodeVar>,
    cost: u64,
}

/// The output of the planning phase: per-constraint cost estimates and a
/// connected, cheapest-first variable order.
#[derive(Clone, Debug)]
pub struct SolvePlan {
    /// Estimated cost per free edge (index-aligned with
    /// `Problem::free_edges`).
    pub edge_cost: Vec<u64>,
    /// Estimated cost per group (index-aligned with `Problem::groups`).
    /// Synchronized walkers multiply, so a group costs the sum of its
    /// member automata scaled by its arity.
    pub group_cost: Vec<u64>,
    /// Every variable occurring in some constraint, cheapest-first and
    /// connected (consecutive variables share constraints wherever the
    /// constraint graph allows).
    pub var_order: Vec<NodeVar>,
    /// `seed_rank[v] = position of v in var_order` (`usize::MAX` for
    /// variables in no constraint), for O(1) order lookups.
    pub seed_rank: Vec<usize>,
    /// Per-variable *last use*: the highest `var_order` position among the
    /// variables of any constraint mentioning it — the point in the order
    /// at which its last constraint becomes fully bound and the variable
    /// stops constraining anything still pending (`usize::MAX` for
    /// variables in no constraint). The enumerator's existential cutoff is
    /// deliberately *dynamic* (it watches the live unbound-output count,
    /// because extension order is constraint-driven, not rank-driven);
    /// this static view is plan metadata — it justifies `prefix_len`,
    /// feeds diagnostics/tests, and is the scope boundary a sorted-emission
    /// mode would need (ROADMAP "Distinct-projection ordering").
    pub last_use: Vec<usize>,
    /// Length of the *enumerate prefix* of `var_order`: everything up to
    /// and including the last output variable. Positions `prefix_len..` are
    /// the *existential suffix* — non-output variables that projection
    /// pushdown eliminates with a single existence witness instead of
    /// backtracking (0 when no output variable occurs in a constraint,
    /// e.g. Boolean queries, where the whole order is existential).
    pub prefix_len: usize,
    /// Per-variable: whether the variable lies in a *cyclic* core of the
    /// free-edge subgraph (see the module docs' cycle-rank criterion).
    /// The enumerator routes these variables to the leapfrog multiway
    /// intersection under [`Strategy::Auto`](crate::solve::Strategy).
    pub cyclic_var: Vec<bool>,
    /// Number of cyclic edge-connected cores of the free-edge subgraph.
    pub cyclic_components: usize,
    /// Number of connected components of the full constraint graph
    /// (groups included) whose free edges close no cycle.
    pub tree_components: usize,
}

impl SolvePlan {
    /// Plans over the constraint graph of `free` and `groups` against the
    /// label statistics of `db`. `output` is the query's output tuple
    /// (empty for Boolean queries); it splits the emitted order into the
    /// enumerate prefix and the existential suffix.
    ///
    /// `universal` flags free edges whose language the static analyzer
    /// proved `Σ*`-universal (pass `&[]` when no analysis ran): such an
    /// edge filters nothing, so its cost is forced to `u64::MAX` and every
    /// cost comparison — seeding, extension choice, prune visit order —
    /// defers it behind all genuinely selective constraints. Costs are
    /// only ever compared, never summed, so the sentinel cannot overflow
    /// into neighbouring estimates.
    pub fn build(
        node_count: usize,
        free: &[FreeEdge],
        groups: &[Group],
        output: &[NodeVar],
        universal: &[bool],
        db: &GraphDb,
    ) -> Self {
        let edge_cost: Vec<u64> = free
            .iter()
            .enumerate()
            .map(|(i, e)| {
                if universal.get(i).copied().unwrap_or(false) {
                    u64::MAX
                } else {
                    nfa_cost(e.cache.nfa(), db)
                }
            })
            .collect();
        let group_cost: Vec<u64> = groups
            .iter()
            .map(|g| {
                let arity = g.spec.arity() as u64;
                let sum: u64 = g.spec.nfas.iter().map(|n| nfa_cost(n, db)).sum();
                sum.saturating_mul(arity.max(1))
            })
            .collect();
        let mut constraints: Vec<PlanConstraint> = Vec::with_capacity(free.len() + groups.len());
        for (e, &cost) in free.iter().zip(&edge_cost) {
            constraints.push(PlanConstraint {
                vars: vec![e.src, e.dst],
                cost,
            });
        }
        for (g, &cost) in groups.iter().zip(&group_cost) {
            // Repeated variables are harmless downstream (the ordering
            // loop skips already-placed vars).
            let vars: Vec<NodeVar> = g.srcs.iter().chain(g.dsts.iter()).copied().collect();
            constraints.push(PlanConstraint { vars, cost });
        }

        // Prim-style greedy: repeatedly take the cheapest unused constraint
        // touching the ordered prefix; when no constraint connects (a new
        // component of the constraint graph), take the cheapest remaining.
        // Ties break toward constraints that place an output variable, and
        // within a constraint output variables are placed first: the last
        // output lands as early as the data allows, which shortens the
        // enumerate prefix and widens the existential suffix that
        // projection pushdown never backtracks over.
        let mut is_output = vec![false; node_count];
        for v in output {
            is_output[v.index()] = true;
        }
        let mut in_order = vec![false; node_count];
        let mut used = vec![false; constraints.len()];
        let mut var_order: Vec<NodeVar> = Vec::new();
        loop {
            // (cost, places-no-output, idx) per candidate; connectivity
            // dominates, cost breaks ties, output bias breaks cost ties.
            let mut best: Option<((u64, bool, usize), bool)> = None;
            for (i, c) in constraints.iter().enumerate() {
                if used[i] {
                    continue;
                }
                let connected = c.vars.iter().any(|v| in_order[v.index()]);
                let places_output = c
                    .vars
                    .iter()
                    .any(|v| !in_order[v.index()] && is_output[v.index()]);
                let key = (c.cost, !places_output, i);
                let better = match best {
                    None => true,
                    Some((bkey, bconn)) => match (connected, bconn) {
                        (true, false) => true,
                        (false, true) => false,
                        _ => key < bkey,
                    },
                };
                if better {
                    best = Some((key, connected));
                }
            }
            let Some(((_, _, idx), _)) = best else { break };
            used[idx] = true;
            for pass in 0..2 {
                for &v in &constraints[idx].vars {
                    if !in_order[v.index()] && (is_output[v.index()] == (pass == 0)) {
                        in_order[v.index()] = true;
                        var_order.push(v);
                    }
                }
            }
        }
        let mut seed_rank = vec![usize::MAX; node_count];
        for (pos, v) in var_order.iter().enumerate() {
            seed_rank[v.index()] = pos;
        }
        // Last-use positions: a constraint is fully bound once its highest-
        // ranked variable is; each of its variables is "used" until then.
        let mut last_use = vec![usize::MAX; node_count];
        for c in &constraints {
            let cmax = c
                .vars
                .iter()
                .map(|v| seed_rank[v.index()])
                .max()
                .unwrap_or(0);
            for &v in &c.vars {
                let e = &mut last_use[v.index()];
                *e = if *e == usize::MAX {
                    cmax
                } else {
                    (*e).max(cmax)
                };
            }
        }
        let mut prefix_len = 0;
        for (pos, v) in var_order.iter().enumerate() {
            if output.contains(v) {
                prefix_len = pos + 1;
            }
        }

        // Cyclic-core detection. Connectivity uses every constraint (groups
        // merge the variables they touch), but cycle rank is measured over
        // the free-edge subgraph only: the leapfrog intersection operates on
        // per-edge candidate sets, so a core is routed to it exactly when
        // its *edges* close a cycle. A group overlapping an edge in two
        // variables is a Berge cycle the intersection cannot exploit and
        // must not trigger on. Per edge-connected component, a tree has
        // incidences = vars + edges − 1; any excess closes a cycle.
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]]; // path halving
                x = parent[x];
            }
            x
        }
        let mut parent: Vec<usize> = (0..node_count).collect();
        for c in &constraints {
            let mut vars = c.vars.iter().map(|v| v.index());
            if let Some(first) = vars.next() {
                let r = find(&mut parent, first);
                for v in vars {
                    let rv = find(&mut parent, v);
                    parent[rv] = r;
                }
            }
        }
        let mut eparent: Vec<usize> = (0..node_count).collect();
        for e in free {
            let r = find(&mut eparent, e.src.index());
            let rv = find(&mut eparent, e.dst.index());
            eparent[rv] = r;
        }
        // Per edge-component tallies: (vars, edges, incidences).
        let mut tally: std::collections::HashMap<usize, (usize, usize, usize)> =
            std::collections::HashMap::new();
        let mut touched = vec![false; node_count];
        for e in free {
            let (s, d) = (e.src.index(), e.dst.index());
            for v in [s, d] {
                if !touched[v] {
                    touched[v] = true;
                    tally.entry(find(&mut eparent, v)).or_default().0 += 1;
                }
            }
            let t = tally.entry(find(&mut eparent, s)).or_default();
            t.1 += 1;
            t.2 += if s == d { 1 } else { 2 };
        }
        let mut cyclic_var = vec![false; node_count];
        let mut cyclic_components = 0usize;
        let mut cyclic_roots: Vec<usize> = Vec::new();
        for (&root, &(vars, edges, inc)) in &tally {
            if inc > vars + edges - 1 {
                cyclic_components += 1;
                cyclic_roots.push(root);
            }
        }
        for v in &var_order {
            if touched[v.index()] && cyclic_roots.contains(&find(&mut eparent, v.index())) {
                cyclic_var[v.index()] = true;
            }
        }
        // Tree components: full constraint-graph components (groups
        // included) whose edges close no cycle.
        let mut comp_roots: Vec<usize> = Vec::new();
        let mut cyclic_full: Vec<usize> = Vec::new();
        for v in &var_order {
            let r = find(&mut parent, v.index());
            if !comp_roots.contains(&r) {
                comp_roots.push(r);
            }
            if cyclic_var[v.index()] && !cyclic_full.contains(&r) {
                cyclic_full.push(r);
            }
        }
        let tree_components = comp_roots.len() - cyclic_full.len();

        Self {
            edge_cost,
            group_cost,
            var_order,
            seed_rank,
            last_use,
            prefix_len,
            cyclic_var,
            cyclic_components,
            tree_components,
        }
    }

    /// Number of variables in the existential suffix — never backtracked
    /// over when projection pushdown is on.
    pub fn existential_vars(&self) -> usize {
        self.var_order.len() - self.prefix_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::ReachCache;
    use crate::sync::SyncSpec;
    use cxrpq_automata::{parse_regex, Nfa};
    use cxrpq_graph::{Alphabet, GraphBuilder, GraphDb};
    use std::sync::Arc;

    /// 1 `a`-arc, 8 `b`-arcs, 0 `c`-arcs.
    fn skewed_db() -> GraphDb {
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut b = GraphBuilder::new(alpha);
        let a = b.alphabet().sym("a");
        let bb = b.alphabet().sym("b");
        let hub = b.add_node();
        let first = b.add_node();
        b.add_edge(hub, a, first);
        for _ in 0..8 {
            let n = b.add_node();
            b.add_edge(hub, bb, n);
        }
        b.freeze()
    }

    fn edge(db: &GraphDb, src: u32, dst: u32, re: &str) -> FreeEdge {
        let mut a = db.alphabet().clone();
        FreeEdge {
            src: NodeVar(src),
            dst: NodeVar(dst),
            cache: ReachCache::new(Nfa::from_regex(&parse_regex(re, &mut a).unwrap())),
        }
    }

    #[test]
    fn cheapest_constraint_seeds_the_order() {
        let db = skewed_db();
        // b+ (8 arcs) vs a (1 arc): the a-edge is cheaper and its variables
        // lead the order even though it appears second in query text.
        let free = vec![edge(&db, 0, 1, "b+"), edge(&db, 1, 2, "a")];
        let plan = SolvePlan::build(3, &free, &[], &[], &[], &db);
        assert!(plan.edge_cost[0] > plan.edge_cost[1]);
        assert_eq!(plan.var_order[0], NodeVar(1));
        assert_eq!(plan.var_order[1], NodeVar(2));
        assert_eq!(plan.var_order[2], NodeVar(0));
        assert_eq!(plan.seed_rank[1], 0);
    }

    #[test]
    fn order_stays_connected_before_jumping_components() {
        let db = skewed_db();
        // Component {0,1} is expensive, component {2,3} cheap: the cheap
        // component leads, and within a component, ordering follows
        // adjacency (3–2's neighbour via shared var before the far pair).
        let free = vec![
            edge(&db, 0, 1, "b+b+"),
            edge(&db, 2, 3, "a"),
            edge(&db, 3, 0, "b"),
        ];
        let plan = SolvePlan::build(4, &free, &[], &[], &[], &db);
        assert_eq!(plan.var_order[0], NodeVar(2));
        assert_eq!(plan.var_order[1], NodeVar(3));
        // Edge 3–0 (connected, cost 8) is taken before the disconnected
        // jump to the expensive 0–1 edge.
        assert_eq!(plan.var_order[2], NodeVar(0));
        assert_eq!(plan.var_order[3], NodeVar(1));
    }

    #[test]
    fn groups_cost_scales_with_arity_and_unconstrained_vars_unranked() {
        let db = skewed_db();
        let def = {
            let mut a = db.alphabet().clone();
            Nfa::from_regex(&parse_regex("b+", &mut a).unwrap())
        };
        let groups = vec![Group::new(
            vec![NodeVar(0), NodeVar(0)],
            vec![NodeVar(1), NodeVar(2)],
            SyncSpec::equality_group(Some(def), 2),
        )];
        let plan = SolvePlan::build(5, &[], &groups, &[], &[], &db);
        assert_eq!(plan.group_cost.len(), 1);
        assert!(plan.group_cost[0] > 0);
        assert_eq!(plan.var_order.len(), 3); // 0, 1, 2 — not 3, 4
        assert_eq!(plan.seed_rank[4], usize::MAX);
    }

    #[test]
    fn walker_prune_cost_classifies_selectivity() {
        let db = skewed_db(); // 1 a-arc, 8 b-arcs, full = 9
        let m = |s: &str| {
            let mut a = db.alphabet().clone();
            Nfa::from_regex(&parse_regex(s, &mut a).unwrap())
        };
        // Chains and single symbols filter even when their summed nfa_cost
        // is large relative to the database.
        assert!(walker_prune_cost(&m("a"), &db).is_some());
        assert!(walker_prune_cost(&m("bb"), &db).is_some());
        // A whole-alphabet alternation loop keeps everything: every
        // effective state steps over all 9 arcs (the Thompson branch-entry
        // states alone would look selective — the subset walk must not).
        assert!(walker_prune_cost(&m("(a|b|c)+"), &db).is_none());
        // Σ* (an Any self-loop) likewise.
        assert!(walker_prune_cost(&crate::sync::sigma_star_nfa(), &db).is_none());
        // (ab|ba): the start set covers a∪b but the successor sets are
        // single-symbol — selective.
        assert!(walker_prune_cost(&m("(ab|ba)"), &db).is_some());
    }

    #[test]
    fn projection_split_and_last_use() {
        let db = skewed_db();
        // a-edge (cheap) leads and places its output variable first:
        // order [2, 1, 0]. Output {2}: prefix [2], suffix [1, 0].
        let free = vec![edge(&db, 0, 1, "b+"), edge(&db, 1, 2, "a")];
        let plan = SolvePlan::build(4, &free, &[], &[NodeVar(2)], &[], &db);
        assert_eq!(plan.var_order, vec![NodeVar(2), NodeVar(1), NodeVar(0)]);
        assert_eq!(plan.prefix_len, 1);
        assert_eq!(plan.existential_vars(), 2);
        // Variable 1 is used by both edges; its last use is the position at
        // which the later-ordered edge (0–1) becomes fully bound, i.e. the
        // rank of variable 0.
        assert_eq!(plan.last_use[1], plan.seed_rank[0]);
        // The a-edge is fully bound once variable 1 (its higher-ranked
        // endpoint) is.
        assert_eq!(plan.last_use[2], plan.seed_rank[1]);
        assert_eq!(plan.last_use[3], usize::MAX); // in no constraint

        // Boolean (empty output): the whole order is existential.
        let free2 = vec![edge(&db, 0, 1, "b+")];
        let plan2 = SolvePlan::build(2, &free2, &[], &[], &[], &db);
        assert_eq!(plan2.prefix_len, 0);
        assert_eq!(plan2.existential_vars(), 2);
    }

    #[test]
    fn cycle_rank_classifies_components() {
        let db = skewed_db();
        // Triangle {0,1,2} + pendant chain 2–3: one cyclic component.
        let free = vec![
            edge(&db, 0, 1, "a"),
            edge(&db, 1, 2, "b"),
            edge(&db, 2, 0, "b"),
            edge(&db, 2, 3, "a"),
        ];
        let plan = SolvePlan::build(4, &free, &[], &[], &[], &db);
        assert_eq!(plan.cyclic_components, 1);
        assert_eq!(plan.tree_components, 0);
        assert!(plan.cyclic_var.iter().take(4).all(|&c| c));

        // Pure chain: a tree.
        let free = vec![edge(&db, 0, 1, "a"), edge(&db, 1, 2, "b")];
        let plan = SolvePlan::build(3, &free, &[], &[], &[], &db);
        assert_eq!((plan.cyclic_components, plan.tree_components), (0, 1));
        assert!(plan.cyclic_var.iter().all(|&c| !c));

        // Parallel atoms over the same pair close an incidence cycle.
        let free = vec![edge(&db, 0, 1, "a"), edge(&db, 0, 1, "b")];
        let plan = SolvePlan::build(2, &free, &[], &[], &[], &db);
        assert_eq!(plan.cyclic_components, 1);
        assert!(plan.cyclic_var[0] && plan.cyclic_var[1]);

        // A self-loop atom alone is not a cycle of the incidence graph.
        let free = vec![edge(&db, 0, 0, "a")];
        let plan = SolvePlan::build(1, &free, &[], &[], &[], &db);
        assert_eq!((plan.cyclic_components, plan.tree_components), (0, 1));

        // Mixed: triangle {0,1,2} plus a disjoint chain {3,4}.
        let free = vec![
            edge(&db, 0, 1, "a"),
            edge(&db, 1, 2, "b"),
            edge(&db, 2, 0, "b"),
            edge(&db, 3, 4, "a"),
        ];
        let plan = SolvePlan::build(5, &free, &[], &[], &[], &db);
        assert_eq!((plan.cyclic_components, plan.tree_components), (1, 1));
        assert!(plan.cyclic_var[0] && !plan.cyclic_var[3] && !plan.cyclic_var[4]);
    }

    #[test]
    fn single_step_symbols_accepts_only_length_one_languages() {
        let mut a = Alphabet::from_chars("abc");
        let m = |a: &mut Alphabet, s: &str| Nfa::from_regex(&parse_regex(s, a).unwrap());
        let sym = |a: &mut Alphabet, c: &str| a.sym(c);
        let (sa, sb) = (sym(&mut a, "a"), sym(&mut a, "b"));
        assert_eq!(single_step_symbols(&m(&mut a, "a")), Some(vec![sa]));
        let alt = single_step_symbols(&m(&mut a, "a|b")).unwrap();
        assert_eq!(alt, vec![sa, sb]);
        // Longer words, ε-accepting loops, Σ-steps: all general.
        assert!(single_step_symbols(&m(&mut a, "ab")).is_none());
        assert!(single_step_symbols(&m(&mut a, "a*")).is_none());
        assert!(single_step_symbols(&m(&mut a, "a+")).is_none());
        assert!(single_step_symbols(&m(&mut a, "a|bc")).is_none());
        assert!(single_step_symbols(&crate::sync::sigma_star_nfa()).is_none());
    }

    #[test]
    fn output_bias_breaks_cost_ties_only() {
        let db = skewed_db();
        // Two disconnected b-edges with identical cost: the one whose
        // variables include an output wins the tie, regardless of index.
        let free = vec![edge(&db, 0, 1, "b"), edge(&db, 2, 3, "b")];
        let plan = SolvePlan::build(4, &free, &[], &[NodeVar(3)], &[], &db);
        assert_eq!(plan.edge_cost[0], plan.edge_cost[1]);
        assert_eq!(plan.var_order[0], NodeVar(3), "output placed first");
        assert_eq!(plan.var_order[1], NodeVar(2));
        assert_eq!(plan.prefix_len, 1);
        assert_eq!(plan.existential_vars(), 3);
        // But cost still dominates the bias: a cheaper non-output edge
        // leads over a pricier output-touching one.
        let free2 = vec![edge(&db, 0, 1, "b+"), edge(&db, 1, 2, "a")];
        let plan2 = SolvePlan::build(3, &free2, &[], &[NodeVar(0)], &[], &db);
        assert_eq!(plan2.var_order[0], NodeVar(1));
        assert_eq!(plan2.var_order[1], NodeVar(2));
        // The b+ edge then places the output variable 0 last; the prefix
        // spans the whole order.
        assert_eq!(plan2.prefix_len, 3);
    }
}
