//! Phase 1 of the solver pipeline: constraint-graph planning.
//!
//! The [`Problem`](crate::solve::Problem)'s free edges and groups induce a
//! *constraint graph* over node variables: every constraint connects the
//! variables it mentions. Before any search runs, [`SolvePlan::build`]
//! estimates a traversal cost for each constraint from the database's CSR
//! label statistics ([`GraphDb::label_edge_count`]) — an automaton whose
//! transition symbols label few database arcs explores a small product
//! region and filters hard — and emits a *connected, cheapest-first*
//! variable order: start at the cheapest constraint, then repeatedly take
//! the cheapest constraint sharing a variable with the ordered prefix
//! (Prim-style), jumping components only when forced. The enumerate phase
//! seeds variables in this order and prefers cheap constraints when several
//! half-bound extensions compete, so join order follows the data instead of
//! query-text accident.

use crate::pattern::NodeVar;
use crate::solve::{FreeEdge, Group};
use cxrpq_automata::{Label, Nfa};
use cxrpq_graph::GraphDb;

/// Estimated cost of searching the product of `db` with `nfa`: each
/// `Sym(a)` transition can expand over every `a`-labelled arc, each `Any`
/// transition over every arc, ε over none. The absolute number is
/// meaningless; only the ordering between constraints matters.
fn nfa_cost(nfa: &Nfa, db: &GraphDb) -> u64 {
    let mut cost = 0u64;
    for s in nfa.states() {
        for &(l, _) in nfa.transitions(s) {
            cost += match l {
                Label::Eps => 0,
                Label::Sym(a) => db.label_edge_count(a) as u64,
                Label::Any => db.edge_count() as u64,
            };
        }
    }
    cost
}

/// A constraint of the plan's constraint graph, with its endpoints and
/// estimated cost.
struct PlanConstraint {
    vars: Vec<NodeVar>,
    cost: u64,
}

/// The output of the planning phase: per-constraint cost estimates and a
/// connected, cheapest-first variable order.
#[derive(Clone, Debug)]
pub struct SolvePlan {
    /// Estimated cost per free edge (index-aligned with
    /// `Problem::free_edges`).
    pub edge_cost: Vec<u64>,
    /// Estimated cost per group (index-aligned with `Problem::groups`).
    /// Synchronized walkers multiply, so a group costs the sum of its
    /// member automata scaled by its arity.
    pub group_cost: Vec<u64>,
    /// Every variable occurring in some constraint, cheapest-first and
    /// connected (consecutive variables share constraints wherever the
    /// constraint graph allows).
    pub var_order: Vec<NodeVar>,
    /// `seed_rank[v] = position of v in var_order` (`usize::MAX` for
    /// variables in no constraint), for O(1) order lookups.
    pub seed_rank: Vec<usize>,
}

impl SolvePlan {
    /// Plans over the constraint graph of `free` and `groups` against the
    /// label statistics of `db`.
    pub fn build(node_count: usize, free: &[FreeEdge], groups: &[Group], db: &GraphDb) -> Self {
        let edge_cost: Vec<u64> = free.iter().map(|e| nfa_cost(e.cache.nfa(), db)).collect();
        let group_cost: Vec<u64> = groups
            .iter()
            .map(|g| {
                let arity = g.spec.arity() as u64;
                let sum: u64 = g.spec.nfas.iter().map(|n| nfa_cost(n, db)).sum();
                sum.saturating_mul(arity.max(1))
            })
            .collect();
        let mut constraints: Vec<PlanConstraint> = Vec::with_capacity(free.len() + groups.len());
        for (e, &cost) in free.iter().zip(&edge_cost) {
            constraints.push(PlanConstraint {
                vars: vec![e.src, e.dst],
                cost,
            });
        }
        for (g, &cost) in groups.iter().zip(&group_cost) {
            // Repeated variables are harmless downstream (the ordering
            // loop skips already-placed vars).
            let vars: Vec<NodeVar> = g.srcs.iter().chain(g.dsts.iter()).copied().collect();
            constraints.push(PlanConstraint { vars, cost });
        }

        // Prim-style greedy: repeatedly take the cheapest unused constraint
        // touching the ordered prefix; when no constraint connects (a new
        // component of the constraint graph), take the cheapest remaining.
        let mut in_order = vec![false; node_count];
        let mut used = vec![false; constraints.len()];
        let mut var_order: Vec<NodeVar> = Vec::new();
        loop {
            let mut best: Option<(u64, usize, bool)> = None; // (cost, idx, connected)
            for (i, c) in constraints.iter().enumerate() {
                if used[i] {
                    continue;
                }
                let connected = c.vars.iter().any(|v| in_order[v.index()]);
                let key = (c.cost, i, connected);
                let better = match best {
                    None => true,
                    // Connectivity dominates; cost breaks ties, then index.
                    Some((bc, bi, bconn)) => match (connected, bconn) {
                        (true, false) => true,
                        (false, true) => false,
                        _ => (key.0, key.1) < (bc, bi),
                    },
                };
                if better {
                    best = Some((c.cost, i, connected));
                }
            }
            let Some((_, idx, _)) = best else { break };
            used[idx] = true;
            for &v in &constraints[idx].vars {
                if !in_order[v.index()] {
                    in_order[v.index()] = true;
                    var_order.push(v);
                }
            }
        }
        let mut seed_rank = vec![usize::MAX; node_count];
        for (pos, v) in var_order.iter().enumerate() {
            seed_rank[v.index()] = pos;
        }
        Self {
            edge_cost,
            group_cost,
            var_order,
            seed_rank,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::ReachCache;
    use crate::sync::SyncSpec;
    use cxrpq_automata::{parse_regex, Nfa};
    use cxrpq_graph::{Alphabet, GraphBuilder, GraphDb};
    use std::sync::Arc;

    /// 1 `a`-arc, 8 `b`-arcs, 0 `c`-arcs.
    fn skewed_db() -> GraphDb {
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut b = GraphBuilder::new(alpha);
        let a = b.alphabet().sym("a");
        let bb = b.alphabet().sym("b");
        let hub = b.add_node();
        let first = b.add_node();
        b.add_edge(hub, a, first);
        for _ in 0..8 {
            let n = b.add_node();
            b.add_edge(hub, bb, n);
        }
        b.freeze()
    }

    fn edge(db: &GraphDb, src: u32, dst: u32, re: &str) -> FreeEdge {
        let mut a = db.alphabet().clone();
        FreeEdge {
            src: NodeVar(src),
            dst: NodeVar(dst),
            cache: ReachCache::new(Nfa::from_regex(&parse_regex(re, &mut a).unwrap())),
        }
    }

    #[test]
    fn cheapest_constraint_seeds_the_order() {
        let db = skewed_db();
        // b+ (8 arcs) vs a (1 arc): the a-edge is cheaper and its variables
        // lead the order even though it appears second in query text.
        let free = vec![edge(&db, 0, 1, "b+"), edge(&db, 1, 2, "a")];
        let plan = SolvePlan::build(3, &free, &[], &db);
        assert!(plan.edge_cost[0] > plan.edge_cost[1]);
        assert_eq!(plan.var_order[0], NodeVar(1));
        assert_eq!(plan.var_order[1], NodeVar(2));
        assert_eq!(plan.var_order[2], NodeVar(0));
        assert_eq!(plan.seed_rank[1], 0);
    }

    #[test]
    fn order_stays_connected_before_jumping_components() {
        let db = skewed_db();
        // Component {0,1} is expensive, component {2,3} cheap: the cheap
        // component leads, and within a component, ordering follows
        // adjacency (3–2's neighbour via shared var before the far pair).
        let free = vec![
            edge(&db, 0, 1, "b+b+"),
            edge(&db, 2, 3, "a"),
            edge(&db, 3, 0, "b"),
        ];
        let plan = SolvePlan::build(4, &free, &[], &db);
        assert_eq!(plan.var_order[0], NodeVar(2));
        assert_eq!(plan.var_order[1], NodeVar(3));
        // Edge 3–0 (connected, cost 8) is taken before the disconnected
        // jump to the expensive 0–1 edge.
        assert_eq!(plan.var_order[2], NodeVar(0));
        assert_eq!(plan.var_order[3], NodeVar(1));
    }

    #[test]
    fn groups_cost_scales_with_arity_and_unconstrained_vars_unranked() {
        let db = skewed_db();
        let def = {
            let mut a = db.alphabet().clone();
            Nfa::from_regex(&parse_regex("b+", &mut a).unwrap())
        };
        let groups = vec![Group::new(
            vec![NodeVar(0), NodeVar(0)],
            vec![NodeVar(1), NodeVar(2)],
            SyncSpec::equality_group(Some(def), 2),
        )];
        let plan = SolvePlan::build(5, &[], &groups, &db);
        assert_eq!(plan.group_cost.len(), 1);
        assert!(plan.group_cost[0] > 0);
        assert_eq!(plan.var_order.len(), 3); // 0, 1, 2 — not 3, 4
        assert_eq!(plan.seed_rank[4], usize::MAX);
    }
}
