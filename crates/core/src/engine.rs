//! Fragment-driven engine selection — a small "query planner" that reads
//! the §5/§6 classification of a CXRPQ and dispatches to the cheapest
//! complete engine.
//!
//! | fragment (classify)    | engine            | exactness                  |
//! |------------------------|-------------------|----------------------------|
//! | `Simple`               | [`SimpleEvaluator`] | exact (Lemma 3)          |
//! | `NormalForm`/`VstarFree*` | [`VsfEvaluator`] | exact (Theorem 2/5)       |
//! | `General`              | [`BoundedEvaluator`] | `⊨_{≤k}` under-approx.  |
//!
//! Unrestricted evaluation is PSpace-hard in data complexity (Theorem 1), so
//! for `General` queries the planner falls back to the bounded-image
//! semantics of §6 with a caller-chosen `k` and reports `exact = false`.

use crate::bounded::BoundedEvaluator;
use crate::cxrpq::Cxrpq;
use crate::governor::{Governor, Verdict};
use crate::simple_eval::SimpleEvaluator;
use crate::solve::{PipelineStats, SolveOptions};
use crate::vsf_eval::VsfEvaluator;
use crate::witness::QueryWitness;
use cxrpq_graph::{GraphDb, NodeId};
use cxrpq_xregex::Fragment;
use std::collections::BTreeSet;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which evaluation engine the planner chose (or was forced to use).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum EngineKind {
    /// Lemma 3: synchronized-group product search on simple queries.
    Simple,
    /// Lemma 7: branch enumeration + normalization + Lemma 3.
    Vsf,
    /// Theorem 6: bounded-image mapping enumeration (`CXRPQ^{≤k}`).
    Bounded,
}

impl fmt::Display for EngineKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineKind::Simple => write!(f, "simple (Lemma 3)"),
            EngineKind::Vsf => write!(f, "vstar-free (Lemma 7)"),
            EngineKind::Bounded => write!(f, "bounded-image (Theorem 6)"),
        }
    }
}

/// Planner options.
#[derive(Clone, Debug)]
pub struct EvalOptions {
    /// Image bound used when falling back to `⊨_{≤k}` on `General` queries.
    pub bounded_k: usize,
    /// Force a specific engine instead of planning by fragment. Forcing an
    /// engine onto a query outside its fragment is an error at `plan` time.
    pub force: Option<EngineKind>,
    /// Resource governor threaded through every evaluation this planner
    /// dispatches (deadline, fuel, memory ceiling, cooperative cancel).
    /// `None` runs ungoverned; an aborted run reports
    /// [`Verdict::Aborted`] on the [`Evaluated`] and returns a sound
    /// partial result.
    pub governor: Option<Arc<Governor>>,
    /// A cached [`crate::SolvePlan`] to seed the solver's phase 1 with
    /// (see [`SolveOptions::plan_seed`]); threaded into every solver call
    /// this planner dispatches. Plans only order the search, so an
    /// incompatible seed is ignored, never wrong.
    pub plan_seed: Option<Arc<crate::plan::SolvePlan>>,
}

impl Default for EvalOptions {
    fn default() -> Self {
        Self {
            bounded_k: 3,
            force: None,
            governor: None,
            plan_seed: None,
        }
    }
}

/// A value plus provenance: which engine produced it and whether the result
/// is exact for the unrestricted CXRPQ semantics.
#[derive(Clone, Debug)]
pub struct Evaluated<T> {
    /// The result.
    pub value: T,
    /// The engine used.
    pub engine: EngineKind,
    /// Whether the engine decides the full semantics for this query (the
    /// bounded fallback on `General` queries under-approximates).
    pub exact: bool,
    /// Wall-clock evaluation time (this call only).
    pub elapsed: Duration,
    /// Wall-clock planning time: fragment classification plus engine
    /// construction (NFA compilation, plan assembly), paid once in
    /// [`AutoEvaluator::with_options`] and reported with every result.
    pub plan_elapsed: Duration,
    /// Per-phase statistics of the solver pipeline (variable order,
    /// pruning rounds, domain sizes before/after). Reported by
    /// `boolean`/`answers`/`check` when the chosen engine runs the shared
    /// constraint solver in a single pass (`Simple`); `None` for engines
    /// that fan out into many sub-evaluations (`Vsf`, `Bounded`) and for
    /// `witness` calls (witness assembly runs several searches beyond the
    /// solver).
    pub pipeline: Option<PipelineStats>,
    /// Whether the evaluation ran to completion or the governor aborted it
    /// mid-flight ([`Verdict::Aborted`] ⇒ `value` is a sound partial
    /// result). Always [`Verdict::Complete`] when no governor was set.
    pub verdict: Verdict,
}

impl<T> Evaluated<T> {
    /// Planning plus evaluation time.
    pub fn total_elapsed(&self) -> Duration {
        self.plan_elapsed + self.elapsed
    }
}

/// Planning failed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PlanError {
    /// A forced engine does not cover the query's fragment.
    ForcedEngineInapplicable(EngineKind, Fragment),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::ForcedEngineInapplicable(e, frag) => {
                write!(f, "engine {e:?} cannot evaluate a {frag:?} query")
            }
        }
    }
}

impl std::error::Error for PlanError {}

/// The constructed engine behind an [`AutoEvaluator`] (built exactly once,
/// at plan time).
enum EngineImpl<'q> {
    Simple(SimpleEvaluator<'q>),
    Vsf(VsfEvaluator<'q>),
    Bounded(BoundedEvaluator<'q>),
}

/// The fragment-dispatching evaluator.
///
/// Planning — fragment classification *and* engine construction (NFA
/// compilation, plan assembly) — happens once, in
/// [`AutoEvaluator::with_options`]; `boolean`/`answers`/`check`/`witness`
/// reuse the constructed engine. Every [`Evaluated`] reports both the
/// per-call evaluation time and the one-off planning time
/// ([`Evaluated::plan_elapsed`]), so construction cost is never silently
/// dropped from timings.
pub struct AutoEvaluator<'q> {
    choice: EngineKind,
    exact: bool,
    engine: EngineImpl<'q>,
    plan_elapsed: Duration,
    gov: Option<Arc<Governor>>,
    plan_seed: Option<Arc<crate::plan::SolvePlan>>,
}

impl<'q> AutoEvaluator<'q> {
    /// Plans with default options.
    pub fn new(q: &'q Cxrpq) -> Self {
        Self::with_options(q, EvalOptions::default()).expect("no forced engine")
    }

    /// Plans with explicit options, constructing the chosen engine.
    pub fn with_options(q: &'q Cxrpq, opts: EvalOptions) -> Result<Self, PlanError> {
        let t0 = Instant::now();
        let fragment = q.fragment();
        let choice = match opts.force {
            Some(forced) => {
                let applicable = match forced {
                    EngineKind::Simple => fragment == Fragment::Simple,
                    EngineKind::Vsf => fragment != Fragment::General,
                    EngineKind::Bounded => true,
                };
                if !applicable {
                    return Err(PlanError::ForcedEngineInapplicable(forced, fragment));
                }
                forced
            }
            None => match fragment {
                Fragment::Simple => EngineKind::Simple,
                Fragment::NormalForm | Fragment::VstarFreeFlat | Fragment::VstarFree => {
                    EngineKind::Vsf
                }
                Fragment::General => EngineKind::Bounded,
            },
        };
        let engine = match choice {
            EngineKind::Simple => EngineImpl::Simple(SimpleEvaluator::new(q).expect("planned")),
            EngineKind::Vsf => EngineImpl::Vsf(VsfEvaluator::new(q).expect("planned")),
            EngineKind::Bounded => {
                let mut ev = BoundedEvaluator::new(q, opts.bounded_k);
                if let Some(g) = &opts.governor {
                    ev = ev.governed(g.clone());
                }
                EngineImpl::Bounded(ev)
            }
        };
        // Bounded evaluation is exact only under the `≤k` reading; the other
        // engines decide the unrestricted semantics of their fragments.
        let exact = choice != EngineKind::Bounded;
        Ok(Self {
            choice,
            exact,
            engine,
            plan_elapsed: t0.elapsed(),
            gov: opts.governor,
            plan_seed: opts.plan_seed,
        })
    }

    /// The planned engine.
    pub fn plan(&self) -> EngineKind {
        self.choice
    }

    /// Whether the planned evaluation is exact for the unrestricted
    /// semantics.
    pub fn is_exact(&self) -> bool {
        self.exact
    }

    /// Time spent classifying the query and constructing the engine.
    pub fn plan_elapsed(&self) -> Duration {
        self.plan_elapsed
    }

    fn timed<T>(&self, f: impl FnOnce() -> (T, Option<PipelineStats>)) -> Evaluated<T> {
        let t0 = Instant::now();
        let (value, pipeline) = f();
        Evaluated {
            value,
            engine: self.choice,
            exact: self.exact,
            elapsed: t0.elapsed(),
            plan_elapsed: self.plan_elapsed,
            pipeline,
            verdict: self
                .gov
                .as_deref()
                .map_or(Verdict::Complete, Governor::verdict),
        }
    }

    /// Attaches this planner's governor and plan seed (if any) to solver
    /// options.
    fn solve_opts(&self, base: SolveOptions) -> SolveOptions {
        let base = match &self.gov {
            Some(g) => base.governed(g.clone()),
            None => base,
        };
        match &self.plan_seed {
            Some(seed) => base.with_plan_seed(seed.clone()),
            None => base,
        }
    }

    /// Boolean evaluation with provenance.
    pub fn boolean(&self, db: &GraphDb) -> Evaluated<bool> {
        let opts = self.solve_opts(SolveOptions::early_exit().projected());
        self.timed(|| match &self.engine {
            EngineImpl::Simple(ev) => ev.boolean_opts(db, &opts),
            EngineImpl::Vsf(ev) => (ev.boolean_opts(db, &opts), None),
            EngineImpl::Bounded(ev) => (ev.boolean(db), None),
        })
    }

    /// The answer relation with provenance (projection pushdown: non-output
    /// variables are existentially eliminated by the solver).
    pub fn answers(&self, db: &GraphDb) -> Evaluated<BTreeSet<Vec<NodeId>>> {
        let opts = self.solve_opts(SolveOptions::pipeline().projected());
        self.timed(|| match &self.engine {
            EngineImpl::Simple(ev) => ev.answers_opts(db, &opts),
            EngineImpl::Vsf(ev) => (ev.answers_opts(db, &opts), None),
            EngineImpl::Bounded(ev) => (ev.answers(db), None),
        })
    }

    /// The Check problem with provenance.
    pub fn check(&self, db: &GraphDb, tuple: &[NodeId]) -> Evaluated<bool> {
        let opts = self.solve_opts(SolveOptions::early_exit().projected());
        self.timed(|| match &self.engine {
            EngineImpl::Simple(ev) => ev.check_opts(db, tuple, &opts),
            EngineImpl::Vsf(ev) => (ev.check_opts(db, tuple, &opts), None),
            EngineImpl::Bounded(ev) => (ev.check(db, tuple), None),
        })
    }

    /// A witness with provenance.
    pub fn witness(&self, db: &GraphDb) -> Evaluated<Option<QueryWitness>> {
        self.timed(|| match &self.engine {
            EngineImpl::Simple(ev) => (ev.witness(db), None),
            EngineImpl::Vsf(ev) => (ev.witness(db), None),
            EngineImpl::Bounded(ev) => (ev.witness(db), None),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cxrpq::CxrpqBuilder;
    use cxrpq_graph::Alphabet;
    use cxrpq_graph::GraphBuilder;
    use std::sync::Arc;

    fn db_word(word: &str) -> (GraphDb, NodeId, NodeId) {
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = GraphBuilder::new(alpha);
        let s = db.add_node();
        let t = db.add_node();
        let w = db.alphabet().parse_word(word).unwrap();
        db.add_word_path(s, &w, t);
        (db.freeze(), s, t)
    }

    #[test]
    fn plans_simple_for_simple_queries() {
        let mut alpha = Alphabet::from_chars("abc");
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("x", "z{(a|b)+}cz", "y")
            .build()
            .unwrap();
        let auto = AutoEvaluator::new(&q);
        assert_eq!(auto.plan(), EngineKind::Simple);
        assert!(auto.is_exact());
        let (db, _, _) = db_word("abcab");
        let r = auto.boolean(&db);
        assert!(r.value && r.exact);
        assert_eq!(r.engine, EngineKind::Simple);
    }

    #[test]
    fn plans_vsf_for_alternations() {
        let mut alpha = Alphabet::from_chars("abc");
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("x", "z{ab|ba}z", "y")
            .edge("u", "z|ab", "v")
            .build()
            .unwrap();
        let auto = AutoEvaluator::new(&q);
        assert_eq!(auto.plan(), EngineKind::Vsf);
        assert!(auto.is_exact());
    }

    #[test]
    fn plans_bounded_for_general_queries() {
        let mut alpha = Alphabet::from_chars("abc");
        // Figure 2 G1: a reference under +.
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("v1", "x{a|b}", "w")
            .edge("w", "(x|c)+", "v2")
            .build()
            .unwrap();
        let auto = AutoEvaluator::new(&q);
        assert_eq!(auto.plan(), EngineKind::Bounded);
        assert!(!auto.is_exact());
        // G1's images have length 1, so k = 3 evaluation is in fact correct.
        let (db, _, _) = db_word("acca");
        assert!(auto.boolean(&db).value);
    }

    #[test]
    fn forcing_engines() {
        let mut alpha = Alphabet::from_chars("ab");
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("x", "z{ab}z", "y")
            .build()
            .unwrap();
        // Simple query: every engine applies.
        for force in [EngineKind::Simple, EngineKind::Vsf, EngineKind::Bounded] {
            let auto = AutoEvaluator::with_options(
                &q,
                EvalOptions {
                    bounded_k: 2,
                    force: Some(force),
                    governor: None,
                    plan_seed: None,
                },
            )
            .unwrap();
            let (db, _, _) = db_word("abab");
            assert!(auto.boolean(&db).value, "{force:?}");
        }
        // Forcing Simple onto a non-simple query fails at plan time.
        let mut alpha2 = Alphabet::from_chars("ab");
        let q2 = CxrpqBuilder::new(&mut alpha2)
            .edge("x", "z{ab|ba}z", "y")
            .edge("u", "z|ab", "v")
            .build()
            .unwrap();
        assert!(matches!(
            AutoEvaluator::with_options(
                &q2,
                EvalOptions {
                    bounded_k: 2,
                    force: Some(EngineKind::Simple),
                    governor: None,
                    plan_seed: None,
                },
            ),
            Err(PlanError::ForcedEngineInapplicable(..))
        ));
    }

    #[test]
    fn plan_time_reported_and_engine_reused() {
        let mut alpha = Alphabet::from_chars("abc");
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("x", "z{(a|b)+}cz", "y")
            .build()
            .unwrap();
        let auto = AutoEvaluator::new(&q);
        let plan = auto.plan_elapsed();
        let (db, _, _) = db_word("abcab");
        let r1 = auto.boolean(&db);
        let r2 = auto.boolean(&db);
        // Construction happened once, at plan time; every result carries
        // that same one-off cost alongside its own evaluation time.
        assert_eq!(r1.plan_elapsed, plan);
        assert_eq!(r2.plan_elapsed, plan);
        assert!(r1.total_elapsed() >= r1.elapsed);
        assert!(r1.value && r2.value);
    }

    #[test]
    fn pipeline_stats_surface_through_the_planner() {
        let (db, s, t) = db_word("abcab");
        let mut alpha = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("x", "z{(a|b)+}cz", "y")
            .output(&["x", "y"])
            .build()
            .unwrap();
        let auto = AutoEvaluator::new(&q);
        assert_eq!(auto.plan(), EngineKind::Simple);
        let r = auto.answers(&db);
        let stats = r
            .pipeline
            .as_ref()
            .expect("simple engine reports pipeline stats");
        assert!(!stats.var_order.is_empty());
        assert!(stats.total_after() <= stats.total_before());
        assert!(r.value.contains(&vec![s, t]));
        // Early-exiting calls report the capped pipeline too.
        assert!(auto.boolean(&db).pipeline.is_some());
        assert!(auto.check(&db, &[s, t]).pipeline.is_some());
        // The bounded fallback fans out into sub-evaluations: no single run
        // to report.
        let forced = AutoEvaluator::with_options(
            &q,
            EvalOptions {
                bounded_k: 4,
                force: Some(EngineKind::Bounded),
                governor: None,
                plan_seed: None,
            },
        )
        .unwrap();
        assert!(forced.answers(&db).pipeline.is_none());
    }

    #[test]
    fn engines_agree_through_the_planner() {
        let (db, s, t) = db_word("abcab");
        let mut alpha = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("x", "z{(a|b)+}cz", "y")
            .output(&["x", "y"])
            .build()
            .unwrap();
        let auto = AutoEvaluator::new(&q);
        let answers = auto.answers(&db).value;
        assert!(answers.contains(&vec![s, t]));
        assert!(auto.check(&db, &[s, t]).value);
        let w = auto.witness(&db).value.unwrap();
        w.verify(&db, q.pattern()).unwrap();
    }
}
