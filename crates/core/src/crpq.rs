//! Conjunctive regular path queries (CRPQ) — the paper's baseline class
//! (§2.3, Lemma 1: NP-complete combined / NL-complete data complexity).

use crate::governor::Outcome;
use crate::pattern::{GraphPattern, NodeVar};
use crate::reach::ReachCache;
use crate::solve::{FreeEdge, PipelineStats, Problem, SolveOptions};
use crate::witness::QueryWitness;
use cxrpq_automata::{parse_regex, Nfa, ParseError, Regex};
use cxrpq_graph::{Alphabet, GraphDb, NodeId};
use std::collections::{BTreeSet, HashMap};

/// A CRPQ `z̄ ← G_q` with classical regular expressions as edge labels.
#[derive(Clone, Debug)]
pub struct Crpq {
    pattern: GraphPattern<Regex>,
    output: Vec<NodeVar>,
}

impl Crpq {
    /// Wraps a pattern and output tuple.
    pub fn new(pattern: GraphPattern<Regex>, output: Vec<NodeVar>) -> Self {
        Self { pattern, output }
    }

    /// Builds a CRPQ from `(src, regex, dst)` string triples plus output
    /// node names. Symbols are interned into `alphabet`.
    pub fn build(
        edges: &[(&str, &str, &str)],
        output: &[&str],
        alphabet: &mut Alphabet,
    ) -> Result<Self, ParseError> {
        let mut pattern = GraphPattern::new();
        for (src, re, dst) in edges {
            let s = pattern.node(src);
            let d = pattern.node(dst);
            let r = parse_regex(re, alphabet)?;
            pattern.add_edge(s, r, d);
        }
        let output = output
            .iter()
            .map(|n| {
                pattern.node_var(n).unwrap_or_else(|| {
                    panic!("output variable {n:?} does not occur in the pattern")
                })
            })
            .collect();
        Ok(Self { pattern, output })
    }

    /// The graph pattern.
    pub fn pattern(&self) -> &GraphPattern<Regex> {
        &self.pattern
    }

    /// The output tuple `z̄` (empty for Boolean queries).
    pub fn output(&self) -> &[NodeVar] {
        &self.output
    }

    /// Whether the query is Boolean.
    pub fn is_boolean(&self) -> bool {
        self.output.is_empty()
    }

    /// Query size `|q|` (pattern nodes + total regex size).
    pub fn size(&self) -> usize {
        self.pattern.node_count()
            + self
                .pattern
                .edges()
                .iter()
                .map(|(_, r, _)| r.size())
                .sum::<usize>()
    }

    /// Quick syntactic emptiness: some edge label denotes ∅.
    pub fn has_empty_edge(&self) -> bool {
        self.pattern
            .edges()
            .iter()
            .any(|(_, r, _)| r.is_empty_lang())
    }
}

/// Evaluator for CRPQs: one reachability cache per edge + conjunctive join.
pub struct CrpqEvaluator<'q> {
    q: &'q Crpq,
}

impl<'q> CrpqEvaluator<'q> {
    /// Creates the evaluator.
    pub fn new(q: &'q Crpq) -> Self {
        Self { q }
    }

    fn problem(&self) -> Problem {
        let mut p = Problem::new(self.q.pattern.node_count());
        for (src, re, dst) in self.q.pattern.edges() {
            p.free_edges.push(FreeEdge {
                src: *src,
                dst: *dst,
                cache: ReachCache::new(Nfa::from_regex(re)),
            });
        }
        p
    }

    /// Boolean evaluation `D ⊨ q`.
    pub fn boolean(&self, db: &GraphDb) -> bool {
        self.boolean_with_stats(db).0
    }

    /// Boolean evaluation plus the number of product states explored (the
    /// measured proxy for the NL space bound).
    pub fn boolean_with_stats(&self, db: &GraphDb) -> (bool, usize) {
        self.boolean_with_stats_opts(db, &SolveOptions::early_exit().projected())
    }

    /// [`CrpqEvaluator::boolean_with_stats`] under explicit solver options
    /// (the bounded engine passes governed options through here).
    pub fn boolean_with_stats_opts(&self, db: &GraphDb, opts: &SolveOptions) -> (bool, usize) {
        let mut p = self.problem();
        let mut found = false;
        p.solve_with(db, &HashMap::new(), &[], opts, &mut |_| {
            found = true;
            true
        });
        let mut states = p.stats.states();
        for e in &p.free_edges {
            states += e.cache.stats.states();
        }
        (found, states)
    }

    /// [`CrpqEvaluator::boolean`] under explicit solver options, with the
    /// pipeline stats of the run.
    pub fn boolean_opts(&self, db: &GraphDb, opts: &SolveOptions) -> (bool, Option<PipelineStats>) {
        let mut p = self.problem();
        let mut found = false;
        p.solve_with(db, &HashMap::new(), &[], opts, &mut |_| {
            found = true;
            true
        });
        (found, p.pipeline.take())
    }

    /// The answer relation `q(D)` (projections of matching morphisms onto
    /// the output tuple), computed with projection pushdown: variables
    /// outside the output tuple are existentially eliminated and each
    /// projected tuple is emitted once, directly.
    pub fn answers(&self, db: &GraphDb) -> BTreeSet<Vec<NodeId>> {
        self.answers_opts(db, &SolveOptions::pipeline().projected())
            .0
    }

    /// [`CrpqEvaluator::answers`] under explicit solver options, with the
    /// pipeline stats of the run — the hook differential tests, benches and
    /// the engine's observability use. Exhaustive enumeration defaults to
    /// the full pipeline: the prune phase batch-warms every edge cache over
    /// the shrinking candidate domains (subsuming the old whole-database
    /// prefill). Pass [`SolveOptions::projected`] to push the output
    /// projection into the enumerator (the naive reference path without it
    /// is full-enumerate-then-project).
    pub fn answers_opts(
        &self,
        db: &GraphDb,
        opts: &SolveOptions,
    ) -> (BTreeSet<Vec<NodeId>>, Option<PipelineStats>) {
        let mut out = BTreeSet::new();
        let mut p = self.problem();
        let output = self.q.output.clone();
        p.solve_with(db, &HashMap::new(), &output, opts, &mut |bindings| {
            out.insert(
                output
                    .iter()
                    .map(|v| bindings[v.index()].expect("required var bound"))
                    .collect(),
            );
            false
        });
        (out, p.pipeline.take())
    }

    /// The Check problem: `t̄ ∈ q(D)`.
    pub fn check(&self, db: &GraphDb, tuple: &[NodeId]) -> bool {
        self.check_opts(db, tuple, &SolveOptions::early_exit().projected())
            .0
    }

    /// [`CrpqEvaluator::check`] under explicit solver options, with the
    /// pipeline stats of the run.
    pub fn check_opts(
        &self,
        db: &GraphDb,
        tuple: &[NodeId],
        opts: &SolveOptions,
    ) -> (bool, Option<PipelineStats>) {
        assert_eq!(tuple.len(), self.q.output.len(), "arity mismatch");
        let mut pinned = HashMap::new();
        for (v, n) in self.q.output.iter().zip(tuple) {
            // Repeated output variables must agree.
            if let Some(&prev) = pinned.get(v) {
                if prev != *n {
                    return (false, None);
                }
            }
            pinned.insert(*v, *n);
        }
        let mut p = self.problem();
        let mut found = false;
        p.solve_with(db, &pinned, &[], opts, &mut |_| {
            found = true;
            true
        });
        (found, p.pipeline.take())
    }

    /// [`CrpqEvaluator::boolean_opts`] with the run's [`Verdict`]: an
    /// aborted run may report `false` where a complete run would say `true`
    /// (sound under-approximation) and tags the result
    /// [`crate::governor::Verdict::Aborted`].
    pub fn boolean_outcome(
        &self,
        db: &GraphDb,
        opts: &SolveOptions,
    ) -> (Outcome<bool>, Option<PipelineStats>) {
        let (found, stats) = self.boolean_opts(db, opts);
        (
            Outcome::from_governor(found, opts.governor.as_deref()),
            stats,
        )
    }

    /// [`CrpqEvaluator::answers_opts`] with the run's [`Verdict`]: an
    /// aborted run returns the partial answers accumulated before the trip
    /// (always a subset of the complete relation).
    pub fn answers_outcome(
        &self,
        db: &GraphDb,
        opts: &SolveOptions,
    ) -> (Outcome<BTreeSet<Vec<NodeId>>>, Option<PipelineStats>) {
        let (ans, stats) = self.answers_opts(db, opts);
        (Outcome::from_governor(ans, opts.governor.as_deref()), stats)
    }

    /// [`CrpqEvaluator::check_opts`] with the run's [`Verdict`].
    pub fn check_outcome(
        &self,
        db: &GraphDb,
        tuple: &[NodeId],
        opts: &SolveOptions,
    ) -> (Outcome<bool>, Option<PipelineStats>) {
        let (found, stats) = self.check_opts(db, tuple, opts);
        (
            Outcome::from_governor(found, opts.governor.as_deref()),
            stats,
        )
    }

    /// A certificate for *some* matching morphism: the morphism plus one
    /// witnessing path per edge (§8's path-extraction extension). `None` iff
    /// `D ⊭ q`.
    pub fn witness(&self, db: &GraphDb) -> Option<QueryWitness> {
        self.witness_impl(db, &HashMap::new())
    }

    /// A certificate for `t̄ ∈ q(D)`. `None` iff the tuple is not an answer.
    pub fn witness_for(&self, db: &GraphDb, tuple: &[NodeId]) -> Option<QueryWitness> {
        let pinned = crate::witness::pin_tuple(self.q.output(), tuple)?;
        self.witness_impl(db, &pinned)
    }

    fn witness_impl(
        &self,
        db: &GraphDb,
        pinned: &HashMap<NodeVar, NodeId>,
    ) -> Option<QueryWitness> {
        let mut p = self.problem();
        let required: Vec<NodeVar> = self.q.pattern.node_vars().collect();
        let mut sol: Option<Vec<Option<NodeId>>> = None;
        p.solve_with(
            db,
            pinned,
            &required,
            &SolveOptions::early_exit(),
            &mut |b| {
                sol = Some(b.to_vec());
                true
            },
        );
        let b = sol?;
        let node = |v: NodeVar| b[v.index()].expect("required variables are bound");
        let mut paths = Vec::with_capacity(self.q.pattern.edge_count());
        for (src, re, dst) in self.q.pattern.edges() {
            let nfa = Nfa::from_regex(re);
            paths.push(crate::witness::edge_path(db, &nfa, node(*src), node(*dst))?);
        }
        Some(QueryWitness {
            morphism: crate::witness::morphism_of(&self.q.pattern, &b),
            paths,
            images: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxrpq_graph::GraphBuilder;
    use std::sync::Arc;

    /// The genealogy example of Figure 1: p = parent, s = supervisor.
    fn family_db() -> (GraphDb, Vec<NodeId>) {
        let alpha = Arc::new(Alphabet::from_chars("ps"));
        let mut db = GraphBuilder::new(alpha);
        let p = db.alphabet().sym("p");
        let s = db.alphabet().sym("s");
        // 0 -p-> 1 -p-> 2 (grandchild chain), 1 -s-> 3, 3 -p-> 4.
        let n: Vec<NodeId> = (0..5).map(|_| db.add_node()).collect();
        db.add_edge(n[0], p, n[1]);
        db.add_edge(n[1], p, n[2]);
        db.add_edge(n[1], s, n[3]);
        db.add_edge(n[3], p, n[4]);
        (db.freeze(), n)
    }

    #[test]
    fn figure_1_g1_psp() {
        // G1: v1 -p-> · -s-> · with p again: pairs (v1, v2) where v1's child
        // was supervised by v2's parent — expressed as v1 -psp̄…: here we use
        // the chain query v1 -ps-> w, v2 -p-> w.
        let (db, n) = family_db();
        let mut alpha = db.alphabet().clone();
        // v1 -ps-> w (v1's child's supervisor) and w -p-> v2 (w is v2's
        // parent): pairs (v1, v2) where v1's child was supervised by v2's
        // parent.
        let q = Crpq::build(
            &[("v1", "ps", "w"), ("w", "p", "v2")],
            &["v1", "v2"],
            &mut alpha,
        )
        .unwrap();
        let ans = CrpqEvaluator::new(&q).answers(&db);
        assert!(ans.contains(&vec![n[0], n[4]]));
        assert_eq!(ans.len(), 1);
    }

    #[test]
    fn boolean_and_check() {
        let (db, n) = family_db();
        let mut alpha = db.alphabet().clone();
        let q = Crpq::build(&[("x", "p+", "y")], &["x", "y"], &mut alpha).unwrap();
        let ev = CrpqEvaluator::new(&q);
        assert!(ev.boolean(&db));
        assert!(ev.check(&db, &[n[0], n[2]]));
        assert!(!ev.check(&db, &[n[2], n[0]]));
        let ans = ev.answers(&db);
        assert!(ans.contains(&vec![n[0], n[2]]));
        assert!(ans.contains(&vec![n[3], n[4]]));
    }

    #[test]
    fn empty_edge_never_matches() {
        let (db, _) = family_db();
        let mut alpha = db.alphabet().clone();
        let q = Crpq::build(&[("x", "!", "y")], &[], &mut alpha).unwrap();
        assert!(!CrpqEvaluator::new(&q).boolean(&db));
    }

    #[test]
    fn epsilon_edge_forces_equality() {
        let (db, n) = family_db();
        let mut alpha = db.alphabet().clone();
        let q = Crpq::build(
            &[("x", "p", "y"), ("y", "_", "z"), ("z", "s", "w")],
            &["x", "w"],
            &mut alpha,
        )
        .unwrap();
        let ans = CrpqEvaluator::new(&q).answers(&db);
        assert_eq!(ans, BTreeSet::from([vec![n[0], n[3]]]));
    }

    #[test]
    fn cyclic_pattern() {
        // Figure 1 G3-style: v1 -p+-> m and v1 -s+-> m (a biological
        // ancestor that is also an academic ancestor — here we test the
        // shape on a small graph where it fails).
        let (db, _) = family_db();
        let mut alpha = db.alphabet().clone();
        let q = Crpq::build(&[("v1", "p+", "m"), ("v1", "s+", "m")], &[], &mut alpha).unwrap();
        assert!(!CrpqEvaluator::new(&q).boolean(&db));
    }

    #[test]
    fn stats_reported() {
        let (db, _) = family_db();
        let mut alpha = db.alphabet().clone();
        let q = Crpq::build(&[("x", "p+", "y")], &[], &mut alpha).unwrap();
        let (found, states) = CrpqEvaluator::new(&q).boolean_with_stats(&db);
        assert!(found);
        assert!(states > 0);
    }

    #[test]
    fn check_with_repeated_output_vars() {
        let (db, n) = family_db();
        let mut alpha = db.alphabet().clone();
        let q = Crpq::build(&[("x", "p", "y")], &["x", "x"], &mut alpha).unwrap();
        let ev = CrpqEvaluator::new(&q);
        assert!(ev.check(&db, &[n[0], n[0]]));
        assert!(!ev.check(&db, &[n[0], n[1]]));
    }
}
