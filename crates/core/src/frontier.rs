//! The shared frontier engine behind both product searches.
//!
//! Both the multi-source reachability wavefront ([`crate::reach::reach_all`])
//! and the synchronized product search ([`crate::sync::SyncSearch`]) are
//! level-synchronous BFS loops over a frozen [`cxrpq_graph::GraphDb`]: every
//! level, each frontier item expands over contiguous CSR adjacency slices
//! and the discoveries become the next frontier. The frozen database is
//! `Send + Sync`, so a sufficiently large level can be sharded across the
//! long-lived [`WorkerPool`]: each worker expands a contiguous range of the
//! frontier into private next-level storage, and the level barrier merges
//! the private results. Routing levels through the shared pool (instead of
//! the scoped per-level spawns this module used to do) keeps a loaded server
//! at one thread per core no matter how many queries shard concurrently.
//!
//! [`FrontierConfig`] is the shared knob: a worker count (auto-sized from
//! [`std::thread::available_parallelism`] by default), a serial-fallback
//! threshold so levels too small to amortize shard dispatch — and therefore
//! entire tiny graphs — run on the calling thread exactly as before, and an
//! optional pinned pool for tests that need a deterministic width.

use crate::governor::Governor;
use crate::pool::WorkerPool;
use std::num::NonZeroUsize;

/// Tuning knobs of the level-synchronous frontier engine.
#[derive(Clone, Copy, Debug)]
pub struct FrontierConfig {
    /// Worker threads per sharded level; `0` auto-sizes from
    /// [`std::thread::available_parallelism`].
    pub threads: usize,
    /// Frontier sizes strictly below this expand serially on the calling
    /// thread (no dispatch, no merge), so small levels and small graphs pay
    /// nothing for the parallel machinery.
    pub serial_threshold: usize,
    /// Pool override; `None` routes sharded levels through
    /// [`WorkerPool::global`]. Tests pin a width by leaking a private pool.
    pub pool: Option<&'static WorkerPool>,
}

impl FrontierConfig {
    /// Default serial-fallback threshold for reachability frontiers, whose
    /// items are single `(node, state)` cells — cheap to expand, so a level
    /// must be fat before sharding pays.
    pub const REACH_SERIAL_THRESHOLD: usize = 4096;

    /// Default serial-fallback threshold for synchronized-search frontiers,
    /// whose items are whole product configurations (positions × state
    /// masks × relation state) — far heavier per expansion.
    pub const SYNC_SERIAL_THRESHOLD: usize = 128;

    /// Auto-sized workers with the reachability threshold.
    pub fn auto() -> Self {
        Self {
            threads: 0,
            serial_threshold: Self::REACH_SERIAL_THRESHOLD,
            pool: None,
        }
    }

    /// Single-threaded: every level expands on the calling thread.
    pub fn serial() -> Self {
        Self {
            threads: 1,
            serial_threshold: usize::MAX,
            pool: None,
        }
    }

    /// Exactly `threads` workers (with the reachability threshold); pass
    /// `0` for auto-sizing.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::auto()
        }
    }

    /// Same knobs, different serial-fallback threshold.
    pub fn with_serial_threshold(mut self, threshold: usize) -> Self {
        self.serial_threshold = threshold;
        self
    }

    /// Route sharded levels through `pool` instead of the global pool, and
    /// (unless `threads` was pinned) size shards from its worker count.
    pub fn with_pool(mut self, pool: &'static WorkerPool) -> Self {
        self.pool = Some(pool);
        self
    }

    /// The pool sharded levels run on.
    pub fn pool(&self) -> &'static WorkerPool {
        self.pool.unwrap_or_else(WorkerPool::global)
    }

    /// The resolved worker count: `threads` when pinned, else the override
    /// pool's width, else the machine's available parallelism.
    pub fn worker_count(&self) -> usize {
        if self.threads > 0 {
            return self.threads;
        }
        if let Some(pool) = self.pool {
            return pool.worker_count();
        }
        std::thread::available_parallelism()
            .map(NonZeroUsize::get)
            .unwrap_or(1)
    }

    /// How many shards a level of `frontier_len` items should split into:
    /// `1` (serial) below the threshold, otherwise the resolved worker
    /// count, never more than the number of items.
    pub fn shards_for(&self, frontier_len: usize) -> usize {
        if frontier_len < self.serial_threshold {
            return 1;
        }
        self.worker_count().clamp(1, frontier_len.max(1))
    }
}

impl Default for FrontierConfig {
    fn default() -> Self {
        Self::auto()
    }
}

/// Expands one frontier level across `shards` pool workers.
///
/// `items` is split into `shards` contiguous chunks; `worker(shard_index,
/// chunk)` runs on `shards - 1` pool workers plus the calling thread (which
/// also helps drain the pool queue while it waits), and the per-shard
/// results come back in shard order for the caller to merge at the level
/// barrier. With `shards <= 1` the worker runs inline — the serial fallback
/// costs one indirect call and nothing else.
pub fn expand_sharded<T, R, F>(items: &[T], shards: usize, pool: &WorkerPool, worker: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    pool.run_sharded(items, shards, worker)
}

/// [`expand_sharded`] under a [`Governor`]: each worker observes the abort
/// flag at the level barrier before expanding its chunk and, when the
/// governor has tripped, *drains* — it runs on an empty slice, producing a
/// neutral result for the merge instead of expanding work that will be
/// thrown away. (Finer-grained mid-chunk draining is the worker closure's
/// job; this wrapper guarantees the barrier-level check even for closures
/// that never look at the governor.)
pub fn expand_sharded_governed<T, R, F>(
    items: &[T],
    shards: usize,
    pool: &WorkerPool,
    gov: &Governor,
    worker: F,
) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &[T]) -> R + Sync,
{
    expand_sharded(items, shards, pool, |i, chunk| {
        if gov.is_aborted() {
            worker(i, &chunk[..0])
        } else {
            worker(i, chunk)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shards_respect_threshold_and_items() {
        let cfg = FrontierConfig {
            threads: 4,
            serial_threshold: 10,
            pool: None,
        };
        assert_eq!(cfg.shards_for(9), 1, "below threshold: serial");
        assert_eq!(cfg.shards_for(10), 4);
        assert_eq!(cfg.worker_count(), 4);
        assert!(FrontierConfig::auto().worker_count() >= 1);
        assert_eq!(FrontierConfig::serial().shards_for(1 << 20), 1);
    }

    #[test]
    fn pinned_pool_drives_worker_count() {
        let pool: &'static WorkerPool = Box::leak(Box::new(WorkerPool::new(3)));
        let cfg = FrontierConfig::auto().with_pool(pool);
        assert_eq!(cfg.worker_count(), 3);
        assert!(std::ptr::eq(cfg.pool(), pool));
        let pinned = FrontierConfig::with_threads(2).with_pool(pool);
        assert_eq!(pinned.worker_count(), 2, "explicit threads win");
    }

    #[test]
    fn sharded_expansion_covers_every_item_in_order() {
        let items: Vec<usize> = (0..103).collect();
        let pool = WorkerPool::global();
        for shards in [1, 2, 3, 8, 103, 200] {
            let parts = expand_sharded(&items, shards, pool, |_, chunk| chunk.to_vec());
            let flat: Vec<usize> = parts.into_iter().flatten().collect();
            assert_eq!(flat, items, "shards = {shards}");
        }
    }

    #[test]
    fn shard_indices_are_distinct() {
        let items: Vec<u8> = vec![0; 64];
        let parts = expand_sharded(&items, 4, WorkerPool::global(), |i, _| i);
        assert_eq!(parts, vec![0, 1, 2, 3]);
    }

    #[test]
    fn governed_workers_drain_on_abort() {
        let items: Vec<usize> = (0..64).collect();
        let pool = WorkerPool::global();
        let gov = Governor::unlimited();
        let live = expand_sharded_governed(&items, 4, pool, &gov, |_, chunk| chunk.len());
        assert_eq!(live.iter().sum::<usize>(), 64, "untripped: full expansion");
        gov.cancel();
        let _ = gov.checkpoint();
        let drained = expand_sharded_governed(&items, 4, pool, &gov, |_, chunk| chunk.len());
        assert_eq!(
            drained.iter().sum::<usize>(),
            0,
            "tripped: every worker drains to the empty slice"
        );
        assert_eq!(drained.len(), 4, "merge still sees one result per shard");
    }
}
