//! Product reachability over `D × M`: the search underlying RPQ evaluation
//! (and the NL data-complexity bound of Lemma 1 / Lemma 3), in two forms.
//!
//! **Single-source** ([`reach_set`]): a BFS from one `(u, q₀)` seed that
//! visits each `(node, state)` pair at most once. The pair space is a dense
//! rectangle `|V_D| × |Q|`, so the visited set is a [`DenseBitSet`] indexed
//! by `node · |Q| + state` — no hashing — and each `Sym(a)` transition
//! expands over the merged per-`(node, a)` run (contiguous base-CSR range
//! chained with the delta-overlay range;
//! [`GraphDb::successors_with`] / [`GraphDb::predecessors_with`]) instead
//! of filtering the whole adjacency row.
//!
//! **Batched multi-source** ([`reach_all`]): the wavefront form. The solver's
//! candidate loops want `targets` for *many* sources of the *same* automaton;
//! running one BFS per source re-walks the shared explored region once per
//! source. `reach_all` instead runs ONE level-synchronous label-propagation
//! pass: every `(node, state)` cell carries a `u64` source-membership word
//! (sources are processed in stripes of 64, so arbitrarily many sources
//! cost `⌈k/64⌉` passes), a frontier cell ORs its membership into each
//! successor cell, and a cell re-enters the frontier only when its
//! membership grows. A sweep over `k` sources thus costs one pass over the
//! explored region per stripe instead of `k` passes.
//!
//! Frontier levels large enough to amortize thread spawns are sharded
//! across scoped workers via the shared frontier engine
//! ([`crate::frontier`]): membership words are merged with relaxed
//! `fetch_or`, and each worker records the cells it grew in a private
//! next-frontier structure merged at the level barrier — dense
//! [`DenseBitSet`]s OR-merged word-by-word when the frontier is a sizable
//! fraction of the rectangle, sparse dirty lists deduped through one
//! reused bitset otherwise, so per-level cost stays proportional to the
//! frontier, never to the whole `|V| · |Q|` rectangle.

use crate::frontier::{expand_sharded_governed, FrontierConfig};
use crate::governor::Governor;
use cxrpq_automata::{Label, Nfa, StateId};
use cxrpq_graph::{DenseBitSet, GraphDb, NodeId, Symbol};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// Walk direction through the database.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Follow out-edges (words read left to right).
    Forward,
    /// Follow in-edges with a reversed automaton.
    Backward,
}

/// Counts product states explored — the measured proxy for the paper's
/// space bounds in EXPERIMENTS.md.
///
/// The counter is atomic so sharded frontier workers can bump it directly;
/// all accesses are relaxed (it is a statistic, not a synchronization
/// point).
#[derive(Default, Debug)]
pub struct ReachStats {
    states: AtomicUsize,
}

impl ReachStats {
    /// States explored so far.
    pub fn states(&self) -> usize {
        self.states.load(Ordering::Relaxed)
    }

    pub(crate) fn bump(&self, n: usize) {
        self.states.fetch_add(n, Ordering::Relaxed);
    }

    /// Resets the counter.
    pub fn reset(&self) {
        self.states.store(0, Ordering::Relaxed);
    }
}

/// Reverses an NFA (language reversal): fresh start ε-connected to the old
/// finals; the old start becomes the unique final.
pub fn reverse_nfa(nfa: &Nfa) -> Nfa {
    let n = nfa.state_count();
    let mut out = Nfa::with_states(n + 1);
    let fresh = StateId(n as u32);
    out.set_start(fresh);
    for s in nfa.states() {
        for &(l, t) in nfa.transitions(s) {
            out.add_transition(t, l, s);
        }
    }
    for f in nfa.final_states() {
        out.add_transition(fresh, Label::Eps, f);
    }
    out.set_final(nfa.start(), true);
    out
}

/// Nodes `v` such that some path `u →* v` is labelled by a word of `L(M)`
/// (for `Direction::Backward`: nodes `v` with a path `v →* u` labelled by a
/// word of the *original* language — pass a reversed automaton).
///
/// Runs a BFS over the product `D × M` from `(u, closure(q₀))`, visiting
/// each `(node, state)` pair once: `O(|D| · |M|)` per call, the textbook
/// witness of the NL data-complexity upper bound.
pub fn reach_set(
    db: &GraphDb,
    nfa: &Nfa,
    u: NodeId,
    dir: Direction,
    stats: Option<&ReachStats>,
) -> HashSet<NodeId> {
    reach_set_scratch(db, nfa, u, dir, stats, &mut ReachScratch::default())
}

/// Reusable visited-set storage for repeated [`reach_set_scratch`] calls.
///
/// Zeroing a fresh `|V| · |Q|`-bit set per call costs `O(|V| · |Q| / 64)`
/// even when the explored region is tiny; a sweep over many sources (one
/// BFS per node) pays that memset per source. A scratch records the cells
/// it touched and clears exactly those afterwards, so the full zeroing
/// happens once and each search costs memory traffic proportional to the
/// region it actually explored.
#[derive(Default)]
pub struct ReachScratch {
    visited: DenseBitSet,
    touched: Vec<usize>,
}

impl ReachScratch {
    /// An all-clear visited set of capacity ≥ `cells` (grown on demand).
    fn ensure(&mut self, cells: usize) -> &mut DenseBitSet {
        if self.visited.capacity() < cells {
            self.visited = DenseBitSet::new(cells);
        }
        debug_assert!(self.touched.is_empty());
        &mut self.visited
    }
}

/// [`reach_set`] with caller-provided scratch storage (see
/// [`ReachScratch`]); the scratch is left all-clear for the next call.
pub fn reach_set_scratch(
    db: &GraphDb,
    nfa: &Nfa,
    u: NodeId,
    dir: Direction,
    stats: Option<&ReachStats>,
    scratch: &mut ReachScratch,
) -> HashSet<NodeId> {
    reach_set_governed(db, nfa, u, dir, stats, scratch, Governor::disabled())
}

/// [`reach_set_scratch`] under a [`Governor`]: the BFS checkpoints once per
/// popped product state and, when the governor trips, drains immediately —
/// returning the (sound, partial) subset of targets settled so far. The
/// scratch invariant (all-clear visited set) is restored on every exit
/// path, abort included.
pub fn reach_set_governed(
    db: &GraphDb,
    nfa: &Nfa,
    u: NodeId,
    dir: Direction,
    stats: Option<&ReachStats>,
    scratch: &mut ReachScratch,
    gov: &Governor,
) -> HashSet<NodeId> {
    let q = nfa.state_count();
    let cells = db.node_count() * q;
    if scratch.visited.capacity() < cells {
        gov.charge_mem(cells.div_ceil(8));
    }
    scratch.ensure(cells);
    let ReachScratch { visited, touched } = scratch;
    let mut out = HashSet::new();
    let mut queue: VecDeque<(NodeId, StateId)> = VecDeque::new();
    let push = |queue: &mut VecDeque<(NodeId, StateId)>,
                visited: &mut DenseBitSet,
                touched: &mut Vec<usize>,
                node: NodeId,
                st: StateId| {
        let cell = node.index() * q + st.index();
        if visited.insert(cell) {
            touched.push(cell);
            queue.push_back((node, st));
        }
    };
    push(&mut queue, visited, touched, u, nfa.start());
    while let Some((node, st)) = queue.pop_front() {
        if !gov.checkpoint() {
            break; // drain: partial `out` is a sound subset
        }
        if let Some(s) = stats {
            s.bump(1);
        }
        if nfa.is_final(st) {
            out.insert(node);
        }
        for &(l, t) in nfa.transitions(st) {
            match l {
                Label::Eps => push(&mut queue, visited, touched, node, t),
                Label::Sym(a) => {
                    let adj = match dir {
                        Direction::Forward => db.successors_with(node, a),
                        Direction::Backward => db.predecessors_with(node, a),
                    };
                    for (_, next) in adj {
                        push(&mut queue, visited, touched, next, t);
                    }
                }
                Label::Any => {
                    let adj = match dir {
                        Direction::Forward => db.out_edges(node),
                        Direction::Backward => db.in_edges(node),
                    };
                    for (_, next) in adj {
                        push(&mut queue, visited, touched, next, t);
                    }
                }
            }
        }
    }
    for cell in touched.drain(..) {
        visited.remove(cell);
    }
    out
}

/// Batched multi-source product reachability: for each `sources[i]`, the
/// same set [`reach_set`] would compute — but all sources of one stripe
/// share a single level-synchronous wavefront over `D × M` instead of
/// running `k` independent BFS walks.
///
/// Every `(node, state)` cell carries a source-membership `u64` (bit `i` =
/// "reachable from the stripe's `i`-th source in this product state");
/// frontier cells OR their membership into successor cells, and a cell
/// re-enters the frontier only when its membership grew. Sources beyond 64
/// are handled in stripes, so `k` sources cost `⌈k/64⌉` passes over the
/// explored region. Frontier levels are sharded across worker threads per
/// [`FrontierConfig::auto`]; use [`reach_all_with`] to pin the thread count
/// or force the serial path.
pub fn reach_all(
    db: &GraphDb,
    nfa: &Nfa,
    sources: &[NodeId],
    dir: Direction,
    stats: Option<&ReachStats>,
) -> Vec<HashSet<NodeId>> {
    reach_all_with(db, nfa, sources, dir, stats, &FrontierConfig::auto())
}

/// [`reach_all`] with explicit frontier-engine knobs (thread count and
/// serial-fallback threshold).
pub fn reach_all_with(
    db: &GraphDb,
    nfa: &Nfa,
    sources: &[NodeId],
    dir: Direction,
    stats: Option<&ReachStats>,
    cfg: &FrontierConfig,
) -> Vec<HashSet<NodeId>> {
    reach_all_scratch(
        db,
        nfa,
        sources,
        dir,
        stats,
        cfg,
        &mut WaveScratch::default(),
    )
}

/// Reusable membership storage for repeated [`reach_all_scratch`] calls
/// (the wavefront analogue of [`ReachScratch`]).
///
/// The membership array spans the full `|V| · |Q|` rectangle; zeroing it
/// per call (or per 64-source stripe) would cost `O(|V| · |Q| / 8)` bytes
/// of traffic even when the explored region is tiny. The scratch records
/// which cells each stripe brought to life and clears exactly those
/// afterwards, so the full zeroing happens once per capacity growth and
/// every wavefront costs memory traffic proportional to the region it
/// actually explored. Same story for the barrier-dedup bitset.
#[derive(Default)]
pub struct WaveScratch {
    member: Vec<AtomicU64>,
    dirty_seen: DenseBitSet,
}

impl WaveScratch {
    /// Grows the all-clear buffers to cover ≥ `cells` product cells.
    fn ensure(&mut self, cells: usize) {
        if self.member.len() < cells {
            let add = cells - self.member.len();
            self.member
                .extend(std::iter::repeat_with(|| AtomicU64::new(0)).take(add));
        }
        if self.dirty_seen.capacity() < cells {
            self.dirty_seen = DenseBitSet::new(cells);
        }
        debug_assert!(self.member[..cells]
            .iter()
            .all(|w| w.load(Ordering::Relaxed) == 0));
    }
}

/// [`reach_all_with`] with caller-provided membership storage (see
/// [`WaveScratch`]); the scratch is left all-clear for the next call.
pub fn reach_all_scratch(
    db: &GraphDb,
    nfa: &Nfa,
    sources: &[NodeId],
    dir: Direction,
    stats: Option<&ReachStats>,
    cfg: &FrontierConfig,
    scratch: &mut WaveScratch,
) -> Vec<HashSet<NodeId>> {
    reach_all_governed(
        db,
        nfa,
        sources,
        dir,
        stats,
        cfg,
        scratch,
        Governor::disabled(),
    )
}

/// [`reach_all_scratch`] under a [`Governor`]: one checkpoint per wavefront
/// level (fuel proportional to the level's size), with sharded workers
/// observing the abort flag mid-slice and draining. An aborted stripe still
/// harvests what it settled — a sound partial subset per source — and the
/// scratch invariant (all-clear membership words) is restored on every exit
/// path, abort included.
#[allow(clippy::too_many_arguments)]
pub fn reach_all_governed(
    db: &GraphDb,
    nfa: &Nfa,
    sources: &[NodeId],
    dir: Direction,
    stats: Option<&ReachStats>,
    cfg: &FrontierConfig,
    scratch: &mut WaveScratch,
    gov: &Governor,
) -> Vec<HashSet<NodeId>> {
    let q = nfa.state_count();
    let n = db.node_count();
    let cells = n * q;
    let mut out: Vec<HashSet<NodeId>> = vec![HashSet::new(); sources.len()];
    if cells == 0 {
        return out;
    }
    let mut is_final = vec![false; q];
    for f in nfa.final_states() {
        is_final[f.index()] = true;
    }
    if scratch.member.len() < cells {
        gov.charge_mem((cells - scratch.member.len()) * 8);
    }
    if scratch.dirty_seen.capacity() < cells {
        gov.charge_mem(cells.div_ceil(8));
    }
    scratch.ensure(cells);
    let WaveScratch { member, dirty_seen } = scratch;
    let member = &member[..cells];
    // Cells whose membership went 0 → nonzero this stripe — exactly the
    // explored region, recorded so the harvest and the clearing pass never
    // touch the rest of the rectangle. Exactly one `fetch_or` observes the
    // zero, so each cell is recorded once even under sharding.
    let mut touched: Vec<usize> = Vec::new();
    for (stripe, chunk) in sources.chunks(64).enumerate() {
        if gov.is_aborted() {
            break; // later stripes stay empty (sound) — nothing to zero yet
        }
        // OR `bits` into a cell's membership; a cell whose membership
        // grows is marked dirty and re-enters the frontier at the next
        // level, and a cell alive for the first time lands in `born`.
        // Returns the number of membership bits that were new — summed
        // up, that is exactly the `(state, source)` visit count a
        // per-source sweep would report to [`ReachStats`]. Relaxed
        // ordering suffices: membership words only ever grow, and the
        // level barrier (thread join) orders the final reads.
        let propagate =
            |cell: usize, bits: u64, mark: &mut dyn FnMut(usize), born: &mut Vec<usize>| {
                let prev = member[cell].fetch_or(bits, Ordering::Relaxed);
                if prev == 0 && bits != 0 {
                    born.push(cell);
                }
                let fresh = bits & !prev;
                if fresh != 0 {
                    mark(cell);
                }
                fresh.count_ones() as usize
            };
        // Expand one frontier cell over the automaton's transitions and
        // the CSR adjacency, reporting grown cells through `mark` and
        // first-time cells through `born`.
        let expand_cell = |cell: usize, mark: &mut dyn FnMut(usize), born: &mut Vec<usize>| {
            let (node, st) = (NodeId((cell / q) as u32), StateId((cell % q) as u32));
            // The freshest membership available: bits merged by concurrent
            // workers this level ride along early, bits that land after
            // this load re-dirty the cell and re-propagate next level.
            let bits = member[cell].load(Ordering::Relaxed);
            let mut visits = 0usize;
            for &(l, t) in nfa.transitions(st) {
                match l {
                    Label::Eps => {
                        visits += propagate(node.index() * q + t.index(), bits, mark, born);
                    }
                    Label::Sym(a) => {
                        let adj = match dir {
                            Direction::Forward => db.successors_with(node, a),
                            Direction::Backward => db.predecessors_with(node, a),
                        };
                        for (_, next) in adj {
                            visits += propagate(next.index() * q + t.index(), bits, mark, born);
                        }
                    }
                    Label::Any => {
                        let adj = match dir {
                            Direction::Forward => db.out_edges(node),
                            Direction::Backward => db.in_edges(node),
                        };
                        for (_, next) in adj {
                            visits += propagate(next.index() * q + t.index(), bits, mark, born);
                        }
                    }
                }
            }
            visits
        };
        let mut seeds: Vec<usize> = Vec::new();
        let mut visits = 0usize;
        for (i, &src) in chunk.iter().enumerate() {
            let cell = src.index() * q + nfa.start().index();
            visits += propagate(cell, 1 << i, &mut |c| seeds.push(c), &mut touched);
        }
        let mut frontier: Vec<usize> = Vec::with_capacity(seeds.len());
        for cell in seeds {
            if dirty_seen.insert(cell) {
                frontier.push(cell);
            }
        }
        for &cell in &frontier {
            dirty_seen.remove(cell);
        }
        while !frontier.is_empty() {
            if !gov.checkpoint_n(frontier.len() as u64) {
                break; // drain: harvest what this stripe settled so far
            }
            let shards = cfg.shards_for(frontier.len());
            if frontier.len() >= cells / 8 {
                // Fat frontier: private dense next-frontier bitsets whose
                // words are OR-merged at the level barrier — O(cells/64)
                // words per shard, amortized by the frontier itself.
                let shard_results =
                    expand_sharded_governed(&frontier, shards, cfg.pool(), gov, |_, slice| {
                        gov.charge_mem(cells.div_ceil(8));
                        let mut dirty = DenseBitSet::new(cells);
                        let mut born: Vec<usize> = Vec::new();
                        let mut shard_visits = 0usize;
                        for (i, &cell) in slice.iter().enumerate() {
                            if i & 63 == 0 && gov.is_aborted() {
                                break; // worker observes the flag and drains
                            }
                            shard_visits += expand_cell(
                                cell,
                                &mut |c| {
                                    dirty.insert(c);
                                },
                                &mut born,
                            );
                        }
                        (dirty, born, shard_visits)
                    });
                let mut merged: Option<DenseBitSet> = None;
                for (d, born, v) in shard_results {
                    visits += v;
                    touched.extend(born);
                    match &mut merged {
                        None => merged = Some(d),
                        Some(m) => m.union_with(&d),
                    }
                }
                frontier = merged.expect("at least one shard").ones().collect();
            } else {
                // Thin frontier: private sparse dirty lists (possibly with
                // duplicates), deduped through the reused scratch bitset —
                // per-level cost proportional to the frontier, never to
                // the whole `|V| · |Q|` rectangle.
                let shard_results =
                    expand_sharded_governed(&frontier, shards, cfg.pool(), gov, |_, slice| {
                        let mut dirty: Vec<usize> = Vec::with_capacity(slice.len());
                        let mut born: Vec<usize> = Vec::new();
                        let mut shard_visits = 0usize;
                        for (i, &cell) in slice.iter().enumerate() {
                            if i & 63 == 0 && gov.is_aborted() {
                                break; // worker observes the flag and drains
                            }
                            shard_visits += expand_cell(cell, &mut |c| dirty.push(c), &mut born);
                        }
                        (dirty, born, shard_visits)
                    });
                let mut next: Vec<usize> = Vec::new();
                for (dirty, born, shard_visits) in shard_results {
                    visits += shard_visits;
                    touched.extend(born);
                    for cell in dirty {
                        if dirty_seen.insert(cell) {
                            next.push(cell);
                        }
                    }
                }
                for &cell in &next {
                    dirty_seen.remove(cell);
                }
                frontier = next;
            }
        }
        if let Some(s) = stats {
            s.bump(visits);
        }
        // Harvest over the explored region only: a touched cell in a final
        // state contributes its node to every member source's answer set.
        // Then restore the scratch invariant by zeroing exactly the
        // touched cells.
        for &cell in &touched {
            if is_final[cell % q] {
                let mut bits = member[cell].load(Ordering::Relaxed);
                while bits != 0 {
                    let i = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    out[stripe * 64 + i].insert(NodeId((cell / q) as u32));
                }
            }
        }
        for cell in touched.drain(..) {
            member[cell].store(0, Ordering::Relaxed);
        }
    }
    out
}

/// Memoizing wrapper around [`reach_set`] for repeated queries against the
/// same database (one cache per `(edge automaton, direction)`).
///
/// Entries are keyed by [`NodeId`] alone, so the cache is only meaningful
/// against one database: on first use it binds to that database's
/// [`GraphDb::generation`], and any later call against a database with a
/// different generation rebinds (stale node-keyed answers are never
/// served).
///
/// Invalidation is *label-aware*: on a generation change the cache asks
/// [`GraphDb::delta_since`] which labels were appended since the bound
/// generation. When the answer is known and disjoint from the automaton's
/// symbol footprint (its `Sym` labels; an automaton with any `Any`
/// transition touches every label), the memoized fills are provably still
/// correct and are kept. Unknown ancestry — a different database, a
/// divergent clone, or truncated append history — drops everything
/// wholesale, as before.
pub struct ReachCache {
    nfa: Nfa,
    rev: Nfa,
    /// Sorted distinct `Sym` labels of `nfa` (the automaton's footprint).
    syms: Vec<Symbol>,
    /// Whether `nfa` has an `Any` transition (footprint = whole alphabet).
    uses_any: bool,
    generation: Option<u64>,
    fwd: HashMap<NodeId, std::rc::Rc<HashSet<NodeId>>>,
    bwd: HashMap<NodeId, std::rc::Rc<HashSet<NodeId>>>,
    /// Sorted ascending views of `fwd`/`bwd` entries, materialized lazily
    /// once per `(source, direction)` for the leapfrog enumerator's
    /// multiway intersections and the solver's sorted candidate sweeps.
    /// Invalidation rides the same label-aware `bind` as the sets.
    fwd_sorted: HashMap<NodeId, std::rc::Rc<[NodeId]>>,
    bwd_sorted: HashMap<NodeId, std::rc::Rc<[NodeId]>>,
    scratch: ReachScratch,
    wave: WaveScratch,
    gov: Option<Arc<Governor>>,
    /// Exploration statistics shared by both directions.
    pub stats: ReachStats,
}

impl ReachCache {
    /// Builds the cache for an edge automaton.
    pub fn new(nfa: Nfa) -> Self {
        let rev = reverse_nfa(&nfa);
        let mut syms = Vec::new();
        let mut uses_any = false;
        for s in 0..nfa.state_count() {
            for &(l, _) in nfa.transitions(StateId(s as u32)) {
                match l {
                    Label::Sym(a) => syms.push(a),
                    Label::Any => uses_any = true,
                    Label::Eps => {}
                }
            }
        }
        syms.sort_unstable();
        syms.dedup();
        Self {
            nfa,
            rev,
            syms,
            uses_any,
            generation: None,
            fwd: HashMap::new(),
            bwd: HashMap::new(),
            fwd_sorted: HashMap::new(),
            bwd_sorted: HashMap::new(),
            scratch: ReachScratch::default(),
            wave: WaveScratch::default(),
            gov: None,
            stats: ReachStats::default(),
        }
    }

    /// Attaches (or detaches, with `None`) a [`Governor`]: every search the
    /// cache runs checkpoints against it, and a fill interrupted by a trip
    /// is **never memoized** — no partially-filled stripe survives an
    /// abort, so a query repeated after an abort recomputes from a
    /// consistent cache instead of serving truncated reach sets.
    pub fn govern(&mut self, gov: Option<Arc<Governor>>) {
        self.gov = gov;
    }

    fn governor(&self) -> &Governor {
        self.gov.as_deref().unwrap_or(Governor::disabled())
    }

    /// The underlying forward automaton.
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// The generation of the database this cache is bound to (`None` until
    /// first use).
    pub fn bound_generation(&self) -> Option<u64> {
        self.generation
    }

    /// Binds the cache to `db`, dropping memoized entries when they may
    /// have been computed against different adjacency.
    ///
    /// Fills survive a rebind when `db` proves (via
    /// [`GraphDb::delta_since`]) that every label appended since the bound
    /// generation lies outside the automaton's symbol footprint — those
    /// arcs can never appear in this automaton's product searches, so the
    /// cached reach sets are unchanged.
    fn bind(&mut self, db: &GraphDb) {
        match self.generation {
            Some(g) if g == db.generation() => {}
            Some(g) => {
                let keep = match db.delta_since(g) {
                    Some(changed) => {
                        changed.is_empty()
                            || (!self.uses_any
                                && changed.iter().all(|a| self.syms.binary_search(a).is_err()))
                    }
                    None => false,
                };
                if !keep {
                    self.fwd.clear();
                    self.bwd.clear();
                    self.fwd_sorted.clear();
                    self.bwd_sorted.clear();
                }
                self.generation = Some(db.generation());
            }
            None => self.generation = Some(db.generation()),
        }
    }

    /// Targets reachable from `u` via an accepted word.
    pub fn targets(&mut self, db: &GraphDb, u: NodeId) -> std::rc::Rc<HashSet<NodeId>> {
        self.bind(db);
        if let Some(r) = self.fwd.get(&u) {
            return r.clone();
        }
        let r = std::rc::Rc::new(reach_set_governed(
            db,
            &self.nfa,
            u,
            Direction::Forward,
            Some(&self.stats),
            &mut self.scratch,
            self.gov.as_deref().unwrap_or(Governor::disabled()),
        ));
        if !self.governor().is_aborted() {
            self.governor().charge_mem(r.len() * 8 + 48);
            self.fwd.insert(u, r.clone());
        }
        r
    }

    /// [`ReachCache::fill_targets`] with an explicit fill strategy.
    ///
    /// `per_source = true` memoizes each missing source with its own
    /// scratch BFS instead of the shared wavefront — the right call on
    /// long-diameter graphs, where staggered membership arrivals make the
    /// wavefront re-expand cells (see the adaptive probe in
    /// [`crate::domains`]). Both strategies leave the cache in the same
    /// state; only the traversal cost differs.
    pub fn fill_targets_with(&mut self, db: &GraphDb, sources: &[NodeId], per_source: bool) {
        if per_source {
            self.bind(db);
            for u in self.missing(sources, true) {
                if self.governor().is_aborted() {
                    break;
                }
                self.targets(db, u);
            }
        } else {
            self.fill_targets(db, sources);
        }
    }

    /// The backward counterpart of [`ReachCache::fill_targets_with`].
    pub fn fill_sources_with(&mut self, db: &GraphDb, sinks: &[NodeId], per_source: bool) {
        if per_source {
            self.bind(db);
            for v in self.missing(sinks, false) {
                if self.governor().is_aborted() {
                    break;
                }
                self.sources(db, v);
            }
        } else {
            self.fill_sources(db, sinks);
        }
    }

    /// Batch path: memoizes `targets` for every node of `sources` that is
    /// not already cached, in one multi-source wavefront ([`reach_all`])
    /// instead of one BFS per node.
    ///
    /// Solver candidate loops that are about to sweep many sources of this
    /// automaton call this first — typically restricted to the current
    /// candidate domain of the source variable (see [`crate::domains`]),
    /// never blindly to all of `db.nodes()`; the per-source
    /// [`ReachCache::targets`] lookups that follow are then memo hits.
    pub fn fill_targets(&mut self, db: &GraphDb, sources: &[NodeId]) {
        self.bind(db);
        let missing = self.missing(sources, true);
        match missing.len() {
            0 => {}
            1 => {
                self.targets(db, missing[0]);
            }
            _ => {
                let sets = reach_all_governed(
                    db,
                    &self.nfa,
                    &missing,
                    Direction::Forward,
                    Some(&self.stats),
                    &FrontierConfig::auto(),
                    &mut self.wave,
                    self.gov.as_deref().unwrap_or(Governor::disabled()),
                );
                if self.governor().is_aborted() {
                    return; // abort hygiene: never retain a partial stripe
                }
                for (src, set) in missing.into_iter().zip(sets) {
                    self.governor().charge_mem(set.len() * 8 + 48);
                    self.fwd.insert(src, std::rc::Rc::new(set));
                }
            }
        }
    }

    /// Batch path for the backward direction: memoizes `sources` for every
    /// node of `sinks` not already cached, via one wavefront over the
    /// reversed automaton.
    pub fn fill_sources(&mut self, db: &GraphDb, sinks: &[NodeId]) {
        self.bind(db);
        let missing = self.missing(sinks, false);
        match missing.len() {
            0 => {}
            1 => {
                self.sources(db, missing[0]);
            }
            _ => {
                let sets = reach_all_governed(
                    db,
                    &self.rev,
                    &missing,
                    Direction::Backward,
                    Some(&self.stats),
                    &FrontierConfig::auto(),
                    &mut self.wave,
                    self.gov.as_deref().unwrap_or(Governor::disabled()),
                );
                if self.governor().is_aborted() {
                    return; // abort hygiene: never retain a partial stripe
                }
                for (v, set) in missing.into_iter().zip(sets) {
                    self.governor().charge_mem(set.len() * 8 + 48);
                    self.bwd.insert(v, std::rc::Rc::new(set));
                }
            }
        }
    }

    /// [`ReachCache::targets`] as a sorted ascending row, materialized once
    /// per source and memoized alongside the set (shared via `Rc`, so
    /// repeat visits and concurrent leapfrog sets cost one clone). An
    /// aborted fill returns its (sound, partial) row unmemoized — the same
    /// abort hygiene as the sets.
    pub fn targets_sorted(&mut self, db: &GraphDb, u: NodeId) -> std::rc::Rc<[NodeId]> {
        self.bind(db);
        if let Some(r) = self.fwd_sorted.get(&u) {
            return r.clone();
        }
        let set = self.targets(db, u);
        let mut row: Vec<NodeId> = set.iter().copied().collect();
        row.sort_unstable();
        let row: std::rc::Rc<[NodeId]> = row.into();
        if !self.governor().is_aborted() {
            self.governor().charge_mem(row.len() * 4 + 48);
            self.fwd_sorted.insert(u, row.clone());
        }
        row
    }

    /// The backward counterpart of [`ReachCache::targets_sorted`].
    pub fn sources_sorted(&mut self, db: &GraphDb, v: NodeId) -> std::rc::Rc<[NodeId]> {
        self.bind(db);
        if let Some(r) = self.bwd_sorted.get(&v) {
            return r.clone();
        }
        let set = self.sources(db, v);
        let mut row: Vec<NodeId> = set.iter().copied().collect();
        row.sort_unstable();
        let row: std::rc::Rc<[NodeId]> = row.into();
        if !self.governor().is_aborted() {
            self.governor().charge_mem(row.len() * 4 + 48);
            self.bwd_sorted.insert(v, row.clone());
        }
        row
    }

    /// The distinct nodes of `keys` with no memoized entry in the given
    /// direction.
    fn missing(&self, keys: &[NodeId], forward: bool) -> Vec<NodeId> {
        let map = if forward { &self.fwd } else { &self.bwd };
        let mut seen = HashSet::new();
        keys.iter()
            .copied()
            .filter(|k| !map.contains_key(k) && seen.insert(*k))
            .collect()
    }

    /// Sources that reach `v` via an accepted word.
    pub fn sources(&mut self, db: &GraphDb, v: NodeId) -> std::rc::Rc<HashSet<NodeId>> {
        self.bind(db);
        if let Some(r) = self.bwd.get(&v) {
            return r.clone();
        }
        let r = std::rc::Rc::new(reach_set_governed(
            db,
            &self.rev,
            v,
            Direction::Backward,
            Some(&self.stats),
            &mut self.scratch,
            self.gov.as_deref().unwrap_or(Governor::disabled()),
        ));
        if !self.governor().is_aborted() {
            self.governor().charge_mem(r.len() * 8 + 48);
            self.bwd.insert(v, r.clone());
        }
        r
    }

    /// Whether some path `u →* v` is labelled by an accepted word.
    ///
    /// When neither endpoint is memoized yet, the direction is picked by
    /// CSR degree — but only when the comparison is decisive: a `v` with an
    /// empty in-row makes the backward search trivially cheap (the product
    /// never leaves `v`'s row, `O(|Q|)` instead of `u`'s full forward
    /// cone). For any nonzero in-degree the search stays forward, because
    /// `fwd[u]` is reused by every later probe against the same `u` —
    /// flipping direction per call would trade one memoized forward BFS
    /// for a fresh backward BFS per distinct `v`.
    pub fn connects(&mut self, db: &GraphDb, u: NodeId, v: NodeId) -> bool {
        self.bind(db);
        if let Some(r) = self.fwd.get(&u) {
            return r.contains(&v);
        }
        if let Some(r) = self.bwd.get(&v) {
            return r.contains(&u);
        }
        if db.in_edges(v).is_empty() && !db.out_edges(u).is_empty() {
            self.sources(db, v).contains(&u)
        } else {
            self.targets(db, u).contains(&v)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxrpq_automata::parse_regex;
    use cxrpq_graph::{Alphabet, GraphBuilder};
    use std::sync::Arc;

    fn line_db(word: &str) -> (GraphDb, Vec<NodeId>) {
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = GraphBuilder::new(alpha);
        let w = db.alphabet().parse_word(word).unwrap();
        let nodes: Vec<NodeId> = (0..=w.len()).map(|_| db.add_node()).collect();
        for (i, &s) in w.iter().enumerate() {
            db.add_edge(nodes[i], s, nodes[i + 1]);
        }
        (db.freeze(), nodes)
    }

    fn nfa_of(db: &GraphDb, s: &str) -> Nfa {
        let mut a = db.alphabet().clone();
        Nfa::from_regex(&parse_regex(s, &mut a).unwrap())
    }

    #[test]
    fn forward_reach_on_line() {
        let (db, nodes) = line_db("aabba");
        let m = nfa_of(&db, "a*");
        let r = reach_set(&db, &m, nodes[0], Direction::Forward, None);
        assert_eq!(r, HashSet::from([nodes[0], nodes[1], nodes[2]]));
        let m2 = nfa_of(&db, "a*b");
        let r2 = reach_set(&db, &m2, nodes[0], Direction::Forward, None);
        assert_eq!(r2, HashSet::from([nodes[3]]));
    }

    #[test]
    fn backward_reach_matches_forward() {
        let (db, nodes) = line_db("abcab");
        let m = nfa_of(&db, "a(b|c)");
        let mut cache = ReachCache::new(m);
        // Forward from n0: {n2}; so sources of n2 must contain n0.
        assert!(cache.targets(&db, nodes[0]).contains(&nodes[2]));
        assert!(cache.sources(&db, nodes[2]).contains(&nodes[0]));
        assert!(!cache.sources(&db, nodes[1]).contains(&nodes[0]));
        assert!(cache.connects(&db, nodes[3], nodes[5])); // "ab"? n3-a->n4-b->n5 ✓
    }

    #[test]
    fn epsilon_language_reaches_self() {
        let (db, nodes) = line_db("ab");
        let m = nfa_of(&db, "_");
        let r = reach_set(&db, &m, nodes[1], Direction::Forward, None);
        assert_eq!(r, HashSet::from([nodes[1]]));
    }

    #[test]
    fn any_transitions_work_backwards() {
        let (db, nodes) = line_db("abc");
        let m = nfa_of(&db, "..");
        let mut cache = ReachCache::new(m);
        assert!(cache.sources(&db, nodes[2]).contains(&nodes[0]));
        assert!(cache.sources(&db, nodes[3]).contains(&nodes[1]));
        assert!(!cache.sources(&db, nodes[3]).contains(&nodes[0]));
    }

    #[test]
    fn stats_count_states() {
        let (db, nodes) = line_db("aaaa");
        let m = nfa_of(&db, "a*");
        let stats = ReachStats::default();
        reach_set(&db, &m, nodes[0], Direction::Forward, Some(&stats));
        assert!(stats.states() > 0);
    }

    #[test]
    fn reverse_nfa_reverses_language() {
        let alpha = Alphabet::from_chars("ab");
        let mut a2 = alpha.clone();
        let r = parse_regex("ab*", &mut a2).unwrap();
        let m = Nfa::from_regex(&r);
        let rev = reverse_nfa(&m);
        // Reverse of a·b* is b*·a.
        let w = |s: &str| alpha.parse_word(s).unwrap();
        assert!(rev.accepts(&w("a")));
        assert!(rev.accepts(&w("bba")));
        assert!(!rev.accepts(&w("ab")));
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let (db, nodes) = line_db("aabba");
        let m = nfa_of(&db, "a*b");
        let mut scratch = ReachScratch::default();
        for &n in &nodes {
            let fresh = reach_set(&db, &m, n, Direction::Forward, None);
            let reused = reach_set_scratch(&db, &m, n, Direction::Forward, None, &mut scratch);
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn reach_all_matches_per_source_everywhere() {
        let (db, nodes) = line_db("aabbaacab");
        for pat in ["a*", "a*b", "(a|b)*c", "..", "_"] {
            let m = nfa_of(&db, pat);
            let batched = reach_all(&db, &m, &nodes, Direction::Forward, None);
            for (i, &n) in nodes.iter().enumerate() {
                let single = reach_set(&db, &m, n, Direction::Forward, None);
                assert_eq!(batched[i], single, "pattern {pat}, source {i}");
            }
            let rev = reverse_nfa(&m);
            let bwd = reach_all(&db, &rev, &nodes, Direction::Backward, None);
            for (i, &n) in nodes.iter().enumerate() {
                let single = reach_set(&db, &rev, n, Direction::Backward, None);
                assert_eq!(bwd[i], single, "backward pattern {pat}, source {i}");
            }
        }
    }

    #[test]
    fn reach_all_stripes_beyond_64_sources() {
        // 81 edges → 82 nodes: two membership stripes.
        let (db, nodes) = line_db(&"abc".repeat(27));
        assert!(nodes.len() > 64);
        let m = nfa_of(&db, "(abc)*");
        let batched = reach_all(&db, &m, &nodes, Direction::Forward, None);
        for (i, &n) in nodes.iter().enumerate() {
            assert_eq!(
                batched[i],
                reach_set(&db, &m, n, Direction::Forward, None),
                "source {i}"
            );
        }
        // Duplicate sources each get their own (equal) answer set.
        let dup = [nodes[0], nodes[0], nodes[3]];
        let sets = reach_all(&db, &m, &dup, Direction::Forward, None);
        assert_eq!(sets[0], sets[1]);
        assert_eq!(
            sets[2],
            reach_set(&db, &m, nodes[3], Direction::Forward, None)
        );
    }

    #[test]
    fn reach_all_forced_parallel_matches_serial() {
        let (db, nodes) = line_db(&"ab".repeat(40));
        let m = nfa_of(&db, "(ab)*(a|_)");
        let parallel = FrontierConfig::with_threads(4).with_serial_threshold(0);
        let fast = reach_all_with(&db, &m, &nodes, Direction::Forward, None, &parallel);
        let slow = reach_all_with(
            &db,
            &m,
            &nodes,
            Direction::Forward,
            None,
            &FrontierConfig::serial(),
        );
        assert_eq!(fast, slow);
    }

    #[test]
    fn fill_targets_prememoizes_the_sweep() {
        let (db, nodes) = line_db("abcabc");
        let m = nfa_of(&db, "(a|b|c)+");
        let mut cache = ReachCache::new(m.clone());
        cache.fill_targets(&db, &nodes);
        cache.fill_sources(&db, &nodes);
        for &n in &nodes {
            assert_eq!(
                *cache.targets(&db, n),
                reach_set(&db, &m, n, Direction::Forward, None)
            );
            assert_eq!(
                *cache.sources(&db, n),
                reach_set(&db, &reverse_nfa(&m), n, Direction::Backward, None)
            );
        }
        assert!(cache.stats.states() > 0);
    }

    #[test]
    fn connects_from_the_sparser_endpoint_agrees() {
        // A fan: hub -a-> leaf_i; from the hub the out-row is wide, every
        // leaf's in-row has one arc — both directions must agree.
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let mut b = GraphBuilder::new(alpha);
        let a = b.alphabet().sym("a");
        let hub = b.add_node();
        let leaves: Vec<NodeId> = (0..8).map(|_| b.add_node()).collect();
        for &l in &leaves {
            b.add_edge(hub, a, l);
        }
        let db = b.freeze();
        let m = nfa_of(&db, "a");
        let mut cache = ReachCache::new(m);
        for &l in &leaves {
            assert!(cache.connects(&db, hub, l));
            assert!(!cache.connects(&db, l, hub));
        }
    }

    #[test]
    fn cache_invalidates_across_databases() {
        // Same node ids, different graphs: a stale cache would claim n0
        // reaches n2 in the second database too.
        let (db1, n1) = line_db("aa");
        let (db2, n2) = line_db("bb");
        assert_ne!(db1.generation(), db2.generation());
        let m = nfa_of(&db1, "aa");
        let mut cache = ReachCache::new(m);
        assert!(cache.targets(&db1, n1[0]).contains(&n1[2]));
        assert_eq!(cache.bound_generation(), Some(db1.generation()));
        // Rebinding against db2 must not serve db1's memoized answer.
        assert!(!cache.targets(&db2, n2[0]).contains(&n2[2]));
        assert_eq!(cache.bound_generation(), Some(db2.generation()));
        assert!(!cache.connects(&db2, n2[0], n2[2]));
        // And back: recomputed, still correct.
        assert!(cache.connects(&db1, n1[0], n1[2]));
    }

    #[test]
    fn cache_survives_appends_outside_its_footprint() {
        let (mut db, n) = line_db("aa");
        let c = db.alphabet().sym("c");
        let m = nfa_of(&db, "aa");
        let mut cache = ReachCache::new(m);
        let before = cache.targets(&db, n[0]);
        assert!(before.contains(&n[2]));
        let explored = cache.stats.states();
        // A `c`-labelled arc can never participate in an `aa` product
        // search: the fill must survive the rebind as a memo hit.
        assert!(db.append(n[2], c, n[0]));
        let after = cache.targets(&db, n[0]);
        assert_eq!(before, after);
        assert_eq!(
            cache.stats.states(),
            explored,
            "unrelated-label append must not trigger recomputation"
        );
        assert_eq!(cache.bound_generation(), Some(db.generation()));
        // Node-only appends are label-free and also keep the fills.
        db.append_node();
        cache.targets(&db, n[0]);
        assert_eq!(cache.stats.states(), explored);
    }

    #[test]
    fn cache_invalidates_on_footprint_overlap() {
        let (mut db, n) = line_db("aa");
        let a = db.alphabet().sym("a");
        let m = nfa_of(&db, "aa");
        let mut cache = ReachCache::new(m);
        assert!(cache.targets(&db, n[1]).is_empty());
        let explored = cache.stats.states();
        // Close the a-cycle: n1 -a-> n2 -a-> n0 now spells `aa`. The cached
        // answer is stale and must be recomputed, not served.
        assert!(db.append(n[2], a, n[0]));
        assert!(cache.targets(&db, n[1]).contains(&n[0]));
        assert!(cache.stats.states() > explored);
    }

    #[test]
    fn any_automaton_invalidates_on_every_label() {
        let (mut db, n) = line_db("aa");
        let c = db.alphabet().sym("c");
        // Σ-step automaton: reads exactly one arc of any label.
        let mut m = Nfa::with_states(2);
        m.add_transition(StateId(0), Label::Any, StateId(1));
        m.set_final(StateId(1), true);
        let mut cache = ReachCache::new(m);
        assert!(!cache.targets(&db, n[2]).contains(&n[0]));
        // `c` is outside the automaton's Sym set, but `Any` reads it.
        assert!(db.append(n[2], c, n[0]));
        assert!(cache.targets(&db, n[2]).contains(&n[0]));
    }

    #[test]
    fn divergent_clone_drops_the_cache() {
        let (db1, n) = line_db("aa");
        let b_sym = db1.alphabet().sym("b");
        let mut db2 = db1.clone();
        let m = nfa_of(&db1, "b");
        let mut cache = ReachCache::new(m);
        assert!(cache.targets(&db1, n[0]).is_empty());
        // db2 diverged: its generation is unknown to db1's history and
        // vice versa, so the cache must not trust label reasoning.
        assert!(db2.append(n[0], b_sym, n[1]));
        assert!(cache.targets(&db2, n[0]).contains(&n[1]));
        assert!(cache.targets(&db1, n[0]).is_empty());
    }

    #[test]
    fn governed_reach_set_returns_sound_subset() {
        let (db, nodes) = line_db("aabbaacab");
        let m = nfa_of(&db, "(a|b|c)*");
        let full = reach_set(&db, &m, nodes[0], Direction::Forward, None);
        let mut scratch = ReachScratch::default();
        for fuel in 0..20u64 {
            let gov = Governor::unlimited().with_max_steps(fuel);
            let partial = reach_set_governed(
                &db,
                &m,
                nodes[0],
                Direction::Forward,
                None,
                &mut scratch,
                &gov,
            );
            assert!(
                partial.is_subset(&full),
                "fuel {fuel}: partial must under-approximate"
            );
            // The scratch invariant survives the abort: an ungoverned rerun
            // through the same scratch still computes the full answer.
            let again =
                reach_set_scratch(&db, &m, nodes[0], Direction::Forward, None, &mut scratch);
            assert_eq!(again, full, "fuel {fuel}: scratch left dirty by abort");
        }
    }

    #[test]
    fn aborted_fill_targets_leaves_no_partial_stripe() {
        // Regression (abort hygiene): a fill_targets batch interrupted at
        // ANY checkpoint must memoize nothing — every later `connects`
        // answer must match a never-aborted cache exactly.
        let (db, nodes) = line_db(&"abc".repeat(27)); // >64 sources: 2 stripes
        let m = nfa_of(&db, "(a|b|c)+");
        let mut reference = ReachCache::new(m.clone());
        reference.fill_targets(&db, &nodes);
        // Learn the checkpoint span of one ungoverned fill via a dry run.
        let counting = Arc::new(Governor::unlimited());
        let mut dry = ReachCache::new(m.clone());
        dry.govern(Some(counting.clone()));
        dry.fill_targets(&db, &nodes);
        let span = counting.checkpoints_seen();
        assert!(span > 0);
        for k in 1..=span {
            let gov = Arc::new(Governor::unlimited().with_injection(k));
            let mut cache = ReachCache::new(m.clone());
            cache.govern(Some(gov.clone()));
            cache.fill_targets(&db, &nodes);
            assert!(gov.is_aborted(), "injection at {k} must trip");
            // Detach the governor: the cache must now answer from scratch,
            // identically to the never-aborted reference.
            cache.govern(None);
            for &u in &nodes {
                for &v in &nodes {
                    assert_eq!(
                        cache.connects(&db, u, v),
                        reference.connects(&db, u, v),
                        "inject k={k}: partial stripe retained for ({u:?}, {v:?})"
                    );
                }
            }
        }
    }

    #[test]
    fn aborted_fill_sources_leaves_no_partial_stripe() {
        let (db, nodes) = line_db(&"abc".repeat(27));
        let m = nfa_of(&db, "(abc)*");
        let mut reference = ReachCache::new(m.clone());
        reference.fill_sources(&db, &nodes);
        let counting = Arc::new(Governor::unlimited());
        let mut dry = ReachCache::new(m.clone());
        dry.govern(Some(counting.clone()));
        dry.fill_sources(&db, &nodes);
        let span = counting.checkpoints_seen();
        // Sample the span (every k would be quadratic in test time).
        for k in (1..=span).step_by((span as usize / 16).max(1)) {
            let gov = Arc::new(Governor::unlimited().with_injection(k));
            let mut cache = ReachCache::new(m.clone());
            cache.govern(Some(gov.clone()));
            cache.fill_sources(&db, &nodes);
            assert!(gov.is_aborted());
            cache.govern(None);
            for &v in &nodes {
                assert_eq!(
                    *cache.sources(&db, v),
                    *reference.sources(&db, v),
                    "inject k={k}: partial backward stripe retained at {v:?}"
                );
            }
        }
    }

    #[test]
    fn aborted_single_source_search_is_not_memoized() {
        let (db, nodes) = line_db("aabbaacab");
        let m = nfa_of(&db, "(a|b|c)*");
        let mut cache = ReachCache::new(m.clone());
        let gov = Arc::new(Governor::unlimited().with_max_steps(2));
        cache.govern(Some(gov.clone()));
        let partial = cache.targets(&db, nodes[0]);
        assert!(gov.is_aborted());
        cache.govern(None);
        let full = cache.targets(&db, nodes[0]);
        assert_eq!(
            *full,
            reach_set(&db, &m, nodes[0], Direction::Forward, None),
            "truncated reach set was memoized"
        );
        assert!(partial.is_subset(&full));
    }

    #[test]
    fn cancelled_wavefront_drains_and_zeroes_scratch() {
        let (db, nodes) = line_db(&"ab".repeat(40));
        let m = nfa_of(&db, "(ab)*(a|_)");
        let gov = Governor::unlimited();
        gov.cancel();
        let mut wave = WaveScratch::default();
        let parallel = FrontierConfig::with_threads(4).with_serial_threshold(0);
        let partial = reach_all_governed(
            &db,
            &m,
            &nodes,
            Direction::Forward,
            None,
            &parallel,
            &mut wave,
            &gov,
        );
        let full = reach_all(&db, &m, &nodes, Direction::Forward, None);
        for (p, f) in partial.iter().zip(&full) {
            assert!(p.is_subset(f));
        }
        // Scratch must be all-clear again: an ungoverned rerun through the
        // same scratch reproduces the full answer.
        let again = reach_all_scratch(
            &db,
            &m,
            &nodes,
            Direction::Forward,
            None,
            &parallel,
            &mut wave,
        );
        assert_eq!(again, full);
    }
}
