//! Single-walker product reachability: the `D × M` search underlying RPQ
//! evaluation (and the NL data-complexity bound of Lemma 1 / Lemma 3).
//!
//! The BFS over `D × M` visits each `(node, state)` pair at most once. The
//! pair space is a dense rectangle `|V_D| × |Q|`, so the visited set is a
//! [`DenseBitSet`] indexed by `node · |Q| + state` — no hashing — and each
//! `Sym(a)` transition expands over the contiguous per-`(node, a)` CSR
//! range ([`GraphDb::successors_with`] / [`GraphDb::predecessors_with`])
//! instead of filtering the whole adjacency row.

use cxrpq_automata::{Label, Nfa, StateId};
use cxrpq_graph::{DenseBitSet, GraphDb, NodeId};
use std::cell::Cell;
use std::collections::{HashMap, HashSet, VecDeque};

/// Walk direction through the database.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Follow out-edges (words read left to right).
    Forward,
    /// Follow in-edges with a reversed automaton.
    Backward,
}

/// Counts product states explored — the measured proxy for the paper's
/// space bounds in EXPERIMENTS.md.
#[derive(Default, Debug)]
pub struct ReachStats {
    states: Cell<usize>,
}

impl ReachStats {
    /// States explored so far.
    pub fn states(&self) -> usize {
        self.states.get()
    }

    pub(crate) fn bump(&self, n: usize) {
        self.states.set(self.states.get() + n);
    }

    /// Resets the counter.
    pub fn reset(&self) {
        self.states.set(0);
    }
}

/// Reverses an NFA (language reversal): fresh start ε-connected to the old
/// finals; the old start becomes the unique final.
pub fn reverse_nfa(nfa: &Nfa) -> Nfa {
    let n = nfa.state_count();
    let mut out = Nfa::with_states(n + 1);
    let fresh = StateId(n as u32);
    out.set_start(fresh);
    for s in nfa.states() {
        for &(l, t) in nfa.transitions(s) {
            out.add_transition(t, l, s);
        }
    }
    for f in nfa.final_states() {
        out.add_transition(fresh, Label::Eps, f);
    }
    out.set_final(nfa.start(), true);
    out
}

/// Nodes `v` such that some path `u →* v` is labelled by a word of `L(M)`
/// (for `Direction::Backward`: nodes `v` with a path `v →* u` labelled by a
/// word of the *original* language — pass a reversed automaton).
///
/// Runs a BFS over the product `D × M` from `(u, closure(q₀))`, visiting
/// each `(node, state)` pair once: `O(|D| · |M|)` per call, the textbook
/// witness of the NL data-complexity upper bound.
pub fn reach_set(
    db: &GraphDb,
    nfa: &Nfa,
    u: NodeId,
    dir: Direction,
    stats: Option<&ReachStats>,
) -> HashSet<NodeId> {
    reach_set_scratch(db, nfa, u, dir, stats, &mut ReachScratch::default())
}

/// Reusable visited-set storage for repeated [`reach_set_scratch`] calls.
///
/// Zeroing a fresh `|V| · |Q|`-bit set per call costs `O(|V| · |Q| / 64)`
/// even when the explored region is tiny; a sweep over many sources (one
/// BFS per node) pays that memset per source. A scratch records the cells
/// it touched and clears exactly those afterwards, so the full zeroing
/// happens once and each search costs memory traffic proportional to the
/// region it actually explored.
#[derive(Default)]
pub struct ReachScratch {
    visited: DenseBitSet,
    touched: Vec<usize>,
}

impl ReachScratch {
    /// An all-clear visited set of capacity ≥ `cells` (grown on demand).
    fn ensure(&mut self, cells: usize) -> &mut DenseBitSet {
        if self.visited.capacity() < cells {
            self.visited = DenseBitSet::new(cells);
        }
        debug_assert!(self.touched.is_empty());
        &mut self.visited
    }
}

/// [`reach_set`] with caller-provided scratch storage (see
/// [`ReachScratch`]); the scratch is left all-clear for the next call.
pub fn reach_set_scratch(
    db: &GraphDb,
    nfa: &Nfa,
    u: NodeId,
    dir: Direction,
    stats: Option<&ReachStats>,
    scratch: &mut ReachScratch,
) -> HashSet<NodeId> {
    let q = nfa.state_count();
    scratch.ensure(db.node_count() * q);
    let ReachScratch { visited, touched } = scratch;
    let mut out = HashSet::new();
    let mut queue: VecDeque<(NodeId, StateId)> = VecDeque::new();
    let push = |queue: &mut VecDeque<(NodeId, StateId)>,
                    visited: &mut DenseBitSet,
                    touched: &mut Vec<usize>,
                    node: NodeId,
                    st: StateId| {
        let cell = node.index() * q + st.index();
        if visited.insert(cell) {
            touched.push(cell);
            queue.push_back((node, st));
        }
    };
    push(&mut queue, visited, touched, u, nfa.start());
    while let Some((node, st)) = queue.pop_front() {
        if let Some(s) = stats {
            s.bump(1);
        }
        if nfa.is_final(st) {
            out.insert(node);
        }
        for &(l, t) in nfa.transitions(st) {
            match l {
                Label::Eps => push(&mut queue, visited, touched, node, t),
                Label::Sym(a) => {
                    let adj = match dir {
                        Direction::Forward => db.successors_with(node, a),
                        Direction::Backward => db.predecessors_with(node, a),
                    };
                    for &(_, next) in adj {
                        push(&mut queue, visited, touched, next, t);
                    }
                }
                Label::Any => {
                    let adj = match dir {
                        Direction::Forward => db.out_edges(node),
                        Direction::Backward => db.in_edges(node),
                    };
                    for &(_, next) in adj {
                        push(&mut queue, visited, touched, next, t);
                    }
                }
            }
        }
    }
    for cell in touched.drain(..) {
        visited.remove(cell);
    }
    out
}

/// Memoizing wrapper around [`reach_set`] for repeated queries against the
/// same database (one cache per `(edge automaton, direction)`).
///
/// Entries are keyed by [`NodeId`] alone, so the cache is only meaningful
/// against one database: on first use it binds to that database's
/// [`GraphDb::generation`], and any later call against a database with a
/// different generation invalidates every memoized entry and rebinds
/// (stale node-keyed answers are never served).
pub struct ReachCache {
    nfa: Nfa,
    rev: Nfa,
    generation: Option<u64>,
    fwd: HashMap<NodeId, std::rc::Rc<HashSet<NodeId>>>,
    bwd: HashMap<NodeId, std::rc::Rc<HashSet<NodeId>>>,
    scratch: ReachScratch,
    /// Exploration statistics shared by both directions.
    pub stats: ReachStats,
}

impl ReachCache {
    /// Builds the cache for an edge automaton.
    pub fn new(nfa: Nfa) -> Self {
        let rev = reverse_nfa(&nfa);
        Self {
            nfa,
            rev,
            generation: None,
            fwd: HashMap::new(),
            bwd: HashMap::new(),
            scratch: ReachScratch::default(),
            stats: ReachStats::default(),
        }
    }

    /// The underlying forward automaton.
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// The generation of the database this cache is bound to (`None` until
    /// first use).
    pub fn bound_generation(&self) -> Option<u64> {
        self.generation
    }

    /// Binds the cache to `db`, dropping all memoized entries when `db` is
    /// not the database they were computed against.
    fn bind(&mut self, db: &GraphDb) {
        match self.generation {
            Some(g) if g == db.generation() => {}
            Some(_) => {
                self.fwd.clear();
                self.bwd.clear();
                self.generation = Some(db.generation());
            }
            None => self.generation = Some(db.generation()),
        }
    }

    /// Targets reachable from `u` via an accepted word.
    pub fn targets(&mut self, db: &GraphDb, u: NodeId) -> std::rc::Rc<HashSet<NodeId>> {
        self.bind(db);
        if let Some(r) = self.fwd.get(&u) {
            return r.clone();
        }
        let r = std::rc::Rc::new(reach_set_scratch(
            db,
            &self.nfa,
            u,
            Direction::Forward,
            Some(&self.stats),
            &mut self.scratch,
        ));
        self.fwd.insert(u, r.clone());
        r
    }

    /// Sources that reach `v` via an accepted word.
    pub fn sources(&mut self, db: &GraphDb, v: NodeId) -> std::rc::Rc<HashSet<NodeId>> {
        self.bind(db);
        if let Some(r) = self.bwd.get(&v) {
            return r.clone();
        }
        let r = std::rc::Rc::new(reach_set_scratch(
            db,
            &self.rev,
            v,
            Direction::Backward,
            Some(&self.stats),
            &mut self.scratch,
        ));
        self.bwd.insert(v, r.clone());
        r
    }

    /// Whether some path `u →* v` is labelled by an accepted word.
    pub fn connects(&mut self, db: &GraphDb, u: NodeId, v: NodeId) -> bool {
        self.bind(db);
        if let Some(r) = self.fwd.get(&u) {
            return r.contains(&v);
        }
        if let Some(r) = self.bwd.get(&v) {
            return r.contains(&u);
        }
        self.targets(db, u).contains(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxrpq_automata::parse_regex;
    use cxrpq_graph::{Alphabet, GraphBuilder};
    use std::sync::Arc;

    fn line_db(word: &str) -> (GraphDb, Vec<NodeId>) {
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = GraphBuilder::new(alpha);
        let w = db.alphabet().parse_word(word).unwrap();
        let nodes: Vec<NodeId> = (0..=w.len()).map(|_| db.add_node()).collect();
        for (i, &s) in w.iter().enumerate() {
            db.add_edge(nodes[i], s, nodes[i + 1]);
        }
        (db.freeze(), nodes)
    }

    fn nfa_of(db: &GraphDb, s: &str) -> Nfa {
        let mut a = db.alphabet().clone();
        Nfa::from_regex(&parse_regex(s, &mut a).unwrap())
    }

    #[test]
    fn forward_reach_on_line() {
        let (db, nodes) = line_db("aabba");
        let m = nfa_of(&db, "a*");
        let r = reach_set(&db, &m, nodes[0], Direction::Forward, None);
        assert_eq!(r, HashSet::from([nodes[0], nodes[1], nodes[2]]));
        let m2 = nfa_of(&db, "a*b");
        let r2 = reach_set(&db, &m2, nodes[0], Direction::Forward, None);
        assert_eq!(r2, HashSet::from([nodes[3]]));
    }

    #[test]
    fn backward_reach_matches_forward() {
        let (db, nodes) = line_db("abcab");
        let m = nfa_of(&db, "a(b|c)");
        let mut cache = ReachCache::new(m);
        // Forward from n0: {n2}; so sources of n2 must contain n0.
        assert!(cache.targets(&db, nodes[0]).contains(&nodes[2]));
        assert!(cache.sources(&db, nodes[2]).contains(&nodes[0]));
        assert!(!cache.sources(&db, nodes[1]).contains(&nodes[0]));
        assert!(cache.connects(&db, nodes[3], nodes[5])); // "ab"? n3-a->n4-b->n5 ✓
    }

    #[test]
    fn epsilon_language_reaches_self() {
        let (db, nodes) = line_db("ab");
        let m = nfa_of(&db, "_");
        let r = reach_set(&db, &m, nodes[1], Direction::Forward, None);
        assert_eq!(r, HashSet::from([nodes[1]]));
    }

    #[test]
    fn any_transitions_work_backwards() {
        let (db, nodes) = line_db("abc");
        let m = nfa_of(&db, "..");
        let mut cache = ReachCache::new(m);
        assert!(cache.sources(&db, nodes[2]).contains(&nodes[0]));
        assert!(cache.sources(&db, nodes[3]).contains(&nodes[1]));
        assert!(!cache.sources(&db, nodes[3]).contains(&nodes[0]));
    }

    #[test]
    fn stats_count_states() {
        let (db, nodes) = line_db("aaaa");
        let m = nfa_of(&db, "a*");
        let stats = ReachStats::default();
        reach_set(&db, &m, nodes[0], Direction::Forward, Some(&stats));
        assert!(stats.states() > 0);
    }

    #[test]
    fn reverse_nfa_reverses_language() {
        let alpha = Alphabet::from_chars("ab");
        let mut a2 = alpha.clone();
        let r = parse_regex("ab*", &mut a2).unwrap();
        let m = Nfa::from_regex(&r);
        let rev = reverse_nfa(&m);
        // Reverse of a·b* is b*·a.
        let w = |s: &str| alpha.parse_word(s).unwrap();
        assert!(rev.accepts(&w("a")));
        assert!(rev.accepts(&w("bba")));
        assert!(!rev.accepts(&w("ab")));
    }

    #[test]
    fn scratch_reuse_matches_fresh_runs() {
        let (db, nodes) = line_db("aabba");
        let m = nfa_of(&db, "a*b");
        let mut scratch = ReachScratch::default();
        for &n in &nodes {
            let fresh = reach_set(&db, &m, n, Direction::Forward, None);
            let reused =
                reach_set_scratch(&db, &m, n, Direction::Forward, None, &mut scratch);
            assert_eq!(fresh, reused);
        }
    }

    #[test]
    fn cache_invalidates_across_databases() {
        // Same node ids, different graphs: a stale cache would claim n0
        // reaches n2 in the second database too.
        let (db1, n1) = line_db("aa");
        let (db2, n2) = line_db("bb");
        assert_ne!(db1.generation(), db2.generation());
        let m = nfa_of(&db1, "aa");
        let mut cache = ReachCache::new(m);
        assert!(cache.targets(&db1, n1[0]).contains(&n1[2]));
        assert_eq!(cache.bound_generation(), Some(db1.generation()));
        // Rebinding against db2 must not serve db1's memoized answer.
        assert!(!cache.targets(&db2, n2[0]).contains(&n2[2]));
        assert_eq!(cache.bound_generation(), Some(db2.generation()));
        assert!(!cache.connects(&db2, n2[0], n2[2]));
        // And back: recomputed, still correct.
        assert!(cache.connects(&db1, n1[0], n1[2]));
    }
}
