//! Single-walker product reachability: the `D × M` search underlying RPQ
//! evaluation (and the NL data-complexity bound of Lemma 1 / Lemma 3).

use cxrpq_automata::{Label, Nfa, StateId};
use cxrpq_graph::{GraphDb, NodeId};
use std::cell::Cell;
use std::collections::{HashMap, HashSet, VecDeque};

/// Walk direction through the database.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Direction {
    /// Follow out-edges (words read left to right).
    Forward,
    /// Follow in-edges with a reversed automaton.
    Backward,
}

/// Counts product states explored — the measured proxy for the paper's
/// space bounds in EXPERIMENTS.md.
#[derive(Default, Debug)]
pub struct ReachStats {
    states: Cell<usize>,
}

impl ReachStats {
    /// States explored so far.
    pub fn states(&self) -> usize {
        self.states.get()
    }

    pub(crate) fn bump(&self, n: usize) {
        self.states.set(self.states.get() + n);
    }

    /// Resets the counter.
    pub fn reset(&self) {
        self.states.set(0);
    }
}

/// Reverses an NFA (language reversal): fresh start ε-connected to the old
/// finals; the old start becomes the unique final.
pub fn reverse_nfa(nfa: &Nfa) -> Nfa {
    let n = nfa.state_count();
    let mut out = Nfa::with_states(n + 1);
    let fresh = StateId(n as u32);
    out.set_start(fresh);
    for s in nfa.states() {
        for &(l, t) in nfa.transitions(s) {
            out.add_transition(t, l, s);
        }
    }
    for f in nfa.final_states() {
        out.add_transition(fresh, Label::Eps, f);
    }
    out.set_final(nfa.start(), true);
    out
}

/// Nodes `v` such that some path `u →* v` is labelled by a word of `L(M)`
/// (for `Direction::Backward`: nodes `v` with a path `v →* u` labelled by a
/// word of the *original* language — pass a reversed automaton).
///
/// Runs a BFS over the product `D × M` from `(u, closure(q₀))`, visiting
/// each `(node, state)` pair once: `O(|D| · |M|)` per call, the textbook
/// witness of the NL data-complexity upper bound.
pub fn reach_set(
    db: &GraphDb,
    nfa: &Nfa,
    u: NodeId,
    dir: Direction,
    stats: Option<&ReachStats>,
) -> HashSet<NodeId> {
    let mut out = HashSet::new();
    let mut visited: HashSet<(NodeId, StateId)> = HashSet::new();
    let mut queue: VecDeque<(NodeId, StateId)> = VecDeque::new();
    let push = |q: &mut VecDeque<(NodeId, StateId)>,
                    visited: &mut HashSet<(NodeId, StateId)>,
                    node: NodeId,
                    st: StateId| {
        if visited.insert((node, st)) {
            q.push_back((node, st));
        }
    };
    push(&mut queue, &mut visited, u, nfa.start());
    while let Some((node, st)) = queue.pop_front() {
        if let Some(s) = stats {
            s.bump(1);
        }
        if nfa.is_final(st) {
            out.insert(node);
        }
        for &(l, t) in nfa.transitions(st) {
            match l {
                Label::Eps => push(&mut queue, &mut visited, node, t),
                Label::Sym(a) => {
                    let adj = match dir {
                        Direction::Forward => db.out_edges(node),
                        Direction::Backward => db.in_edges(node),
                    };
                    for &(b, next) in adj {
                        if b == a {
                            push(&mut queue, &mut visited, next, t);
                        }
                    }
                }
                Label::Any => {
                    let adj = match dir {
                        Direction::Forward => db.out_edges(node),
                        Direction::Backward => db.in_edges(node),
                    };
                    for &(_, next) in adj {
                        push(&mut queue, &mut visited, next, t);
                    }
                }
            }
        }
    }
    out
}

/// Memoizing wrapper around [`reach_set`] for repeated queries against the
/// same database (one cache per `(edge automaton, direction)`).
pub struct ReachCache {
    nfa: Nfa,
    rev: Nfa,
    fwd: HashMap<NodeId, std::rc::Rc<HashSet<NodeId>>>,
    bwd: HashMap<NodeId, std::rc::Rc<HashSet<NodeId>>>,
    /// Exploration statistics shared by both directions.
    pub stats: ReachStats,
}

impl ReachCache {
    /// Builds the cache for an edge automaton.
    pub fn new(nfa: Nfa) -> Self {
        let rev = reverse_nfa(&nfa);
        Self {
            nfa,
            rev,
            fwd: HashMap::new(),
            bwd: HashMap::new(),
            stats: ReachStats::default(),
        }
    }

    /// The underlying forward automaton.
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// Targets reachable from `u` via an accepted word.
    pub fn targets(&mut self, db: &GraphDb, u: NodeId) -> std::rc::Rc<HashSet<NodeId>> {
        if let Some(r) = self.fwd.get(&u) {
            return r.clone();
        }
        let r = std::rc::Rc::new(reach_set(db, &self.nfa, u, Direction::Forward, Some(&self.stats)));
        self.fwd.insert(u, r.clone());
        r
    }

    /// Sources that reach `v` via an accepted word.
    pub fn sources(&mut self, db: &GraphDb, v: NodeId) -> std::rc::Rc<HashSet<NodeId>> {
        if let Some(r) = self.bwd.get(&v) {
            return r.clone();
        }
        let r = std::rc::Rc::new(reach_set(db, &self.rev, v, Direction::Backward, Some(&self.stats)));
        self.bwd.insert(v, r.clone());
        r
    }

    /// Whether some path `u →* v` is labelled by an accepted word.
    pub fn connects(&mut self, db: &GraphDb, u: NodeId, v: NodeId) -> bool {
        if let Some(r) = self.fwd.get(&u) {
            return r.contains(&v);
        }
        if let Some(r) = self.bwd.get(&v) {
            return r.contains(&u);
        }
        self.targets(db, u).contains(&v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxrpq_automata::parse_regex;
    use cxrpq_graph::Alphabet;
    use std::sync::Arc;

    fn line_db(word: &str) -> (GraphDb, Vec<NodeId>) {
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = GraphDb::new(alpha);
        let w = db.alphabet().parse_word(word).unwrap();
        let nodes: Vec<NodeId> = (0..=w.len()).map(|_| db.add_node()).collect();
        for (i, &s) in w.iter().enumerate() {
            db.add_edge(nodes[i], s, nodes[i + 1]);
        }
        (db, nodes)
    }

    fn nfa_of(db: &GraphDb, s: &str) -> Nfa {
        let mut a = db.alphabet().clone();
        Nfa::from_regex(&parse_regex(s, &mut a).unwrap())
    }

    #[test]
    fn forward_reach_on_line() {
        let (db, nodes) = line_db("aabba");
        let m = nfa_of(&db, "a*");
        let r = reach_set(&db, &m, nodes[0], Direction::Forward, None);
        assert_eq!(r, HashSet::from([nodes[0], nodes[1], nodes[2]]));
        let m2 = nfa_of(&db, "a*b");
        let r2 = reach_set(&db, &m2, nodes[0], Direction::Forward, None);
        assert_eq!(r2, HashSet::from([nodes[3]]));
    }

    #[test]
    fn backward_reach_matches_forward() {
        let (db, nodes) = line_db("abcab");
        let m = nfa_of(&db, "a(b|c)");
        let mut cache = ReachCache::new(m);
        // Forward from n0: {n2}; so sources of n2 must contain n0.
        assert!(cache.targets(&db, nodes[0]).contains(&nodes[2]));
        assert!(cache.sources(&db, nodes[2]).contains(&nodes[0]));
        assert!(!cache.sources(&db, nodes[1]).contains(&nodes[0]));
        assert!(cache.connects(&db, nodes[3], nodes[5])); // "ab"? n3-a->n4-b->n5 ✓
    }

    #[test]
    fn epsilon_language_reaches_self() {
        let (db, nodes) = line_db("ab");
        let m = nfa_of(&db, "_");
        let r = reach_set(&db, &m, nodes[1], Direction::Forward, None);
        assert_eq!(r, HashSet::from([nodes[1]]));
    }

    #[test]
    fn any_transitions_work_backwards() {
        let (db, nodes) = line_db("abc");
        let m = nfa_of(&db, "..");
        let mut cache = ReachCache::new(m);
        assert!(cache.sources(&db, nodes[2]).contains(&nodes[0]));
        assert!(cache.sources(&db, nodes[3]).contains(&nodes[1]));
        assert!(!cache.sources(&db, nodes[3]).contains(&nodes[0]));
    }

    #[test]
    fn stats_count_states() {
        let (db, nodes) = line_db("aaaa");
        let m = nfa_of(&db, "a*");
        let stats = ReachStats::default();
        reach_set(&db, &m, nodes[0], Direction::Forward, Some(&stats));
        assert!(stats.states() > 0);
    }

    #[test]
    fn reverse_nfa_reverses_language() {
        let alpha = Alphabet::from_chars("ab");
        let mut a2 = alpha.clone();
        let r = parse_regex("ab*", &mut a2).unwrap();
        let m = Nfa::from_regex(&r);
        let rev = reverse_nfa(&m);
        // Reverse of a·b* is b*·a.
        let w = |s: &str| alpha.parse_word(s).unwrap();
        assert!(rev.accepts(&w("a")));
        assert!(rev.accepts(&w("bba")));
        assert!(!rev.accepts(&w("ab")));
    }
}
