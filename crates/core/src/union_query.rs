//! Unions of conjunctive path queries — the `∪-Q` classes of §7.
//!
//! For a class `Q`, a union query is `q = q₁ ∨ … ∨ q_r` with
//! `q(D) = ⋃ᵢ qᵢ(D)`. The paper compares `CXRPQ` fragments against
//! `∪-CRPQ`, `∪-ECRPQ^er` and `∪-ECRPQ` (Figure 5); the translations of
//! Lemmas 13 and 14 produce values of these types.

use crate::crpq::{Crpq, CrpqEvaluator};
use crate::ecrpq::{Ecrpq, EcrpqEvaluator};
use crate::witness::QueryWitness;
use cxrpq_graph::{GraphDb, NodeId};
use std::collections::BTreeSet;

/// A union of CRPQs (`∪-CRPQ`).
#[derive(Clone, Debug, Default)]
pub struct UnionCrpq {
    members: Vec<Crpq>,
}

impl UnionCrpq {
    /// Wraps member queries. All members must agree on output arity.
    pub fn new(members: Vec<Crpq>) -> Self {
        if let Some(first) = members.first() {
            let arity = first.output().len();
            assert!(
                members.iter().all(|q| q.output().len() == arity),
                "union members must have equal output arity"
            );
        }
        Self { members }
    }

    /// The member queries.
    pub fn members(&self) -> &[Crpq] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the union is empty (denotes the empty query: never matches).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Total size `Σ|qᵢ|` — the measured quantity in the §8 conciseness
    /// discussion (exponential blow-ups of Lemmas 13/14).
    pub fn size(&self) -> usize {
        self.members.iter().map(Crpq::size).sum()
    }

    /// Boolean evaluation: `D ⊨ q` iff some member matches.
    pub fn boolean(&self, db: &GraphDb) -> bool {
        self.members
            .iter()
            .any(|q| CrpqEvaluator::new(q).boolean(db))
    }

    /// The union of the members' answer relations.
    pub fn answers(&self, db: &GraphDb) -> BTreeSet<Vec<NodeId>> {
        let mut out = BTreeSet::new();
        for q in &self.members {
            out.extend(CrpqEvaluator::new(q).answers(db));
        }
        out
    }

    /// The Check problem: `t̄ ∈ q(D)` iff some member admits the tuple.
    pub fn check(&self, db: &GraphDb, tuple: &[NodeId]) -> bool {
        self.members
            .iter()
            .any(|q| CrpqEvaluator::new(q).check(db, tuple))
    }

    /// A witness from the first matching member, with its index.
    pub fn witness(&self, db: &GraphDb) -> Option<(usize, QueryWitness)> {
        self.members
            .iter()
            .enumerate()
            .find_map(|(i, q)| CrpqEvaluator::new(q).witness(db).map(|w| (i, w)))
    }
}

impl From<Vec<Crpq>> for UnionCrpq {
    fn from(members: Vec<Crpq>) -> Self {
        Self::new(members)
    }
}

/// A union of ECRPQs (`∪-ECRPQ`; all-equality members make it `∪-ECRPQ^er`).
#[derive(Clone, Debug, Default)]
pub struct UnionEcrpq {
    members: Vec<Ecrpq>,
}

impl UnionEcrpq {
    /// Wraps member queries. All members must agree on output arity.
    pub fn new(members: Vec<Ecrpq>) -> Self {
        if let Some(first) = members.first() {
            let arity = first.output().len();
            assert!(
                members.iter().all(|q| q.output().len() == arity),
                "union members must have equal output arity"
            );
        }
        Self { members }
    }

    /// The member queries.
    pub fn members(&self) -> &[Ecrpq] {
        &self.members
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the union is empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Total size `Σ|qᵢ|`.
    pub fn size(&self) -> usize {
        self.members.iter().map(Ecrpq::size).sum()
    }

    /// Whether every member is an `ECRPQ^er` (the union is `∪-ECRPQ^er`).
    pub fn is_er(&self) -> bool {
        self.members.iter().all(Ecrpq::is_er)
    }

    /// Boolean evaluation.
    pub fn boolean(&self, db: &GraphDb) -> bool {
        self.members
            .iter()
            .any(|q| EcrpqEvaluator::new(q).boolean(db))
    }

    /// The union of the members' answer relations.
    pub fn answers(&self, db: &GraphDb) -> BTreeSet<Vec<NodeId>> {
        let mut out = BTreeSet::new();
        for q in &self.members {
            out.extend(EcrpqEvaluator::new(q).answers(db));
        }
        out
    }

    /// The Check problem.
    pub fn check(&self, db: &GraphDb, tuple: &[NodeId]) -> bool {
        self.members
            .iter()
            .any(|q| EcrpqEvaluator::new(q).check(db, tuple))
    }

    /// A witness from the first matching member, with its index.
    pub fn witness(&self, db: &GraphDb) -> Option<(usize, QueryWitness)> {
        self.members
            .iter()
            .enumerate()
            .find_map(|(i, q)| EcrpqEvaluator::new(q).witness(db).map(|w| (i, w)))
    }
}

impl From<Vec<Ecrpq>> for UnionEcrpq {
    fn from(members: Vec<Ecrpq>) -> Self {
        Self::new(members)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::GraphPattern;
    use crate::relation::RegularRelation;
    use cxrpq_automata::parse_regex;
    use cxrpq_graph::Alphabet;
    use cxrpq_graph::GraphBuilder;
    use std::sync::Arc;

    fn db_word(word: &str) -> (GraphDb, NodeId, NodeId) {
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let mut db = GraphBuilder::new(alpha);
        let s = db.add_node();
        let t = db.add_node();
        let w = db.alphabet().parse_word(word).unwrap();
        db.add_word_path(s, &w, t);
        (db.freeze(), s, t)
    }

    fn single(alpha: &mut Alphabet, re: &str) -> Crpq {
        Crpq::build(&[("x", re, "y")], &["x", "y"], alpha).unwrap()
    }

    #[test]
    fn union_crpq_is_a_disjunction() {
        let (db, s, t) = db_word("abba");
        let mut alpha = db.alphabet().clone();
        let u = UnionCrpq::new(vec![single(&mut alpha, "aa"), single(&mut alpha, "abba")]);
        assert!(u.boolean(&db));
        assert!(u.check(&db, &[s, t]));
        assert!(u.answers(&db).contains(&vec![s, t]));
        let (i, w) = u.witness(&db).unwrap();
        assert_eq!(i, 1); // first matching member
        assert_eq!(w.paths[0].len(), 4);
        // Queries are unanchored: pick a member whose language avoids every
        // sub-path of abba.
        let empty = UnionCrpq::new(vec![single(&mut alpha, "aa")]);
        assert!(!empty.boolean(&db));
        assert!(empty.witness(&db).is_none());
    }

    #[test]
    fn empty_union_never_matches() {
        let (db, s, t) = db_word("ab");
        let u = UnionCrpq::default();
        assert!(u.is_empty());
        assert!(!u.boolean(&db));
        assert!(u.answers(&db).is_empty());
        assert!(!u.check(&db, &[s, t]));
    }

    #[test]
    #[should_panic(expected = "equal output arity")]
    fn mixed_arities_rejected() {
        let mut alpha = Alphabet::from_chars("ab");
        let q1 = Crpq::build(&[("x", "a", "y")], &["x", "y"], &mut alpha).unwrap();
        let q2 = Crpq::build(&[("x", "a", "y")], &["x"], &mut alpha).unwrap();
        let _ = UnionCrpq::new(vec![q1, q2]);
    }

    #[test]
    fn union_ecrpq_er_detection() {
        let mut alpha = Alphabet::from_chars("ab");
        let mk = |alpha: &mut Alphabet, rel: RegularRelation| {
            let mut p = GraphPattern::new();
            let x = p.node("x");
            let y = p.node("y");
            let z = p.node("z");
            let r1 = parse_regex("(a|b)+", alpha).unwrap();
            let r2 = parse_regex("(a|b)+", alpha).unwrap();
            p.add_edge(x, r1, y);
            p.add_edge(x, r2, z);
            Ecrpq::new(p, vec![(rel, vec![0, 1])], vec![]).unwrap()
        };
        let er = UnionEcrpq::new(vec![
            mk(&mut alpha, RegularRelation::equality(2)),
            mk(&mut alpha, RegularRelation::equality(2)),
        ]);
        assert!(er.is_er());
        let not_er = UnionEcrpq::new(vec![
            mk(&mut alpha, RegularRelation::equality(2)),
            mk(&mut alpha, RegularRelation::equal_length(2)),
        ]);
        assert!(!not_er.is_er());
        assert_eq!(not_er.len(), 2);
        assert!(not_er.size() > 0);
    }

    #[test]
    fn union_ecrpq_evaluates_members() {
        // Member 1 wants two equal (a|b)+ paths from a shared source;
        // member 2 wants equal lengths. A database with ab/ba branches
        // satisfies only the second.
        let alpha = Arc::new(Alphabet::from_chars("ab"));
        let mut db = GraphBuilder::new(alpha);
        let s = db.add_node();
        let t1 = db.add_node();
        let t2 = db.add_node();
        let ab = db.alphabet().parse_word("ab").unwrap();
        let ba = db.alphabet().parse_word("ba").unwrap();
        db.add_word_path(s, &ab, t1);
        db.add_word_path(s, &ba, t2);
        let db = db.freeze();
        let mut alpha2 = db.alphabet().clone();
        let mk = |alpha: &mut Alphabet, rel: RegularRelation, out: bool| {
            let mut p = GraphPattern::new();
            let x = p.node("x");
            let y = p.node("y");
            let z = p.node("z");
            let r1 = parse_regex("(a|b)(a|b)", alpha).unwrap();
            let r2 = parse_regex("(a|b)(a|b)", alpha).unwrap();
            p.add_edge(x, r1, y);
            p.add_edge(x, r2, z);
            let output = if out { vec![y, z] } else { vec![] };
            Ecrpq::new(p, vec![(rel, vec![0, 1])], output).unwrap()
        };
        // Equality alone fails on distinct 2-letter branches unless y = z.
        let eq_only = UnionEcrpq::new(vec![mk(&mut alpha2, RegularRelation::equality(2), true)]);
        let ans = eq_only.answers(&db);
        assert!(ans.contains(&vec![t1, t1]));
        assert!(!ans.contains(&vec![t1, t2]));
        // Adding the equal-length member admits the mixed pair.
        let both = UnionEcrpq::new(vec![
            mk(&mut alpha2, RegularRelation::equality(2), true),
            mk(&mut alpha2, RegularRelation::equal_length(2), true),
        ]);
        assert!(both.answers(&db).contains(&vec![t1, t2]));
        let (i, w) = both.witness(&db).unwrap();
        assert!(i <= 1);
        assert_eq!(w.paths.len(), 2);
    }
}
