//! A shared, sharded query cache for the serving layer.
//!
//! CXRPQ evaluation is PSPACE-hard in combined complexity, so a server must
//! amortize the expensive per-query work — parsing, analysis, planning, and
//! for small results the evaluation itself — across repeated queries. The
//! [`QueryCache`] is that amortizer: one instance is shared (`Arc`) by every
//! connection thread of the CLI `serve` command and by anything else that
//! evaluates queries against one [`GraphDb`] lineage.
//!
//! ## Keying and validation
//!
//! Entries are keyed on `(normalized query text, options fingerprint)`;
//! normalization ([`crate::query_text::normalize_query`]) collapses
//! whitespace/comment/atom-order variants onto one key, and a raw-text alias
//! table makes the repeated-exact-text case skip parsing entirely. The
//! database generation is the *validation* component of the key, mirroring
//! `ReachCache::bind`: an entry remembers the generation it was computed
//! against, and on lookup
//!
//! - a generation match serves the entry as-is;
//! - an append lineage ([`GraphDb::delta_since`]) whose labels are all
//!   outside the entry's label footprint (and which created no nodes) keeps
//!   the cached *answers* alive — those arcs can never participate in this
//!   query's matches;
//! - anything else (footprint overlap, new nodes, foreign/compacted
//!   ancestry) drops the answers; the compiled plan additionally survives
//!   same-lineage appends, because a plan only orders the search and can
//!   never make a result wrong.
//!
//! ## Abort hygiene
//!
//! A governed run that ends [`Verdict::Aborted`] produced a sound *partial*
//! answer set — an under-approximation that must never be served as the
//! query's answer later. Aborted runs therefore install **nothing**: no
//! answer entry, no plan, no analysis (same discipline as `ReachCache`,
//! whose interrupted fills are never memoized).

use crate::analyze::AnalysisReport;
use crate::engine::{AutoEvaluator, EngineKind, EvalOptions, PlanError};
use crate::governor::{Governor, Verdict};
use crate::plan::SolvePlan;
use crate::query_text::{canonical_query, parse_query, QueryTextError};
use crate::Cxrpq;
use cxrpq_graph::{GraphDb, NodeId, Symbol};
use cxrpq_xregex::Xregex;
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The label footprint of a query: which database labels its automata can
/// ever traverse. Appends that only add labels outside the footprint cannot
/// change the query's answers (provided they add no nodes — ε-atoms make
/// every node answer-relevant).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Footprint {
    /// Sorted distinct symbols referenced by the query.
    pub syms: Vec<Symbol>,
    /// Whether any atom uses the `Any` wildcard (footprint = whole Σ).
    pub uses_any: bool,
}

impl Footprint {
    /// The exact footprint of `q`: every `Sym`/`Any` leaf across all
    /// conjunctive components. Variable references draw their language from
    /// definitions that are themselves components of the same query, so the
    /// union over components covers them.
    pub fn of_query(q: &Cxrpq) -> Self {
        let mut syms = Vec::new();
        let mut uses_any = false;
        for comp in q.conjunctive().components() {
            collect_footprint(comp, &mut syms, &mut uses_any);
        }
        syms.sort_unstable();
        syms.dedup();
        Self { syms, uses_any }
    }

    /// Whether every label in `changed` lies outside this footprint.
    pub fn disjoint_from(&self, changed: &[Symbol]) -> bool {
        !self.uses_any && changed.iter().all(|a| self.syms.binary_search(a).is_err())
    }
}

fn collect_footprint(x: &Xregex, syms: &mut Vec<Symbol>, uses_any: &mut bool) {
    match x {
        Xregex::Empty | Xregex::Epsilon | Xregex::VarRef(_) => {}
        Xregex::Sym(a) => syms.push(*a),
        Xregex::Any => *uses_any = true,
        Xregex::Concat(ps) | Xregex::Alt(ps) => {
            for p in ps {
                collect_footprint(p, syms, uses_any);
            }
        }
        Xregex::Plus(p) | Xregex::Star(p) | Xregex::VarDef(_, p) => {
            collect_footprint(p, syms, uses_any);
        }
    }
}

/// Sizing knobs for [`QueryCache`].
#[derive(Clone, Copy, Debug)]
pub struct CacheConfig {
    /// Number of independently locked shards (rounded up to a power of
    /// two). More shards, less contention.
    pub shards: usize,
    /// Per-shard entry capacity; the least-recently-used entry is evicted
    /// beyond it.
    pub capacity_per_shard: usize,
    /// Answer sets whose estimated size exceeds this many bytes are not
    /// cached (the plan and analysis still are).
    pub answer_budget_bytes: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        Self {
            shards: 8,
            capacity_per_shard: 128,
            answer_budget_bytes: 64 * 1024,
        }
    }
}

/// How a request was served.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CacheOutcome {
    /// Answers replayed straight from the cache — no evaluation at all.
    AnswerHit,
    /// Compiled artifacts (parsed query and/or plan) reused; evaluation ran.
    PlanHit,
    /// Nothing reusable; full parse + analyze + plan + solve.
    Miss,
}

impl std::fmt::Display for CacheOutcome {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheOutcome::AnswerHit => write!(f, "answer-hit"),
            CacheOutcome::PlanHit => write!(f, "plan-hit"),
            CacheOutcome::Miss => write!(f, "miss"),
        }
    }
}

/// Counter snapshot (see [`QueryCache::stats`]).
#[derive(Clone, Copy, Debug, Default)]
pub struct CacheStats {
    /// Total lookups.
    pub lookups: u64,
    /// Requests served entirely from a cached answer set.
    pub answer_hits: u64,
    /// Requests that reused a cached parse/plan but re-evaluated.
    pub plan_hits: u64,
    /// Requests with no reusable entry.
    pub misses: u64,
    /// Answer entries kept alive across an append because the delta was
    /// outside their label footprint.
    pub survived_appends: u64,
    /// Answer entries dropped by generation validation.
    pub invalidated: u64,
    /// Installs refused because the run aborted (partial results).
    pub aborted_uncached: u64,
    /// Entries evicted by the per-shard LRU.
    pub evictions: u64,
}

/// What a cache-mediated evaluation returned.
#[derive(Clone, Debug)]
pub struct ServedAnswers {
    /// The projected answer relation.
    pub answers: Arc<BTreeSet<Vec<NodeId>>>,
    /// Output arity of the query (0 = Boolean).
    pub arity: usize,
    /// Engine provenance.
    pub engine: EngineKind,
    /// Whether the result is exact for the unrestricted semantics.
    pub exact: bool,
    /// Completion verdict ([`Verdict::Aborted`] results are partial and
    /// were not cached).
    pub verdict: Verdict,
    /// How the cache served this request.
    pub outcome: CacheOutcome,
    /// The analyzer's report: fresh on evaluated paths, replayed from the
    /// install-time run on answer hits (valid there — the validation that
    /// admitted the answers proves the analysis inputs are unchanged).
    pub analysis: Option<AnalysisReport>,
    /// Wall-clock time spent serving this request (lookup + evaluation).
    pub elapsed: Duration,
}

/// Why a cache-mediated evaluation failed.
#[derive(Debug)]
pub enum CacheError {
    /// The query text did not parse/validate.
    Parse(QueryTextError),
    /// A forced engine does not apply to the query.
    Plan(PlanError),
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Parse(e) => write!(f, "{e}"),
            CacheError::Plan(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for CacheError {}

/// One cached query: compiled artifacts always, answers when small enough.
struct Entry {
    /// The parsed canonical query (owned — engines borrow it per request).
    query: Arc<Cxrpq>,
    /// Engine the planner chose at install time.
    engine: EngineKind,
    exact: bool,
    arity: usize,
    /// Harvested phase-1 plan (Simple-engine runs; `None` otherwise).
    plan: Option<Arc<SolvePlan>>,
    /// Install-time analyzer report, replayed on answer hits.
    analysis: Option<AnalysisReport>,
    /// Cached answers + the evidence needed to keep them alive.
    answers: Option<AnswerSet>,
    /// Generation the *answers* (and analysis) were computed against.
    bound_generation: u64,
    /// LRU tick of the last touch.
    last_used: u64,
}

struct AnswerSet {
    answers: Arc<BTreeSet<Vec<NodeId>>>,
    footprint: Footprint,
    /// Node count at install time: new nodes can enter answers even under a
    /// footprint-disjoint delta (ε-atoms match every node), so survival
    /// additionally requires the node universe unchanged.
    node_count: usize,
}

struct Shard {
    entries: HashMap<(String, u64), Entry>,
    /// Raw text → normalized key text, so byte-identical repeats skip both
    /// parsing and normalization. Bounded by `capacity * 4`, cleared
    /// wholesale beyond that (aliases are cheap to rebuild).
    aliases: HashMap<String, String>,
    tick: u64,
}

impl Shard {
    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }
}

/// The sharded LRU query cache. See the module docs for keying, validation,
/// and abort-hygiene semantics.
pub struct QueryCache {
    shards: Vec<Mutex<Shard>>,
    cfg: CacheConfig,
    lookups: AtomicU64,
    answer_hits: AtomicU64,
    plan_hits: AtomicU64,
    misses: AtomicU64,
    survived_appends: AtomicU64,
    invalidated: AtomicU64,
    aborted_uncached: AtomicU64,
    evictions: AtomicU64,
}

// The cache is shared across connection threads; everything inside an entry
// must be thread-safe. In particular `ReachCache` (which holds `Rc`) must
// never leak into an entry — `Problem`s are rebuilt per request.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<QueryCache>();
    assert_send_sync::<Entry>();
    assert_send_sync::<ServedAnswers>();
};

impl QueryCache {
    /// A cache with the given sizing knobs.
    pub fn new(cfg: CacheConfig) -> Self {
        let shard_count = cfg.shards.max(1).next_power_of_two();
        let shards = (0..shard_count)
            .map(|_| {
                Mutex::new(Shard {
                    entries: HashMap::new(),
                    aliases: HashMap::new(),
                    tick: 0,
                })
            })
            .collect();
        Self {
            shards,
            cfg,
            lookups: AtomicU64::new(0),
            answer_hits: AtomicU64::new(0),
            plan_hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            survived_appends: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            aborted_uncached: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// A cache with default sizing.
    pub fn with_defaults() -> Self {
        Self::new(CacheConfig::default())
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            answer_hits: self.answer_hits.load(Ordering::Relaxed),
            plan_hits: self.plan_hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            survived_appends: self.survived_appends.load(Ordering::Relaxed),
            invalidated: self.invalidated.load(Ordering::Relaxed),
            aborted_uncached: self.aborted_uncached.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// The fingerprint of the evaluation options that shape a result:
    /// `bounded_k` (the `⊨_{≤k}` semantics on General queries) and any
    /// forced engine. The governor deliberately does not participate —
    /// resource limits change *whether* a run completes, not what a
    /// completed run answers, and only completed runs are cached.
    pub fn options_fingerprint(opts: &EvalOptions) -> u64 {
        let mut h = Fnv64::new();
        h.write_usize(opts.bounded_k);
        h.write_usize(match opts.force {
            None => 0,
            Some(EngineKind::Simple) => 1,
            Some(EngineKind::Vsf) => 2,
            Some(EngineKind::Bounded) => 3,
        });
        h.finish()
    }

    /// Evaluates `text` against `db` through the cache: answers are
    /// replayed when a validated entry has them, otherwise the query is
    /// evaluated (reusing the cached parse/plan when available) and, if the
    /// run completed and the result fits the byte budget, installed.
    pub fn answers(
        &self,
        db: &GraphDb,
        text: &str,
        opts: &EvalOptions,
    ) -> Result<ServedAnswers, CacheError> {
        let t0 = Instant::now();
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let fp = Self::options_fingerprint(opts);

        // Resolve raw text to the normalized key, parsing at most once.
        let (normalized, mut parsed): (String, Option<Arc<Cxrpq>>) =
            match self.alias_lookup(text, fp) {
                Some(n) => (n, None),
                None => {
                    let mut alphabet = db.alphabet().clone();
                    let q = parse_query(text, &mut alphabet).map_err(CacheError::Parse)?;
                    let normalized = canonical_query(&q, &alphabet);
                    self.alias_install(text, fp, &normalized);
                    (normalized, Some(Arc::new(q)))
                }
            };

        // Validated lookup under the shard lock.
        let key = (normalized, fp);
        let shard_idx = self.shard_for(&key);
        let mut cached_plan: Option<Arc<SolvePlan>> = None;
        let mut had_entry = false;
        {
            let mut shard = self.shards[shard_idx].lock().expect("cache shard");
            let tick = shard.next_tick();
            if let Some(entry) = shard.entries.get_mut(&key) {
                match validate(entry, db) {
                    Validation::Dead => {
                        self.invalidated.fetch_add(1, Ordering::Relaxed);
                        shard.entries.remove(&key);
                    }
                    Validation::Artifacts { answers_survived } => {
                        let entry = shard.entries.get_mut(&key).expect("just found");
                        entry.last_used = tick;
                        if answers_survived {
                            self.survived_appends.fetch_add(1, Ordering::Relaxed);
                        } else if entry.answers.take().is_some() {
                            self.invalidated.fetch_add(1, Ordering::Relaxed);
                        }
                        if let Some(ans) = &entry.answers {
                            self.answer_hits.fetch_add(1, Ordering::Relaxed);
                            return Ok(ServedAnswers {
                                answers: ans.answers.clone(),
                                arity: entry.arity,
                                engine: entry.engine,
                                exact: entry.exact,
                                verdict: Verdict::Complete,
                                outcome: CacheOutcome::AnswerHit,
                                analysis: entry.analysis.clone(),
                                elapsed: t0.elapsed(),
                            });
                        }
                        had_entry = true;
                        cached_plan = entry.plan.clone();
                        parsed = Some(entry.query.clone());
                    }
                }
            }
        }

        // Evaluate outside the lock (concurrent misses race benignly: the
        // last install wins, all compute the same thing).
        let q = match parsed {
            Some(q) => q,
            None => {
                let mut alphabet = db.alphabet().clone();
                Arc::new(parse_query(&key.0, &mut alphabet).map_err(CacheError::Parse)?)
            }
        };
        if had_entry || cached_plan.is_some() {
            self.plan_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let eval_opts = EvalOptions {
            plan_seed: cached_plan,
            ..opts.clone()
        };
        let auto = AutoEvaluator::with_options(&q, eval_opts).map_err(CacheError::Plan)?;
        let r = auto.answers(db);
        let outcome = if had_entry {
            CacheOutcome::PlanHit
        } else {
            CacheOutcome::Miss
        };
        let served = ServedAnswers {
            answers: Arc::new(r.value),
            arity: q.output().len(),
            engine: r.engine,
            exact: r.exact,
            verdict: r.verdict,
            outcome,
            analysis: r.pipeline.as_ref().and_then(|p| p.analysis.clone()),
            elapsed: t0.elapsed(),
        };

        // Abort hygiene: a tripped governor means `served.answers` is an
        // under-approximation — cache nothing, not even the plan (it was
        // harvested from a drained pipeline).
        if matches!(served.verdict, Verdict::Aborted(_)) {
            self.aborted_uncached.fetch_add(1, Ordering::Relaxed);
            return Ok(served);
        }

        let plan = r.pipeline.as_ref().and_then(|p| p.plan_artifact.clone());
        let answers =
            (answer_bytes(&served.answers) <= self.cfg.answer_budget_bytes).then(|| AnswerSet {
                answers: served.answers.clone(),
                footprint: Footprint::of_query(&q),
                node_count: db.node_count(),
            });
        let mut shard = self.shards[shard_idx].lock().expect("cache shard");
        let tick = shard.next_tick();
        shard.entries.insert(
            key,
            Entry {
                query: q,
                engine: served.engine,
                exact: served.exact,
                arity: served.arity,
                plan,
                analysis: served.analysis.clone(),
                answers,
                bound_generation: db.generation(),
                last_used: tick,
            },
        );
        if shard.entries.len() > self.cfg.capacity_per_shard {
            if let Some(victim) = shard
                .entries
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                shard.entries.remove(&victim);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(served)
    }

    /// Evaluates a request under a per-request governor (the `serve` path):
    /// plain [`QueryCache::answers`] with the governor attached.
    pub fn answers_governed(
        &self,
        db: &GraphDb,
        text: &str,
        opts: &EvalOptions,
        gov: Arc<Governor>,
    ) -> Result<ServedAnswers, CacheError> {
        let opts = EvalOptions {
            governor: Some(gov),
            ..opts.clone()
        };
        self.answers(db, text, &opts)
    }

    fn shard_for(&self, key: &(String, u64)) -> usize {
        let mut h = Fnv64::new();
        h.write_bytes(key.0.as_bytes());
        h.write_usize(key.1 as usize);
        (h.finish() as usize) & (self.shards.len() - 1)
    }

    fn alias_lookup(&self, raw: &str, fp: u64) -> Option<String> {
        let mut h = Fnv64::new();
        h.write_bytes(raw.as_bytes());
        h.write_usize(fp as usize);
        let idx = (h.finish() as usize) & (self.shards.len() - 1);
        let shard = self.shards[idx].lock().expect("cache shard");
        shard.aliases.get(raw).cloned()
    }

    fn alias_install(&self, raw: &str, fp: u64, normalized: &str) {
        let mut h = Fnv64::new();
        h.write_bytes(raw.as_bytes());
        h.write_usize(fp as usize);
        let idx = (h.finish() as usize) & (self.shards.len() - 1);
        let mut shard = self.shards[idx].lock().expect("cache shard");
        if shard.aliases.len() >= self.cfg.capacity_per_shard * 4 {
            shard.aliases.clear();
        }
        shard
            .aliases
            .insert(raw.to_string(), normalized.to_string());
    }
}

enum Validation {
    /// Foreign/compacted ancestry: nothing in the entry is trustworthy.
    Dead,
    /// Same lineage: parse + plan remain valid; answers only if the delta
    /// proves them untouched.
    Artifacts { answers_survived: bool },
}

/// Generation validation, mirroring `ReachCache::bind`.
fn validate(entry: &Entry, db: &GraphDb) -> Validation {
    if entry.bound_generation == db.generation() {
        return Validation::Artifacts {
            answers_survived: entry.answers.is_some(),
        };
    }
    match db.delta_since(entry.bound_generation) {
        None => Validation::Dead,
        Some(changed) => {
            let answers_survived = entry.answers.as_ref().is_some_and(|a| {
                a.node_count == db.node_count()
                    && (changed.is_empty() || a.footprint.disjoint_from(&changed))
            });
            Validation::Artifacts { answers_survived }
        }
    }
}

/// Estimated in-memory size of a projected answer relation.
fn answer_bytes(answers: &BTreeSet<Vec<NodeId>>) -> usize {
    answers
        .iter()
        .map(|t| size_of::<Vec<NodeId>>() + t.len() * size_of::<NodeId>())
        .sum()
}

/// FNV-1a, 64-bit — a stable, dependency-free fingerprint hasher.
struct Fnv64(u64);

impl Fnv64 {
    fn new() -> Self {
        Fnv64(0xcbf2_9ce4_8422_2325)
    }

    fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn write_usize(&mut self, v: usize) {
        self.write_bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::governor::AbortReason;
    use cxrpq_graph::{Alphabet, GraphBuilder};

    fn small_db() -> GraphDb {
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut b = GraphBuilder::new(alpha);
        let nodes: Vec<NodeId> = (0..6).map(|_| b.add_node()).collect();
        let ab = b.alphabet().parse_word("ab").unwrap();
        let c = b.alphabet().parse_word("c").unwrap();
        b.add_word_path(nodes[0], &ab, nodes[1]);
        b.add_word_path(nodes[1], &c, nodes[2]);
        b.add_word_path(nodes[2], &ab, nodes[3]);
        b.freeze()
    }

    const Q: &str = "ans(x, y) <- (x) -[ (a|b)+ ]-> (y)";

    #[test]
    fn repeat_queries_hit_cached_answers() {
        let db = small_db();
        let cache = QueryCache::with_defaults();
        let opts = EvalOptions::default();
        let cold = cache.answers(&db, Q, &opts).unwrap();
        assert_eq!(cold.outcome, CacheOutcome::Miss);
        let warm = cache.answers(&db, Q, &opts).unwrap();
        assert_eq!(warm.outcome, CacheOutcome::AnswerHit);
        assert_eq!(cold.answers, warm.answers);
        assert_eq!(warm.engine, cold.engine);
        let s = cache.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.answer_hits, 1);
        assert_eq!(s.misses, 1);
    }

    #[test]
    fn formatting_variants_share_one_entry() {
        let db = small_db();
        let cache = QueryCache::with_defaults();
        let opts = EvalOptions::default();
        let a = cache.answers(&db, Q, &opts).unwrap();
        let b = cache
            .answers(
                &db,
                "ans( x , y ) <-\n  # noisy\n  ( x ) -[ (a|b)+ ]-> ( y )",
                &opts,
            )
            .unwrap();
        assert_eq!(b.outcome, CacheOutcome::AnswerHit, "normalized key match");
        assert_eq!(a.answers, b.answers);
    }

    #[test]
    fn different_options_are_different_keys() {
        let db = small_db();
        let cache = QueryCache::with_defaults();
        let a = cache.answers(&db, Q, &EvalOptions::default()).unwrap();
        let forced = EvalOptions {
            force: Some(EngineKind::Bounded),
            ..EvalOptions::default()
        };
        let b = cache.answers(&db, Q, &forced).unwrap();
        assert_eq!(b.outcome, CacheOutcome::Miss, "distinct fingerprint");
        assert_eq!(a.answers, b.answers, "same query, same semantics here");
    }

    #[test]
    fn footprint_is_exact_and_union_over_components() {
        let mut alpha = Alphabet::from_chars("abc");
        let q = parse_query("ans() <- (x) -[ z{(a|b)+}cz ]-> (y)", &mut alpha).unwrap();
        let f = Footprint::of_query(&q);
        let names: Vec<&str> = f.syms.iter().map(|&s| alpha.name(s)).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
        assert!(!f.uses_any);
    }

    #[test]
    fn aborted_runs_install_nothing() {
        let db = small_db();
        let cache = QueryCache::with_defaults();
        let opts = EvalOptions::default();
        let gov = Arc::new(Governor::unlimited());
        gov.cancel();
        let _ = gov.checkpoint();
        let r = cache.answers_governed(&db, Q, &opts, gov).unwrap();
        assert!(matches!(
            r.verdict,
            Verdict::Aborted(AbortReason::Cancelled)
        ));
        // The partial result must not have been installed: the next
        // (ungoverned) request is a miss and computes the full answer.
        let cold = cache.answers(&db, Q, &opts).unwrap();
        assert_eq!(cold.outcome, CacheOutcome::Miss);
        assert!(cold.answers.len() >= r.answers.len());
        assert_eq!(cache.stats().aborted_uncached, 1);
        // And the full answer does get cached afterwards.
        assert_eq!(
            cache.answers(&db, Q, &opts).unwrap().outcome,
            CacheOutcome::AnswerHit
        );
    }

    #[test]
    fn answers_survive_footprint_disjoint_appends() {
        let mut db = small_db();
        let cache = QueryCache::with_defaults();
        let opts = EvalOptions::default();
        let cold = cache.answers(&db, Q, &opts).unwrap();
        // `c` is outside the (a|b)+ footprint and the append adds no nodes.
        let c = db.alphabet().symbol("c").unwrap();
        assert!(db.append(NodeId(3), c, NodeId(0)));
        let warm = cache.answers(&db, Q, &opts).unwrap();
        assert_eq!(warm.outcome, CacheOutcome::AnswerHit, "disjoint delta");
        assert_eq!(cold.answers, warm.answers);
        assert_eq!(cache.stats().survived_appends, 1);
    }

    #[test]
    fn answers_die_on_footprint_overlap_or_new_nodes() {
        let mut db = small_db();
        let cache = QueryCache::with_defaults();
        let opts = EvalOptions::default();
        cache.answers(&db, Q, &opts).unwrap();
        // Overlapping label: the (a|b)+ entry must re-evaluate and see the
        // new arc.
        let a = db.alphabet().symbol("a").unwrap();
        assert!(db.append(NodeId(4), a, NodeId(5)));
        let r = cache.answers(&db, Q, &opts).unwrap();
        assert_ne!(r.outcome, CacheOutcome::AnswerHit, "stale entry must die");
        assert!(r.answers.contains(&vec![NodeId(4), NodeId(5)]));
        assert!(cache.stats().invalidated >= 1);
        // New node: even a footprint-disjoint delta kills answers (ε-atoms
        // make every node answer-relevant).
        cache.answers(&db, Q, &opts).unwrap();
        db.append_node();
        let r2 = cache.answers(&db, Q, &opts).unwrap();
        assert_ne!(r2.outcome, CacheOutcome::AnswerHit, "node universe grew");
    }

    #[test]
    fn compaction_preserves_entries() {
        let mut db = small_db();
        let cache = QueryCache::with_defaults();
        let opts = EvalOptions::default();
        let c = db.alphabet().symbol("c").unwrap();
        db.append(NodeId(3), c, NodeId(4));
        let cold = cache.answers(&db, Q, &opts).unwrap();
        // Compaction merges the overlay without changing the edge set or
        // generation: cached answers stay live.
        db.compact();
        let warm = cache.answers(&db, Q, &opts).unwrap();
        assert_eq!(warm.outcome, CacheOutcome::AnswerHit);
        assert_eq!(cold.answers, warm.answers);
    }

    #[test]
    fn lru_evicts_within_capacity() {
        let db = small_db();
        let cache = QueryCache::new(CacheConfig {
            shards: 1,
            capacity_per_shard: 2,
            answer_budget_bytes: 64 * 1024,
        });
        let opts = EvalOptions::default();
        let queries = [
            "ans(x, y) <- (x) -[ a ]-> (y)",
            "ans(x, y) <- (x) -[ b ]-> (y)",
            "ans(x, y) <- (x) -[ c ]-> (y)",
        ];
        for q in &queries {
            cache.answers(&db, q, &opts).unwrap();
        }
        assert!(cache.stats().evictions >= 1);
        // The newest entry is still warm.
        assert_eq!(
            cache.answers(&db, queries[2], &opts).unwrap().outcome,
            CacheOutcome::AnswerHit
        );
    }

    #[test]
    fn zero_budget_disables_answer_caching_but_keeps_plan() {
        let db = small_db();
        let cache = QueryCache::new(CacheConfig {
            shards: 2,
            capacity_per_shard: 16,
            answer_budget_bytes: 0,
        });
        let opts = EvalOptions::default();
        let cold = cache.answers(&db, Q, &opts).unwrap();
        let warm = cache.answers(&db, Q, &opts).unwrap();
        assert_eq!(cold.outcome, CacheOutcome::Miss);
        assert_eq!(warm.outcome, CacheOutcome::PlanHit, "no answers cached");
        assert_eq!(cold.answers, warm.answers);
        assert_eq!(cache.stats().plan_hits, 1);
    }
}
