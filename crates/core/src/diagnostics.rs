//! Typed, severity-ranked lints produced by the static query analyzer.
//!
//! Every finding of [`crate::analyze`] is reported as a [`Diagnostic`]: a
//! stable lint name (kebab-case, the identifier a CLI user can grep for), a
//! [`Severity`], the affected atom, and a one-line explanation. The
//! collection type [`Diagnostics`] keeps entries sorted most-severe-first
//! so renderers can print them top-down without re-ranking.

use std::fmt;

/// How much a finding matters.
///
/// `Error` findings make the query statically unsatisfiable (the solver
/// answers empty without searching); `Warning` findings are semantics-
/// preserving rewrites of a suboptimal query; `Info` findings are purely
/// observational.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Observational: nothing was rewritten or refuted.
    Info,
    /// The query carries avoidable work (a redundant atom was dropped, a
    /// check was abandoned).
    Warning,
    /// The query is statically unsatisfiable against this database.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Info => "info",
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// The closed set of lints the analyzer (and, for [`Lint::ResourceAbort`],
/// the evaluation runtime) can raise.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Lint {
    /// An atom's language is `∅`: no path can ever witness it.
    EmptyAtom,
    /// An atom's language requires alphabet letters the database has no
    /// arcs for (graph-aware footprint check).
    FootprintMiss,
    /// An atom's language is `{ε}`: its endpoints are the same node, so the
    /// variables were unified and the atom dropped.
    EpsilonAtom,
    /// An atom's language is `Σ*`: it never filters anything and is
    /// deprioritized by the planner.
    UniversalAtom,
    /// An atom's language contains a parallel atom's language over the same
    /// endpoint pair: the superset atom is redundant and was dropped.
    SubsumedAtom,
    /// A containment check exceeded its state budget and was abandoned;
    /// both atoms were kept.
    ContainmentCapped,
    /// Some connected component of the constraint graph is cyclic (at
    /// least as many atoms as variables) — the backtracker's worst shape.
    CyclicPattern,
    /// Evaluation stopped early because a resource limit tripped (deadline,
    /// fuel, memory, or cancellation); reported answers are a sound partial
    /// under-approximation.
    ResourceAbort,
}

impl Lint {
    /// The stable kebab-case lint name.
    pub fn name(self) -> &'static str {
        match self {
            Lint::EmptyAtom => "empty-atom",
            Lint::FootprintMiss => "footprint-miss",
            Lint::EpsilonAtom => "epsilon-atom",
            Lint::UniversalAtom => "universal-atom",
            Lint::SubsumedAtom => "subsumed-atom",
            Lint::ContainmentCapped => "containment-capped",
            Lint::CyclicPattern => "cyclic-pattern",
            Lint::ResourceAbort => "resource-abort",
        }
    }
}

/// Which atom of the problem a diagnostic points at.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AtomRef {
    /// A single-walker constraint, by free-edge index.
    Edge(usize),
    /// A synchronized group constraint, by `(group, member)` index.
    GroupMember(usize, usize),
    /// The whole pattern (structural findings).
    Pattern,
}

impl fmt::Display for AtomRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AtomRef::Edge(i) => write!(f, "atom #{i}"),
            AtomRef::GroupMember(g, m) => write!(f, "group #{g} member #{m}"),
            AtomRef::Pattern => f.write_str("pattern"),
        }
    }
}

/// One analyzer finding.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// The lint raised.
    pub lint: Lint,
    /// How much it matters.
    pub severity: Severity,
    /// The affected atom.
    pub atom: AtomRef,
    /// One-line human explanation.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.severity,
            self.lint.name(),
            self.atom,
            self.message
        )
    }
}

/// The analyzer's report: findings ordered most-severe-first.
#[derive(Clone, Debug, Default)]
pub struct Diagnostics {
    entries: Vec<Diagnostic>,
}

impl Diagnostics {
    /// Records a finding (ordering is restored lazily by [`Self::iter`]).
    pub fn push(&mut self, lint: Lint, severity: Severity, atom: AtomRef, message: String) {
        self.entries.push(Diagnostic {
            lint,
            severity,
            atom,
            message,
        });
    }

    /// Number of findings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether there are no findings.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Findings, most severe first (stable within one severity).
    pub fn iter(&self) -> impl Iterator<Item = &Diagnostic> {
        let mut order: Vec<usize> = (0..self.entries.len()).collect();
        order.sort_by(|&a, &b| self.entries[b].severity.cmp(&self.entries[a].severity));
        order.into_iter().map(|i| &self.entries[i])
    }

    /// Whether some finding raised `lint`.
    pub fn has(&self, lint: Lint) -> bool {
        self.entries.iter().any(|d| d.lint == lint)
    }

    /// The most severe finding's severity, if any.
    pub fn max_severity(&self) -> Option<Severity> {
        self.entries.iter().map(|d| d.severity).max()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severity_orders_and_renders() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
        assert_eq!(Severity::Error.to_string(), "error");
    }

    #[test]
    fn iter_ranks_most_severe_first() {
        let mut d = Diagnostics::default();
        d.push(
            Lint::UniversalAtom,
            Severity::Info,
            AtomRef::Edge(0),
            "x".into(),
        );
        d.push(
            Lint::EmptyAtom,
            Severity::Error,
            AtomRef::Edge(1),
            "y".into(),
        );
        d.push(
            Lint::SubsumedAtom,
            Severity::Warning,
            AtomRef::Edge(2),
            "z".into(),
        );
        let sevs: Vec<Severity> = d.iter().map(|e| e.severity).collect();
        assert_eq!(
            sevs,
            vec![Severity::Error, Severity::Warning, Severity::Info]
        );
        assert_eq!(d.max_severity(), Some(Severity::Error));
        assert!(d.has(Lint::EmptyAtom));
        assert!(!d.has(Lint::EpsilonAtom));
    }

    #[test]
    fn diagnostic_renders_one_line() {
        let d = Diagnostic {
            lint: Lint::EmptyAtom,
            severity: Severity::Error,
            atom: AtomRef::Edge(3),
            message: "language is empty".into(),
        };
        assert_eq!(
            d.to_string(),
            "error [empty-atom] atom #3: language is empty"
        );
    }
}
