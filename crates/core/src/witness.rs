//! Witness extraction — matching morphisms together with the concrete
//! paths, matching words, and variable images that certify them.
//!
//! §8 of the paper notes that all Bool-Eval algorithms extend to the Check
//! problem and, with more machinery, to extracting the *paths* behind a
//! match. This module implements that extension for every engine in the
//! crate: re-running the product searches with parent pointers and reading
//! the paths back off the BFS forest. The cost stays within the same
//! product-space bounds as the decision procedures.

use crate::governor::Governor;
use crate::pattern::{GraphPattern, NodeVar};
use crate::sync::{SyncSearch, SyncSpec, SyncState};
use cxrpq_automata::{Label, Nfa, StateId};
use cxrpq_graph::{DenseBitSet, GraphDb, NodeId, Path, Symbol};
use std::collections::{HashMap, HashSet, VecDeque};

/// A complete certificate for one matching morphism.
///
/// Produced by the engines' `witness`/`witness_for` methods; checkable
/// independently of the engine that produced it via [`QueryWitness::verify`]
/// (structure) and the conjunctive-match oracle (semantics).
#[derive(Clone, Debug)]
pub struct QueryWitness {
    /// The matching morphism `h`, restricted to the query's named pattern
    /// variables (in pattern-variable order).
    pub morphism: Vec<(String, NodeId)>,
    /// One witnessing path per pattern edge, in edge order. `paths[i]` runs
    /// from `h(x_i)` to `h(y_i)` and its label is the matching word `w_i`.
    pub paths: Vec<Path>,
    /// String-variable images `ψ(x)` backing the match (CXRPQ engines only;
    /// empty for CRPQ/ECRPQ). Names refer to the variables of the evaluated
    /// query — for the vstar-free engine that is the normalized query, whose
    /// fresh variables carry derived names.
    pub images: Vec<(String, Vec<Symbol>)>,
}

impl QueryWitness {
    /// The matching words `(w_1, …, w_m)` (one label per pattern edge).
    pub fn matching_words(&self) -> Vec<Vec<Symbol>> {
        self.paths.iter().map(|p| p.label().to_vec()).collect()
    }

    /// Structural verification against a pattern: every path must exist in
    /// `db` and connect the morphism's images of its edge endpoints.
    pub fn verify<L>(&self, db: &GraphDb, pattern: &GraphPattern<L>) -> Result<(), String> {
        if self.paths.len() != pattern.edge_count() {
            return Err(format!(
                "witness has {} paths for {} pattern edges",
                self.paths.len(),
                pattern.edge_count()
            ));
        }
        let mut h: HashMap<&str, NodeId> = HashMap::new();
        for (name, node) in &self.morphism {
            h.insert(name.as_str(), *node);
        }
        for (i, (src, _, dst)) in pattern.edges().iter().enumerate() {
            let p = &self.paths[i];
            if !p.is_valid_in(db) {
                return Err(format!("path {i} is not a path of the database"));
            }
            let (sn, dn) = (pattern.node_name(*src), pattern.node_name(*dst));
            match (h.get(sn), h.get(dn)) {
                (Some(&s), _) if p.start() != s => {
                    return Err(format!(
                        "path {i} starts at {:?}, h({sn}) = {s:?}",
                        p.start()
                    ))
                }
                (_, Some(&d)) if p.end() != d => {
                    return Err(format!("path {i} ends at {:?}, h({dn}) = {d:?}", p.end()))
                }
                (None, _) | (_, None) => {
                    return Err(format!("morphism misses an endpoint of edge {i}"))
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// Renders the witness for human consumption.
    pub fn render(&self, db: &GraphDb) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        let _ = writeln!(out, "morphism:");
        for (name, node) in &self.morphism {
            let _ = writeln!(out, "  {name} -> {}", db.node_name(*node));
        }
        let _ = writeln!(out, "paths:");
        for (i, p) in self.paths.iter().enumerate() {
            let _ = writeln!(
                out,
                "  e{i}: {}  (word \"{}\")",
                p.render(db, db.alphabet()),
                db.alphabet().render_word(p.label())
            );
        }
        if !self.images.is_empty() {
            let _ = writeln!(out, "variable images:");
            for (x, w) in &self.images {
                let _ = writeln!(out, "  {x} = \"{}\"", db.alphabet().render_word(w));
            }
        }
        out
    }
}

/// Finds a path `from →* to` labelled by a word of `L(nfa)`, by BFS over the
/// product `D × M` with parent pointers. Returns a shortest such path (in
/// number of product steps). `None` iff no such path exists.
///
/// The product space is the dense rectangle `|V_D| × |Q|`, so the visited
/// set is one [`DenseBitSet`] bit per `node · |Q| + state` cell (no
/// hashing on the dedup test) while the parent forest stays sparse —
/// memory proportional to the explored region — and transitions expand
/// over contiguous per-label CSR ranges.
pub fn edge_path(db: &GraphDb, nfa: &Nfa, from: NodeId, to: NodeId) -> Option<Path> {
    edge_path_governed(db, nfa, from, to, Governor::disabled())
}

/// [`edge_path`] under a [`Governor`]: one checkpoint per popped product
/// cell. An abort returns `None` — the caller's witness extraction fails
/// soundly (no spurious path is ever produced) and the top level reports
/// the abort from the governor's verdict.
pub fn edge_path_governed(
    db: &GraphDb,
    nfa: &Nfa,
    from: NodeId,
    to: NodeId,
    gov: &Governor,
) -> Option<Path> {
    let q = nfa.state_count();
    let key = |node: NodeId, st: StateId| node.index() * q + st.index();
    let start = key(from, nfa.start());
    const NO_SYM: u32 = u32::MAX;
    gov.charge_mem((db.node_count() * q).div_ceil(8));
    let mut visited = DenseBitSet::new(db.node_count() * q);
    // Per visited cell: parent product-index and the symbol consumed on
    // the step into the cell (NO_SYM = ε). The root has no entry.
    let mut parent: HashMap<usize, (usize, u32)> = HashMap::new();
    let mut queue: VecDeque<(NodeId, StateId)> = VecDeque::new();
    visited.insert(start);
    queue.push_back((from, nfa.start()));
    let mut goal: Option<usize> = None;
    'bfs: while let Some((node, st)) = queue.pop_front() {
        if !gov.checkpoint() {
            return None;
        }
        let cur = key(node, st);
        if node == to && nfa.is_final(st) {
            goal = Some(cur);
            break 'bfs;
        }
        for &(l, t) in nfa.transitions(st) {
            let range: cxrpq_graph::EdgeRun<'_> = match l {
                Label::Eps => {
                    let next = key(node, t);
                    if visited.insert(next) {
                        parent.insert(next, (cur, NO_SYM));
                        queue.push_back((node, t));
                    }
                    continue;
                }
                Label::Sym(a) => db.successors_with(node, a),
                Label::Any => db.out_edges(node),
            };
            for (b, v) in range {
                let next = key(v, t);
                if visited.insert(next) {
                    parent.insert(next, (cur, b.0));
                    queue.push_back((v, t));
                }
            }
        }
    }
    let mut cur = goal?;
    // Reconstruct: walk parents back, recording (symbol, node-after-step).
    let mut steps: Vec<(Symbol, NodeId)> = Vec::new();
    while cur != start {
        let (prev, sym) = parent[&cur];
        if sym != NO_SYM {
            steps.push((Symbol(sym), NodeId((cur / q) as u32)));
        }
        cur = prev;
    }
    steps.reverse();
    let mut path = Path::trivial(from);
    for (a, v) in steps {
        path.push(a, v);
    }
    debug_assert_eq!(path.end(), to);
    Some(path)
}

/// Finds one tuple of jointly-constrained paths: walker `i` runs
/// `starts[i] →* ends[i]`, accepted by `spec.nfas[i]`, with the tuple of
/// labels in `spec.relation`. Parent-tracked variant of the synchronized
/// product search.
pub(crate) fn group_paths(
    db: &GraphDb,
    spec: &SyncSpec,
    starts: &[NodeId],
    ends: &[NodeId],
) -> Option<Vec<Path>> {
    group_paths_governed(db, spec, starts, ends, Governor::disabled())
}

/// [`group_paths`] under a [`Governor`]: one checkpoint per popped product
/// configuration; an abort returns `None` (sound failure, never a spurious
/// tuple of paths).
pub(crate) fn group_paths_governed(
    db: &GraphDb,
    spec: &SyncSpec,
    starts: &[NodeId],
    ends: &[NodeId],
    gov: &Governor,
) -> Option<Vec<Path>> {
    let search = SyncSearch::forward(db, spec);
    let init = search.initial(starts);
    let mut parent: HashMap<SyncState, (SyncState, Vec<Option<Symbol>>)> = HashMap::new();
    let mut visited: HashSet<SyncState> = HashSet::new();
    let mut queue: VecDeque<SyncState> = VecDeque::new();
    visited.insert(init.clone());
    queue.push_back(init.clone());
    let mut goal: Option<SyncState> = None;
    while let Some(st) = queue.pop_front() {
        if !gov.checkpoint() {
            return None;
        }
        if st.positions == ends && search.accepting(&st) {
            goal = Some(st);
            break;
        }
        search.expand_moves(&st, Some(ends), &mut |next, moves| {
            if visited.insert(next.clone()) {
                parent.insert(next.clone(), (st.clone(), moves.to_vec()));
                queue.push_back(next);
            }
        });
    }
    let mut cur = goal?;
    // Collect the forward chain of (state, moves-into-state).
    let mut chain: Vec<(SyncState, Vec<Option<Symbol>>)> = Vec::new();
    while cur != init {
        let (prev, moves) = parent[&cur].clone();
        chain.push((cur, moves));
        cur = prev;
    }
    chain.reverse();
    let s = search.spec().arity();
    let mut paths: Vec<Path> = starts.iter().map(|&n| Path::trivial(n)).collect();
    for (state, moves) in chain {
        for i in 0..s {
            if let Some(a) = moves[i] {
                paths[i].push(a, state.positions[i]);
            }
        }
    }
    for (i, p) in paths.iter().enumerate() {
        debug_assert_eq!(p.end(), ends[i]);
    }
    Some(paths)
}

/// Builds the `morphism` field of a witness from solver bindings, keeping
/// only the query's named pattern variables.
pub(crate) fn morphism_of<L>(
    pattern: &GraphPattern<L>,
    bindings: &[Option<NodeId>],
) -> Vec<(String, NodeId)> {
    pattern
        .node_vars()
        .filter_map(|v| bindings[v.index()].map(|n| (pattern.node_name(v).to_string(), n)))
        .collect()
}

/// Concatenates consecutive path segments (witness assembly for subdivided
/// edges). Panics if the segments do not chain.
pub(crate) fn concat_paths(segments: Vec<Path>) -> Path {
    let mut iter = segments.into_iter();
    let mut out = iter.next().expect("at least one segment");
    for seg in iter {
        assert_eq!(out.end(), seg.start(), "segments must chain");
        for (i, &a) in seg.label().iter().enumerate() {
            out.push(a, seg.nodes()[i + 1]);
        }
    }
    out
}

/// Pins output variables to a tuple (shared by the engines' `witness_for`).
pub(crate) fn pin_tuple(output: &[NodeVar], tuple: &[NodeId]) -> Option<HashMap<NodeVar, NodeId>> {
    assert_eq!(tuple.len(), output.len(), "tuple arity mismatch");
    let mut pinned = HashMap::new();
    for (v, n) in output.iter().zip(tuple) {
        if let Some(&prev) = pinned.get(v) {
            if prev != *n {
                return None;
            }
        }
        pinned.insert(*v, *n);
    }
    Some(pinned)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cxrpq_automata::parse_regex;
    use cxrpq_graph::Alphabet;
    use cxrpq_graph::GraphBuilder;
    use std::sync::Arc;

    fn line_db(word: &str) -> (GraphDb, Vec<NodeId>) {
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = GraphBuilder::new(alpha);
        let w = db.alphabet().parse_word(word).unwrap();
        let nodes: Vec<NodeId> = (0..=w.len()).map(|_| db.add_node()).collect();
        for (i, &s) in w.iter().enumerate() {
            db.add_edge(nodes[i], s, nodes[i + 1]);
        }
        (db.freeze(), nodes)
    }

    #[test]
    fn edge_path_reconstructs_word_and_nodes() {
        let (db, nodes) = line_db("abcab");
        let mut alpha = db.alphabet().clone();
        let nfa = Nfa::from_regex(&parse_regex("a(b|c)c*ab", &mut alpha).unwrap());
        let p = edge_path(&db, &nfa, nodes[0], nodes[5]).unwrap();
        assert!(p.is_valid_in(&db));
        assert_eq!(p.start(), nodes[0]);
        assert_eq!(p.end(), nodes[5]);
        assert_eq!(db.alphabet().render_word(p.label()), "abcab");
    }

    #[test]
    fn edge_path_none_when_unreachable() {
        let (db, nodes) = line_db("ab");
        let mut alpha = db.alphabet().clone();
        let nfa = Nfa::from_regex(&parse_regex("ba", &mut alpha).unwrap());
        assert!(edge_path(&db, &nfa, nodes[0], nodes[2]).is_none());
    }

    #[test]
    fn edge_path_epsilon_self() {
        let (db, nodes) = line_db("ab");
        let mut alpha = db.alphabet().clone();
        let nfa = Nfa::from_regex(&parse_regex("a*", &mut alpha).unwrap());
        let p = edge_path(&db, &nfa, nodes[1], nodes[1]).unwrap();
        assert_eq!(p.len(), 0);
        assert_eq!(p.start(), nodes[1]);
    }

    #[test]
    fn edge_path_prefers_short_witnesses() {
        // A cycle a·a plus a direct a edge: shortest accepted path is len 1.
        let alpha = Arc::new(Alphabet::from_chars("a"));
        let mut db = GraphBuilder::new(alpha);
        let a = db.alphabet().sym("a");
        let u = db.add_node();
        let v = db.add_node();
        db.add_edge(u, a, v);
        db.add_edge(v, a, u);
        let db = db.freeze();
        let mut alpha2 = db.alphabet().clone();
        let nfa = Nfa::from_regex(&parse_regex("a(aa)*", &mut alpha2).unwrap());
        let p = edge_path(&db, &nfa, u, v).unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn group_paths_equal_words() {
        // Two parallel abc paths; equality group must return equal labels.
        let alpha = Arc::new(Alphabet::from_chars("abc"));
        let mut db = GraphBuilder::new(alpha);
        let w = db.alphabet().parse_word("abc").unwrap();
        let s1 = db.add_node();
        let t1 = db.add_node();
        let s2 = db.add_node();
        let t2 = db.add_node();
        db.add_word_path(s1, &w, t1);
        db.add_word_path(s2, &w, t2);
        // The mismatched acb path is planted up front so the database can
        // be frozen once.
        let w2 = db.alphabet().parse_word("acb").unwrap();
        let s3 = db.add_node();
        let t3 = db.add_node();
        db.add_word_path(s3, &w2, t3);
        let db = db.freeze();
        let spec = SyncSpec::equality_group(None, 2);
        let paths = group_paths(&db, &spec, &[s1, s2], &[t1, t2]).unwrap();
        assert_eq!(paths[0].label(), paths[1].label());
        assert_eq!(db.alphabet().render_word(paths[0].label()), "abc");
        assert!(paths.iter().all(|p| p.is_valid_in(&db)));
        // Mismatched paths: no witness.
        assert!(group_paths(&db, &spec, &[s1, s3], &[t1, t3]).is_none());
    }

    #[test]
    fn concat_paths_chains() {
        let (db, nodes) = line_db("abc");
        let mut a1 = db.alphabet().clone();
        let p1 = edge_path(
            &db,
            &Nfa::from_regex(&parse_regex("ab", &mut a1).unwrap()),
            nodes[0],
            nodes[2],
        )
        .unwrap();
        let p2 = edge_path(
            &db,
            &Nfa::from_regex(&parse_regex("c", &mut a1).unwrap()),
            nodes[2],
            nodes[3],
        )
        .unwrap();
        let joined = concat_paths(vec![p1, p2]);
        assert_eq!(db.alphabet().render_word(joined.label()), "abc");
        assert_eq!(joined.start(), nodes[0]);
        assert_eq!(joined.end(), nodes[3]);
    }

    #[test]
    fn governed_edge_path_aborts_to_none() {
        let (db, nodes) = line_db("abcab");
        let mut alpha = db.alphabet().clone();
        let nfa = Nfa::from_regex(&parse_regex("a(b|c)c*ab", &mut alpha).unwrap());
        let gov = Governor::unlimited().with_max_steps(1);
        assert!(edge_path_governed(&db, &nfa, nodes[0], nodes[5], &gov).is_none());
        assert!(gov.is_aborted());
        // Ungoverned, the same instance yields a witness.
        assert!(edge_path(&db, &nfa, nodes[0], nodes[5]).is_some());
    }

    #[test]
    fn pin_tuple_rejects_inconsistent() {
        let out = [NodeVar(0), NodeVar(0)];
        assert!(pin_tuple(&out, &[NodeId(1), NodeId(2)]).is_none());
        assert!(pin_tuple(&out, &[NodeId(1), NodeId(1)]).is_some());
    }
}
