//! Lemma 3: evaluation of *simple* CXRPQs in nondeterministic space
//! `O(|q| log |D|)`.
//!
//! Following the proof: definitions `x{y}` are dereferenced to `y`; each
//! component — a concatenation of classical chunks, references, and basic
//! definitions — is subdivided into atomic pattern edges with fresh middle
//! node variables; classical chunks become single-walker reachability
//! constraints, and for every string variable the definition edge plus all
//! reference edges form one synchronized *equality group* (all must be
//! labelled by the same word, the definition edge additionally by a word of
//! its body language). The search over the resulting product space is the
//! explicit `G_{q′,D}` of the proof.

use crate::cxrpq::Cxrpq;
use crate::governor::Outcome;
use crate::pattern::NodeVar;
use crate::reach::ReachCache;
use crate::solve::{FreeEdge, Group, PipelineStats, Problem, SolveOptions};
use crate::sync::SyncSpec;
use crate::witness::QueryWitness;
use cxrpq_automata::{Nfa, Regex};
use cxrpq_graph::{GraphDb, NodeId, Path};
use cxrpq_xregex::{classification, Var, Xregex};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

/// The query is outside the simple fragment.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct NotSimple;

impl fmt::Display for NotSimple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "query is not a simple CXRPQ (Lemma 3 requires simple)")
    }
}

impl std::error::Error for NotSimple {}

pub(crate) enum Factor {
    Classical(Regex),
    Ref(Var),
    Def(Var, Regex),
}

/// A single-walker factor of the subdivided pattern.
pub(crate) struct PlanFree {
    pub(crate) src: NodeVar,
    pub(crate) dst: NodeVar,
    pub(crate) re: Regex,
    /// `(pattern edge, factor position)` — provenance for witness assembly.
    pub(crate) prov: (usize, usize),
    /// Set when this factor alone determines a variable's image (a
    /// definition whose variable has no other occurrence, or the only
    /// reference of a never-defined variable).
    pub(crate) image_var: Option<Var>,
}

/// One walker of a synchronized variable group.
pub(crate) struct PlanMember {
    pub(crate) src: NodeVar,
    pub(crate) dst: NodeVar,
    pub(crate) prov: (usize, usize),
}

/// A synchronized equality group for one string variable.
pub(crate) struct PlanGroup {
    pub(crate) var: Var,
    /// Definition walker first (when a definition exists).
    pub(crate) members: Vec<PlanMember>,
    pub(crate) def: Option<Regex>,
}

struct Plan {
    node_count: usize,
    free: Vec<PlanFree>,
    groups: Vec<PlanGroup>,
    /// Basic-definition chains `x{y}` eliminated up front: `(x, y)` means
    /// `ψ(x) = ψ(y)` in every witness.
    chains: Vec<(Var, Var)>,
    /// Variables with ε-only definition bodies, erased before subdivision:
    /// `ψ(x) = ε` in every witness, and no group is synchronized for them.
    eps_vars: Vec<Var>,
}

/// The Lemma 3 engine.
pub struct SimpleEvaluator<'q> {
    q: &'q Cxrpq,
    plan: Plan,
}

/// Replaces definitions `x{y}` (and all references of `x`) by references of
/// `y`, repeatedly — the first normalization step in the proof of Lemma 3.
/// Returns the eliminated `(x, y)` pairs (in elimination order) so witness
/// extraction can report `ψ(x) = ψ(y)` for the removed variables.
pub(crate) fn deref_basic_chains(comps: &mut [Xregex]) -> Vec<(Var, Var)> {
    let mut chains = Vec::new();
    loop {
        let mut subst: Option<(Var, Var)> = None;
        for c in comps.iter() {
            c.walk(&mut |n| {
                if subst.is_none() {
                    if let Xregex::VarDef(x, body) = n {
                        if let Xregex::VarRef(y) = &**body {
                            subst = Some((*x, *y));
                        }
                    }
                }
            });
            if subst.is_some() {
                break;
            }
        }
        let Some((x, y)) = subst else { break };
        chains.push((x, y));
        for c in comps.iter_mut() {
            *c = replace_def_by(c, x, &Xregex::VarRef(y));
            *c = c.replace_refs(x, &Xregex::VarRef(y));
        }
    }
    chains
}

/// Erases every variable whose definition body is ε-only (`x{_}`,
/// `x{ε*}`, …): such a variable is bound to ε on every match, so its
/// definition and references contribute nothing to the subdivided pattern
/// — without this rewrite each would still cost a synchronized equality
/// group (or a Σ*-NFA walker for the references). Returns the erased
/// variables so witness extraction reports `ψ(x) = ε` for them.
pub(crate) fn eliminate_epsilon_vars(comps: &mut [Xregex]) -> Vec<Var> {
    let mut eps: Vec<Var> = Vec::new();
    for c in comps.iter() {
        c.walk(&mut |n| {
            if let Xregex::VarDef(x, body) = n {
                if body.is_epsilon_only() && !eps.contains(x) {
                    eps.push(*x);
                }
            }
        });
    }
    for &x in &eps {
        for c in comps.iter_mut() {
            *c = c.erase_var(x);
        }
    }
    eps
}

fn replace_def_by(r: &Xregex, x: Var, replacement: &Xregex) -> Xregex {
    match r {
        Xregex::VarDef(y, _) if *y == x => replacement.clone(),
        Xregex::VarDef(y, body) => {
            Xregex::VarDef(*y, Box::new(replace_def_by(body, x, replacement)))
        }
        Xregex::Concat(ps) => Xregex::Concat(
            ps.iter()
                .map(|p| replace_def_by(p, x, replacement))
                .collect(),
        ),
        Xregex::Alt(ps) => Xregex::Alt(
            ps.iter()
                .map(|p| replace_def_by(p, x, replacement))
                .collect(),
        ),
        Xregex::Plus(p) => Xregex::Plus(Box::new(replace_def_by(p, x, replacement))),
        Xregex::Star(p) => Xregex::Star(Box::new(replace_def_by(p, x, replacement))),
        other => other.clone(),
    }
}

pub(crate) fn factorize(comp: &Xregex) -> Vec<Factor> {
    fn flatten(r: &Xregex, out: &mut Vec<Xregex>) {
        match r {
            Xregex::Concat(ps) => ps.iter().for_each(|p| flatten(p, out)),
            other => out.push(other.clone()),
        }
    }
    let mut items = Vec::new();
    flatten(comp, &mut items);
    let mut factors = Vec::new();
    let mut run: Vec<Regex> = Vec::new();
    for item in items {
        if let Some(re) = item.to_regex() {
            run.push(re);
            continue;
        }
        if !run.is_empty() {
            factors.push(Factor::Classical(Regex::concat(std::mem::take(&mut run))));
        }
        match item {
            Xregex::VarRef(x) => factors.push(Factor::Ref(x)),
            Xregex::VarDef(x, body) => factors.push(Factor::Def(
                x,
                body.to_regex()
                    .expect("simple definitions are classical after chain deref"),
            )),
            other => unreachable!("non-simple factor {other:?}"),
        }
    }
    if !run.is_empty() {
        factors.push(Factor::Classical(Regex::concat(run)));
    }
    factors
}

impl<'q> SimpleEvaluator<'q> {
    /// Creates the engine; errors unless the query is simple.
    pub fn new(q: &'q Cxrpq) -> Result<Self, NotSimple> {
        if !classification(q.conjunctive()).simple {
            return Err(NotSimple);
        }
        let mut comps: Vec<Xregex> = q.conjunctive().components().to_vec();
        let chains = deref_basic_chains(&mut comps);
        let eps_vars = eliminate_epsilon_vars(&mut comps);

        let mut node_count = q.pattern().node_count();
        let mut free: Vec<PlanFree> = Vec::new();
        type Occ = (NodeVar, NodeVar, Option<Regex>, (usize, usize));
        let mut members: BTreeMap<Var, Vec<Occ>> = BTreeMap::new();
        for (edge_idx, (src, _, dst)) in q.pattern().edges().iter().enumerate() {
            let factors = factorize(&comps[edge_idx]);
            if factors.is_empty() {
                free.push(PlanFree {
                    src: *src,
                    dst: *dst,
                    re: Regex::Epsilon,
                    prov: (edge_idx, 0),
                    image_var: None,
                });
                continue;
            }
            let t = factors.len();
            // Fresh middles z_{i,1} … z_{i,t-1}.
            let mut prev = *src;
            for (j, f) in factors.into_iter().enumerate() {
                let next = if j + 1 == t {
                    *dst
                } else {
                    let v = NodeVar(node_count as u32);
                    node_count += 1;
                    v
                };
                let prov = (edge_idx, j);
                match f {
                    Factor::Classical(re) => free.push(PlanFree {
                        src: prev,
                        dst: next,
                        re,
                        prov,
                        image_var: None,
                    }),
                    Factor::Ref(x) => {
                        members.entry(x).or_default().push((prev, next, None, prov));
                    }
                    Factor::Def(x, re) => {
                        members
                            .entry(x)
                            .or_default()
                            .push((prev, next, Some(re), prov));
                    }
                }
                prev = next;
            }
        }
        // Assemble groups, definition walker first; singleton groups become
        // plain reachability constraints.
        let mut groups = Vec::new();
        for (x, mut mem) in members {
            mem.sort_by_key(|(_, _, def, _)| def.is_none());
            debug_assert!(mem.iter().filter(|(_, _, d, _)| d.is_some()).count() <= 1);
            if mem.len() == 1 {
                let (s, d, def, prov) = mem.pop().unwrap();
                free.push(PlanFree {
                    src: s,
                    dst: d,
                    re: def.unwrap_or_else(Regex::sigma_star),
                    prov,
                    image_var: Some(x),
                });
            } else {
                let def = mem[0].2.clone();
                let group_members = mem
                    .iter()
                    .map(|(s, d, _, prov)| PlanMember {
                        src: *s,
                        dst: *d,
                        prov: *prov,
                    })
                    .collect();
                groups.push(PlanGroup {
                    var: x,
                    members: group_members,
                    def,
                });
            }
        }
        Ok(Self {
            q,
            plan: Plan {
                node_count,
                free,
                groups,
                chains,
                eps_vars,
            },
        })
    }

    /// Number of synchronized groups (diagnostics).
    pub fn group_count(&self) -> usize {
        self.plan.groups.len()
    }

    fn problem(&self) -> Problem {
        let mut p = Problem::new(self.plan.node_count);
        for f in &self.plan.free {
            p.free_edges.push(FreeEdge {
                src: f.src,
                dst: f.dst,
                cache: ReachCache::new(Nfa::from_regex(&f.re)),
            });
        }
        for g in &self.plan.groups {
            let def_nfa = g.def.as_ref().map(Nfa::from_regex);
            let srcs: Vec<NodeVar> = g.members.iter().map(|m| m.src).collect();
            let dsts: Vec<NodeVar> = g.members.iter().map(|m| m.dst).collect();
            let arity = srcs.len();
            p.groups.push(Group::new(
                srcs,
                dsts,
                SyncSpec::equality_group(def_nfa, arity),
            ));
        }
        p
    }

    /// Boolean evaluation `D ⊨ q`.
    pub fn boolean(&self, db: &GraphDb) -> bool {
        self.boolean_with_stats(db).0
    }

    /// Boolean evaluation plus explored product states.
    pub fn boolean_with_stats(&self, db: &GraphDb) -> (bool, usize) {
        let mut p = self.problem();
        let mut found = false;
        let opts = SolveOptions::early_exit().projected();
        p.solve_with(db, &HashMap::new(), &[], &opts, &mut |_| {
            found = true;
            true
        });
        let mut states = p.stats.states();
        for e in &p.free_edges {
            states += e.cache.stats.states();
        }
        (found, states)
    }

    /// [`SimpleEvaluator::boolean`] under explicit solver options, with the
    /// pipeline stats of the run.
    pub fn boolean_opts(&self, db: &GraphDb, opts: &SolveOptions) -> (bool, Option<PipelineStats>) {
        let mut p = self.problem();
        let mut found = false;
        p.solve_with(db, &HashMap::new(), &[], opts, &mut |_| {
            found = true;
            true
        });
        (found, p.pipeline.take())
    }

    /// The answer relation `q(D)`, computed with projection pushdown: the
    /// subdivision's fresh middle variables (and any non-output pattern
    /// variables) are existentially eliminated instead of enumerated.
    pub fn answers(&self, db: &GraphDb) -> BTreeSet<Vec<NodeId>> {
        self.answers_opts(db, &SolveOptions::pipeline().projected())
            .0
    }

    /// [`SimpleEvaluator::answers`] under explicit solver options, with the
    /// pipeline stats of the run. The default pipeline's prune phase
    /// batch-warms the classical-factor caches over the shrinking candidate
    /// domains (subsuming the old whole-database prefill); equality groups
    /// with a selective definition contribute def-language semi-joins. Pass
    /// [`SolveOptions::projected`] for projection pushdown (the naive
    /// reference without it is full-enumerate-then-project).
    pub fn answers_opts(
        &self,
        db: &GraphDb,
        opts: &SolveOptions,
    ) -> (BTreeSet<Vec<NodeId>>, Option<PipelineStats>) {
        let mut out = BTreeSet::new();
        let mut p = self.problem();
        let output = self.q.output().to_vec();
        p.solve_with(db, &HashMap::new(), &output, opts, &mut |bindings| {
            out.insert(
                output
                    .iter()
                    .map(|v| bindings[v.index()].expect("required var bound"))
                    .collect(),
            );
            false
        });
        (out, p.pipeline.take())
    }

    /// The Check problem `t̄ ∈ q(D)`.
    pub fn check(&self, db: &GraphDb, tuple: &[NodeId]) -> bool {
        self.check_opts(db, tuple, &SolveOptions::early_exit().projected())
            .0
    }

    /// [`SimpleEvaluator::check`] under explicit solver options, with the
    /// pipeline stats of the run.
    pub fn check_opts(
        &self,
        db: &GraphDb,
        tuple: &[NodeId],
        opts: &SolveOptions,
    ) -> (bool, Option<PipelineStats>) {
        assert_eq!(tuple.len(), self.q.output().len());
        let mut pinned = HashMap::new();
        for (v, n) in self.q.output().iter().zip(tuple) {
            if let Some(&prev) = pinned.get(v) {
                if prev != *n {
                    return (false, None);
                }
            }
            pinned.insert(*v, *n);
        }
        let mut p = self.problem();
        let mut found = false;
        p.solve_with(db, &pinned, &[], opts, &mut |_| {
            found = true;
            true
        });
        (found, p.pipeline.take())
    }

    /// [`SimpleEvaluator::boolean_opts`] with the run's [`Verdict`]: an
    /// aborted run may report `false` where a complete run would say `true`
    /// (sound under-approximation) and tags the result
    /// [`crate::governor::Verdict::Aborted`].
    pub fn boolean_outcome(
        &self,
        db: &GraphDb,
        opts: &SolveOptions,
    ) -> (Outcome<bool>, Option<PipelineStats>) {
        let (found, stats) = self.boolean_opts(db, opts);
        (
            Outcome::from_governor(found, opts.governor.as_deref()),
            stats,
        )
    }

    /// [`SimpleEvaluator::answers_opts`] with the run's [`Verdict`]: an
    /// aborted run returns the partial answers accumulated before the trip
    /// (always a subset of the complete relation).
    pub fn answers_outcome(
        &self,
        db: &GraphDb,
        opts: &SolveOptions,
    ) -> (Outcome<BTreeSet<Vec<NodeId>>>, Option<PipelineStats>) {
        let (ans, stats) = self.answers_opts(db, opts);
        (Outcome::from_governor(ans, opts.governor.as_deref()), stats)
    }

    /// [`SimpleEvaluator::check_opts`] with the run's [`Verdict`].
    pub fn check_outcome(
        &self,
        db: &GraphDb,
        tuple: &[NodeId],
        opts: &SolveOptions,
    ) -> (Outcome<bool>, Option<PipelineStats>) {
        let (found, stats) = self.check_opts(db, tuple, opts);
        (
            Outcome::from_governor(found, opts.governor.as_deref()),
            stats,
        )
    }

    /// A certificate for some matching morphism: paths per pattern edge
    /// (reassembled from the subdivided factors) plus all variable images.
    pub fn witness(&self, db: &GraphDb) -> Option<QueryWitness> {
        self.witness_impl(db, &HashMap::new())
    }

    /// A certificate for `t̄ ∈ q(D)`.
    pub fn witness_for(&self, db: &GraphDb, tuple: &[NodeId]) -> Option<QueryWitness> {
        let pinned = crate::witness::pin_tuple(self.q.output(), tuple)?;
        self.witness_impl(db, &pinned)
    }

    fn witness_impl(
        &self,
        db: &GraphDb,
        pinned: &HashMap<NodeVar, NodeId>,
    ) -> Option<QueryWitness> {
        let mut p = self.problem();
        // Require every plan variable (original + middles) so each factor's
        // endpoints are pinned down in the solution.
        let required: Vec<NodeVar> = (0..self.plan.node_count as u32).map(NodeVar).collect();
        let mut sol: Option<Vec<Option<NodeId>>> = None;
        p.solve_with(
            db,
            pinned,
            &required,
            &SolveOptions::early_exit(),
            &mut |b| {
                sol = Some(b.to_vec());
                true
            },
        );
        let b = sol?;
        let node = |v: NodeVar| b[v.index()].expect("required variables are bound");
        let vars = self.q.conjunctive().vars();
        let mut factor_paths: BTreeMap<(usize, usize), Path> = BTreeMap::new();
        let mut image_map: BTreeMap<Var, Vec<cxrpq_graph::Symbol>> = BTreeMap::new();
        for f in &self.plan.free {
            let nfa = Nfa::from_regex(&f.re);
            let path = crate::witness::edge_path(db, &nfa, node(f.src), node(f.dst))?;
            if let Some(x) = f.image_var {
                image_map.insert(x, path.label().to_vec());
            }
            factor_paths.insert(f.prov, path);
        }
        for g in &self.plan.groups {
            let spec =
                SyncSpec::equality_group(g.def.as_ref().map(Nfa::from_regex), g.members.len());
            let starts: Vec<NodeId> = g.members.iter().map(|m| node(m.src)).collect();
            let ends: Vec<NodeId> = g.members.iter().map(|m| node(m.dst)).collect();
            let paths = crate::witness::group_paths(db, &spec, &starts, &ends)?;
            image_map.insert(g.var, paths[0].label().to_vec());
            for (m, path) in g.members.iter().zip(paths) {
                factor_paths.insert(m.prov, path);
            }
        }
        // ε-erased variables are bound to the empty word on every match.
        for &x in &self.plan.eps_vars {
            image_map.insert(x, Vec::new());
        }
        // Eliminated chain variables x{y}: ψ(x) = ψ(y). Resolve in reverse
        // elimination order so transitive chains land on concrete images.
        for &(x, y) in self.plan.chains.iter().rev() {
            let img = image_map.get(&y).cloned().unwrap_or_default();
            image_map.insert(x, img);
        }
        // Reassemble one path per pattern edge from its factors in order.
        let mut edge_paths = Vec::with_capacity(self.q.pattern().edge_count());
        for (e, (src, _, _)) in self.q.pattern().edges().iter().enumerate() {
            let segs: Vec<Path> = factor_paths
                .range((e, 0)..(e + 1, 0))
                .map(|(_, p)| p.clone())
                .collect();
            if segs.is_empty() {
                edge_paths.push(Path::trivial(node(*src)));
            } else {
                edge_paths.push(crate::witness::concat_paths(segs));
            }
        }
        let images = image_map
            .into_iter()
            .map(|(x, w)| (vars.name(x).to_string(), w))
            .collect();
        Some(QueryWitness {
            morphism: crate::witness::morphism_of(self.q.pattern(), &b),
            paths: edge_paths,
            images,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cxrpq::CxrpqBuilder;
    use cxrpq_graph::Alphabet;
    use cxrpq_graph::GraphBuilder;
    use std::sync::Arc;

    fn db_with_words(words: &[(&str, &str)]) -> (GraphDb, HashMap<String, NodeId>) {
        // words: (name-pair "s>t", label word) — adds a path s -w-> t,
        // creating named endpoints on demand.
        let alpha = Arc::new(Alphabet::from_chars("abc#"));
        let mut db = GraphBuilder::new(alpha);
        let mut names: HashMap<String, NodeId> = HashMap::new();
        for (pair, w) in words {
            let (s, t) = pair.split_once('>').unwrap();
            let sn = *names.entry(s.to_string()).or_insert_with(|| db.add_node());
            let tn = *names.entry(t.to_string()).or_insert_with(|| db.add_node());
            let word = db.alphabet().parse_word(w).unwrap();
            db.add_word_path(sn, &word, tn);
        }
        (db.freeze(), names)
    }

    #[test]
    fn single_edge_backreference() {
        // u -[z{(a|b)+} c z]-> v : a word w c w with w ∈ (a|b)+.
        let (db, names) = db_with_words(&[("u>m1", "ab"), ("m1>m2", "c"), ("m2>v", "ab")]);
        let mut alpha = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("x", "z{(a|b)+}cz", "y")
            .output(&["x", "y"])
            .build()
            .unwrap();
        let ev = SimpleEvaluator::new(&q).unwrap();
        assert_eq!(ev.group_count(), 1);
        let ans = ev.answers(&db);
        assert!(ans.contains(&vec![names["u"], names["v"]]));

        // Unequal halves: no match from u to v.
        let (db2, names2) = db_with_words(&[("u>m1", "ab"), ("m1>m2", "c"), ("m2>v", "ba")]);
        let ev2 = SimpleEvaluator::new(&q).unwrap();
        assert!(!ev2.check(&db2, &[names2["u"], names2["v"]]));
    }

    #[test]
    fn cross_edge_equality_with_definition() {
        // e1: u -[x{a+b}]-> v, e2: u2 -[x]-> v2: both paths carry the same
        // word from a+b.
        let (db, names) = db_with_words(&[("u>v", "aab"), ("u2>v2", "aab"), ("u3>v3", "ab")]);
        let mut alpha = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("p", "x{a+b}", "q")
            .edge("r", "x", "s")
            .output(&["p", "q", "r", "s"])
            .build()
            .unwrap();
        let ev = SimpleEvaluator::new(&q).unwrap();
        let ans = ev.answers(&db);
        assert!(ans.contains(&vec![names["u"], names["v"], names["u2"], names["v2"]]));
        // aab ≠ ab: the u3>v3 path pairs only with itself.
        assert!(!ans.contains(&vec![names["u"], names["v"], names["u3"], names["v3"]]));
        assert!(ans.contains(&vec![names["u3"], names["v3"], names["u3"], names["v3"]]));
    }

    #[test]
    fn definition_chain_x_of_y() {
        // y{a+} on e1; x{y} on e2; x on e3: all three equal.
        let (db, names) = db_with_words(&[("a1>b1", "aa"), ("a2>b2", "aa"), ("a3>b3", "aa")]);
        let mut alpha = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("p", "y{a+}", "q")
            .edge("r", "x{y}", "s")
            .edge("t", "x", "w")
            .output(&["p", "r", "t"])
            .build()
            .unwrap();
        let ev = SimpleEvaluator::new(&q).unwrap();
        // After chain-deref there is a single group over y with 3 members.
        assert_eq!(ev.group_count(), 1);
        let ans = ev.answers(&db);
        assert!(ans.contains(&vec![names["a1"], names["a2"], names["a3"]]));
    }

    #[test]
    fn undefined_variable_pure_equality() {
        // Two reference-only edges (never defined): arbitrary equal words
        // (the `⟨·⟩int` dummy-definition semantics of §3.1).
        let (db, names) = db_with_words(&[("u>v", "abc"), ("p>q", "abc"), ("r>s", "acb")]);
        let mut alpha = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha)
            .declare_vars(&["w"])
            .edge("g", "w", "h")
            .edge("i", "w", "j")
            .output(&["g", "h", "i", "j"])
            .build()
            .unwrap();
        let ev = SimpleEvaluator::new(&q).unwrap();
        let ans = ev.answers(&db);
        assert!(ans.contains(&vec![names["u"], names["v"], names["p"], names["q"]]));
        assert!(!ans.contains(&vec![names["u"], names["v"], names["r"], names["s"]]));
    }

    #[test]
    fn mixed_classical_prefix_suffix() {
        // u -[a* x{b+} c]-> v with x referenced on another edge.
        let (db, names) = db_with_words(&[("u>v", "aabbc"), ("p>q", "bb")]);
        let mut alpha = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("m", "a*x{b+}c", "n")
            .edge("r", "x", "s")
            .output(&["m", "n", "r", "s"])
            .build()
            .unwrap();
        let ev = SimpleEvaluator::new(&q).unwrap();
        let ans = ev.answers(&db);
        assert!(ans.contains(&vec![names["u"], names["v"], names["p"], names["q"]]));
    }

    #[test]
    fn rejects_non_simple() {
        let mut alpha = Alphabet::from_chars("ab");
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("u", "x{a}(x|b)", "v") // alternation over a reference
            .build()
            .unwrap();
        assert!(SimpleEvaluator::new(&q).is_err());
    }

    #[test]
    fn epsilon_component() {
        let (db, names) = db_with_words(&[("u>v", "a")]);
        let mut alpha = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("x", "_", "y")
            .output(&["x", "y"])
            .build()
            .unwrap();
        let ev = SimpleEvaluator::new(&q).unwrap();
        let ans = ev.answers(&db);
        // ε-paths exist only from a node to itself.
        assert!(ans.contains(&vec![names["u"], names["u"]]));
        assert!(!ans.contains(&vec![names["u"], names["v"]]));
    }

    #[test]
    fn epsilon_definitions_are_eliminated() {
        // z can only capture ε, so the analyzer-style rewrite erases it:
        // no synchronized group is needed and the witness reports ψ(z) = ε.
        let (db, names) = db_with_words(&[("u>v", "a")]);
        let mut alpha = db.alphabet().clone();
        let q = CxrpqBuilder::new(&mut alpha)
            .edge("x", "z{_}az", "y")
            .output(&["x", "y"])
            .build()
            .unwrap();
        let ev = SimpleEvaluator::new(&q).unwrap();
        assert_eq!(ev.group_count(), 0);
        let ans = ev.answers(&db);
        assert!(ans.contains(&vec![names["u"], names["v"]]));
        let w = ev
            .witness_for(&db, &[names["u"], names["v"]])
            .expect("witness");
        let z = w
            .images
            .iter()
            .find(|(name, _)| name == "z")
            .expect("z image reported");
        assert!(z.1.is_empty(), "ψ(z) must be ε");
    }
}
