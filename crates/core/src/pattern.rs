//! Graph patterns: the declarative core of conjunctive path queries (§2.3).
//!
//! An `<`-graph pattern is a directed, edge-labelled graph whose vertices are
//! *node variables* and whose edge labels are language descriptors. All query
//! classes in this crate share this shape; the label type varies (classical
//! regexes for CRPQ, component indices into a conjunctive xregex for CXRPQ,
//! regexes + relations for ECRPQ).

use std::collections::HashMap;

/// A node variable of a graph pattern (dense index within one query).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct NodeVar(pub u32);

impl NodeVar {
    /// Dense index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A directed graph pattern with labels of type `L`.
#[derive(Clone, Debug)]
pub struct GraphPattern<L> {
    names: Vec<String>,
    ids: HashMap<String, NodeVar>,
    edges: Vec<(NodeVar, L, NodeVar)>,
}

impl<L> Default for GraphPattern<L> {
    fn default() -> Self {
        Self {
            names: Vec::new(),
            ids: HashMap::new(),
            edges: Vec::new(),
        }
    }
}

impl<L> GraphPattern<L> {
    /// An empty pattern.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns a node variable by name.
    pub fn node(&mut self, name: &str) -> NodeVar {
        if let Some(&v) = self.ids.get(name) {
            return v;
        }
        let v = NodeVar(self.names.len() as u32);
        self.names.push(name.to_string());
        self.ids.insert(name.to_string(), v);
        v
    }

    /// Looks up a node variable by name.
    pub fn node_var(&self, name: &str) -> Option<NodeVar> {
        self.ids.get(name).copied()
    }

    /// The name of a node variable.
    pub fn node_name(&self, v: NodeVar) -> &str {
        &self.names[v.index()]
    }

    /// Adds an edge `(x, label, y)`; returns its index.
    pub fn add_edge(&mut self, x: NodeVar, label: L, y: NodeVar) -> usize {
        self.edges.push((x, label, y));
        self.edges.len() - 1
    }

    /// All edges.
    pub fn edges(&self) -> &[(NodeVar, L, NodeVar)] {
        &self.edges
    }

    /// Number of node variables.
    pub fn node_count(&self) -> usize {
        self.names.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Whether the query is single-edge (|E_q| = 1), the shape of the
    /// paper's hardness results (Theorems 1, 3, 7).
    pub fn is_single_edge(&self) -> bool {
        self.edges.len() == 1
    }

    /// Maps edge labels, preserving structure.
    pub fn map_labels<M, F: FnMut(usize, &L) -> M>(&self, mut f: F) -> GraphPattern<M> {
        GraphPattern {
            names: self.names.clone(),
            ids: self.ids.clone(),
            edges: self
                .edges
                .iter()
                .enumerate()
                .map(|(i, (x, l, y))| (*x, f(i, l), *y))
                .collect(),
        }
    }

    /// All node variables.
    pub fn node_vars(&self) -> impl Iterator<Item = NodeVar> + '_ {
        (0..self.names.len() as u32).map(NodeVar)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_nodes() {
        let mut p: GraphPattern<u32> = GraphPattern::new();
        let x = p.node("x");
        let y = p.node("y");
        assert_eq!(p.node("x"), x);
        assert_eq!(p.node_count(), 2);
        p.add_edge(x, 7, y);
        assert!(p.is_single_edge());
        assert_eq!(p.node_name(y), "y");
        assert_eq!(p.node_var("z"), None);
    }

    #[test]
    fn map_labels_preserves_shape() {
        let mut p: GraphPattern<u32> = GraphPattern::new();
        let x = p.node("x");
        let y = p.node("y");
        p.add_edge(x, 1, y);
        p.add_edge(y, 2, x);
        let q = p.map_labels(|i, l| (i, l * 10));
        assert_eq!(q.edges()[1], (y, (1, 20), x));
        assert_eq!(q.node_var("x"), Some(x));
    }
}
